module github.com/gosmr/gosmr

go 1.22
