// Command kvload drives a running gosmrd with a Zipf-skewed get/put/del
// mix over N pipelined connections, then reports throughput, request
// latency percentiles, and the reclamation high-water marks scraped from
// the daemon's admin endpoint.
//
//	kvload -addr 127.0.0.1:7070 -admin 127.0.0.1:7071 \
//	       -conns 8 -requests 100000 -zipf 1.1 -out BENCH_kvsvc.json
//
// The skew matters for SMR: a Zipf workload hammers a few hot keys, so
// deletes and re-inserts keep retiring nodes that concurrent readers on
// other connections may still be traversing — exactly the traffic shape
// hazard-pointer schemes must survive. With gosmrd in -mode detect the
// arena validates every access; kvload exits non-zero if the scrape shows
// any use-after-free or double-free, making the pair a one-command
// end-to-end safety check.
//
// kvload implements the client half of the overload contract: a request
// answered StatusOverloaded is retried with jittered exponential backoff
// (up to -retries attempts) instead of being counted as served, every
// read carries a -req-timeout deadline, and shed/retried/failed totals
// are reported next to the latency numbers. Against a deliberately
// saturated server the expected outcome is nonzero sheds and retries but
// zero failures — the workload recovers to 100% completion.
//
// With -preload N, kvload first bulk-puts keys [0,N) over contiguous
// per-connection ranges (latencies discarded) before the measured phase:
// against the somap engine this walks the shard directories through
// their full doubling cascade, so the measured mix — and the separately
// reported GET-only p99 — observes the resized map.
//
// With -idle-conns N, kvload additionally parks N silent connections
// (one ping handshake each, source addresses rotated over 127.0.0.x by
// -src-ips) before the measured phase, and reads the server's post-GC
// memory and goroutine gauges with the fleet up: the -conns hot subset
// then measures latency while the fleet idles. The resulting cell
// carries idle_conns / bytes_per_conn / goroutines / live_handles /
// netpoll_kind, which `benchcompare -conns` gates — mostly-idle fleets
// must cost bounded bytes per conn, a conn-independent goroutine count,
// and a flat fast-path handle census.
//
// With -out, kvload writes a bench.ReclaimReport-shaped JSON artifact
// (one service-layer cell with latency percentiles and the store-wide
// smr.Stats) that cmd/benchcompare can diff against a previous run;
// -append merges the new cell into an existing report so the netpoll
// and goroutine-baseline phases of scripts/bench_conns.sh share one
// BENCH_conns.json.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gosmr/gosmr/internal/bench"
	"github.com/gosmr/gosmr/internal/kvsvc"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "gosmrd wire address")
		admin    = flag.String("admin", "", "gosmrd admin address to scrape after the run (empty skips)")
		conns    = flag.Int("conns", 8, "concurrent connections")
		requests = flag.Int("requests", 10000, "total requests across all connections")
		keys     = flag.Uint64("keys", 65536, "key space size")
		zipfS    = flag.Float64("zipf", 1.1, "Zipf skew exponent s (<=1 means uniform)")
		getPct   = flag.Int("get", 80, "percent gets")
		putPct   = flag.Int("put", 15, "percent puts (rest are deletes)")
		pipeline = flag.Int("pipeline", 32, "max in-flight requests per connection")
		seed     = flag.Int64("seed", 1, "workload RNG seed")
		preload  = flag.Uint64("preload", 0, "bulk-put keys [0,N) before the measured phase (forces somap directory grows)")
		out      = flag.String("out", "", "write a BENCH_kvsvc.json report here")
		note     = flag.String("note", "", "free-form tag appended to the workload string in output and reports")
		dialT    = flag.Duration("dial-timeout", 5*time.Second, "keep retrying the first dial for this long")

		reqT       = flag.Duration("req-timeout", 10*time.Second, "per-request response deadline (0 disables)")
		maxRetries = flag.Int("retries", 10, "max resends of a request answered StatusOverloaded")
		backoff    = flag.Duration("backoff", 2*time.Millisecond, "base retry backoff (doubles per attempt, jittered)")
		backoffMax = flag.Duration("backoff-max", 200*time.Millisecond, "retry backoff cap")

		idleConns = flag.Int("idle-conns", 0, "park this many extra idle connections while the -conns hot subset runs the measured mix (requires -admin)")
		idleHold  = flag.Duration("idle-hold", 2*time.Second, "settle time between the fleet coming up and the memory/goroutine reading")
		srcIPs    = flag.Int("src-ips", 1, "rotate fleet source addresses over 127.0.0.1..127.0.0.N (loopback only) to stretch the ephemeral port space")
		dialers   = flag.Int("dialers", 64, "parallel dial workers bringing the idle fleet up")
		appendOut = flag.Bool("append", false, "append the result cell to an existing -out report instead of overwriting it")
	)
	flag.Parse()
	if *conns < 1 || *requests < 1 || *pipeline < 1 || *keys < 2 {
		fmt.Fprintln(os.Stderr, "kvload: conns, requests, pipeline must be >= 1 and keys >= 2")
		os.Exit(2)
	}
	if *getPct < 0 || *putPct < 0 || *getPct+*putPct > 100 {
		fmt.Fprintln(os.Stderr, "kvload: -get and -put must be >= 0 and sum to <= 100")
		os.Exit(2)
	}

	// Preload phase: contiguous sequential put ranges, one per
	// connection, so N distinct keys land in the store before anything is
	// measured. Against the somap engine this drives the per-shard
	// directories through their full doubling cascade; the measured phase
	// then sees the *resized* map, which is exactly what the scaling gate
	// (p99 GET at 1M keys vs 10k) wants to observe. Preload latencies are
	// discarded.
	if *preload > 0 {
		pStart := time.Now()
		var pwg sync.WaitGroup
		var pmu sync.Mutex
		var ptotal connResult
		var pcount int64
		per := *preload / uint64(*conns)
		for c := 0; c < *conns; c++ {
			from := uint64(c) * per
			to := from + per
			if c == *conns-1 {
				to = *preload
			}
			if to == from {
				continue
			}
			pwg.Add(1)
			go func(from, to uint64) {
				defer pwg.Done()
				start := from
				res := runConn(*addr, *dialT, connParams{
					ops:        int(to - from),
					keys:       *keys,
					pipeline:   *pipeline,
					reqTimeout: *reqT,
					maxRetries: *maxRetries,
					backoff:    *backoff,
					backoffMax: *backoffMax,
					seqPutFrom: &start,
				})
				pmu.Lock()
				pcount += int64(len(res.lats))
				ptotal.statusErrs += res.statusErrs
				ptotal.failed += res.failed
				pmu.Unlock()
			}(from, to)
		}
		pwg.Wait()
		if ptotal.statusErrs > 0 || ptotal.failed > 0 || pcount != int64(*preload) {
			fmt.Fprintf(os.Stderr, "kvload: preload incomplete: %d/%d puts (errs=%d failed=%d)\n",
				pcount, *preload, ptotal.statusErrs, ptotal.failed)
			os.Exit(1)
		}
		fmt.Printf("kvload: preloaded %d keys in %v\n", *preload, time.Since(pStart).Round(time.Millisecond))
	}

	// Idle-fleet phase: park -idle-conns extra connections (each completes
	// one ping handshake, then goes silent) and read the server's post-GC
	// memory and goroutine gauges with the fleet up but BEFORE the hot
	// subset runs, so bytes-per-conn isolates connection cost from both
	// the preloaded store and the hot traffic's allocations.
	var (
		fleet []net.Conn
		idle  *idleCell
	)
	if *idleConns > 0 {
		if *admin == "" {
			fmt.Fprintln(os.Stderr, "kvload: -idle-conns requires -admin for the memory/goroutine gauges")
			os.Exit(2)
		}
		// The pre-fleet scrape is the first contact with the daemon, so it
		// retries like the first wire dial does (the scripts start kvload
		// and gosmrd together).
		var base *kvsvc.AdminStats
		for deadline := time.Now().Add(*dialT); ; time.Sleep(50 * time.Millisecond) {
			var err error
			if base, err = scrapeGC(*admin); err == nil {
				break
			}
			if time.Now().After(deadline) {
				fmt.Fprintln(os.Stderr, "kvload: admin scrape (pre-fleet):", err)
				os.Exit(1)
			}
		}
		fStart := time.Now()
		var err error
		fleet, err = openIdleFleet(*addr, *idleConns, *srcIPs, *dialers, *dialT)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvload: idle fleet:", err)
			os.Exit(1)
		}
		fmt.Printf("kvload: idle fleet of %d conns up in %v (%d source ips)\n",
			len(fleet), time.Since(fStart).Round(time.Millisecond), *srcIPs)
		time.Sleep(*idleHold)
		with, err := scrapeGC(*admin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvload: admin scrape (fleet up):", err)
			os.Exit(1)
		}
		if with.LiveConns < int64(*idleConns) {
			fmt.Fprintf(os.Stderr, "kvload: fleet eroded: live_conns=%d < idle fleet %d (idle-evicted? raise gosmrd -idle-timeout)\n",
				with.LiveConns, *idleConns)
			os.Exit(1)
		}
		idle = &idleCell{
			conns:      *idleConns,
			goroutines: with.Goroutines,
			bytesPerConn: float64((with.HeapInuseBytes+with.StackInuseBytes)-
				(base.HeapInuseBytes+base.StackInuseBytes)) / float64(*idleConns),
		}
		fmt.Printf("kvload: fleet gauges: goroutines=%d bytes_per_conn=%.1f (heap+stack delta) netpoll=%v/%s\n",
			idle.goroutines, idle.bytesPerConn, with.Netpoll, with.NetpollKind)
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		allLats []int64 // per-request latency, ns
		getLats []int64 // GET-only subset
		total   connResult
	)
	start := time.Now()
	for c := 0; c < *conns; c++ {
		ops := *requests / *conns
		if c < *requests%*conns {
			ops++
		}
		if ops == 0 {
			continue
		}
		wg.Add(1)
		go func(c, ops int) {
			defer wg.Done()
			res := runConn(*addr, *dialT, connParams{
				ops:        ops,
				keys:       *keys,
				zipfS:      *zipfS,
				getPct:     *getPct,
				putPct:     *putPct,
				pipeline:   *pipeline,
				seed:       *seed + int64(c)*0x9E3779B9,
				reqTimeout: *reqT,
				maxRetries: *maxRetries,
				backoff:    *backoff,
				backoffMax: *backoffMax,
			})
			mu.Lock()
			allLats = append(allLats, res.lats...)
			getLats = append(getLats, res.getLats...)
			total.statusErrs += res.statusErrs
			total.shed += res.shed
			total.retried += res.retried
			total.failed += res.failed
			mu.Unlock()
		}(c, ops)
	}
	wg.Wait()
	wall := time.Since(start)

	if len(allLats) == 0 {
		fmt.Fprintln(os.Stderr, "kvload: no responses received")
		os.Exit(1)
	}
	sort.Slice(allLats, func(i, j int) bool { return allLats[i] < allLats[j] })
	p50 := percentileUs(allLats, 0.50)
	p95 := percentileUs(allLats, 0.95)
	p99 := percentileUs(allLats, 0.99)
	var p50Get, p99Get float64
	if len(getLats) > 0 {
		sort.Slice(getLats, func(i, j int) bool { return getLats[i] < getLats[j] })
		p50Get = percentileUs(getLats, 0.50)
		p99Get = percentileUs(getLats, 0.99)
	}
	opsPerSec := float64(len(allLats)) / wall.Seconds()

	delPct := 100 - *getPct - *putPct
	workload := fmt.Sprintf("zipf(%.2f) get=%d%%/put=%d%%/del=%d%% pipeline=%d", *zipfS, *getPct, *putPct, delPct, *pipeline)
	if *note != "" {
		workload += " " + *note
	}
	fmt.Printf("kvload: %d ops over %d conns in %v (%s)\n", len(allLats), *conns, wall.Round(time.Millisecond), workload)
	fmt.Printf("kvload: throughput %.0f ops/s, latency p50=%.1fµs p95=%.1fµs p99=%.1fµs p50(get)=%.1fµs p99(get)=%.1fµs\n", opsPerSec, p50, p95, p99, p50Get, p99Get)
	fmt.Printf("kvload: overload shed=%d retried=%d failed=%d\n", total.shed, total.retried, total.failed)
	if n := total.statusErrs; n > 0 {
		fmt.Fprintf(os.Stderr, "kvload: %d requests returned StatusErr\n", n)
		os.Exit(1)
	}
	if total.failed > 0 {
		fmt.Fprintf(os.Stderr, "kvload: %d requests still overloaded after %d retries\n", total.failed, *maxRetries)
		os.Exit(1)
	}
	if got := len(allLats); got != *requests {
		fmt.Fprintf(os.Stderr, "kvload: sent %d requests but completed %d\n", *requests, got)
		os.Exit(1)
	}

	// Scrape the admin endpoint for the server-side view: live per-shard
	// smr.Stats, the retired-node high-water mark, and — the safety gate —
	// detect-mode arena violation counters.
	var adminStats *kvsvc.AdminStats
	if *admin != "" {
		st, err := scrape(*admin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvload: admin scrape:", err)
			os.Exit(1)
		}
		adminStats = st
		fmt.Printf("kvload: server %s ops=%d fastpath_gets=%d peak_unreclaimed=%d arena_peak_bytes=%d\n",
			st.Scheme, st.ServedOps, st.FastpathGets, st.Total.PeakUnreclaimed, st.ArenaPeakBytes)
		fmt.Printf("kvload: server shed_total=%d (budget=%d queue_full=%d conns=%d dropped=%d) evicted_idle=%d evicted_slow=%d\n",
			st.ShedTotal, st.ShedBudget, st.ShedQueueFull, st.ShedConns, st.ShedDropped, st.EvictedIdle, st.EvictedSlow)
		if st.ArenaUAF > 0 || st.ArenaDoubleFree > 0 {
			fmt.Fprintf(os.Stderr, "kvload: ARENA VIOLATIONS: uaf=%d double_free=%d\n", st.ArenaUAF, st.ArenaDoubleFree)
			os.Exit(1)
		}
	}

	// Fleet teardown: the post-hot-phase scrape above already captured
	// the handle census with fleet AND hot traffic live; now close every
	// parked conn and insist the server's accounting drains to zero —
	// the client-side half of the flat-registry contract.
	if fleet != nil {
		if adminStats != nil {
			idle.liveHandles = adminStats.LiveHandles
			idle.netpollKind = adminStats.NetpollKind
		}
		for _, c := range fleet {
			c.Close()
		}
		deadline := time.Now().Add(60 * time.Second)
		for {
			st, err := scrape(*admin)
			if err != nil {
				fmt.Fprintln(os.Stderr, "kvload: admin scrape (teardown):", err)
				os.Exit(1)
			}
			if st.LiveConns == 0 {
				fmt.Printf("kvload: fleet torn down, live_conns=0 live_handles=%d\n", st.LiveHandles)
				break
			}
			if time.Now().After(deadline) {
				fmt.Fprintf(os.Stderr, "kvload: fleet teardown stalled: live_conns=%d after 60s\n", st.LiveConns)
				os.Exit(1)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	if *out != "" {
		if err := writeReport(*out, *appendOut, adminStats, idle, *conns, *keys, *preload, workload, opsPerSec, p50, p95, p99, p50Get, p99Get); err != nil {
			fmt.Fprintln(os.Stderr, "kvload: write report:", err)
			os.Exit(1)
		}
		fmt.Printf("kvload: wrote %s\n", *out)
	}
}

type connParams struct {
	ops        int
	keys       uint64
	zipfS      float64
	getPct     int
	putPct     int
	pipeline   int
	seed       int64
	reqTimeout time.Duration
	maxRetries int
	backoff    time.Duration
	backoffMax time.Duration
	// seqPutFrom, when non-nil, switches the connection from the random
	// mix to the preload shape: ops sequential puts starting at
	// *seqPutFrom (key k gets value k+1). Latencies still accumulate but
	// the caller discards them.
	seqPutFrom *uint64
}

// connResult is one connection's tally. Latencies are per completed
// request and per attempt (the clock restarts on each resend): a retried
// request measures the attempt that succeeded, while the shed/retried
// counters report how much extra work overload cost.
type connResult struct {
	lats       []int64
	getLats    []int64 // subset of lats: completed OpGet requests
	statusErrs int64
	shed       int64 // StatusOverloaded responses received
	retried    int64 // resends scheduled (≤ shed; the rest exhausted their retries)
	failed     int64 // requests abandoned after maxRetries
}

// slot is the per-request state for one pipeline window position.
// Request IDs are slot indices handed out through a free-list, so a
// slot is exclusively owned from send to final response and the state
// cannot be clobbered even when retries complete out of order (the old
// id-mod-pipeline ring assumed strictly ordered completion, which
// StatusOverloaded resends break). The mutex covers the handoff between
// the sender writing req/start and the receiver reading them; there is
// no channel edge between those two, only the server round-trip.
type slot struct {
	mu    sync.Mutex
	req   kvsvc.Request
	tries int
	start int64
}

// runConn drives one pipelined connection: a sender that keeps up to
// pipeline requests outstanding (flushing its write buffer only when it
// would otherwise block, so a burst costs one syscall) and a receiver
// that completes slots, schedules backoff resends for StatusOverloaded,
// and enforces the per-request response deadline.
func runConn(addr string, dialT time.Duration, p connParams) connResult {
	c := dialRetry(addr, dialT)
	defer c.Close()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)

	rng := rand.New(rand.NewSource(p.seed))
	var zipf *rand.Zipf
	if p.zipfS > 1 {
		zipf = rand.NewZipf(rng, p.zipfS, 1, p.keys-1)
	}
	nextKey := func() uint64 {
		if zipf != nil {
			return zipf.Uint64()
		}
		return uint64(rng.Int63n(int64(p.keys)))
	}

	slots := make([]slot, p.pipeline)
	free := make(chan uint32, p.pipeline)
	for i := 0; i < p.pipeline; i++ {
		free <- uint32(i)
	}
	// Resends parked by backoff timers. At most one per outstanding slot,
	// so the buffer guarantees a fired timer never blocks (and a timer
	// that outlives an aborted run just parks its send in the buffer).
	retries := make(chan kvsvc.Request, p.pipeline)
	dead := make(chan struct{})     // receiver bailed out; sender must stop
	doneRecv := make(chan struct{}) // all ops completed
	var outstanding atomic.Int64

	var res connResult
	res.lats = make([]int64, 0, p.ops)

	var recvWG sync.WaitGroup
	recvWG.Add(1)
	go func() {
		defer recvWG.Done()
		var frame []byte
		for completed := 0; completed < p.ops; {
			if p.reqTimeout > 0 {
				c.SetReadDeadline(time.Now().Add(p.reqTimeout))
			}
			var err error
			frame, err = kvsvc.ReadFrame(br, frame)
			if err != nil {
				if errors.Is(err, os.ErrDeadlineExceeded) && outstanding.Load() == 0 {
					// Nothing in flight (every live request is parked in a
					// backoff timer), so no frame was torn mid-read — the
					// stream is intact and the deadline is not a timeout.
					continue
				}
				fmt.Fprintf(os.Stderr, "kvload: read response (%d/%d done, %d outstanding): %v\n",
					completed, p.ops, outstanding.Load(), err)
				close(dead)
				return
			}
			resp, err := kvsvc.DecodeResponse(frame)
			if err != nil {
				fmt.Fprintln(os.Stderr, "kvload: decode response:", err)
				close(dead)
				return
			}
			if int(resp.ID) >= p.pipeline {
				fmt.Fprintf(os.Stderr, "kvload: response id %d outside pipeline window %d\n", resp.ID, p.pipeline)
				close(dead)
				return
			}
			sl := &slots[resp.ID]
			if resp.Status == kvsvc.StatusOverloaded {
				res.shed++
				sl.mu.Lock()
				sl.tries++
				tries := sl.tries
				req := sl.req
				sl.mu.Unlock()
				if tries > p.maxRetries {
					res.failed++
					completed++
					outstanding.Add(-1)
					free <- resp.ID
					continue
				}
				res.retried++
				time.AfterFunc(jitteredBackoff(p.backoff, p.backoffMax, tries), func() {
					retries <- req
				})
				continue
			}
			sl.mu.Lock()
			lat := time.Now().UnixNano() - sl.start
			op := sl.req.Op
			sl.mu.Unlock()
			res.lats = append(res.lats, lat)
			if op == kvsvc.OpGet {
				res.getLats = append(res.getLats, lat)
			}
			if resp.Status == kvsvc.StatusErr {
				res.statusErrs++
			}
			completed++
			outstanding.Add(-1)
			free <- resp.ID
		}
		close(doneRecv)
	}()

	var buf []byte
	broken := false
	send := func(req kvsvc.Request, fresh bool) {
		sl := &slots[req.ID]
		sl.mu.Lock()
		sl.req = req
		if fresh {
			sl.tries = 0
		}
		sl.start = time.Now().UnixNano()
		sl.mu.Unlock()
		buf = kvsvc.AppendRequest(buf[:0], req)
		if _, err := bw.Write(buf); err != nil {
			fmt.Fprintln(os.Stderr, "kvload: write:", err)
			broken = true
		}
	}
	newRequest := func(id uint32) kvsvc.Request {
		if p.seqPutFrom != nil {
			k := *p.seqPutFrom
			*p.seqPutFrom++
			return kvsvc.Request{ID: id, Op: kvsvc.OpPut, Key: k, Val: k + 1}
		}
		req := kvsvc.Request{ID: id, Key: nextKey()}
		switch pick := rng.Intn(100); {
		case pick < p.getPct:
			req.Op = kvsvc.OpGet
		case pick < p.getPct+p.putPct:
			req.Op = kvsvc.OpPut
			req.Val = req.Key + 1
		default:
			req.Op = kvsvc.OpDel
		}
		return req
	}

	sent := 0
	for !broken {
		// Resends first: a shed request already holds its slot, so it
		// gates the window harder than a fresh request would.
		select {
		case r := <-retries:
			send(r, false)
			continue
		default:
		}
		if sent >= p.ops {
			// Everything sent; stay alive to push resends until the
			// receiver completes (or gives up on) the stragglers.
			bw.Flush()
			select {
			case r := <-retries:
				send(r, false)
			case <-doneRecv:
				return finish(bw, &recvWG, &res)
			case <-dead:
				return finish(bw, &recvWG, &res)
			}
			continue
		}
		select {
		case r := <-retries:
			send(r, false)
		case id := <-free:
			outstanding.Add(1)
			sent++
			send(newRequest(id), true)
		case <-dead:
			return finish(bw, &recvWG, &res)
		default:
			// The window is full: push the buffered burst to the server
			// before blocking for a free slot or a resend.
			bw.Flush()
			select {
			case r := <-retries:
				send(r, false)
			case id := <-free:
				outstanding.Add(1)
				sent++
				send(newRequest(id), true)
			case <-dead:
				return finish(bw, &recvWG, &res)
			}
		}
	}
	return finish(bw, &recvWG, &res)
}

// finish flushes whatever is buffered, waits for the receiver, and
// returns the tallied result.
func finish(bw *bufio.Writer, recvWG *sync.WaitGroup, res *connResult) connResult {
	bw.Flush()
	recvWG.Wait()
	return *res
}

// jitteredBackoff is base doubled per attempt (1-based), capped at max,
// then jittered into [d/2, d] so clients shed together do not retry in
// lockstep and re-overload the server in phase.
func jitteredBackoff(base, max time.Duration, attempt int) time.Duration {
	d := base << uint(attempt-1)
	if d <= 0 || d > max {
		d = max
	}
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// dialRetry keeps retrying the dial until the deadline so kvload can be
// started alongside gosmrd (the smoke script does exactly that).
func dialRetry(addr string, d time.Duration) net.Conn {
	deadline := time.Now().Add(d)
	for {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			return c
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "kvload: dial %s: %v\n", addr, err)
			os.Exit(1)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// idleCell accumulates the idle-fleet gauges that end up on the report
// cell: how many conns were parked, what each cost in post-GC server
// memory, the server goroutine count with the fleet live, and the
// fast-path handle census after the hot phase.
type idleCell struct {
	conns        int
	bytesPerConn float64
	goroutines   int
	liveHandles  int
	netpollKind  string
}

// openIdleFleet dials n connections, completes one ping handshake on
// each (so every conn is registered server-side and provably working),
// and leaves them parked. With srcIPs > 1 the fleet's source addresses
// rotate over 127.0.0.1..127.0.0.srcIPs — every 127/8 address is local
// on loopback — so the ephemeral port space stops being the conn-count
// ceiling long before 100k.
func openIdleFleet(addr string, n, srcIPs, dialers int, dialT time.Duration) ([]net.Conn, error) {
	if dialers < 1 {
		dialers = 1
	}
	if srcIPs < 1 {
		srcIPs = 1
	}
	fleet := make([]net.Conn, n)
	var (
		wg      sync.WaitGroup
		firstMu sync.Mutex
		first   error
	)
	fail := func(err error) {
		firstMu.Lock()
		if first == nil {
			first = err
		}
		firstMu.Unlock()
	}
	ping := kvsvc.AppendRequest(nil, kvsvc.Request{Op: kvsvc.OpPing})
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < dialers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var hdr [4]byte
			payload := make([]byte, 64)
			for i := range next {
				firstMu.Lock()
				bail := first != nil
				firstMu.Unlock()
				if bail {
					return
				}
				d := net.Dialer{Timeout: dialT}
				if srcIPs > 1 {
					d.LocalAddr = &net.TCPAddr{IP: net.IPv4(127, 0, 0, byte(1+i%srcIPs))}
				}
				c, err := d.Dial("tcp", addr)
				if err != nil {
					fail(fmt.Errorf("dial conn %d: %w", i, err))
					return
				}
				c.SetDeadline(time.Now().Add(dialT))
				if _, err := c.Write(ping); err != nil {
					fail(fmt.Errorf("conn %d ping: %w", i, err))
					c.Close()
					return
				}
				if _, err := io.ReadFull(c, hdr[:]); err != nil {
					fail(fmt.Errorf("conn %d pong header: %w", i, err))
					c.Close()
					return
				}
				ln := int(uint32(hdr[0])<<24 | uint32(hdr[1])<<16 | uint32(hdr[2])<<8 | uint32(hdr[3]))
				if ln <= 0 || ln > len(payload) {
					fail(fmt.Errorf("conn %d pong length %d", i, ln))
					c.Close()
					return
				}
				if _, err := io.ReadFull(c, payload[:ln]); err != nil {
					fail(fmt.Errorf("conn %d pong body: %w", i, err))
					c.Close()
					return
				}
				c.SetDeadline(time.Time{})
				fleet[i] = c
			}
		}()
	}
	wg.Wait()
	if first != nil {
		for _, c := range fleet {
			if c != nil {
				c.Close()
			}
		}
		return nil, first
	}
	return fleet, nil
}

// scrapeGC scrapes /stats?gc=1: the server collects first, so
// heap_inuse_bytes is live memory rather than allocator float.
func scrapeGC(admin string) (*kvsvc.AdminStats, error) {
	resp, err := http.Get("http://" + admin + "/stats?gc=1")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("admin /stats?gc=1: HTTP %d", resp.StatusCode)
	}
	var st kvsvc.AdminStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func scrape(admin string) (*kvsvc.AdminStats, error) {
	resp, err := http.Get("http://" + admin + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("admin /stats: HTTP %d", resp.StatusCode)
	}
	var st kvsvc.AdminStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// percentileUs returns the p-quantile of sorted ns latencies in µs.
func percentileUs(sorted []int64, p float64) float64 {
	idx := int(p * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / 1e3
}

// writeReport emits a bench.ReclaimReport with one service-layer cell so
// cmd/benchcompare can diff kvload runs like any other bench artifact.
// The scan section is left zero: there is no in-process scan microbench
// in a network run, and benchcompare skips the scan gate when both
// reports agree it is absent.
func writeReport(path string, appendCell bool, admin *kvsvc.AdminStats, idle *idleCell, conns int, keys, preloaded uint64, workload string, opsPerSec, p50, p95, p99, p50Get, p99Get float64) error {
	cell := bench.CellResult{
		DS:            "kvsvc",
		Scheme:        "unknown",
		Threads:       conns,
		KeyRange:      keys,
		Workload:      workload,
		MopsPerSec:    opsPerSec / 1e6,
		NsPerOp:       1e9 / opsPerSec,
		P50Us:         p50,
		P95Us:         p95,
		P99Us:         p99,
		P50GetUs:      p50Get,
		P99GetUs:      p99Get,
		PreloadedKeys: preloaded,
	}
	if admin != nil {
		cell.Scheme = admin.Scheme
		cell.Engine = admin.Engine
		cell.FastpathGets = admin.FastpathGets
		cell.Stats = admin.Total
	}
	if idle != nil {
		cell.IdleConns = idle.conns
		cell.BytesPerConn = idle.bytesPerConn
		cell.Goroutines = idle.goroutines
		cell.LiveHandles = idle.liveHandles
		cell.NetpollKind = idle.netpollKind
	}
	report := bench.ReclaimReport{
		GeneratedBy: "kvload",
		Cells:       []bench.CellResult{cell},
	}
	if appendCell {
		if data, err := os.ReadFile(path); err == nil {
			var prev bench.ReclaimReport
			if err := json.Unmarshal(data, &prev); err != nil {
				return fmt.Errorf("-append: %s: %w", path, err)
			}
			prev.GeneratedBy = report.GeneratedBy
			prev.Cells = append(prev.Cells, cell)
			report = prev
		} else if !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
