// Command kvload drives a running gosmrd with a Zipf-skewed get/put/del
// mix over N pipelined connections, then reports throughput, request
// latency percentiles, and the reclamation high-water marks scraped from
// the daemon's admin endpoint.
//
//	kvload -addr 127.0.0.1:7070 -admin 127.0.0.1:7071 \
//	       -conns 8 -requests 100000 -zipf 1.1 -out BENCH_kvsvc.json
//
// The skew matters for SMR: a Zipf workload hammers a few hot keys, so
// deletes and re-inserts keep retiring nodes that concurrent readers on
// other connections may still be traversing — exactly the traffic shape
// hazard-pointer schemes must survive. With gosmrd in -mode detect the
// arena validates every access; kvload exits non-zero if the scrape shows
// any use-after-free or double-free, making the pair a one-command
// end-to-end safety check.
//
// kvload implements the client half of the overload contract: a request
// answered StatusOverloaded is retried with jittered exponential backoff
// (up to -retries attempts) instead of being counted as served, every
// read carries a -req-timeout deadline, and shed/retried/failed totals
// are reported next to the latency numbers. Against a deliberately
// saturated server the expected outcome is nonzero sheds and retries but
// zero failures — the workload recovers to 100% completion.
//
// With -preload N, kvload first bulk-puts keys [0,N) over contiguous
// per-connection ranges (latencies discarded) before the measured phase:
// against the somap engine this walks the shard directories through
// their full doubling cascade, so the measured mix — and the separately
// reported GET-only p99 — observes the resized map.
//
// With -out, kvload writes a bench.ReclaimReport-shaped JSON artifact
// (one service-layer cell with latency percentiles and the store-wide
// smr.Stats) that cmd/benchcompare can diff against a previous run.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gosmr/gosmr/internal/bench"
	"github.com/gosmr/gosmr/internal/kvsvc"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "gosmrd wire address")
		admin    = flag.String("admin", "", "gosmrd admin address to scrape after the run (empty skips)")
		conns    = flag.Int("conns", 8, "concurrent connections")
		requests = flag.Int("requests", 10000, "total requests across all connections")
		keys     = flag.Uint64("keys", 65536, "key space size")
		zipfS    = flag.Float64("zipf", 1.1, "Zipf skew exponent s (<=1 means uniform)")
		getPct   = flag.Int("get", 80, "percent gets")
		putPct   = flag.Int("put", 15, "percent puts (rest are deletes)")
		pipeline = flag.Int("pipeline", 32, "max in-flight requests per connection")
		seed     = flag.Int64("seed", 1, "workload RNG seed")
		preload  = flag.Uint64("preload", 0, "bulk-put keys [0,N) before the measured phase (forces somap directory grows)")
		out      = flag.String("out", "", "write a BENCH_kvsvc.json report here")
		note     = flag.String("note", "", "free-form tag appended to the workload string in output and reports")
		dialT    = flag.Duration("dial-timeout", 5*time.Second, "keep retrying the first dial for this long")

		reqT       = flag.Duration("req-timeout", 10*time.Second, "per-request response deadline (0 disables)")
		maxRetries = flag.Int("retries", 10, "max resends of a request answered StatusOverloaded")
		backoff    = flag.Duration("backoff", 2*time.Millisecond, "base retry backoff (doubles per attempt, jittered)")
		backoffMax = flag.Duration("backoff-max", 200*time.Millisecond, "retry backoff cap")
	)
	flag.Parse()
	if *conns < 1 || *requests < 1 || *pipeline < 1 || *keys < 2 {
		fmt.Fprintln(os.Stderr, "kvload: conns, requests, pipeline must be >= 1 and keys >= 2")
		os.Exit(2)
	}
	if *getPct < 0 || *putPct < 0 || *getPct+*putPct > 100 {
		fmt.Fprintln(os.Stderr, "kvload: -get and -put must be >= 0 and sum to <= 100")
		os.Exit(2)
	}

	// Preload phase: contiguous sequential put ranges, one per
	// connection, so N distinct keys land in the store before anything is
	// measured. Against the somap engine this drives the per-shard
	// directories through their full doubling cascade; the measured phase
	// then sees the *resized* map, which is exactly what the scaling gate
	// (p99 GET at 1M keys vs 10k) wants to observe. Preload latencies are
	// discarded.
	if *preload > 0 {
		pStart := time.Now()
		var pwg sync.WaitGroup
		var pmu sync.Mutex
		var ptotal connResult
		var pcount int64
		per := *preload / uint64(*conns)
		for c := 0; c < *conns; c++ {
			from := uint64(c) * per
			to := from + per
			if c == *conns-1 {
				to = *preload
			}
			if to == from {
				continue
			}
			pwg.Add(1)
			go func(from, to uint64) {
				defer pwg.Done()
				start := from
				res := runConn(*addr, *dialT, connParams{
					ops:        int(to - from),
					keys:       *keys,
					pipeline:   *pipeline,
					reqTimeout: *reqT,
					maxRetries: *maxRetries,
					backoff:    *backoff,
					backoffMax: *backoffMax,
					seqPutFrom: &start,
				})
				pmu.Lock()
				pcount += int64(len(res.lats))
				ptotal.statusErrs += res.statusErrs
				ptotal.failed += res.failed
				pmu.Unlock()
			}(from, to)
		}
		pwg.Wait()
		if ptotal.statusErrs > 0 || ptotal.failed > 0 || pcount != int64(*preload) {
			fmt.Fprintf(os.Stderr, "kvload: preload incomplete: %d/%d puts (errs=%d failed=%d)\n",
				pcount, *preload, ptotal.statusErrs, ptotal.failed)
			os.Exit(1)
		}
		fmt.Printf("kvload: preloaded %d keys in %v\n", *preload, time.Since(pStart).Round(time.Millisecond))
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		allLats []int64 // per-request latency, ns
		getLats []int64 // GET-only subset
		total   connResult
	)
	start := time.Now()
	for c := 0; c < *conns; c++ {
		ops := *requests / *conns
		if c < *requests%*conns {
			ops++
		}
		if ops == 0 {
			continue
		}
		wg.Add(1)
		go func(c, ops int) {
			defer wg.Done()
			res := runConn(*addr, *dialT, connParams{
				ops:        ops,
				keys:       *keys,
				zipfS:      *zipfS,
				getPct:     *getPct,
				putPct:     *putPct,
				pipeline:   *pipeline,
				seed:       *seed + int64(c)*0x9E3779B9,
				reqTimeout: *reqT,
				maxRetries: *maxRetries,
				backoff:    *backoff,
				backoffMax: *backoffMax,
			})
			mu.Lock()
			allLats = append(allLats, res.lats...)
			getLats = append(getLats, res.getLats...)
			total.statusErrs += res.statusErrs
			total.shed += res.shed
			total.retried += res.retried
			total.failed += res.failed
			mu.Unlock()
		}(c, ops)
	}
	wg.Wait()
	wall := time.Since(start)

	if len(allLats) == 0 {
		fmt.Fprintln(os.Stderr, "kvload: no responses received")
		os.Exit(1)
	}
	sort.Slice(allLats, func(i, j int) bool { return allLats[i] < allLats[j] })
	p50 := percentileUs(allLats, 0.50)
	p95 := percentileUs(allLats, 0.95)
	p99 := percentileUs(allLats, 0.99)
	var p50Get, p99Get float64
	if len(getLats) > 0 {
		sort.Slice(getLats, func(i, j int) bool { return getLats[i] < getLats[j] })
		p50Get = percentileUs(getLats, 0.50)
		p99Get = percentileUs(getLats, 0.99)
	}
	opsPerSec := float64(len(allLats)) / wall.Seconds()

	delPct := 100 - *getPct - *putPct
	workload := fmt.Sprintf("zipf(%.2f) get=%d%%/put=%d%%/del=%d%% pipeline=%d", *zipfS, *getPct, *putPct, delPct, *pipeline)
	if *note != "" {
		workload += " " + *note
	}
	fmt.Printf("kvload: %d ops over %d conns in %v (%s)\n", len(allLats), *conns, wall.Round(time.Millisecond), workload)
	fmt.Printf("kvload: throughput %.0f ops/s, latency p50=%.1fµs p95=%.1fµs p99=%.1fµs p50(get)=%.1fµs p99(get)=%.1fµs\n", opsPerSec, p50, p95, p99, p50Get, p99Get)
	fmt.Printf("kvload: overload shed=%d retried=%d failed=%d\n", total.shed, total.retried, total.failed)
	if n := total.statusErrs; n > 0 {
		fmt.Fprintf(os.Stderr, "kvload: %d requests returned StatusErr\n", n)
		os.Exit(1)
	}
	if total.failed > 0 {
		fmt.Fprintf(os.Stderr, "kvload: %d requests still overloaded after %d retries\n", total.failed, *maxRetries)
		os.Exit(1)
	}
	if got := len(allLats); got != *requests {
		fmt.Fprintf(os.Stderr, "kvload: sent %d requests but completed %d\n", *requests, got)
		os.Exit(1)
	}

	// Scrape the admin endpoint for the server-side view: live per-shard
	// smr.Stats, the retired-node high-water mark, and — the safety gate —
	// detect-mode arena violation counters.
	var adminStats *kvsvc.AdminStats
	if *admin != "" {
		st, err := scrape(*admin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvload: admin scrape:", err)
			os.Exit(1)
		}
		adminStats = st
		fmt.Printf("kvload: server %s ops=%d fastpath_gets=%d peak_unreclaimed=%d arena_peak_bytes=%d\n",
			st.Scheme, st.ServedOps, st.FastpathGets, st.Total.PeakUnreclaimed, st.ArenaPeakBytes)
		fmt.Printf("kvload: server shed_total=%d (budget=%d queue_full=%d conns=%d dropped=%d) evicted_idle=%d evicted_slow=%d\n",
			st.ShedTotal, st.ShedBudget, st.ShedQueueFull, st.ShedConns, st.ShedDropped, st.EvictedIdle, st.EvictedSlow)
		if st.ArenaUAF > 0 || st.ArenaDoubleFree > 0 {
			fmt.Fprintf(os.Stderr, "kvload: ARENA VIOLATIONS: uaf=%d double_free=%d\n", st.ArenaUAF, st.ArenaDoubleFree)
			os.Exit(1)
		}
	}

	if *out != "" {
		if err := writeReport(*out, adminStats, *conns, *keys, *preload, workload, opsPerSec, p50, p95, p99, p50Get, p99Get); err != nil {
			fmt.Fprintln(os.Stderr, "kvload: write report:", err)
			os.Exit(1)
		}
		fmt.Printf("kvload: wrote %s\n", *out)
	}
}

type connParams struct {
	ops        int
	keys       uint64
	zipfS      float64
	getPct     int
	putPct     int
	pipeline   int
	seed       int64
	reqTimeout time.Duration
	maxRetries int
	backoff    time.Duration
	backoffMax time.Duration
	// seqPutFrom, when non-nil, switches the connection from the random
	// mix to the preload shape: ops sequential puts starting at
	// *seqPutFrom (key k gets value k+1). Latencies still accumulate but
	// the caller discards them.
	seqPutFrom *uint64
}

// connResult is one connection's tally. Latencies are per completed
// request and per attempt (the clock restarts on each resend): a retried
// request measures the attempt that succeeded, while the shed/retried
// counters report how much extra work overload cost.
type connResult struct {
	lats       []int64
	getLats    []int64 // subset of lats: completed OpGet requests
	statusErrs int64
	shed       int64 // StatusOverloaded responses received
	retried    int64 // resends scheduled (≤ shed; the rest exhausted their retries)
	failed     int64 // requests abandoned after maxRetries
}

// slot is the per-request state for one pipeline window position.
// Request IDs are slot indices handed out through a free-list, so a
// slot is exclusively owned from send to final response and the state
// cannot be clobbered even when retries complete out of order (the old
// id-mod-pipeline ring assumed strictly ordered completion, which
// StatusOverloaded resends break). The mutex covers the handoff between
// the sender writing req/start and the receiver reading them; there is
// no channel edge between those two, only the server round-trip.
type slot struct {
	mu    sync.Mutex
	req   kvsvc.Request
	tries int
	start int64
}

// runConn drives one pipelined connection: a sender that keeps up to
// pipeline requests outstanding (flushing its write buffer only when it
// would otherwise block, so a burst costs one syscall) and a receiver
// that completes slots, schedules backoff resends for StatusOverloaded,
// and enforces the per-request response deadline.
func runConn(addr string, dialT time.Duration, p connParams) connResult {
	c := dialRetry(addr, dialT)
	defer c.Close()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)

	rng := rand.New(rand.NewSource(p.seed))
	var zipf *rand.Zipf
	if p.zipfS > 1 {
		zipf = rand.NewZipf(rng, p.zipfS, 1, p.keys-1)
	}
	nextKey := func() uint64 {
		if zipf != nil {
			return zipf.Uint64()
		}
		return uint64(rng.Int63n(int64(p.keys)))
	}

	slots := make([]slot, p.pipeline)
	free := make(chan uint32, p.pipeline)
	for i := 0; i < p.pipeline; i++ {
		free <- uint32(i)
	}
	// Resends parked by backoff timers. At most one per outstanding slot,
	// so the buffer guarantees a fired timer never blocks (and a timer
	// that outlives an aborted run just parks its send in the buffer).
	retries := make(chan kvsvc.Request, p.pipeline)
	dead := make(chan struct{})     // receiver bailed out; sender must stop
	doneRecv := make(chan struct{}) // all ops completed
	var outstanding atomic.Int64

	var res connResult
	res.lats = make([]int64, 0, p.ops)

	var recvWG sync.WaitGroup
	recvWG.Add(1)
	go func() {
		defer recvWG.Done()
		var frame []byte
		for completed := 0; completed < p.ops; {
			if p.reqTimeout > 0 {
				c.SetReadDeadline(time.Now().Add(p.reqTimeout))
			}
			var err error
			frame, err = kvsvc.ReadFrame(br, frame)
			if err != nil {
				if errors.Is(err, os.ErrDeadlineExceeded) && outstanding.Load() == 0 {
					// Nothing in flight (every live request is parked in a
					// backoff timer), so no frame was torn mid-read — the
					// stream is intact and the deadline is not a timeout.
					continue
				}
				fmt.Fprintf(os.Stderr, "kvload: read response (%d/%d done, %d outstanding): %v\n",
					completed, p.ops, outstanding.Load(), err)
				close(dead)
				return
			}
			resp, err := kvsvc.DecodeResponse(frame)
			if err != nil {
				fmt.Fprintln(os.Stderr, "kvload: decode response:", err)
				close(dead)
				return
			}
			if int(resp.ID) >= p.pipeline {
				fmt.Fprintf(os.Stderr, "kvload: response id %d outside pipeline window %d\n", resp.ID, p.pipeline)
				close(dead)
				return
			}
			sl := &slots[resp.ID]
			if resp.Status == kvsvc.StatusOverloaded {
				res.shed++
				sl.mu.Lock()
				sl.tries++
				tries := sl.tries
				req := sl.req
				sl.mu.Unlock()
				if tries > p.maxRetries {
					res.failed++
					completed++
					outstanding.Add(-1)
					free <- resp.ID
					continue
				}
				res.retried++
				time.AfterFunc(jitteredBackoff(p.backoff, p.backoffMax, tries), func() {
					retries <- req
				})
				continue
			}
			sl.mu.Lock()
			lat := time.Now().UnixNano() - sl.start
			op := sl.req.Op
			sl.mu.Unlock()
			res.lats = append(res.lats, lat)
			if op == kvsvc.OpGet {
				res.getLats = append(res.getLats, lat)
			}
			if resp.Status == kvsvc.StatusErr {
				res.statusErrs++
			}
			completed++
			outstanding.Add(-1)
			free <- resp.ID
		}
		close(doneRecv)
	}()

	var buf []byte
	broken := false
	send := func(req kvsvc.Request, fresh bool) {
		sl := &slots[req.ID]
		sl.mu.Lock()
		sl.req = req
		if fresh {
			sl.tries = 0
		}
		sl.start = time.Now().UnixNano()
		sl.mu.Unlock()
		buf = kvsvc.AppendRequest(buf[:0], req)
		if _, err := bw.Write(buf); err != nil {
			fmt.Fprintln(os.Stderr, "kvload: write:", err)
			broken = true
		}
	}
	newRequest := func(id uint32) kvsvc.Request {
		if p.seqPutFrom != nil {
			k := *p.seqPutFrom
			*p.seqPutFrom++
			return kvsvc.Request{ID: id, Op: kvsvc.OpPut, Key: k, Val: k + 1}
		}
		req := kvsvc.Request{ID: id, Key: nextKey()}
		switch pick := rng.Intn(100); {
		case pick < p.getPct:
			req.Op = kvsvc.OpGet
		case pick < p.getPct+p.putPct:
			req.Op = kvsvc.OpPut
			req.Val = req.Key + 1
		default:
			req.Op = kvsvc.OpDel
		}
		return req
	}

	sent := 0
	for !broken {
		// Resends first: a shed request already holds its slot, so it
		// gates the window harder than a fresh request would.
		select {
		case r := <-retries:
			send(r, false)
			continue
		default:
		}
		if sent >= p.ops {
			// Everything sent; stay alive to push resends until the
			// receiver completes (or gives up on) the stragglers.
			bw.Flush()
			select {
			case r := <-retries:
				send(r, false)
			case <-doneRecv:
				return finish(bw, &recvWG, &res)
			case <-dead:
				return finish(bw, &recvWG, &res)
			}
			continue
		}
		select {
		case r := <-retries:
			send(r, false)
		case id := <-free:
			outstanding.Add(1)
			sent++
			send(newRequest(id), true)
		case <-dead:
			return finish(bw, &recvWG, &res)
		default:
			// The window is full: push the buffered burst to the server
			// before blocking for a free slot or a resend.
			bw.Flush()
			select {
			case r := <-retries:
				send(r, false)
			case id := <-free:
				outstanding.Add(1)
				sent++
				send(newRequest(id), true)
			case <-dead:
				return finish(bw, &recvWG, &res)
			}
		}
	}
	return finish(bw, &recvWG, &res)
}

// finish flushes whatever is buffered, waits for the receiver, and
// returns the tallied result.
func finish(bw *bufio.Writer, recvWG *sync.WaitGroup, res *connResult) connResult {
	bw.Flush()
	recvWG.Wait()
	return *res
}

// jitteredBackoff is base doubled per attempt (1-based), capped at max,
// then jittered into [d/2, d] so clients shed together do not retry in
// lockstep and re-overload the server in phase.
func jitteredBackoff(base, max time.Duration, attempt int) time.Duration {
	d := base << uint(attempt-1)
	if d <= 0 || d > max {
		d = max
	}
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// dialRetry keeps retrying the dial until the deadline so kvload can be
// started alongside gosmrd (the smoke script does exactly that).
func dialRetry(addr string, d time.Duration) net.Conn {
	deadline := time.Now().Add(d)
	for {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			return c
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "kvload: dial %s: %v\n", addr, err)
			os.Exit(1)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func scrape(admin string) (*kvsvc.AdminStats, error) {
	resp, err := http.Get("http://" + admin + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("admin /stats: HTTP %d", resp.StatusCode)
	}
	var st kvsvc.AdminStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// percentileUs returns the p-quantile of sorted ns latencies in µs.
func percentileUs(sorted []int64, p float64) float64 {
	idx := int(p * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / 1e3
}

// writeReport emits a bench.ReclaimReport with one service-layer cell so
// cmd/benchcompare can diff kvload runs like any other bench artifact.
// The scan section is left zero: there is no in-process scan microbench
// in a network run, and benchcompare skips the scan gate when both
// reports agree it is absent.
func writeReport(path string, admin *kvsvc.AdminStats, conns int, keys, preloaded uint64, workload string, opsPerSec, p50, p95, p99, p50Get, p99Get float64) error {
	cell := bench.CellResult{
		DS:            "kvsvc",
		Scheme:        "unknown",
		Threads:       conns,
		KeyRange:      keys,
		Workload:      workload,
		MopsPerSec:    opsPerSec / 1e6,
		NsPerOp:       1e9 / opsPerSec,
		P50Us:         p50,
		P95Us:         p95,
		P99Us:         p99,
		P50GetUs:      p50Get,
		P99GetUs:      p99Get,
		PreloadedKeys: preloaded,
	}
	if admin != nil {
		cell.Scheme = admin.Scheme
		cell.Engine = admin.Engine
		cell.FastpathGets = admin.FastpathGets
		cell.Stats = admin.Total
	}
	report := bench.ReclaimReport{
		GeneratedBy: "kvload",
		Cells:       []bench.CellResult{cell},
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
