// Command kvload drives a running gosmrd with a Zipf-skewed get/put/del
// mix over N pipelined connections, then reports throughput, request
// latency percentiles, and the reclamation high-water marks scraped from
// the daemon's admin endpoint.
//
//	kvload -addr 127.0.0.1:7070 -admin 127.0.0.1:7071 \
//	       -conns 8 -requests 100000 -zipf 1.1 -out BENCH_kvsvc.json
//
// The skew matters for SMR: a Zipf workload hammers a few hot keys, so
// deletes and re-inserts keep retiring nodes that concurrent readers on
// other connections may still be traversing — exactly the traffic shape
// hazard-pointer schemes must survive. With gosmrd in -mode detect the
// arena validates every access; kvload exits non-zero if the scrape shows
// any use-after-free or double-free, making the pair a one-command
// end-to-end safety check.
//
// With -out, kvload writes a bench.ReclaimReport-shaped JSON artifact
// (one service-layer cell with latency percentiles and the store-wide
// smr.Stats) that cmd/benchcompare can diff against a previous run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gosmr/gosmr/internal/bench"
	"github.com/gosmr/gosmr/internal/kvsvc"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "gosmrd wire address")
		admin    = flag.String("admin", "", "gosmrd admin address to scrape after the run (empty skips)")
		conns    = flag.Int("conns", 8, "concurrent connections")
		requests = flag.Int("requests", 10000, "total requests across all connections")
		keys     = flag.Uint64("keys", 65536, "key space size")
		zipfS    = flag.Float64("zipf", 1.1, "Zipf skew exponent s (<=1 means uniform)")
		getPct   = flag.Int("get", 80, "percent gets")
		putPct   = flag.Int("put", 15, "percent puts (rest are deletes)")
		pipeline = flag.Int("pipeline", 32, "max in-flight requests per connection")
		seed     = flag.Int64("seed", 1, "workload RNG seed")
		out      = flag.String("out", "", "write a BENCH_kvsvc.json report here")
		dialT    = flag.Duration("dial-timeout", 5*time.Second, "keep retrying the first dial for this long")
	)
	flag.Parse()
	if *conns < 1 || *requests < 1 || *pipeline < 1 || *keys < 2 {
		fmt.Fprintln(os.Stderr, "kvload: conns, requests, pipeline must be >= 1 and keys >= 2")
		os.Exit(2)
	}
	if *getPct < 0 || *putPct < 0 || *getPct+*putPct > 100 {
		fmt.Fprintln(os.Stderr, "kvload: -get and -put must be >= 0 and sum to <= 100")
		os.Exit(2)
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		allLats []int64 // per-request latency, ns
		statErr atomic.Int64
	)
	start := time.Now()
	for c := 0; c < *conns; c++ {
		ops := *requests / *conns
		if c < *requests%*conns {
			ops++
		}
		if ops == 0 {
			continue
		}
		wg.Add(1)
		go func(c, ops int) {
			defer wg.Done()
			lats, errs := runConn(*addr, *dialT, connParams{
				ops:      ops,
				keys:     *keys,
				zipfS:    *zipfS,
				getPct:   *getPct,
				putPct:   *putPct,
				pipeline: *pipeline,
				seed:     *seed + int64(c)*0x9E3779B9,
			})
			statErr.Add(errs)
			mu.Lock()
			allLats = append(allLats, lats...)
			mu.Unlock()
		}(c, ops)
	}
	wg.Wait()
	wall := time.Since(start)

	if len(allLats) == 0 {
		fmt.Fprintln(os.Stderr, "kvload: no responses received")
		os.Exit(1)
	}
	sort.Slice(allLats, func(i, j int) bool { return allLats[i] < allLats[j] })
	p50 := percentileUs(allLats, 0.50)
	p95 := percentileUs(allLats, 0.95)
	p99 := percentileUs(allLats, 0.99)
	opsPerSec := float64(len(allLats)) / wall.Seconds()

	delPct := 100 - *getPct - *putPct
	workload := fmt.Sprintf("zipf(%.2f) get=%d%%/put=%d%%/del=%d%% pipeline=%d", *zipfS, *getPct, *putPct, delPct, *pipeline)
	fmt.Printf("kvload: %d ops over %d conns in %v (%s)\n", len(allLats), *conns, wall.Round(time.Millisecond), workload)
	fmt.Printf("kvload: throughput %.0f ops/s, latency p50=%.1fµs p95=%.1fµs p99=%.1fµs\n", opsPerSec, p50, p95, p99)
	if n := statErr.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "kvload: %d requests returned StatusErr\n", n)
		os.Exit(1)
	}
	if got := len(allLats); got != *requests {
		fmt.Fprintf(os.Stderr, "kvload: sent %d requests but got %d responses\n", *requests, got)
		os.Exit(1)
	}

	// Scrape the admin endpoint for the server-side view: live per-shard
	// smr.Stats, the retired-node high-water mark, and — the safety gate —
	// detect-mode arena violation counters.
	var adminStats *kvsvc.AdminStats
	if *admin != "" {
		st, err := scrape(*admin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvload: admin scrape:", err)
			os.Exit(1)
		}
		adminStats = st
		fmt.Printf("kvload: server %s ops=%d peak_unreclaimed=%d arena_peak_bytes=%d\n",
			st.Scheme, st.ServedOps, st.Total.PeakUnreclaimed, st.ArenaPeakBytes)
		if st.ArenaUAF > 0 || st.ArenaDoubleFree > 0 {
			fmt.Fprintf(os.Stderr, "kvload: ARENA VIOLATIONS: uaf=%d double_free=%d\n", st.ArenaUAF, st.ArenaDoubleFree)
			os.Exit(1)
		}
	}

	if *out != "" {
		if err := writeReport(*out, adminStats, *conns, *keys, workload, opsPerSec, p50, p95, p99); err != nil {
			fmt.Fprintln(os.Stderr, "kvload: write report:", err)
			os.Exit(1)
		}
		fmt.Printf("kvload: wrote %s\n", *out)
	}
}

type connParams struct {
	ops      int
	keys     uint64
	zipfS    float64
	getPct   int
	putPct   int
	pipeline int
	seed     int64
}

// runConn drives one pipelined connection: a sender that keeps up to
// pipeline requests outstanding (flushing its write buffer only when it
// would otherwise block, so a burst costs one syscall) and an in-line
// receiver loop timing each response against its send timestamp. Request
// IDs are sequential, so id mod pipeline indexes a start-time ring whose
// slots cannot collide while at most pipeline requests are in flight.
func runConn(addr string, dialT time.Duration, p connParams) (lats []int64, statusErrs int64) {
	c := dialRetry(addr, dialT)
	defer c.Close()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)

	rng := rand.New(rand.NewSource(p.seed))
	var zipf *rand.Zipf
	if p.zipfS > 1 {
		zipf = rand.NewZipf(rng, p.zipfS, 1, p.keys-1)
	}
	nextKey := func() uint64 {
		if zipf != nil {
			return zipf.Uint64()
		}
		return uint64(rng.Int63n(int64(p.keys)))
	}

	// Atomic slots: the sender stores a slot just after reacquiring its
	// token (so the receiver is done with the previous occupant), but the
	// store and the receiver's load have no channel edge between them —
	// the ordering flows through the server round-trip.
	starts := make([]atomic.Int64, p.pipeline)
	lats = make([]int64, 0, p.ops)
	tokens := make(chan struct{}, p.pipeline)
	for i := 0; i < p.pipeline; i++ {
		tokens <- struct{}{}
	}
	dead := make(chan struct{}) // closed if the receiver bails out early

	var recvWG sync.WaitGroup
	recvWG.Add(1)
	go func() {
		defer recvWG.Done()
		var frame []byte
		for i := 0; i < p.ops; i++ {
			var err error
			frame, err = kvsvc.ReadFrame(br, frame)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kvload: read response %d/%d: %v\n", i, p.ops, err)
				close(dead)
				return
			}
			resp, err := kvsvc.DecodeResponse(frame)
			if err != nil {
				fmt.Fprintln(os.Stderr, "kvload: decode response:", err)
				close(dead)
				return
			}
			lats = append(lats, time.Now().UnixNano()-starts[int(resp.ID)%p.pipeline].Load())
			if resp.Status == kvsvc.StatusErr {
				statusErrs++
			}
			tokens <- struct{}{}
		}
	}()

	var buf []byte
	for i := 0; i < p.ops; i++ {
		select {
		case <-tokens:
		default:
			// The window is full: push the buffered burst to the server
			// before blocking for a response token — or give up if the
			// receiver already declared the connection dead.
			bw.Flush()
			select {
			case <-tokens:
			case <-dead:
				recvWG.Wait()
				return lats, statusErrs
			}
		}
		req := kvsvc.Request{ID: uint32(i), Key: nextKey()}
		switch pick := rng.Intn(100); {
		case pick < p.getPct:
			req.Op = kvsvc.OpGet
		case pick < p.getPct+p.putPct:
			req.Op = kvsvc.OpPut
			req.Val = req.Key + 1
		default:
			req.Op = kvsvc.OpDel
		}
		starts[i%p.pipeline].Store(time.Now().UnixNano())
		buf = kvsvc.AppendRequest(buf[:0], req)
		if _, err := bw.Write(buf); err != nil {
			fmt.Fprintln(os.Stderr, "kvload: write:", err)
			break
		}
	}
	bw.Flush()
	recvWG.Wait()
	return lats, statusErrs
}

// dialRetry keeps retrying the dial until the deadline so kvload can be
// started alongside gosmrd (the smoke script does exactly that).
func dialRetry(addr string, d time.Duration) net.Conn {
	deadline := time.Now().Add(d)
	for {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			return c
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "kvload: dial %s: %v\n", addr, err)
			os.Exit(1)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func scrape(admin string) (*kvsvc.AdminStats, error) {
	resp, err := http.Get("http://" + admin + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("admin /stats: HTTP %d", resp.StatusCode)
	}
	var st kvsvc.AdminStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// percentileUs returns the p-quantile of sorted ns latencies in µs.
func percentileUs(sorted []int64, p float64) float64 {
	idx := int(p * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / 1e3
}

// writeReport emits a bench.ReclaimReport with one service-layer cell so
// cmd/benchcompare can diff kvload runs like any other bench artifact.
// The scan section is left zero: there is no in-process scan microbench
// in a network run, and benchcompare skips the scan gate when both
// reports agree it is absent.
func writeReport(path string, admin *kvsvc.AdminStats, conns int, keys uint64, workload string, opsPerSec, p50, p95, p99 float64) error {
	cell := bench.CellResult{
		DS:         "kvsvc",
		Scheme:     "unknown",
		Threads:    conns,
		KeyRange:   keys,
		Workload:   workload,
		MopsPerSec: opsPerSec / 1e6,
		NsPerOp:    1e9 / opsPerSec,
		P50Us:      p50,
		P95Us:      p95,
		P99Us:      p99,
	}
	if admin != nil {
		cell.Scheme = admin.Scheme
		cell.Stats = admin.Total
	}
	report := bench.ReclaimReport{
		GeneratedBy: "kvload",
		Cells:       []bench.CellResult{cell},
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
