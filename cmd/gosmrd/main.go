// Command gosmrd is the sharded key-value daemon: internal/kvsvc's
// Store and Server behind flags. Each shard owns its own reclamation
// domain and hash map; the scheme is selectable so the same traffic can
// be replayed against hp, hp++, ebr or pebr and compared via the admin
// endpoint's live smr.Stats.
//
//	gosmrd -addr :7070 -admin :7071 -shards 8 -scheme hp++
//
// SIGTERM/SIGINT trigger a graceful drain: stop accepting, let live
// connections finish their pipelines (bounded by -drain-timeout), stop
// the shard workers, run every scheme's final reclamation, and exit 0
// only if the drain was clean and — in -mode detect — the arena recorded
// zero use-after-free or double-free violations. The final store-wide
// stats snapshot is printed to stdout as JSON.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/kvsvc"
)

func main() {
	var (
		addr    = flag.String("addr", ":7070", "wire protocol listen address")
		admin   = flag.String("admin", ":7071", "HTTP admin listen address (empty disables)")
		shards  = flag.Int("shards", 8, "number of shards (one reclamation domain + map each)")
		scheme  = flag.String("scheme", "hp++", "reclamation scheme: "+strings.Join(kvsvc.Schemes, " | "))
		mode    = flag.String("mode", "reuse", "arena mode: reuse (serve) | detect (quarantine + UAF validation)")
		workers = flag.Int("workers", 2, "worker goroutines per shard")
		buckets = flag.Int("buckets", 256, "hash buckets per shard (initial directory size for -engine somap)")
		engine  = flag.String("engine", "somap", "shard map engine: "+strings.Join(kvsvc.Engines, " | "))
		queue   = flag.Int("queue", 256, "per-shard request queue depth")
		drainT  = flag.Duration("drain-timeout", 10*time.Second, "max time to wait for live connections on shutdown")

		maxConns  = flag.Int("max-conns", 1024, "max concurrent connections; accepts past the cap are shed (negative = unlimited)")
		budget    = flag.Int("conn-budget", 128, "per-connection in-flight response budget; excess requests get StatusOverloaded")
		idleT     = flag.Duration("idle-timeout", 2*time.Minute, "evict a connection idle this long (negative disables)")
		writeT    = flag.Duration("write-timeout", 10*time.Second, "evict a connection whose response write stalls this long (negative disables)")
		dispatchT = flag.Duration("dispatch-timeout", 20*time.Millisecond, "max wait for space on a full shard queue before shedding (negative = shed immediately)")
		connWbuf  = flag.Int("conn-wbuf", 64<<10, "per-connection kernel send buffer cap in bytes (negative = kernel default)")

		readFast  = flag.Bool("read-fastpath", true, "execute GETs on the connection goroutine instead of the worker pipeline")
		readCache = flag.Int("read-handle-cache", 0, "idle fast-path read handles pooled per shard across connections (0 = default, negative disables pooling)")

		netpollF        = flag.Bool("netpoll", false, "serve connections on the event-driven poller layer (internal/netpoll) instead of per-connection goroutines")
		pollers         = flag.Int("pollers", 0, "poller goroutines when -netpoll is set (0 = min(8, GOMAXPROCS))")
		netpollPortable = flag.Bool("netpoll-portable", false, "with -netpoll, force the portable net.Conn backend even where epoll is available")
	)
	flag.Parse()

	if !kvsvc.ValidScheme(*scheme) {
		fmt.Fprintf(os.Stderr, "gosmrd: unknown scheme %q (want one of %s)\n", *scheme, strings.Join(kvsvc.Schemes, ", "))
		os.Exit(2)
	}
	if !kvsvc.ValidEngine(*engine) {
		fmt.Fprintf(os.Stderr, "gosmrd: unknown engine %q (want one of %s)\n", *engine, strings.Join(kvsvc.Engines, ", "))
		os.Exit(2)
	}
	var am arena.Mode
	switch *mode {
	case "reuse":
		am = arena.ModeReuse
	case "detect":
		am = arena.ModeDetect
	default:
		fmt.Fprintf(os.Stderr, "gosmrd: unknown mode %q (want reuse or detect)\n", *mode)
		os.Exit(2)
	}

	store, err := kvsvc.NewStore(kvsvc.Config{
		Shards:  *shards,
		Scheme:  *scheme,
		Mode:    am,
		Buckets: *buckets,
		Engine:  *engine,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gosmrd:", err)
		os.Exit(2)
	}
	srv, err := kvsvc.NewServer(store, kvsvc.ServerConfig{
		Addr:            *addr,
		AdminAddr:       *admin,
		WorkersPerShard: *workers,
		QueueDepth:      *queue,
		MaxConns:        *maxConns,
		ConnBudget:      *budget,
		IdleTimeout:     *idleT,
		WriteTimeout:    *writeT,
		DispatchTimeout: *dispatchT,
		ConnWriteBuffer: *connWbuf,

		DisableReadFastPath: !*readFast,
		ReadHandleCache:     *readCache,

		Netpoll:         *netpollF,
		Pollers:         *pollers,
		NetpollPortable: *netpollPortable,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gosmrd:", err)
		os.Exit(2)
	}

	connLayer := "goroutine-per-conn"
	if *netpollF {
		connLayer = "netpoll/" + srv.Snapshot().NetpollKind
	}
	fmt.Fprintf(os.Stderr, "gosmrd: serving %d shards (%s engine, %s, %s mode, %s) on %s, admin on %s\n",
		*shards, *engine, *scheme, *mode, connLayer, srv.Addr(), srv.AdminAddr())

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	select {
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintln(os.Stderr, "gosmrd: serve:", err)
			os.Exit(1)
		}
		return
	case <-sigCtx.Done():
	}

	fmt.Fprintln(os.Stderr, "gosmrd: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	drainErr := srv.Shutdown(ctx)
	<-serveErr

	// Final snapshot to stdout: the machine-readable drain receipt.
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(srv.Snapshot())

	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "gosmrd: drain:", drainErr)
		os.Exit(1)
	}
	if unr := store.Unreclaimed(); unr != 0 && *scheme != "nr" {
		// After a full drain every reclaiming scheme must have handed back
		// all retired nodes (no stalled participants remain by
		// construction). NR leaks by design — it is the no-reclamation
		// throughput ceiling — so it is exempt.
		fmt.Fprintf(os.Stderr, "gosmrd: drain left %d nodes unreclaimed\n", unr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "gosmrd: clean drain")
}
