// Command benchcompare diffs two BENCH_reclaim.json reports and fails if
// the fresh run regresses beyond a tolerance band. It guards the pinned
// reclaim-scan microbench (the repo's perf contract: sorted_ns_per_op at
// the 64-hazard / 4096-retired point) and, more loosely, the per-scheme
// throughput cells.
//
//	benchcompare -base BENCH_reclaim.json -fresh results/BENCH_reclaim.fresh.json
//
// Exit status: 0 within tolerance, 1 on regression, 2 on usage/IO error.
//
// Throughput cells are noisy on shared CI runners, so they get a wider
// default band than the microbench and only warn unless -strictcells is
// set. The scan microbench is single-threaded and tight, so it is always
// enforced.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/gosmr/gosmr/internal/bench"
)

func main() {
	var (
		base        = flag.String("base", "BENCH_reclaim.json", "committed baseline report")
		fresh       = flag.String("fresh", "", "freshly generated report to compare against the baseline")
		tolerance   = flag.Float64("tolerance", 0.05, "allowed fractional regression for the scan microbench (0.05 = 5%)")
		cellTol     = flag.Float64("celltolerance", 0.25, "allowed fractional throughput drop per benchmark cell")
		strictCells = flag.Bool("strictcells", false, "fail (not just warn) on cell throughput regressions")
	)
	flag.Parse()
	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "benchcompare: -fresh is required")
		flag.Usage()
		os.Exit(2)
	}

	baseRep, err := load(*base)
	if err != nil {
		fatal(err)
	}
	freshRep, err := load(*fresh)
	if err != nil {
		fatal(err)
	}

	failed := false

	// The scan microbench is only comparable if both reports pinned the
	// same shape. Reports with no scan section at all (both shapes zero —
	// kvload's service-layer BENCH_kvsvc.json has no in-process scan
	// microbench) skip the gate instead of failing it.
	if baseRep.Scan.Hazards == 0 && baseRep.Scan.Retired == 0 &&
		freshRep.Scan.Hazards == 0 && freshRep.Scan.Retired == 0 {
		fmt.Println("scan microbench: absent from both reports (skipped)")
	} else {
		if baseRep.Scan.Hazards != freshRep.Scan.Hazards || baseRep.Scan.Retired != freshRep.Scan.Retired {
			fmt.Fprintf(os.Stderr, "benchcompare: scan shapes differ (base %d/%d, fresh %d/%d)\n",
				baseRep.Scan.Hazards, baseRep.Scan.Retired, freshRep.Scan.Hazards, freshRep.Scan.Retired)
			os.Exit(2)
		}
		delta := (freshRep.Scan.SortedNsPerOp - baseRep.Scan.SortedNsPerOp) / baseRep.Scan.SortedNsPerOp
		status := "ok"
		if delta > *tolerance {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("scan sorted_ns_per_op: base=%.0f fresh=%.0f delta=%+.1f%% (tolerance %.0f%%) %s\n",
			baseRep.Scan.SortedNsPerOp, freshRep.Scan.SortedNsPerOp, 100*delta, 100**tolerance, status)
	}

	// Index fresh cells by (ds, scheme, threads, workload).
	type key struct {
		ds, scheme, workload string
		threads              int
	}
	freshCells := map[key]bench.CellResult{}
	for _, c := range freshRep.Cells {
		freshCells[key{c.DS, c.Scheme, c.Workload, c.Threads}] = c
	}
	for _, b := range baseRep.Cells {
		f, ok := freshCells[key{b.DS, b.Scheme, b.Workload, b.Threads}]
		if !ok {
			fmt.Printf("cell %s/%s: missing from fresh report (skipped)\n", b.DS, b.Scheme)
			continue
		}
		drop := (b.MopsPerSec - f.MopsPerSec) / b.MopsPerSec
		status := "ok"
		if drop > *cellTol {
			if *strictCells {
				status = "REGRESSION"
				failed = true
			} else {
				status = "WARN"
			}
		}
		fmt.Printf("cell %s/%s t=%d: base=%.3f fresh=%.3f Mops/s drop=%+.1f%% %s\n",
			b.DS, b.Scheme, b.Threads, b.MopsPerSec, f.MopsPerSec, 100*drop, status)
	}

	if failed {
		os.Exit(1)
	}
}

func load(path string) (bench.ReclaimReport, error) {
	var r bench.ReclaimReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcompare:", err)
	os.Exit(2)
}
