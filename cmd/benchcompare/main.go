// Command benchcompare diffs two BENCH_reclaim.json reports and fails if
// the fresh run regresses beyond a tolerance band. It guards the pinned
// reclaim-scan microbench (the repo's perf contract: sorted_ns_per_op at
// the 64-hazard / 4096-retired point) and, more loosely, the per-scheme
// throughput cells.
//
//	benchcompare -base BENCH_reclaim.json -fresh results/BENCH_reclaim.fresh.json
//
// Exit status: 0 within tolerance, 1 on regression, 2 on usage/IO error.
//
// Throughput cells are noisy on shared CI runners, so they get a wider
// default band than the microbench and only warn unless -strictcells is
// set. The scan microbench is single-threaded and tight, so it is always
// enforced.
//
// With -stall it instead validates a BENCH_stall.json stalled-thread
// report against absolute invariants rather than a fractional band —
// robustness is a bound, not a trend:
//
//	benchcompare -stall BENCH_stall.json
//
// Gates: every robust scheme's peak unreclaimed stays under -stallbound;
// EBR's peak is at least -stallratio times NBR's (the experiment must
// actually demonstrate the unbounded-vs-bounded split); every cell's
// final unreclaimed drains to zero after release; and NBR's unstalled
// read-heavy throughput is within -stallnear of EBR's (warn-only, noisy).
//
// With -conns it validates a BENCH_conns.json idle-fleet report (from
// scripts/bench_conns.sh) against absolute bounds plus one relative
// band:
//
//	benchcompare -conns BENCH_conns.json
//
// Gates: the netpoll cell's goroutine count stays under -gorbound (i.e.
// independent of the parked conn count), its post-GC memory cost stays
// under -connbytes per idle conn, its live fast-path handle census
// stays under -handlebound (the per-poller handle rule: O(pollers ×
// shards), never O(conns)), and — when the report also carries a
// goroutine-mode baseline cell — the netpoll hot-subset GET p99 is
// within -connp99band of the baseline's (warn-only unless
// -strictcells, shared-runner latency is noisy).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/gosmr/gosmr/internal/bench"
	"github.com/gosmr/gosmr/internal/stress"
)

func main() {
	var (
		base        = flag.String("base", "BENCH_reclaim.json", "committed baseline report")
		fresh       = flag.String("fresh", "", "freshly generated report to compare against the baseline")
		tolerance   = flag.Float64("tolerance", 0.05, "allowed fractional regression for the scan microbench (0.05 = 5%)")
		cellTol     = flag.Float64("celltolerance", 0.25, "allowed fractional throughput drop per benchmark cell")
		strictCells = flag.Bool("strictcells", false, "fail (not just warn) on cell throughput regressions")
		stall       = flag.String("stall", "", "validate a BENCH_stall.json stalled-thread report against absolute bounds instead of diffing reports")
		stallBound  = flag.Int64("stallbound", 4096, "peak-unreclaimed ceiling for the robust schemes' stall cells")
		stallRatio  = flag.Float64("stallratio", 10, "minimum EBR-peak / NBR-peak ratio the stall report must demonstrate")
		stallNear   = flag.Float64("stallnear", 0.15, "warn when NBR's unstalled read-heavy throughput trails EBR's by more than this fraction")
		connsRep    = flag.String("conns", "", "validate a BENCH_conns.json idle-fleet report against absolute bounds instead of diffing reports")
		gorBound    = flag.Int("gorbound", 256, "goroutine ceiling for netpoll idle-fleet cells (must be independent of conn count)")
		connBytes   = flag.Float64("connbytes", 16384, "post-GC server bytes-per-idle-conn ceiling for netpoll cells")
		handleBound = flag.Int("handlebound", 256, "live fast-path handle ceiling for netpoll cells (O(pollers x shards), never O(conns))")
		connP99Band = flag.Float64("connp99band", 1.0, "allowed fractional hot-subset GET p99 excess of the netpoll cell over the goroutine baseline (warn-only unless -strictcells)")
	)
	flag.Parse()
	if *stall != "" {
		os.Exit(validateStall(*stall, *stallBound, *stallRatio, *stallNear))
	}
	if *connsRep != "" {
		os.Exit(validateConns(*connsRep, *gorBound, *connBytes, *handleBound, *connP99Band, *strictCells))
	}
	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "benchcompare: -fresh is required")
		flag.Usage()
		os.Exit(2)
	}

	baseRep, err := load(*base)
	if err != nil {
		fatal(err)
	}
	freshRep, err := load(*fresh)
	if err != nil {
		fatal(err)
	}

	failed := false

	// The scan microbench is only comparable if both reports pinned the
	// same shape. Reports with no scan section at all (both shapes zero —
	// kvload's service-layer BENCH_kvsvc.json has no in-process scan
	// microbench) skip the gate instead of failing it.
	if baseRep.Scan.Hazards == 0 && baseRep.Scan.Retired == 0 &&
		freshRep.Scan.Hazards == 0 && freshRep.Scan.Retired == 0 {
		fmt.Println("scan microbench: absent from both reports (skipped)")
	} else {
		if baseRep.Scan.Hazards != freshRep.Scan.Hazards || baseRep.Scan.Retired != freshRep.Scan.Retired {
			fmt.Fprintf(os.Stderr, "benchcompare: scan shapes differ (base %d/%d, fresh %d/%d)\n",
				baseRep.Scan.Hazards, baseRep.Scan.Retired, freshRep.Scan.Hazards, freshRep.Scan.Retired)
			os.Exit(2)
		}
		delta := (freshRep.Scan.SortedNsPerOp - baseRep.Scan.SortedNsPerOp) / baseRep.Scan.SortedNsPerOp
		status := "ok"
		if delta > *tolerance {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("scan sorted_ns_per_op: base=%.0f fresh=%.0f delta=%+.1f%% (tolerance %.0f%%) %s\n",
			baseRep.Scan.SortedNsPerOp, freshRep.Scan.SortedNsPerOp, 100*delta, 100**tolerance, status)
	}

	// Index fresh cells by (ds, scheme, threads, workload).
	type key struct {
		ds, scheme, workload string
		threads              int
	}
	freshCells := map[key]bench.CellResult{}
	for _, c := range freshRep.Cells {
		freshCells[key{c.DS, c.Scheme, c.Workload, c.Threads}] = c
	}
	for _, b := range baseRep.Cells {
		f, ok := freshCells[key{b.DS, b.Scheme, b.Workload, b.Threads}]
		if !ok {
			fmt.Printf("cell %s/%s: missing from fresh report (skipped)\n", b.DS, b.Scheme)
			continue
		}
		drop := (b.MopsPerSec - f.MopsPerSec) / b.MopsPerSec
		status := "ok"
		if drop > *cellTol {
			if *strictCells {
				status = "REGRESSION"
				failed = true
			} else {
				status = "WARN"
			}
		}
		fmt.Printf("cell %s/%s t=%d: base=%.3f fresh=%.3f Mops/s drop=%+.1f%% %s\n",
			b.DS, b.Scheme, b.Threads, b.MopsPerSec, f.MopsPerSec, 100*drop, status)
	}

	if failed {
		os.Exit(1)
	}
}

// robustSchemes are the stall cells gated by the absolute peak bound:
// everything except EBR (whose whole point in the report is to grow
// without bound) and nr/rc (excluded from the default sweep).
var robustSchemes = map[string]bool{"hp": true, "hp++": true, "hp++ef": true, "hp-scot": true, "pebr": true, "nbr": true}

// validateStall enforces the stalled-thread report's invariants and
// returns the process exit code.
func validateStall(path string, bound int64, ratio, near float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		return 2
	}
	var rep stress.StallReport
	if err := json.Unmarshal(data, &rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %s: %v\n", path, err)
		return 2
	}
	if len(rep.Cells) == 0 {
		fmt.Fprintf(os.Stderr, "benchcompare: %s: no stall cells\n", path)
		return 2
	}

	failed := false
	var ebrPeak, nbrPeak int64 = -1, -1
	for _, c := range rep.Cells {
		status := "ok"
		switch {
		case !c.ParkedStall:
			// The trap timed out: the cell measured an unstalled run and
			// none of its numbers mean anything.
			status = "FAIL (participant never parked)"
			failed = true
		case c.UAF > 0 || c.DoubleFree > 0:
			status = fmt.Sprintf("FAIL (uaf=%d double-free=%d)", c.UAF, c.DoubleFree)
			failed = true
		case c.FinalUnreclaimed != 0:
			status = fmt.Sprintf("FAIL (final unreclaimed %d != 0 after release)", c.FinalUnreclaimed)
			failed = true
		case robustSchemes[c.Scheme] && c.PeakUnreclaimed > bound:
			status = fmt.Sprintf("FAIL (peak %d > bound %d)", c.PeakUnreclaimed, bound)
			failed = true
		}
		fmt.Printf("stall %s/%s: peak=%d stalled=%d final=%d retired=%d %s\n",
			c.DS, c.Scheme, c.PeakUnreclaimed, c.StalledUnreclaimed, c.FinalUnreclaimed, c.TotalRetired, status)
		switch c.Scheme {
		case "ebr":
			ebrPeak = c.PeakUnreclaimed
		case "nbr":
			nbrPeak = c.PeakUnreclaimed
		}
	}

	if ebrPeak >= 0 && nbrPeak > 0 {
		r := float64(ebrPeak) / float64(nbrPeak)
		status := "ok"
		if r < ratio {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("stall ebr/nbr peak ratio: %.1fx (minimum %.0fx) %s\n", r, ratio, status)
	}

	tp := map[string]float64{}
	for _, c := range rep.Throughput {
		tp[c.Scheme] = c.MopsPerSec
	}
	if ebr, nbr := tp["ebr"], tp["nbr"]; ebr > 0 && nbr > 0 {
		gap := (ebr - nbr) / ebr
		status := "ok"
		if gap > near {
			status = "WARN"
		}
		fmt.Printf("unstalled read-heavy throughput: ebr=%.3f nbr=%.3f gap=%+.1f%% (near %.0f%%) %s\n",
			ebr, nbr, 100*gap, 100*near, status)
	}

	if failed {
		return 1
	}
	return 0
}

// validateConns enforces the idle-fleet report's invariants and returns
// the process exit code. Netpoll cells (netpoll_kind set) carry the
// absolute bounds; a goroutine-mode cell with the same idle_conns, if
// present, anchors the relative hot-p99 band.
func validateConns(path string, gorBound int, connBytes float64, handleBound int, p99Band float64, strict bool) int {
	rep, err := load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		return 2
	}
	var netpollCells, baseCells []bench.CellResult
	for _, c := range rep.Cells {
		if c.IdleConns == 0 {
			continue
		}
		if c.NetpollKind != "" {
			netpollCells = append(netpollCells, c)
		} else {
			baseCells = append(baseCells, c)
		}
	}
	if len(netpollCells) == 0 {
		fmt.Fprintf(os.Stderr, "benchcompare: %s: no netpoll idle-fleet cells\n", path)
		return 2
	}

	// Arena UAF/double-free zero-ness is enforced by kvload itself before
	// it writes a cell, so a report that exists at all is violation-free;
	// the gates here are the capacity bounds.
	failed := false
	for _, c := range netpollCells {
		status := "ok"
		switch {
		case c.Goroutines > gorBound:
			status = fmt.Sprintf("FAIL (goroutines %d > bound %d: not conn-independent)", c.Goroutines, gorBound)
			failed = true
		case c.BytesPerConn > connBytes:
			status = fmt.Sprintf("FAIL (bytes/conn %.0f > bound %.0f)", c.BytesPerConn, connBytes)
			failed = true
		case c.LiveHandles > handleBound:
			status = fmt.Sprintf("FAIL (live handles %d > bound %d: handle census scales with conns)", c.LiveHandles, handleBound)
			failed = true
		}
		fmt.Printf("conns %s/%s idle=%d: goroutines=%d bytes/conn=%.0f handles=%d p99(get)=%.1fµs %s\n",
			c.NetpollKind, c.Scheme, c.IdleConns, c.Goroutines, c.BytesPerConn, c.LiveHandles, c.P99GetUs, status)
	}

	// Hot-subset p99 band vs the goroutine baseline, matched on scheme.
	// An idle fleet must not make the hot path slower than the same
	// traffic served by dedicated goroutines (within a generous band —
	// poller dispatch adds some latency by design).
	for _, np := range netpollCells {
		for _, b := range baseCells {
			if b.Scheme != np.Scheme || b.P99GetUs <= 0 || np.P99GetUs <= 0 {
				continue
			}
			excess := (np.P99GetUs - b.P99GetUs) / b.P99GetUs
			status := "ok"
			if excess > p99Band {
				if strict {
					status = "REGRESSION"
					failed = true
				} else {
					status = "WARN"
				}
			}
			fmt.Printf("conns hot p99(get): netpoll=%.1fµs baseline=%.1fµs excess=%+.1f%% (band %.0f%%) %s\n",
				np.P99GetUs, b.P99GetUs, 100*excess, 100*p99Band, status)
		}
	}

	if failed {
		return 1
	}
	return 0
}

func load(path string) (bench.ReclaimReport, error) {
	var r bench.ReclaimReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcompare:", err)
	os.Exit(2)
}
