// Command smrbench reproduces the figures of "Applying Hazard Pointers to
// More Concurrent Data Structures" (SPAA 2023) on this repository's Go
// implementation.
//
// Reproduce a paper figure:
//
//	smrbench -fig 8              # throughput, read-write, thread sweep
//	smrbench -fig 9              # HP vs HP++ max throughput per category
//	smrbench -fig 10             # long-running reads vs key range
//	smrbench -fig 11             # peak unreclaimed blocks, read-write
//	smrbench -fig 12..23         # appendix figures
//	smrbench -robustness hhslist # §4.4 stalled-thread scenario
//
// Regenerate the committed robustness artifact (BENCH_stall.json): one
// parked-writer cell per scheme plus the unstalled read-heavy companion:
//
//	smrbench -stalljson BENCH_stall.json -dur 2s
//
// Or run a single free-form cell:
//
//	smrbench -ds hhslist -scheme hp++ -threads 4 -range 10000 \
//	         -workload read-write -dur 2s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/bench"
	"github.com/gosmr/gosmr/internal/stress"
)

func main() {
	var (
		fig         = flag.Int("fig", 0, "paper figure to reproduce (8-23)")
		robustness  = flag.String("robustness", "", "run the stalled-thread scenario for the given data structure")
		ds          = flag.String("ds", "", "data structure for a free-form run")
		scheme      = flag.String("scheme", "hp++", "reclamation scheme for a free-form run")
		threads     = flag.Int("threads", 4, "worker count for a free-form run")
		keyRange    = flag.Uint64("range", 10000, "key range for a free-form run")
		workload    = flag.String("workload", "read-write", "workload: write-only | read-write | read-most")
		dur         = flag.Duration("dur", time.Second, "duration per benchmark cell")
		threadsCSV  = flag.String("sweep", "1,2,4,8", "thread counts for figure sweeps")
		schemesCSV  = flag.String("schemes", "nr,ebr,pebr,nbr,hp,hp++,rc", "schemes for figure sweeps")
		lo          = flag.Uint("lo", 10, "figure 10: smallest log2 key range")
		hi          = flag.Uint("hi", 16, "figure 10: largest log2 key range")
		list        = flag.Bool("list", false, "list registered targets and exit")
		reclaimJSON = flag.String("reclaimjson", "", "write the reclaim-path benchmark report (scan microbench + per-scheme fig-8 cells) to this file")
		stallJSON   = flag.String("stalljson", "", "write the stalled-thread experiment report (per-scheme peak/final unreclaimed with a parked writer, plus unstalled read-heavy throughput) to this file")
		stallOps    = flag.Int("stallops", 0, "per-worker write-only op count for -stalljson (0 = default)")
		asJSON      = flag.Bool("json", false, "emit the free-form run's result (including smr_stats) as JSON")
		fixedCad    = flag.Int("fixedcadence", 0, "pin the classic fixed per-thread reclaim cadence (0 = shared-budget adaptive); ablation knob for per-thread vs domain-wide accounting")
	)
	flag.Parse()
	bench.FixedReclaimEvery = *fixedCad

	if *list {
		fmt.Println("data structures:", strings.Join(bench.Registered(), " "))
		fmt.Println("schemes:        ", strings.Join(bench.Schemes, " "))
		return
	}

	sweep := bench.SweepConfig{
		Threads:  parseInts(*threadsCSV),
		Duration: *dur,
		Schemes:  strings.Split(*schemesCSV, ","),
	}

	switch {
	case *stallJSON != "":
		f, err := os.Create(*stallJSON)
		check(err)
		check(stress.StallJSON(f, stress.StallOptions{
			Workers: *threads,
			Ops:     *stallOps,
		}, *dur))
		check(f.Close())
		fmt.Println("wrote", *stallJSON)
	case *reclaimJSON != "":
		f, err := os.Create(*reclaimJSON)
		check(err)
		check(bench.ReclaimJSON(f, strings.Split(*schemesCSV, ","), *dur))
		check(f.Close())
		fmt.Println("wrote", *reclaimJSON)
	case *robustness != "":
		check(bench.RobustnessFigure(os.Stdout, sweep, *robustness))
	case *fig != 0:
		check(runFigure(*fig, sweep, *lo, *hi))
	case *ds != "":
		wl, err := bench.ParseWorkload(*workload)
		check(err)
		t, err := bench.NewTarget(*ds, *scheme, arena.ModeReuse)
		check(err)
		res := bench.Run(t, bench.Config{
			Threads:  *threads,
			Duration: *dur,
			Workload: wl,
			KeyRange: *keyRange,
		})
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			check(enc.Encode(res))
		} else {
			fmt.Printf("%-20s %10.3f Mops/s  ops=%d  peak-unreclaimed=%d  avg-unreclaimed=%.0f  peak-mem=%dKiB  scans=%d  freed/scan=%.0f\n",
				res.Target, res.MopsPerSec, res.Ops, res.PeakUnreclaimed, res.AvgUnreclaimed, res.PeakMemBytes/1024,
				res.Stats.Scans, res.Stats.FreedPerScan)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runFigure maps paper figure numbers to harness drivers.
func runFigure(fig int, sweep bench.SweepConfig, lo, hi uint) error {
	w := os.Stdout
	fmt.Fprintf(w, "== Figure %d ==\n", fig)
	switch fig {
	case 8, 13:
		return bench.WorkloadFigure(w, sweep, bench.ReadWrite, "throughput")
	case 9:
		return bench.Figure9(w, sweep)
	case 10:
		return bench.Figure10(w, sweep, lo, hi)
	case 11, 16:
		return bench.WorkloadFigure(w, sweep, bench.ReadWrite, "peak")
	case 12:
		return bench.WorkloadFigure(w, sweep, bench.WriteOnly, "throughput")
	case 14:
		return bench.WorkloadFigure(w, sweep, bench.ReadMost, "throughput")
	case 15:
		return bench.WorkloadFigure(w, sweep, bench.WriteOnly, "peak")
	case 17:
		return bench.WorkloadFigure(w, sweep, bench.ReadMost, "peak")
	case 18:
		return bench.WorkloadFigure(w, sweep, bench.WriteOnly, "mem")
	case 19:
		return bench.WorkloadFigure(w, sweep, bench.ReadWrite, "mem")
	case 20:
		return bench.WorkloadFigure(w, sweep, bench.ReadMost, "mem")
	case 21:
		return bench.WorkloadFigure(w, sweep, bench.WriteOnly, "avg")
	case 22:
		return bench.WorkloadFigure(w, sweep, bench.ReadWrite, "avg")
	case 23:
		return bench.WorkloadFigure(w, sweep, bench.ReadMost, "avg")
	}
	return fmt.Errorf("unknown figure %d (valid: 8-23)", fig)
}

func parseInts(csv string) []int {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		check(err)
		out = append(out, n)
	}
	return out
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "smrbench:", err)
		os.Exit(1)
	}
}
