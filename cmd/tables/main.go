// Command tables regenerates the qualitative tables of the HP++ paper
// from this repository's scheme and data-structure registry:
//
//	tables -t 1   # Table 1: comparison of robust, widely applicable schemes
//	tables -t 2   # Table 2: applicability of schemes to data structures
//
// Table 2's "benchmark enforced" column is cross-checked against the
// live bench.Applicable predicate so documentation cannot drift from the
// code.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"github.com/gosmr/gosmr/internal/bench"
	"github.com/gosmr/gosmr/internal/smr"
)

func main() {
	table := flag.Int("t", 1, "table number to print (1 or 2)")
	flag.Parse()
	switch *table {
	case 1:
		printTable1()
	case 2:
		printTable2()
	default:
		fmt.Fprintln(os.Stderr, "tables: -t must be 1 or 2")
		os.Exit(2)
	}
}

func printTable1() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\timplemented\tsystem requirement\tfailure condition\tfailure handling\tunreclaimed bound")
	for _, s := range smr.Table1() {
		impl := "-"
		if s.Implemented {
			impl = s.Package
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\n",
			s.Name, impl, s.SystemRequirement, s.FailureCondition, s.FailureHandling, s.UnreclaimedBound)
	}
	w.Flush()
	fmt.Println("\noverheads:")
	for _, s := range smr.Table1() {
		fmt.Printf("  %-14s %s\n", s.Name, s.Overhead)
	}
}

func printTable2() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "data structure\treference\tHP\tDEBRA+\tNBR\tRCU/EBR\tHP++/PEBR/VBR\tin this repo")
	for _, a := range smr.Table2() {
		repo := a.InRepo
		if repo == "" {
			repo = "-"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			a.DataStructure, a.Reference, mark(a.HP), mark(a.DEBRAp), mark(a.NBR), mark(a.EBR), mark(a.HPP), repo)
	}
	w.Flush()

	fmt.Println("\nlegend: ✓ supported · ✗ not supported · ▲ supported, wait-freedom lost ·")
	fmt.Println("        * significant recovery-design effort · ** code restructuring needed")

	fmt.Println("\nbenchmark-enforced applicability (bench.Applicable):")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "ds\t%s\n", strings.Join(bench.Schemes, "\t"))
	for _, ds := range bench.DataStructures() {
		row := []string{ds}
		for _, sch := range bench.Schemes {
			if bench.Applicable(ds, sch) {
				row = append(row, "✓")
			} else {
				row = append(row, "✗")
			}
		}
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	w.Flush()
}

func mark(s string) string {
	switch s {
	case "yes":
		return "✓"
	case "no":
		return "✗"
	case "lockfree":
		return "▲"
	case "effort":
		return "*"
	case "restructure":
		return "**"
	}
	return s
}
