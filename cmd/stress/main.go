// Command stress runs the full-matrix fault-injection safety harness:
// every registered (data structure, scheme) cell executes a shared-key
// workload in arena detect mode under stalled readers, delayed retirers
// and reclamation storms, records a complete operation history, and
// checks it for linearizability. Verdicts are attributable: "uaf" /
// "double-free" indict the reclamation scheme, "non-linearizable"
// indicts the data structure, "ok" clears both.
//
// Sweep the whole matrix (including the unsafefree must-fail controls):
//
//	stress -unsafe
//
// Run a single cell, or filter the sweep:
//
//	stress -ds skiplist -scheme hp++
//	stress -kind queue
//
// Results are printed as a table and written as JSON into -out.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/gosmr/gosmr/internal/bench"
	"github.com/gosmr/gosmr/internal/stress"
)

func main() {
	var (
		ds       = flag.String("ds", "", "restrict to one data structure")
		scheme   = flag.String("scheme", "", "restrict to one scheme")
		kind     = flag.String("kind", "", "restrict to one kind: map | queue | stack")
		unsafe   = flag.Bool("unsafe", false, "include the must-fail control cells (unsafefree + hp-scot-novalidate)")
		workers  = flag.Int("workers", 4, "worker goroutines per cell")
		ops      = flag.Int("ops", 1200, "operations per worker")
		keys     = flag.Uint64("keys", 8, "shared key range (map cells)")
		seed     = flag.Uint64("seed", 0, "workload seed (0 = default)")
		maxNodes = flag.Int64("maxnodes", 0, "linearizability search budget (0 = default)")
		noStall  = flag.Bool("no-stall", false, "disable the parked stalled reader")
		parked   = flag.Bool("parked", false, "upgrade the stalled participant to a writer parked mid-mutation (§4.4 adversary)")
		delay    = flag.Int("delay", 4, "yields after each remove (0 = off)")
		noStorm  = flag.Bool("no-storm", false, "disable the reclamation storm")
		yield    = flag.Int("yield", 64, "scheduler yield every Nth deref (0 = off)")
		noResize = flag.Bool("no-resize-storm", false, "disable the resize storm (somap cells run with tiny directories otherwise)")
		out      = flag.String("out", "results", "directory for the JSON report")
		list     = flag.Bool("list", false, "list matrix cells and exit")
	)
	flag.Parse()

	cells := stress.Matrix(*unsafe || *scheme == bench.UnsafeScheme || *scheme == bench.ScotUnsafeScheme)
	var selected []stress.Cell
	for _, c := range cells {
		if (*ds == "" || c.DS == *ds) && (*scheme == "" || c.Scheme == *scheme) && (*kind == "" || c.Kind == *kind) {
			selected = append(selected, c)
		}
	}
	if *list {
		for _, c := range selected {
			fmt.Printf("%-10s %-10s %s\n", c.DS, c.Scheme, c.Kind)
		}
		return
	}
	if len(selected) == 0 {
		fmt.Fprintln(os.Stderr, "stress: no matrix cells match the given filters")
		os.Exit(2)
	}

	opts := stress.Options{
		Workers:  *workers,
		Ops:      *ops,
		Keys:     *keys,
		Seed:     *seed,
		MaxNodes: *maxNodes,
		Faults: stress.Faults{
			StallReader:  !*noStall,
			ParkedWorker: *parked,
			DelayRetire:  *delay,
			Storm:        !*noStorm,
			YieldEvery:   *yield,
			ResizeStorm:  !*noResize,
		},
	}

	var results []stress.CellResult
	bad := 0
	fmt.Printf("%-10s %-10s %-6s %8s %6s %6s %6s  %s\n",
		"ds", "scheme", "kind", "ops", "uaf", "dfree", "ms", "outcome")
	for _, c := range selected {
		res, err := stress.Run(c, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stress: %v: %v\n", c, err)
			os.Exit(1)
		}
		results = append(results, res)
		mustFail := c.Scheme == bench.UnsafeScheme || c.Scheme == bench.ScotUnsafeScheme
		verdict := res.Outcome
		switch {
		case mustFail && res.Passed():
			verdict += "  (!! control not flagged)"
			bad++
		case mustFail:
			verdict += "  (expected: control)"
		case !res.Passed():
			bad++
		}
		fmt.Printf("%-10s %-10s %-6s %8d %6d %6d %6d  %s\n",
			c.DS, c.Scheme, c.Kind, res.Ops, res.UAF, res.DoubleFree, res.ElapsedMS, verdict)
		if !res.Passed() && !mustFail && res.Report != "" {
			fmt.Println(res.Report)
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "stress: %v\n", err)
		os.Exit(1)
	}
	path := filepath.Join(*out, fmt.Sprintf("stress-%s.json", time.Now().Format("20060102-150405")))
	data, err := json.MarshalIndent(results, "", "  ")
	if err == nil {
		err = os.WriteFile(path, data, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "stress: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\n%d cells, %d unexpected; report: %s\n", len(results), bad, path)
	if bad > 0 {
		os.Exit(1)
	}
}
