# Developer entry points. `make check` is the tier-1 gate; `make race`
# reruns everything under the race detector. Stress/linearizability tests
# honour -short (subsampled matrix); `make stress` sweeps the full matrix
# including the unsafefree must-fail controls.

GO ?= go

.PHONY: check race test short stress bench bench-json bench-compare bench-stall vet serve-smoke bench-kvsvc bench-conns

check: vet
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race -count=1 -run \
		'ZeroValue|FrontierCache|StatsMonotone|ScanSet|ReleaseHint|Adaptive|Budget|Neutraliz|CheckpointProtects' \
		./internal/hazards/ ./internal/hp/ ./internal/core/ ./internal/ebr/ \
		./internal/pebr/ ./internal/nbr/ ./internal/arena/ ./internal/smr/
	$(GO) test -race -count=1 ./internal/netpoll/
	$(GO) test -race -count=1 -run 'Netpoll|FrameReader' ./internal/kvsvc/
	$(GO) test -race -count=1 -run 'Scot|SCOT' \
		./internal/hp/ ./internal/ds/hhslist/ ./internal/ds/hmlist/ ./internal/ds/somap/

vet:
	$(GO) vet ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race -count=1 ./...

stress:
	$(GO) run ./cmd/stress -unsafe

# serve-smoke boots gosmrd (hp++, detect mode), fires a kvload burst at
# it, and asserts a clean SIGTERM drain with zero arena violations. The
# report lands in results/BENCH_kvsvc.json (gitignored).
serve-smoke:
	bash scripts/serve_smoke.sh

# bench-kvsvc regenerates BENCH_kvsvc.json at the repo root: the
# (engine × read-fastpath) service-layer matrix under a 1M-key preload,
# detect mode throughout.
bench-kvsvc:
	bash scripts/bench_kvsvc.sh

# bench-conns regenerates BENCH_conns.json at the repo root: the
# idle-fleet capacity artifact — a netpoll cell with an fd-limit-scaled
# mostly-idle fleet (min(100000, ulimit-5000)) plus a goroutine-baseline
# cell, validated by benchcompare -conns (bounded bytes-per-conn,
# conn-independent goroutines, flat handle census, hot p99 band).
bench-conns:
	bash scripts/bench_conns.sh

bench:
	$(GO) test -run=NONE -bench=. -benchtime=200ms ./internal/bench/

# bench-stall regenerates BENCH_stall.json at the repo root — the §4.4
# stalled-thread robustness artifact (per-scheme peak/final unreclaimed
# with a writer parked mid-insert, plus the unstalled read-heavy
# throughput companion) — and validates it with benchcompare -stall.
bench-stall:
	bash scripts/bench_stall.sh

# bench-json regenerates BENCH_reclaim.json at the repo root: the pinned
# reclaim-scan microbench plus one fig-8 read-write cell per scheme.
bench-json:
	$(GO) run ./cmd/smrbench -reclaimjson BENCH_reclaim.json -dur 2s

# bench-compare runs a fresh reclaim report into results/ (gitignored) and
# diffs it against the committed BENCH_reclaim.json. Fails if the pinned
# scan microbench regresses more than 5%; throughput cells warn at 25%.
bench-compare:
	mkdir -p results
	$(GO) run ./cmd/smrbench -reclaimjson results/BENCH_reclaim.fresh.json -dur 2s
	$(GO) run ./cmd/benchcompare -base BENCH_reclaim.json \
		-fresh results/BENCH_reclaim.fresh.json -tolerance 0.05
