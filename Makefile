# Developer entry points. `make check` is the tier-1 gate; `make race`
# reruns everything under the race detector. Stress/linearizability tests
# honour -short (subsampled matrix); `make stress` sweeps the full matrix
# including the unsafefree must-fail controls.

GO ?= go

.PHONY: check race test short stress bench vet

check: vet
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race -count=1 ./...

stress:
	$(GO) run ./cmd/stress -unsafe

bench:
	$(GO) test -run=NONE -bench=. -benchtime=200ms ./internal/bench/
