#!/usr/bin/env bash
# bench_kvsvc.sh: refresh BENCH_kvsvc.json with the service-layer matrix.
#
# Runs kvload against gosmrd for every (scheme, engine, read-fastpath)
# cell — hp++ on both engines plus hp-scot on the somap engine (plain HP
# carried by the SCOT traversal, the apples-to-apples robustness rival),
# fast path on and off — with a 1M-key preload so the somap cells measure
# the fully grown directory, under the Zipf read-most mix. Each run is
# detect mode, so the numbers double as a safety gate: kvload exits
# non-zero on any arena violation. The single-cell reports are merged
# (jq) into one BENCH_kvsvc.json at the repo root; cells are
# distinguished by "scheme", "engine" and the "fastpath=on|off" tag in
# the workload string, and the on-cells must show nonzero fastpath_gets.
#
# Usage: scripts/bench_kvsvc.sh [requests] [preload]
set -euo pipefail

REQUESTS="${1:-200000}"
PRELOAD="${2:-1000000}"
ADDR="127.0.0.1:17170"
ADMIN="127.0.0.1:17171"

cd "$(dirname "$0")/.."
BIN="$(mktemp -d)"
SRV_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/gosmrd" ./cmd/gosmrd
go build -o "$BIN/kvload" ./cmd/kvload

CELLS=()
for pair in hp++:somap hp++:hashmap hp-scot:somap; do
    scheme="${pair%%:*}"
    engine="${pair##*:}"
    for fast in on off; do
        [ "$fast" = on ] && FASTFLAG=true || FASTFLAG=false
        tag="${scheme}_${engine}_${fast}"
        echo "bench-kvsvc: scheme=$scheme engine=$engine fastpath=$fast ($PRELOAD preload, $REQUESTS requests)"
        "$BIN/gosmrd" -addr "$ADDR" -admin "$ADMIN" -shards 8 -scheme "$scheme" -mode detect \
            -engine "$engine" -read-fastpath="$FASTFLAG" \
            >"$BIN/gosmrd_${tag}.json" 2>"$BIN/gosmrd_${tag}.log" &
        SRV_PID=$!

        OUT="$BIN/cell_${tag}.json"
        "$BIN/kvload" -addr "$ADDR" -admin "$ADMIN" \
            -conns 8 -requests "$REQUESTS" -keys "$PRELOAD" -preload "$PRELOAD" \
            -zipf 1.1 -note "fastpath=$fast" -out "$OUT"

        kill -TERM "$SRV_PID"
        if ! wait "$SRV_PID"; then
            echo "bench-kvsvc: gosmrd drain FAILED ($tag)" >&2
            cat "$BIN/gosmrd_${tag}.log" >&2
            exit 1
        fi
        SRV_PID=""
        grep -q "clean drain" "$BIN/gosmrd_${tag}.log" || {
            echo "bench-kvsvc: no clean drain ($tag)" >&2
            exit 1
        }
        if [ "$fast" = on ]; then
            FG=$(jq '.cells[0].fastpath_gets // 0' "$OUT")
            if [ "$FG" -eq 0 ]; then
                echo "bench-kvsvc: fastpath=on run recorded zero fastpath_gets ($tag)" >&2
                exit 1
            fi
        fi
        CELLS+=("$OUT")
    done
done

jq -s '{generated_by: "kvload (scripts/bench_kvsvc.sh)", scan_microbench: .[0].scan_microbench, cells: map(.cells[0])}' \
    "${CELLS[@]}" > BENCH_kvsvc.json
echo "bench-kvsvc: wrote BENCH_kvsvc.json (${#CELLS[@]} cells)"
jq -r '.cells[] | "\(.scheme)\t\(.engine)\t\(.workload | capture("fastpath=(?<f>\\w+)").f)\tp50(get)=\(.p50_get_us)µs\tp99(get)=\(.p99_get_us)µs\tfastpath_gets=\(.fastpath_gets // 0)"' BENCH_kvsvc.json
