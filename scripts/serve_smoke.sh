#!/usr/bin/env bash
# serve_smoke.sh: end-to-end smoke test of the gosmrd service layer.
#
# Phase 1 boots gosmrd (8 shards, hp++, arena detect mode so every
# dereference is validated), fires a short kvload burst at it, then sends
# SIGTERM and asserts the daemon drains cleanly: exit 0 means every
# connection was flushed, every shard's reclamation drained, and the
# arena recorded zero use-after-free or double-free violations. kvload
# itself exits non-zero if the admin scrape shows violations, so the pair
# gates both sides.
#
# Phase 2 is the overload gate: a deliberately saturated server (one
# shard, one worker, 4-deep queue, immediate shedding) must shed a
# nonzero number of requests as StatusOverloaded, kvload's retry/backoff
# must still recover to 100% completion (it exits non-zero otherwise),
# and the drain must stay clean with zero arena violations.
#
# Phase 3 is the resize gate: gosmrd starts with 8-bucket shard
# directories (somap engine) and kvload preloads 200k distinct keys —
# hundreds of directory doublings and dummy splices under live detect-
# mode traffic — then runs a measured mix over the grown map. The drain
# must stay clean with zero unreclaimed nodes and zero violations.
#
# NETPOLL=1 reruns every phase with gosmrd on the event-driven
# connection layer (-netpoll) instead of per-connection goroutines; the
# drain/overload/resize contracts are mode-independent and must hold on
# both, so CI runs the script twice.
#
# Usage: scripts/serve_smoke.sh [requests]
set -euo pipefail

REQUESTS="${1:-10000}"
ADDR="127.0.0.1:17070"
ADMIN="127.0.0.1:17071"
NETPOLL_FLAG=""
MODE_NAME="goroutine"
if [ "${NETPOLL:-0}" = 1 ]; then
    NETPOLL_FLAG="-netpoll"
    MODE_NAME="netpoll"
fi
echo "serve-smoke: connection layer: $MODE_NAME"

cd "$(dirname "$0")/.."
BIN="$(mktemp -d)"
SRV_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/gosmrd" ./cmd/gosmrd
go build -o "$BIN/kvload" ./cmd/kvload

"$BIN/gosmrd" -addr "$ADDR" -admin "$ADMIN" -shards 8 -scheme hp++ -mode detect \
    $NETPOLL_FLAG \
    >"$BIN/gosmrd.json" 2>"$BIN/gosmrd.log" &
SRV_PID=$!

mkdir -p results
# kvload retries its first dial, so no readiness sleep is needed.
"$BIN/kvload" -addr "$ADDR" -admin "$ADMIN" \
    -conns 8 -requests "$REQUESTS" -keys 4096 -zipf 1.1 \
    -out results/BENCH_kvsvc.json

kill -TERM "$SRV_PID"
if ! wait "$SRV_PID"; then
    echo "serve-smoke: gosmrd drain FAILED" >&2
    cat "$BIN/gosmrd.log" >&2
    exit 1
fi
SRV_PID=""

grep -q "clean drain" "$BIN/gosmrd.log" || {
    echo "serve-smoke: gosmrd exited 0 but never reported a clean drain" >&2
    cat "$BIN/gosmrd.log" >&2
    exit 1
}
echo "serve-smoke: phase 1 OK ($REQUESTS requests, clean drain, zero arena violations)"

# ---- Phase 2: overload ----
# One worker behind a 4-deep queue with immediate shedding: most of the
# burst must come back StatusOverloaded, and kvload's retry/backoff has
# to grind it to 100% completion anyway.
"$BIN/gosmrd" -addr "$ADDR" -admin "$ADMIN" -shards 1 -workers 1 -queue 4 \
    -dispatch-timeout -1ns -scheme hp++ -mode detect \
    $NETPOLL_FLAG \
    >"$BIN/gosmrd2.json" 2>"$BIN/gosmrd2.log" &
SRV_PID=$!

"$BIN/kvload" -addr "$ADDR" -admin "$ADMIN" \
    -conns 16 -requests 4000 -pipeline 64 -keys 512 -retries 12 \
    | tee "$BIN/kvload2.log"

SHED=$(sed -n 's/.*shed_total=\([0-9]*\).*/\1/p' "$BIN/kvload2.log")
if [ -z "$SHED" ] || [ "$SHED" -eq 0 ]; then
    echo "serve-smoke: overload phase shed nothing (shed_total=${SHED:-missing}) — the saturated server should be shedding" >&2
    exit 1
fi

kill -TERM "$SRV_PID"
if ! wait "$SRV_PID"; then
    echo "serve-smoke: overloaded gosmrd drain FAILED" >&2
    cat "$BIN/gosmrd2.log" >&2
    exit 1
fi
SRV_PID=""
grep -q "clean drain" "$BIN/gosmrd2.log" || {
    echo "serve-smoke: overloaded gosmrd exited 0 but never reported a clean drain" >&2
    cat "$BIN/gosmrd2.log" >&2
    exit 1
}
echo "serve-smoke: phase 2 OK (shed_total=$SHED, 100% completion via retries, clean drain)"

# ---- Phase 3: resize storm ----
# Tiny initial directories + a 200k-key preload force the split-ordered
# maps through their full doubling cascade while detect mode validates
# every dereference; the measured mix then runs over the grown map.
PRELOAD=200000
"$BIN/gosmrd" -addr "$ADDR" -admin "$ADMIN" -shards 8 -scheme hp++ -mode detect \
    -engine somap -buckets 8 \
    $NETPOLL_FLAG \
    >"$BIN/gosmrd3.json" 2>"$BIN/gosmrd3.log" &
SRV_PID=$!

"$BIN/kvload" -addr "$ADDR" -admin "$ADMIN" \
    -conns 8 -requests "$REQUESTS" -keys "$PRELOAD" -preload "$PRELOAD" -zipf 1.1 \
    | tee "$BIN/kvload3.log"

grep -q "preloaded $PRELOAD keys" "$BIN/kvload3.log" || {
    echo "serve-smoke: resize phase did not complete the preload" >&2
    exit 1
}

kill -TERM "$SRV_PID"
if ! wait "$SRV_PID"; then
    echo "serve-smoke: resize-storm gosmrd drain FAILED" >&2
    cat "$BIN/gosmrd3.log" >&2
    exit 1
fi
SRV_PID=""
grep -q "clean drain" "$BIN/gosmrd3.log" || {
    echo "serve-smoke: resize-storm gosmrd exited 0 but never reported a clean drain" >&2
    cat "$BIN/gosmrd3.log" >&2
    exit 1
}
echo "serve-smoke: phase 3 OK ($PRELOAD keys preloaded through growing directories, clean drain)"
