#!/usr/bin/env bash
# bench_stall.sh: refresh BENCH_stall.json, the stalled-thread robustness
# artifact (§4.4), and gate it.
#
# smrbench -stalljson runs one parked-writer cell per reclaiming scheme on
# hmlist — a writer is caught mid-insert on a detect-mode deref hook and
# held while the other workers run a deterministic write-only storm — and
# records the exact peak/final retired-but-unfreed counts, plus the
# unstalled read-heavy throughput companion cells. benchcompare -stall
# then enforces the report's invariants: the participant really parked,
# zero UAF/double-free, every scheme drains to zero after release, every
# robust scheme's peak stays under the absolute bound, and EBR's peak is
# at least 10x NBR's (the unbounded-vs-bounded split the experiment
# exists to demonstrate).
#
# Usage: scripts/bench_stall.sh [out.json] [duration]
set -euo pipefail

OUT="${1:-BENCH_stall.json}"
DUR="${2:-2s}"

cd "$(dirname "$0")/.."
go run ./cmd/smrbench -stalljson "$OUT" -dur "$DUR"
go run ./cmd/benchcompare -stall "$OUT"
