#!/usr/bin/env bash
# bench_conns.sh: refresh BENCH_conns.json — the idle-fleet capacity
# artifact for the event-driven connection layer.
#
# Phase 1 (netpoll): gosmrd -netpoll (hp++, detect mode, idle eviction
# off so the fleet survives) takes an O(10k-100k) mostly-idle fleet from
# kvload -idle-conns while a small hot subset runs the measured Zipf
# mix. The cell records bytes-per-conn (post-GC heap+stack delta over
# the fleet), the server goroutine count with the fleet live, the
# fast-path handle census after the hot phase, and the hot GET p99.
# kvload then closes every conn and insists live_conns drains to zero;
# SIGTERM must still produce a clean drain with zero arena violations.
#
# Phase 2 (goroutine baseline): the same hot mix on the per-connection
# goroutine layer with a smaller parked fleet (two goroutines per conn
# make 100k baseline conns pointless — the point of phase 2 is the hot
# p99 anchor, not fleet capacity), appended to the same report.
#
# The report then has to pass `benchcompare -conns`: bounded
# bytes-per-conn, conn-independent goroutines, flat handle census, hot
# p99 within the band of the baseline.
#
# The fleet auto-scales to the fd limit: min(100000, ulimit -n - 5000),
# raised to the hard cap first when the soft limit allows.
#
# Usage: scripts/bench_conns.sh [idle_conns] [requests]
set -euo pipefail

cd "$(dirname "$0")/.."

# Best-effort soft-limit raise before sizing the fleet.
ulimit -n "$(ulimit -Hn)" 2>/dev/null || true
NOFILE=$(ulimit -n)

IDLE="${1:-0}"
REQUESTS="${2:-50000}"
if [ "$IDLE" -eq 0 ]; then
    IDLE=$(( NOFILE - 5000 ))
    [ "$IDLE" -gt 100000 ] && IDLE=100000
    if [ "$IDLE" -lt 1000 ]; then
        echo "bench-conns: fd limit $NOFILE leaves no room for a fleet" >&2
        exit 2
    fi
fi
# One loopback source address per ~20k conns keeps the fleet clear of
# the ~28k ephemeral ports available per (src, dst) pair.
SRC_IPS=$(( IDLE / 20000 + 1 ))
# Baseline fleet: capped — goroutine mode pays 2 goroutines + bufio per
# conn, and phase 2 exists to anchor the hot p99, not to prove capacity.
BASE_IDLE=$IDLE
[ "$BASE_IDLE" -gt 2000 ] && BASE_IDLE=2000

ADDR="127.0.0.1:17270"
ADMIN="127.0.0.1:17271"
OUT="BENCH_conns.json"

BIN="$(mktemp -d)"
SRV_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/gosmrd" ./cmd/gosmrd
go build -o "$BIN/kvload" ./cmd/kvload

rm -f "$OUT"

# run_phase <name> <idle_conns> <kvload-append?> <gosmrd flags...>
run_phase() {
    local name="$1" fleet="$2" append="$3"
    shift 3
    echo "bench-conns: phase $name: $fleet idle conns + hot mix ($REQUESTS requests, $SRC_IPS source ips)"
    "$BIN/gosmrd" -addr "$ADDR" -admin "$ADMIN" -shards 8 -scheme hp++ -mode detect \
        -max-conns -1 -idle-timeout -1ns "$@" \
        >"$BIN/gosmrd_$name.json" 2>"$BIN/gosmrd_$name.log" &
    SRV_PID=$!

    local extra=()
    [ "$append" = append ] && extra+=(-append)
    "$BIN/kvload" -addr "$ADDR" -admin "$ADMIN" \
        -idle-conns "$fleet" -src-ips "$SRC_IPS" \
        -conns 8 -requests "$REQUESTS" -keys 4096 -zipf 1.1 \
        -note "idle-fleet $name" -out "$OUT" "${extra[@]}" \
        | tee "$BIN/kvload_$name.log"

    kill -TERM "$SRV_PID"
    if ! wait "$SRV_PID"; then
        echo "bench-conns: gosmrd drain FAILED (phase $name)" >&2
        cat "$BIN/gosmrd_$name.log" >&2
        exit 1
    fi
    SRV_PID=""
    grep -q "clean drain" "$BIN/gosmrd_$name.log" || {
        echo "bench-conns: no clean drain (phase $name)" >&2
        cat "$BIN/gosmrd_$name.log" >&2
        exit 1
    }
    echo "bench-conns: phase $name OK (clean drain, zero arena violations)"
}

run_phase netpoll "$IDLE" fresh -netpoll
run_phase goroutine "$BASE_IDLE" append

go run ./cmd/benchcompare -conns "$OUT"
echo "bench-conns: wrote $OUT (gates passed)"
jq -r '.cells[] | "\(.netpoll_kind // "goroutine")\tidle=\(.idle_conns)\tbytes/conn=\(.bytes_per_conn)\tgoroutines=\(.goroutines)\thandles=\(.live_handles)\tp99(get)=\(.p99_get_us)µs"' "$OUT"
