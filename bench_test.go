// Package gosmr's root benchmark suite maps every table and figure of the
// HP++ paper's evaluation (§5, Appendix C) onto testing.B benchmarks.
// Each benchmark family reports, besides ns/op, the reclamation metrics
// the corresponding figure plots:
//
//	peak-unreclaimed  — Figures 11, 15-17
//	avg-unreclaimed   — Figures 21-23 (here: final unreclaimed after run)
//	peak-mem-KiB      — Figures 18-20
//
// The full parameter sweeps (thread counts, key ranges) that regenerate
// the figures' axes live in cmd/smrbench; these benchmarks pin one
// representative configuration per figure so `go test -bench` exercises
// every experiment end to end.
package gosmr

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/bench"
)

// runOps drives target with the given workload mix from b.N parallel
// iterations and reports the reclamation metrics.
func runOps(b *testing.B, ds, scheme string, keyRange uint64, wl bench.Workload) {
	target, err := bench.NewTarget(ds, scheme, arena.ModeReuse)
	if err != nil {
		b.Skipf("not applicable: %v", err)
	}
	var mu sync.Mutex
	newHandle := func() bench.Handle {
		mu.Lock()
		defer mu.Unlock()
		return target.NewHandle()
	}
	bench.Prefill(newHandle(), bench.Config{KeyRange: keyRange})
	var seed atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		h := newHandle()
		s := seed.Add(0x9E3779B97F4A7C15)
		for pb.Next() {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			k := (s >> 16) % keyRange
			c := (s >> 48) % 100
			switch wl {
			case bench.WriteOnly:
				if c < 50 {
					h.Insert(k, k)
				} else {
					h.Delete(k)
				}
			case bench.ReadWrite:
				if c < 50 {
					h.Get(k)
				} else if c < 75 {
					h.Insert(k, k)
				} else {
					h.Delete(k)
				}
			default:
				if c < 90 {
					h.Get(k)
				} else if c < 95 {
					h.Insert(k, k)
				} else {
					h.Delete(k)
				}
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(target.PeakUnreclaimed()), "peak-unreclaimed")
	b.ReportMetric(float64(target.MemBytes())/1024, "peak-mem-KiB")
	target.Finish()
	b.ReportMetric(float64(target.Unreclaimed()), "final-unreclaimed")
}

// allTargets enumerates every (ds, scheme) cell of Figures 8 and 11-23.
func allTargets(b *testing.B, wl bench.Workload, big bool) {
	for _, ds := range bench.Registered() {
		for _, scheme := range bench.Schemes {
			if !bench.Applicable(ds, scheme) {
				continue
			}
			keyRange := uint64(128)
			if ds == "hmlist" || ds == "hhslist" {
				keyRange = 16
			}
			if big {
				keyRange *= 100 // lists: 1600≈paper's 10K scale; others 12800
			}
			b.Run(ds+"/"+scheme, func(b *testing.B) {
				runOps(b, ds, scheme, keyRange, wl)
			})
		}
	}
}

// BenchmarkFig08ReadWrite is Figure 8 (and Figure 13): read-write
// workload, big key range, every structure and scheme. peak-unreclaimed
// doubles as Figure 11/16, peak-mem-KiB as Figure 19.
func BenchmarkFig08ReadWrite(b *testing.B) { allTargets(b, bench.ReadWrite, true) }

// BenchmarkFig12WriteOnly is Figure 12 (throughput), 15 (peak
// unreclaimed), 18 (memory), 21 (avg unreclaimed): write-only workload.
func BenchmarkFig12WriteOnly(b *testing.B) { allTargets(b, bench.WriteOnly, true) }

// BenchmarkFig14ReadMost is Figure 14/17/20/23: read-most workload.
func BenchmarkFig14ReadMost(b *testing.B) { allTargets(b, bench.ReadMost, true) }

// BenchmarkFig09Contended is Figure 9: the HP-compatible structure versus
// the HP++-only structure of each category under heavy contention (small
// key range, write-heavy) — the payoff of optimistic traversal.
func BenchmarkFig09Contended(b *testing.B) {
	cells := []struct{ ds, scheme string }{
		{"hmlist", "hp"}, {"hhslist", "hp++"},
		{"efrbtree", "hp"}, {"nmtree", "hp++"},
	}
	for _, c := range cells {
		b.Run(c.ds+"/"+c.scheme, func(b *testing.B) {
			keyRange := uint64(16)
			if c.ds != "hmlist" && c.ds != "hhslist" {
				keyRange = 128
			}
			runOps(b, c.ds, c.scheme, keyRange, bench.ReadWrite)
		})
	}
}

// BenchmarkFig10LongReads is Figure 10: get() throughput over a large
// pre-filled list while writers churn the entry region. HMList carries
// HP; HHSList carries the optimistic schemes.
func BenchmarkFig10LongReads(b *testing.B) {
	const keyRange = 1 << 12
	const churn = 256
	for _, c := range []struct{ ds, scheme string }{
		{"hmlist", "hp"}, {"hhslist", "ebr"}, {"hhslist", "pebr"},
		{"hhslist", "hp++"}, {"hhslist", "rc"}, {"hhslist", "nr"},
	} {
		b.Run(c.ds+"/"+c.scheme, func(b *testing.B) {
			target, err := bench.NewTarget(c.ds, c.scheme, arena.ModeReuse)
			if err != nil {
				b.Skipf("not applicable: %v", err)
			}
			var mu sync.Mutex
			newHandle := func() bench.Handle {
				mu.Lock()
				defer mu.Unlock()
				return target.NewHandle()
			}
			h0 := newHandle()
			for k := uint64(0); k < keyRange; k += 2 {
				h0.Insert(4*churn+k, k)
			}
			// Background writer churning the head region.
			var stop atomic.Bool
			var wg sync.WaitGroup
			wg.Add(1)
			go func(h bench.Handle) {
				defer wg.Done()
				s := uint64(12345)
				for !stop.Load() {
					s ^= s << 13
					s ^= s >> 7
					s ^= s << 17
					k := (s >> 24) % churn
					h.Insert(k, k)
					h.Delete(k)
				}
			}(newHandle())
			var seed atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				h := newHandle()
				s := seed.Add(777)
				for pb.Next() {
					s ^= s << 13
					s ^= s >> 7
					s ^= s << 17
					h.Get(4*churn + (s>>13)%keyRange)
				}
			})
			b.StopTimer()
			stop.Store(true)
			wg.Wait()
			b.ReportMetric(float64(target.PeakUnreclaimed()), "peak-unreclaimed")
			target.Finish()
		})
	}
}

// BenchmarkAblationEpochFence compares Algorithm 3 (eager frontier
// revocation) against Algorithm 5 (epoched heavy fence, lazy revocation)
// on the Harris list — the §3.4 optimization the paper motivates.
func BenchmarkAblationEpochFence(b *testing.B) {
	for _, scheme := range []string{"hp++", "hp++ef"} {
		b.Run(scheme, func(b *testing.B) {
			runOps(b, "hhslist", scheme, 1600, bench.ReadWrite)
		})
	}
}

// BenchmarkRobustnessStall is the §4.4 experiment: write-only churn with
// one stalled participant. Compare peak-unreclaimed between EBR
// (unbounded growth) and HP/HP++/PEBR (bounded).
func BenchmarkRobustnessStall(b *testing.B) {
	for _, scheme := range []string{"ebr", "pebr", "hp++", "nr"} {
		b.Run("hhslist/"+scheme, func(b *testing.B) {
			target, err := bench.NewTarget("hhslist", scheme, arena.ModeReuse)
			if err != nil {
				b.Skipf("not applicable: %v", err)
			}
			if target.Stall != nil {
				target.Stall()
			}
			var mu sync.Mutex
			newHandle := func() bench.Handle {
				mu.Lock()
				defer mu.Unlock()
				return target.NewHandle()
			}
			bench.Prefill(newHandle(), bench.Config{KeyRange: 1600})
			var seed atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				h := newHandle()
				s := seed.Add(0xABCDEF)
				for pb.Next() {
					s ^= s << 13
					s ^= s >> 7
					s ^= s << 17
					k := (s >> 24) % 1600
					if (s>>33)&1 == 0 {
						h.Insert(k, k)
					} else {
						h.Delete(k)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(target.PeakUnreclaimed()), "peak-unreclaimed")
		})
	}
}

// BenchmarkSchemePrimitives microbenchmarks the protection primitives
// themselves: the cost TryProtect adds over plain HP protection and over
// an EBR pin/unpin pair.
func BenchmarkSchemePrimitives(b *testing.B) {
	b.Run("hhslist/hp++/get-hit", func(b *testing.B) {
		target, _ := bench.NewTarget("hhslist", "hp++", arena.ModeReuse)
		h := target.NewHandle()
		for k := uint64(0); k < 64; k++ {
			h.Insert(k, k)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Get(uint64(i) & 63)
		}
	})
	b.Run("hhslist/ebr/get-hit", func(b *testing.B) {
		target, _ := bench.NewTarget("hhslist", "ebr", arena.ModeReuse)
		h := target.NewHandle()
		for k := uint64(0); k < 64; k++ {
			h.Insert(k, k)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Get(uint64(i) & 63)
		}
	})
	b.Run("hmlist/hp/get-hit", func(b *testing.B) {
		target, _ := bench.NewTarget("hmlist", "hp", arena.ModeReuse)
		h := target.NewHandle()
		for k := uint64(0); k < 64; k++ {
			h.Insert(k, k)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Get(uint64(i) & 63)
		}
	})
}
