// kvcache: a concurrent fixed-capacity key-value cache built on the
// chaining hash map with HP++ reclamation — the kind of workload the
// paper's introduction motivates (high-churn shared maps where memory
// must be bounded without a stop-the-world collector).
//
// Eight workers hammer the cache with a Zipf-ish skewed mix of lookups,
// inserts and invalidations for two seconds, then the program reports
// throughput and how much retired memory HP++ kept in flight.
//
//	go run ./examples/kvcache
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/ds/hashmap"
	"github.com/gosmr/gosmr/internal/ds/hhslist"
)

const (
	workers  = 8
	keySpace = 1 << 16
	duration = 2 * time.Second
)

func main() {
	dom := core.NewDomain(core.Options{})
	pool := hhslist.NewPool(arena.ModeReuse)
	m := hashmap.NewMapHPP(pool, 1<<10)

	var (
		hits, misses, puts, evicts atomic.Uint64
		stop                       atomic.Bool
		wg                         sync.WaitGroup
	)

	handles := make([]*hashmap.HandleHPP, workers)
	for i := range handles {
		handles[i] = m.NewHandleHPP(dom)
	}

	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(h *hashmap.HandleHPP, seed uint64) {
			defer wg.Done()
			s := seed
			for !stop.Load() {
				s ^= s << 13
				s ^= s >> 7
				s ^= s << 17
				// Skew towards low keys: xor-fold twice.
				k := ((s >> 16) % keySpace) & ((s >> 40) % keySpace)
				switch (s >> 33) % 10 {
				case 0, 1: // put
					h.Insert(k, s)
					puts.Add(1)
				case 2: // invalidate
					if h.Delete(k) {
						evicts.Add(1)
					}
				default: // lookup
					if _, ok := h.Get(k); ok {
						hits.Add(1)
					} else {
						misses.Add(1)
					}
				}
			}
		}(handles[w], uint64(w)*0x9E3779B97F4A7C15+1)
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	total := hits.Load() + misses.Load() + puts.Load() + evicts.Load()
	st := pool.Stats()
	fmt.Printf("ops        : %d (%.2f Mops/s)\n", total, float64(total)/elapsed.Seconds()/1e6)
	fmt.Printf("lookups    : %d hits / %d misses (%.1f%% hit rate)\n",
		hits.Load(), misses.Load(),
		100*float64(hits.Load())/float64(hits.Load()+misses.Load()+1))
	fmt.Printf("puts/evicts: %d / %d\n", puts.Load(), evicts.Load())
	fmt.Printf("memory     : %d live entries (%d KiB), high-water %d KiB\n",
		st.Live, st.Bytes/1024, st.PeakBytes/1024)
	fmt.Printf("hp++       : %d retired-unreclaimed now, peak %d — bounded, no GC pauses\n",
		dom.Unreclaimed(), dom.PeakUnreclaimed())

	for _, h := range handles {
		h.Thread().Finish()
	}
	dom.NewThread(0).Reclaim()
	fmt.Printf("after drain: %d unreclaimed\n", dom.Unreclaimed())
}
