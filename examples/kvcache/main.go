// kvcache: a concurrent fixed-capacity key-value cache built on the
// kvsvc sharded store with HP++ reclamation — the kind of workload the
// paper's introduction motivates (high-churn shared maps where memory
// must be bounded without a stop-the-world collector).
//
// The store is the same shard-per-domain composition gosmrd serves over
// the network: four shards, each owning its own HP++ domain and chaining
// hash map, so reclamation pressure stays confined to the shard that
// generated it. Eight workers hammer it with a Zipf-ish skewed mix of
// lookups, inserts and invalidations for two seconds, then the program
// reports throughput and how much retired memory HP++ kept in flight.
//
//	go run ./examples/kvcache
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/kvsvc"
)

const (
	workers  = 8
	keySpace = 1 << 16
	duration = 2 * time.Second
)

func main() {
	store, err := kvsvc.NewStore(kvsvc.Config{
		Shards:  4,
		Scheme:  "hp++",
		Mode:    arena.ModeReuse,
		Buckets: 1 << 8, // 4 shards × 256 buckets ≈ the old single map's 1024
	})
	if err != nil {
		panic(err)
	}

	var (
		hits, misses, puts, evicts atomic.Uint64
		stop                       atomic.Bool
		wg                         sync.WaitGroup
	)

	handles := make([]kvsvc.Handle, workers)
	for i := range handles {
		handles[i] = store.NewHandle()
	}

	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(h kvsvc.Handle, seed uint64) {
			defer wg.Done()
			s := seed
			for !stop.Load() {
				s ^= s << 13
				s ^= s >> 7
				s ^= s << 17
				// Skew towards low keys: xor-fold twice.
				k := ((s >> 16) % keySpace) & ((s >> 40) % keySpace)
				switch (s >> 33) % 10 {
				case 0, 1: // put
					h.Insert(k, s)
					puts.Add(1)
				case 2: // invalidate
					if h.Delete(k) {
						evicts.Add(1)
					}
				default: // lookup
					if _, ok := h.Get(k); ok {
						hits.Add(1)
					} else {
						misses.Add(1)
					}
				}
			}
		}(handles[w], uint64(w)*0x9E3779B97F4A7C15+1)
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	total := hits.Load() + misses.Load() + puts.Load() + evicts.Load()
	st := store.ArenaTotals()
	fmt.Printf("ops        : %d (%.2f Mops/s)\n", total, float64(total)/elapsed.Seconds()/1e6)
	fmt.Printf("lookups    : %d hits / %d misses (%.1f%% hit rate)\n",
		hits.Load(), misses.Load(),
		100*float64(hits.Load())/float64(hits.Load()+misses.Load()+1))
	fmt.Printf("puts/evicts: %d / %d\n", puts.Load(), evicts.Load())
	fmt.Printf("memory     : %d live entries (%d KiB), high-water %d KiB\n",
		st.Live, st.Bytes/1024, st.PeakBytes/1024)
	fmt.Printf("hp++       : %d retired-unreclaimed now, peak %d — bounded, no GC pauses\n",
		store.Unreclaimed(), store.PeakUnreclaimed())

	store.Drain()
	fmt.Printf("after drain: %d unreclaimed\n", store.Unreclaimed())
}
