// Quickstart: a lock-free sorted map (Harris's list) reclaimed with HP++.
//
// The program walks through the HP++ life cycle the paper describes:
// allocate nodes from an arena pool, traverse optimistically under
// TryProtect, unlink chains with TryUnlink, and watch invalidation +
// reclamation return memory to the pool.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/ds/hhslist"
)

func main() {
	// An HP++ domain: Reclaim per 128 unlinks, DoInvalidation per 32 —
	// the paper's defaults. EpochFence selects Algorithm 5.
	dom := core.NewDomain(core.Options{})

	// Nodes live in an arena pool; ModeReuse recycles freed slots like a
	// real allocator (use ModeDetect in tests to catch use-after-free).
	pool := hhslist.NewPool(arena.ModeReuse)
	list := hhslist.NewListHPP(pool)

	// One handle per goroutine; it owns that worker's hazard slots.
	h := list.NewHandleHPP(dom)

	fmt.Println("== insert ==")
	for k := uint64(1); k <= 10; k++ {
		h.Insert(k, k*100)
	}
	if v, ok := h.Get(7); ok {
		fmt.Printf("get(7)  = %d\n", v)
	}
	if _, ok := h.Get(42); !ok {
		fmt.Println("get(42) = miss")
	}

	fmt.Println("\n== delete ==")
	for k := uint64(2); k <= 10; k += 2 {
		h.Delete(k)
	}
	for k := uint64(1); k <= 10; k++ {
		if v, ok := h.Get(k); ok {
			fmt.Printf("  %2d -> %d\n", k, v)
		}
	}

	st := pool.Stats()
	fmt.Printf("\narena: %d allocated, %d freed, %d live (%d B)\n",
		st.Allocs, st.Frees, st.Live, st.Bytes)
	fmt.Printf("hp++ : %d retired blocks not yet reclaimed (peak %d)\n",
		dom.Unreclaimed(), dom.PeakUnreclaimed())

	// Finish flushes this worker's deferred invalidations and retire
	// bags; a final Reclaim pass frees whatever is unprotected.
	h.Thread().Finish()
	dom.NewThread(0).Reclaim()
	fmt.Printf("after drain: %d unreclaimed, %d live nodes\n",
		dom.Unreclaimed(), pool.Stats().Live)
}
