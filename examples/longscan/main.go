// longscan: long-running reads under reclamation pressure — the paper's
// Figure 10 scenario as a demo.
//
// Readers run get() over a large Harris list while writers churn the head
// of the list, forcing constant unlinking and reclamation right on the
// readers' path. The program runs the same scenario under PEBR (readers
// get neutralized: coarse-grained failure) and HP++ (readers fail only on
// nodes that were actually invalidated: fine-grained), and prints reader
// throughput plus PEBR's ejection count.
//
//	go run ./examples/longscan
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/bench"
	"github.com/gosmr/gosmr/internal/ds/hhslist"
	"github.com/gosmr/gosmr/internal/pebr"
)

const (
	keyRange = 1 << 13 // list length ⇒ how "long-running" a get is
	churn    = 512
	duration = 1500 * time.Millisecond
)

func run(scheme string) (mops float64, ejections int64) {
	target, err := bench.NewTarget("hhslist", scheme, arena.ModeReuse)
	if err != nil {
		panic(err)
	}
	res := bench.RunLongReads(target, bench.Config{
		Threads:  4,
		Duration: duration,
		KeyRange: keyRange,
	})
	return res.MopsPerSec, 0
}

func main() {
	fmt.Printf("list size ~%d, churn window %d, %v per scheme\n\n", keyRange/2, churn, duration)

	for _, scheme := range []string{"ebr", "pebr", "hp++"} {
		mops, _ := run(scheme)
		fmt.Printf("%-5s readers: %7.3f Mops/s\n", scheme, mops)
	}

	// Show PEBR's neutralizations explicitly with a direct setup.
	dom := pebr.NewDomain()
	pool := hhslist.NewPool(arena.ModeReuse)
	l := hhslist.NewListCS(pool)
	seed := l.NewHandleCS(dom)
	for k := uint64(0); k < keyRange; k += 2 {
		seed.Insert(4*churn+k, k)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	var reads atomic.Uint64
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(h *hhslist.HandleCS, s uint64) {
			defer wg.Done()
			for !stop.Load() {
				s ^= s << 13
				s ^= s >> 7
				s ^= s << 17
				h.Get(4*churn + (s>>13)%keyRange)
				reads.Add(1)
			}
		}(l.NewHandleCS(dom), uint64(w+1))
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(h *hhslist.HandleCS, s uint64) {
			defer wg.Done()
			for !stop.Load() {
				s ^= s << 13
				s ^= s >> 7
				s ^= s << 17
				k := (s >> 24) % churn
				h.Insert(k, k)
				h.Delete(k)
			}
		}(l.NewHandleCS(dom), uint64(w+77))
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	fmt.Printf("\npebr under the hood: %d reads, %d reader/writer neutralizations\n",
		reads.Load(), dom.Ejections())
	fmt.Println("hp++ has no analogue: its TryProtect fails per-pointer, only on invalidated nodes.")
}
