// robustness: the §4.4 experiment as a demo — what happens to retired
// memory when one participant stalls inside a critical section.
//
// A stalled reader pins an EBR epoch (or holds an HP++ protection) and
// never moves again, while four writers churn a Harris list for two
// seconds. The program samples the retired-but-unreclaimed count over
// time for EBR, PEBR, HP++ and NR:
//
//   - EBR grows without bound — one stalled pin blocks every reclamation;
//   - PEBR ejects the stalled reader and stays flat;
//   - HP++ stays flat: a hazard pointer only pins single nodes;
//   - NR (no reclamation) grows forever by construction.
//
// go run ./examples/robustness
package main

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/bench"
)

const (
	duration = 2 * time.Second
	samples  = 8
)

func main() {
	fmt.Printf("%-6s", "scheme")
	for i := 1; i <= samples; i++ {
		fmt.Printf("%10s", fmt.Sprintf("t=%dms", int(duration.Milliseconds())*i/samples))
	}
	fmt.Println("   (retired-but-unreclaimed blocks)")

	for _, scheme := range []string{"ebr", "pebr", "hp++", "nr"} {
		target, err := bench.NewTarget("hhslist", scheme, arena.ModeReuse)
		if err != nil {
			panic(err)
		}
		if target.Stall != nil {
			target.Stall() // the adversary: pins and never returns
		}
		handles := make([]bench.Handle, 4)
		for i := range handles {
			handles[i] = target.NewHandle()
		}
		var stop atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(h bench.Handle, s uint64) {
				defer wg.Done()
				for !stop.Load() {
					s ^= s << 13
					s ^= s >> 7
					s ^= s << 17
					k := (s >> 24) % 1600
					if (s>>33)&1 == 0 {
						h.Insert(k, k)
					} else {
						h.Delete(k)
					}
				}
			}(handles[w], uint64(w)+1)
		}
		row := make([]int64, 0, samples)
		for i := 0; i < samples; i++ {
			time.Sleep(duration / samples)
			row = append(row, target.Unreclaimed())
		}
		stop.Store(true)
		wg.Wait()
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = fmt.Sprintf("%10d", v)
		}
		fmt.Printf("%-6s%s\n", scheme, strings.Join(cells, ""))
		target.Finish()
	}
	fmt.Println("\nEBR's row climbs monotonically: that is the robustness gap HP++ closes")
	fmt.Println("while — unlike the original HP — still supporting optimistic traversal.")
}
