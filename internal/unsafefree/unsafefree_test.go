package unsafefree

import (
	"testing"

	"github.com/gosmr/gosmr/internal/arena"
)

func TestFreesImmediately(t *testing.T) {
	d := NewDomain()
	p := arena.NewPool[uint64]("t", arena.ModeDetect)
	g := d.NewGuard(0)
	ref, _ := p.Alloc()
	g.Retire(ref, p)
	if p.Live(ref) {
		t.Fatal("unsafefree must free on retire")
	}
	if d.Unreclaimed() != 0 {
		t.Fatalf("unreclaimed = %d", d.Unreclaimed())
	}
}

// TestDanglingAccessDetected demonstrates the whole point of the package:
// an access pattern that is safe under any real scheme becomes a detected
// use-after-free here.
func TestDanglingAccessDetected(t *testing.T) {
	d := NewDomain()
	p := arena.NewPool[uint64]("t", arena.ModeDetect)
	p.SetCount()
	g := d.NewGuard(0)

	ref, v := p.Alloc()
	*v = 7
	g.Pin()     // would be protection under EBR...
	held := ref // ...so holding the ref across a concurrent retire...
	g.Retire(ref, p)
	p.Deref(held) // ...must be caught when the scheme freed it instantly.
	g.Unpin()

	if p.Stats().UAF != 1 {
		t.Fatalf("UAF count = %d, want 1", p.Stats().UAF)
	}
}
