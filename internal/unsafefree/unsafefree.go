// Package unsafefree is a deliberately broken reclamation "scheme" that
// frees nodes the moment they are retired, with no grace period and no
// protection. It exists purely so tests can demonstrate that (a) the
// arena's detect mode really catches use-after-free, and (b) the data
// structures genuinely depend on their reclamation schemes — if a
// structure passes its stress test under unsafefree, the test is too weak.
package unsafefree

import "github.com/gosmr/gosmr/internal/smr"

// Domain immediately frees every retired node.
type Domain struct {
	g smr.Garbage
}

// NewDomain returns a new immediate-free domain.
func NewDomain() *Domain { return &Domain{} }

// NewGuard returns a guard whose Retire frees immediately.
func (d *Domain) NewGuard(slots int) smr.Guard { return &guard{d: d} }

// Unreclaimed is always 0: garbage never outlives Retire.
func (d *Domain) Unreclaimed() int64 { return 0 }

// PeakUnreclaimed is always 0.
func (d *Domain) PeakUnreclaimed() int64 { return 0 }

// Stats returns an observability snapshot; retired == freed by design.
func (d *Domain) Stats() smr.Stats {
	st := smr.Stats{Scheme: "unsafefree"}
	smr.FillStats(&st, &d.g, nil)
	return st
}

type guard struct{ d *Domain }

func (g *guard) Pin()                         {}
func (g *guard) Unpin()                       {}
func (g *guard) Track(i int, ref uint64) bool { return true }

func (g *guard) Retire(ref uint64, d smr.Deallocator) {
	g.d.g.AddRetired(1)
	d.FreeRef(ref)
	g.d.g.AddFreed(1)
}

var _ smr.GuardDomain = (*Domain)(nil)
