package stress

import (
	"testing"

	"github.com/gosmr/gosmr/internal/bench"
)

func testOpts(ops int) Options {
	return Options{Workers: 4, Ops: ops, Keys: 6, Faults: DefaultFaults()}
}

func TestMatrixShape(t *testing.T) {
	safe := Matrix(false)
	all := Matrix(true)
	if len(all) <= len(safe) {
		t.Fatalf("Matrix(true) added no unsafe cells: %d vs %d", len(all), len(safe))
	}
	// Unsafe controls: one per map structure, the CS stack, and the
	// hhslist SCOT skip-validation control.
	wantUnsafe := len(bench.DataStructures()) + 2
	if got := len(all) - len(safe); got != wantUnsafe {
		t.Fatalf("unsafe cell count = %d, want %d", got, wantUnsafe)
	}
	seen := map[Cell]bool{}
	kinds := map[string]int{}
	for _, c := range all {
		if seen[c] {
			t.Fatalf("duplicate cell %v", c)
		}
		seen[c] = true
		kinds[c.Kind]++
	}
	if kinds["map"] == 0 || kinds["queue"] == 0 || kinds["stack"] == 0 {
		t.Fatalf("matrix missing a kind: %v", kinds)
	}
	for _, c := range safe {
		if c.Scheme == bench.UnsafeScheme || c.Scheme == bench.ScotUnsafeScheme {
			t.Fatalf("Matrix(false) contains unsafe cell %v", c)
		}
	}
}

func TestRunRejectsUnknownCell(t *testing.T) {
	if _, err := Run(Cell{"hmlist", "hp", "bogus"}, testOpts(10)); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Run(Cell{"hmlist", "nosuch", "map"}, testOpts(10)); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

// requireOK runs a cell that is expected to be fully correct and fails
// the test with the attributable report otherwise.
func requireOK(t *testing.T, c Cell, opts Options) CellResult {
	t.Helper()
	res, err := Run(c, opts)
	if err != nil {
		t.Fatalf("%v: %v", c, err)
	}
	if !res.Passed() {
		t.Fatalf("%v: outcome %q (uaf=%d doublefree=%d)\n%s",
			c, res.Outcome, res.UAF, res.DoubleFree, res.Report)
	}
	if res.Ops == 0 {
		t.Fatalf("%v: no operations recorded", c)
	}
	return res
}

// TestSafeCellsSubsample covers a representative slice of the matrix in
// short mode: every kind, every scheme family, every fault injector.
func TestSafeCellsSubsample(t *testing.T) {
	cells := []Cell{
		{"hmlist", "hp++", "map"},
		{"skiplist", "hp", "map"},
		{"bonsai", "rc", "map"},
		{"hhslist", "pebr", "map"},
		{"hhslist", "hp-scot", "map"},
		{"hmlist", "hp-scot", "map"},
		{"hashmap", "ebr", "map"},
		{"somap", "hp++", "map"},
		{"somap", "hp", "map"},
		{"somap", "hp-scot", "map"},
		{"nmtree", "hp++ef", "map"},
		{"efrbtree", "pebr", "map"},
		{"msqueue", "hp++", "queue"},
		{"tstack", "hp", "stack"},
		{"tstack", "pebr", "stack"},
	}
	ops := 250
	if !testing.Short() {
		ops = 800
	}
	for _, c := range cells {
		c := c
		t.Run(c.String(), func(t *testing.T) {
			requireOK(t, c, testOpts(ops))
		})
	}
}

// TestFullMatrixSafe sweeps every safe cell of the matrix. Long mode
// only; the short subsample above covers each family.
func TestFullMatrixSafe(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix sweep in long mode only")
	}
	for _, c := range Matrix(false) {
		c := c
		t.Run(c.String(), func(t *testing.T) {
			requireOK(t, c, testOpts(600))
		})
	}
}

// TestUnsafeCellsFlagged is the must-fail control: the unsafefree scheme
// frees nodes immediately on unlink, so the deref yieldpoints make the
// arena observe a use-after-free. The harness must attribute this as a
// memory-safety verdict, not a linearizability one. Escalating rounds
// keep it deterministic-in-practice on any core count.
func TestUnsafeCellsFlagged(t *testing.T) {
	cells := []Cell{
		{"hmlist", bench.UnsafeScheme, "map"},
		{"somap", bench.UnsafeScheme, "map"},
		{"tstack", bench.UnsafeScheme, "stack"},
		// The SCOT control: hazards announced, handshake skipped. The
		// parked reader resumes through links frozen while the chain was
		// unlinked, retired and freed around it — validation is the only
		// thing standing between that walk and a use-after-free.
		{"hhslist", bench.ScotUnsafeScheme, "map"},
	}
	for _, c := range cells {
		c := c
		t.Run(c.String(), func(t *testing.T) {
			for round := 0; round < 5; round++ {
				opts := testOpts(400 << round)
				opts.Seed = 0xBAD5EED + uint64(round)
				res, err := Run(c, opts)
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				if res.UAF > 0 || res.DoubleFree > 0 {
					if res.Outcome != "uaf" && res.Outcome != "double-free" {
						t.Fatalf("bug counted but outcome %q", res.Outcome)
					}
					return
				}
			}
			t.Fatalf("%v: no UAF/double-free detected after 5 escalating rounds", c)
		})
	}
}

// TestFaultKnobsOff exercises the no-faults path: with every injector
// disabled the harness still records and checks a valid history.
func TestFaultKnobsOff(t *testing.T) {
	opts := Options{Workers: 2, Ops: 200, Keys: 4}
	res := requireOK(t, Cell{"hmlist", "ebr", "map"}, opts)
	if res.ParkedStall {
		t.Fatal("stalled reader parked with StallReader disabled")
	}
}
