package stress

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/bench"
)

// This file is the first-class stalled-thread experiment (§4.4 of the
// paper, promoted from a throwaway figure to a committed, gated
// artifact). One participant is parked *mid-mutation* — caught inside a
// detect-mode deref on the write path, holding whatever pin or hazard
// announcement its scheme grants a writer — while the remaining workers
// run a deterministic write-only workload. The cell records the exact
// peak and final retired-but-unfreed counts per scheme, demonstrating:
//
//   - EBR: unbounded growth — the parked pin blocks every epoch advance,
//     so the backlog tracks total retires;
//   - HP/HP++: bounded — the parked worker protects at most its
//     announced slots;
//   - PEBR: bounded — the lagging guard is ejected;
//   - NBR: bounded — once the retired budget crosses the neutralization
//     pressure the parked record is flagged and stops gating the epoch.
//
// Unlike the duration-driven figures the workload is an exact op count,
// so the retire totals (and with them EBR's backlog) are reproducible
// across machines up to scheduling noise in who wins each key race.

// StallOptions parameterizes one stalled-thread experiment sweep.
type StallOptions struct {
	// DS is the map structure under test. Default "hmlist": the one
	// structure every scheme (including plain HP) can run.
	DS string
	// Schemes to sweep. Default: every reclaiming scheme applicable to
	// DS (nr and rc are excluded — nr never frees, so "peak unreclaimed"
	// is meaningless, and rc's traces make the comparison apples-to-
	// oranges; pass them explicitly to include them anyway).
	Schemes []string
	// Workers is the mutating worker count (the parked participant is
	// extra). Ops is the per-worker write-only op count.
	Workers int
	Ops     int
	Keys    uint64
	Seed    uint64
}

func (o StallOptions) withDefaults() StallOptions {
	if o.DS == "" {
		o.DS = "hmlist"
	}
	if len(o.Schemes) == 0 {
		o.Schemes = DefaultStallSchemes(o.DS)
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Ops <= 0 {
		o.Ops = 20000
	}
	if o.Keys == 0 {
		o.Keys = 64
	}
	if o.Seed == 0 {
		o.Seed = 0x57A11
	}
	return o
}

// DefaultStallSchemes derives the stall sweep's scheme list from the
// bench.Schemes registry: every reclaiming scheme applicable to ds, in
// registry order. It is intentionally NOT a literal — PR 8's hp++ef
// incident (a hand-maintained copy that silently dropped the new scheme
// from BENCH_stall.json) is the bug class this derivation removes; a pin
// test mirrors TestDefaultSweepSchemesMatchRegistry against it.
func DefaultStallSchemes(ds string) []string {
	var out []string
	for _, s := range bench.Schemes {
		// nr never frees, so "peak unreclaimed" is meaningless; rc's
		// traces make the comparison apples-to-oranges (see StallOptions).
		if s == "nr" || s == "rc" {
			continue
		}
		if bench.Applicable(ds, s) {
			out = append(out, s)
		}
	}
	return out
}

// StallCell is one scheme's stalled-thread measurement.
type StallCell struct {
	DS      string `json:"ds"`
	Scheme  string `json:"scheme"`
	Workers int    `json:"workers"`
	Ops     int    `json:"ops"`
	// ParkedStall reports whether the participant actually parked inside
	// a deref (false means the trap timed out and the cell measured an
	// unstalled run — treat its numbers as invalid).
	ParkedStall bool `json:"parked_stall"`
	// PeakUnreclaimed is the exact high-water retired-but-unfreed count
	// with the participant parked; StalledUnreclaimed the count at the
	// moment the workload finished (parked still held); FinalUnreclaimed
	// the count after release and a full drain — every reclaiming scheme
	// must reach 0 here.
	PeakUnreclaimed    int64 `json:"peak_unreclaimed"`
	StalledUnreclaimed int64 `json:"stalled_unreclaimed"`
	FinalUnreclaimed   int64 `json:"final_unreclaimed"`
	TotalRetired       int64 `json:"total_retired"`
	TotalFreed         int64 `json:"total_freed"`
	// Ejections (PEBR) and Neutralizations/NeutralizedStalled (NBR) show
	// which mechanism kept the bound.
	Ejections          int64 `json:"ejections,omitempty"`
	Neutralizations    int64 `json:"neutralizations,omitempty"`
	NeutralizedStalled int64 `json:"neutralized_stalled,omitempty"`
	UAF                int64 `json:"uaf"`
	DoubleFree         int64 `json:"double_free"`
	ElapsedMS          int64 `json:"elapsed_ms"`
}

// StallThroughputCell is one unstalled read-heavy throughput cell: the
// cost-of-robustness companion (an NBR that was robust but slow would be
// no answer at all).
type StallThroughputCell struct {
	DS         string  `json:"ds"`
	Scheme     string  `json:"scheme"`
	Threads    int     `json:"threads"`
	Workload   string  `json:"workload"`
	KeyRange   uint64  `json:"key_range"`
	MopsPerSec float64 `json:"mops_per_sec"`
}

// StallReport is the schema of BENCH_stall.json.
type StallReport struct {
	GeneratedBy string                `json:"generated_by"`
	Cells       []StallCell           `json:"cells"`
	Throughput  []StallThroughputCell `json:"throughput,omitempty"`
}

// RunStallCell runs the stalled-thread experiment for one scheme: park a
// writer mid-mutation, run the deterministic write-only workload, read
// the peak, release the parked writer, drain, and read the final count.
func RunStallCell(scheme string, opts StallOptions) (StallCell, error) {
	opts = opts.withDefaults()
	cell := StallCell{DS: opts.DS, Scheme: scheme, Workers: opts.Workers, Ops: opts.Ops}
	start := time.Now()

	// Detect mode is required: the park trap lives in the arena's
	// detect-mode deref hook.
	target, err := bench.NewTarget(opts.DS, scheme, arena.ModeDetect)
	if err != nil {
		return cell, err
	}
	in := newInjector(0)
	for _, p := range target.Pools {
		p.SetCount()
		p.SetDerefHook(in.hook)
	}

	handles := make([]bench.Handle, opts.Workers)
	for w := range handles {
		handles[w] = target.NewHandle()
	}
	for k := uint64(0); k < opts.Keys; k += 2 {
		handles[0].Insert(k, k+1000)
	}

	// Park one extra participant mid-insert; the key sits past the whole
	// worked range so the traversal derefs the shared prefix first.
	parkedH := target.NewHandle()
	in.arm()
	var stallWG sync.WaitGroup
	stallWG.Add(1)
	go func() {
		defer stallWG.Done()
		parkedH.Insert(opts.Keys+1, 42)
	}()
	cell.ParkedStall = in.awaitParked(500 * time.Millisecond)

	var wg sync.WaitGroup
	for w := range handles {
		wg.Add(1)
		go func(w int, h bench.Handle) {
			defer wg.Done()
			r := rng{s: opts.Seed + uint64(w)*0x9E3779B9}
			for i := 0; i < opts.Ops; i++ {
				k := r.next() % opts.Keys
				if r.next()%2 == 0 {
					h.Insert(k, r.next())
				} else {
					h.Delete(k)
				}
			}
		}(w, handles[w])
	}
	wg.Wait()

	cell.StalledUnreclaimed = target.Unreclaimed()
	cell.PeakUnreclaimed = target.PeakUnreclaimed()

	in.releaseParked()
	stallWG.Wait()
	for _, p := range target.Pools {
		p.SetDerefHook(nil)
	}
	target.Finish()
	cell.FinalUnreclaimed = target.Unreclaimed()

	st := target.Stats()
	cell.TotalRetired = st.TotalRetired
	cell.TotalFreed = st.TotalFreed
	cell.Ejections = st.Ejections
	cell.Neutralizations = st.Neutralizations
	cell.NeutralizedStalled = st.NeutralizedStalled
	for _, p := range target.Pools {
		ps := p.Stats()
		cell.UAF += ps.UAF
		cell.DoubleFree += ps.DoubleFree
	}
	cell.ElapsedMS = time.Since(start).Milliseconds()
	return cell, nil
}

// stallThroughputRange is the key range of the unstalled read-heavy
// companion cell: 2^14, the midpoint of the paper's fig-10 long-reads
// range sweep. At this scale traversal is memory-bound and the robust
// schemes' per-node announcement (one seq-cst store in NBR's Track,
// identical in PEBR's) hides under the cache misses; on fully
// cache-resident lists the same announcement costs ~2ns per node and
// the robust schemes trail EBR by ~20% — the honest price of
// park-anywhere robustness without OS signals.
const stallThroughputRange = 1 << 14

// StallJSON writes a BENCH_stall.json-shaped report to w: one stalled
// cell per scheme plus the unstalled read-heavy throughput companion
// (hhslist read-most — the cell the paper uses to show the robustness
// schemes' overhead on the read path; hmlist carries the plain-HP row).
func StallJSON(w io.Writer, opts StallOptions, dur time.Duration) error {
	opts = opts.withDefaults()
	report := StallReport{GeneratedBy: "smrbench -stalljson"}
	for _, scheme := range opts.Schemes {
		cell, err := RunStallCell(scheme, opts)
		if err != nil {
			return fmt.Errorf("stall cell %s/%s: %w", opts.DS, scheme, err)
		}
		report.Cells = append(report.Cells, cell)
	}
	for _, scheme := range opts.Schemes {
		ds := "hhslist"
		if !bench.Applicable(ds, scheme) {
			ds = "hmlist"
		}
		t, err := bench.NewTarget(ds, scheme, arena.ModeReuse)
		if err != nil {
			return err
		}
		res := bench.Run(t, bench.Config{
			Threads:  opts.Workers,
			Duration: dur,
			Workload: bench.ReadMost,
			KeyRange: stallThroughputRange,
		})
		report.Throughput = append(report.Throughput, StallThroughputCell{
			DS:         ds,
			Scheme:     scheme,
			Threads:    opts.Workers,
			Workload:   bench.ReadMost.String(),
			KeyRange:   stallThroughputRange,
			MopsPerSec: res.MopsPerSec,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
