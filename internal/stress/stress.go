// Package stress is the full-matrix fault-injection safety harness: it
// sweeps every registered (data structure, scheme) cell — including the
// queue and stack, and the deliberately broken unsafefree control — in
// arena detect mode, records complete operation histories, and hands
// them to the linchk linearizability checker.
//
// Each cell runs shared-key workloads under three adversaries:
//
//   - a stalled reader: a goroutine parked mid-traversal (inside a
//     Deref, holding whatever guard/protection its scheme gives it) for
//     the whole run;
//   - delayed retirers: destructive workers yield repeatedly after each
//     remove, stretching the unlink→free→reuse window;
//   - reclamation storms: a dedicated goroutine hammering epoch
//     advancement, which for PEBR ejects (neutralizes) lagging readers
//     over and over.
//
// Verdicts are attributable: "uaf"/"double-free" mean the arena caught a
// memory-safety violation (the reclamation scheme is broken), while
// "non-linearizable" means every access was memory-safe but the observed
// results admit no legal sequential order (the data structure is
// broken). A correct cell reports "ok" on both axes.
package stress

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/bench"
	"github.com/gosmr/gosmr/internal/linchk"
	"github.com/gosmr/gosmr/internal/smr"
)

// Cell is one (data structure, scheme) pair of the safety matrix.
type Cell struct {
	DS     string `json:"ds"`
	Scheme string `json:"scheme"`
	// Kind selects the op surface and spec: "map", "queue" or "stack".
	Kind string `json:"kind"`
}

func (c Cell) String() string { return c.DS + "/" + c.Scheme }

// Matrix enumerates the full safety matrix: all seven map-style
// structures under every applicable scheme, the MS queue under the HP
// family, the Treiber stack under the HP family and every CS scheme —
// and, when includeUnsafe is set, an unsafefree control cell for every
// structure with a CS variant (the cells that MUST fail).
func Matrix(includeUnsafe bool) []Cell {
	var cells []Cell
	for _, ds := range bench.DataStructures() {
		for _, s := range bench.Schemes {
			if bench.Applicable(ds, s) {
				cells = append(cells, Cell{ds, s, "map"})
			}
		}
		if includeUnsafe {
			cells = append(cells, Cell{ds, bench.UnsafeScheme, "map"})
			if ds == "hhslist" {
				// The SCOT must-fail control: hp-scot with the handshake
				// elided. One cell suffices — somap and hashmap reuse the
				// same list code.
				cells = append(cells, Cell{ds, bench.ScotUnsafeScheme, "map"})
			}
		}
	}
	for _, s := range bench.QueueSchemes {
		cells = append(cells, Cell{"msqueue", s, "queue"})
	}
	for _, s := range bench.StackSchemes {
		cells = append(cells, Cell{"tstack", s, "stack"})
	}
	if includeUnsafe {
		cells = append(cells, Cell{"tstack", bench.UnsafeScheme, "stack"})
	}
	return cells
}

// Faults selects the adversaries injected into a cell run.
type Faults struct {
	// StallReader parks one reader goroutine mid-traversal (inside a
	// deref, guard held) for the whole run.
	StallReader bool
	// ParkedWorker upgrades the stalled participant from a reader to a
	// writer: the parked goroutine is caught mid-*mutation* (map insert,
	// queue enqueue, stack push), pinned with whatever protection its
	// scheme grants a destructive op. This is the §4.4 robustness
	// adversary in its strongest form — the parked worker may hold
	// hazard announcements or an epoch pin acquired on the write path.
	// Implies the stall machinery even when StallReader is false.
	ParkedWorker bool
	// DelayRetire makes destructive workers yield this many times after
	// every successful remove.
	DelayRetire int
	// Storm runs a goroutine hammering the scheme's collection pulse:
	// epoch advancement and PEBR ejection storms.
	Storm bool
	// YieldEvery inserts a scheduler yield into every Nth deref, between
	// slot resolution and liveness validation — the window in which a
	// buggy scheme frees a node out from under a reader. 0 disables.
	YieldEvery int
	// ResizeStorm shrinks resizable structures to a tiny initial
	// directory with load factor 1 (somap: 2 buckets, double on every
	// insert beyond the count), so directory doublings and dummy-node
	// splices happen continuously while the other faults are active.
	// Ignored by fixed-size structures.
	ResizeStorm bool
}

// DefaultFaults enables every adversary at moderate intensity.
func DefaultFaults() Faults {
	return Faults{StallReader: true, DelayRetire: 4, Storm: true, YieldEvery: 64, ResizeStorm: true}
}

// Options parameterizes one cell run.
type Options struct {
	Workers int
	// Ops is the op count per worker.
	Ops  int
	Keys uint64
	Seed uint64
	// MaxNodes is the linearizability search budget (0 = default).
	MaxNodes int64
	Faults   Faults
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Ops <= 0 {
		o.Ops = 1200
	}
	if o.Keys == 0 {
		o.Keys = 8
	}
	if o.Seed == 0 {
		o.Seed = 0x5EEDBA5E
	}
	return o
}

// CellResult is the attributable outcome of one cell run.
type CellResult struct {
	DS         string `json:"ds"`
	Scheme     string `json:"scheme"`
	Kind       string `json:"kind"`
	Ops        int    `json:"ops"`
	UAF        int64  `json:"uaf"`
	DoubleFree int64  `json:"double_free"`
	// Outcome: "ok", "uaf", "double-free", "non-linearizable", or
	// "exhausted" (checker budget ran out; inconclusive).
	Outcome     string `json:"outcome"`
	Explored    int64  `json:"states_explored"`
	Unreclaimed int64  `json:"final_unreclaimed"`
	ParkedStall bool   `json:"parked_stall"`
	ElapsedMS   int64  `json:"elapsed_ms"`
	Report      string `json:"report,omitempty"`
	// Stats is the domain's smr.Stats snapshot taken after Finish, with
	// the arena fields filled from the cell's pools.
	Stats smr.Stats `json:"smr_stats"`
}

// Passed reports whether the cell behaved correctly (memory-safe and
// linearizable).
func (r CellResult) Passed() bool { return r.Outcome == "ok" }

// rng is a splitmix64 generator, one per worker.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Run executes one cell under the configured faults and checks the
// recorded history.
func Run(cell Cell, opts Options) (CellResult, error) {
	opts = opts.withDefaults()
	res := CellResult{DS: cell.DS, Scheme: cell.Scheme, Kind: cell.Kind}
	start := time.Now()

	in := newInjector(opts.Faults.YieldEvery)
	var clock linchk.Clock
	var recs []*linchk.Recorder
	newRec := func() *linchk.Recorder {
		r := linchk.NewRecorder(&clock, len(recs))
		recs = append(recs, r)
		return r
	}

	// Kind-specific wiring: build the target, its recorded worker
	// closures, the prefill, and the stalled reader's single op.
	var (
		pools       []bench.PoolInfo
		finish      func()
		agitate     func()
		unreclaimed func() int64
		stats       func() smr.Stats
		prefill     func()
		workers     []func()
		stallOp     func()
	)
	switch cell.Kind {
	case "map":
		if cell.DS == "somap" && opts.Faults.ResizeStorm {
			// Storm knob: the somap target reads these package vars at
			// construction (same pattern as bench.FixedReclaimEvery).
			// 2 initial buckets + load factor 1 force a doubling on
			// nearly every net insert for the whole run.
			ib, ml := bench.SomapInitialBuckets, bench.SomapMaxLoad
			bench.SomapInitialBuckets, bench.SomapMaxLoad = 2, 1
			defer func() { bench.SomapInitialBuckets, bench.SomapMaxLoad = ib, ml }()
		}
		target, err := bench.NewTarget(cell.DS, cell.Scheme, arena.ModeDetect)
		if err != nil {
			return res, err
		}
		pools, finish, agitate, unreclaimed = target.Pools, target.Finish, target.Agitate, target.Unreclaimed
		stats = target.Stats
		handles := make([]*bench.Recorded, opts.Workers)
		for w := range handles {
			handles[w] = bench.NewRecorded(target.NewHandle(), newRec())
		}
		prefill = func() {
			for k := uint64(0); k < opts.Keys; k += 2 {
				handles[0].Insert(k, k+1000)
			}
		}
		for w := range handles {
			w := w
			h := handles[w]
			seed := opts.Seed + uint64(w)*0x1234567
			delay := 0
			if opts.Faults.DelayRetire > 0 && w%2 == 1 {
				delay = opts.Faults.DelayRetire
			}
			workers = append(workers, func() {
				r := rng{s: seed}
				for i := 0; i < opts.Ops; i++ {
					k := r.next() % opts.Keys
					switch c := r.next() % 100; {
					case c < 40:
						h.Get(k)
					case c < 70:
						h.Insert(k, r.next())
					default:
						if h.Delete(k) && delay > 0 {
							gosched(delay)
						}
					}
				}
			})
		}
		sh := bench.NewRecorded(target.NewHandle(), newRec())
		stallOp = func() { sh.Get(0) }
		if opts.Faults.ParkedWorker {
			// Park mid-insert: the key is outside the worked range so the
			// traversal walks (and derefs) the whole shared prefix first.
			stallOp = func() { sh.Insert(opts.Keys+1, 42) }
		}
	case "queue":
		target, err := bench.NewQueueTarget(cell.Scheme, arena.ModeDetect)
		if err != nil {
			return res, err
		}
		pools, finish, agitate, unreclaimed = target.Pools, target.Finish, target.Agitate, target.Unreclaimed
		stats = target.Stats
		handles := make([]*bench.RecordedQueue, opts.Workers)
		for w := range handles {
			handles[w] = bench.NewRecordedQueue(target.NewHandle(), newRec())
		}
		prefill = func() {
			for j := 0; j < 4; j++ {
				handles[0].Enqueue(uint64(1)<<48 | uint64(j))
			}
		}
		for w := range handles {
			w := w
			h := handles[w]
			seed := opts.Seed + uint64(w)*0x7654321
			delay := 0
			if opts.Faults.DelayRetire > 0 && w%2 == 1 {
				delay = opts.Faults.DelayRetire
			}
			workers = append(workers, func() {
				r := rng{s: seed}
				for i := 0; i < opts.Ops; i++ {
					if r.next()%100 < 50 {
						h.Enqueue(uint64(w+2)<<32 | uint64(i))
					} else if _, ok := h.Dequeue(); ok && delay > 0 {
						gosched(delay)
					}
				}
			})
		}
		sh := bench.NewRecordedQueue(target.NewHandle(), newRec())
		stallOp = func() { sh.Dequeue() }
		if opts.Faults.ParkedWorker {
			stallOp = func() { sh.Enqueue(uint64(1)<<49 | 7) }
		}
	case "stack":
		target, err := bench.NewStackTarget(cell.Scheme, arena.ModeDetect)
		if err != nil {
			return res, err
		}
		pools, finish, agitate, unreclaimed = target.Pools, target.Finish, target.Agitate, target.Unreclaimed
		stats = target.Stats
		handles := make([]*bench.RecordedStack, opts.Workers)
		for w := range handles {
			handles[w] = bench.NewRecordedStack(target.NewHandle(), newRec())
		}
		prefill = func() {
			for j := 0; j < 4; j++ {
				handles[0].Push(uint64(1)<<48 | uint64(j))
			}
		}
		for w := range handles {
			w := w
			h := handles[w]
			seed := opts.Seed + uint64(w)*0xABCDEF
			delay := 0
			if opts.Faults.DelayRetire > 0 && w%2 == 1 {
				delay = opts.Faults.DelayRetire
			}
			workers = append(workers, func() {
				r := rng{s: seed}
				for i := 0; i < opts.Ops; i++ {
					if r.next()%100 < 50 {
						h.Push(uint64(w+2)<<32 | uint64(i))
					} else if _, ok := h.Pop(); ok && delay > 0 {
						gosched(delay)
					}
				}
			})
		}
		sh := bench.NewRecordedStack(target.NewHandle(), newRec())
		stallOp = func() { sh.Pop() }
		if opts.Faults.ParkedWorker {
			stallOp = func() { sh.Push(uint64(1)<<49 | 7) }
		}
	default:
		return res, fmt.Errorf("stress: unknown cell kind %q", cell.Kind)
	}

	// Detect mode panics on the first bug by default; the harness wants
	// counts so unsafe cells run to completion and report attribution.
	stalling := opts.Faults.StallReader || opts.Faults.ParkedWorker
	for _, p := range pools {
		p.SetCount()
		if opts.Faults.YieldEvery > 0 || stalling {
			p.SetDerefHook(in.hook)
		}
	}

	prefill()

	// Stalled participant: armed while it is the only deref-ing goroutine.
	var stallWG sync.WaitGroup
	if stalling {
		in.arm()
		stallWG.Add(1)
		go func() {
			defer stallWG.Done()
			stallOp()
		}()
		res.ParkedStall = in.awaitParked(500 * time.Millisecond)
	}

	var stopStorm atomic.Bool
	var stormWG sync.WaitGroup
	if opts.Faults.Storm && agitate != nil {
		stormWG.Add(1)
		go func() {
			defer stormWG.Done()
			for !stopStorm.Load() {
				agitate()
				runtime.Gosched()
			}
		}()
	}

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w func()) {
			defer wg.Done()
			w()
		}(w)
	}
	wg.Wait()
	stopStorm.Store(true)
	stormWG.Wait()
	in.releaseParked()
	stallWG.Wait()

	for _, p := range pools {
		p.SetDerefHook(nil)
	}
	finish()

	for _, p := range pools {
		st := p.Stats()
		res.UAF += st.UAF
		res.DoubleFree += st.DoubleFree
	}
	res.Unreclaimed = unreclaimed()
	if stats != nil {
		res.Stats = stats()
	}
	for _, p := range pools {
		ps := p.Stats()
		res.Stats.ArenaLive += ps.Live
		if p.Mode() == arena.ModeDetect {
			res.Stats.ArenaQuarantined += ps.Frees
		}
	}

	h := linchk.Merge(recs...)
	res.Ops = len(h.Ops)
	var v linchk.Verdict
	if res.UAF == 0 && res.DoubleFree == 0 {
		// Memory-safety verdicts take precedence; checking a history
		// produced by a memory-unsafe run would waste the search budget
		// on a structure that is already known-broken.
		copts := linchk.Opts{MaxNodes: opts.MaxNodes}
		switch cell.Kind {
		case "map":
			v = linchk.CheckKV(linchk.MapSpec{}, h, copts)
		case "queue":
			v = linchk.Check(linchk.QueueSpec{}, h, copts)
		case "stack":
			v = linchk.Check(linchk.StackSpec{}, h, copts)
		}
		res.Explored = v.Explored
	}

	switch {
	case res.UAF > 0:
		res.Outcome = "uaf"
		res.Report = fmt.Sprintf("memory-unsafe: %d use-after-free derefs detected by the arena", res.UAF)
	case res.DoubleFree > 0:
		res.Outcome = "double-free"
		res.Report = fmt.Sprintf("memory-unsafe: %d double frees detected by the arena", res.DoubleFree)
	case v.Outcome == linchk.OutcomeNonLinearizable:
		res.Outcome = "non-linearizable"
		res.Report = v.Report()
	case v.Outcome == linchk.OutcomeExhausted:
		res.Outcome = "exhausted"
		res.Report = v.Report()
	default:
		res.Outcome = "ok"
	}
	res.ElapsedMS = time.Since(start).Milliseconds()
	return res, nil
}
