package stress

import (
	"runtime"
	"sync/atomic"
	"time"
)

// injector owns the fault-injection state of one cell run. It plugs into
// the arena's detect-mode deref hook (see arena.Pool.SetDerefHook), which
// fires between slot resolution and liveness validation — exactly the
// window a buggy reclamation scheme can free a node a reader is about to
// touch. Widening that window makes unsafe schemes fail deterministically
// on any core count, while correct schemes are unaffected by arbitrary
// delays there.
type injector struct {
	// yieldEvery makes every Nth deref (across all workers) call
	// runtime.Gosched, handing the race window to the other goroutines.
	yieldEvery uint64
	counter    atomic.Uint64

	// Park support: when armed, the next deref parks its goroutine until
	// release is closed — the "stalled reader parked mid-traversal
	// holding a guard" adversary.
	armed   atomic.Bool
	parked  chan struct{}
	release chan struct{}
}

func newInjector(yieldEvery int) *injector {
	return &injector{
		yieldEvery: uint64(yieldEvery),
		parked:     make(chan struct{}),
		release:    make(chan struct{}),
	}
}

// hook is installed on every pool of the target under test.
func (in *injector) hook(ref uint64) {
	if in.armed.Load() && in.armed.CompareAndSwap(true, false) {
		close(in.parked)
		<-in.release
		return
	}
	if in.yieldEvery > 0 && in.counter.Add(1)%in.yieldEvery == 0 {
		runtime.Gosched()
	}
}

// arm primes the park trap. Call only while the sole deref-ing goroutine
// is the designated stalled reader.
func (in *injector) arm() { in.armed.Store(true) }

// awaitParked waits for the stalled reader to park, or disarms the trap
// if no deref happens within the timeout (e.g. the structure is empty).
// It reports whether a reader is parked.
func (in *injector) awaitParked(timeout time.Duration) bool {
	select {
	case <-in.parked:
		return true
	case <-time.After(timeout):
		if !in.armed.CompareAndSwap(true, false) {
			// The reader won the race against the timeout and is parking.
			<-in.parked
			return true
		}
		return false
	}
}

// releaseParked unblocks the parked reader (idempotent via sync.Once at
// the caller; here it just closes).
func (in *injector) releaseParked() { close(in.release) }

// gosched runs n scheduler yields — the delayed-retirer pulse inserted
// after destructive operations to stretch the unlink→reuse distance.
func gosched(n int) {
	for i := 0; i < n; i++ {
		runtime.Gosched()
	}
}
