// Network-layer fault injectors: misbehaving clients for the gosmrd
// service layer. The in-process injectors in inject.go attack the
// reclamation layer (parked readers, widened race windows); these attack
// the connection layer the same way real clients do — by stalling,
// trickling, or vanishing mid-frame. A server with working overload
// protection evicts or sheds all of them while healthy connections keep
// completing; a server without it wedges a shard worker and, through the
// worker's pinned hazard-pointer handle, that shard's reclamation.
//
// Each injector runs synchronously until the server evicts it (the
// socket errors), its own work finishes, or stop closes; callers run
// them from a goroutine next to healthy traffic.
package stress

import (
	"net"
	"time"

	"github.com/gosmr/gosmr/internal/kvsvc"
)

// netFaultTick bounds how long an injector can sit inside one blocking
// Write before it rechecks stop.
const netFaultTick = 100 * time.Millisecond

// StalledReader connects, floods valid Put requests as fast as the
// socket accepts them, and never reads a single response byte — the
// slow-reader adversary: responses pile up in the kernel buffers until
// the server's write deadline evicts the connection. Returns the number
// of requests written and the write error that ended the flood (nil
// only when stop closed first).
func StalledReader(addr string, stop <-chan struct{}) (int, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if tc, ok := c.(*net.TCPConn); ok {
		// Shrink the receive window so the never-read response stream
		// fills the socket buffers quickly (but keep it comfortably
		// above one loopback segment; see the kvsvc slow-reader test).
		tc.SetReadBuffer(16 << 10)
	}
	var buf []byte
	for n := 0; ; n++ {
		select {
		case <-stop:
			return n, nil
		default:
		}
		c.SetWriteDeadline(time.Now().Add(netFaultTick))
		buf = kvsvc.AppendRequest(buf[:0], kvsvc.Request{
			Op: kvsvc.OpPut, ID: uint32(n), Key: uint64(n % 512), Val: uint64(n),
		})
		if _, err := c.Write(buf); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue // deadline tick, not an eviction — recheck stop
			}
			return n, err
		}
	}
}

// SlowlorisWriter connects and dribbles one valid frame byte-at-a-time,
// sleeping interval between bytes — the classic slowloris shape. A
// per-frame read deadline defeats it: the server's idle timeout covers
// the whole frame, not just the first byte, so the trickle cannot hold
// a connection slot (and Shutdown's connWG) open forever. Returns the
// number of bytes written and the error that ended the trickle.
func SlowlorisWriter(addr string, interval time.Duration, stop <-chan struct{}) (int, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	frame := kvsvc.AppendRequest(nil, kvsvc.Request{Op: kvsvc.OpPing, ID: 1})
	written := 0
	for {
		b := frame[written%len(frame) : written%len(frame)+1]
		c.SetWriteDeadline(time.Now().Add(netFaultTick))
		if _, err := c.Write(b); err != nil {
			return written, err
		}
		written++
		select {
		case <-stop:
			return written, nil
		case <-time.After(interval):
		}
	}
}

// MidFrameDisconnect connects, writes a frame header promising a full
// request plus only half of the payload, and hangs up. The server must
// treat the torn stream as a fatal connection error (ErrTruncated) and
// tear the connection down without disturbing its shard. Returns the
// number of bytes written before the hangup.
func MidFrameDisconnect(addr string) (int, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, err
	}
	frame := kvsvc.AppendRequest(nil, kvsvc.Request{Op: kvsvc.OpPut, ID: 7, Key: 7, Val: 7})
	n, err := c.Write(frame[:len(frame)/2])
	c.Close()
	return n, err
}
