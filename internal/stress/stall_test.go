package stress

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"github.com/gosmr/gosmr/internal/bench"
)

// TestStallSchemesMatchRegistry pins the stall artifact's default scheme
// list to the bench.Schemes registry, mirroring the bench package's
// TestDefaultSweepSchemesMatchRegistry: RunStallCell/StallJSON once
// carried a hand-maintained literal, the exact bug class that silently
// dropped hp++ef from the default figure sweeps when it was added to the
// registry. Adding a ninth scheme with no other edits must land a row in
// BENCH_stall.json (unless it is nr/rc-like and documented in
// StallOptions), and this test is what enforces that.
func TestStallSchemesMatchRegistry(t *testing.T) {
	got := StallOptions{}.withDefaults().Schemes
	var want []string
	for _, s := range bench.Schemes {
		if s == "nr" || s == "rc" {
			continue // documented exclusions: never frees / apples-to-oranges
		}
		if bench.Applicable("hmlist", s) {
			want = append(want, s)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("default stall schemes %v diverge from registry-derived %v", got, want)
	}
	// Every current registry scheme outside the documented exclusions
	// must be present by *name* too, so a scheme inapplicable to the
	// default DS fails loudly here instead of dropping out silently.
	for _, s := range bench.Schemes {
		if s == "nr" || s == "rc" {
			continue
		}
		found := false
		for _, g := range got {
			if g == s {
				found = true
			}
		}
		if !found {
			t.Fatalf("registry scheme %q missing from the default stall sweep %v", s, got)
		}
	}
}

// TestStallCellScot is a quick end-to-end of the new hp-scot stall row:
// the parked writer bounds the backlog and the cell drains to zero.
func TestStallCellScot(t *testing.T) {
	opts := StallOptions{Workers: 2, Ops: 2000, Keys: 32}
	cell, err := RunStallCell("hp-scot", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !cell.ParkedStall {
		t.Fatal("participant did not park")
	}
	if cell.UAF != 0 || cell.DoubleFree != 0 {
		t.Fatalf("memory violations: uaf=%d doublefree=%d", cell.UAF, cell.DoubleFree)
	}
	if cell.FinalUnreclaimed != 0 {
		t.Fatalf("did not drain: final unreclaimed %d", cell.FinalUnreclaimed)
	}
	if cell.PeakUnreclaimed <= 0 || cell.PeakUnreclaimed > 4096 {
		t.Fatalf("peak unreclaimed %d outside the robust bound", cell.PeakUnreclaimed)
	}
}

// TestStallJSONContainsRegistrySchemes runs a minimal StallJSON sweep and
// asserts every default scheme produced both a stall cell and a
// throughput row — the artifact-level half of the registry pin.
func TestStallJSONContainsRegistrySchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact sweep in long mode only")
	}
	opts := StallOptions{Workers: 2, Ops: 400, Keys: 16}
	var buf bytes.Buffer
	if err := StallJSON(&buf, opts, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var rep StallReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	want := DefaultStallSchemes("hmlist")
	cells := map[string]bool{}
	for _, c := range rep.Cells {
		cells[c.Scheme] = true
	}
	thr := map[string]bool{}
	for _, c := range rep.Throughput {
		thr[c.Scheme] = true
	}
	for _, s := range want {
		if !cells[s] {
			t.Errorf("scheme %q missing from stall cells", s)
		}
		if !thr[s] {
			t.Errorf("scheme %q missing from throughput companion", s)
		}
	}
}
