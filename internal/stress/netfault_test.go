package stress

import (
	"bufio"
	"context"
	"net"
	"testing"
	"time"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/kvsvc"
)

// startServer boots a 1-shard hp++ detect-mode server tuned so the
// injectors trip its defenses quickly: short idle and write deadlines
// and a small capped send buffer.
func startServer(t *testing.T) *kvsvc.Server {
	t.Helper()
	st, err := kvsvc.NewStore(kvsvc.Config{Shards: 1, Scheme: "hp++", Mode: arena.ModeDetect, Buckets: 32})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := kvsvc.NewServer(st, kvsvc.ServerConfig{
		Addr:            "127.0.0.1:0",
		WorkersPerShard: 1,
		QueueDepth:      64,
		ConnBudget:      64,
		IdleTimeout:     300 * time.Millisecond,
		WriteTimeout:    250 * time.Millisecond,
		DispatchTimeout: 5 * time.Millisecond,
		ConnWriteBuffer: 16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	return srv
}

// doOp runs one request/response round trip on c.
func doOp(t *testing.T, c net.Conn, br *bufio.Reader, req kvsvc.Request) kvsvc.Response {
	t.Helper()
	if _, err := c.Write(kvsvc.AppendRequest(nil, req)); err != nil {
		t.Fatalf("healthy write: %v", err)
	}
	frame, err := kvsvc.ReadFrame(br, nil)
	if err != nil {
		t.Fatalf("healthy read: %v", err)
	}
	resp, err := kvsvc.DecodeResponse(frame)
	if err != nil {
		t.Fatalf("healthy decode: %v", err)
	}
	return resp
}

func shutdownClean(t *testing.T, srv *kvsvc.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestStalledReaderEvictedWhileHealthyProgress: the flagship injector.
// A flooding never-reading client is evicted by the write deadline while
// a healthy connection on the same single shard keeps completing ops —
// the stalled client never wedges the shard worker.
func TestStalledReaderEvictedWhileHealthyProgress(t *testing.T) {
	srv := startServer(t)
	stop := make(chan struct{})
	defer close(stop)

	type result struct {
		n   int
		err error
	}
	done := make(chan result, 1)
	go func() {
		n, err := StalledReader(srv.Addr(), stop)
		done <- result{n, err}
	}()

	// Healthy traffic must keep completing the whole time. Healthy ops
	// can be shed while the stalled reader hogs the worker; retrying is
	// the documented client contract.
	c, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	br := bufio.NewReader(c)
	c.SetDeadline(time.Now().Add(30 * time.Second))
	deadline := time.Now().Add(15 * time.Second)
	for i := uint32(0); i < 50; i++ {
		for {
			resp := doOp(t, c, br, kvsvc.Request{Op: kvsvc.OpPut, ID: i, Key: uint64(i), Val: 1})
			if resp.Status == kvsvc.StatusOverloaded {
				time.Sleep(2 * time.Millisecond)
				continue
			}
			if resp.Status != kvsvc.StatusOK {
				t.Fatalf("healthy put %d: status %d", i, resp.Status)
			}
			break
		}
	}
	if srv.Served() < 50 {
		t.Fatalf("served %d, want >= 50", srv.Served())
	}

	// The injector must be evicted by the write deadline.
	for srv.Snapshot().EvictedSlow == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled reader was never evicted")
		}
		time.Sleep(20 * time.Millisecond)
	}
	res := <-done
	if res.err == nil {
		t.Fatal("stalled reader returned without a socket error despite eviction")
	}
	t.Logf("stalled reader evicted after %d requests: %v", res.n, res.err)
	shutdownClean(t, srv)
}

// TestSlowlorisWriterEvicted: a byte-at-a-time frame cannot hold a
// connection open past the idle timeout, because the read deadline
// covers the whole frame.
func TestSlowlorisWriterEvicted(t *testing.T) {
	srv := startServer(t)
	stop := make(chan struct{})
	defer close(stop)

	n, err := SlowlorisWriter(srv.Addr(), 50*time.Millisecond, stop)
	if err == nil {
		t.Fatal("slowloris trickle survived the idle deadline")
	}
	// 300ms idle timeout at 50ms/byte: the eviction lands mid-frame,
	// well before the 25-byte frame completes.
	if n >= 25 {
		t.Fatalf("wrote a whole frame (%d bytes) before eviction", n)
	}
	snap := srv.Snapshot()
	if snap.EvictedIdle == 0 {
		t.Fatalf("eviction not attributed to the idle deadline: %+v", snap)
	}
	shutdownClean(t, srv)
}

// TestMidFrameDisconnect: a torn stream tears down only its own
// connection; the shard keeps serving and the drain stays clean.
func TestMidFrameDisconnect(t *testing.T) {
	srv := startServer(t)
	if _, err := MidFrameDisconnect(srv.Addr()); err != nil {
		t.Fatalf("mid-frame disconnect write: %v", err)
	}

	c, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	br := bufio.NewReader(c)
	c.SetDeadline(time.Now().Add(10 * time.Second))
	if resp := doOp(t, c, br, kvsvc.Request{Op: kvsvc.OpPut, ID: 1, Key: 1, Val: 2}); resp.Status != kvsvc.StatusOK {
		t.Fatalf("put after torn stream: status %d", resp.Status)
	}
	if resp := doOp(t, c, br, kvsvc.Request{Op: kvsvc.OpGet, ID: 2, Key: 1}); resp.Status != kvsvc.StatusOK || resp.Val != 2 {
		t.Fatalf("get after torn stream: %+v", resp)
	}
	shutdownClean(t, srv)
}
