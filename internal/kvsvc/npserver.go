// Netpoll-mode serving: the event-driven connection layer.
//
// In goroutine mode every connection costs a reader + writer goroutine
// plus bufio buffers. In netpoll mode (ServerConfig.Netpoll) a fixed
// set of poller goroutines owns readiness for every connection:
// OnData feeds an incremental FrameReader, decoded frames run the same
// dispatch as serveConn — ping lane, credit gate, GET fast path, shard
// queues — and responses leave through the conn's nonblocking outbound
// buffer. Per-connection state shrinks to an npConn (a few words plus a
// lazily-grown decode carry), which is what makes 100k mostly-idle
// conns cost megabytes instead of gigabytes.
//
// Capacity proof delta vs serveConn (see DESIGN.md "Event-driven
// connection layer"): the credit/budget invariant is preserved with the
// same B-bound per lane, but the 2B response channel becomes a byte
// buffer bounded by (2B messages) × 17 bytes, and credits are released
// by OnFlushed when a credited response's bytes have fully reached the
// kernel — a strictly stronger release point than the goroutine
// writer's post-bufio.Write. Two behavioral deltas: (1) DispatchTimeout
// does not apply — a poller must never sleep on a full shard queue, so
// queue-full sheds StatusOverloaded immediately; (2) the GET fast path
// uses per-POLLER handle sets (pollerRH), not per-conn ones, so the
// registry holds O(pollers × shards) fast-path handles no matter how
// many conns are parked — the idle-fleet twin of the paper's
// bounded-garbage guarantee.
package kvsvc

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"time"

	"github.com/gosmr/gosmr/internal/netpoll"
)

// Outbound message tags (netpoll.Conn.WriteMsg → Handler.OnFlushed):
// which budget lane the flushed response releases.
const (
	tagUncredited uint8 = iota
	tagCredited
)

// errServerDraining closes conns at shutdown; it is neither an idle nor
// a slow-reader eviction, so OnClose counts nothing for it.
var errServerDraining = errors.New("kvsvc: server draining")

// npConn is one netpoll-mode connection: the Handler plus the protocol
// state serveConn used to keep on its goroutine's stack.
type npConn struct {
	s *Server
	c netpoll.Conn

	fr FrameReader // incremental decode state; poller-owned

	// credits is the in-flight budget: decremented by dispatch (CAS,
	// only on the conn's poller), incremented by OnFlushed when a
	// credited response has fully reached the kernel.
	credits atomic.Int64
	// uncredited bounds the shed/ping lane, exactly as in serveConn.
	uncredited atomic.Int64
	// inflight counts requests handed to shard queues whose response
	// has not yet been buffered; drain waits for zero.
	inflight atomic.Int64

	// pending[i] counts this conn's not-yet-executed mutations on shard
	// i (the read-your-writes gate, as in serveConn). Allocated on the
	// first mutation: parked idle conns — the 100k case — never pay for
	// it. Poller-owned for writes on the dispatch side; workers only
	// decrement through the *atomic.Int64 they were handed.
	pending []atomic.Int64
}

// OnRegister runs inside Poll.Register: bind the Conn and make the
// handler visible to drain before any event can fire.
func (nc *npConn) OnRegister(c netpoll.Conn) {
	nc.c = c
	s := nc.s
	s.npMu.Lock()
	s.npConns[nc] = struct{}{}
	s.npMu.Unlock()
}

// OnData feeds raw bytes to the frame reader; complete frames dispatch
// inline on the poller. Any error (malformed frame, garbage payload)
// closes the connection, matching serveConn's treatment of a poisoned
// byte stream.
func (nc *npConn) OnData(_ netpoll.Conn, p []byte) error {
	return nc.fr.Feed(p, nc.dispatch)
}

// dispatch is serveConn's per-frame logic on the poller callback.
func (nc *npConn) dispatch(payload []byte) error {
	s := nc.s
	req, err := DecodeRequest(payload)
	if err != nil {
		return err
	}
	budget := int64(s.cfg.ConnBudget)

	if req.Op == OpPing {
		// Uncredited lane, same B-bound and drop rule as serveConn.
		if nc.uncredited.Load() < budget {
			nc.uncredited.Add(1)
			nc.send(Response{ID: req.ID, Status: StatusOK}, false)
		} else {
			s.shedDropped.Add(1)
		}
		return nil
	}

	if !nc.takeCredit() {
		s.shedBudget.Add(1)
		if nc.uncredited.Load() < budget {
			nc.uncredited.Add(1)
			nc.send(Response{ID: req.ID, Status: StatusOverloaded}, false)
		} else {
			s.shedDropped.Add(1)
		}
		return nil
	}

	i := s.store.ShardOf(req.Key)
	if !s.cfg.DisableReadFastPath && req.Op == OpGet &&
		(nc.pending == nil || nc.pending[i].Load() == 0) {
		// GET fast path on the poller callback: the handle comes from
		// the POLLER's lazily-filled per-shard set — never blocking,
		// never per-conn. OnData serialization makes the set
		// single-owner; see pollerRH.
		h := s.pollerRH[nc.c.Poller()].handle(i)
		nc.send(execute(h, req), true)
		s.served.Add(1)
		s.fastGets.Add(1)
		return nil
	}

	if isMutation(req.Op) {
		if nc.pending == nil {
			nc.pending = make([]atomic.Int64, s.store.NumShards())
		}
		nc.pending[i].Add(1)
	}
	r := request{req: req, nc: nc}
	if isMutation(req.Op) {
		r.pending = &nc.pending[i]
	}
	nc.inflight.Add(1)
	select {
	case s.queues[i] <- r:
	default:
		// A poller goroutine must never sleep on a full shard queue —
		// it is multiplexing thousands of other conns — so netpoll mode
		// sheds immediately where serveConn would wait DispatchTimeout.
		nc.inflight.Add(-1)
		if r.pending != nil {
			r.pending.Add(-1) // shed, never executed
		}
		s.shedQueueFull.Add(1)
		nc.send(Response{ID: req.ID, Status: StatusOverloaded}, true)
	}
	return nil
}

// takeCredit claims one budget credit if any remain.
func (nc *npConn) takeCredit() bool {
	for {
		v := nc.credits.Load()
		if v <= 0 {
			return false
		}
		if nc.credits.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// send buffers one response on the conn. Never blocks: WriteMsg pushes
// what the kernel takes and keeps the rest in the bounded outbound
// buffer (≤ 2B messages by the capacity invariant). A closed conn eats
// the response — its requester is gone.
func (nc *npConn) send(resp Response, credited bool) {
	var b [hdrLen + respLen]byte
	tag := tagUncredited
	if credited {
		tag = tagCredited
	}
	nc.c.WriteMsg(AppendResponse(b[:0], resp), tag) //nolint:errcheck // ErrClosed only
}

// OnFlushed releases budget lanes for responses whose bytes have fully
// reached the kernel. May run on any goroutine; atomics only.
func (nc *npConn) OnFlushed(_ netpoll.Conn, tags []uint8) {
	for _, t := range tags {
		if t == tagCredited {
			nc.credits.Add(1)
		} else {
			nc.uncredited.Add(-1)
		}
	}
}

// OnClose classifies the eviction, samples the unread backlog for slow
// readers (the socket is still open here), and unlinks the conn.
func (nc *npConn) OnClose(c netpoll.Conn, err error) {
	s := nc.s
	switch {
	case errors.Is(err, netpoll.ErrIdleTimeout):
		s.evictedIdle.Add(1)
	case errors.Is(err, netpoll.ErrWriteStall):
		s.evictedSlow.Add(1)
		if q, ok := c.Outq(); ok {
			s.recordEvictedOutq(q)
		}
	}
	s.npMu.Lock()
	delete(s.npConns, nc)
	s.npMu.Unlock()
	s.liveConns.Add(-1)
	s.npWG.Done()
}

// acceptNetpoll hands an accepted conn to the poll. The accept loop has
// already counted it in liveConns.
func (s *Server) acceptNetpoll(c net.Conn) {
	nc := &npConn{s: s}
	nc.credits.Store(int64(s.cfg.ConnBudget))
	s.npWG.Add(1)
	if _, err := s.poll.Register(c, nc); err != nil {
		// Register closed the socket; OnRegister may or may not have
		// linked the handler (delete is a no-op if not).
		s.npMu.Lock()
		delete(s.npConns, nc)
		s.npMu.Unlock()
		s.liveConns.Add(-1)
		s.npWG.Done()
	}
}

// drainNetpoll is Shutdown's netpoll branch: wait (bounded by ctx) for
// every accepted request to execute and every buffered response byte to
// reach the kernel, then close all conns and join the pollers. After it
// returns no poller or worker can touch a conn, so the shard queues can
// close.
func (s *Server) drainNetpoll(ctx context.Context) {
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
waitQuiesce:
	for !s.npQuiesced() {
		select {
		case <-ctx.Done():
			break waitQuiesce
		case <-tick.C:
		}
	}
	s.npMu.Lock()
	conns := make([]*npConn, 0, len(s.npConns))
	for nc := range s.npConns {
		conns = append(conns, nc)
	}
	s.npMu.Unlock()
	for _, nc := range conns {
		nc.c.Close(errServerDraining)
	}
	s.npWG.Wait()
	s.poll.Close()
}

// npQuiesced reports whether every live conn has zero in-flight
// requests and an empty outbound buffer. inflight is decremented AFTER
// the worker buffers the response (see shardWorker), so "inflight==0
// then Buffered()==0" cannot race a response into a closing conn.
func (s *Server) npQuiesced() bool {
	s.npMu.Lock()
	defer s.npMu.Unlock()
	for nc := range s.npConns {
		if nc.inflight.Load() != 0 || nc.c.Buffered() > 0 {
			return false
		}
	}
	return true
}
