package kvsvc

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"github.com/gosmr/gosmr/internal/arena"
)

// startServer boots a server on ephemeral ports and returns it with its
// Serve goroutine running. WorkersPerShard=1 keeps per-shard execution
// FIFO so pipelined operations on one key are deterministic.
func startServer(t *testing.T, scheme string) *Server {
	t.Helper()
	st, err := NewStore(Config{Shards: 4, Scheme: scheme, Mode: arena.ModeDetect, Buckets: 32})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(st, ServerConfig{
		Addr:            "127.0.0.1:0",
		AdminAddr:       "127.0.0.1:0",
		WorkersPerShard: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	return srv
}

type testClient struct {
	c  net.Conn
	br *bufio.Reader
	t  *testing.T
}

func dialClient(t *testing.T, addr string) *testClient {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return &testClient{c: c, br: bufio.NewReader(c), t: t}
}

func (tc *testClient) send(reqs ...Request) {
	tc.t.Helper()
	var buf []byte
	for _, r := range reqs {
		buf = AppendRequest(buf, r)
	}
	if _, err := tc.c.Write(buf); err != nil {
		tc.t.Fatal(err)
	}
}

func (tc *testClient) recv(n int) map[uint32]Response {
	tc.t.Helper()
	out := map[uint32]Response{}
	var buf []byte
	for i := 0; i < n; i++ {
		var err error
		buf, err = ReadFrame(tc.br, buf)
		if err != nil {
			tc.t.Fatalf("response %d/%d: %v", i, n, err)
		}
		resp, err := DecodeResponse(buf)
		if err != nil {
			tc.t.Fatal(err)
		}
		out[resp.ID] = resp
	}
	return out
}

func TestServerEndToEnd(t *testing.T) {
	srv := startServer(t, "hp++")
	tc := dialClient(t, srv.Addr())

	// One pipelined burst: puts, gets, deletes, a re-get and a ping.
	// Responses may be reordered across shards, so match by ID.
	var reqs []Request
	id := uint32(0)
	for k := uint64(0); k < 32; k++ {
		reqs = append(reqs, Request{Op: OpPut, ID: id, Key: k, Val: k + 100})
		id++
	}
	for k := uint64(0); k < 32; k++ {
		reqs = append(reqs, Request{Op: OpGet, ID: id, Key: k})
		id++
	}
	for k := uint64(0); k < 32; k += 2 {
		reqs = append(reqs, Request{Op: OpDel, ID: id, Key: k})
		id++
	}
	for k := uint64(0); k < 32; k++ {
		reqs = append(reqs, Request{Op: OpGet, ID: id, Key: k})
		id++
	}
	reqs = append(reqs, Request{Op: OpPing, ID: id})
	tc.send(reqs...)
	got := tc.recv(len(reqs))

	for i := uint32(0); i < 32; i++ { // puts
		if got[i].Status != StatusOK {
			t.Fatalf("put %d: status %d", i, got[i].Status)
		}
	}
	for i := uint32(32); i < 64; i++ { // first round of gets
		k := uint64(i - 32)
		if got[i].Status != StatusOK || got[i].Val != k+100 {
			t.Fatalf("get key %d: %+v", k, got[i])
		}
	}
	for i := uint32(64); i < 80; i++ { // deletes of even keys
		if got[i].Status != StatusOK {
			t.Fatalf("del %d: status %d", i, got[i].Status)
		}
	}
	for i := uint32(80); i < 112; i++ { // second round of gets
		k := uint64(i - 80)
		want := StatusNotFound
		if k%2 == 1 {
			want = StatusOK
		}
		if got[i].Status != want {
			t.Fatalf("re-get key %d: status %d, want %d", k, got[i].Status, want)
		}
	}
	if got[id].Status != StatusOK { // ping
		t.Fatalf("ping: %+v", got[id])
	}

	tc.c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if srv.Served() == 0 {
		t.Fatal("server served nothing")
	}
}

func TestServerAdminStats(t *testing.T) {
	srv := startServer(t, "pebr")
	tc := dialClient(t, srv.Addr())
	var reqs []Request
	for i := uint32(0); i < 64; i++ {
		reqs = append(reqs, Request{Op: OpPut, ID: i, Key: uint64(i), Val: 1})
	}
	tc.send(reqs...)
	tc.recv(len(reqs))

	resp, err := http.Get("http://" + srv.AdminAddr() + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st AdminStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Scheme != "pebr" || st.Shards != 4 || len(st.PerShard) != 4 {
		t.Fatalf("admin stats header wrong: %+v", st)
	}
	if st.ServedOps < 64 {
		t.Fatalf("served_ops = %d, want >= 64", st.ServedOps)
	}
	if st.Total.Scheme != "pebr" {
		t.Fatalf("total scheme %q", st.Total.Scheme)
	}
	if st.ArenaLiveBytes == 0 {
		t.Fatal("no live arena bytes after 64 puts")
	}

	hr, err := http.Get("http://" + srv.AdminAddr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	if hr.StatusCode != 200 {
		t.Fatalf("healthz status %d", hr.StatusCode)
	}

	tc.c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestServerDropsGarbageConnection: a malformed frame closes only the
// offending connection; the server keeps serving others and still drains
// cleanly.
func TestServerDropsGarbageConnection(t *testing.T) {
	srv := startServer(t, "ebr")

	bad := dialClient(t, srv.Addr())
	bad.c.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0x02}) // oversized length prefix
	if _, err := bad.br.ReadByte(); err == nil {
		t.Fatal("server kept the connection open after a garbage frame")
	}
	bad.c.Close()

	good := dialClient(t, srv.Addr())
	good.send(Request{Op: OpPut, ID: 1, Key: 5, Val: 6}, Request{Op: OpGet, ID: 2, Key: 5})
	got := good.recv(2)
	if got[2].Status != StatusOK || got[2].Val != 6 {
		t.Fatalf("get after garbage conn: %+v", got[2])
	}
	good.c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestServerShutdownForcesStragglers: a connection that never closes is
// force-closed when the drain context expires, and Shutdown still
// completes cleanly.
func TestServerShutdownForcesStragglers(t *testing.T) {
	srv := startServer(t, "hp++")
	straggler := dialClient(t, srv.Addr())
	straggler.send(Request{Op: OpPut, ID: 1, Key: 1, Val: 1})
	straggler.recv(1)
	// Leave the connection open and idle.

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("shutdown hung past the drain deadline")
	}
	straggler.c.Close()
}
