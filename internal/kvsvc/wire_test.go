package kvsvc

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, ID: 1, Key: 42},
		{Op: OpPut, ID: 0xFFFFFFFF, Key: 1<<64 - 1, Val: 7},
		{Op: OpDel, ID: 0, Key: 0},
		{Op: OpPing, ID: 12345},
	}
	var stream []byte
	for _, r := range reqs {
		stream = AppendRequest(stream, r)
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	var buf []byte
	for i, want := range reqs {
		var err error
		buf, err = ReadFrame(br, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := DecodeRequest(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(br, buf); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{ID: 1, Status: StatusOK, Val: 99},
		{ID: 2, Status: StatusNotFound},
		{ID: 3, Status: StatusErr, Val: 1<<64 - 1},
		{ID: 4, Status: StatusOverloaded},
	}
	var stream []byte
	for _, r := range resps {
		stream = AppendResponse(stream, r)
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	var buf []byte
	for i, want := range resps {
		var err error
		buf, err = ReadFrame(br, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := DecodeResponse(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
}

// frameWith builds a raw frame with an arbitrary declared length and body.
func frameWith(declared uint32, body []byte) []byte {
	var b []byte
	b = binary.BigEndian.AppendUint32(b, declared)
	return append(b, body...)
}

func TestReadFrameRejectsMalformedFrames(t *testing.T) {
	cases := []struct {
		name  string
		input []byte
		want  error
	}{
		{"oversized declared length", frameWith(MaxFrame+1, nil), ErrFrameTooLarge},
		{"huge declared length", frameWith(0xFFFFFFFF, nil), ErrFrameTooLarge},
		{"zero-length frame", frameWith(0, nil), ErrBadLength},
		{"truncated header", []byte{0x00, 0x01}, ErrTruncated},
		{"truncated payload", frameWith(reqLen, make([]byte, 5)), ErrTruncated},
		{"payload one byte short", frameWith(reqLen, make([]byte, reqLen-1)), ErrTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			br := bufio.NewReader(bytes.NewReader(tc.input))
			_, err := ReadFrame(br, nil)
			if !errors.Is(err, tc.want) {
				t.Fatalf("ReadFrame(%x) err = %v, want %v", tc.input, err, tc.want)
			}
		})
	}
}

func TestDecodeRejectsGarbagePayloads(t *testing.T) {
	goodReq := make([]byte, reqLen)
	goodReq[0] = byte(OpGet)

	badOp := make([]byte, reqLen)
	badOp[0] = 0 // below OpGet
	badOp2 := make([]byte, reqLen)
	badOp2[0] = byte(OpPing) + 1

	badStatus := make([]byte, respLen)
	badStatus[4] = StatusOverloaded + 1

	t.Run("request short", func(t *testing.T) {
		if _, err := DecodeRequest(goodReq[:reqLen-1]); !errors.Is(err, ErrBadLength) {
			t.Fatalf("err = %v, want ErrBadLength", err)
		}
	})
	t.Run("request long", func(t *testing.T) {
		if _, err := DecodeRequest(append(goodReq, 0)); !errors.Is(err, ErrBadLength) {
			t.Fatalf("err = %v, want ErrBadLength", err)
		}
	})
	t.Run("request empty", func(t *testing.T) {
		if _, err := DecodeRequest(nil); !errors.Is(err, ErrBadLength) {
			t.Fatalf("err = %v, want ErrBadLength", err)
		}
	})
	t.Run("request op zero", func(t *testing.T) {
		if _, err := DecodeRequest(badOp); !errors.Is(err, ErrBadOp) {
			t.Fatalf("err = %v, want ErrBadOp", err)
		}
	})
	t.Run("request op past ping", func(t *testing.T) {
		if _, err := DecodeRequest(badOp2); !errors.Is(err, ErrBadOp) {
			t.Fatalf("err = %v, want ErrBadOp", err)
		}
	})
	t.Run("response short", func(t *testing.T) {
		if _, err := DecodeResponse(make([]byte, respLen-1)); !errors.Is(err, ErrBadLength) {
			t.Fatalf("err = %v, want ErrBadLength", err)
		}
	})
	t.Run("response bad status", func(t *testing.T) {
		if _, err := DecodeResponse(badStatus); !errors.Is(err, ErrBadStatus) {
			t.Fatalf("err = %v, want ErrBadStatus", err)
		}
	})
}

// TestReadFrameReusesBuffer checks the zero-alloc steady state: a large
// enough buffer passed back in is reused, not reallocated.
func TestReadFrameReusesBuffer(t *testing.T) {
	stream := AppendRequest(nil, Request{Op: OpGet, ID: 1, Key: 2})
	stream = AppendRequest(stream, Request{Op: OpDel, ID: 2, Key: 3})
	br := bufio.NewReader(bytes.NewReader(stream))
	buf := make([]byte, 0, 64)
	first, err := ReadFrame(br, buf)
	if err != nil {
		t.Fatal(err)
	}
	second, err := ReadFrame(br, first)
	if err != nil {
		t.Fatal(err)
	}
	if &first[0] != &second[0] {
		t.Fatal("ReadFrame reallocated despite sufficient capacity")
	}
}
