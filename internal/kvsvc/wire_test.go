package kvsvc

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, ID: 1, Key: 42},
		{Op: OpPut, ID: 0xFFFFFFFF, Key: 1<<64 - 1, Val: 7},
		{Op: OpDel, ID: 0, Key: 0},
		{Op: OpPing, ID: 12345},
	}
	var stream []byte
	for _, r := range reqs {
		stream = AppendRequest(stream, r)
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	var buf []byte
	for i, want := range reqs {
		var err error
		buf, err = ReadFrame(br, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := DecodeRequest(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(br, buf); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{ID: 1, Status: StatusOK, Val: 99},
		{ID: 2, Status: StatusNotFound},
		{ID: 3, Status: StatusErr, Val: 1<<64 - 1},
		{ID: 4, Status: StatusOverloaded},
	}
	var stream []byte
	for _, r := range resps {
		stream = AppendResponse(stream, r)
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	var buf []byte
	for i, want := range resps {
		var err error
		buf, err = ReadFrame(br, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := DecodeResponse(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
}

// frameWith builds a raw frame with an arbitrary declared length and body.
func frameWith(declared uint32, body []byte) []byte {
	var b []byte
	b = binary.BigEndian.AppendUint32(b, declared)
	return append(b, body...)
}

func TestReadFrameRejectsMalformedFrames(t *testing.T) {
	cases := []struct {
		name  string
		input []byte
		want  error
	}{
		{"oversized declared length", frameWith(MaxFrame+1, nil), ErrFrameTooLarge},
		{"huge declared length", frameWith(0xFFFFFFFF, nil), ErrFrameTooLarge},
		{"zero-length frame", frameWith(0, nil), ErrBadLength},
		{"truncated header", []byte{0x00, 0x01}, ErrTruncated},
		{"truncated payload", frameWith(reqLen, make([]byte, 5)), ErrTruncated},
		{"payload one byte short", frameWith(reqLen, make([]byte, reqLen-1)), ErrTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			br := bufio.NewReader(bytes.NewReader(tc.input))
			_, err := ReadFrame(br, nil)
			if !errors.Is(err, tc.want) {
				t.Fatalf("ReadFrame(%x) err = %v, want %v", tc.input, err, tc.want)
			}
		})
	}
}

func TestDecodeRejectsGarbagePayloads(t *testing.T) {
	goodReq := make([]byte, reqLen)
	goodReq[0] = byte(OpGet)

	badOp := make([]byte, reqLen)
	badOp[0] = 0 // below OpGet
	badOp2 := make([]byte, reqLen)
	badOp2[0] = byte(OpPing) + 1

	badStatus := make([]byte, respLen)
	badStatus[4] = StatusOverloaded + 1

	t.Run("request short", func(t *testing.T) {
		if _, err := DecodeRequest(goodReq[:reqLen-1]); !errors.Is(err, ErrBadLength) {
			t.Fatalf("err = %v, want ErrBadLength", err)
		}
	})
	t.Run("request long", func(t *testing.T) {
		if _, err := DecodeRequest(append(goodReq, 0)); !errors.Is(err, ErrBadLength) {
			t.Fatalf("err = %v, want ErrBadLength", err)
		}
	})
	t.Run("request empty", func(t *testing.T) {
		if _, err := DecodeRequest(nil); !errors.Is(err, ErrBadLength) {
			t.Fatalf("err = %v, want ErrBadLength", err)
		}
	})
	t.Run("request op zero", func(t *testing.T) {
		if _, err := DecodeRequest(badOp); !errors.Is(err, ErrBadOp) {
			t.Fatalf("err = %v, want ErrBadOp", err)
		}
	})
	t.Run("request op past ping", func(t *testing.T) {
		if _, err := DecodeRequest(badOp2); !errors.Is(err, ErrBadOp) {
			t.Fatalf("err = %v, want ErrBadOp", err)
		}
	})
	t.Run("response short", func(t *testing.T) {
		if _, err := DecodeResponse(make([]byte, respLen-1)); !errors.Is(err, ErrBadLength) {
			t.Fatalf("err = %v, want ErrBadLength", err)
		}
	})
	t.Run("response bad status", func(t *testing.T) {
		if _, err := DecodeResponse(badStatus); !errors.Is(err, ErrBadStatus) {
			t.Fatalf("err = %v, want ErrBadStatus", err)
		}
	})
}

// oneShotDecode runs the blocking ReadFrame decoder over a complete
// byte stream: the reference behavior FrameReader must match. A clean
// EOF at a frame boundary is (nil, false); a close mid-frame maps to
// truncated=true; malformed headers surface their typed error.
func oneShotDecode(data []byte) (payloads [][]byte, err error, truncated bool) {
	br := bufio.NewReader(bytes.NewReader(data))
	var buf []byte
	for {
		var e error
		buf, e = ReadFrame(br, buf)
		if e != nil {
			if e == io.EOF {
				return payloads, nil, false
			}
			if errors.Is(e, ErrTruncated) {
				return payloads, nil, true
			}
			return payloads, e, false
		}
		payloads = append(payloads, append([]byte(nil), buf...))
	}
}

// feedDecode runs FrameReader over the same stream delivered as chunks.
func feedDecode(chunks [][]byte) (payloads [][]byte, err error, truncated bool) {
	var fr FrameReader
	for _, ch := range chunks {
		if e := fr.Feed(ch, func(p []byte) error {
			payloads = append(payloads, append([]byte(nil), p...))
			return nil
		}); e != nil {
			return payloads, e, false
		}
	}
	return payloads, nil, fr.Buffered() > 0
}

// classifyDecode collapses a decode outcome to a comparable label.
func classifyDecode(err error, truncated bool) string {
	switch {
	case err == nil && !truncated:
		return "clean"
	case err == nil:
		return "truncated"
	case errors.Is(err, ErrFrameTooLarge):
		return "toolarge"
	case errors.Is(err, ErrBadLength):
		return "badlength"
	default:
		return "other: " + err.Error()
	}
}

// assertFeedMatchesOneShot checks a chunking of data decodes identically
// to the one-shot reference.
func assertFeedMatchesOneShot(t *testing.T, data []byte, chunks [][]byte, label string) {
	t.Helper()
	wantP, wantErr, wantTrunc := oneShotDecode(data)
	gotP, gotErr, gotTrunc := feedDecode(chunks)
	if want, got := classifyDecode(wantErr, wantTrunc), classifyDecode(gotErr, gotTrunc); want != got {
		t.Fatalf("%s: outcome = %s, one-shot = %s", label, got, want)
	}
	if len(gotP) != len(wantP) {
		t.Fatalf("%s: decoded %d frames, one-shot decoded %d", label, len(gotP), len(wantP))
	}
	for i := range wantP {
		if !bytes.Equal(gotP[i], wantP[i]) {
			t.Fatalf("%s: frame %d = %x, one-shot %x", label, i, gotP[i], wantP[i])
		}
	}
}

// splitAll exercises every 2-chunk split of data plus byte-at-a-time
// delivery against the one-shot reference.
func splitAll(t *testing.T, data []byte) {
	t.Helper()
	for i := 0; i <= len(data); i++ {
		assertFeedMatchesOneShot(t, data, [][]byte{data[:i], data[i:]},
			fmt.Sprintf("split at byte %d", i))
	}
	var bytewise [][]byte
	for i := range data {
		bytewise = append(bytewise, data[i:i+1])
	}
	assertFeedMatchesOneShot(t, data, bytewise, "byte-at-a-time")
}

// TestFrameReaderSplitEquivalence: every valid frame split at all byte
// boundaries across multiple Feed calls decodes identically to one-shot
// ReadFrame — the partial-frame contract the poller read path relies on.
func TestFrameReaderSplitEquivalence(t *testing.T) {
	var stream []byte
	stream = AppendRequest(stream, Request{Op: OpGet, ID: 1, Key: 42})
	stream = AppendRequest(stream, Request{Op: OpPut, ID: 0xFFFFFFFF, Key: 1<<64 - 1, Val: 7})
	stream = AppendResponse(stream, Response{ID: 3, Status: StatusOverloaded})
	stream = AppendRequest(stream, Request{Op: OpPing, ID: 4})
	t.Run("clean stream", func(t *testing.T) { splitAll(t, stream) })
	t.Run("mid-frame tail", func(t *testing.T) {
		splitAll(t, append(append([]byte(nil), stream...), frameWith(reqLen, make([]byte, 5))...))
	})
	t.Run("header-only tail", func(t *testing.T) {
		splitAll(t, append(append([]byte(nil), stream...), 0x00, 0x00))
	})
}

// TestFrameReaderMalformedSplits: the malformed-frame table, each case
// preceded by a valid frame, split at every byte boundary — the typed
// error (and every frame decoded before it) must match one-shot.
func TestFrameReaderMalformedSplits(t *testing.T) {
	valid := AppendRequest(nil, Request{Op: OpDel, ID: 9, Key: 17})
	cases := []struct {
		name  string
		input []byte
	}{
		{"oversized declared length", frameWith(MaxFrame+1, nil)},
		{"huge declared length", frameWith(0xFFFFFFFF, nil)},
		{"zero-length frame", frameWith(0, nil)},
		{"truncated header", []byte{0x00, 0x01}},
		{"truncated payload", frameWith(reqLen, make([]byte, 5))},
		{"payload one byte short", frameWith(reqLen, make([]byte, reqLen-1))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			splitAll(t, tc.input)
		})
		t.Run("valid then "+tc.name, func(t *testing.T) {
			splitAll(t, append(append([]byte(nil), valid...), tc.input...))
		})
	}
}

// TestFrameReaderEmitError: an error from emit aborts Feed and comes
// back verbatim (the server uses this to reject garbage payloads).
func TestFrameReaderEmitError(t *testing.T) {
	stream := AppendRequest(nil, Request{Op: OpGet, ID: 1, Key: 2})
	stream = AppendRequest(stream, Request{Op: OpGet, ID: 2, Key: 3})
	sentinel := errors.New("handler says no")
	var fr FrameReader
	calls := 0
	err := fr.Feed(stream, func(p []byte) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Feed err = %v, want sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("emit called %d times after error, want 1", calls)
	}
}

// TestReadFrameReusesBuffer checks the zero-alloc steady state: a large
// enough buffer passed back in is reused, not reallocated.
func TestReadFrameReusesBuffer(t *testing.T) {
	stream := AppendRequest(nil, Request{Op: OpGet, ID: 1, Key: 2})
	stream = AppendRequest(stream, Request{Op: OpDel, ID: 2, Key: 3})
	br := bufio.NewReader(bytes.NewReader(stream))
	buf := make([]byte, 0, 64)
	first, err := ReadFrame(br, buf)
	if err != nil {
		t.Fatal(err)
	}
	second, err := ReadFrame(br, first)
	if err != nil {
		t.Fatal(err)
	}
	if &first[0] != &second[0] {
		t.Fatal("ReadFrame reallocated despite sufficient capacity")
	}
}
