package kvsvc

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzCodec feeds arbitrary bytes through every decode path and checks
// the codec's two contracts: no panic on hostile input, and encode ∘
// decode is the identity whenever decode succeeds.
func FuzzCodec(f *testing.F) {
	f.Add(AppendRequest(nil, Request{Op: OpGet, ID: 1, Key: 42, Val: 7}))
	f.Add(AppendRequest(nil, Request{Op: OpPut, ID: 0xFFFFFFFF, Key: 1<<64 - 1, Val: 3}))
	f.Add(AppendResponse(nil, Response{ID: 9, Status: StatusOK, Val: 5}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x00})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Frame reader: must return a frame or a typed error, never panic,
		// on any byte stream — including reading multiple frames until the
		// stream errors out.
		br := bufio.NewReader(bytes.NewReader(data))
		var buf []byte
		for i := 0; i < 4; i++ {
			var err error
			buf, err = ReadFrame(br, buf)
			if err != nil {
				break
			}
			// Whatever came out as a frame goes through both decoders.
			if req, err := DecodeRequest(buf); err == nil {
				re := AppendRequest(nil, req)
				back, err2 := DecodeRequest(re[4:])
				if err2 != nil || back != req {
					t.Fatalf("request round-trip: %+v -> %x -> %+v (%v)", req, re, back, err2)
				}
			}
			if resp, err := DecodeResponse(buf); err == nil {
				re := AppendResponse(nil, resp)
				back, err2 := DecodeResponse(re[4:])
				if err2 != nil || back != resp {
					t.Fatalf("response round-trip: %+v -> %x -> %+v (%v)", resp, re, back, err2)
				}
			}
		}

		// Incremental decoding: FrameReader fed the same stream one
		// byte at a time, and split at a data-derived boundary, must
		// decode the identical frame sequence with the identical
		// outcome as the one-shot reference above.
		wantP, wantErr, wantTrunc := oneShotDecode(data)
		want := classifyDecode(wantErr, wantTrunc)
		var bytewise [][]byte
		for i := range data {
			bytewise = append(bytewise, data[i:i+1])
		}
		splits := [][][]byte{bytewise, {data}}
		if len(data) > 0 {
			mid := int(data[0]) % (len(data) + 1)
			splits = append(splits, [][]byte{data[:mid], data[mid:]})
		}
		for _, chunks := range splits {
			gotP, gotErr, gotTrunc := feedDecode(chunks)
			if got := classifyDecode(gotErr, gotTrunc); got != want {
				t.Fatalf("FrameReader outcome %q, one-shot %q (input %x)", got, want, data)
			}
			if len(gotP) != len(wantP) {
				t.Fatalf("FrameReader decoded %d frames, one-shot %d (input %x)", len(gotP), len(wantP), data)
			}
			for i := range wantP {
				if !bytes.Equal(gotP[i], wantP[i]) {
					t.Fatalf("FrameReader frame %d mismatch (input %x)", i, data)
				}
			}
		}

		// Raw payload decoders on the unframed input.
		if req, err := DecodeRequest(data); err == nil {
			if re := AppendRequest(nil, req); !bytes.Equal(re[4:], data) {
				t.Fatalf("request re-encode mismatch: %x vs %x", re[4:], data)
			}
		}
		if resp, err := DecodeResponse(data); err == nil {
			if re := AppendResponse(nil, resp); !bytes.Equal(re[4:], data) {
				t.Fatalf("response re-encode mismatch: %x vs %x", re[4:], data)
			}
		}
	})
}
