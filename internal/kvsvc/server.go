package kvsvc

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gosmr/gosmr/internal/netpoll"
	"github.com/gosmr/gosmr/internal/smr"
)

// ServerConfig parameterizes a Server.
type ServerConfig struct {
	// Addr is the TCP listen address for the wire protocol (e.g.
	// "127.0.0.1:7070"; ":0" picks a free port).
	Addr string
	// AdminAddr is the HTTP admin listen address ("" disables admin).
	AdminAddr string
	// WorkersPerShard is the number of worker goroutines (each owning a
	// shard-bound Handle) per shard (default 2).
	WorkersPerShard int
	// QueueDepth is the per-shard request queue capacity (default 256).
	QueueDepth int
	// MaxConns caps concurrently served connections; accepts beyond the
	// cap are closed immediately (accept-time shedding). 0 selects the
	// default (1024); negative means unlimited.
	MaxConns int
	// ConnBudget is the per-connection in-flight response budget: the
	// number of accepted-but-not-yet-written responses one connection may
	// have outstanding. Requests past the budget are answered with
	// StatusOverloaded instead of queueing, so a connection that stops
	// reading can never back up into a shard worker. 0 selects the
	// default (128).
	ConnBudget int
	// IdleTimeout is the maximum time the server waits for the next frame
	// from a client before evicting the connection. 0 selects the default
	// (2m); negative disables the idle deadline.
	IdleTimeout time.Duration
	// WriteTimeout is the per-write deadline on the response path: a
	// client that stops draining its socket is evicted once a response
	// write stalls this long. 0 selects the default (10s); negative
	// disables the write deadline.
	WriteTimeout time.Duration
	// DispatchTimeout is how long a connection's reader waits for space
	// on a full shard queue before answering StatusOverloaded. 0 selects
	// the default (20ms); negative sheds immediately.
	DispatchTimeout time.Duration
	// ConnWriteBuffer caps the kernel send buffer (SO_SNDBUF) of each
	// accepted TCP connection. It bounds the kernel memory one
	// non-reading client can pin and is what makes WriteTimeout eviction
	// responsive: with the default autotuned buffer the kernel absorbs
	// megabytes of responses before a write ever stalls, so a slow
	// reader is only evicted after its whole receive window AND a
	// multi-megabyte send buffer fill. 0 selects the default (64 KiB);
	// negative leaves the kernel default (autotuning).
	ConnWriteBuffer int
	// DisableReadFastPath forces GETs through the shard worker queues
	// like mutations (the pre-fast-path behavior). The zero value serves
	// GETs on the connection goroutine; this exists for A/B benchmarking
	// and for tests that exercise the queue path deterministically.
	DisableReadFastPath bool
	// ReadHandleCache caps the idle per-shard read handles kept for
	// handoff between connections (see readHandlePool). 0 selects the
	// default (16 per shard); negative disables caching, so every
	// connection teardown releases its handles straight back to the
	// store's domains.
	ReadHandleCache int
	// Netpoll serves connections on the event-driven layer
	// (internal/netpoll): a fixed set of poller goroutines instead of a
	// reader+writer goroutine pair per connection. Designed for
	// mostly-idle fleets of 100k+ conns; see npserver.go for the
	// contract deltas (DispatchTimeout does not apply — full shard
	// queues shed immediately).
	Netpoll bool
	// Pollers is the netpoll poller-goroutine count. 0 selects the
	// netpoll default (min(8, GOMAXPROCS)).
	Pollers int
	// NetpollPortable forces netpoll's portable goroutine backend even
	// where epoll is available (A/B testing and the cross-backend test
	// matrix).
	NetpollPortable bool
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.WorkersPerShard <= 0 {
		c.WorkersPerShard = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxConns == 0 {
		c.MaxConns = 1024
	}
	if c.ConnBudget <= 0 {
		c.ConnBudget = 128
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.DispatchTimeout == 0 {
		c.DispatchTimeout = 20 * time.Millisecond
	}
	if c.ConnWriteBuffer == 0 {
		c.ConnWriteBuffer = 64 << 10
	}
	if c.ReadHandleCache == 0 {
		c.ReadHandleCache = 16
	}
	return c
}

// outMsg is one queued response plus whether it holds one of the
// connection's budget credits. Credits are released by the writer only
// after the response is written (or the connection is declared broken),
// so the budget tracks what the client has actually consumed.
type outMsg struct {
	resp     Response
	credited bool
}

// request is one decoded wire request bound for a shard queue, carrying
// the per-connection response channel. The response send is credited and
// therefore can never block (see serveConn's capacity invariant), which
// is the property that keeps a slow client from stalling a shard worker.
// pending, when non-nil, is the connection's mutation counter for the
// target shard; the worker decrements it after executing the request (at
// which point the mutation is applied), which is what lets the reader's
// GET fast path prove it cannot overtake this connection's own writes.
// Exactly one of out (goroutine mode) and nc (netpoll mode) is set; in
// netpoll mode the worker answers through the conn's nonblocking
// outbound buffer instead of a response channel.
type request struct {
	req     Request
	out     chan<- outMsg
	nc      *npConn
	pending *atomic.Int64
}

// Server fronts a Store with the wire protocol: per-connection pipelined
// reads, per-shard worker pools (so every worker participates in exactly
// one shard's reclamation domain), batched writes, and an HTTP admin
// endpoint serving live per-shard smr.Stats.
//
// Overload model: the server never lets one peer block shared progress.
// Accepts past MaxConns are shed at accept time; requests past a
// connection's ConnBudget or into a shard queue that stays full past
// DispatchTimeout are answered StatusOverloaded; connections that stop
// sending (IdleTimeout) or stop reading (WriteTimeout) are evicted. All
// five events are counted and exported via AdminStats.
type Server struct {
	cfg   ServerConfig
	store *Store

	ln       net.Listener
	adminLn  net.Listener
	admin    *http.Server
	adminErr chan error

	queues   []chan request
	workerWG sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	connWG sync.WaitGroup

	// Netpoll mode (cfg.Netpoll): poll owns every conn's readiness and
	// I/O; npConns tracks live handlers for drain; pollerRH is one
	// lazily-filled per-shard read-handle set per poller — the GET fast
	// path's handles are owned per poller, not per conn, which is what
	// keeps Registry.Len() flat at idle-fleet scale.
	poll     netpoll.Poll
	pollerRH []*connReadHandles
	npMu     sync.Mutex
	npConns  map[*npConn]struct{}
	npWG     sync.WaitGroup

	readPool *readHandlePool

	draining  atomic.Bool
	accepted  atomic.Int64
	served    atomic.Int64
	fastGets  atomic.Int64 // GETs served on the connection goroutine
	liveConns atomic.Int64

	shedConns     atomic.Int64 // accepts closed at the MaxConns cap
	shedBudget    atomic.Int64 // StatusOverloaded: connection budget exceeded
	shedQueueFull atomic.Int64 // StatusOverloaded: shard queue full past DispatchTimeout
	shedDropped   atomic.Int64 // budget sheds and pings dropped because the writer is stalled too
	evictedIdle   atomic.Int64 // connections evicted by the read (idle) deadline
	evictedSlow   atomic.Int64 // connections evicted by the write deadline

	// Unread-backlog gauges (SIOCOUTQ), sampled at each slow-reader
	// eviction: the explicit staleness signal that keeps working once
	// responses outgrow tiny frames (ROADMAP). Zero where the platform
	// can't answer.
	evictedSlowOutqLast atomic.Int64
	evictedSlowOutqMax  atomic.Int64
}

// NewServer binds the listeners and starts the shard worker pools; call
// Serve to start accepting. The server owns store's drain: Shutdown
// calls store.Drain after the last worker exits.
func NewServer(store *Store, cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, store: store, conns: map[net.Conn]struct{}{}}
	s.readPool = newReadHandlePool(store, cfg.ReadHandleCache)

	var err error
	if cfg.Netpoll {
		s.npConns = map[*npConn]struct{}{}
		pcfg := netpoll.Config{
			Pollers:           cfg.Pollers,
			IdleTimeout:       cfg.IdleTimeout,
			WriteStallTimeout: cfg.WriteTimeout,
			ForcePortable:     cfg.NetpollPortable,
		}
		if s.poll, err = netpoll.New(pcfg); err != nil {
			return nil, err
		}
		s.pollerRH = make([]*connReadHandles, len(s.poll.ConnCounts()))
		for i := range s.pollerRH {
			s.pollerRH[i] = newConnReadHandles(s.readPool)
		}
	}
	if s.ln, err = net.Listen("tcp", cfg.Addr); err != nil {
		if s.poll != nil {
			s.poll.Close()
		}
		return nil, err
	}
	if cfg.AdminAddr != "" {
		if s.adminLn, err = net.Listen("tcp", cfg.AdminAddr); err != nil {
			s.ln.Close()
			return nil, err
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/stats", s.handleStats)
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		s.admin = &http.Server{Handler: mux}
		s.adminErr = make(chan error, 1)
		go func() { s.adminErr <- s.admin.Serve(s.adminLn) }()
	}

	for i := 0; i < store.NumShards(); i++ {
		q := make(chan request, cfg.QueueDepth)
		s.queues = append(s.queues, q)
		for w := 0; w < cfg.WorkersPerShard; w++ {
			h := store.NewShardHandle(i)
			s.workerWG.Add(1)
			go s.shardWorker(q, h)
		}
	}
	return s, nil
}

// Addr returns the wire listener's address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// AdminAddr returns the admin listener's address, or "".
func (s *Server) AdminAddr() string {
	if s.adminLn == nil {
		return ""
	}
	return s.adminLn.Addr().String()
}

// Serve accepts connections until Shutdown closes the listener. It
// returns nil on graceful shutdown. Accepts past MaxConns are shed
// (closed immediately) so a connection flood cannot exhaust goroutines;
// only the accept loop increments liveConns, so the cap is strict.
func (s *Server) Serve() error {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			if s.draining.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.accepted.Add(1)
		if max := s.cfg.MaxConns; max > 0 && s.liveConns.Load() >= int64(max) {
			s.shedConns.Add(1)
			c.Close()
			continue
		}
		if tc, ok := c.(*net.TCPConn); ok && s.cfg.ConnWriteBuffer > 0 {
			tc.SetWriteBuffer(s.cfg.ConnWriteBuffer)
		}
		s.liveConns.Add(1)
		if s.poll != nil {
			s.acceptNetpoll(c)
			continue
		}
		s.connMu.Lock()
		s.conns[c] = struct{}{}
		s.connMu.Unlock()
		s.connWG.Add(1)
		go s.serveConn(c)
	}
}

// shardWorker executes requests for one shard with its own handle. The
// pending decrement happens after execute and before the response send:
// once it hits zero the mutation is already applied, so a fast-path read
// that observes zero cannot miss it.
func (s *Server) shardWorker(q <-chan request, h Handle) {
	defer s.workerWG.Done()
	for r := range q {
		resp := execute(h, r.req)
		if r.pending != nil {
			r.pending.Add(-1)
		}
		if r.nc != nil {
			// Netpoll mode: answer through the conn's nonblocking
			// outbound buffer. The inflight decrement comes after the
			// send so drain's inflight==0 ∧ Buffered()==0 check cannot
			// miss a response that is about to be buffered.
			r.nc.send(resp, true)
			r.nc.inflight.Add(-1)
		} else {
			r.out <- outMsg{resp: resp, credited: true}
		}
		s.served.Add(1)
	}
}

// execute runs one request against a handle.
func execute(h Handle, r Request) Response {
	switch r.Op {
	case OpGet:
		if v, ok := h.Get(r.Key); ok {
			return Response{ID: r.ID, Status: StatusOK, Val: v}
		}
		return Response{ID: r.ID, Status: StatusNotFound}
	case OpPut:
		if Put(h, r.Key, r.Val) {
			return Response{ID: r.ID, Status: StatusOK}
		}
		return Response{ID: r.ID, Status: StatusErr}
	case OpDel:
		if h.Delete(r.Key) {
			return Response{ID: r.ID, Status: StatusOK}
		}
		return Response{ID: r.ID, Status: StatusNotFound}
	}
	return Response{ID: r.ID, Status: StatusErr}
}

// serveConn owns one connection: a read loop decoding pipelined frames,
// executing GETs in place (the read fast path) and dispatching mutations
// to shard queues, and a writer goroutine batching responses back out.
//
// Capacity invariant (the no-stall guarantee): out has 2·B slots for a
// budget of B. Credited messages — dispatched requests, fast-path gets,
// and queue-full sheds — are gated by the credits semaphore, so at most B
// of them exist between acquire and the writer's release; uncredited
// messages (budget sheds and pings) are capped at B by the uncredited
// counter (the reader drops the message, counted, when even that lane is
// full). Any sender of a credited message therefore always finds a free
// slot: credited-in-channel ≤ B−1 while it holds its own credit, and
// uncredited-in-channel ≤ B. Shard workers send only credited messages,
// so they can NEVER block on a connection, no matter how the peer
// behaves — the service-layer analogue of the bounded-garbage guarantee
// the reclamation schemes give against stalled threads.
//
// The fast path preserves the invariant with the same argument: the
// reader executes the get only after taking a credit, so its send is a
// credited send and finds a slot like any worker's would. Because the
// reader is itself the sender, it cannot even race its own budget — the
// send happens-before the next frame is read. The get must still never
// *stall* the read loop: Get on every engine/scheme is a bounded
// wait-free traversal (no helping, no unbounded retry; somap may lazily
// insert bucket dummies, which is a bounded handle-local op), so the
// reader returns to ReadFrame in bounded time.
//
// Ordering: a fast-path get may overtake *other* requests, but never this
// connection's own mutations. The reader counts its in-queue mutations
// per shard (pending); a get takes the fast path only when the target
// shard's count is zero — the counter is decremented by the worker after
// the mutation is applied, and only the reader increments it, so zero
// means every mutation this connection sent to that shard has executed.
// Otherwise the get rides the queue behind them, exactly as before.
func (s *Server) serveConn(c net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, c)
		s.connMu.Unlock()
		c.Close()
		s.liveConns.Add(-1)
	}()

	budget := s.cfg.ConnBudget
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	out := make(chan outMsg, 2*budget)
	credits := make(chan struct{}, budget)
	for i := 0; i < budget; i++ {
		credits <- struct{}{}
	}
	var uncredited atomic.Int64 // uncredited messages enqueued and not yet dequeued
	var inflight sync.WaitGroup

	fastPath := !s.cfg.DisableReadFastPath
	rh := newConnReadHandles(s.readPool)
	// pending[i] counts this connection's mutations dispatched to shard i
	// and not yet executed; only the reader increments, only workers
	// decrement (after applying), so a zero read proves the fast path
	// cannot overtake our own writes.
	pending := make([]atomic.Int64, s.store.NumShards())
	var dispatchTimer *time.Timer
	defer func() {
		if dispatchTimer != nil {
			dispatchTimer.Stop()
		}
	}()

	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		var buf []byte
		broken := false
		fail := func(err error) {
			broken = true
			if errors.Is(err, os.ErrDeadlineExceeded) {
				s.evictedSlow.Add(1)
				if q, ok := netpoll.SockOutq(c); ok {
					s.recordEvictedOutq(q)
				}
			}
			// Evict: closing the connection kicks the read loop out of
			// its blocking read, so the whole connection tears down
			// instead of silently discarding responses forever.
			c.Close()
		}
		for m := range out {
			if !broken {
				buf = AppendResponse(buf[:0], m.resp)
				if s.cfg.WriteTimeout > 0 {
					c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
				}
				if _, err := bw.Write(buf); err != nil {
					fail(err)
				} else if len(out) == 0 {
					// Batch boundary: flush only when no more responses
					// are queued, so a pipelined burst costs one syscall.
					if err := bw.Flush(); err != nil {
						fail(err)
					}
				}
			}
			if m.credited {
				credits <- struct{}{}
			} else {
				uncredited.Add(-1)
			}
			inflight.Done()
		}
		if !broken {
			// Fresh deadline for the final flush: the last per-response
			// deadline may be nearly spent (or long expired on an idle
			// teardown), and a peer that stalls exactly here would
			// otherwise pin serveConn in writerWG.Wait for however much
			// stale deadline happens to remain.
			if s.cfg.WriteTimeout > 0 {
				c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			}
			bw.Flush()
		}
	}()

	var frame []byte
	for {
		if s.cfg.IdleTimeout > 0 {
			c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		var err error
		frame, err = ReadFrame(br, frame)
		if err != nil {
			// io.EOF is a clean close; a deadline expiry is an idle
			// eviction; anything else (truncated frame, garbage length,
			// oversized frame) poisons the byte stream. The connection is
			// dropped either way.
			if errors.Is(err, os.ErrDeadlineExceeded) {
				s.evictedIdle.Add(1)
			}
			break
		}
		req, err := DecodeRequest(frame)
		if err != nil {
			break
		}

		if req.Op == OpPing {
			// Pings ride the uncredited lane and never consume budget: a
			// keepalive must not compete with data responses for credits,
			// or a saturated-but-healthy connection would read
			// StatusOverloaded for its liveness probe (see the OpPing
			// contract in wire.go). The lane's B-bound still holds; if
			// even it is full the writer is stalled and the ping is
			// dropped, counted — the peer is not reading anyway.
			if uncredited.Load() < int64(budget) {
				uncredited.Add(1)
				inflight.Add(1)
				out <- outMsg{resp: Response{ID: req.ID, Status: StatusOK}}
			} else {
				s.shedDropped.Add(1)
			}
			continue
		}

		select {
		case <-credits:
		default:
			// Budget exceeded: the client already has ConnBudget
			// responses it has not read. Shed on the bounded uncredited
			// lane; if even that is full the writer is stalled and the
			// shed is dropped — the client's request timeout covers it.
			s.shedBudget.Add(1)
			if uncredited.Load() < int64(budget) {
				uncredited.Add(1)
				inflight.Add(1)
				out <- outMsg{resp: Response{ID: req.ID, Status: StatusOverloaded}}
			} else {
				s.shedDropped.Add(1)
			}
			continue
		}
		inflight.Add(1)
		i := s.store.ShardOf(req.Key)
		if fastPath && req.Op == OpGet && pending[i].Load() == 0 {
			// Read fast path: execute on this goroutine with the
			// connection's own shard handle — no queue, no worker, no
			// cross-goroutine hop. Credited send, same capacity proof as
			// a worker's (see above).
			out <- outMsg{resp: execute(rh.handle(i), req), credited: true}
			s.served.Add(1)
			s.fastGets.Add(1)
			continue
		}
		if isMutation(req.Op) {
			pending[i].Add(1)
		}
		q := s.queues[i]
		r := request{req: req, out: out}
		if isMutation(req.Op) {
			r.pending = &pending[i]
		}
		select {
		case q <- r:
		default:
			if !s.dispatchSlow(q, r, &dispatchTimer) {
				if r.pending != nil {
					r.pending.Add(-1) // shed, never executed
				}
				s.shedQueueFull.Add(1)
				out <- outMsg{resp: Response{ID: req.ID, Status: StatusOverloaded}, credited: true}
			}
		}
	}
	inflight.Wait() // all accepted requests answered (or shed) and handed to the writer
	rh.release()    // hand the read handles to the pool for the next connection
	close(out)
	writerWG.Wait()
}

// isMutation reports whether op changes store state (and therefore rides
// the worker queue and counts toward the per-shard pending counter).
func isMutation(op byte) bool { return op == OpPut || op == OpDel }

// dispatchSlow waits up to DispatchTimeout for space on a full shard
// queue; false means the request must be shed. The wait is the only
// place a connection's reader blocks on shared state, and it is bounded
// — a full queue can delay one reader by at most the timeout, never
// wedge it (the pre-overload server blocked here forever, which let one
// slow shard hold every connection's read loop and Shutdown hostage).
//
// t caches the connection's timer across calls: this path is hot exactly
// when the server is overloaded (every frame meets a full queue), and a
// fresh time.Timer per event put allocator and runtime-timer pressure on
// the one code path that needed to stay cheap. The Stop/drain on the
// send-won branch leaves the timer fully consumed, so the next Reset
// starts clean under the pre-1.23 timer semantics this module targets.
func (s *Server) dispatchSlow(q chan<- request, r request, t **time.Timer) bool {
	d := s.cfg.DispatchTimeout
	if d <= 0 {
		return false
	}
	if *t == nil {
		*t = time.NewTimer(d)
	} else {
		(*t).Reset(d)
	}
	select {
	case q <- r:
		if !(*t).Stop() {
			<-(*t).C
		}
		return true
	case <-(*t).C:
		return false
	}
}

// Shutdown gracefully drains the server: stop accepting, let live
// connections finish their pipelines (force-closing them if ctx expires
// first), stop the shard workers, drain the store's reclamation domains,
// and stop the admin endpoint. It returns an error if the admin listener
// failed while serving or if any arena pool recorded a detect-mode
// violation (use-after-free or double free).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.ln.Close()

	if s.poll != nil {
		s.drainNetpoll(ctx)
	} else {
		done := make(chan struct{})
		go func() {
			s.connWG.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			s.connMu.Lock()
			for c := range s.conns {
				c.Close()
			}
			s.connMu.Unlock()
			<-done
		}
	}

	for _, q := range s.queues {
		close(q)
	}
	s.workerWG.Wait()
	// Netpoll mode: the pollers are gone, so the per-poller fast-path
	// handle sets can go back to the pool before the final pass.
	for _, rh := range s.pollerRH {
		rh.release()
	}
	// Every connection has returned its read handles by now (connWG), so
	// the pool holds all idle fast-path handles; release them before the
	// store's final reclamation pass.
	s.readPool.drain()
	s.store.Drain()

	var errs []error
	if s.admin != nil {
		s.admin.Shutdown(context.Background())
		// Serve has returned by now (its listener is closed); surface any
		// failure other than the clean ErrServerClosed instead of having
		// lost it to a fire-and-forget goroutine.
		if err := <-s.adminErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
			errs = append(errs, fmt.Errorf("kvsvc: admin listener: %w", err))
		}
	}

	if uaf, df := s.store.BugCounts(); uaf > 0 || df > 0 {
		errs = append(errs, fmt.Errorf("kvsvc: arena detected %d use-after-free and %d double-free violations", uaf, df))
	}
	return errors.Join(errs...)
}

// Served returns the number of requests executed (by shard workers or on
// the connection-goroutine read fast path).
func (s *Server) Served() int64 { return s.served.Load() }

// FastGets returns the number of GETs served on the read fast path.
func (s *Server) FastGets() int64 { return s.fastGets.Load() }

// AdminStats is the JSON document served at the admin endpoint's /stats
// (and scraped by kvload): store-wide totals, the overload/eviction
// counters, plus one smr.Stats row per shard with arena gauges filled.
type AdminStats struct {
	Scheme        string `json:"scheme"`
	Engine        string `json:"engine"`
	Shards        int    `json:"shards"`
	AcceptedConns int64  `json:"accepted_conns"`
	LiveConns     int64  `json:"live_conns"`
	ServedOps     int64  `json:"served_ops"`
	FastpathGets  int64  `json:"fastpath_gets"`
	LiveHandles   int    `json:"live_handles"`
	ShedConns     int64  `json:"shed_conns"`
	ShedBudget    int64  `json:"shed_budget"`
	ShedQueueFull int64  `json:"shed_queue_full"`
	ShedDropped   int64  `json:"shed_dropped"`
	ShedTotal     int64  `json:"shed_total"`
	EvictedIdle   int64  `json:"evicted_idle"`
	EvictedSlow   int64  `json:"evicted_slow"`
	// Unread-backlog (SIOCOUTQ) sampled at the most recent / worst
	// slow-reader eviction; 0 where unsupported.
	EvictedSlowOutqBytes    int64 `json:"evicted_slow_outq_bytes"`
	EvictedSlowOutqMaxBytes int64 `json:"evicted_slow_outq_max_bytes"`
	// Process-level gauges for the idle-fleet accounting: kvload derives
	// bytes-per-conn and the O(pollers+workers) goroutine check from
	// these (request /stats?gc=1 for a post-GC heap reading).
	Goroutines      int   `json:"goroutines"`
	HeapInuseBytes  int64 `json:"heap_inuse_bytes"`
	StackInuseBytes int64 `json:"stack_inuse_bytes"`
	// Netpoll reports whether the event-driven connection layer is
	// serving; PollerConns is live conns per poller (empty when off).
	Netpoll     bool   `json:"netpoll"`
	NetpollKind string `json:"netpoll_kind,omitempty"`
	PollerConns []int  `json:"poller_conns,omitempty"`

	ArenaLiveBytes  int64       `json:"arena_live_bytes"`
	ArenaPeakBytes  int64       `json:"arena_peak_bytes"`
	ArenaUAF        int64       `json:"arena_uaf"`
	ArenaDoubleFree int64       `json:"arena_double_free"`
	Total           smr.Stats   `json:"total"`
	PerShard        []smr.Stats `json:"per_shard"`
}

// recordEvictedOutq updates the slow-eviction unread-backlog gauges.
func (s *Server) recordEvictedOutq(q int) {
	s.evictedSlowOutqLast.Store(int64(q))
	for {
		m := s.evictedSlowOutqMax.Load()
		if int64(q) <= m || s.evictedSlowOutqMax.CompareAndSwap(m, int64(q)) {
			return
		}
	}
}

// Snapshot builds the AdminStats document.
func (s *Server) Snapshot() AdminStats {
	per := s.store.ShardStats()
	at := s.store.ArenaTotals()
	shedB, shedQ, shedC := s.shedBudget.Load(), s.shedQueueFull.Load(), s.shedConns.Load()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	var pollerConns []int
	kind := ""
	if s.poll != nil {
		pollerConns = s.poll.ConnCounts()
		kind = s.poll.Kind()
	}
	return AdminStats{
		Scheme:                  s.store.Scheme(),
		Engine:                  s.store.Engine(),
		Shards:                  s.store.NumShards(),
		AcceptedConns:           s.accepted.Load(),
		LiveConns:               s.liveConns.Load(),
		ServedOps:               s.served.Load(),
		FastpathGets:            s.fastGets.Load(),
		LiveHandles:             s.store.LiveHandles(),
		ShedConns:               shedC,
		ShedBudget:              shedB,
		ShedQueueFull:           shedQ,
		ShedDropped:             s.shedDropped.Load(),
		ShedTotal:               shedB + shedQ + shedC,
		EvictedIdle:             s.evictedIdle.Load(),
		EvictedSlow:             s.evictedSlow.Load(),
		EvictedSlowOutqBytes:    s.evictedSlowOutqLast.Load(),
		EvictedSlowOutqMaxBytes: s.evictedSlowOutqMax.Load(),
		Goroutines:              runtime.NumGoroutine(),
		HeapInuseBytes:          int64(ms.HeapInuse),
		StackInuseBytes:         int64(ms.StackInuse),
		Netpoll:                 s.poll != nil,
		NetpollKind:             kind,
		PollerConns:             pollerConns,
		ArenaLiveBytes:          at.Bytes,
		ArenaPeakBytes:          at.PeakBytes,
		ArenaUAF:                at.UAF,
		ArenaDoubleFree:         at.DoubleFree,
		Total:                   AggregateStats(per),
		PerShard:                per,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// ?gc=1 forces a collection first so heap_inuse_bytes measures live
	// memory, not float — the difference between "bytes per conn" and
	// "bytes the allocator hasn't gotten to yet" at idle-fleet scale.
	if r.URL.Query().Get("gc") == "1" {
		runtime.GC()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Snapshot())
}
