package kvsvc

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/smr"
)

// ServerConfig parameterizes a Server.
type ServerConfig struct {
	// Addr is the TCP listen address for the wire protocol (e.g.
	// "127.0.0.1:7070"; ":0" picks a free port).
	Addr string
	// AdminAddr is the HTTP admin listen address ("" disables admin).
	AdminAddr string
	// WorkersPerShard is the number of worker goroutines (each owning a
	// shard-bound Handle) per shard (default 2).
	WorkersPerShard int
	// QueueDepth is the per-shard request queue capacity (default 256).
	QueueDepth int
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.WorkersPerShard <= 0 {
		c.WorkersPerShard = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	return c
}

// request is one decoded wire request bound for a shard queue, carrying
// the per-connection response channel (the connection's writer goroutine
// does the in-flight accounting as it writes each response).
type request struct {
	req Request
	out chan<- Response
}

// Server fronts a Store with the wire protocol: per-connection pipelined
// reads, per-shard worker pools (so every worker participates in exactly
// one shard's reclamation domain), batched writes, and an HTTP admin
// endpoint serving live per-shard smr.Stats.
type Server struct {
	cfg   ServerConfig
	store *Store

	ln      net.Listener
	adminLn net.Listener
	admin   *http.Server

	queues   []chan request
	workerWG sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	connWG sync.WaitGroup

	draining atomic.Bool
	accepted atomic.Int64
	served   atomic.Int64
}

// NewServer binds the listeners and starts the shard worker pools; call
// Serve to start accepting. The server owns store's drain: Shutdown
// calls store.Drain after the last worker exits.
func NewServer(store *Store, cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, store: store, conns: map[net.Conn]struct{}{}}

	var err error
	if s.ln, err = net.Listen("tcp", cfg.Addr); err != nil {
		return nil, err
	}
	if cfg.AdminAddr != "" {
		if s.adminLn, err = net.Listen("tcp", cfg.AdminAddr); err != nil {
			s.ln.Close()
			return nil, err
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/stats", s.handleStats)
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		s.admin = &http.Server{Handler: mux}
		go s.admin.Serve(s.adminLn)
	}

	for i := 0; i < store.NumShards(); i++ {
		q := make(chan request, cfg.QueueDepth)
		s.queues = append(s.queues, q)
		for w := 0; w < cfg.WorkersPerShard; w++ {
			h := store.NewShardHandle(i)
			s.workerWG.Add(1)
			go s.shardWorker(q, h)
		}
	}
	return s, nil
}

// Addr returns the wire listener's address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// AdminAddr returns the admin listener's address, or "".
func (s *Server) AdminAddr() string {
	if s.adminLn == nil {
		return ""
	}
	return s.adminLn.Addr().String()
}

// Serve accepts connections until Shutdown closes the listener. It
// returns nil on graceful shutdown.
func (s *Server) Serve() error {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			if s.draining.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.accepted.Add(1)
		s.connMu.Lock()
		s.conns[c] = struct{}{}
		s.connMu.Unlock()
		s.connWG.Add(1)
		go s.serveConn(c)
	}
}

// shardWorker executes requests for one shard with its own handle.
func (s *Server) shardWorker(q <-chan request, h Handle) {
	defer s.workerWG.Done()
	for r := range q {
		r.out <- execute(h, r.req)
		s.served.Add(1)
	}
}

// execute runs one request against a handle.
func execute(h Handle, r Request) Response {
	switch r.Op {
	case OpGet:
		if v, ok := h.Get(r.Key); ok {
			return Response{ID: r.ID, Status: StatusOK, Val: v}
		}
		return Response{ID: r.ID, Status: StatusNotFound}
	case OpPut:
		if Put(h, r.Key, r.Val) {
			return Response{ID: r.ID, Status: StatusOK}
		}
		return Response{ID: r.ID, Status: StatusErr}
	case OpDel:
		if h.Delete(r.Key) {
			return Response{ID: r.ID, Status: StatusOK}
		}
		return Response{ID: r.ID, Status: StatusNotFound}
	}
	return Response{ID: r.ID, Status: StatusErr}
}

// serveConn owns one connection: a read loop decoding pipelined frames
// and dispatching them to shard queues, and a writer goroutine batching
// responses back out. The reader never closes the response channel while
// requests are in flight, and the writer keeps draining it even after a
// write error so shard workers can never block on a dead connection.
func (s *Server) serveConn(c net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, c)
		s.connMu.Unlock()
		c.Close()
	}()

	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	out := make(chan Response, 4*s.cfg.QueueDepth/s.store.NumShards()+16)
	var inflight sync.WaitGroup

	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		var buf []byte
		broken := false
		for resp := range out {
			if !broken {
				buf = AppendResponse(buf[:0], resp)
				if _, err := bw.Write(buf); err != nil {
					broken = true
				} else if len(out) == 0 {
					// Batch boundary: flush only when no more responses
					// are queued, so a pipelined burst costs one syscall.
					if err := bw.Flush(); err != nil {
						broken = true
					}
				}
			}
			inflight.Done()
		}
		if !broken {
			bw.Flush()
		}
	}()

	var frame []byte
	for {
		var err error
		frame, err = ReadFrame(br, frame)
		if err != nil {
			// io.EOF is a clean close; anything else (truncated frame,
			// garbage length, oversized frame) poisons the byte stream,
			// so the connection is dropped either way.
			break
		}
		req, err := DecodeRequest(frame)
		if err != nil {
			break
		}
		inflight.Add(1)
		if req.Op == OpPing {
			out <- Response{ID: req.ID, Status: StatusOK}
			continue
		}
		s.queues[s.store.ShardOf(req.Key)] <- request{req: req, out: out}
	}
	inflight.Wait() // all dispatched requests answered and written
	close(out)
	writerWG.Wait()
}

// Shutdown gracefully drains the server: stop accepting, let live
// connections finish their pipelines (force-closing them if ctx expires
// first), stop the shard workers, drain the store's reclamation domains,
// and stop the admin endpoint. It returns an error if any arena pool
// recorded a detect-mode violation (use-after-free or double free).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.ln.Close()

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		<-done
	}

	for _, q := range s.queues {
		close(q)
	}
	s.workerWG.Wait()
	s.store.Drain()

	if s.admin != nil {
		s.admin.Shutdown(context.Background())
	}

	if uaf, df := s.store.BugCounts(); uaf > 0 || df > 0 {
		return fmt.Errorf("kvsvc: arena detected %d use-after-free and %d double-free violations", uaf, df)
	}
	return nil
}

// Served returns the number of requests executed by shard workers.
func (s *Server) Served() int64 { return s.served.Load() }

// AdminStats is the JSON document served at the admin endpoint's /stats
// (and scraped by kvload): store-wide totals plus one smr.Stats row per
// shard, with arena live/quarantine gauges filled.
type AdminStats struct {
	Scheme          string      `json:"scheme"`
	Shards          int         `json:"shards"`
	AcceptedConns   int64       `json:"accepted_conns"`
	ServedOps       int64       `json:"served_ops"`
	ArenaLiveBytes  int64       `json:"arena_live_bytes"`
	ArenaPeakBytes  int64       `json:"arena_peak_bytes"`
	ArenaUAF        int64       `json:"arena_uaf"`
	ArenaDoubleFree int64       `json:"arena_double_free"`
	Total           smr.Stats   `json:"total"`
	PerShard        []smr.Stats `json:"per_shard"`
}

// Snapshot builds the AdminStats document.
func (s *Server) Snapshot() AdminStats {
	per := s.store.ShardStats()
	at := s.store.ArenaTotals()
	return AdminStats{
		Scheme:          s.store.Scheme(),
		Shards:          s.store.NumShards(),
		AcceptedConns:   s.accepted.Load(),
		ServedOps:       s.served.Load(),
		ArenaLiveBytes:  at.Bytes,
		ArenaPeakBytes:  at.PeakBytes,
		ArenaUAF:        at.UAF,
		ArenaDoubleFree: at.DoubleFree,
		Total:           AggregateStats(per),
		PerShard:        per,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Snapshot())
}
