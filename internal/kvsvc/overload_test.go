package kvsvc

// Overload-protection and connection-hygiene tests: the misbehaving
// client matrix (idle, slow-reader, burst-past-budget), the queue-full
// shedding regressions, and the drain-ordering regression. The shared
// adversary is a parked shard worker — the deref hook parks the worker
// mid-traversal exactly like the stress harness's stalled reader, which
// makes "the queue stays full" deterministic instead of a timing race.
// Tests that park the worker with a GET set DisableReadFastPath so the
// GET actually reaches the worker (with the fast path on, the deref hook
// would park the connection's reader goroutine instead — that adversary
// has its own coverage in fastpath_test.go).

import (
	"context"
	"errors"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gosmr/gosmr/internal/arena"
)

// startTuned boots a 1-shard hp++ detect-mode server with the given
// overload knobs and its Serve loop running.
func startTuned(t *testing.T, cfg ServerConfig) (*Server, *Store) {
	t.Helper()
	st, err := NewStore(Config{Shards: 1, Scheme: "hp++", Mode: arena.ModeDetect, Buckets: 32})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Addr = "127.0.0.1:0"
	srv, err := NewServer(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	return srv, st
}

// parkFirstDeref arms a one-shot trap on every pool of st: the next
// dereferencing goroutine (a shard worker mid-Get) parks until release
// is called. release is idempotent.
func parkFirstDeref(st *Store) (parked <-chan struct{}, release func()) {
	p := make(chan struct{})
	r := make(chan struct{})
	var armed atomic.Bool
	armed.Store(true)
	for _, pool := range st.Pools() {
		pool.SetDerefHook(func(uint64) {
			if armed.CompareAndSwap(true, false) {
				close(p)
				<-r
			}
		})
	}
	var once sync.Once
	return p, func() { once.Do(func() { close(r) }) }
}

func clearDerefHooks(st *Store) {
	for _, pool := range st.Pools() {
		pool.SetDerefHook(nil)
	}
}

func shutdownClean(t *testing.T, srv *Server, within time.Duration) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), within)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > within {
		t.Fatalf("shutdown took %v, deadline was %v", elapsed, within)
	}
}

// TestDispatchShedsWhenQueueFull is the head-of-line regression for the
// read loop: with a 1-deep queue and the only worker parked, dispatch
// used to block the reader forever; now it sheds StatusOverloaded within
// DispatchTimeout while earlier requests stay queued and complete once
// the worker resumes.
func TestDispatchShedsWhenQueueFull(t *testing.T) {
	srv, st := startTuned(t, ServerConfig{
		WorkersPerShard:     1,
		QueueDepth:          1,
		ConnBudget:          32,
		DispatchTimeout:     5 * time.Millisecond,
		DisableReadFastPath: true,
	})
	tc := dialClient(t, srv.Addr())
	tc.send(Request{Op: OpPut, ID: 1, Key: 1, Val: 11})
	tc.recv(1)

	parked, release := parkFirstDeref(st)
	defer release()
	tc.send(Request{Op: OpGet, ID: 2, Key: 1}) // parks the worker mid-deref
	select {
	case <-parked:
	case <-time.After(2 * time.Second):
		t.Fatal("worker never parked on the deref hook")
	}
	tc.send(Request{Op: OpGet, ID: 3, Key: 2}) // fills the 1-deep queue

	// With the worker parked and the queue full, these two must be shed —
	// the pre-overload server would block the read loop here forever.
	tc.send(Request{Op: OpGet, ID: 4, Key: 3}, Request{Op: OpGet, ID: 5, Key: 4})
	got := tc.recv(2)
	for _, id := range []uint32{4, 5} {
		if got[id].Status != StatusOverloaded {
			t.Fatalf("request %d: status %d, want StatusOverloaded (%d)", id, got[id].Status, StatusOverloaded)
		}
	}

	release()
	got = tc.recv(2)
	if got[2].Status != StatusOK || got[2].Val != 11 {
		t.Fatalf("parked get resolved wrong: %+v", got[2])
	}
	if got[3].Status != StatusNotFound {
		t.Fatalf("queued get resolved wrong: %+v", got[3])
	}

	clearDerefHooks(st)
	tc.c.Close()
	shutdownClean(t, srv, 5*time.Second)
	if n := srv.Snapshot().ShedQueueFull; n < 2 {
		t.Fatalf("shed_queue_full = %d, want >= 2", n)
	}
}

// TestShutdownDrainsUnderFullQueue pins the drain-ordering bug: a
// connection whose peer vanished while its requests sat in a full shard
// queue used to leave the reader blocked on the queue send, deadlocking
// connWG.Wait against the workers that only exit after the queues close.
// Non-blocking dispatch makes the drain bounded.
func TestShutdownDrainsUnderFullQueue(t *testing.T) {
	srv, st := startTuned(t, ServerConfig{
		WorkersPerShard:     1,
		QueueDepth:          1,
		ConnBudget:          8,
		DispatchTimeout:     5 * time.Millisecond,
		DisableReadFastPath: true,
	})
	tc := dialClient(t, srv.Addr())
	tc.send(Request{Op: OpPut, ID: 1, Key: 1, Val: 11})
	tc.recv(1)

	parked, release := parkFirstDeref(st)
	defer release()
	tc.send(Request{Op: OpGet, ID: 2, Key: 1})
	select {
	case <-parked:
	case <-time.After(2 * time.Second):
		t.Fatal("worker never parked")
	}

	// Flood past the queue and the budget, then vanish without reading a
	// single response.
	var reqs []Request
	for i := uint32(3); i < 33; i++ {
		reqs = append(reqs, Request{Op: OpGet, ID: i, Key: uint64(i)})
	}
	tc.send(reqs...)
	tc.c.Close()

	release()
	shutdownClean(t, srv, 5*time.Second)
}

// TestShutdownReportsAdminServeError: an admin listener that dies while
// serving must surface from Shutdown instead of vanishing into a
// fire-and-forget goroutine.
func TestShutdownReportsAdminServeError(t *testing.T) {
	srv := startServer(t, "ebr")
	srv.adminLn.Close() // yank the listener out from under the admin server

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := srv.Shutdown(ctx)
	if err == nil {
		t.Fatal("Shutdown returned nil after the admin listener failed")
	}
	if !strings.Contains(err.Error(), "admin listener") {
		t.Fatalf("Shutdown error does not name the admin listener: %v", err)
	}
}

// TestIdleClientEvicted: a client that connects and never writes is cut
// loose by the idle deadline, so it cannot hold connWG (and Shutdown)
// hostage to the force-close path.
func TestIdleClientEvicted(t *testing.T) {
	srv, _ := startTuned(t, ServerConfig{IdleTimeout: 100 * time.Millisecond})
	c, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("server never evicted the idle connection (read err = %v)", err)
	}

	// The eviction already drained connWG: Shutdown must finish fast
	// without resorting to ctx-expiry force-closes.
	start := time.Now()
	shutdownClean(t, srv, 5*time.Second)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("shutdown needed %v despite the idle client being evicted", elapsed)
	}
	if n := srv.Snapshot().EvictedIdle; n < 1 {
		t.Fatalf("evicted_idle = %d, want >= 1", n)
	}
}

// TestSlowReaderEvictionKeepsShardProgressing is the acceptance
// regression: a connection that writes requests but never reads its
// responses cannot stall its shard's worker. Concurrent traffic from a
// healthy connection on the same (only) shard keeps completing while the
// slow client is eventually evicted by the write deadline, and the whole
// run stays free of detect-mode violations.
func TestSlowReaderEvictionKeepsShardProgressing(t *testing.T) {
	srv, _ := startTuned(t, ServerConfig{
		WorkersPerShard: 1,
		QueueDepth:      64,
		ConnBudget:      64,
		WriteTimeout:    250 * time.Millisecond,
		DispatchTimeout: 5 * time.Millisecond,
		// A small capped send buffer is what makes the eviction prompt:
		// responses are 17 bytes and credit-gated, so with the autotuned
		// default the kernel absorbs megabytes of them before a flush
		// ever stalls past the deadline.
		ConnWriteBuffer: 16 << 10,
	})

	// The slow client: shrink its receive window so the server's
	// response stream fills the socket buffers quickly, then write
	// requests forever and never read. (Not too small: a window under
	// one loopback segment degenerates into a TCP retransmission storm
	// that freezes both directions instead of blocking the writer.)
	slow, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	if tcp, ok := slow.(*net.TCPConn); ok {
		tcp.SetReadBuffer(16 << 10)
	}
	var slowWG sync.WaitGroup
	slowWG.Add(1)
	go func() {
		defer slowWG.Done()
		// Write until eviction closes the socket under us (the 30s
		// deadline is only a backstop against a hung test). The flood
		// must outlive the buffer-fill phase: responses accumulate in
		// the never-read socket until the server's writer blocks and
		// its deadline fires.
		slow.SetWriteDeadline(time.Now().Add(30 * time.Second))
		var buf []byte
		for i := uint32(0); ; i++ {
			buf = AppendRequest(buf[:0], Request{Op: OpPut, ID: i, Key: uint64(i % 512), Val: 7})
			if _, err := slow.Write(buf); err != nil {
				return // evicted: exactly what the test wants
			}
		}
	}()

	// The healthy client shares the shard. Every op must complete within
	// the conn-wide deadline; overload sheds are retried, which is the
	// documented client contract.
	healthy := dialClient(t, srv.Addr())
	healthy.c.SetReadDeadline(time.Now().Add(30 * time.Second))
	for i := uint32(0); i < 100; i++ {
		for {
			healthy.send(Request{Op: OpPut, ID: i, Key: uint64(i), Val: uint64(i) + 100})
			resp := healthy.recv(1)[i]
			if resp.Status == StatusOverloaded {
				time.Sleep(2 * time.Millisecond)
				continue
			}
			if resp.Status != StatusOK {
				t.Fatalf("healthy put %d: status %d", i, resp.Status)
			}
			break
		}
	}
	if srv.Served() < 100 {
		t.Fatalf("served %d ops, want >= 100", srv.Served())
	}

	// The slow client must be evicted (write deadline), which also ends
	// its writer goroutine.
	deadline := time.Now().Add(15 * time.Second)
	for srv.Snapshot().EvictedSlow == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow reader was never evicted by the write deadline")
		}
		time.Sleep(20 * time.Millisecond)
	}
	slowWG.Wait()

	healthy.c.Close()
	shutdownClean(t, srv, 10*time.Second) // nil error ⇒ zero arena violations
}

// TestBurstPastBudgetSheds: a client that bursts past its in-flight
// budget gets StatusOverloaded for the excess — deterministically, since
// the parked worker keeps the budgeted requests in flight — and the
// connection teardown leaks no goroutines.
func TestBurstPastBudgetSheds(t *testing.T) {
	preServer := runtime.NumGoroutine()
	srv, st := startTuned(t, ServerConfig{
		WorkersPerShard:     1,
		QueueDepth:          64,
		ConnBudget:          4,
		DispatchTimeout:     100 * time.Millisecond,
		DisableReadFastPath: true,
	})
	tc := dialClient(t, srv.Addr())
	tc.send(Request{Op: OpPut, ID: 1, Key: 1, Val: 11})
	tc.recv(1)

	parked, release := parkFirstDeref(st)
	defer release()
	tc.send(Request{Op: OpGet, ID: 10, Key: 1}) // parks the worker, holds credit 1
	select {
	case <-parked:
	case <-time.After(2 * time.Second):
		t.Fatal("worker never parked")
	}
	// Credits 2..4 queue behind the parked worker; the next 4 exceed the
	// budget. The burst equals the budget so the uncredited shed lane
	// cannot overflow — every shed is delivered, none dropped.
	tc.send(
		Request{Op: OpGet, ID: 11, Key: 2},
		Request{Op: OpGet, ID: 12, Key: 3},
		Request{Op: OpGet, ID: 13, Key: 4},
		Request{Op: OpGet, ID: 14, Key: 5},
		Request{Op: OpGet, ID: 15, Key: 6},
		Request{Op: OpGet, ID: 16, Key: 7},
		Request{Op: OpGet, ID: 17, Key: 8},
	)
	got := tc.recv(4) // the sheds arrive while 10..13 are still in flight
	for _, id := range []uint32{14, 15, 16, 17} {
		if got[id].Status != StatusOverloaded {
			t.Fatalf("burst request %d: status %d, want StatusOverloaded", id, got[id].Status)
		}
	}
	release()
	got = tc.recv(4)
	if got[10].Status != StatusOK || got[10].Val != 11 {
		t.Fatalf("budgeted get 10 resolved wrong: %+v", got[10])
	}
	for _, id := range []uint32{11, 12, 13} {
		if got[id].Status != StatusNotFound {
			t.Fatalf("budgeted get %d resolved wrong: %+v", id, got[id])
		}
	}
	if n := srv.Snapshot().ShedBudget; n < 4 {
		t.Fatalf("shed_budget = %d, want >= 4", n)
	}

	clearDerefHooks(st)
	tc.c.Close()
	shutdownClean(t, srv, 5*time.Second)

	// No goroutine leak: everything the server and the connection spawned
	// is gone after Shutdown.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > preServer+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before server, %d after shutdown", preServer, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestMaxConnsShedsAtAccept: connections past the cap are closed at
// accept time; capacity freed by a disconnect is reusable.
func TestMaxConnsShedsAtAccept(t *testing.T) {
	srv, _ := startTuned(t, ServerConfig{MaxConns: 2})

	c1 := dialClient(t, srv.Addr())
	c2 := dialClient(t, srv.Addr())
	c1.send(Request{Op: OpPing, ID: 1})
	c1.recv(1)
	c2.send(Request{Op: OpPing, ID: 1})
	c2.recv(1)

	third, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	third.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := third.Read(make([]byte, 1)); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("third connection past MaxConns was not shed (read err = %v)", err)
	}
	third.Close()
	if n := srv.Snapshot().ShedConns; n < 1 {
		t.Fatalf("shed_conns = %d, want >= 1", n)
	}

	// Freeing a slot readmits new connections.
	c1.c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Snapshot().LiveConns >= 2 {
		if time.Now().After(deadline) {
			t.Fatal("closed connection never released its slot")
		}
		time.Sleep(10 * time.Millisecond)
	}
	c4 := dialClient(t, srv.Addr())
	c4.send(Request{Op: OpPing, ID: 9})
	if got := c4.recv(1); got[9].Status != StatusOK {
		t.Fatalf("ping after slot reuse: %+v", got[9])
	}

	c2.c.Close()
	c4.c.Close()
	shutdownClean(t, srv, 5*time.Second)
}
