// External test package: kvsvc itself must not import internal/bench
// (bench is the figure harness, kvsvc the service layer), but the pin
// below needs both sides of the relation in one place.
package kvsvc_test

import (
	"reflect"
	"strings"
	"testing"

	"github.com/gosmr/gosmr/internal/bench"
	"github.com/gosmr/gosmr/internal/kvsvc"
)

// TestSchemesMatchBenchRegistry pins kvsvc.Schemes to its documented
// relation: the bench registry minus rc. The list has to be a literal
// (kvsvc cannot import bench), which is exactly the hand-maintained-copy
// shape that silently dropped hp++ef from the default sweeps in PR 8 —
// so this test is what turns "add a scheme to bench.Schemes" into a
// loud build break here instead of a quietly unreachable store engine.
func TestSchemesMatchBenchRegistry(t *testing.T) {
	var want []string
	for _, s := range bench.Schemes {
		if s == "rc" {
			continue // rc guards retain cross-bucket; no store engine
		}
		want = append(want, s)
	}
	if !reflect.DeepEqual(kvsvc.Schemes, want) {
		t.Fatalf("kvsvc.Schemes = %v, want bench registry minus rc = %v",
			kvsvc.Schemes, want)
	}
}

// TestUnknownSchemeErrorListsAll pins the other half of satellite 2:
// rejecting an unknown scheme must name every valid one, so operators
// reading a gosmrd/kvload failure see the real current list instead of
// a stale help string.
func TestUnknownSchemeErrorListsAll(t *testing.T) {
	_, err := kvsvc.NewStore(kvsvc.Config{Scheme: "nosuch"})
	if err == nil {
		t.Fatal("unknown scheme accepted")
	}
	for _, s := range kvsvc.Schemes {
		if !strings.Contains(err.Error(), s) {
			t.Fatalf("error %q does not mention valid scheme %q", err, s)
		}
	}
}
