package kvsvc

// Netpoll-mode server tests: the same wire contracts as goroutine mode
// (end-to-end ops, garbage handling, read-your-writes, budget shedding,
// ping-at-budget), run over BOTH netpoll backends where available, plus
// the mode's own obligations — idle eviction through the timer wheel,
// bounded goroutines, and flat handle registries under churn and parked
// idle fleets (the per-poller fast-path handle rule).

import (
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"testing"
	"time"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/ebr"
)

// netpollBackends names each backend runnable on this platform.
func netpollBackends() []struct {
	name     string
	portable bool
} {
	all := []struct {
		name     string
		portable bool
	}{{"epoll", false}, {"portable", true}}
	if runtime.GOOS != "linux" {
		return all[1:]
	}
	return all
}

// startNetpoll boots a netpoll-mode server (4 shards, detect mode).
func startNetpoll(t *testing.T, scheme string, portable bool, cfg ServerConfig) (*Server, *Store) {
	t.Helper()
	st, err := NewStore(Config{Shards: 4, Scheme: scheme, Mode: arena.ModeDetect, Buckets: 32})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Addr = "127.0.0.1:0"
	cfg.Netpoll = true
	cfg.NetpollPortable = portable
	if cfg.Pollers == 0 {
		cfg.Pollers = 2
	}
	srv, err := NewServer(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	return srv, st
}

// warmFleet opens n sequential conns, each issuing GETs over 64 keys
// (covering every shard), so every (poller, shard) fast-path handle
// exists afterwards; then waits for all teardowns.
func warmFleet(t *testing.T, srv *Server, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		wc := dialClient(t, srv.Addr())
		wc.c.SetReadDeadline(time.Now().Add(10 * time.Second))
		var reqs []Request
		for k := uint64(0); k < 64; k++ {
			reqs = append(reqs, Request{Op: OpGet, ID: uint32(k), Key: k})
		}
		wc.send(reqs...)
		wc.recv(len(reqs))
		wc.c.Close()
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Snapshot().LiveConns > 0 {
		if time.Now().After(deadline) {
			t.Fatal("warm-up conns never finished tearing down")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestNetpollEndToEnd(t *testing.T) {
	for _, b := range netpollBackends() {
		t.Run(b.name, func(t *testing.T) {
			srv, _ := startNetpoll(t, "hp++", b.portable, ServerConfig{
				AdminAddr:       "127.0.0.1:0",
				WorkersPerShard: 1,
			})
			tc := dialClient(t, srv.Addr())
			tc.c.SetReadDeadline(time.Now().Add(10 * time.Second))

			var reqs []Request
			id := uint32(0)
			for k := uint64(0); k < 32; k++ {
				reqs = append(reqs, Request{Op: OpPut, ID: id, Key: k, Val: k + 100})
				id++
			}
			for k := uint64(0); k < 32; k++ {
				reqs = append(reqs, Request{Op: OpGet, ID: id, Key: k})
				id++
			}
			for k := uint64(0); k < 32; k += 2 {
				reqs = append(reqs, Request{Op: OpDel, ID: id, Key: k})
				id++
			}
			for k := uint64(0); k < 32; k++ {
				reqs = append(reqs, Request{Op: OpGet, ID: id, Key: k})
				id++
			}
			reqs = append(reqs, Request{Op: OpPing, ID: id})
			tc.send(reqs...)
			got := tc.recv(len(reqs))

			for i := uint32(0); i < 32; i++ {
				if got[i].Status != StatusOK {
					t.Fatalf("put %d: status %d", i, got[i].Status)
				}
			}
			for i := uint32(32); i < 64; i++ {
				k := uint64(i - 32)
				if got[i].Status != StatusOK || got[i].Val != k+100 {
					t.Fatalf("get key %d: %+v", k, got[i])
				}
			}
			for i := uint32(80); i < 112; i++ {
				k := uint64(i - 80)
				want := StatusNotFound
				if k%2 == 1 {
					want = StatusOK
				}
				if got[i].Status != want {
					t.Fatalf("re-get key %d: status %d, want %d", k, got[i].Status, want)
				}
			}
			if got[id].Status != StatusOK {
				t.Fatalf("ping: %+v", got[id])
			}

			// AdminStats must report the mode, the backend, and a
			// per-poller distribution summing to the live conns.
			resp, err := http.Get("http://" + srv.AdminAddr() + "/stats?gc=1")
			if err != nil {
				t.Fatal(err)
			}
			var ast AdminStats
			err = json.NewDecoder(resp.Body).Decode(&ast)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if !ast.Netpoll || ast.NetpollKind != srv.poll.Kind() {
				t.Fatalf("admin stats netpoll fields: %+v", ast)
			}
			if len(ast.PollerConns) == 0 {
				t.Fatal("no poller_conns in admin stats")
			}
			total := 0
			for _, n := range ast.PollerConns {
				total += n
			}
			if int64(total) != ast.LiveConns {
				t.Fatalf("poller_conns sum %d != live_conns %d", total, ast.LiveConns)
			}
			if ast.Goroutines <= 0 || ast.HeapInuseBytes <= 0 {
				t.Fatalf("process gauges missing: goroutines=%d heap=%d", ast.Goroutines, ast.HeapInuseBytes)
			}

			tc.c.Close()
			shutdownClean(t, srv, 5*time.Second)
			if srv.Served() == 0 {
				t.Fatal("server served nothing")
			}
		})
	}
}

func TestNetpollDropsGarbageConnection(t *testing.T) {
	for _, b := range netpollBackends() {
		t.Run(b.name, func(t *testing.T) {
			srv, _ := startNetpoll(t, "ebr", b.portable, ServerConfig{WorkersPerShard: 1})

			bad := dialClient(t, srv.Addr())
			bad.c.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0x02})
			bad.c.SetReadDeadline(time.Now().Add(5 * time.Second))
			if _, err := bad.br.ReadByte(); err == nil {
				t.Fatal("server kept the connection open after a garbage frame")
			}
			bad.c.Close()

			good := dialClient(t, srv.Addr())
			good.c.SetReadDeadline(time.Now().Add(5 * time.Second))
			good.send(Request{Op: OpPut, ID: 1, Key: 5, Val: 6}, Request{Op: OpGet, ID: 2, Key: 5})
			got := good.recv(2)
			if got[2].Status != StatusOK || got[2].Val != 6 {
				t.Fatalf("get after garbage conn: %+v", got[2])
			}
			good.c.Close()
			shutdownClean(t, srv, 5*time.Second)
		})
	}
}

// TestNetpollReadYourWrites: the per-conn pending-mutation gate must
// hold when dispatch runs on a poller callback: a pipelined put;get on
// one key always observes the put.
func TestNetpollReadYourWrites(t *testing.T) {
	for _, b := range netpollBackends() {
		t.Run(b.name, func(t *testing.T) {
			srv, _ := startNetpoll(t, "hp++", b.portable, ServerConfig{
				WorkersPerShard: 1,
				ConnBudget:      64,
			})
			tc := dialClient(t, srv.Addr())
			tc.c.SetReadDeadline(time.Now().Add(30 * time.Second))

			const key = 7
			for i := uint64(0); i < 150; i++ {
				put := Request{Op: OpPut, ID: uint32(2 * i), Key: key, Val: i}
				get := Request{Op: OpGet, ID: uint32(2*i + 1), Key: key}
				tc.send(put, get)
				got := tc.recv(2)
				if got[put.ID].Status != StatusOK {
					t.Fatalf("round %d: put status %d", i, got[put.ID].Status)
				}
				if got[get.ID].Status != StatusOK || got[get.ID].Val != i {
					t.Fatalf("round %d: get = %+v, want val %d (read-your-writes)", i, got[get.ID], i)
				}
			}
			tc.send(Request{Op: OpGet, ID: 1000, Key: key})
			if got := tc.recv(1); got[1000].Status != StatusOK || got[1000].Val != 149 {
				t.Fatalf("drained-pipeline get = %+v, want val 149", got[1000])
			}
			if srv.FastGets() == 0 {
				t.Fatal("no get ever took the fast path")
			}
			tc.c.Close()
			shutdownClean(t, srv, 5*time.Second)
		})
	}
}

// TestNetpollBudgetShedAndPing: credit gate and uncredited ping lane
// under a parked worker, netpoll edition of TestPingUncreditedAtBudget.
func TestNetpollBudgetShedAndPing(t *testing.T) {
	for _, b := range netpollBackends() {
		t.Run(b.name, func(t *testing.T) {
			st, err := NewStore(Config{Shards: 1, Scheme: "hp++", Mode: arena.ModeDetect, Buckets: 32})
			if err != nil {
				t.Fatal(err)
			}
			srv, err := NewServer(st, ServerConfig{
				Addr:            "127.0.0.1:0",
				Netpoll:         true,
				NetpollPortable: b.portable,
				Pollers:         1,
				WorkersPerShard: 1,
				QueueDepth:      64,
				ConnBudget:      2,
			})
			if err != nil {
				t.Fatal(err)
			}
			go srv.Serve()

			tc := dialClient(t, srv.Addr())
			tc.c.SetReadDeadline(time.Now().Add(10 * time.Second))
			tc.send(Request{Op: OpPut, ID: 1, Key: 1, Val: 11})
			tc.recv(1)

			parked, release := parkFirstDeref(st)
			defer release()
			tc.send(Request{Op: OpPut, ID: 2, Key: 2, Val: 22}) // parks the worker, holds credit 1
			select {
			case <-parked:
			case <-time.After(2 * time.Second):
				t.Fatal("worker never parked")
			}
			tc.send(Request{Op: OpPut, ID: 3, Key: 3, Val: 33}) // queued, holds credit 2

			tc.send(Request{Op: OpGet, ID: 4, Key: 1}, Request{Op: OpPing, ID: 5})
			got := tc.recv(2)
			if got[4].Status != StatusOverloaded {
				t.Fatalf("data request at budget: status %d, want StatusOverloaded", got[4].Status)
			}
			if got[5].Status != StatusOK {
				t.Fatalf("ping at budget: status %d, want StatusOK (uncredited lane)", got[5].Status)
			}

			release()
			got = tc.recv(2)
			if got[2].Status != StatusOK || got[3].Status != StatusOK {
				t.Fatalf("parked puts resolved wrong: %+v %+v", got[2], got[3])
			}

			clearDerefHooks(st)
			tc.c.Close()
			shutdownClean(t, srv, 5*time.Second)
		})
	}
}

// TestNetpollIdleEviction: the timer wheel must evict a silent conn and
// count it, and the fleet accounting must return to zero.
func TestNetpollIdleEviction(t *testing.T) {
	for _, b := range netpollBackends() {
		t.Run(b.name, func(t *testing.T) {
			srv, _ := startNetpoll(t, "hp++", b.portable, ServerConfig{
				WorkersPerShard: 1,
				IdleTimeout:     200 * time.Millisecond,
			})
			tc := dialClient(t, srv.Addr())
			tc.c.SetReadDeadline(time.Now().Add(10 * time.Second))
			tc.send(Request{Op: OpPut, ID: 1, Key: 1, Val: 11})
			tc.recv(1)
			// Go silent; the server must hang up on us.
			if _, err := tc.br.ReadByte(); err == nil {
				t.Fatal("idle conn was never evicted")
			}
			tc.c.Close()

			deadline := time.Now().Add(10 * time.Second)
			for srv.Snapshot().LiveConns > 0 {
				if time.Now().After(deadline) {
					t.Fatal("evicted conn never left the fleet accounting")
				}
				time.Sleep(5 * time.Millisecond)
			}
			if n := srv.Snapshot().EvictedIdle; n != 1 {
				t.Fatalf("evicted_idle = %d, want 1", n)
			}
			shutdownClean(t, srv, 5*time.Second)
		})
	}
}

// TestNetpollChurnAndIdleParkStabilizesRegistry is the idle-handle
// satellite: under connection churn AND a parked idle fleet, cached
// read handles stay with the POLLERS (bounded O(pollers × shards)), so
// Registry.Len() / live handles do not grow with conns accepted or
// parked — the idle-fleet analogue of fastpath_test's churn tests.
func TestNetpollChurnAndIdleParkStabilizesRegistry(t *testing.T) {
	for _, b := range netpollBackends() {
		t.Run(b.name, func(t *testing.T) {
			srv, st := startNetpoll(t, "hp++", b.portable, ServerConfig{
				WorkersPerShard: 1,
				ConnBudget:      64,
			})
			tc := dialClient(t, srv.Addr())
			tc.c.SetReadDeadline(time.Now().Add(10 * time.Second))
			tc.send(Request{Op: OpPut, ID: 1, Key: 1, Val: 11})
			tc.recv(1)
			tc.c.Close()

			// Warm-up: poller handle sets fill lazily per (poller, shard)
			// pair, so drive GETs across every shard from enough conns to
			// land on every poller (round-robin assignment) before taking
			// the mid measurement.
			warmFleet(t, srv, 2*srv.cfg.Pollers)
			mid := st.ShardStats()[0]
			midHandles := st.LiveHandles()

			churnConns(t, srv, 30)

			// Park an idle fleet that issued reads first: their GETs ran
			// on poller handles, so parking must pin nothing.
			var parked []*testClient
			for i := 0; i < 16; i++ {
				pc := dialClient(t, srv.Addr())
				pc.c.SetReadDeadline(time.Now().Add(10 * time.Second))
				pc.send(Request{Op: OpGet, ID: 1, Key: 1})
				pc.recv(1)
				parked = append(parked, pc)
			}
			end := st.ShardStats()[0]
			endHandles := st.LiveHandles()

			if end.HazardSlots > mid.HazardSlots {
				t.Fatalf("Registry.Len grew with conns: %d -> %d", mid.HazardSlots, end.HazardSlots)
			}
			if end.HazardSlotsInUse > mid.HazardSlotsInUse {
				t.Fatalf("hazard slots in use grew: %d -> %d", mid.HazardSlotsInUse, end.HazardSlotsInUse)
			}
			if endHandles > midHandles {
				t.Fatalf("live handles grew with conns: %d -> %d", midHandles, endHandles)
			}
			if srv.FastGets() == 0 {
				t.Fatal("churn traffic never hit the fast path")
			}
			for _, pc := range parked {
				pc.c.Close()
			}
			shutdownClean(t, srv, 5*time.Second)
		})
	}
}

// TestNetpollChurnStabilizesEBRRecords: epoch-scheme twin on the poller
// path — guard records recycle instead of accumulating per conn.
func TestNetpollChurnStabilizesEBRRecords(t *testing.T) {
	for _, b := range netpollBackends() {
		t.Run(b.name, func(t *testing.T) {
			st, err := NewStore(Config{Shards: 1, Scheme: "ebr", Mode: arena.ModeDetect, Buckets: 32})
			if err != nil {
				t.Fatal(err)
			}
			srv, err := NewServer(st, ServerConfig{
				Addr:            "127.0.0.1:0",
				Netpoll:         true,
				NetpollPortable: b.portable,
				Pollers:         2,
				WorkersPerShard: 1,
				ReadHandleCache: -1,
			})
			if err != nil {
				t.Fatal(err)
			}
			go srv.Serve()

			tc := dialClient(t, srv.Addr())
			tc.c.SetReadDeadline(time.Now().Add(10 * time.Second))
			tc.send(Request{Op: OpPut, ID: 1, Key: 1, Val: 11})
			tc.recv(1)
			tc.c.Close()

			dom := st.shards[0].dom.(*ebr.Domain)
			churnConns(t, srv, 3)
			midTotal, _ := dom.Records()
			churnConns(t, srv, 30)
			endTotal, _ := dom.Records()

			if endTotal > midTotal {
				t.Fatalf("EBR record list grew with accepted conns: %d -> %d", midTotal, endTotal)
			}
			shutdownClean(t, srv, 5*time.Second)
		})
	}
}

// TestNetpollShutdownForcesStragglers: drain must not hang on a conn
// that never closes; the force-close path joins the pollers cleanly.
func TestNetpollShutdownForcesStragglers(t *testing.T) {
	for _, b := range netpollBackends() {
		t.Run(b.name, func(t *testing.T) {
			srv, _ := startNetpoll(t, "hp++", b.portable, ServerConfig{WorkersPerShard: 1})
			straggler := dialClient(t, srv.Addr())
			straggler.c.SetReadDeadline(time.Now().Add(10 * time.Second))
			straggler.send(Request{Op: OpPut, ID: 1, Key: 1, Val: 1})
			straggler.recv(1)

			ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
			defer cancel()
			start := time.Now()
			if err := srv.Shutdown(ctx); err != nil {
				t.Fatalf("shutdown: %v", err)
			}
			if time.Since(start) > 3*time.Second {
				t.Fatal("shutdown hung past the drain deadline")
			}
			straggler.c.Close()
		})
	}
}
