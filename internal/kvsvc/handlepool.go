package kvsvc

import "sync"

// readHandlePool caches per-shard store handles for the connection-
// goroutine GET fast path. Handles are single-owner objects (they carry a
// hazard thread or an epoch guard), so connections cannot share one
// concurrently — but a connection that closes can hand its handles to the
// next connection instead of paying handle construction (slot acquisition,
// frontier setup) and release on every accept. The mutex handoff gives the
// adopting goroutine a happens-before edge over the releasing
// connection's last use, which is what makes the transfer safe.
//
// The pool bounds idle handles per shard; overflow is released to the
// store outright (ReleaseShardHandle returns the hazard slots / epoch
// record to the domain). Either way the registry footprint tracks peak
// concurrency, not connections ever accepted.
type readHandlePool struct {
	store *Store
	max   int // idle handles kept per shard; <= 0 disables caching

	mu   sync.Mutex
	idle [][]Handle
}

func newReadHandlePool(store *Store, maxIdle int) *readHandlePool {
	return &readHandlePool{
		store: store,
		max:   maxIdle,
		idle:  make([][]Handle, store.NumShards()),
	}
}

// get returns a handle bound to shard i, reusing an idle one when
// available.
func (p *readHandlePool) get(i int) Handle {
	p.mu.Lock()
	if n := len(p.idle[i]); n > 0 {
		h := p.idle[i][n-1]
		p.idle[i][n-1] = nil
		p.idle[i] = p.idle[i][:n-1]
		p.mu.Unlock()
		return h
	}
	p.mu.Unlock()
	return p.store.NewShardHandle(i)
}

// put returns a shard-i handle to the cache, releasing it to the store
// when the shard's idle set is full. The caller must not use h afterwards.
func (p *readHandlePool) put(i int, h Handle) {
	p.mu.Lock()
	if len(p.idle[i]) < p.max {
		p.idle[i] = append(p.idle[i], h)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	p.store.ReleaseShardHandle(i, h)
}

// drain releases every idle handle back to the store. Call after the last
// connection is gone and before Store.Drain so the store's final
// reclamation pass sees no live pool handles.
func (p *readHandlePool) drain() {
	p.mu.Lock()
	idle := p.idle
	p.idle = make([][]Handle, len(idle))
	p.mu.Unlock()
	for i, hs := range idle {
		for _, h := range hs {
			p.store.ReleaseShardHandle(i, h)
		}
	}
}

// idleCount reports the pooled (idle) handle total, for tests.
func (p *readHandlePool) idleCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, hs := range p.idle {
		n += len(hs)
	}
	return n
}

// connReadHandles is one connection's lazily-acquired per-shard read
// handle set: the read loop borrows a shard's handle from the pool on the
// first get routed there and returns everything at teardown.
type connReadHandles struct {
	pool *readHandlePool
	hs   []Handle
}

func newConnReadHandles(pool *readHandlePool) *connReadHandles {
	return &connReadHandles{pool: pool, hs: make([]Handle, pool.store.NumShards())}
}

func (r *connReadHandles) handle(i int) Handle {
	if r.hs[i] == nil {
		r.hs[i] = r.pool.get(i)
	}
	return r.hs[i]
}

func (r *connReadHandles) release() {
	for i, h := range r.hs {
		if h != nil {
			r.pool.put(i, h)
			r.hs[i] = nil
		}
	}
}
