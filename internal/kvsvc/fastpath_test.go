package kvsvc

// Read-fast-path tests: GETs executed on the connection goroutine must
// bypass a stalled worker pipeline without ever reordering ahead of the
// connection's own mutations, pings must stay answerable at budget
// saturation, and — the lifecycle half of the feature — connection churn
// must not grow the hazard registries or epoch record lists with
// connections ever accepted.

import (
	"testing"
	"time"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/ebr"
)

// TestFastPathGetBypassesStalledWorker: with the only shard worker parked
// mid-mutation, a *different* connection's GETs are still served — on the
// reader goroutine — while the mutation pipeline is wedged. This is the
// wait-free-read property the fast path exists for.
func TestFastPathGetBypassesStalledWorker(t *testing.T) {
	srv, st := startTuned(t, ServerConfig{
		WorkersPerShard: 1,
		QueueDepth:      64,
		ConnBudget:      32,
	})

	writer := dialClient(t, srv.Addr())
	writer.send(Request{Op: OpPut, ID: 1, Key: 1, Val: 11})
	writer.recv(1)

	parked, release := parkFirstDeref(st)
	defer release()
	writer.send(Request{Op: OpPut, ID: 2, Key: 2, Val: 22}) // parks the worker mid-insert
	select {
	case <-parked:
	case <-time.After(2 * time.Second):
		t.Fatal("worker never parked on the deref hook")
	}

	// A second connection has no pending mutations, so its GETs take the
	// fast path and complete even though the shard's only worker is
	// parked and cannot serve anything.
	reader := dialClient(t, srv.Addr())
	reader.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	reader.send(Request{Op: OpGet, ID: 10, Key: 1}, Request{Op: OpGet, ID: 11, Key: 999})
	got := reader.recv(2)
	if got[10].Status != StatusOK || got[10].Val != 11 {
		t.Fatalf("fast-path get while worker parked: %+v", got[10])
	}
	if got[11].Status != StatusNotFound {
		t.Fatalf("fast-path miss while worker parked: %+v", got[11])
	}
	if srv.FastGets() < 2 {
		t.Fatalf("fastpath_gets = %d, want >= 2", srv.FastGets())
	}

	release()
	if got := writer.recv(1); got[2].Status != StatusOK {
		t.Fatalf("parked put resolved wrong: %+v", got[2])
	}

	clearDerefHooks(st)
	reader.c.Close()
	writer.c.Close()
	shutdownClean(t, srv, 5*time.Second)
}

// TestFastPathReadYourWrites: a pipelined put;get on one key must always
// observe the put, whether the get rides the queue behind the pending
// mutation or takes the fast path after it executed. The per-shard
// pending counter is what makes this hold — without it the reader-side
// get could overtake its own connection's queued put.
func TestFastPathReadYourWrites(t *testing.T) {
	srv, _ := startTuned(t, ServerConfig{
		WorkersPerShard: 1,
		QueueDepth:      64,
		ConnBudget:      64,
	})
	tc := dialClient(t, srv.Addr())
	tc.c.SetReadDeadline(time.Now().Add(30 * time.Second))

	const key = 7
	for i := uint64(0); i < 300; i++ {
		put := Request{Op: OpPut, ID: uint32(2 * i), Key: key, Val: i}
		get := Request{Op: OpGet, ID: uint32(2*i + 1), Key: key}
		tc.send(put, get) // one write: both frames race the worker
		got := tc.recv(2)
		if got[put.ID].Status != StatusOK {
			t.Fatalf("round %d: put status %d", i, got[put.ID].Status)
		}
		if got[get.ID].Status != StatusOK || got[get.ID].Val != i {
			t.Fatalf("round %d: get = %+v, want val %d (read-your-writes)", i, got[get.ID], i)
		}
	}
	// The pipelined gets above almost always find their put still pending
	// and ride the queue — that is the point. A lone get with the pipeline
	// drained must take the fast path and still see the last write.
	tc.send(Request{Op: OpGet, ID: 1000, Key: key})
	if got := tc.recv(1); got[1000].Status != StatusOK || got[1000].Val != 299 {
		t.Fatalf("drained-pipeline get = %+v, want val 299", got[1000])
	}
	if srv.FastGets() == 0 {
		t.Fatal("no get ever took the fast path")
	}

	tc.c.Close()
	shutdownClean(t, srv, 5*time.Second)
}

// TestPingUncreditedAtBudget pins the OpPing-at-budget contract from
// wire.go: with every credit held by in-flight mutations, a data request
// is shed StatusOverloaded but a ping still answers StatusOK — keepalives
// ride the uncredited lane and never compete with data for budget.
func TestPingUncreditedAtBudget(t *testing.T) {
	srv, st := startTuned(t, ServerConfig{
		WorkersPerShard: 1,
		QueueDepth:      64,
		ConnBudget:      2,
		DispatchTimeout: 100 * time.Millisecond,
	})
	tc := dialClient(t, srv.Addr())
	tc.send(Request{Op: OpPut, ID: 1, Key: 1, Val: 11})
	tc.recv(1)

	parked, release := parkFirstDeref(st)
	defer release()
	tc.send(Request{Op: OpPut, ID: 2, Key: 2, Val: 22}) // parks the worker, holds credit 1
	select {
	case <-parked:
	case <-time.After(2 * time.Second):
		t.Fatal("worker never parked")
	}
	tc.send(Request{Op: OpPut, ID: 3, Key: 3, Val: 33}) // queued, holds credit 2

	// Budget exhausted: the data get is shed, the ping is not.
	tc.send(Request{Op: OpGet, ID: 4, Key: 1}, Request{Op: OpPing, ID: 5})
	got := tc.recv(2)
	if got[4].Status != StatusOverloaded {
		t.Fatalf("data request at budget: status %d, want StatusOverloaded", got[4].Status)
	}
	if got[5].Status != StatusOK {
		t.Fatalf("ping at budget: status %d, want StatusOK (uncredited lane)", got[5].Status)
	}

	release()
	got = tc.recv(2)
	if got[2].Status != StatusOK || got[3].Status != StatusOK {
		t.Fatalf("parked puts resolved wrong: %+v %+v", got[2], got[3])
	}

	clearDerefHooks(st)
	tc.c.Close()
	shutdownClean(t, srv, 5*time.Second)
}

// churnConns opens n sequential connections, each issuing GETs (and one
// put on the first, to seed the key), and waits for every teardown.
func churnConns(t *testing.T, srv *Server, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		tc := dialClient(t, srv.Addr())
		tc.c.SetReadDeadline(time.Now().Add(10 * time.Second))
		tc.send(Request{Op: OpGet, ID: 1, Key: 1}, Request{Op: OpGet, ID: 2, Key: uint64(i) + 100})
		tc.recv(2)
		tc.c.Close()
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Snapshot().LiveConns > 0 {
		if time.Now().After(deadline) {
			t.Fatal("connections never finished tearing down")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestConnChurnStabilizesRegistry is the tentpole's lifecycle acceptance
// test: the hazard registry must stabilize at peak concurrency instead of
// growing with connections ever accepted. Before handles had a release
// path, every connection's fast-path handle stayed in the shard's live
// set forever and its hazard slots inflated Registry.Len() — and with it
// every ScanSet built from it — linearly in accepted connections.
func TestConnChurnStabilizesRegistry(t *testing.T) {
	for _, cache := range []struct {
		name string
		size int
	}{
		{"pooled", 4},    // handles handed off between connections
		{"unpooled", -1}, // every teardown releases to the store
	} {
		t.Run(cache.name, func(t *testing.T) {
			srv, st := startTuned(t, ServerConfig{
				WorkersPerShard: 1,
				ReadHandleCache: cache.size,
			})
			tc := dialClient(t, srv.Addr())
			tc.send(Request{Op: OpPut, ID: 1, Key: 1, Val: 11})
			tc.recv(1)
			tc.c.Close()

			churnConns(t, srv, 3) // warmup: create/pool the steady-state handles
			mid := st.ShardStats()[0]
			midHandles := st.LiveHandles()

			churnConns(t, srv, 30)
			end := st.ShardStats()[0]
			endHandles := st.LiveHandles()

			if end.HazardSlots > mid.HazardSlots {
				t.Fatalf("Registry.Len grew with accepted connections: %d -> %d (cache=%s)",
					mid.HazardSlots, end.HazardSlots, cache.name)
			}
			if end.HazardSlotsInUse > mid.HazardSlotsInUse {
				t.Fatalf("hazard slots in use grew: %d -> %d", mid.HazardSlotsInUse, end.HazardSlotsInUse)
			}
			if endHandles > midHandles {
				t.Fatalf("live handles grew with accepted connections: %d -> %d", midHandles, endHandles)
			}
			if srv.FastGets() == 0 {
				t.Fatal("churn traffic never hit the fast path")
			}

			shutdownClean(t, srv, 5*time.Second)
		})
	}
}

// TestConnChurnStabilizesEBRRecords is the epoch-scheme twin: guard
// records (the H of the adaptive collect threshold) must recycle through
// Guard.Finish instead of accumulating one per connection ever accepted.
func TestConnChurnStabilizesEBRRecords(t *testing.T) {
	st, err := NewStore(Config{Shards: 1, Scheme: "ebr", Mode: arena.ModeDetect, Buckets: 32})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(st, ServerConfig{
		Addr:            "127.0.0.1:0",
		WorkersPerShard: 1,
		ReadHandleCache: -1, // force a real release every teardown
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()

	tc := dialClient(t, srv.Addr())
	tc.send(Request{Op: OpPut, ID: 1, Key: 1, Val: 11})
	tc.recv(1)
	tc.c.Close()

	dom := st.shards[0].dom.(*ebr.Domain)
	churnConns(t, srv, 3)
	midTotal, _ := dom.Records()
	churnConns(t, srv, 30)
	endTotal, endLive := dom.Records()

	if endTotal > midTotal {
		t.Fatalf("EBR record list grew with accepted connections: %d -> %d", midTotal, endTotal)
	}
	// Steady state: worker handle + agitator guard, nothing from churn.
	if want := st.LiveHandles() + 1; endLive > want {
		t.Fatalf("live records = %d, want <= %d (workers + agitator)", endLive, want)
	}

	shutdownClean(t, srv, 5*time.Second)
}
