// Wire protocol for gosmrd: length-prefixed binary frames over TCP.
//
// Every frame is a 4-byte big-endian payload length followed by the
// payload. Requests and responses are fixed-size, so the codec is a
// handful of loads and stores and the only dynamic decision is the
// length check. Clients pipeline freely: requests carry a client-chosen
// ID, responses echo it, and the server may reorder responses across
// shards (within one shard they stay FIFO).
//
//	request  payload: op(1) id(4) key(8) val(8)   = 21 bytes
//	response payload: id(4) status(1) val(8)      = 13 bytes
//
// Decoding never panics on hostile input: every malformed frame maps to
// one of the typed errors below, and the server answers by closing the
// connection (a garbage length prefix poisons the rest of the byte
// stream, so per-request error responses would be meaningless).
package kvsvc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Opcodes.
//
// The OpPing contract: a ping is a liveness probe, not a data request.
// It is answered on the connection's reader goroutine without consuming
// an in-flight credit, so a ping succeeds (StatusOK, Val echoes the
// request's Val) even when every credit is held by queued mutations and
// data requests are being shed StatusOverloaded — a client at budget can
// still distinguish "server alive but saturated" from "server gone".
// Because pings skip the credit gate they are also excluded from
// response-ordering guarantees: a ping's response may overtake earlier
// data responses from the same connection. The one case a ping is
// dropped (no response at all) is a connection whose writer is already
// stalled past its uncredited headroom — the slow-writer eviction path
// is about to kill that connection anyway.
const (
	OpGet uint8 = 1 + iota
	OpPut
	OpDel
	OpPing
)

// Response statuses.
const (
	StatusOK uint8 = iota
	StatusNotFound
	StatusErr
	// StatusOverloaded is the shed signal: the server refused to execute
	// the request because the connection exceeded its in-flight budget or
	// the target shard queue stayed full past the dispatch timeout. The
	// request had no effect; clients should retry with backoff.
	StatusOverloaded
)

// MaxFrame is the largest accepted payload length. Both message kinds
// are tiny and fixed-size; the cap exists so a garbage length prefix
// cannot make the reader allocate or block for gigabytes.
const MaxFrame = 1 << 10

const (
	reqLen  = 21
	respLen = 13
	hdrLen  = 4
)

// Typed wire errors. ReadFrame and the Decode functions return exactly
// these (possibly wrapped with detail); the server treats any of them as
// a fatal connection error.
var (
	// ErrFrameTooLarge: the length prefix exceeds MaxFrame.
	ErrFrameTooLarge = errors.New("kvsvc: frame length exceeds MaxFrame")
	// ErrBadLength: the payload length does not match the fixed message
	// size (including zero-length frames).
	ErrBadLength = errors.New("kvsvc: frame length does not match message size")
	// ErrBadOp: unknown request opcode.
	ErrBadOp = errors.New("kvsvc: unknown opcode")
	// ErrBadStatus: unknown response status.
	ErrBadStatus = errors.New("kvsvc: unknown status")
	// ErrTruncated: the peer closed the connection mid-frame.
	ErrTruncated = errors.New("kvsvc: truncated frame")
)

// Request is one client→server message.
type Request struct {
	Op  uint8
	ID  uint32
	Key uint64
	Val uint64
}

// Response is one server→client message.
type Response struct {
	ID     uint32
	Status uint8
	Val    uint64
}

// AppendRequest appends r as a framed message to dst.
func AppendRequest(dst []byte, r Request) []byte {
	dst = binary.BigEndian.AppendUint32(dst, reqLen)
	dst = append(dst, r.Op)
	dst = binary.BigEndian.AppendUint32(dst, r.ID)
	dst = binary.BigEndian.AppendUint64(dst, r.Key)
	dst = binary.BigEndian.AppendUint64(dst, r.Val)
	return dst
}

// DecodeRequest decodes a request payload (the frame body, without the
// length prefix).
func DecodeRequest(p []byte) (Request, error) {
	if len(p) != reqLen {
		return Request{}, fmt.Errorf("%w: request payload is %d bytes, want %d", ErrBadLength, len(p), reqLen)
	}
	r := Request{
		Op:  p[0],
		ID:  binary.BigEndian.Uint32(p[1:5]),
		Key: binary.BigEndian.Uint64(p[5:13]),
		Val: binary.BigEndian.Uint64(p[13:21]),
	}
	if r.Op < OpGet || r.Op > OpPing {
		return Request{}, fmt.Errorf("%w: %d", ErrBadOp, r.Op)
	}
	return r, nil
}

// AppendResponse appends r as a framed message to dst.
func AppendResponse(dst []byte, r Response) []byte {
	dst = binary.BigEndian.AppendUint32(dst, respLen)
	dst = binary.BigEndian.AppendUint32(dst, r.ID)
	dst = append(dst, r.Status)
	dst = binary.BigEndian.AppendUint64(dst, r.Val)
	return dst
}

// DecodeResponse decodes a response payload.
func DecodeResponse(p []byte) (Response, error) {
	if len(p) != respLen {
		return Response{}, fmt.Errorf("%w: response payload is %d bytes, want %d", ErrBadLength, len(p), respLen)
	}
	r := Response{
		ID:     binary.BigEndian.Uint32(p[0:4]),
		Status: p[4],
		Val:    binary.BigEndian.Uint64(p[5:13]),
	}
	if r.Status > StatusOverloaded {
		return Response{}, fmt.Errorf("%w: %d", ErrBadStatus, r.Status)
	}
	return r, nil
}

// FrameReader incrementally decodes length-prefixed frames from a byte
// stream delivered in arbitrary chunks — the netpoll read path, where
// each poller wake-up hands over whatever the kernel had and a frame
// may be split at any byte boundary across wake-ups. Feed consumes one
// chunk and invokes emit once per complete frame payload, in order; an
// incomplete tail is buffered (bounded by hdrLen+MaxFrame plus the
// chunk that completed it) until later chunks finish the frame. The
// result is byte-for-byte identical to running ReadFrame over the
// concatenated stream: same payloads, same typed errors at the same
// positions.
//
// The payload slice passed to emit is only valid during the call. A
// zero FrameReader is ready to use. After Feed returns an error —
// either a malformed header (ErrFrameTooLarge, ErrBadLength) or an
// error from emit — the stream is poisoned and the reader must not be
// fed again; the server closes the connection, exactly as it does for
// the same errors from ReadFrame.
type FrameReader struct {
	pend []byte
}

// Feed consumes one chunk of the byte stream.
func (fr *FrameReader) Feed(p []byte, emit func(payload []byte) error) error {
	buf := p
	owned := false // buf aliases fr.pend, not the caller's chunk
	if len(fr.pend) > 0 {
		fr.pend = append(fr.pend, p...)
		buf = fr.pend
		owned = true
	}
	for len(buf) >= hdrLen {
		n := binary.BigEndian.Uint32(buf)
		if n > MaxFrame {
			return fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, MaxFrame)
		}
		if n == 0 {
			return fmt.Errorf("%w: zero-length frame", ErrBadLength)
		}
		end := hdrLen + int(n)
		if len(buf) < end {
			break
		}
		if err := emit(buf[hdrLen:end:end]); err != nil {
			return err
		}
		buf = buf[end:]
	}
	switch {
	case len(buf) == 0:
		fr.pend = fr.pend[:0]
		if cap(fr.pend) > 4<<10 {
			// A large burst grew the carry buffer; don't let a now-idle
			// conn pin it.
			fr.pend = nil
		}
	case owned:
		// Slide the incomplete tail to the front of its own buffer
		// (overlapping copy is fine).
		fr.pend = fr.pend[:copy(fr.pend, buf)]
	default:
		fr.pend = append(fr.pend[:0], buf...)
	}
	return nil
}

// Buffered reports bytes held for an incomplete frame. Nonzero at
// connection close means the peer hung up mid-frame (the FrameReader
// analogue of ReadFrame's ErrTruncated).
func (fr *FrameReader) Buffered() int { return len(fr.pend) }

// ReadFrame reads one length-prefixed payload from br into buf (which is
// grown as needed and returned re-sliced). A clean close at a frame
// boundary returns io.EOF; a close inside a frame returns ErrTruncated;
// an oversized or zero length prefix returns ErrFrameTooLarge or
// ErrBadLength without consuming the payload. Transport errors stay
// inspectable through the wrap: errors.Is(err, os.ErrDeadlineExceeded)
// distinguishes a read-deadline expiry from a torn stream, which is how
// the server attributes idle-timeout evictions.
func ReadFrame(br *bufio.Reader, buf []byte) ([]byte, error) {
	var hdr [hdrLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: %w", ErrTruncated, err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, MaxFrame)
	}
	if n == 0 {
		return nil, fmt.Errorf("%w: zero-length frame", ErrBadLength)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrTruncated, err)
	}
	return buf, nil
}
