// Package kvsvc is the sharded key-value service layer: the first
// subsystem in this repository that puts the reclamation schemes under
// real, network-shaped traffic (pipelined connections, skewed key
// popularity, bursts, graceful drain) instead of in-process benchmark
// loops.
//
// A Store is a fixed array of shards. Each shard owns its *own*
// reclamation domain — a core.Domain for HP++, an hp/ebr/pebr/nr domain
// otherwise — and its own arena-backed hash map: by default the
// split-ordered resizable map (internal/ds/somap), whose directory
// doubles as the shard fills, or the legacy fixed-size chaining map
// behind Config.Engine = "hashmap". The shard-per-domain layout is
// deliberate:
//
//   - reclamation pressure is confined: a stalled or slow reader on one
//     shard bounds that shard's garbage, not the whole store's;
//   - hazard registries and epoch record lists stay small, so Reclaim
//     scans and Collect walks stay proportional to one shard's workers;
//   - per-shard smr.Stats gauges make imbalance observable from the
//     admin endpoint (one hot shard shows up as one hot row).
//
// Keys are routed to shards with a splitmix64 stream seeded differently
// from the in-map bucket hash: if both moduli consumed the same mix, the
// keys owned by shard i would all satisfy mix(k) ≡ i (mod Shards) and —
// with power-of-two shard and bucket counts — would land in only
// 1/Shards of the shard's buckets.
//
// The Store is the embeddable core; Server in server.go fronts it with
// the wire protocol, per-shard worker pools and the admin endpoint.
package kvsvc

import (
	"fmt"
	"strings"
	"sync"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/ds/hashmap"
	"github.com/gosmr/gosmr/internal/ds/hhslist"
	"github.com/gosmr/gosmr/internal/ds/hmlist"
	"github.com/gosmr/gosmr/internal/ds/somap"
	"github.com/gosmr/gosmr/internal/ebr"
	"github.com/gosmr/gosmr/internal/hp"
	"github.com/gosmr/gosmr/internal/nbr"
	"github.com/gosmr/gosmr/internal/nr"
	"github.com/gosmr/gosmr/internal/pebr"
	"github.com/gosmr/gosmr/internal/smr"
	"github.com/gosmr/gosmr/internal/unsafefree"
)

// Schemes lists the reclamation schemes a Store can run on — the bench
// registry (bench.Schemes) minus RC, whose guards retain cross-bucket
// traces that the service's long-lived worker handles would never drain
// promptly. A pin test (schemes_test.go) enforces the "registry minus
// rc" relation so new schemes cannot be silently dropped here.
var Schemes = []string{"nr", "ebr", "pebr", "nbr", "hp", "hp++", "hp++ef", "hp-scot"}

// UnsafeScheme is the deliberately broken immediate-free control. It is
// accepted by NewStore so the stress harness can run the must-fail cell,
// but it is not in Schemes and gosmrd refuses it.
const UnsafeScheme = "unsafefree"

// ValidScheme reports whether scheme is servable (UnsafeScheme is not).
func ValidScheme(scheme string) bool {
	for _, s := range Schemes {
		if s == scheme {
			return true
		}
	}
	return false
}

// Handle is the per-worker operation surface. It is structurally
// identical to bench.Handle, so Store handles plug straight into the
// bench and stress harnesses. Handles are not safe for concurrent use.
type Handle interface {
	Get(key uint64) (uint64, bool)
	Insert(key, val uint64) bool
	Delete(key uint64) bool
}

// ArenaPool is the slice of the arena pool API the service and the
// harnesses need; every per-package pool wrapper satisfies it (it is the
// kvsvc-side twin of bench.PoolInfo, kept separate so bench can depend
// on kvsvc and not vice versa).
type ArenaPool interface {
	Name() string
	Stats() arena.Stats
	Mode() arena.Mode
	SetCount()
	SetDerefHook(func(uint64))
}

// Engines lists the per-shard map engines a Store can run on. "somap"
// (the default) is the split-ordered resizable hash map: the directory
// doubles as the shard fills, so a shard holds a million keys with the
// same p99 it shows at ten thousand. "hashmap" is the legacy fixed-size
// chaining map; chains grow linearly past Buckets items, so it is kept
// for comparison runs and for workloads with a known, bounded key set.
var Engines = []string{"somap", "hashmap"}

// ValidEngine reports whether engine names a known shard engine.
func ValidEngine(engine string) bool {
	for _, e := range Engines {
		if e == engine {
			return true
		}
	}
	return false
}

// Config parameterizes a Store.
type Config struct {
	// Shards is the number of independent (domain, map) pairs (default 8).
	Shards int
	// Scheme selects the reclamation scheme (default "hp++").
	Scheme string
	// Mode is the arena mode: ModeReuse to serve, ModeDetect to stress.
	Mode arena.Mode
	// Buckets is the per-shard bucket count (default 256). For the somap
	// engine this is only the *initial* directory size — the map doubles
	// itself past it on load; for hashmap it is fixed for the store's
	// lifetime.
	Buckets int
	// Engine selects the per-shard map ("somap" default, "hashmap"
	// legacy fixed-size).
	Engine string
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Scheme == "" {
		c.Scheme = "hp++"
	}
	if c.Buckets <= 0 {
		c.Buckets = 1 << 8
	}
	if c.Engine == "" {
		c.Engine = "somap"
	}
	return c
}

// shard is one (domain, map) pair. The closures capture the concrete
// scheme wiring exactly like the bench target registry does; newH,
// releaseH, live and finish must only be called under the owning Store's
// mutex.
type shard struct {
	dom      smr.Domain
	pools    []ArenaPool
	newH     func() Handle
	releaseH func(Handle)
	live     func() int
	finish   func()
	stall    func()
	// stallRelease finishes every participant stall parked, paired so
	// Drain (and post-stall experiments) can reach a fully reclaimed
	// shard again.
	stallRelease func()
	agitate      func()
}

// wireHandles installs a shard's handle lifecycle. Handles live in a set
// keyed by their concrete type: newH registers, releaseH finishes one
// handle and drops it (unknown handles are ignored), finish finishes every
// survivor and runs drainDomain, the scheme's final domain-wide
// reclamation pass. Before releaseH existed every wiring appended handles
// to an unbounded slice, so a server that acquired a handle per connection
// grew its hazard registry (and with it every ScanSet built from
// Registry.Len()) with connections ever accepted instead of peak
// concurrency.
func wireHandles[H interface {
	comparable
	Handle
}](s *shard, newHandle func() H, finishHandle func(H), drainDomain func()) {
	live := make(map[H]struct{})
	s.newH = func() Handle {
		h := newHandle()
		live[h] = struct{}{}
		return h
	}
	s.releaseH = func(h Handle) {
		hh, ok := h.(H)
		if !ok {
			return
		}
		if _, ok := live[hh]; !ok {
			return
		}
		delete(live, hh)
		finishHandle(hh)
	}
	s.live = func() int { return len(live) }
	s.finish = func() {
		for hh := range live {
			finishHandle(hh)
		}
		clear(live)
		if drainDomain != nil {
			drainDomain()
		}
	}
}

// newShard builds one (domain, map) pair for the configured engine. The
// somap and hashmap bodies are deliberately parallel: same domain
// wiring, same finish/stall/agitate closures, different map constructor.
func newShard(engine, scheme string, mode arena.Mode, buckets int) (*shard, error) {
	switch engine {
	case "somap":
		return newShardSomap(scheme, mode, buckets)
	case "hashmap":
		return newShardHashmap(scheme, mode, buckets)
	default:
		return nil, fmt.Errorf("kvsvc: unknown engine %q", engine)
	}
}

func newShardSomap(scheme string, mode arena.Mode, buckets int) (*shard, error) {
	s := &shard{}
	cfg := somap.Config{InitialBuckets: buckets}
	switch scheme {
	case "nr", "ebr", "pebr", "nbr", UnsafeScheme:
		var gd smr.GuardDomain
		switch scheme {
		case "nr":
			gd = nr.NewDomain()
		case "ebr":
			gd = ebr.NewDomain()
		case "pebr":
			gd = pebr.NewDomain()
		case "nbr":
			gd = nbr.NewDomain()
		default:
			gd = unsafefree.NewDomain()
		}
		pool := hhslist.NewPool(mode)
		m := somap.NewMapCS(pool, cfg)
		s.dom = gd
		s.pools = []ArenaPool{pool}
		wireHandles(s,
			func() *somap.HandleCS { return m.NewHandleCS(gd) },
			func(h *somap.HandleCS) { finishGuard(h.Guard()) },
			drainDomainCS(gd))
		s.stall, s.stallRelease = stallCS(gd)
		s.agitate = agitatorFor(gd)
	case "hp":
		dom := hp.NewDomain()
		pool := hmlist.NewPool(mode)
		m := somap.NewMapHP(pool, cfg)
		s.dom = dom
		s.pools = []ArenaPool{pool}
		wireHandles(s,
			func() *somap.HandleHP { return m.NewHandleHP(dom) },
			func(h *somap.HandleHP) { h.Thread().Finish() },
			func() { dom.NewThread(0).Reclaim() })
		s.stall, s.stallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
	case "hp++", "hp++ef":
		dom := core.NewDomain(core.Options{EpochFence: scheme == "hp++ef"})
		pool := hhslist.NewPool(mode)
		m := somap.NewMapHPP(pool, cfg)
		s.dom = dom
		s.pools = []ArenaPool{pool}
		wireHandles(s,
			func() *somap.HandleHPP { return m.NewHandleHPP(dom) },
			func(h *somap.HandleHPP) { h.Thread().Finish() },
			func() { dom.NewThread(0).Reclaim() })
		s.stall, s.stallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
	case "hp-scot":
		dom := hp.NewDomain()
		dom.Name = "hp-scot"
		pool := hhslist.NewPool(mode)
		m := somap.NewMapSCOT(pool, cfg)
		s.dom = dom
		s.pools = []ArenaPool{pool}
		wireHandles(s,
			func() *somap.HandleSCOT { return m.NewHandleSCOT(dom) },
			func(h *somap.HandleSCOT) { h.Thread().Finish() },
			func() { dom.NewThread(0).Reclaim() })
		s.stall, s.stallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
	default:
		return nil, fmt.Errorf("kvsvc: unknown scheme %q (valid: %s)",
			scheme, strings.Join(Schemes, ", "))
	}
	return s, nil
}

func newShardHashmap(scheme string, mode arena.Mode, buckets int) (*shard, error) {
	s := &shard{}
	switch scheme {
	case "nr", "ebr", "pebr", "nbr", UnsafeScheme:
		var gd smr.GuardDomain
		switch scheme {
		case "nr":
			gd = nr.NewDomain()
		case "ebr":
			gd = ebr.NewDomain()
		case "pebr":
			gd = pebr.NewDomain()
		case "nbr":
			gd = nbr.NewDomain()
		default:
			gd = unsafefree.NewDomain()
		}
		pool := hhslist.NewPool(mode)
		m := hashmap.NewMapCS(pool, buckets)
		s.dom = gd
		s.pools = []ArenaPool{pool}
		wireHandles(s,
			func() *hashmap.HandleCS { return m.NewHandleCS(gd) },
			func(h *hashmap.HandleCS) { finishGuard(h.Guard()) },
			drainDomainCS(gd))
		s.stall, s.stallRelease = stallCS(gd)
		s.agitate = agitatorFor(gd)
	case "hp":
		dom := hp.NewDomain()
		pool := hmlist.NewPool(mode)
		m := hashmap.NewMapHP(pool, buckets)
		s.dom = dom
		s.pools = []ArenaPool{pool}
		wireHandles(s,
			func() *hashmap.HandleHP { return m.NewHandleHP(dom) },
			func(h *hashmap.HandleHP) { h.Thread().Finish() },
			func() { dom.NewThread(0).Reclaim() })
		s.stall, s.stallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
	case "hp++", "hp++ef":
		dom := core.NewDomain(core.Options{EpochFence: scheme == "hp++ef"})
		pool := hhslist.NewPool(mode)
		m := hashmap.NewMapHPP(pool, buckets)
		s.dom = dom
		s.pools = []ArenaPool{pool}
		wireHandles(s,
			func() *hashmap.HandleHPP { return m.NewHandleHPP(dom) },
			func(h *hashmap.HandleHPP) { h.Thread().Finish() },
			func() { dom.NewThread(0).Reclaim() })
		s.stall, s.stallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
	case "hp-scot":
		dom := hp.NewDomain()
		dom.Name = "hp-scot"
		pool := hhslist.NewPool(mode)
		m := hashmap.NewMapSCOT(pool, buckets)
		s.dom = dom
		s.pools = []ArenaPool{pool}
		wireHandles(s,
			func() *hashmap.HandleSCOT { return m.NewHandleSCOT(dom) },
			func(h *hashmap.HandleSCOT) { h.Thread().Finish() },
			func() { dom.NewThread(0).Reclaim() })
		s.stall, s.stallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
	default:
		return nil, fmt.Errorf("kvsvc: unknown scheme %q (valid: %s)",
			scheme, strings.Join(Schemes, ", "))
	}
	return s, nil
}

// agitatorFor returns one reclamation-pressure pulse for CS domains (the
// stress harness's storm injector): an epoch-advance/ejection attempt.
// The closure owns its guard and must be called from a single goroutine.
func agitatorFor(d smr.Domain) func() {
	switch dom := d.(type) {
	case *ebr.Domain:
		g := dom.NewGuardEBR()
		return func() { g.Collect() }
	case *pebr.Domain:
		g := dom.NewGuardPEBR(1)
		return func() { g.Collect() }
	case *nbr.Domain:
		g := dom.NewGuardNBR(1)
		return func() { g.Collect() }
	}
	return nil
}

// finishGuard releases a CS-style guard. EBR/PEBR guards have a full
// Finish lifecycle: the epoch record is recycled, shields are revoked and
// leftover bag entries are orphaned for a surviving guard to free. NR and
// unsafefree guards hold nothing.
func finishGuard(g smr.Guard) {
	switch gg := g.(type) {
	case *ebr.Guard:
		gg.Finish()
	case *pebr.Guard:
		gg.Finish()
	case *nbr.Guard:
		gg.Finish()
	}
}

// drainRounds is how many collection passes the shard-finish reclamation
// sweeps run. Epoch schemes need ~3 passes for a freshly retired node
// (advance to e+1, e+2, then free); the extra headroom absorbs adopted
// orphans that re-enter the bag mid-sweep. Bounded so a stalled pin (the
// robustness adversary) cannot hang Drain.
const drainRounds = 8

// drainDomainCS returns the post-release reclamation pass for CS domains:
// a fresh temporary guard adopts everything the finished handles orphaned
// and collects until the epoch outruns the retire horizon. nr and
// unsafefree domains free immediately (or never), so there is nothing to
// drain.
func drainDomainCS(gd smr.GuardDomain) func() {
	switch dom := gd.(type) {
	case *ebr.Domain:
		return func() {
			g := dom.NewGuardEBR()
			for i := 0; i < drainRounds; i++ {
				g.Collect()
			}
			g.Finish()
		}
	case *pebr.Domain:
		return func() {
			g := dom.NewGuardPEBR(1)
			for i := 0; i < drainRounds; i++ {
				g.Collect()
			}
			g.Finish()
		}
	case *nbr.Domain:
		return func() {
			g := dom.NewGuardNBR(1)
			for i := 0; i < drainRounds; i++ {
				g.Collect()
			}
			g.Finish()
		}
	}
	return nil
}

// stallCS returns the paired park/release closures for CS domains: stall
// pins a fresh guard that never progresses (the §4.4 robustness
// adversary) and stallRelease finishes every guard stall parked so the
// shard can drain afterwards. Both must be called from one goroutine.
func stallCS(gd smr.GuardDomain) (stall, release func()) {
	var parked []smr.Guard
	stall = func() {
		g := gd.NewGuard(1)
		g.Pin()
		parked = append(parked, g)
	}
	release = func() {
		for _, g := range parked {
			switch gg := g.(type) {
			case *ebr.Guard:
				gg.Finish()
			case *pebr.Guard:
				gg.Finish()
			case *nbr.Guard:
				gg.Finish()
			default:
				gg.Unpin()
			}
		}
		parked = nil
	}
	return stall, release
}

// hazardThread is the slot surface shared by *hp.Thread and
// *core.Thread, so one stall helper covers both hazard families.
type hazardThread interface {
	Protect(i int, ref uint64)
	Clear(i int)
	Finish()
}

// stallHazard is stallCS for the hazard families: stall occupies one
// hazard slot with a never-cleared announcement, release clears the slot
// and finishes the thread.
func stallHazard(newThread func() hazardThread) (stall, release func()) {
	var parked []hazardThread
	stall = func() {
		t := newThread()
		t.Protect(0, 1)
		parked = append(parked, t)
	}
	release = func() {
		for _, t := range parked {
			t.Clear(0)
			t.Finish()
		}
		parked = nil
	}
	return stall, release
}

// Store is the sharded key-value store: Config.Shards independent
// (reclamation domain, hash map) pairs behind a key router. Methods on
// the Store itself are safe for concurrent use; the Handles it hands out
// are per-worker.
type Store struct {
	cfg    Config
	shards []*shard

	mu      sync.Mutex
	drained bool
}

// NewStore builds a store with cfg (zero fields take defaults).
func NewStore(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	st := &Store{cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		sh, err := newShard(cfg.Engine, cfg.Scheme, cfg.Mode, cfg.Buckets)
		if err != nil {
			return nil, err
		}
		st.shards = append(st.shards, sh)
	}
	return st, nil
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// Scheme returns the configured scheme name.
func (s *Store) Scheme() string { return s.cfg.Scheme }

// Engine returns the configured shard-engine name.
func (s *Store) Engine() string { return s.cfg.Engine }

// shardMix is a splitmix64 finalizer on a different stream than the
// in-map bucket hash (see the package comment for why that matters).
func shardMix(x uint64) uint64 {
	x ^= 0xA24BAED4963EE407
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardOf returns the index of the shard owning key.
func (s *Store) ShardOf(key uint64) int {
	return int(shardMix(key) % uint64(len(s.shards)))
}

// routedHandle fans a Handle out across every shard by key.
type routedHandle struct {
	s    *Store
	subs []Handle
}

func (h *routedHandle) at(key uint64) Handle { return h.subs[h.s.ShardOf(key)] }

func (h *routedHandle) Get(key uint64) (uint64, bool) { return h.at(key).Get(key) }
func (h *routedHandle) Insert(key, val uint64) bool   { return h.at(key).Insert(key, val) }
func (h *routedHandle) Delete(key uint64) bool        { return h.at(key).Delete(key) }

// NewHandle returns a per-worker handle spanning all shards: each op is
// routed to the shard owning its key. The worker acquires one guard or
// thread in every shard's domain.
func (s *Store) NewHandle() Handle {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := &routedHandle{s: s, subs: make([]Handle, len(s.shards))}
	for i, sh := range s.shards {
		h.subs[i] = sh.newH()
	}
	return h
}

// NewShardHandle returns a per-worker handle bound to shard i only — the
// server's shard workers use these so each worker participates in exactly
// one domain. The caller must route only shard-i keys through it.
func (s *Store) NewShardHandle(i int) Handle {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shards[i].newH()
}

// ReleaseShardHandle finishes a handle obtained from NewShardHandle(i):
// pending retires are freed or orphaned and the handle's hazard slots or
// epoch record return to shard i's domain for reuse by future handles.
// The handle must not be used afterwards. No-op after Drain (Drain
// already finished every live handle) and for handles the shard does not
// recognize.
func (s *Store) ReleaseShardHandle(i int, h Handle) {
	if h == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.drained {
		return
	}
	s.shards[i].releaseH(h)
}

// ReleaseHandle finishes a handle obtained from NewHandle or
// NewShardHandle. Routed handles release their per-shard sub-handles;
// shard-bound handles are offered to every shard (the live sets are
// disjoint, so exactly one accepts). The handle must not be used
// afterwards. No-op after Drain.
func (s *Store) ReleaseHandle(h Handle) {
	if h == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.drained {
		return
	}
	if rh, ok := h.(*routedHandle); ok {
		for i, sub := range rh.subs {
			s.shards[i].releaseH(sub)
		}
		return
	}
	for _, sh := range s.shards {
		sh.releaseH(h)
	}
}

// LiveHandles returns the number of handles handed out and not yet
// released (routed handles count once per shard). A serving Store should
// see this stabilize at workers + pooled readers; growth proportional to
// connections ever accepted is the leak ReleaseShardHandle exists to
// prevent.
func (s *Store) LiveHandles() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, sh := range s.shards {
		n += sh.live()
	}
	return n
}

// Unreclaimed returns the store-wide retired-but-unfreed node count.
func (s *Store) Unreclaimed() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.dom.Unreclaimed()
	}
	return n
}

// PeakUnreclaimed returns the sum of per-shard unreclaimed high-water
// marks (an upper bound on the store-wide peak: the shards need not have
// peaked simultaneously).
func (s *Store) PeakUnreclaimed() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.dom.PeakUnreclaimed()
	}
	return n
}

// ShardStats returns one smr.Stats per shard with the arena live and
// quarantine gauges filled from the shard's pools.
func (s *Store) ShardStats() []smr.Stats {
	out := make([]smr.Stats, len(s.shards))
	for i, sh := range s.shards {
		st := sh.dom.Stats()
		for _, p := range sh.pools {
			ps := p.Stats()
			st.ArenaLive += ps.Live
			if p.Mode() == arena.ModeDetect {
				st.ArenaQuarantined += ps.Frees
			}
		}
		out[i] = st
	}
	return out
}

// StatsTotal aggregates the raw per-shard scheme stats (no arena fill:
// the bench harness fills arena gauges from Pools itself).
func (s *Store) StatsTotal() smr.Stats {
	per := make([]smr.Stats, len(s.shards))
	for i, sh := range s.shards {
		per[i] = sh.dom.Stats()
	}
	return AggregateStats(per)
}

// AggregateStats folds per-shard snapshots into one store-wide view:
// flows and gauges are summed, the epoch is the max (domains advance
// independently) and the epoch lag is the worst shard's lag.
func AggregateStats(per []smr.Stats) smr.Stats {
	var t smr.Stats
	for i, st := range per {
		if i == 0 {
			t.Scheme = st.Scheme
		}
		t.Unreclaimed += st.Unreclaimed
		t.PeakUnreclaimed += st.PeakUnreclaimed
		t.TotalRetired += st.TotalRetired
		t.TotalFreed += st.TotalFreed
		t.Scans += st.Scans
		t.ScanNs += st.ScanNs
		t.RetiredBudget += st.RetiredBudget
		t.HazardSlots += st.HazardSlots
		t.HazardSlotsInUse += st.HazardSlotsInUse
		t.Ejections += st.Ejections
		t.Neutralizations += st.Neutralizations
		t.NeutralizedStalled += st.NeutralizedStalled
		t.ArenaLive += st.ArenaLive
		t.ArenaQuarantined += st.ArenaQuarantined
		if st.Epoch > t.Epoch {
			t.Epoch = st.Epoch
		}
		if st.EpochLag > t.EpochLag {
			t.EpochLag = st.EpochLag
		}
	}
	if t.Scans > 0 {
		t.FreedPerScan = float64(t.TotalFreed) / float64(t.Scans)
	}
	return t
}

// ArenaTotals sums the arena accounting of every shard pool.
func (s *Store) ArenaTotals() arena.Stats {
	var t arena.Stats
	t.Name = "kvsvc"
	for _, sh := range s.shards {
		for _, p := range sh.pools {
			ps := p.Stats()
			t.Allocs += ps.Allocs
			t.Frees += ps.Frees
			t.Live += ps.Live
			t.HighWater += ps.HighWater
			t.Bytes += ps.Bytes
			t.PeakBytes += ps.PeakBytes
			t.UAF += ps.UAF
			t.DoubleFree += ps.DoubleFree
		}
	}
	return t
}

// BugCounts returns the detect-mode violation totals (use-after-free
// derefs, double frees) across every shard pool.
func (s *Store) BugCounts() (uaf, doubleFree int64) {
	t := s.ArenaTotals()
	return t.UAF, t.DoubleFree
}

// Pools lists every arena pool backing the store (one per shard).
func (s *Store) Pools() []ArenaPool {
	var ps []ArenaPool
	for _, sh := range s.shards {
		ps = append(ps, sh.pools...)
	}
	return ps
}

// Drain finishes every handle the store has handed out — flushing
// pending invalidations, reclaiming what the schemes allow, releasing
// hazard slots and guards — and runs a final reclamation pass per shard.
// Handles must not be used after Drain. Idempotent.
func (s *Store) Drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.drained {
		return
	}
	s.drained = true
	for _, sh := range s.shards {
		sh.finish()
	}
}

// Stall parks a never-progressing participant on shard 0's domain (the
// §4.4 robustness adversary, scoped to one shard by construction).
func (s *Store) Stall() { s.shards[0].stall() }

// StallRelease finishes every participant Stall parked, letting shard 0
// reclaim its backlog; pair every Stall with a StallRelease before Drain
// when the store must end fully reclaimed.
func (s *Store) StallRelease() { s.shards[0].stallRelease() }

// Agitator returns a reclamation-pressure pulse covering every shard, or
// nil when the scheme has no external collection pulse (HP family, NR).
// The returned closure must be called from a single goroutine.
func (s *Store) Agitator() func() {
	var pulses []func()
	for _, sh := range s.shards {
		if sh.agitate != nil {
			pulses = append(pulses, sh.agitate)
		}
	}
	if len(pulses) == 0 {
		return nil
	}
	return func() {
		for _, p := range pulses {
			p()
		}
	}
}

// Put upserts key→val through h. The chaining maps' Insert is
// insert-if-absent, so an existing key is deleted first; the two steps
// are individually linearizable but not atomic together — concurrent
// puts to one key each win a step and the final value is one of the
// contenders', which is the usual last-writer-wins cache contract.
//
// The loop retries until its own insert wins. Each failed round means
// some operation on the key completed (our delete displaced a value, or a
// concurrent insert/delete did), so the retry is lock-free system-wide —
// an upsert can only lose a round to another contender's progress. The
// old 8-round cap turned a lost race streak on a hot key into StatusErr
// for a well-behaved client.
func Put(h Handle, key, val uint64) bool {
	for {
		if h.Insert(key, val) {
			return true
		}
		h.Delete(key)
	}
}
