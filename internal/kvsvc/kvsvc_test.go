package kvsvc

import (
	"sync"
	"testing"

	"github.com/gosmr/gosmr/internal/arena"
)

func TestStoreBasicAllSchemes(t *testing.T) {
	for _, scheme := range Schemes {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			st, err := NewStore(Config{Shards: 4, Scheme: scheme, Mode: arena.ModeDetect, Buckets: 32})
			if err != nil {
				t.Fatal(err)
			}
			h := st.NewHandle()
			for k := uint64(0); k < 200; k++ {
				if !h.Insert(k, k*10) {
					t.Fatalf("insert %d failed", k)
				}
			}
			for k := uint64(0); k < 200; k++ {
				v, ok := h.Get(k)
				if !ok || v != k*10 {
					t.Fatalf("get %d = (%d,%v), want (%d,true)", k, v, ok, k*10)
				}
			}
			for k := uint64(0); k < 200; k += 2 {
				if !h.Delete(k) {
					t.Fatalf("delete %d failed", k)
				}
			}
			for k := uint64(0); k < 200; k++ {
				_, ok := h.Get(k)
				if want := k%2 == 1; ok != want {
					t.Fatalf("get %d present=%v, want %v", k, ok, want)
				}
			}
			st.Drain()
			if uaf, df := st.BugCounts(); uaf != 0 || df != 0 {
				t.Fatalf("arena violations: uaf=%d doublefree=%d", uaf, df)
			}
		})
	}
}

func TestStoreRejectsUnknownScheme(t *testing.T) {
	if _, err := NewStore(Config{Scheme: "nosuch"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if ValidScheme(UnsafeScheme) {
		t.Fatal("unsafefree reported servable")
	}
	if !ValidScheme("hp++") {
		t.Fatal("hp++ reported unservable")
	}
}

// TestShardRoutingSpreads checks that a dense key range reaches every
// shard, and that each key consistently maps to one shard.
func TestShardRoutingSpreads(t *testing.T) {
	st, err := NewStore(Config{Shards: 8, Scheme: "hp++", Buckets: 32})
	if err != nil {
		t.Fatal(err)
	}
	hit := make([]int, st.NumShards())
	for k := uint64(0); k < 4096; k++ {
		i := st.ShardOf(k)
		if j := st.ShardOf(k); j != i {
			t.Fatalf("key %d routed to %d then %d", k, i, j)
		}
		hit[i]++
	}
	for i, n := range hit {
		// With 4096 keys over 8 shards a fair hash puts ~512 on each;
		// require at least a quarter of that to catch a broken router
		// without flaking on hash variance.
		if n < 128 {
			t.Fatalf("shard %d got only %d/4096 keys: routing is skewed %v", i, n, hit)
		}
	}

	h := st.NewHandle()
	for k := uint64(0); k < 1024; k++ {
		h.Insert(k, k)
	}
	for i, sst := range st.ShardStats() {
		if sst.ArenaLive == 0 {
			t.Fatalf("shard %d has no live nodes after a dense prefill", i)
		}
	}
	st.Drain()
}

func TestStoreConcurrentDetect(t *testing.T) {
	st, err := NewStore(Config{Shards: 4, Scheme: "hp++", Mode: arena.ModeDetect, Buckets: 32})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	ops := 3000
	if testing.Short() {
		ops = 600
	}
	handles := make([]Handle, workers)
	for i := range handles {
		handles[i] = st.NewHandle()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(h Handle, seed uint64) {
			defer wg.Done()
			s := seed
			for i := 0; i < ops; i++ {
				s ^= s << 13
				s ^= s >> 7
				s ^= s << 17
				k := s % 64
				switch s % 3 {
				case 0:
					h.Insert(k, s)
				case 1:
					h.Delete(k)
				default:
					h.Get(k)
				}
			}
		}(handles[w], uint64(w)*0x9E3779B97F4A7C15+1)
	}
	wg.Wait()
	st.Drain()
	if uaf, df := st.BugCounts(); uaf != 0 || df != 0 {
		t.Fatalf("arena violations under churn: uaf=%d doublefree=%d", uaf, df)
	}
	total := st.StatsTotal()
	if total.TotalRetired == 0 {
		t.Fatal("no nodes retired: the workload never exercised reclamation")
	}
}

func TestAggregateStatsSums(t *testing.T) {
	st, err := NewStore(Config{Shards: 4, Scheme: "ebr", Buckets: 32})
	if err != nil {
		t.Fatal(err)
	}
	h := st.NewHandle()
	for k := uint64(0); k < 512; k++ {
		h.Insert(k, k)
	}
	for k := uint64(0); k < 512; k++ {
		h.Delete(k)
	}
	per := st.ShardStats()
	tot := AggregateStats(per)
	var retired, freed int64
	for _, p := range per {
		retired += p.TotalRetired
		freed += p.TotalFreed
	}
	if tot.TotalRetired != retired || tot.TotalFreed != freed {
		t.Fatalf("aggregate flows %d/%d != summed %d/%d",
			tot.TotalRetired, tot.TotalFreed, retired, freed)
	}
	if retired == 0 {
		t.Fatal("512 deletes retired nothing")
	}
	if tot.Scheme != "ebr" {
		t.Fatalf("aggregate scheme %q", tot.Scheme)
	}
	st.Drain()
	if got := st.Unreclaimed(); got != 0 {
		t.Fatalf("unreclaimed after drain = %d, want 0", got)
	}
}

func TestPutUpserts(t *testing.T) {
	st, err := NewStore(Config{Shards: 2, Scheme: "hp++", Buckets: 16})
	if err != nil {
		t.Fatal(err)
	}
	h := st.NewHandle()
	if !Put(h, 7, 1) {
		t.Fatal("first put failed")
	}
	if !Put(h, 7, 2) {
		t.Fatal("overwriting put failed")
	}
	if v, ok := h.Get(7); !ok || v != 2 {
		t.Fatalf("get after upsert = (%d,%v), want (2,true)", v, ok)
	}
	st.Drain()
}

// TestPutContendedHotKey: concurrent upserts on ONE key must all
// succeed. The old Put gave up after 8 insert/delete attempts and
// returned false, which the server surfaced as StatusErr — under real
// contention a hot key made puts fail spuriously. Put now retries until
// its insert wins.
func TestPutContendedHotKey(t *testing.T) {
	st, err := NewStore(Config{Shards: 1, Scheme: "hp++", Mode: arena.ModeDetect, Buckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		rounds  = 400
		hotKey  = 42
	)
	var wg sync.WaitGroup
	fails := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, h Handle) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if !Put(h, hotKey, uint64(w*rounds+i)) {
					fails[w]++
				}
			}
		}(w, st.NewHandle())
	}
	wg.Wait()
	for w, n := range fails {
		if n != 0 {
			t.Fatalf("worker %d: %d puts failed on the hot key; Put must retry until it wins", w, n)
		}
	}
	if _, ok := st.NewHandle().Get(hotKey); !ok {
		t.Fatal("hot key missing after the storm")
	}
	st.Drain()
	if uaf, df := st.BugCounts(); uaf != 0 || df != 0 {
		t.Fatalf("arena violations: uaf=%d doublefree=%d", uaf, df)
	}
}

func TestDrainIsIdempotent(t *testing.T) {
	st, err := NewStore(Config{Shards: 2, Scheme: "pebr", Buckets: 16})
	if err != nil {
		t.Fatal(err)
	}
	h := st.NewHandle()
	for k := uint64(0); k < 64; k++ {
		h.Insert(k, k)
		h.Delete(k)
	}
	st.Drain()
	st.Drain()
	if got := st.Unreclaimed(); got != 0 {
		t.Fatalf("unreclaimed after drain = %d", got)
	}
}
