package ebr

import (
	"sync"
	"testing"

	"github.com/gosmr/gosmr/internal/arena"
)

func TestRetireEventuallyFrees(t *testing.T) {
	d := NewDomain()
	p := arena.NewPool[uint64]("t", arena.ModeDetect)
	g := d.NewGuardEBR()
	g.Pin()
	ref, _ := p.Alloc()
	g.Retire(ref, p)
	g.Unpin()
	g.Drain()
	if p.Live(ref) {
		t.Fatal("retired node not freed after drain")
	}
	if d.Unreclaimed() != 0 {
		t.Fatalf("unreclaimed = %d", d.Unreclaimed())
	}
}

func TestPinnedGuardBlocksReclamation(t *testing.T) {
	d := NewDomain()
	p := arena.NewPool[uint64]("t", arena.ModeDetect)
	reader := d.NewGuardEBR()
	writer := d.NewGuardEBR()

	reader.Pin() // stalls at the current epoch

	writer.Pin()
	ref, _ := p.Alloc()
	writer.Retire(ref, p)
	writer.Unpin()
	for i := 0; i < 10; i++ {
		writer.Collect()
	}
	if !p.Live(ref) {
		t.Fatal("node freed while a pre-existing pin could still hold it")
	}

	reader.Unpin()
	writer.Drain()
	if p.Live(ref) {
		t.Fatal("node not freed after the stalled pin ended")
	}
}

func TestEpochAdvances(t *testing.T) {
	d := NewDomain()
	g := d.NewGuardEBR()
	e0 := d.Epoch()
	g.Pin()
	g.Collect() // all pinned threads (just us) are at the current epoch
	g.Unpin()
	if d.Epoch() != e0+1 {
		t.Fatalf("epoch = %d, want %d", d.Epoch(), e0+1)
	}
}

func TestLaggingPinBlocksAdvance(t *testing.T) {
	d := NewDomain()
	lag := d.NewGuardEBR()
	lag.Pin()
	g := d.NewGuardEBR()
	g.Pin()
	g.Collect() // advances once: lag is at current epoch
	e1 := d.Epoch()
	g.Unpin()
	g.Pin() // g now at e1; lag still at e1-1
	g.Collect()
	if d.Epoch() != e1 {
		t.Fatalf("epoch advanced past a lagging pin: %d > %d", d.Epoch(), e1)
	}
	lag.Unpin()
	g.Collect()
	if d.Epoch() != e1+1 {
		t.Fatalf("epoch = %d, want %d", d.Epoch(), e1+1)
	}
}

// TestUnboundedGarbageWithStalledThread demonstrates EBR's non-robustness
// (§2.4): a single stalled pin makes retired garbage grow without bound.
func TestUnboundedGarbageWithStalledThread(t *testing.T) {
	d := NewDomain()
	p := arena.NewPool[uint64]("t", arena.ModeReuse)
	stalled := d.NewGuardEBR()
	stalled.Pin()

	w := d.NewGuardEBR()
	const n = 5000
	for i := 0; i < n; i++ {
		w.Pin()
		ref, _ := p.Alloc()
		w.Retire(ref, p)
		w.Unpin()
	}
	if d.Unreclaimed() < n-2*DefaultCollectEvery {
		t.Fatalf("expected ~%d unreclaimed with a stalled pin, got %d", n, d.Unreclaimed())
	}
	stalled.Unpin()
	w.Drain()
	if d.Unreclaimed() != 0 {
		t.Fatalf("unreclaimed after drain = %d", d.Unreclaimed())
	}
}

func TestConcurrentRetire(t *testing.T) {
	d := NewDomain()
	p := arena.NewPool[uint64]("t", arena.ModeReuse)
	const workers = 8
	const each = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := d.NewGuardEBR()
			for i := 0; i < each; i++ {
				g.Pin()
				ref, _ := p.Alloc()
				g.Retire(ref, p)
				g.Unpin()
			}
			g.Drain()
		}()
	}
	wg.Wait()
	st := p.Stats()
	if st.Live != 0 {
		t.Fatalf("leaked %d nodes", st.Live)
	}
	if st.DoubleFree != 0 {
		t.Fatalf("double frees: %d", st.DoubleFree)
	}
}

// TestFinishReleasesRecordAndOrphans: a finished guard's record must be
// recyclable by the next guard and its leftover bag must be adopted (with
// retire epochs intact) and eventually freed by a survivor.
func TestFinishReleasesRecordAndOrphans(t *testing.T) {
	d := NewDomain()
	p := arena.NewPool[uint64]("fin", arena.ModeDetect)

	g := d.NewGuardEBR()
	g.Pin()
	ref, _ := p.Alloc()
	g.Retire(ref, p)
	g.Unpin()
	g.Finish() // the entry is too young to free inline -> orphaned

	if total, live := d.Records(); total != 1 || live != 0 {
		t.Fatalf("records after finish = (%d,%d), want (1,0)", total, live)
	}

	g2 := d.NewGuardEBR()
	if total, live := d.Records(); total != 1 || live != 1 {
		t.Fatalf("record not recycled: (%d,%d), want (1,1)", total, live)
	}
	g2.Collect() // adopt the orphan
	g2.Drain()
	if p.Live(ref) {
		t.Fatal("orphaned entry never freed")
	}
	if d.Unreclaimed() != 0 {
		t.Fatalf("unreclaimed = %d", d.Unreclaimed())
	}
	g2.Finish()
}

// TestGuardChurnRecyclesRecords models a server handing a guard to every
// connection it accepts: sequential churn must not grow the record list
// (one record recycled forever) and must leak nothing.
func TestGuardChurnRecyclesRecords(t *testing.T) {
	d := NewDomain()
	p := arena.NewPool[uint64]("churn", arena.ModeReuse)
	for i := 0; i < 100; i++ {
		g := d.NewGuardEBR()
		g.Pin()
		ref, _ := p.Alloc()
		g.Retire(ref, p)
		g.Unpin()
		g.Finish()
	}
	if total, live := d.Records(); total != 1 || live != 0 {
		t.Fatalf("sequential churn records = (%d,%d), want (1,0)", total, live)
	}
	g := d.NewGuardEBR()
	g.Collect() // adopt whatever the last finishers orphaned
	g.Drain()
	g.Finish()
	if got := d.Unreclaimed(); got != 0 {
		t.Fatalf("unreclaimed after churn drain = %d", got)
	}
}

func TestConcurrentGuardChurn(t *testing.T) {
	d := NewDomain()
	p := arena.NewPool[uint64]("churn-c", arena.ModeReuse)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g := d.NewGuardEBR()
				g.Pin()
				ref, _ := p.Alloc()
				g.Retire(ref, p)
				g.Unpin()
				g.Finish()
			}
		}()
	}
	wg.Wait()
	total, live := d.Records()
	if live != 0 {
		t.Fatalf("live records after churn = %d, want 0", live)
	}
	if total > workers {
		t.Fatalf("records = %d, want <= %d (peak concurrency)", total, workers)
	}
	g := d.NewGuardEBR()
	g.Collect()
	g.Drain()
	g.Finish()
	st := p.Stats()
	if st.Live != 0 {
		t.Fatalf("leaked %d nodes", st.Live)
	}
	if st.DoubleFree != 0 {
		t.Fatalf("double frees: %d", st.DoubleFree)
	}
}

// TestZeroValueDomainCollects is the regression test for zero-value
// &Domain{} literals: CollectEvery == 0 selects the adaptive cadence
// (historically it panicked with a zero modulus), so retire/collect must
// work and eventually free everything.
func TestZeroValueDomainCollects(t *testing.T) {
	d := &Domain{}
	p := arena.NewPool[uint64]("zv", arena.ModeReuse)
	g := d.NewGuardEBR()
	for i := 0; i < 2*DefaultCollectEvery; i++ {
		g.Pin()
		ref, _ := p.Alloc()
		g.Retire(ref, p)
		g.Unpin()
	}
	g.Drain()
	if got := d.Unreclaimed(); got != 0 {
		t.Fatalf("unreclaimed after drain = %d, want 0", got)
	}
}

// TestZeroValueDomainEpochInit covers the satellite audit of the "retired
// at e, free at min >= e+2" arithmetic on zero-value domains: the collect
// path only ever *adds* 2 to a retire epoch (it never computes e-2), so
// epoch 0 cannot underflow — but a zero-value domain used to run its whole
// life at epochs 0,1,2,... while NewDomain starts at 2. acquireRec now
// lazily CASes the epoch 0 -> 2 so both construction paths are
// indistinguishable, including in Epoch()/Stats diagnostics.
func TestZeroValueDomainEpochInit(t *testing.T) {
	d := &Domain{}
	if got := d.Epoch(); got != 0 {
		t.Fatalf("untouched zero-value epoch = %d, want 0", got)
	}
	g := d.NewGuardEBR()
	if got := d.Epoch(); got != 2 {
		t.Fatalf("epoch after first guard = %d, want 2 (lazy init)", got)
	}
	p := arena.NewPool[uint64]("zv-epoch", arena.ModeDetect)
	g.Pin()
	ref, _ := p.Alloc()
	g.Retire(ref, p)
	g.Unpin()
	g.Drain()
	if p.Live(ref) {
		t.Fatal("retired node not freed on zero-value domain")
	}
	if got := d.Stats().Epoch; got < 2 {
		t.Fatalf("Stats().Epoch = %d, want >= 2", got)
	}
}
