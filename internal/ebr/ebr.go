// Package ebr implements epoch-based reclamation (Fraser 2004; the
// crossbeam-epoch design the paper benchmarks as "EBR").
//
// Threads pin the global epoch while operating on a data structure; a node
// retired at epoch e may be freed once every pinned thread has advanced to
// at least e+2, because any thread that could still hold a reference to it
// pinned an epoch ≤ e+1. EBR is fast and universally applicable but not
// robust: a single stalled pinned thread blocks epoch advancement and the
// retired set grows without bound (see the robustness tests and Figure 11).
package ebr

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/gosmr/gosmr/internal/smr"
)

// DefaultCollectEvery is the number of retires between collection attempts
// under the fixed cadence; it doubles as the floor of the adaptive
// threshold.
const DefaultCollectEvery = 128

// Domain is an epoch-based reclamation domain shared by any number of
// guards.
type Domain struct {
	epoch   atomic.Uint64
	threads atomic.Pointer[rec]
	g       smr.Garbage
	sm      smr.ScanMeter
	budget  smr.Budget
	guards  atomic.Int64 // live (unfinished) guards: the H of the adaptive threshold

	// orphans holds epoch-tagged bags abandoned by finished guards; any
	// surviving guard's next Collect adopts them. Epochs ride along so an
	// adopted entry frees under exactly the rule its retirer would have
	// applied. Spinlock + atomic count mirror smr.OrphanList (orphan
	// traffic is guard shutdown only).
	orphanMu sync.Mutex
	orphanN  atomic.Int32
	orphans  []entry

	// CollectEvery, if set > 0 before use, pins the fixed per-guard
	// cadence: one collection attempt every CollectEvery retires. When
	// <= 0 (the zero value and the NewDomain default) the cadence is
	// adaptive: a guard collects when the domain-wide retired total (the
	// shared smr.Budget) reaches max(DefaultCollectEvery, k·guards).
	CollectEvery int
}

// rec is a per-guard epoch record. Records are recycled, never removed.
type rec struct {
	// state packs epoch<<1 | pinned.
	state atomic.Uint64
	inUse atomic.Uint32
	next  *rec
}

// NewDomain creates an EBR domain with the adaptive collection cadence.
func NewDomain() *Domain {
	d := &Domain{}
	d.epoch.Store(2) // start above 0 so "min ≥ e+2" arithmetic is uniform
	return d
}

// Unreclaimed returns the number of retired-but-unfreed nodes.
func (d *Domain) Unreclaimed() int64 { return d.g.Unreclaimed() }

// PeakUnreclaimed returns the peak retired-but-unfreed count.
func (d *Domain) PeakUnreclaimed() int64 { return d.g.PeakUnreclaimed() }

// Epoch returns the current global epoch (for tests and diagnostics).
func (d *Domain) Epoch() uint64 { return d.epoch.Load() }

// Stats returns an observability snapshot of the domain. EpochLag is the
// distance from the global epoch to the slowest pinned guard (0 when
// nothing is pinned).
func (d *Domain) Stats() smr.Stats {
	e := d.epoch.Load()
	min, _ := d.minPinnedEpoch()
	st := smr.Stats{
		Scheme:        "ebr",
		RetiredBudget: d.budget.Load(),
		Epoch:         e,
		EpochLag:      e - min,
	}
	smr.FillStats(&st, &d.g, &d.sm)
	return st
}

func (d *Domain) acquireRec() *rec {
	d.guards.Add(1)
	// Lazy epoch init for zero-value &Domain{} literals: NewDomain starts
	// the epoch at 2 so the "retired at e, free at min ≥ e+2" arithmetic
	// stays uniform; the collect path itself never subtracts (Collect
	// compares en.epoch+2 <= min), so epoch 0 cannot underflow — this CAS
	// just makes the two construction paths indistinguishable, including
	// in Epoch() diagnostics and Stats.
	d.epoch.CompareAndSwap(0, 2)
	for r := d.threads.Load(); r != nil; r = r.next {
		if r.inUse.Load() == 0 && r.inUse.CompareAndSwap(0, 1) {
			return r
		}
	}
	r := &rec{}
	r.inUse.Store(1)
	for {
		h := d.threads.Load()
		r.next = h
		if d.threads.CompareAndSwap(h, r) {
			return r
		}
	}
}

// pushOrphans hands a finished guard's leftover bag to the domain.
func (d *Domain) pushOrphans(bag []entry) {
	d.orphanMu.Lock()
	d.orphans = append(d.orphans, bag...)
	d.orphanN.Store(int32(len(d.orphans)))
	d.orphanMu.Unlock()
}

// adoptOrphans appends all orphaned entries to dst, clears the list, and
// returns dst. The atomic count makes the common empty case lock-free.
func (d *Domain) adoptOrphans(dst []entry) []entry {
	if d.orphanN.Load() == 0 {
		return dst
	}
	d.orphanMu.Lock()
	dst = append(dst, d.orphans...)
	d.orphans = d.orphans[:0]
	d.orphanN.Store(0)
	d.orphanMu.Unlock()
	return dst
}

// Records reports the size of the epoch-record list: total records ever
// created and how many are currently held by live guards. Records are
// recycled through Finish the way hazard registry slots are released, so
// a workload that churns guards (one per network connection, say) should
// see total stabilize at its peak concurrency instead of growing with
// guards ever created.
func (d *Domain) Records() (total, live int) {
	for r := d.threads.Load(); r != nil; r = r.next {
		total++
		if r.inUse.Load() != 0 {
			live++
		}
	}
	return total, live
}

// minPinnedEpoch returns the minimum epoch among pinned threads, or the
// current global epoch if none is pinned. It also reports whether every
// pinned thread has caught up with the global epoch e.
func (d *Domain) minPinnedEpoch() (min uint64, allCaughtUp bool) {
	e := d.epoch.Load()
	min, allCaughtUp = e, true
	for r := d.threads.Load(); r != nil; r = r.next {
		st := r.state.Load()
		if st&1 == 0 {
			continue
		}
		ep := st >> 1
		if ep < min {
			min = ep
		}
		if ep < e {
			allCaughtUp = false
		}
	}
	return min, allCaughtUp
}

type entry struct {
	r     smr.Retired
	epoch uint64
}

// Guard is a per-worker EBR handle implementing smr.Guard.
type Guard struct {
	d       *Domain
	r       *rec
	bag     []entry
	retires int
	budget  smr.BudgetCache
}

// NewGuard returns a new guard. The slots argument is ignored (EBR needs
// no per-pointer protection); it exists to satisfy smr.GuardDomain.
func (d *Domain) NewGuard(slots int) smr.Guard { return d.NewGuardEBR() }

// NewGuardEBR returns a concretely-typed guard.
func (d *Domain) NewGuardEBR() *Guard {
	return &Guard{d: d, r: d.acquireRec(), budget: smr.NewBudgetCache(&d.budget)}
}

// Pin enters a critical section at the current global epoch.
func (g *Guard) Pin() {
	e := g.d.epoch.Load()
	g.r.state.Store(e<<1 | 1)
}

// Unpin leaves the critical section.
func (g *Guard) Unpin() {
	g.r.state.Store(g.r.state.Load() &^ 1)
}

// Track is a no-op: epochs protect every reachable node.
func (g *Guard) Track(i int, ref uint64) bool { return true }

// Retire schedules a node for freeing once the epoch advances past every
// thread that might still hold it.
func (g *Guard) Retire(ref uint64, dealloc smr.Deallocator) {
	g.bag = append(g.bag, entry{smr.Retired{Ref: ref, D: dealloc}, g.d.epoch.Load()})
	g.d.g.AddRetired(1)
	g.retires++
	if g.shouldCollect(g.budget.Retire()) {
		g.Collect()
	}
}

// shouldCollect decides the collection cadence: the fixed per-guard
// modulus when CollectEvery is positive, otherwise the adaptive threshold
// max(DefaultCollectEvery, k·guards) applied to the domain-wide retired
// total — k·guards playing the role HP's k·H does, since each guard's pin
// can hold an unbounded prefix of the retired sequence. published gates
// the adaptive check to the budget cache's batch boundaries so a domain
// total stuck above threshold (stalled pin) costs one bag sweep per
// smr.BudgetBatch retires, not one per retire.
func (g *Guard) shouldCollect(published bool) bool {
	if every := g.d.CollectEvery; every > 0 {
		return g.retires%every == 0
	}
	return published &&
		g.budget.Total() >= int64(smr.ReclaimThreshold(int(g.d.guards.Load()), DefaultCollectEvery))
}

// Collect attempts to advance the global epoch and frees every bag entry
// that is two or more epochs old relative to the slowest pinned thread.
func (g *Guard) Collect() {
	d := g.d
	start := time.Now()
	g.bag = d.adoptOrphans(g.bag)
	e := d.epoch.Load()
	min, caughtUp := d.minPinnedEpoch()
	if caughtUp {
		d.epoch.CompareAndSwap(e, e+1)
	}
	// A node retired at epoch ep is safe once every pinned thread is at
	// ep+2 or later: such threads pinned strictly after the node was
	// unlinked and can never reach it, even through optimistic traversal
	// of other unlinked nodes.
	kept := g.bag[:0]
	freed := int64(0)
	for _, en := range g.bag {
		if en.epoch+2 <= min {
			en.r.Free()
			freed++
		} else {
			kept = append(kept, en)
		}
	}
	g.bag = kept
	if freed > 0 {
		d.g.AddFreed(freed)
	}
	g.budget.Freed(freed)
	d.sm.AddScan(time.Since(start).Nanoseconds())
}

// Drain repeatedly collects until the local bag is empty. The guard must
// be unpinned and no other guard may be stalled while pinned, otherwise
// Drain spins forever; it is intended for orderly shutdown in tests and
// benchmarks.
func (g *Guard) Drain() {
	for len(g.bag) > 0 {
		g.Collect()
	}
}

// Finish retires the guard itself: it unpins, makes a final collection
// attempt, hands any survivors to the domain's orphan list (adopted by
// whichever guard collects next), and releases the epoch record for reuse
// by a future guard. A finished guard therefore costs the domain nothing —
// the record list and the adaptive threshold's H track peak concurrency,
// not guards ever created — which is what lets a server attach a guard to
// every connection it ever accepts. The guard must not be used after
// Finish.
func (g *Guard) Finish() {
	g.Unpin()
	g.Collect() // also flushes the budget cache via Freed
	if len(g.bag) > 0 {
		g.d.pushOrphans(g.bag)
		g.bag = nil
	}
	g.budget.Flush()
	g.d.guards.Add(-1)
	g.r.inUse.Store(0)
	g.r = nil
}

// BagLen returns the number of locally retired, not yet freed nodes.
func (g *Guard) BagLen() int { return len(g.bag) }

var _ smr.GuardDomain = (*Domain)(nil)
