// Package ebr implements epoch-based reclamation (Fraser 2004; the
// crossbeam-epoch design the paper benchmarks as "EBR").
//
// Threads pin the global epoch while operating on a data structure; a node
// retired at epoch e may be freed once every pinned thread has advanced to
// at least e+2, because any thread that could still hold a reference to it
// pinned an epoch ≤ e+1. EBR is fast and universally applicable but not
// robust: a single stalled pinned thread blocks epoch advancement and the
// retired set grows without bound (see the robustness tests and Figure 11).
package ebr

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/smr"
)

// DefaultCollectEvery is the number of retires between collection attempts.
const DefaultCollectEvery = 128

// Domain is an epoch-based reclamation domain shared by any number of
// guards.
type Domain struct {
	epoch   atomic.Uint64
	threads atomic.Pointer[rec]
	g       smr.Garbage

	// CollectEvery overrides the retire threshold if set before use.
	// Non-positive values (the zero-value Domain literal) fall back to
	// DefaultCollectEvery lazily instead of panicking with a zero modulus.
	CollectEvery int
}

// rec is a per-guard epoch record. Records are recycled, never removed.
type rec struct {
	// state packs epoch<<1 | pinned.
	state atomic.Uint64
	inUse atomic.Uint32
	next  *rec
}

// NewDomain creates an EBR domain.
func NewDomain() *Domain {
	d := &Domain{CollectEvery: DefaultCollectEvery}
	d.epoch.Store(2) // start above 0 so epoch-2 arithmetic never underflows
	return d
}

// Unreclaimed returns the number of retired-but-unfreed nodes.
func (d *Domain) Unreclaimed() int64 { return d.g.Unreclaimed() }

// PeakUnreclaimed returns the peak retired-but-unfreed count.
func (d *Domain) PeakUnreclaimed() int64 { return d.g.PeakUnreclaimed() }

// Epoch returns the current global epoch (for tests and diagnostics).
func (d *Domain) Epoch() uint64 { return d.epoch.Load() }

func (d *Domain) acquireRec() *rec {
	for r := d.threads.Load(); r != nil; r = r.next {
		if r.inUse.Load() == 0 && r.inUse.CompareAndSwap(0, 1) {
			return r
		}
	}
	r := &rec{}
	r.inUse.Store(1)
	for {
		h := d.threads.Load()
		r.next = h
		if d.threads.CompareAndSwap(h, r) {
			return r
		}
	}
}

// minPinnedEpoch returns the minimum epoch among pinned threads, or the
// current global epoch if none is pinned. It also reports whether every
// pinned thread has caught up with the global epoch e.
func (d *Domain) minPinnedEpoch() (min uint64, allCaughtUp bool) {
	e := d.epoch.Load()
	min, allCaughtUp = e, true
	for r := d.threads.Load(); r != nil; r = r.next {
		st := r.state.Load()
		if st&1 == 0 {
			continue
		}
		ep := st >> 1
		if ep < min {
			min = ep
		}
		if ep < e {
			allCaughtUp = false
		}
	}
	return min, allCaughtUp
}

type entry struct {
	r     smr.Retired
	epoch uint64
}

// Guard is a per-worker EBR handle implementing smr.Guard.
type Guard struct {
	d       *Domain
	r       *rec
	bag     []entry
	retires int
}

// NewGuard returns a new guard. The slots argument is ignored (EBR needs
// no per-pointer protection); it exists to satisfy smr.GuardDomain.
func (d *Domain) NewGuard(slots int) smr.Guard { return d.NewGuardEBR() }

// NewGuardEBR returns a concretely-typed guard.
func (d *Domain) NewGuardEBR() *Guard {
	return &Guard{d: d, r: d.acquireRec()}
}

// Pin enters a critical section at the current global epoch.
func (g *Guard) Pin() {
	e := g.d.epoch.Load()
	g.r.state.Store(e<<1 | 1)
}

// Unpin leaves the critical section.
func (g *Guard) Unpin() {
	g.r.state.Store(g.r.state.Load() &^ 1)
}

// Track is a no-op: epochs protect every reachable node.
func (g *Guard) Track(i int, ref uint64) bool { return true }

// Retire schedules a node for freeing once the epoch advances past every
// thread that might still hold it.
func (g *Guard) Retire(ref uint64, dealloc smr.Deallocator) {
	g.bag = append(g.bag, entry{smr.Retired{Ref: ref, D: dealloc}, g.d.epoch.Load()})
	g.d.g.AddRetired(1)
	g.retires++
	if g.retires%g.d.collectEvery() == 0 {
		g.Collect()
	}
}

// collectEvery returns the collection cadence, clamping a non-positive
// configured value (zero-value Domain literal) to the default.
func (d *Domain) collectEvery() int {
	if every := d.CollectEvery; every > 0 {
		return every
	}
	return DefaultCollectEvery
}

// Collect attempts to advance the global epoch and frees every bag entry
// that is two or more epochs old relative to the slowest pinned thread.
func (g *Guard) Collect() {
	d := g.d
	e := d.epoch.Load()
	min, caughtUp := d.minPinnedEpoch()
	if caughtUp {
		d.epoch.CompareAndSwap(e, e+1)
	}
	// A node retired at epoch ep is safe once every pinned thread is at
	// ep+2 or later: such threads pinned strictly after the node was
	// unlinked and can never reach it, even through optimistic traversal
	// of other unlinked nodes.
	kept := g.bag[:0]
	freed := int64(0)
	for _, en := range g.bag {
		if en.epoch+2 <= min {
			en.r.Free()
			freed++
		} else {
			kept = append(kept, en)
		}
	}
	g.bag = kept
	if freed > 0 {
		d.g.AddFreed(freed)
	}
}

// Drain repeatedly collects until the local bag is empty. The guard must
// be unpinned and no other guard may be stalled while pinned, otherwise
// Drain spins forever; it is intended for orderly shutdown in tests and
// benchmarks.
func (g *Guard) Drain() {
	for len(g.bag) > 0 {
		g.Collect()
	}
}

// BagLen returns the number of locally retired, not yet freed nodes.
func (g *Guard) BagLen() int { return len(g.bag) }

var _ smr.GuardDomain = (*Domain)(nil)
