package arena

import (
	"sync"
	"testing"
	"testing/quick"
)

type payload struct {
	a, b uint64
}

func TestAllocDerefFree(t *testing.T) {
	p := NewPool[payload]("t", ModeReuse)
	ref, v := p.Alloc()
	if ref == 0 {
		t.Fatal("ref 0 must be reserved for nil")
	}
	v.a, v.b = 1, 2
	got := p.Deref(ref)
	if got.a != 1 || got.b != 2 {
		t.Fatalf("deref = %+v", got)
	}
	if !p.Live(ref) {
		t.Fatal("allocated slot should be live")
	}
	p.Free(ref)
	if p.Live(ref) {
		t.Fatal("freed slot should not be live")
	}
}

func TestReuseRecyclesSlots(t *testing.T) {
	p := NewPool[payload]("t", ModeReuse)
	ref1, _ := p.Alloc()
	p.Free(ref1)
	ref2, _ := p.Alloc()
	if ref1 != ref2 {
		t.Fatalf("expected recycled slot %d, got %d", ref1, ref2)
	}
	st := p.Stats()
	if st.Allocs != 2 || st.Frees != 1 || st.Live != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDetectModeQuarantines(t *testing.T) {
	p := NewPool[payload]("t", ModeDetect)
	ref1, _ := p.Alloc()
	p.Free(ref1)
	ref2, _ := p.Alloc()
	if ref1 == ref2 {
		t.Fatal("detect mode must not recycle slots")
	}
}

func TestDetectUseAfterFreePanics(t *testing.T) {
	p := NewPool[payload]("t", ModeDetect)
	ref, _ := p.Alloc()
	p.Free(ref)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on use-after-free deref")
		}
	}()
	p.Deref(ref)
}

func TestDetectUseAfterFreeCounts(t *testing.T) {
	p := NewPool[payload]("t", ModeDetect)
	p.SetCount()
	ref, _ := p.Alloc()
	p.Free(ref)
	p.Deref(ref)
	p.Deref(ref)
	if got := p.Stats().UAF; got != 2 {
		t.Fatalf("UAF count = %d, want 2", got)
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	p := NewPool[payload]("t", ModeReuse)
	ref, _ := p.Alloc()
	p.Free(ref)
	// In reuse mode the pool counts rather than panics by default.
	p.Free(ref)
	if got := p.Stats().DoubleFree; got != 1 {
		t.Fatalf("DoubleFree count = %d, want 1", got)
	}
}

func TestDerefNilPanics(t *testing.T) {
	p := NewPool[payload]("t", ModeReuse)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil deref")
		}
	}()
	p.Deref(0)
}

func TestHighWaterTracksPeak(t *testing.T) {
	p := NewPool[payload]("t", ModeReuse)
	var refs []Ref
	for i := 0; i < 10; i++ {
		r, _ := p.Alloc()
		refs = append(refs, r)
	}
	for _, r := range refs {
		p.Free(r)
	}
	r, _ := p.Alloc()
	_ = r
	st := p.Stats()
	if st.HighWater != 10 {
		t.Fatalf("high water = %d, want 10", st.HighWater)
	}
	if st.Live != 1 {
		t.Fatalf("live = %d, want 1", st.Live)
	}
}

func TestBytesAccounting(t *testing.T) {
	p := NewPool[payload]("t", ModeReuse)
	p.Alloc()
	st := p.Stats()
	if st.Bytes != 16 {
		t.Fatalf("bytes = %d, want sizeof(payload)=16", st.Bytes)
	}
}

func TestSlabGrowth(t *testing.T) {
	p := NewPool[uint64]("t", ModeReuse)
	n := slabSize*2 + 5
	seen := make(map[Ref]bool, n)
	for i := 0; i < n; i++ {
		r, v := p.Alloc()
		if seen[r] {
			t.Fatalf("duplicate ref %d", r)
		}
		seen[r] = true
		*v = uint64(i)
	}
	// Spot-check a ref in the third slab.
	for r := range seen {
		if *p.Deref(r) > uint64(n) {
			t.Fatalf("corrupted value at %d", r)
		}
	}
}

// TestConcurrentAllocFree hammers the free list from many goroutines; the
// version-stamped head must keep it consistent (no duplicate live refs).
func TestConcurrentAllocFree(t *testing.T) {
	p := NewPool[payload]("t", ModeReuse)
	const workers = 8
	const iters = 20000
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			local := make([]Ref, 0, 16)
			for i := 0; i < iters; i++ {
				r, v := p.Alloc()
				v.a = id
				local = append(local, r)
				if len(local) == 16 {
					for _, lr := range local {
						if p.Deref(lr).a != id {
							errs <- "slot owned by two workers"
							return
						}
						p.Free(lr)
					}
					local = local[:0]
				}
			}
			for _, lr := range local {
				p.Free(lr)
			}
		}(uint64(w))
	}
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
	st := p.Stats()
	if st.Live != 0 {
		t.Fatalf("leaked %d slots", st.Live)
	}
	if st.Allocs != workers*iters {
		t.Fatalf("allocs = %d, want %d", st.Allocs, workers*iters)
	}
}

// TestAllocFreeProperty: any interleaved sequence of allocs and frees keeps
// Live == Allocs - Frees and never hands out a live ref twice.
func TestAllocFreeProperty(t *testing.T) {
	prop := func(ops []bool) bool {
		p := NewPool[uint64]("q", ModeReuse)
		live := make(map[Ref]bool)
		for _, alloc := range ops {
			if alloc || len(live) == 0 {
				r, _ := p.Alloc()
				if live[r] {
					return false // double-handed-out
				}
				live[r] = true
			} else {
				for r := range live {
					p.Free(r)
					delete(live, r)
					break
				}
			}
		}
		st := p.Stats()
		return st.Live == int64(len(live)) && st.Allocs-st.Frees == st.Live
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestDoubleFreeAcrossSlabBoundary allocates past the first slab so the
// victim refs live in different slabs, then double-frees both: the
// detection must not depend on which slab a slot landed in.
func TestDoubleFreeAcrossSlabBoundary(t *testing.T) {
	p := NewPool[payload]("t", ModeDetect)
	p.SetCount()
	var last Ref
	first := Ref(0)
	for i := 0; i < slabSize+2; i++ {
		ref, _ := p.Alloc()
		if first == 0 {
			first = ref
		}
		last = ref
	}
	if first>>slabBits == last>>slabBits {
		t.Fatalf("refs %d and %d landed in the same slab", first, last)
	}
	p.Free(first)
	p.Free(last)
	p.Free(first)
	p.Free(last)
	if df := p.Stats().DoubleFree; df != 2 {
		t.Fatalf("double-free count = %d, want 2", df)
	}
	// The earlier legitimate frees must still be counted exactly once.
	if st := p.Stats(); st.Frees != 2 {
		t.Fatalf("frees = %d, want 2", st.Frees)
	}
}

// TestDerefQuarantinedThenRepoisoned: a quarantined slot stays poisoned
// across later allocations (which in detect mode never recycle it), and
// every deref of the stale ref keeps reporting UAF — the quarantine is
// not "healed" by allocator activity touching the same slab.
func TestDerefQuarantinedThenRepoisoned(t *testing.T) {
	p := NewPool[payload]("t", ModeDetect)
	p.SetCount()
	stale, v := p.Alloc()
	v.a = 42
	p.Free(stale)
	if p.Deref(stale); p.Stats().UAF != 1 {
		t.Fatalf("UAF after first stale deref = %d, want 1", p.Stats().UAF)
	}
	// Churn the allocator: new slots in the same slab, plus frees that
	// re-poison neighbouring slots.
	for i := 0; i < 64; i++ {
		ref, _ := p.Alloc()
		if ref == stale {
			t.Fatal("detect mode recycled a quarantined slot")
		}
		if i%2 == 0 {
			p.Free(ref)
		}
	}
	p.Deref(stale)
	p.Deref(stale)
	if got := p.Stats().UAF; got != 3 {
		t.Fatalf("UAF after repoisoned derefs = %d, want 3", got)
	}
	if p.Live(stale) {
		t.Fatal("quarantined slot reported live")
	}
}

// TestSetCountAccuracyUnderConcurrentOffenders hammers a freed slot from
// many goroutines: the UAF counter must equal the exact number of
// offending derefs (no lost or double counts under contention).
func TestSetCountAccuracyUnderConcurrentOffenders(t *testing.T) {
	const offenders = 8
	const each = 2000
	p := NewPool[payload]("t", ModeDetect)
	p.SetCount()
	ref, _ := p.Alloc()
	p.Free(ref)
	var wg sync.WaitGroup
	for w := 0; w < offenders; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				p.Deref(ref)
			}
		}()
	}
	wg.Wait()
	if got := p.Stats().UAF; got != offenders*each {
		t.Fatalf("UAF count = %d, want %d", got, offenders*each)
	}
	if df := p.Stats().DoubleFree; df != 0 {
		t.Fatalf("double-free count = %d, want 0", df)
	}
}

// TestDerefHookWidensRaceWindow: the yieldpoint hook runs between slot
// resolution and validation, so a free performed inside the hook is
// detected — the mechanism the stress harness relies on to make
// unsafe-scheme races deterministic on any core count.
func TestDerefHookWidensRaceWindow(t *testing.T) {
	p := NewPool[payload]("t", ModeDetect)
	p.SetCount()
	ref, _ := p.Alloc()
	fired := false
	p.SetDerefHook(func(r Ref) {
		if r == ref && !fired {
			fired = true
			p.Free(ref) // the "concurrent" free, made deterministic
		}
	})
	p.Deref(ref)
	if !fired {
		t.Fatal("hook did not fire")
	}
	if got := p.Stats().UAF; got != 1 {
		t.Fatalf("UAF count = %d, want 1", got)
	}
	p.SetDerefHook(nil)
	p.Deref(ref) // still quarantined: counts without the hook
	if got := p.Stats().UAF; got != 2 {
		t.Fatalf("UAF count after hook removal = %d, want 2", got)
	}
}

// TestStatsMonotoneConsistency is the regression test for the torn-pair
// high-water mark: deriving occupancy from allocs.Add(1) minus a separate
// frees.Load() could record "peaks" that never existed. With W workers each
// holding at most one slot, HighWater and Live must never exceed W and
// HighWater must be monotone. (Live vs HighWater is not compared mid-run:
// an Alloc raises the live counter before its high-water CAS, so a sampler
// can transiently see Live above HighWater.)
func TestStatsMonotoneConsistency(t *testing.T) {
	p := NewPool[payload]("mono", ModeReuse)
	const workers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ref, _ := p.Alloc()
				p.Free(ref)
			}
		}()
	}
	lastHW := int64(0)
	for i := 0; i < 20000; i++ {
		st := p.Stats()
		if st.Live < 0 {
			t.Fatalf("negative live count %d", st.Live)
		}
		if st.Live > workers {
			t.Fatalf("live %d exceeds max possible occupancy %d", st.Live, workers)
		}
		if st.HighWater > workers {
			t.Fatalf("high water %d exceeds max possible occupancy %d", st.HighWater, workers)
		}
		if st.HighWater < lastHW {
			t.Fatalf("high water went backwards: %d -> %d", lastHW, st.HighWater)
		}
		lastHW = st.HighWater
	}
	close(stop)
	wg.Wait()
	st := p.Stats()
	if st.Live != 0 || st.Allocs != st.Frees {
		t.Fatalf("quiescent pool inconsistent: live=%d allocs=%d frees=%d",
			st.Live, st.Allocs, st.Frees)
	}
}
