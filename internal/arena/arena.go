// Package arena provides typed slab pools with explicit Free, simulating a
// manual memory allocator inside a garbage-collected runtime.
//
// The paper this repository reproduces (HP++, SPAA 2023) is about *manual*
// memory reclamation: data-structure nodes are malloc'd, retired, and
// eventually free'd, and a buggy reclamation scheme manifests as
// use-after-free or ABA. Go has neither free() nor dangling pointers, so the
// arena recreates those semantics:
//
//   - Nodes live in slabs owned by a Pool[T]. A node is identified by a
//     Ref (uint64 index); links between nodes store Refs, not Go pointers,
//     so the garbage collector never keeps a "freed" node alive on behalf
//     of a stale reader.
//   - Free returns the slot to a lock-free free list and a later Alloc may
//     recycle it (ModeReuse). A reclamation scheme that frees too early
//     therefore produces genuine ABA and use-after-free phenomena.
//   - In ModeDetect, freed slots are quarantined (never recycled) and every
//     Deref validates that the slot is still live, so stress tests can
//     prove a scheme unsafe — the moral equivalent of running under ASAN.
//
// Pools are safe for concurrent use by any number of goroutines.
package arena

import (
	"fmt"
	"reflect"
	"sync/atomic"
)

// Mode selects how a Pool treats freed slots.
type Mode int

const (
	// ModeReuse recycles freed slots through a free list, like a real
	// allocator. Use for benchmarks.
	ModeReuse Mode = iota
	// ModeDetect quarantines freed slots forever and makes Deref validate
	// liveness, turning any use-after-free into a reported error. Use for
	// correctness stress tests.
	ModeDetect
)

// Ref identifies a slot within a Pool. Zero is the nil reference.
type Ref = uint64

const (
	slabBits = 13
	slabSize = 1 << slabBits
	slabMask = slabSize - 1
	maxSlabs = 1 << 15 // capacity: 2^28 slots per pool

	// free-list head packing: version (24 bits) | ref (40 bits)
	refBits = 40
	refMask = 1<<refBits - 1
)

// slot state word: sequence<<1 | live
const liveBit = 1

type slot[T any] struct {
	state    atomic.Uint64 // sequence<<1 | liveBit
	nextFree atomic.Uint64 // free-list link (Ref of next free slot)
	val      T
}

type slab[T any] struct {
	slots [slabSize]slot[T]
}

// Pool is a typed slab allocator with explicit Free.
type Pool[T any] struct {
	name     string
	mode     Mode
	elemSize int64

	slabs    [maxSlabs]atomic.Pointer[slab[T]]
	next     atomic.Uint64 // next fresh index; index 0 is reserved for nil
	freeHead atomic.Uint64 // packed version|ref Treiber stack head

	allocs  atomic.Int64
	frees   atomic.Int64
	live    atomic.Int64 // current live occupancy; sole input to hiwater
	hiwater atomic.Int64

	uaf        atomic.Int64 // detected use-after-free derefs (ModeDetect)
	doubleFree atomic.Int64 // detected double frees (any mode)
	panicOnBug bool

	derefHook atomic.Pointer[func(Ref)] // ModeDetect fault-injection yieldpoint
}

// NewPool creates a pool for values of type T. In ModeDetect the pool
// panics on the first detected use-after-free or double free; call
// SetCount to make it count instead.
func NewPool[T any](name string, mode Mode) *Pool[T] {
	var zero T
	p := &Pool[T]{
		name:       name,
		mode:       mode,
		elemSize:   int64(reflect.TypeOf(zero).Size()),
		panicOnBug: mode == ModeDetect,
	}
	p.next.Store(1) // Ref 0 is nil
	p.slabs[0].Store(&slab[T]{})
	return p
}

// SetCount makes detected memory bugs increment counters instead of
// panicking. Intended for tests that assert a scheme IS unsafe.
func (p *Pool[T]) SetCount() { p.panicOnBug = false }

// SetDerefHook installs a fault-injection hook called on every Deref in
// ModeDetect, after the slot is resolved but before liveness validation.
// Stress harnesses use it to widen race windows deterministically (e.g.
// runtime.Gosched every Nth deref, or parking a designated reader
// mid-traversal): a correct reclamation scheme keeps the slot live across
// any delay the hook introduces, while a buggy scheme frees it during the
// hook and is caught by the validation that follows. Pass nil to remove.
// ModeReuse pools ignore the hook entirely.
func (p *Pool[T]) SetDerefHook(fn func(Ref)) {
	if fn == nil {
		p.derefHook.Store(nil)
		return
	}
	p.derefHook.Store(&fn)
}

// Name returns the pool's diagnostic name.
func (p *Pool[T]) Name() string { return p.name }

// Mode returns the pool's reuse mode.
func (p *Pool[T]) Mode() Mode { return p.mode }

func (p *Pool[T]) slotOf(ref Ref) *slot[T] {
	sb := p.slabs[ref>>slabBits].Load()
	if sb == nil {
		panic(fmt.Sprintf("arena %s: deref of never-allocated ref %d", p.name, ref))
	}
	return &sb.slots[ref&slabMask]
}

// Alloc returns a fresh (or recycled) slot. The returned value is NOT
// zeroed when recycled; callers must initialize every field they use.
func (p *Pool[T]) Alloc() (Ref, *T) {
	ref := p.popFree()
	if ref == 0 {
		ref = p.next.Add(1) - 1
		si := ref >> slabBits
		if si >= maxSlabs {
			panic(fmt.Sprintf("arena %s: pool exhausted (%d slots)", p.name, ref))
		}
		if p.slabs[si].Load() == nil {
			p.slabs[si].CompareAndSwap(nil, &slab[T]{})
		}
	}
	p.allocs.Add(1)
	// The high-water mark derives from a single live counter: each Alloc
	// observes the exact occupancy its own increment produced, so the CAS
	// race below can only ever raise hiwater to a value the pool really
	// reached. The old allocs.Add(1)-minus-frees.Load() formulation read a
	// torn pair — the two counters at different instants — recording
	// "peaks" that never existed and missing ones that did. The increment
	// precedes the state store so the counter never under-counts a slot
	// that is already handed out.
	n := p.live.Add(1)
	s := p.slotOf(ref)
	s.state.Store(s.state.Load() + 2 | liveBit) // bump sequence, set live
	for {
		hw := p.hiwater.Load()
		if n <= hw || p.hiwater.CompareAndSwap(hw, n) {
			break
		}
	}
	return ref, &s.val
}

// Free releases a slot. Freeing an already-free slot is detected and
// reported in every mode.
func (p *Pool[T]) Free(ref Ref) {
	if ref == 0 {
		panic("arena " + p.name + ": free of nil ref")
	}
	s := p.slotOf(ref)
	for {
		st := s.state.Load()
		if st&liveBit == 0 {
			p.doubleFree.Add(1)
			if p.panicOnBug {
				panic(fmt.Sprintf("arena %s: double free of ref %d", p.name, ref))
			}
			return
		}
		if s.state.CompareAndSwap(st, st&^uint64(liveBit)) {
			break
		}
	}
	p.frees.Add(1)
	p.live.Add(-1)
	if p.mode == ModeReuse {
		p.pushFree(ref)
	}
}

// FreeRef implements smr.Deallocator.
func (p *Pool[T]) FreeRef(ref uint64) { p.Free(ref) }

// Deref returns the value stored at ref. In ModeDetect it validates that
// the slot is live and reports use-after-free otherwise. Deref of the nil
// reference always panics.
func (p *Pool[T]) Deref(ref Ref) *T {
	if ref == 0 {
		panic("arena " + p.name + ": deref of nil ref")
	}
	s := p.slotOf(ref)
	if p.mode == ModeDetect {
		if fn := p.derefHook.Load(); fn != nil {
			(*fn)(ref)
		}
		if s.state.Load()&liveBit == 0 {
			p.uaf.Add(1)
			if p.panicOnBug {
				panic(fmt.Sprintf("arena %s: use-after-free deref of ref %d", p.name, ref))
			}
		}
	}
	return &s.val
}

// State returns ref's raw state word (sequence<<1 | live) for use as a
// birth/identity tag: Alloc bumps the sequence and Free clears the live
// bit, so a slot's word changes on every free and every recycle. Two
// equal State reads therefore prove the slot was not freed in between.
// Reading the word is always safe — slabs are never unmapped and the
// read is not an access for deref-hook or use-after-free accounting.
func (p *Pool[T]) State(ref Ref) uint64 {
	return p.slotOf(ref).state.Load()
}

// Live reports whether ref currently addresses a live (allocated,
// un-freed) slot.
func (p *Pool[T]) Live(ref Ref) bool {
	if ref == 0 {
		return false
	}
	return p.slotOf(ref).state.Load()&liveBit != 0
}

func (p *Pool[T]) popFree() Ref {
	for {
		head := p.freeHead.Load()
		ref := head & refMask
		if ref == 0 {
			return 0
		}
		next := p.slotOf(ref).nextFree.Load()
		ver := head >> refBits
		if p.freeHead.CompareAndSwap(head, (ver+1)<<refBits|next&refMask) {
			return ref
		}
	}
}

func (p *Pool[T]) pushFree(ref Ref) {
	s := p.slotOf(ref)
	for {
		head := p.freeHead.Load()
		s.nextFree.Store(head & refMask)
		ver := head >> refBits
		if p.freeHead.CompareAndSwap(head, (ver+1)<<refBits|ref) {
			return
		}
	}
}

// Stats is a point-in-time snapshot of a pool's accounting.
type Stats struct {
	Name       string
	Allocs     int64 // total allocations
	Frees      int64 // total frees
	Live       int64 // current live slots (single counter, never torn)
	HighWater  int64 // maximum simultaneous live slots
	Bytes      int64 // Live * sizeof(T)
	PeakBytes  int64 // HighWater * sizeof(T)
	UAF        int64 // detected use-after-free derefs (ModeDetect)
	DoubleFree int64 // detected double frees
}

// Stats returns a snapshot of the pool's accounting.
func (p *Pool[T]) Stats() Stats {
	a, f := p.allocs.Load(), p.frees.Load()
	live := p.live.Load()
	hw := p.hiwater.Load()
	return Stats{
		Name:       p.name,
		Allocs:     a,
		Frees:      f,
		Live:       live,
		HighWater:  hw,
		Bytes:      live * p.elemSize,
		PeakBytes:  hw * p.elemSize,
		UAF:        p.uaf.Load(),
		DoubleFree: p.doubleFree.Load(),
	}
}
