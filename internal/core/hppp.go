// Package core implements HP++, the paper's primary contribution
// (Algorithm 3), together with its epoched-heavy-fence optimization
// (Algorithm 5): a backward-compatible extension of hazard pointers that
// supports data structures with optimistic traversal.
//
// Where the original HP validates a protection by *over-approximating*
// unreachability ("the source link changed, or the source node is
// logically deleted, so the target might be freed"), HP++ validates by
// *under-approximating* it: deleters first physically unlink nodes and only
// afterwards mark them invalidated, so a traversing thread refuses to take
// a step only from nodes that are certainly unlinked. The unsafe windows a
// false-negative opens are patched up by the unlinker, which must
//
//  1. protect the unlink *frontier* (nodes reachable by one link from the
//     unlinked chain but not themselves unlinked) with hazard pointers
//     before unlinking, and
//  2. invalidate all unlinked nodes before any of them is freed.
//
// TryProtect and TryUnlink below are the two halves of that contract.
//
// Note on fences: every fence(SC) in the paper's pseudocode is implicit
// here because Go's sync/atomic operations are sequentially consistent.
// The asymmetric-fence optimization of §3.4 (light fence in TryProtect,
// heavy process-wide fence in DoInvalidation) therefore has no observable
// synchronization cost to remove, but its *structural* consequences —
// batched deferred invalidation and, with Options.EpochFence, the epoched
// revocation of frontier hazard pointers (Algorithm 5) — are implemented
// literally and benchmarked as an ablation.
package core

import (
	"sync/atomic"
	"time"

	"github.com/gosmr/gosmr/internal/hazards"
	"github.com/gosmr/gosmr/internal/smr"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// Defaults match the paper's evaluation (§5): Reclaim per 128 TryUnlinks,
// DoInvalidation per 32 TryUnlinks. DefaultReclaimEvery doubles as the
// floor of the adaptive reclamation threshold.
const (
	DefaultReclaimEvery    = 128
	DefaultInvalidateEvery = 32
)

// maxFrontierCache caps the per-thread cache of released frontier slots.
// The effective cap is usually lower — see Thread.cacheCap.
const maxFrontierCache = 64

// Options configures an HP++ domain.
type Options struct {
	// ReclaimEvery, if set > 0, is the fixed number of TryUnlink/Retire
	// calls between reclamation passes. When <= 0 (the default) the
	// cadence is adaptive: a thread scans when the domain-wide retired
	// total (the shared smr.Budget, not its local retired-set size)
	// reaches max(DefaultReclaimEvery, hazards.AdaptiveFactor·H), H being
	// the number of acquired hazard slots in the registry.
	ReclaimEvery int
	// InvalidateEvery is the number of TryUnlink calls between deferred
	// invalidation passes (default 32).
	InvalidateEvery int
	// EpochFence selects Algorithm 5: frontier hazard pointers are
	// revoked lazily by piggybacking on other threads' heavy fences,
	// tracked with a global fence epoch, instead of eagerly at the end of
	// each DoInvalidation.
	EpochFence bool
}

func (o Options) withDefaults() Options {
	// ReclaimEvery <= 0 stays as-is: it selects the adaptive cadence.
	if o.InvalidateEvery <= 0 {
		o.InvalidateEvery = DefaultInvalidateEvery
	}
	return o
}

// Invalidator marks an unlinked node as invalidated, typically by setting
// tagptr.Invalid on one of the node's link words with a plain store —
// legal because unlinked nodes' links are immutable (Assumption 1).
// Arena pool wrappers in the data-structure packages implement it.
type Invalidator interface {
	Invalidate(ref uint64)
}

// Domain is an HP++ reclamation domain.
type Domain struct {
	opts    Options
	reg     hazards.Registry
	g       smr.Garbage
	sm      smr.ScanMeter
	budget  smr.Budget
	orphans smr.OrphanList

	fenceEpoch atomic.Uint64 // Algorithm 5 global fence epoch
	// pendingRevoke counts epoched frontier hazard pointers awaiting lazy
	// revocation across all threads. They occupy acquired registry slots,
	// so without this correction the adaptive reclaim threshold 2·H would
	// track the revocation backlog itself: every unlink grows H faster
	// than the retired budget grows, Reclaim never fires, and a
	// write-heavy run retains its entire retired set until Finish.
	pendingRevoke atomic.Int64
}

// NewDomain creates an HP++ domain with the given options.
func NewDomain(opts Options) *Domain {
	return &Domain{opts: opts.withDefaults()}
}

// Unreclaimed returns the number of unlinked-or-retired but unfreed nodes.
func (d *Domain) Unreclaimed() int64 { return d.g.Unreclaimed() }

// PeakUnreclaimed returns the peak unreclaimed count.
func (d *Domain) PeakUnreclaimed() int64 { return d.g.PeakUnreclaimed() }

// Stats returns an observability snapshot of the domain. Under Algorithm 5
// the Epoch field carries the global fence epoch.
func (d *Domain) Stats() smr.Stats {
	st := smr.Stats{
		Scheme:           "hp++",
		RetiredBudget:    d.budget.Load(),
		HazardSlots:      d.reg.Len(),
		HazardSlotsInUse: d.reg.InUse(),
	}
	if d.opts.EpochFence {
		st.Scheme = "hp++ef"
		st.Epoch = d.fenceEpoch.Load()
	}
	smr.FillStats(&st, &d.g, &d.sm)
	return st
}

// Registry exposes the hazard-slot registry (for tests).
func (d *Domain) Registry() *hazards.Registry { return &d.reg }

// FenceEpoch performs the paper's FENCEEPOCH: a heavy fence wrapped in a
// read and a CAS-increment of the global fence epoch (Algorithm 5).
func (d *Domain) FenceEpoch() {
	e := d.fenceEpoch.Load()
	// heavy fence — implicit (SC atomics).
	d.fenceEpoch.CompareAndSwap(e, e+1)
}

// ReadEpoch performs the paper's READEPOCH: a light fence bracketed by two
// reads of the fence epoch that must agree (Algorithm 5).
func (d *Domain) ReadEpoch() uint64 {
	e := d.fenceEpoch.Load()
	for {
		// light fence — implicit.
		ne := d.fenceEpoch.Load()
		if e == ne {
			return e
		}
		e = ne
	}
}

// unlinkBatch records one successful TryUnlink pending invalidation: the
// unlinked nodes, how to invalidate them, and the frontier hazard pointers
// that must stay announced until after invalidation.
type unlinkBatch struct {
	nodes []smr.Retired
	inv   Invalidator
	hps   []*hazards.Slot
}

type epochedHP struct {
	epoch uint64
	s     *hazards.Slot
}

// Thread is a per-worker HP++ handle with named protection slots for
// traversal plus internally managed frontier slots. Not safe for
// concurrent use.
type Thread struct {
	d     *Domain
	slots []*hazards.Slot // traversal slots, indexed by the caller

	cache      []*hazards.Slot // released frontier slots kept for reuse
	unlinkeds  []unlinkBatch
	retireds   []smr.Retired
	epochedHPs []epochedHP

	unlinks int
	retires int
	budget  smr.BudgetCache
	scan    hazards.ScanSet // reusable filtered+sorted hazard snapshot
}

// NewThread returns a handle with nslots named traversal slots.
func (d *Domain) NewThread(nslots int) *Thread {
	t := &Thread{d: d, budget: smr.NewBudgetCache(&d.budget)}
	for i := 0; i < nslots; i++ {
		t.slots = append(t.slots, d.reg.Acquire())
	}
	return t
}

// Protect announces protection of ref in slot i without validation (for
// entry-point loads whose reachability the caller validates otherwise).
func (t *Thread) Protect(i int, ref uint64) { t.slots[i].Set(ref) }

// Clear revokes slot i's announcement.
func (t *Thread) Clear(i int) { t.slots[i].Clear() }

// ClearAll revokes every named slot's announcement.
func (t *Thread) ClearAll() {
	for _, s := range t.slots {
		s.Clear()
	}
}

// Swap exchanges named slots i and j (hand-over-hand traversal).
func (t *Thread) Swap(i, j int) { t.slots[i], t.slots[j] = t.slots[j], t.slots[i] }

// TryProtect implements Algorithm 3's TRYPROTECT. It announces protection
// of *ptr in slot i, then validates by under-approximation:
//
//   - srcInvalid, if non-nil, is the link word of the source node that
//     carries its tagptr.Invalid bit. If the source has been invalidated
//     it is unsafe to create new protections from it: TryProtect returns
//     false and the caller must restart its operation.
//   - Otherwise srcLink (the field *ptr was loaded from) is re-read with
//     tags ignored — so protection succeeds regardless of logical
//     deletion, which is precisely what permits optimistic traversal. If
//     it now references a different node, *ptr is updated and the loop
//     retries.
//
// On true, *ptr holds a protected reference (possibly updated, possibly
// nil). The is-invalid check precedes the link recheck, as in the paper.
func (t *Thread) TryProtect(i int, ptr *uint64, srcInvalid, srcLink *atomic.Uint64) bool {
	slot := t.slots[i]
	for {
		slot.Set(*ptr)
		// fence(SC) — implicit.
		if srcInvalid != nil && srcInvalid.Load()&tagptr.Invalid != 0 {
			return false
		}
		cur := tagptr.RefOf(srcLink.Load())
		if cur == *ptr {
			return true
		}
		*ptr = cur
	}
}

// Retire announces retirement of a node whose unreachability is validated
// by over-approximation, exactly as in the original HP. This is the
// backward-compatible hybrid path (§4.2): nodes retired this way are never
// invalidated, so the data structure must guarantee that TryProtect-style
// validation cannot newly protect them after retirement.
func (t *Thread) Retire(ref uint64, dealloc smr.Deallocator) {
	t.retireds = append(t.retireds, smr.Retired{Ref: ref, D: dealloc})
	t.d.g.AddRetired(1)
	t.retires++
	if t.shouldReclaim(t.budget.Retire()) {
		t.Reclaim()
	}
}

// shouldReclaim decides the reclamation cadence: the fixed modulus when
// Options.ReclaimEvery is positive, otherwise the adaptive threshold
// R = max(DefaultReclaimEvery, hazards.AdaptiveFactor·H) applied to the
// domain-wide retired total. published reports whether the caller's
// budget-cache update just flushed to the shared counter — adaptive scans
// fire only on those batch boundaries, so the threshold check (and any
// scan it triggers) is amortized over smr.BudgetBatch retires even when
// other threads keep the domain total permanently above threshold. Lazily
// tolerating a non-positive ReclaimEvery also makes a zero-value Domain
// literal safe (no divide-by-zero).
func (t *Thread) shouldReclaim(published bool) bool {
	if every := t.d.opts.ReclaimEvery; every > 0 {
		return (t.retires+t.unlinks)%every == 0
	}
	// H counts traversal and live frontier protections only: slots parked
	// in the Algorithm 5 revocation backlog are garbage-proportional, not
	// reader-proportional, and must not raise the bar for collecting the
	// very garbage they follow.
	h := t.d.reg.InUse()
	if pending := int(t.d.pendingRevoke.Load()); pending >= h {
		h = 0
	} else {
		h -= pending
	}
	return published &&
		t.budget.Total() >= int64(hazards.ReclaimThreshold(h, DefaultReclaimEvery))
}

// invalidateEvery returns the deferred-invalidation cadence, clamping a
// non-positive configured value (zero-value Domain literal) to the default.
func (t *Thread) invalidateEvery() int {
	if every := t.d.opts.InvalidateEvery; every > 0 {
		return every
	}
	return DefaultInvalidateEvery
}

// TryUnlink implements Algorithm 3's TRYUNLINK. frontier lists the nodes
// that remain reachable by one link from the to-be-unlinked chain; they
// are protected with fresh hazard pointers *before* doUnlink runs, and
// those protections persist until the unlinked nodes have been
// invalidated. doUnlink performs the actual physical deletion (typically
// one CAS) and returns the unlinked nodes, or ok=false if it lost the
// race. inv will be used to invalidate each unlinked node during a later
// DoInvalidation. Reports whether the unlink succeeded.
func (t *Thread) TryUnlink(frontier []uint64, doUnlink func() ([]smr.Retired, bool), inv Invalidator) bool {
	var hps []*hazards.Slot
	if n := len(frontier); n > 0 {
		hps = make([]*hazards.Slot, 0, n)
		for _, f := range frontier {
			s := t.acquire()
			s.Set(f)
			hps = append(hps, s)
		}
	}
	// The frontier protections above are not validated: the data
	// structure guarantees the frontier cannot change once decided.
	nodes, ok := doUnlink()
	if !ok {
		for _, s := range hps {
			t.release(s)
		}
		return false
	}
	t.unlinkeds = append(t.unlinkeds, unlinkBatch{nodes: nodes, inv: inv, hps: hps})
	t.d.g.AddRetired(int64(len(nodes)))
	published := false
	for range nodes {
		published = t.budget.Retire() || published
	}
	t.unlinks++
	if t.unlinks%t.invalidateEvery() == 0 {
		t.DoInvalidation()
	}
	if t.shouldReclaim(published) {
		t.Reclaim()
	}
	return true
}

// DoInvalidation executes the deferred invalidations: every node unlinked
// since the last pass is invalidated, then (after the implied SC fence)
// the frontier hazard pointers are revoked — eagerly under Algorithm 3,
// or lazily via the fence epoch under Algorithm 5 — and the nodes move to
// the retired set for the next Reclaim.
func (t *Thread) DoInvalidation() {
	if len(t.unlinkeds) == 0 {
		return
	}
	var hps []*hazards.Slot
	for _, b := range t.unlinkeds {
		for _, r := range b.nodes {
			b.inv.Invalidate(r.Ref)
			t.retireds = append(t.retireds, r)
		}
		hps = append(hps, b.hps...)
	}
	t.unlinkeds = t.unlinkeds[:0]
	// fence(SC) — implicit; orders invalidation before hazard revocation.
	if !t.d.opts.EpochFence {
		for _, s := range hps {
			t.release(s)
		}
		return
	}
	// Algorithm 5: piggyback revocation on heavy fences. A frontier
	// hazard pointer tagged with epoch e may be revoked once the fence
	// epoch reaches e+2, because a heavy fence must have been issued
	// between the two READEPOCH calls returning e and e+2 (Lemma A.2).
	epoch := t.d.ReadEpoch()
	kept := t.epochedHPs[:0]
	revoked := 0
	for _, eh := range t.epochedHPs {
		if eh.epoch+2 <= epoch {
			t.release(eh.s)
			revoked++
		} else {
			kept = append(kept, eh)
		}
	}
	t.epochedHPs = kept
	for _, s := range hps {
		t.epochedHPs = append(t.epochedHPs, epochedHP{epoch: epoch, s: s})
	}
	t.d.pendingRevoke.Add(int64(len(hps) - revoked))
}

// Reclaim scans the hazard slots and frees every retired (and invalidated)
// node that no slot protects. Under Algorithm 5 it first issues a
// FenceEpoch and revokes all of this thread's epoched frontier hazard
// pointers, which also bounds their number (§4.4).
func (t *Thread) Reclaim() {
	d := t.d
	t.retireds = d.orphans.Adopt(t.retireds)
	if d.opts.EpochFence {
		d.FenceEpoch()
		for _, eh := range t.epochedHPs {
			t.release(eh.s)
		}
		d.pendingRevoke.Add(-int64(len(t.epochedHPs)))
		t.epochedHPs = t.epochedHPs[:0]
	}
	if len(t.retireds) == 0 {
		return
	}
	start := time.Now()
	// No fence needed here: DoInvalidation (Alg. 3) or FenceEpoch above
	// (Alg. 5) already ordered invalidation with this scan.
	t.scan.Load(&d.reg)
	kept := t.retireds[:0]
	freed := int64(0)
	for _, r := range t.retireds {
		if t.scan.Contains(r.Ref) {
			kept = append(kept, r)
		} else {
			r.Free()
			freed++
		}
	}
	t.retireds = kept
	if freed > 0 {
		d.g.AddFreed(freed)
	}
	t.budget.Freed(freed)
	d.sm.AddScan(time.Since(start).Nanoseconds())
}

// Finish flushes pending invalidations, reclaims what it can, hands any
// leftovers to the domain's orphan list, and releases all slots.
func (t *Thread) Finish() {
	t.DoInvalidation()
	t.Reclaim()
	for _, s := range t.slots {
		t.d.reg.Release(s)
	}
	t.slots = nil
	for _, s := range t.cache {
		t.d.reg.Release(s)
	}
	t.cache = nil
	t.budget.Flush()
	if len(t.retireds) > 0 {
		t.d.orphans.Push(t.retireds)
		t.retireds = nil
	}
}

// PendingUnlinked returns the number of unlinked, not-yet-invalidated
// nodes held locally (for tests).
func (t *Thread) PendingUnlinked() int {
	n := 0
	for _, b := range t.unlinkeds {
		n += len(b.nodes)
	}
	return n
}

// RetiredLocal returns the number of locally retired, unfreed nodes.
func (t *Thread) RetiredLocal() int { return len(t.retireds) }

func (t *Thread) acquire() *hazards.Slot {
	if n := len(t.cache); n > 0 {
		s := t.cache[n-1]
		t.cache = t.cache[:n-1]
		return s
	}
	return t.d.reg.Acquire()
}

func (t *Thread) release(s *hazards.Slot) {
	s.Clear()
	if len(t.cache) < t.cacheCap() {
		t.cache = append(t.cache, s)
		return
	}
	t.d.reg.Release(s)
}

// cacheCap bounds the local frontier-slot cache by registry pressure.
// Cached slots stay acquired (inUse) in the registry, so hoarding them is
// only harmless while the registry has spare released slots; once every
// slot is taken, each cached one is a slot other threads' Acquire must
// skip — and one stranded forever if this goroutine exits without Finish.
// The allowance is therefore the registry's current free-slot count,
// capped at maxFrontierCache: under pressure the cache shrinks until every
// cached slot is matched by a free one in the registry, and surplus
// released slots go straight back (cheap via the registry's free-slot
// hint).
func (t *Thread) cacheCap() int {
	free := t.d.reg.Len() - t.d.reg.InUse()
	if free > maxFrontierCache {
		return maxFrontierCache
	}
	if free < 0 {
		return 0
	}
	return free
}

// CachedSlots returns the number of locally cached frontier slots (for
// tests).
func (t *Thread) CachedSlots() int { return len(t.cache) }
