package core

import (
	"sync/atomic"
	"testing"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/hazards"
	"github.com/gosmr/gosmr/internal/smr"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// node is a minimal linked node; the Invalid bit lives on next.
type node struct {
	next atomic.Uint64
}

type nodePool struct{ *arena.Pool[node] }

func (p nodePool) Invalidate(ref uint64) {
	n := p.Deref(ref)
	n.next.Store(n.next.Load() | tagptr.Invalid)
}

func newPool(mode arena.Mode) nodePool {
	return nodePool{arena.NewPool[node]("n", mode)}
}

func TestTryProtectFailsOnInvalidatedSource(t *testing.T) {
	d := NewDomain(Options{})
	p := newPool(arena.ModeDetect)
	th := d.NewThread(1)

	src, sn := p.Alloc()
	dst, _ := p.Alloc()
	sn.next.Store(tagptr.Pack(dst, 0))

	ptr := dst
	if !th.TryProtect(0, &ptr, &sn.next, &sn.next) {
		t.Fatal("protection from a valid source should succeed")
	}

	p.Invalidate(src)
	if th.TryProtect(0, &ptr, &sn.next, &sn.next) {
		t.Fatal("protection from an invalidated source must fail")
	}
}

func TestTryProtectSucceedsDespiteLogicalDeletion(t *testing.T) {
	// The under-approximation at work: a *marked* (logically deleted) but
	// not invalidated source still permits protection — this is what HP
	// forbids and HP++ allows.
	d := NewDomain(Options{})
	p := newPool(arena.ModeDetect)
	th := d.NewThread(1)

	_, sn := p.Alloc()
	dst, _ := p.Alloc()
	sn.next.Store(tagptr.Pack(dst, tagptr.Mark))

	ptr := dst
	if !th.TryProtect(0, &ptr, &sn.next, &sn.next) {
		t.Fatal("protection must ignore the logical-deletion tag")
	}
	if ptr != dst {
		t.Fatalf("ptr rewritten to %d", ptr)
	}
}

func TestTryProtectChasesChangedLink(t *testing.T) {
	d := NewDomain(Options{})
	p := newPool(arena.ModeDetect)
	th := d.NewThread(1)

	_, sn := p.Alloc()
	first, _ := p.Alloc()
	second, _ := p.Alloc()
	sn.next.Store(tagptr.Pack(second, 0)) // moved on before the protect

	ptr := first
	if !th.TryProtect(0, &ptr, &sn.next, &sn.next) {
		t.Fatal("protection should succeed with the updated target")
	}
	if ptr != second {
		t.Fatalf("ptr = %d, want %d", ptr, second)
	}
	if !d.Registry().Protects(second) {
		t.Fatal("slot does not announce the updated target")
	}
}

func TestTryUnlinkProtectsFrontier(t *testing.T) {
	d := NewDomain(Options{InvalidateEvery: 1 << 30, ReclaimEvery: 1 << 30})
	p := newPool(arena.ModeDetect)
	unlinker := d.NewThread(0)
	other := d.NewThread(0)

	victim, _ := p.Alloc()
	frontier, _ := p.Alloc()

	ok := unlinker.TryUnlink([]uint64{frontier}, func() ([]smr.Retired, bool) {
		return []smr.Retired{{Ref: victim, D: p}}, true
	}, p)
	if !ok {
		t.Fatal("unlink failed")
	}

	// Another thread retires the frontier node (as if it unlinked it
	// next); the frontier hazard pointer must keep it alive.
	other.Retire(frontier, p)
	other.Reclaim()
	if !p.Live(frontier) {
		t.Fatal("frontier node freed while the unlinker still protects it")
	}

	// After invalidation the unlinker's frontier protection is revoked.
	unlinker.DoInvalidation()
	other.Reclaim()
	if p.Live(frontier) {
		t.Fatal("frontier node not freed after protection was revoked")
	}
}

func TestTryUnlinkFailureReleasesProtection(t *testing.T) {
	d := NewDomain(Options{})
	p := newPool(arena.ModeDetect)
	th := d.NewThread(0)

	frontier, _ := p.Alloc()
	ok := th.TryUnlink([]uint64{frontier}, func() ([]smr.Retired, bool) {
		return nil, false // lost the CAS race
	}, p)
	if ok {
		t.Fatal("unlink reported success")
	}
	if d.Registry().Protects(frontier) {
		t.Fatal("failed unlink left the frontier protected")
	}
}

func TestInvalidateBeforeFree(t *testing.T) {
	// Guarantee (1) of §3.1: all unlinked nodes are invalidated before any
	// is freed.
	d := NewDomain(Options{InvalidateEvery: 1 << 30, ReclaimEvery: 1 << 30})
	p := newPool(arena.ModeDetect)
	th := d.NewThread(0)

	a, an := p.Alloc()
	b, bn := p.Alloc()
	an.next.Store(tagptr.Pack(b, tagptr.Mark))
	bn.next.Store(tagptr.Pack(0, tagptr.Mark))

	th.TryUnlink(nil, func() ([]smr.Retired, bool) {
		return []smr.Retired{{Ref: a, D: p}, {Ref: b, D: p}}, true
	}, p)

	// Before DoInvalidation: unlinked but valid, and must not be freed.
	th.Reclaim()
	if !p.Live(a) || !p.Live(b) {
		t.Fatal("node freed before invalidation")
	}
	if tagptr.IsInvalid(an.next.Load()) || tagptr.IsInvalid(bn.next.Load()) {
		t.Fatal("nodes invalidated too early")
	}

	th.DoInvalidation()
	if !tagptr.IsInvalid(an.next.Load()) || !tagptr.IsInvalid(bn.next.Load()) {
		t.Fatal("nodes not invalidated")
	}
	th.Reclaim()
	if p.Live(a) || p.Live(b) {
		t.Fatal("invalidated unprotected nodes not freed")
	}
	if d.Unreclaimed() != 0 {
		t.Fatalf("unreclaimed = %d", d.Unreclaimed())
	}
}

func TestProtectedUnlinkedNodeSurvives(t *testing.T) {
	// Scenario 1 of §3.1: a traverser protects q after it was unlinked but
	// before invalidation; q must survive reclamation.
	d := NewDomain(Options{InvalidateEvery: 1 << 30, ReclaimEvery: 1 << 30})
	p := newPool(arena.ModeDetect)
	unlinker := d.NewThread(0)
	traverser := d.NewThread(1)

	_, pn := p.Alloc() // p, logically deleted, points to q
	q, _ := p.Alloc()
	pn.next.Store(tagptr.Pack(q, tagptr.Mark))

	unlinker.TryUnlink(nil, func() ([]smr.Retired, bool) {
		return []smr.Retired{{Ref: q, D: p}}, true
	}, p)

	// p is not invalidated yet, so the traverser's protection succeeds.
	ptr := q
	if !traverser.TryProtect(0, &ptr, &pn.next, &pn.next) {
		t.Fatal("protection should succeed before invalidation")
	}

	unlinker.DoInvalidation()
	unlinker.Reclaim()
	if !p.Live(q) {
		t.Fatal("protected node freed — the patch-up failed")
	}

	traverser.Clear(0)
	unlinker.Reclaim()
	if p.Live(q) {
		t.Fatal("node not freed after protection cleared")
	}
}

func TestEpochFenceDefersRevocation(t *testing.T) {
	d := NewDomain(Options{EpochFence: true, InvalidateEvery: 1 << 30, ReclaimEvery: 1 << 30})
	p := newPool(arena.ModeDetect)
	th := d.NewThread(0)

	victim, _ := p.Alloc()
	frontier, _ := p.Alloc()
	th.TryUnlink([]uint64{frontier}, func() ([]smr.Retired, bool) {
		return []smr.Retired{{Ref: victim, D: p}}, true
	}, p)

	// Algorithm 5: DoInvalidation does NOT revoke the frontier hazard
	// pointer; it parks it with the current fence epoch.
	th.DoInvalidation()
	if !d.Registry().Protects(frontier) {
		t.Fatal("epoched revocation released the hazard pointer eagerly")
	}

	// Two fence epochs later, a DoInvalidation pass may release it.
	d.FenceEpoch()
	d.FenceEpoch()
	v2, _ := p.Alloc()
	th.TryUnlink(nil, func() ([]smr.Retired, bool) {
		return []smr.Retired{{Ref: v2, D: p}}, true
	}, p)
	th.DoInvalidation()
	if d.Registry().Protects(frontier) {
		t.Fatal("hazard pointer not released after epoch+2")
	}
}

func TestEpochFenceReclaimReleasesAll(t *testing.T) {
	d := NewDomain(Options{EpochFence: true, InvalidateEvery: 1 << 30, ReclaimEvery: 1 << 30})
	p := newPool(arena.ModeDetect)
	th := d.NewThread(0)

	victim, _ := p.Alloc()
	frontier, _ := p.Alloc()
	th.TryUnlink([]uint64{frontier}, func() ([]smr.Retired, bool) {
		return []smr.Retired{{Ref: victim, D: p}}, true
	}, p)
	th.DoInvalidation()

	th.Reclaim() // FenceEpoch + release all epoched hazard pointers
	if d.Registry().Protects(frontier) {
		t.Fatal("Reclaim did not release epoched hazard pointers")
	}
	if p.Live(victim) {
		t.Fatal("victim not freed by Reclaim")
	}
}

func TestReadEpochFenceEpoch(t *testing.T) {
	d := NewDomain(Options{EpochFence: true})
	e0 := d.ReadEpoch()
	d.FenceEpoch()
	if got := d.ReadEpoch(); got != e0+1 {
		t.Fatalf("epoch = %d, want %d", got, e0+1)
	}
}

func TestHybridRetirePath(t *testing.T) {
	// Backward compatibility (§4.2): plain Retire works like original HP.
	d := NewDomain(Options{ReclaimEvery: 4})
	p := newPool(arena.ModeReuse)
	th := d.NewThread(0)
	for i := 0; i < 16; i++ {
		ref, _ := p.Alloc()
		th.Retire(ref, p)
	}
	if got := p.Stats().Frees; got < 12 {
		t.Fatalf("frees = %d; hybrid retire path not reclaiming", got)
	}
}

func TestFinishHandsOffOrphans(t *testing.T) {
	d := NewDomain(Options{InvalidateEvery: 1 << 30, ReclaimEvery: 1 << 30})
	p := newPool(arena.ModeDetect)
	blocker := d.NewThread(1)

	dying := d.NewThread(0)
	ref, _ := p.Alloc()
	blocker.Protect(0, ref)
	dying.Retire(ref, p)
	dying.Finish()
	if !p.Live(ref) {
		t.Fatal("protected node freed at Finish")
	}

	blocker.Clear(0)
	survivor := d.NewThread(0)
	survivor.Reclaim()
	if p.Live(ref) {
		t.Fatal("orphan not adopted")
	}
}

// TestZeroValueOptionsReclaim is the regression test for the zero-modulus
// panics a Domain built from zero-value Options used to hit: the
// ReclaimEvery and InvalidateEvery moduli in Retire/TryUnlink divided by
// zero. Zero-value options now mean adaptive reclaim + default
// invalidation cadence.
func TestZeroValueOptionsReclaim(t *testing.T) {
	for name, d := range map[string]*Domain{
		"NewDomain(Options{})": NewDomain(Options{}),
		"&Domain{}":            {},
	} {
		t.Run(name, func(t *testing.T) {
			p := newPool(arena.ModeReuse)
			th := d.NewThread(1)
			for i := 0; i < 2*DefaultInvalidateEvery; i++ {
				ref, _ := p.Alloc()
				ok := th.TryUnlink(nil, func() ([]smr.Retired, bool) {
					return []smr.Retired{{Ref: ref, D: p}}, true
				}, p)
				if !ok {
					t.Fatal("unlink failed")
				}
			}
			for i := 0; i < 2*DefaultReclaimEvery; i++ {
				ref, _ := p.Alloc()
				th.Retire(ref, p)
			}
			th.Finish()
			if got := d.Unreclaimed(); got != 0 {
				t.Fatalf("unreclaimed after Finish = %d, want 0", got)
			}
		})
	}
}

// TestFrontierCacheBoundedByRegistryPressure is the regression test for
// frontier-slot stranding: the per-thread cache used to hold up to 64
// acquired slots unconditionally, so a goroutine exiting without Finish
// stranded them with inUse set forever. The cap is now tied to the
// registry's free-slot count: under pressure the cache drains to zero.
func TestFrontierCacheBoundedByRegistryPressure(t *testing.T) {
	d := NewDomain(Options{InvalidateEvery: 1, ReclaimEvery: 1 << 30})
	p := newPool(arena.ModeReuse)
	th := d.NewThread(0)
	unlink := func() {
		frontier := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
		ok := th.TryUnlink(frontier, func() ([]smr.Retired, bool) {
			ref, _ := p.Alloc()
			return []smr.Retired{{Ref: ref, D: p}}, true
		}, p)
		if !ok {
			t.Fatal("unlink failed")
		}
	}
	unlink() // InvalidateEvery=1: frontier slots released immediately
	if th.CachedSlots() == 0 {
		t.Fatal("expected cached frontier slots while the registry is idle")
	}

	// Apply pressure: take every free slot in the registry.
	reg := d.Registry()
	var held []*hazards.Slot
	for reg.Len() > reg.InUse() {
		held = append(held, reg.Acquire())
	}
	unlink()
	if free := reg.Len() - reg.InUse(); th.CachedSlots() > free {
		t.Fatalf("cache holds %d slots but registry has only %d free: hoarding under pressure",
			th.CachedSlots(), free)
	}
	if got := th.CachedSlots(); got >= 8 {
		t.Fatalf("cache did not shrink under pressure: %d slots", got)
	}

	// Pressure clears: the cache may fill again, bounded by free slots.
	for _, s := range held {
		reg.Release(s)
	}
	unlink()
	if th.CachedSlots() == 0 {
		t.Fatal("cache should refill once registry pressure clears")
	}
	free := reg.Len() - reg.InUse() + th.CachedSlots()
	if got := th.CachedSlots(); got > free {
		t.Fatalf("cache %d exceeds registry free-slot allowance %d", got, free)
	}
}

// TestAdaptiveCadenceExcludesRevocationBacklog pins the fix for a
// feedback loop in Algorithm 5 under the adaptive cadence: epoched
// frontier hazard pointers awaiting lazy revocation occupy acquired
// registry slots, so if they count toward H the threshold 2·H grows
// faster than the retired budget, Reclaim never fires, and a write-heavy
// run retains its whole retired set until Finish. With the backlog
// excluded the unreclaimed count must stay bounded mid-run.
func TestAdaptiveCadenceExcludesRevocationBacklog(t *testing.T) {
	d := NewDomain(Options{EpochFence: true}) // adaptive cadence (ReclaimEvery 0)
	p := newPool(arena.ModeDetect)
	th := d.NewThread(0)

	const unlinks = 4096
	peak := int64(0)
	for i := 0; i < unlinks; i++ {
		victim, _ := p.Alloc()
		frontier, _ := p.Alloc()
		th.TryUnlink([]uint64{frontier}, func() ([]smr.Retired, bool) {
			return []smr.Retired{{Ref: victim, D: p}}, true
		}, p)
		th.Retire(frontier, p)
		if u := d.Unreclaimed(); u > peak {
			peak = u
		}
	}
	// Each unlink retires 2 nodes; the bound is a few adaptive batches,
	// far below the 2*unlinks a re-broken cadence would retain.
	if bound := int64(4 * DefaultReclaimEvery); peak > bound {
		t.Fatalf("unreclaimed peaked at %d (> bound %d): adaptive cadence is tracking the revocation backlog again", peak, bound)
	}
	th.Finish()
}
