package nbr

import (
	"testing"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/smr"
)

func TestRetireEventuallyFrees(t *testing.T) {
	d := NewDomain()
	p := arena.NewPool[uint64]("t", arena.ModeDetect)
	g := d.NewGuardNBR(2)
	g.Pin()
	ref, _ := p.Alloc()
	g.Retire(ref, p)
	g.Unpin()
	for i := 0; i < 6; i++ {
		g.Collect()
	}
	if p.Live(ref) {
		t.Fatal("retired node not freed")
	}
}

// TestBelowPressureBehavesLikeEBR: without retired-budget pressure a
// lagging pinned reader must never be neutralized — the scheme is plain
// EBR and the reader legitimately blocks reclamation.
func TestBelowPressureBehavesLikeEBR(t *testing.T) {
	d := NewDomain()
	d.NeutralizePressure = 1 << 20 // unreachable: never neutralize
	p := arena.NewPool[uint64]("t", arena.ModeReuse)
	lag := d.NewGuardNBR(2)
	lag.Pin() // stalls at the starting epoch

	w := d.NewGuardNBR(2)
	ref, _ := p.Alloc()
	w.Pin()
	w.Retire(ref, p)
	w.Unpin()
	for i := 0; i < 20; i++ {
		w.Pin()
		w.Unpin()
		w.Collect()
	}
	if d.Neutralizations() != 0 {
		t.Fatalf("neutralizations = %d below pressure, want 0", d.Neutralizations())
	}
	if !lag.Track(0, 123) {
		t.Fatal("Track failed with no neutralization pending")
	}
	if !p.Live(ref) {
		t.Fatal("node freed while a pinned reader blocked the epoch — EBR rule broken")
	}
	lag.Unpin()
	for i := 0; i < 6; i++ {
		w.Collect()
	}
	if p.Live(ref) {
		t.Fatal("node not freed after the straggler unpinned")
	}
}

// TestLaggingReaderNeutralizedUnderPressure: once the retired budget
// passes the pressure threshold, the parked reader is flagged, observes it
// at its next checkpoint, and reclamation proceeds without it.
func TestLaggingReaderNeutralizedUnderPressure(t *testing.T) {
	d := NewDomain()
	d.NeutralizePressure = 1
	p := arena.NewPool[uint64]("t", arena.ModeReuse)
	lag := d.NewGuardNBR(2)
	lag.Pin() // parks at the starting epoch

	w := d.NewGuardNBR(2)
	ref, _ := p.Alloc()
	w.Pin()
	w.Retire(ref, p)
	w.Unpin()
	// Push the budget past pressure and drive collections.
	for i := 0; i < 600; i++ {
		w.Pin()
		r, _ := p.Alloc()
		w.Retire(r, p)
		w.Unpin()
	}
	for i := 0; i < 6; i++ {
		w.Collect()
	}
	if d.Neutralizations() == 0 {
		t.Fatal("parked reader was never neutralized under pressure")
	}
	if !lag.Neutralized() {
		t.Fatal("guard does not observe its own neutralization")
	}
	if p.Live(ref) {
		t.Fatal("neutralization did not unblock reclamation")
	}
	if lag.Track(0, 123) {
		t.Fatal("Track must fail after neutralization")
	}
	// Recovery: the abort-to-checkpoint protocol (Unpin, Pin) acks the
	// flag and the reader proceeds.
	lag.Unpin()
	lag.Pin()
	if !lag.Track(0, 123) {
		t.Fatal("Track must succeed after re-pin")
	}
	lag.Unpin()
}

// TestCheckpointProtectsAcrossNeutralization: a neutralized reader's
// announced nodes must survive until it acknowledges, even while the
// epoch advances past it.
func TestCheckpointProtectsAcrossNeutralization(t *testing.T) {
	d := NewDomain()
	d.NeutralizePressure = 1
	p := arena.NewPool[uint64]("t", arena.ModeDetect)
	reader := d.NewGuardNBR(2)
	w := d.NewGuardNBR(2)

	ref, _ := p.Alloc()
	reader.Pin()
	if !reader.Track(0, ref) {
		t.Fatal("track failed unexpectedly")
	}

	w.Pin()
	w.Retire(ref, p)
	w.Unpin()
	for i := 0; i < 600; i++ {
		w.Pin()
		r, _ := p.Alloc()
		w.Retire(r, p)
		w.Unpin()
	}
	for i := 0; i < 20; i++ {
		w.Pin()
		w.Unpin()
		w.Collect()
	}
	if !reader.Neutralized() {
		t.Fatal("reader should have been neutralized by now")
	}
	if !p.Live(ref) {
		t.Fatal("announced node freed after neutralization — NBR safety broken")
	}

	// Once the reader aborts to its checkpoint and moves on, the node can
	// be reclaimed.
	reader.Unpin()
	reader.Pin()
	reader.Track(0, 0)
	reader.Unpin()
	for i := 0; i < 6; i++ {
		w.Collect()
	}
	if p.Live(ref) {
		t.Fatal("node not freed after checkpoint released")
	}
}

// TestUnsafeIgnoreCheckpointsIsUnsafe is the unit-level must-fail control:
// with the checkpoint scan disabled, the same parked-reader scenario frees
// the announced node out from under the reader, proving the scan is the
// load-bearing half of neutralization safety.
func TestUnsafeIgnoreCheckpointsIsUnsafe(t *testing.T) {
	d := NewDomain()
	d.NeutralizePressure = 1
	d.UnsafeIgnoreCheckpoints = true
	p := arena.NewPool[uint64]("t", arena.ModeDetect)
	reader := d.NewGuardNBR(2)
	w := d.NewGuardNBR(2)

	ref, _ := p.Alloc()
	reader.Pin()
	reader.Track(0, ref)

	w.Pin()
	w.Retire(ref, p)
	w.Unpin()
	for i := 0; i < 600; i++ {
		w.Pin()
		r, _ := p.Alloc()
		w.Retire(r, p)
		w.Unpin()
	}
	for i := 0; i < 20; i++ {
		w.Pin()
		w.Unpin()
		w.Collect()
	}
	if p.Live(ref) {
		t.Fatal("control failed: announced node survived with the checkpoint scan disabled")
	}
}

// TestGarbageBoundedDespiteStall is the robustness contrast with EBR: a
// parked pinned reader is neutralized once pressure builds, so garbage
// stays near the pressure threshold instead of growing without bound.
func TestGarbageBoundedDespiteStall(t *testing.T) {
	d := NewDomain()
	p := arena.NewPool[uint64]("t", arena.ModeReuse)
	stalled := d.NewGuardNBR(2)
	stalled.Pin()

	w := d.NewGuardNBR(2)
	const n = 5000
	for i := 0; i < n; i++ {
		w.Pin()
		ref, _ := p.Alloc()
		w.Retire(ref, p)
		w.Unpin()
	}
	w.Collect()
	bound := d.pressure() + 3*int64(DefaultCollectEvery) + MaxCheckpoints
	if d.Unreclaimed() > bound {
		t.Fatalf("unreclaimed = %d > bound %d despite neutralization; not robust",
			d.Unreclaimed(), bound)
	}
	if d.Neutralizations() == 0 {
		t.Fatal("stalled reader never neutralized")
	}
}

// TestStatsGauges: Neutralizations counts flag raises and
// NeutralizedStalled tracks flagged-but-unacknowledged guards, dropping
// back to zero once the reader acks by re-pinning.
func TestStatsGauges(t *testing.T) {
	d := NewDomain()
	d.NeutralizePressure = 1
	p := arena.NewPool[uint64]("t", arena.ModeReuse)
	lag := d.NewGuardNBR(2)
	lag.Pin()

	w := d.NewGuardNBR(2)
	for i := 0; i < 600; i++ {
		w.Pin()
		ref, _ := p.Alloc()
		w.Retire(ref, p)
		w.Unpin()
	}
	for i := 0; i < 6; i++ {
		w.Pin()
		w.Unpin()
		w.Collect()
	}
	st := d.Stats()
	if st.Scheme != "nbr" {
		t.Fatalf("scheme = %q", st.Scheme)
	}
	if st.Neutralizations == 0 {
		t.Fatal("Stats.Neutralizations = 0 after a neutralization")
	}
	if st.NeutralizedStalled != 1 {
		t.Fatalf("NeutralizedStalled = %d with one parked flagged reader, want 1", st.NeutralizedStalled)
	}

	// Ack: abort to checkpoint, then let a Collect refresh the gauge.
	lag.Unpin()
	lag.Pin()
	w.Collect()
	if st := d.Stats(); st.NeutralizedStalled != 0 {
		t.Fatalf("NeutralizedStalled = %d after the reader re-pinned, want 0", st.NeutralizedStalled)
	}
	lag.Unpin()
}

// TestZeroValueDomainCollects mirrors the ebr/pebr regression: a
// zero-value &Domain{} literal must select the adaptive cadence and
// lazily initialize its epoch.
func TestZeroValueDomainCollects(t *testing.T) {
	d := &Domain{}
	p := arena.NewPool[uint64]("zv", arena.ModeReuse)
	g := d.NewGuardNBR(2)
	for i := 0; i < 2*DefaultCollectEvery; i++ {
		g.Pin()
		ref, _ := p.Alloc()
		g.Retire(ref, p)
		g.Unpin()
	}
	for i := 0; i < 6; i++ {
		g.Collect()
	}
	if got := d.Unreclaimed(); got != 0 {
		t.Fatalf("unreclaimed after collect = %d, want 0", got)
	}
	if got := d.epoch.Load(); got < 2 {
		t.Fatalf("zero-value domain epoch = %d, want lazy init to >= 2", got)
	}
}

// TestFinishReleasesRecordAndOrphans: a finished guard's record must be
// recyclable and its leftover bag adopted and freed by a survivor.
func TestFinishReleasesRecordAndOrphans(t *testing.T) {
	d := NewDomain()
	p := arena.NewPool[uint64]("fin", arena.ModeDetect)

	g := d.NewGuardNBR(1)
	g.Pin()
	ref, _ := p.Alloc()
	g.Retire(ref, p)
	g.Unpin()
	g.Finish() // the entry is too young to free inline -> orphaned

	if total, live := d.Records(); total != 1 || live != 0 {
		t.Fatalf("records after finish = (%d,%d), want (1,0)", total, live)
	}

	g2 := d.NewGuardNBR(1)
	if total, live := d.Records(); total != 1 || live != 1 {
		t.Fatalf("record not recycled: (%d,%d), want (1,1)", total, live)
	}
	for i := 0; i < 6; i++ {
		g2.Collect()
	}
	if p.Live(ref) {
		t.Fatal("orphaned entry never freed")
	}
	if d.Unreclaimed() != 0 {
		t.Fatalf("unreclaimed = %d", d.Unreclaimed())
	}
	g2.Finish()
}

// TestFinishReleasesCheckpoints: a guard that dies while announcing a
// checkpoint must not pin the node forever.
func TestFinishReleasesCheckpoints(t *testing.T) {
	d := NewDomain()
	d.NeutralizePressure = 1
	p := arena.NewPool[uint64]("fin-ckpt", arena.ModeDetect)

	reader := d.NewGuardNBR(1)
	reader.Pin()
	ref, _ := p.Alloc()
	if !reader.Track(0, ref) {
		t.Fatal("track failed with no neutralization pending")
	}

	w := d.NewGuardNBR(1)
	w.Pin()
	w.Retire(ref, p)
	w.Unpin()
	for i := 0; i < 600; i++ {
		w.Pin()
		r, _ := p.Alloc()
		w.Retire(r, p)
		w.Unpin()
	}
	for i := 0; i < 10; i++ {
		w.Pin()
		w.Unpin()
		w.Collect()
	}
	if !p.Live(ref) {
		t.Fatal("announced node freed while its announcer was live")
	}

	reader.Finish()
	for i := 0; i < 6; i++ {
		w.Collect()
	}
	if p.Live(ref) {
		t.Fatal("node not freed after its announcer finished")
	}
	w.Finish()
	if d.Unreclaimed() != 0 {
		t.Fatalf("unreclaimed = %d", d.Unreclaimed())
	}
}

// TestGuardChurnRecyclesRecords: sequential guard churn must recycle one
// record instead of growing the list with guards ever created.
func TestGuardChurnRecyclesRecords(t *testing.T) {
	d := NewDomain()
	p := arena.NewPool[uint64]("churn", arena.ModeReuse)
	for i := 0; i < 100; i++ {
		g := d.NewGuardNBR(1)
		g.Pin()
		ref, _ := p.Alloc()
		g.Track(0, ref)
		g.Retire(ref, p)
		g.Unpin()
		g.Finish()
	}
	if total, live := d.Records(); total != 1 || live != 0 {
		t.Fatalf("sequential churn records = (%d,%d), want (1,0)", total, live)
	}
	g := d.NewGuardNBR(1)
	for i := 0; i < 8; i++ {
		g.Collect()
	}
	g.Finish()
	if got := d.Unreclaimed(); got != 0 {
		t.Fatalf("unreclaimed after churn drain = %d", got)
	}
}

var _ smr.Guard = (*Guard)(nil)
