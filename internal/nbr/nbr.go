// Package nbr implements neutralization-based reclamation in the
// NBR/DEBRA+ lineage (Singh, Blelloch & Wen, PPoPP 2021; Brown, PODC
// 2015), adapted to cooperative Go scheduling: readers traverse inside a
// restartable section whose deref steps double as checkpoints, and a
// reclaimer under retired-budget pressure *neutralizes* lagging readers
// instead of waiting for them.
//
// The original NBR interrupts stalled threads with POSIX signals and
// longjmps them back to a checkpoint. Go has no safe analogue — goroutines
// cannot be signalled — so neutralization here is cooperative: the
// reclaimer raises a per-record flag, and the reader observes it at its
// next checkpoint (Track) and restarts its operation. Nodes already
// announced in checkpoint slots remain protected across the restart
// (reclaimers respect the slots exactly like hazard pointers), so the
// reclaimer never needs to wait for the ack: it advances the epoch past
// the flagged record immediately and frees everything not announced.
//
// Two regimes follow. Below the pressure threshold (NeutralizePressure ×
// the adaptive collect threshold) nothing is ever flagged and the scheme
// behaves exactly like EBR — same epoch rule, same throughput. Above it,
// a lagging pinned reader is flagged and stops blocking advancement, so a
// parked participant caps unreclaimed growth at roughly the pressure
// threshold instead of the unbounded EBR backlog. A truly-dead goroutine
// (one that never reaches another checkpoint) still pins at most its
// MaxCheckpoints announced nodes forever and is surfaced as
// NeutralizedStalled in smr.Stats.
package nbr

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gosmr/gosmr/internal/smr"
)

const (
	// DefaultCollectEvery is the number of retires between collections
	// under the fixed cadence; it doubles as the floor of the adaptive
	// threshold.
	DefaultCollectEvery = 128
	// DefaultNeutralizePressure scales the neutralization trigger: lagging
	// pinned readers are flagged only once the domain-wide retired total
	// reaches NeutralizePressure × the adaptive collect threshold. Below
	// that the scheme is plain EBR; the factor keeps neutralization a
	// pressure-relief valve rather than the steady state, so the restart
	// tax stays off the common path.
	DefaultNeutralizePressure = 4
	// MaxCheckpoints is the number of checkpoint slots per guard, sized
	// like pebr.MaxShields for the deepest users (skiplist levels, Bonsai
	// build path).
	MaxCheckpoints = 80
)

// rec state word: epoch<<2 | pinned | neutralized.
const (
	neutralizedBit = 1
	pinnedBit      = 2
)

type rec struct {
	state       atomic.Uint64
	inUse       atomic.Uint32
	next        *rec
	checkpoints [MaxCheckpoints]atomic.Uint64
}

// Domain is an NBR reclamation domain.
type Domain struct {
	epoch atomic.Uint64
	// minEpoch and stalled cache the last Collect walk's observations so
	// Stats stays O(1) (see pebr.Domain.minEpoch for why).
	minEpoch atomic.Uint64
	stalled  atomic.Int64
	threads  atomic.Pointer[rec]
	g        smr.Garbage
	sm       smr.ScanMeter
	budget   smr.Budget
	guards   atomic.Int64 // live (unfinished) guards: the H of the adaptive threshold

	// orphans holds epoch-tagged bags abandoned by finished guards,
	// adopted by the next Collect; see ebr.Domain for the design.
	orphanMu sync.Mutex
	orphanN  atomic.Int32
	orphans  []entry

	// CollectEvery, if set > 0 before use, pins the fixed per-guard
	// cadence: one collection attempt every CollectEvery retires. When
	// <= 0 (the zero value and the NewDomain default) the cadence is
	// adaptive: a guard collects when the domain-wide retired total (the
	// shared smr.Budget) reaches max(DefaultCollectEvery, k·guards).
	// NeutralizePressure overrides DefaultNeutralizePressure if set > 0
	// before use.
	CollectEvery       int
	NeutralizePressure int

	// UnsafeIgnoreCheckpoints disables the checkpoint-slot scan during
	// Collect, so a neutralized reader's announced nodes are freed out
	// from under it. It exists only for the must-fail control that proves
	// the slot scan is load-bearing; never set it outside that test.
	UnsafeIgnoreCheckpoints bool

	neutralizations atomic.Int64
}

// NewDomain creates an NBR domain with the adaptive collection cadence.
func NewDomain() *Domain {
	d := &Domain{}
	d.epoch.Store(2) // start above 0 so "min ≥ e+2" arithmetic is uniform
	d.minEpoch.Store(2)
	return d
}

// Unreclaimed returns the number of retired-but-unfreed nodes.
func (d *Domain) Unreclaimed() int64 { return d.g.Unreclaimed() }

// PeakUnreclaimed returns the peak retired-but-unfreed count.
func (d *Domain) PeakUnreclaimed() int64 { return d.g.PeakUnreclaimed() }

// Epoch returns the current global epoch (for tests and diagnostics).
func (d *Domain) Epoch() uint64 { return d.epoch.Load() }

// Neutralizations returns the cumulative number of reader neutralizations.
func (d *Domain) Neutralizations() int64 { return d.neutralizations.Load() }

// pressure returns the retired-budget level at which lagging readers are
// neutralized.
func (d *Domain) pressure() int64 {
	p := d.NeutralizePressure
	if p <= 0 {
		p = DefaultNeutralizePressure
	}
	return int64(p) * int64(smr.ReclaimThreshold(int(d.guards.Load()), DefaultCollectEvery))
}

// Stats returns an observability snapshot of the domain. EpochLag and
// NeutralizedStalled read the values cached by the last Collect walk, so
// snapshots are O(1); both are stale by at most one collection interval.
// NeutralizedStalled counts guards that were neutralized and had not yet
// re-pinned when Collect last looked — transiently nonzero for cooperative
// readers mid-restart, persistently nonzero for a dead goroutine.
func (d *Domain) Stats() smr.Stats {
	e := d.epoch.Load()
	min := d.minEpoch.Load()
	if min == 0 || min > e {
		min = e
	}
	st := smr.Stats{
		Scheme:             "nbr",
		RetiredBudget:      d.budget.Load(),
		Epoch:              e,
		EpochLag:           e - min,
		Neutralizations:    d.neutralizations.Load(),
		NeutralizedStalled: d.stalled.Load(),
	}
	smr.FillStats(&st, &d.g, &d.sm)
	return st
}

func (d *Domain) acquireRec() *rec {
	d.guards.Add(1)
	// Lazy epoch init for zero-value &Domain{} literals; see
	// ebr.Domain.acquireRec.
	d.epoch.CompareAndSwap(0, 2)
	for r := d.threads.Load(); r != nil; r = r.next {
		if r.inUse.Load() == 0 && r.inUse.CompareAndSwap(0, 1) {
			return r
		}
	}
	r := &rec{}
	r.inUse.Store(1)
	for {
		h := d.threads.Load()
		r.next = h
		if d.threads.CompareAndSwap(h, r) {
			return r
		}
	}
}

type entry struct {
	r     smr.Retired
	epoch uint64
}

// pushOrphans hands a finished guard's leftover bag to the domain.
func (d *Domain) pushOrphans(bag []entry) {
	d.orphanMu.Lock()
	d.orphans = append(d.orphans, bag...)
	d.orphanN.Store(int32(len(d.orphans)))
	d.orphanMu.Unlock()
}

// adoptOrphans appends all orphaned entries to dst, clears the list, and
// returns dst. The atomic count makes the common empty case lock-free.
func (d *Domain) adoptOrphans(dst []entry) []entry {
	if d.orphanN.Load() == 0 {
		return dst
	}
	d.orphanMu.Lock()
	dst = append(dst, d.orphans...)
	d.orphans = d.orphans[:0]
	d.orphanN.Store(0)
	d.orphanMu.Unlock()
	return dst
}

// Records reports the size of the guard-record list: total records ever
// created and how many are currently held by live guards. See
// ebr.Domain.Records.
func (d *Domain) Records() (total, live int) {
	for r := d.threads.Load(); r != nil; r = r.next {
		total++
		if r.inUse.Load() != 0 {
			live++
		}
	}
	return total, live
}

// Guard is a per-worker NBR handle implementing smr.Guard.
type Guard struct {
	d       *Domain
	r       *rec
	bag     []entry
	retires int
	budget  smr.BudgetCache
	scratch []uint64 // reusable sorted checkpoint snapshot
}

// NewGuard returns a guard with checkpoint slots for the smr.Guard
// protocol. slots must be at most MaxCheckpoints.
func (d *Domain) NewGuard(slots int) smr.Guard { return d.NewGuardNBR(slots) }

// NewGuardNBR returns a concretely-typed guard.
func (d *Domain) NewGuardNBR(slots int) *Guard {
	if slots > MaxCheckpoints {
		panic("nbr: too many checkpoint slots requested")
	}
	return &Guard{d: d, r: d.acquireRec(), budget: smr.NewBudgetCache(&d.budget)}
}

// Pin enters a restartable section at the current epoch. Storing a fresh
// state word clears any pending neutralization flag — re-pinning is the
// reader's acknowledgement that it has aborted to its checkpoint.
func (g *Guard) Pin() {
	e := g.d.epoch.Load()
	g.r.state.Store(e<<2 | pinnedBit)
}

// Unpin leaves the restartable section.
func (g *Guard) Unpin() {
	g.r.state.Store(g.r.state.Load() &^ uint64(pinnedBit|neutralizedBit))
}

// Track announces that checkpoint slot i protects ref, then checks for a
// pending neutralization. On false the caller must not dereference ref and
// must abort to its checkpoint (Unpin, Pin, restart); nodes announced in
// other slots remain protected across the abort. The SC ordering of the
// slot store before the state load, against Collect's flag CAS before its
// slot scan, guarantees that either the reader sees the flag or the
// collector sees the announcement — never neither.
func (g *Guard) Track(i int, ref uint64) bool {
	g.r.checkpoints[i].Store(ref)
	// fence(SC) — implicit; orders the checkpoint store before the state load.
	return g.r.state.Load()&neutralizedBit == 0
}

// ClearCheckpoints revokes all checkpoint announcements. Call when a
// worker goes idle so stale announcements do not pin dead nodes
// indefinitely.
func (g *Guard) ClearCheckpoints() {
	for i := range g.r.checkpoints {
		g.r.checkpoints[i].Store(0)
	}
}

// Neutralized reports whether the guard has been flagged since Pin.
func (g *Guard) Neutralized() bool { return g.r.state.Load()&neutralizedBit != 0 }

// Retire schedules a node for freeing.
func (g *Guard) Retire(ref uint64, dealloc smr.Deallocator) {
	g.bag = append(g.bag, entry{smr.Retired{Ref: ref, D: dealloc}, g.d.epoch.Load()})
	g.d.g.AddRetired(1)
	g.retires++
	if g.shouldCollect(g.budget.Retire()) {
		g.Collect()
	}
}

// shouldCollect decides the collection cadence: the fixed per-guard
// modulus when CollectEvery is positive, otherwise the adaptive threshold
// max(DefaultCollectEvery, k·guards) applied to the domain-wide retired
// total, consulted only on the budget cache's batch boundaries (see
// ebr.Guard.shouldCollect for the amortization argument).
func (g *Guard) shouldCollect(published bool) bool {
	if every := g.d.CollectEvery; every > 0 {
		return g.retires%every == 0
	}
	return published &&
		g.budget.Total() >= int64(smr.ReclaimThreshold(int(g.d.guards.Load()), DefaultCollectEvery))
}

// Collect attempts to advance the epoch — neutralizing lagging readers
// once the retired budget passes the pressure threshold — and frees every
// bag entry that is old enough and not announced in any checkpoint slot.
func (g *Guard) Collect() {
	d := g.d
	start := time.Now()
	g.bag = d.adoptOrphans(g.bag)
	underPressure := d.budget.Load() >= d.pressure()
	e := d.epoch.Load()
	min := e
	blocked := false
	stalled := int64(0)
	for r := d.threads.Load(); r != nil; r = r.next {
		st := r.state.Load()
		if st&pinnedBit == 0 {
			continue
		}
		if st&neutralizedBit != 0 {
			// Flagged and not yet re-pinned: does not block advance; its
			// announced nodes are protected by the checkpoint scan below.
			stalled++
			continue
		}
		ep := st >> 2
		if ep >= e {
			continue
		}
		// Lagging pinned reader. Under pressure, flag it so it stops
		// blocking advancement; otherwise wait, exactly like EBR.
		if underPressure && r.state.CompareAndSwap(st, st|neutralizedBit) {
			d.neutralizations.Add(1)
			stalled++
			continue
		}
		blocked = true
		if ep < min {
			min = ep
		}
	}
	if !blocked {
		if d.epoch.CompareAndSwap(e, e+1) {
			min = e + 1 // nothing pinned behind; the new epoch has no lag
		}
	}
	// Publish the walk's observations for O(1) Stats (last-writer-wins
	// gauges; see pebr.Guard.Collect).
	d.minEpoch.Store(min)
	d.stalled.Store(stalled)
	// Snapshot checkpoint slots into a reusable sorted buffer: neutralized
	// (and all other) readers' announced nodes stay unreclaimed, like
	// hazard pointers. Skipped only by the must-fail control.
	g.scratch = g.scratch[:0]
	if !d.UnsafeIgnoreCheckpoints {
		for r := d.threads.Load(); r != nil; r = r.next {
			for i := range r.checkpoints {
				if v := r.checkpoints[i].Load(); v != 0 {
					g.scratch = append(g.scratch, v)
				}
			}
		}
		slices.Sort(g.scratch)
	}
	kept := g.bag[:0]
	freed := int64(0)
	for _, en := range g.bag {
		_, protected := slices.BinarySearch(g.scratch, en.r.Ref)
		if !protected && en.epoch+2 <= min {
			en.r.Free()
			freed++
		} else {
			kept = append(kept, en)
		}
	}
	g.bag = kept
	if freed > 0 {
		d.g.AddFreed(freed)
	}
	g.budget.Freed(freed)
	d.sm.AddScan(time.Since(start).Nanoseconds())
}

// Drain repeatedly collects until the local bag is empty. The guard must
// be unpinned, no other guard may be parked while pinned below the
// pressure threshold, and no entry may sit in a live checkpoint slot,
// otherwise Drain spins forever; it is intended for orderly shutdown in
// tests and benchmarks.
func (g *Guard) Drain() {
	for len(g.bag) > 0 {
		g.Collect()
	}
}

// Finish retires the guard itself: checkpoints are revoked (a finished
// guard must not pin dead nodes forever), the final collection attempt
// runs, any survivors go to the domain's orphan list, and the guard record
// is released for reuse. The guard must not be used after Finish.
func (g *Guard) Finish() {
	g.ClearCheckpoints()
	g.Unpin()
	g.Collect() // also flushes the budget cache via Freed
	if len(g.bag) > 0 {
		g.d.pushOrphans(g.bag)
		g.bag = nil
	}
	g.budget.Flush()
	g.d.guards.Add(-1)
	g.r.inUse.Store(0)
	g.r = nil
}

// BagLen returns the number of locally retired, unfreed nodes.
func (g *Guard) BagLen() int { return len(g.bag) }

var _ smr.GuardDomain = (*Domain)(nil)
