package smr

import (
	"sync"
	"testing"
)

func TestBudgetCacheFlushesOnBatchBoundary(t *testing.T) {
	var b Budget
	c := NewBudgetCache(&b)
	for i := 1; i < BudgetBatch; i++ {
		if c.Retire() {
			t.Fatalf("flush boundary reported at %d retires", i)
		}
		if got := b.Load(); got != 0 {
			t.Fatalf("shared counter leaked early: %d after %d retires", got, i)
		}
	}
	if !c.Retire() {
		t.Fatalf("no flush boundary at %d retires", BudgetBatch)
	}
	if got := b.Load(); got != BudgetBatch {
		t.Fatalf("shared counter = %d, want %d", got, BudgetBatch)
	}
	if got := c.Total(); got != BudgetBatch {
		t.Fatalf("Total = %d, want %d", got, BudgetBatch)
	}
}

func TestBudgetCacheFreedCreditsSharedCounter(t *testing.T) {
	var b Budget
	c := NewBudgetCache(&b)
	for i := 0; i < BudgetBatch; i++ {
		c.Retire()
	}
	// Retire a few more without reaching the next boundary, then report a
	// scan that freed most of the domain total.
	for i := 0; i < 5; i++ {
		c.Retire()
	}
	c.Freed(30)
	if got := b.Load(); got != BudgetBatch+5-30 {
		t.Fatalf("shared counter = %d, want %d", got, BudgetBatch+5-30)
	}
	if got := c.Total(); got != b.Load() {
		t.Fatalf("Total = %d disagrees with shared %d after Freed", got, b.Load())
	}
}

func TestBudgetCacheFlushPublishesPending(t *testing.T) {
	var b Budget
	c := NewBudgetCache(&b)
	for i := 0; i < 7; i++ {
		c.Retire()
	}
	c.Flush()
	if got := b.Load(); got != 7 {
		t.Fatalf("shared counter = %d after Flush, want 7", got)
	}
	c.Flush() // idempotent on empty pending
	if got := b.Load(); got != 7 {
		t.Fatalf("second Flush changed counter to %d", got)
	}
}

func TestBudgetSharedAcrossThreads(t *testing.T) {
	var b Budget
	const workers = 8
	const perWorker = 10 * BudgetBatch
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewBudgetCache(&b)
			for i := 0; i < perWorker; i++ {
				c.Retire()
			}
			c.Flush()
		}()
	}
	wg.Wait()
	if got := b.Load(); got != workers*perWorker {
		t.Fatalf("domain total = %d, want %d", got, workers*perWorker)
	}
}

func TestReclaimThresholdAdaptive(t *testing.T) {
	if got := ReclaimThreshold(0, 128); got != 128 {
		t.Fatalf("floor not applied: %d", got)
	}
	if got := ReclaimThreshold(100, 128); got != AdaptiveFactor*100 {
		t.Fatalf("k*H not applied: %d", got)
	}
}

func TestStatsFillFromGarbage(t *testing.T) {
	var g Garbage
	var m ScanMeter
	g.AddRetired(100)
	g.AddFreed(60)
	g.AddRetired(0) // peak tracking is in Unreclaimed bookkeeping
	m.AddScan(1500)
	m.AddScan(500)
	st := Stats{Scheme: "test"}
	FillStats(&st, &g, &m)
	if st.TotalRetired != 100 || st.TotalFreed != 60 {
		t.Fatalf("retired/freed = %d/%d", st.TotalRetired, st.TotalFreed)
	}
	if st.Unreclaimed != 40 {
		t.Fatalf("unreclaimed = %d, want 40", st.Unreclaimed)
	}
	if st.Scans != 2 || st.ScanNs != 2000 {
		t.Fatalf("scans/ns = %d/%d", st.Scans, st.ScanNs)
	}
	if st.FreedPerScan != 30 {
		t.Fatalf("freed per scan = %v, want 30", st.FreedPerScan)
	}
}
