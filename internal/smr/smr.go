// Package smr defines the vocabulary shared by all safe-memory-reclamation
// schemes in this repository: retired garbage, deallocation targets, the
// guard protocol used by critical-section style schemes (EBR, PEBR, NR),
// and unreclaimed-garbage accounting used by the benchmark harness.
package smr

import "sync/atomic"

// Deallocator frees an arena slot by reference. *arena.Pool[T] implements
// it for every T.
type Deallocator interface {
	FreeRef(ref uint64)
}

// Retired is a node that has been detached from its data structure and
// handed to a reclamation scheme, but not yet freed.
type Retired struct {
	Ref uint64
	D   Deallocator
}

// Free deallocates the retired node.
func (r Retired) Free() { r.D.FreeRef(r.Ref) }

// Guard is the per-operation handle protocol used by the shared
// "optimistic traversal" data-structure implementations. EBR, PEBR and NR
// implement it; HP, HP++ and RC use their own richer APIs.
//
// A Guard belongs to a single worker goroutine and is not safe for
// concurrent use.
type Guard interface {
	// Pin enters a critical section. Nodes that are unlinked and retired
	// after Pin remain safe to access until Unpin.
	Pin()
	// Unpin leaves the critical section.
	Unpin()
	// Track announces that protection slot i covers ref and reports
	// whether the traversal may continue. It returns false only when the
	// guard has been neutralized (PEBR ejection, NBR checkpoint abort);
	// the caller must then Unpin, Pin and restart from the data
	// structure's entry point.
	// For EBR and NR it is a no-op returning true.
	Track(i int, ref uint64) bool
	// Retire hands an unlinked node to the scheme for eventual freeing.
	// Must be called inside a critical section.
	Retire(ref uint64, d Deallocator)
}

// Domain is implemented by every reclamation scheme instance.
type Domain interface {
	// Unreclaimed returns the number of retired-but-not-yet-freed nodes.
	Unreclaimed() int64
	// PeakUnreclaimed returns the maximum value Unreclaimed has reached.
	PeakUnreclaimed() int64
	// Stats returns an observability snapshot of the domain. The Arena*
	// fields are the harness's responsibility, not the scheme's.
	Stats() Stats
}

// GuardDomain is a Domain whose per-thread handles follow the Guard
// protocol (EBR, PEBR, NR).
type GuardDomain interface {
	Domain
	// NewGuard returns a guard with capacity for at least slots
	// protection slots. One guard per worker goroutine.
	NewGuard(slots int) Guard
}

// counterPad fills the remainder of a 64-byte cache line after an 8-byte
// atomic counter, so each Garbage counter lives on its own line: every
// Retire from every thread hits cur and totalRetired, and without padding
// those writes also invalidate the line holding peak/totalFreed in every
// other core's cache (false sharing).
type counterPad [56]byte

// Garbage tracks retired-but-unreclaimed node counts for a scheme
// instance. All methods are safe for concurrent use.
type Garbage struct {
	cur          atomic.Int64
	_            counterPad
	peak         atomic.Int64
	_            counterPad
	totalRetired atomic.Int64
	_            counterPad
	totalFreed   atomic.Int64
	_            counterPad
}

// AddRetired records n newly retired nodes.
func (g *Garbage) AddRetired(n int64) {
	g.totalRetired.Add(n)
	c := g.cur.Add(n)
	for {
		p := g.peak.Load()
		if c <= p || g.peak.CompareAndSwap(p, c) {
			return
		}
	}
}

// AddFreed records n nodes handed back to the allocator.
func (g *Garbage) AddFreed(n int64) {
	g.totalFreed.Add(n)
	g.cur.Add(-n)
}

// Unreclaimed returns the current retired-but-unreclaimed count.
func (g *Garbage) Unreclaimed() int64 { return g.cur.Load() }

// PeakUnreclaimed returns the maximum retired-but-unreclaimed count seen.
func (g *Garbage) PeakUnreclaimed() int64 { return g.peak.Load() }

// TotalRetired returns the cumulative number of retired nodes.
func (g *Garbage) TotalRetired() int64 { return g.totalRetired.Load() }

// TotalFreed returns the cumulative number of freed nodes.
func (g *Garbage) TotalFreed() int64 { return g.totalFreed.Load() }
