package smr

// This file encodes the paper's qualitative comparisons as data so the
// cmd/tables tool can regenerate Table 1 (scheme comparison) and Table 2
// (applicability matrix) from the codebase itself.

// SchemeInfo is one column of Table 1.
type SchemeInfo struct {
	Name              string
	SystemRequirement string
	FailureCondition  string
	FailureHandling   string
	Overhead          string
	UnreclaimedBound  string
	// Implemented reports whether this repository contains the scheme.
	Implemented bool
	Package     string
}

// Table1 reproduces the paper's Table 1, extended with the schemes this
// repository implements beyond the robust-and-widely-applicable set.
func Table1() []SchemeInfo {
	return []SchemeInfo{
		{
			Name:              "PEBR",
			SystemRequirement: "heavy fence (optional)",
			FailureCondition:  "neutralization",
			FailureHandling:   "custom handling",
			Overhead:          "protection, validation, critical section",
			UnreclaimedBound:  "O(hazards + neutralization threshold)",
			Implemented:       true,
			Package:           "internal/pebr",
		},
		{
			Name:              "NBR",
			SystemRequirement: "signal, non-local jump",
			FailureCondition:  "neutralization",
			FailureHandling:   "only applicable to access-aware DS",
			Overhead:          "protection on phase change, CS validation",
			UnreclaimedBound:  "O(hazards + neutralization threshold)",
			Implemented:       false,
			Package:           "(not in the paper's benchmark suite)",
		},
		{
			Name:              "VBR",
			SystemRequirement: "custom allocator, wide CAS",
			FailureCondition:  "outdated object/field",
			FailureHandling:   "custom handling",
			Overhead:          "validation",
			UnreclaimedBound:  "O(threads)",
			Implemented:       false,
			Package:           "(not in the paper's benchmark suite)",
		},
		{
			Name:              "HP++",
			SystemRequirement: "heavy fence (optional)",
			FailureCondition:  "invalidated object",
			FailureHandling:   "custom handling",
			Overhead:          "protection, validation, frontier protection, invalidation",
			UnreclaimedBound:  "O(hazards + frontiers + reclamation threshold)",
			Implemented:       true,
			Package:           "internal/core",
		},
		{
			Name:              "HP",
			SystemRequirement: "heavy fence (optional)",
			FailureCondition:  "unreachable object (over-approximated)",
			FailureHandling:   "custom handling",
			Overhead:          "protection, validation",
			UnreclaimedBound:  "O(hazards + reclamation threshold)",
			Implemented:       true,
			Package:           "internal/hp",
		},
		{
			Name:              "EBR",
			SystemRequirement: "none",
			FailureCondition:  "never fails",
			FailureHandling:   "none",
			Overhead:          "critical section announcement",
			UnreclaimedBound:  "unbounded (not robust)",
			Implemented:       true,
			Package:           "internal/ebr",
		},
		{
			Name:              "RC (CDRC-EBR)",
			SystemRequirement: "none",
			FailureCondition:  "never fails",
			FailureHandling:   "weak pointers for cycles",
			Overhead:          "eager increments, deferred decrements",
			UnreclaimedBound:  "unbounded (EBR underneath)",
			Implemented:       true,
			Package:           "internal/rc",
		},
	}
}

// Applicability is one row of Table 2.
type Applicability struct {
	DataStructure string
	Reference     string
	HP            string // "yes", "no", "lockfree" (▲: wait-freedom lost), "effort" (*)
	DEBRAp        string
	NBR           string
	EBR           string
	HPP           string // HP++, PEBR, VBR column of the paper
	// InRepo names this repository's package when the structure is
	// implemented here.
	InRepo string
}

// Table2 reproduces the paper's Table 2 applicability matrix.
func Table2() []Applicability {
	return []Applicability{
		{"linked list (lazy)", "Heller+ 2006", "no", "no", "lockfree", "yes", "lockfree", ""},
		{"linked list (Harris)", "Harris 2001", "no", "effort", "yes", "yes", "yes", "internal/ds/hhslist"},
		{"linked list (Harris-Michael)", "Michael 2002", "yes", "effort", "no", "yes", "yes", "internal/ds/hmlist"},
		{"partially ext. BST", "Drachsler+ 2014", "no", "no", "restructure", "yes", "yes", ""},
		{"ext. BST", "Ellen+ 2010", "yes", "effort", "yes", "yes", "yes", "internal/ds/efrbtree"},
		{"ext. BST", "Natarajan-Mittal 2014", "no", "effort", "yes", "yes", "yes", "internal/ds/nmtree"},
		{"ext. BST", "Ellen+ 2014", "yes", "effort", "no", "yes", "yes", ""},
		{"ext. BST", "David+ 2015", "no", "no", "lockfree", "yes", "lockfree", ""},
		{"int. BST", "Howley-Jones 2012", "no", "effort", "yes", "yes", "yes", ""},
		{"int. BST", "Ramachandran-Mittal 2015", "no", "no", "no", "yes", "yes", ""},
		{"partially ext. AVL", "Bronson+ 2010", "yes", "no", "no", "yes", "yes", ""},
		{"partially ext. AVL", "Drachsler+ 2014", "no", "no", "no", "yes", "yes", ""},
		{"ext. relaxed AVL", "He-Li 2017", "no", "yes", "yes", "yes", "yes", ""},
		{"ext. AVL", "Brown 2017", "no", "yes", "yes", "yes", "yes", ""},
		{"patricia trie", "Shafiei 2019", "no", "effort", "lockfree", "yes", "lockfree", ""},
		{"ext. chromatic tree", "Brown+ 2014", "no", "yes", "yes", "yes", "yes", ""},
		{"ext. (a,b)-tree", "Brown 2017", "no", "yes", "yes", "yes", "yes", ""},
		{"ext. interpolation tree", "Brown+ 2020", "no", "no", "no", "yes", "lockfree", ""},
		// Additional structures this repository evaluates (paper §5):
		{"skiplist (Herlihy-Shavit)", "Herlihy-Shavit 2012", "yes*", "-", "-", "yes", "yes", "internal/ds/skiplist"},
		{"Bonsai tree (CoW)", "Clements+ 2012", "yes*", "-", "-", "yes", "yes", "internal/ds/bonsai"},
	}
}
