package smr

import (
	"sync"
	"testing"
	"testing/quick"
)

type fakeDealloc struct{ freed []uint64 }

func (f *fakeDealloc) FreeRef(ref uint64) { f.freed = append(f.freed, ref) }

func TestRetiredFree(t *testing.T) {
	d := &fakeDealloc{}
	r := Retired{Ref: 42, D: d}
	r.Free()
	if len(d.freed) != 1 || d.freed[0] != 42 {
		t.Fatalf("freed = %v", d.freed)
	}
}

func TestGarbageAccounting(t *testing.T) {
	var g Garbage
	g.AddRetired(10)
	g.AddRetired(5)
	if g.Unreclaimed() != 15 || g.PeakUnreclaimed() != 15 {
		t.Fatalf("cur=%d peak=%d", g.Unreclaimed(), g.PeakUnreclaimed())
	}
	g.AddFreed(12)
	if g.Unreclaimed() != 3 {
		t.Fatalf("cur=%d", g.Unreclaimed())
	}
	if g.PeakUnreclaimed() != 15 {
		t.Fatalf("peak dropped: %d", g.PeakUnreclaimed())
	}
	g.AddRetired(20)
	if g.PeakUnreclaimed() != 23 {
		t.Fatalf("peak=%d, want 23", g.PeakUnreclaimed())
	}
	if g.TotalRetired() != 35 || g.TotalFreed() != 12 {
		t.Fatalf("totals %d/%d", g.TotalRetired(), g.TotalFreed())
	}
}

func TestGarbagePeakConcurrent(t *testing.T) {
	var g Garbage
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.AddRetired(1)
				g.AddFreed(1)
			}
		}()
	}
	wg.Wait()
	if g.Unreclaimed() != 0 {
		t.Fatalf("cur=%d", g.Unreclaimed())
	}
	if p := g.PeakUnreclaimed(); p < 1 || p > 8 {
		t.Fatalf("peak=%d outside [1,8]", p)
	}
}

// TestGarbageInvariant: under any interleaving of retires and frees,
// peak >= cur and totals balance.
func TestGarbageInvariant(t *testing.T) {
	prop := func(ops []int8) bool {
		var g Garbage
		outstanding := int64(0)
		for _, op := range ops {
			if op >= 0 {
				g.AddRetired(int64(op))
				outstanding += int64(op)
			} else if outstanding > 0 {
				// Negate after widening: -int8(-128) overflows back to
				// -128, which would turn AddFreed into a negative free.
				n := -int64(op)
				if n > outstanding {
					n = outstanding
				}
				g.AddFreed(n)
				outstanding -= n
			}
		}
		return g.Unreclaimed() == outstanding &&
			g.PeakUnreclaimed() >= g.Unreclaimed() &&
			g.TotalRetired()-g.TotalFreed() == g.Unreclaimed()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOrphanListPushAdopt(t *testing.T) {
	var o OrphanList
	d := &fakeDealloc{}
	o.Push([]Retired{{Ref: 1, D: d}, {Ref: 2, D: d}})
	o.Push([]Retired{{Ref: 3, D: d}})
	got := o.Adopt(nil)
	if len(got) != 3 {
		t.Fatalf("adopted %d, want 3", len(got))
	}
	// Second adopt is empty.
	if got := o.Adopt(nil); len(got) != 0 {
		t.Fatalf("second adopt = %v", got)
	}
}

func TestOrphanListConcurrent(t *testing.T) {
	var o OrphanList
	d := &fakeDealloc{}
	var wg sync.WaitGroup
	const pushers = 4
	const bags = 100
	for w := 0; w < pushers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < bags; i++ {
				o.Push([]Retired{{Ref: uint64(i), D: d}})
			}
		}()
	}
	total := 0
	var mu sync.Mutex
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := len(o.Adopt(nil))
				mu.Lock()
				total += n
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	total += len(o.Adopt(nil))
	if total != pushers*bags {
		t.Fatalf("adopted %d, want %d", total, pushers*bags)
	}
}

func TestRegistryTablesPopulated(t *testing.T) {
	t1 := Table1()
	if len(t1) < 5 {
		t.Fatalf("Table1 has %d rows", len(t1))
	}
	implemented := 0
	for _, s := range t1 {
		if s.Implemented {
			implemented++
			if s.Package == "" {
				t.Errorf("%s implemented but no package", s.Name)
			}
		}
	}
	if implemented < 5 {
		t.Fatalf("only %d schemes implemented", implemented)
	}
	t2 := Table2()
	if len(t2) < 18 {
		t.Fatalf("Table2 has %d rows, want the paper's 18+", len(t2))
	}
	inRepo := 0
	for _, a := range t2 {
		if a.InRepo != "" {
			inRepo++
		}
	}
	if inRepo < 6 {
		t.Fatalf("only %d structures mapped to packages", inRepo)
	}
}
