package smr

import "sync/atomic"

// OrphanList collects retire bags abandoned by finished threads so that a
// surviving thread's next reclamation pass can adopt and free them. Orphan
// traffic is rare (thread shutdown only), so a spinlock suffices.
type OrphanList struct {
	mu   atomic.Uint32
	n    atomic.Int32
	bags [][]Retired
}

func (o *OrphanList) lock() {
	for !o.mu.CompareAndSwap(0, 1) {
	}
}

func (o *OrphanList) unlock() { o.mu.Store(0) }

// Push hands a bag of retired nodes to the list.
func (o *OrphanList) Push(bag []Retired) {
	o.lock()
	o.bags = append(o.bags, bag)
	o.n.Add(1)
	o.unlock()
}

// Adopt appends all orphaned bags to dst, clears the list, and returns dst.
func (o *OrphanList) Adopt(dst []Retired) []Retired {
	if o.n.Load() == 0 {
		return dst
	}
	o.lock()
	for _, b := range o.bags {
		dst = append(dst, b...)
	}
	o.bags = o.bags[:0]
	o.n.Store(0)
	o.unlock()
	return dst
}
