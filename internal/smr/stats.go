package smr

import "sync/atomic"

// Stats is a point-in-time observability snapshot of a reclamation domain:
// how much garbage it holds, how hard the scan path is working, and how
// far behind the slowest participant is. Every scheme implements
// Domain.Stats; the bench and stress harnesses additionally fill the Arena*
// fields from the data structure's pools before emitting JSON.
//
// Fields that do not apply to a scheme are left zero: only the HP family
// has hazard slots, only the epoch family has epochs, only PEBR ejects.
type Stats struct {
	// Scheme is the implementing scheme's short name ("hp", "hp++",
	// "ebr", "pebr", "nbr", "rc", "nr", "unsafefree").
	Scheme string `json:"scheme"`

	// Unreclaimed / PeakUnreclaimed are the current and high-water
	// retired-but-unfreed node counts; TotalRetired / TotalFreed the
	// cumulative flows they are the difference of.
	Unreclaimed     int64 `json:"unreclaimed"`
	PeakUnreclaimed int64 `json:"peak_unreclaimed"`
	TotalRetired    int64 `json:"total_retired"`
	TotalFreed      int64 `json:"total_freed"`

	// Scans counts reclamation passes (HP/HP++ hazard scans, EBR/PEBR
	// collects); ScanNs is the cumulative wall time spent in them and
	// FreedPerScan the mean nodes freed per pass (0 when Scans == 0).
	Scans        int64   `json:"scans"`
	ScanNs       int64   `json:"scan_ns"`
	FreedPerScan float64 `json:"freed_per_scan"`

	// RetiredBudget is the domain-wide shared retired total driving the
	// adaptive trigger (smr.Budget); it lags Unreclaimed by at most the
	// per-thread caches' unpublished counts.
	RetiredBudget int64 `json:"retired_budget,omitempty"`

	// HazardSlots / HazardSlotsInUse report hazard-slot occupancy for the
	// HP family (registry length and currently acquired count).
	HazardSlots      int `json:"hazard_slots,omitempty"`
	HazardSlotsInUse int `json:"hazard_slots_in_use,omitempty"`

	// Epoch is the global epoch and EpochLag its distance to the oldest
	// pinned participant (0 when nothing is pinned) for the epoch family.
	Epoch    uint64 `json:"epoch,omitempty"`
	EpochLag uint64 `json:"epoch_lag,omitempty"`

	// Ejections counts PEBR neutralizations of lagging guards.
	Ejections int64 `json:"ejections,omitempty"`

	// Neutralizations counts NBR flag raises against lagging readers;
	// NeutralizedStalled is a gauge of guards that were flagged and had
	// not re-pinned (acknowledged) as of the last Collect walk — a
	// persistently nonzero value means a dead participant whose announced
	// checkpoints pin up to MaxCheckpoints nodes forever.
	Neutralizations    int64 `json:"neutralizations,omitempty"`
	NeutralizedStalled int64 `json:"neutralized_stalled,omitempty"`

	// ArenaLive / ArenaQuarantined are filled by the harness from the
	// target's arena pools: live slots still allocated, and slots parked
	// in detect-mode quarantine instead of being reused.
	ArenaLive        int64 `json:"arena_live,omitempty"`
	ArenaQuarantined int64 `json:"arena_quarantined,omitempty"`
}

// ScanMeter accumulates reclamation-pass counters for FillStats. Embed it
// next to a Garbage and call AddScan once per pass.
type ScanMeter struct {
	scans  atomic.Int64
	_      counterPad
	scanNs atomic.Int64
	_      counterPad
}

// AddScan records one reclamation pass that took ns wall nanoseconds.
func (m *ScanMeter) AddScan(ns int64) {
	m.scans.Add(1)
	m.scanNs.Add(ns)
}

// Scans returns the number of reclamation passes recorded.
func (m *ScanMeter) Scans() int64 { return m.scans.Load() }

// FillStats populates the garbage-flow and scan-rate fields of st from g
// and m (m may be nil for schemes with no scan pass, e.g. nr).
func FillStats(st *Stats, g *Garbage, m *ScanMeter) {
	st.Unreclaimed = g.Unreclaimed()
	st.PeakUnreclaimed = g.PeakUnreclaimed()
	st.TotalRetired = g.TotalRetired()
	st.TotalFreed = g.TotalFreed()
	if m != nil {
		st.Scans = m.Scans()
		st.ScanNs = m.scanNs.Load()
		if st.Scans > 0 {
			st.FreedPerScan = float64(st.TotalFreed) / float64(st.Scans)
		}
	}
}
