package smr

import "sync/atomic"

// AdaptiveFactor is the k in the adaptive reclamation threshold
// R = max(floor, k·H). Scanning only once the domain's retired total
// reaches k·H guarantees each scan pass can free all but the at-most-H
// protected references, so the amortized per-retire scan cost stays
// constant no matter how many threads join (Michael 2004). The hazards
// package re-exports this constant for the HP family.
const AdaptiveFactor = 2

// ReclaimThreshold returns the adaptive scan threshold for h protection
// slots (hazard slots, shields, or guard records, depending on the
// scheme): max(floor, AdaptiveFactor·h). The floor keeps tiny domains
// from scanning on every retire.
func ReclaimThreshold(h, floor int) int {
	if r := AdaptiveFactor * h; r > floor {
		return r
	}
	return floor
}

// BudgetBatch is the per-thread caching granularity of a Budget: a thread
// publishes its retire count to the shared counter (and re-reads the
// shared total) only once per BudgetBatch retires, so the shared cache
// line is touched O(1/BudgetBatch) times per retire instead of every
// time. It also rate-limits adaptive scans — a thread consults the
// domain-wide threshold at most once per BudgetBatch local retires, which
// keeps the amortized scan cost constant even when other threads hold
// enough garbage to keep the domain total permanently above threshold.
const BudgetBatch = 32

// Budget is the domain-wide retired-but-unreclaimed counter that the
// shared-budget reclaim trigger reads: every scheme instance owns one,
// every thread/guard batches updates into it through a BudgetCache, and
// scans fire on max(floor, k·H) of this domain total rather than of any
// single thread's retired-set size. Padding keeps the hot counter off
// every neighbouring field's cache line. The zero value is ready to use.
type Budget struct {
	_ counterPad
	n atomic.Int64
	_ counterPad
}

// Add atomically adds delta (which may be negative) and returns the new
// domain total.
func (b *Budget) Add(delta int64) int64 { return b.n.Add(delta) }

// Load returns the current domain-wide retired total. It may run behind
// the true total by up to BudgetBatch-1 per active thread (unpublished
// per-thread pending counts).
func (b *Budget) Load() int64 { return b.n.Load() }

// BudgetCache is a thread-local view of a shared Budget. It is owned by a
// single thread/guard and is not safe for concurrent use; the Budget it
// points at is shared.
type BudgetCache struct {
	b       *Budget
	pending int64 // local retires not yet published to b
	shared  int64 // shared total as of the last publish
}

// NewBudgetCache returns a cache publishing into b.
func NewBudgetCache(b *Budget) BudgetCache { return BudgetCache{b: b} }

// Retire records one local retire. It reports whether this call published
// the pending count to the shared Budget (once per BudgetBatch retires) —
// the moment at which callers should consult the domain-wide reclaim
// threshold, so threshold checks and scan attempts are both rate-limited
// to the batch cadence.
func (c *BudgetCache) Retire() bool {
	c.pending++
	if c.pending >= BudgetBatch {
		c.Flush()
		return true
	}
	return false
}

// Freed publishes any pending retires minus n nodes freed by a scan, and
// refreshes the cached shared total. Call it after every reclamation pass
// that freed n > 0 nodes so the domain total falls promptly.
func (c *BudgetCache) Freed(n int64) {
	c.shared = c.b.Add(c.pending - n)
	c.pending = 0
}

// Flush publishes the pending count and refreshes the cached shared
// total. Threads must flush before abandoning the cache (Finish) so the
// domain total does not permanently under-count orphaned garbage.
func (c *BudgetCache) Flush() {
	c.shared = c.b.Add(c.pending)
	c.pending = 0
}

// Total returns this thread's best estimate of the domain-wide retired
// total: the shared count observed at the last publish plus the local
// pending retires. It involves no atomics.
func (c *BudgetCache) Total() int64 { return c.shared + c.pending }
