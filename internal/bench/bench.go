// Package bench is the benchmark harness reproducing the HP++ paper's
// evaluation (§5 and Appendix C): workload generation, timed multi-worker
// runs, unreclaimed-garbage and memory sampling, and the long-running-read
// and robustness scenarios.
package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/smr"
)

// Workload is the operation mix of a run.
type Workload int

// Workloads of the paper: write-only (50% insert / 50% delete), read-write
// (50% read / 25% insert / 25% delete), read-most (90% read / 5% / 5%).
const (
	WriteOnly Workload = iota
	ReadWrite
	ReadMost
)

// String returns the paper's name for the workload.
func (w Workload) String() string {
	switch w {
	case WriteOnly:
		return "write-only"
	case ReadWrite:
		return "read-write"
	case ReadMost:
		return "read-most"
	}
	return "unknown"
}

// ParseWorkload converts a name to a Workload.
func ParseWorkload(s string) (Workload, error) {
	switch s {
	case "write-only", "write":
		return WriteOnly, nil
	case "read-write", "rw":
		return ReadWrite, nil
	case "read-most", "read":
		return ReadMost, nil
	}
	return 0, fmt.Errorf("bench: unknown workload %q", s)
}

// Handle is the per-worker operation surface every data-structure variant
// exposes.
type Handle interface {
	Get(key uint64) (uint64, bool)
	Insert(key, val uint64) bool
	Delete(key uint64) bool
}

// PoolInfo is the slice of the arena pool API the stress harness needs:
// bug counters, panic-vs-count switching, and the deref fault-injection
// hook. Every *arena.Pool[T] (and the per-package pool wrappers embedding
// one) satisfies it.
type PoolInfo interface {
	Name() string
	Stats() arena.Stats
	Mode() arena.Mode
	SetCount()
	SetDerefHook(func(uint64))
}

// Target is one (data structure, scheme) instance under test. NewTarget
// in targets.go builds them.
type Target struct {
	DS     string
	Scheme string

	// NewHandle returns a fresh per-worker handle. Called from the main
	// goroutine only.
	NewHandle func() Handle
	// Finish drains reclamation after all workers stop.
	Finish func()
	// Unreclaimed returns the scheme's retired-but-unfreed count.
	Unreclaimed func() int64
	// PeakUnreclaimed returns the scheme's exact peak unreclaimed count.
	PeakUnreclaimed func() int64
	// Stats returns the scheme domain's smr.Stats snapshot.
	Stats func() smr.Stats
	// MemBytes returns live arena bytes (nodes allocated and not freed).
	MemBytes func() int64
	// Stall, if non-nil, creates a participant that enters a critical
	// section (or holds a protection) and never progresses — the
	// robustness adversary of §4.4.
	Stall func()
	// StallRelease, if non-nil, finishes every participant Stall created,
	// so a post-measurement drain can reach zero. RunWithStall calls it
	// after recording the stalled-phase measurements; a Stall without a
	// paired release would leave Finish running against a live pinned
	// guard and the scenario could never assert recovery.
	StallRelease func()
	// Pools lists every arena pool backing the target, for UAF and
	// double-free attribution in detect-mode stress runs.
	Pools []PoolInfo
	// Agitate, if non-nil, performs one pulse of reclamation pressure
	// from a dedicated goroutine: an epoch-advance/ejection attempt for
	// EBR/PEBR (the PEBR neutralization storm), a reclamation scan for
	// HP/HP++, a collection for RC. Safe to call concurrently with
	// workers, but only from one goroutine.
	Agitate func()
}

// Config parameterizes a run.
type Config struct {
	Threads  int
	Duration time.Duration
	Workload Workload
	KeyRange uint64
	// Prefill is the fraction of the key range inserted before the run
	// (the paper uses 0.5).
	Prefill float64
	// SampleEvery is the unreclaimed/memory sampling period.
	SampleEvery time.Duration
	// Seed makes runs reproducible.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.KeyRange == 0 {
		c.KeyRange = 10000
	}
	if c.Prefill == 0 {
		c.Prefill = 0.5
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 5 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 0x9E3779B97F4A7C15
	}
	return c
}

// Result is the outcome of one run.
type Result struct {
	Target   string        `json:"target"`
	Ops      uint64        `json:"ops"`
	Duration time.Duration `json:"duration_ns"`
	// MopsPerSec is throughput in million operations per second.
	MopsPerSec float64 `json:"mops_per_sec"`
	// PeakUnreclaimed is the exact peak retired-but-unfreed count.
	PeakUnreclaimed int64 `json:"peak_unreclaimed"`
	// AvgUnreclaimed is the time-sampled average unreclaimed count.
	AvgUnreclaimed float64 `json:"avg_unreclaimed"`
	// PeakMemBytes is the sampled peak of live arena bytes.
	PeakMemBytes int64 `json:"peak_mem_bytes"`
	// FinalUnreclaimed is the unreclaimed count after Finish.
	FinalUnreclaimed int64 `json:"final_unreclaimed"`
	// StalledUnreclaimed is the unreclaimed count at measurement end while
	// the stalled participant was still parked (before StallRelease and
	// Finish). Only RunWithStall fills it.
	StalledUnreclaimed int64 `json:"stalled_unreclaimed,omitempty"`
	// Stats is the domain's smr.Stats snapshot taken after Finish, with
	// the arena fields filled from the target's pools.
	Stats smr.Stats `json:"smr_stats"`
}

// SMRStats snapshots the target's scheme stats and fills the arena
// live/quarantine fields from its pools (quarantined slots are exactly the
// freed ones in detect mode, which never recycles).
func (t Target) SMRStats() smr.Stats {
	var st smr.Stats
	if t.Stats != nil {
		st = t.Stats()
	}
	for _, p := range t.Pools {
		ps := p.Stats()
		st.ArenaLive += ps.Live
		if p.Mode() == arena.ModeDetect {
			st.ArenaQuarantined += ps.Frees
		}
	}
	return st
}

// rng is a splitmix64 generator; each worker owns one.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n uint64) uint64 { return r.next() % n }

// Prefill inserts roughly Prefill*KeyRange keys using h, in a shuffled
// order: the unbalanced external trees (NM, EFRB) degenerate into
// 50K-deep sticks if a big key range is inserted ascending.
func Prefill(h Handle, cfg Config) {
	cfg = cfg.withDefaults()
	r := rng{s: cfg.Seed ^ 0xDEADBEEF}
	keys := make([]uint64, cfg.KeyRange)
	for i := range keys {
		keys[i] = uint64(i)
	}
	for i := len(keys) - 1; i > 0; i-- {
		j := r.intn(uint64(i + 1))
		keys[i], keys[j] = keys[j], keys[i]
	}
	for _, k := range keys {
		if float64(r.next()%1000)/1000 < cfg.Prefill {
			h.Insert(k, k)
		}
	}
}

// Run executes the configured workload against target and reports the
// measurements.
func Run(target Target, cfg Config) Result {
	res := run(target, cfg)
	finishResult(&res, target)
	return res
}

// finishResult drains the target and fills the post-drain fields.
func finishResult(res *Result, target Target) {
	target.Finish()
	res.FinalUnreclaimed = target.Unreclaimed()
	res.Stats = target.SMRStats()
}

// run executes the workload and fills the measurement-phase fields,
// leaving the target undrained so RunWithStall can release its stalled
// participant before the single Finish.
func run(target Target, cfg Config) Result {
	cfg = cfg.withDefaults()
	handles := make([]Handle, cfg.Threads)
	for i := range handles {
		handles[i] = target.NewHandle()
	}
	Prefill(handles[0], cfg)

	var (
		stop    atomic.Bool
		ops     atomic.Uint64
		wg      sync.WaitGroup
		sampWG  sync.WaitGroup
		samples int64
		sumUnr  int64
		peakMem int64
	)

	// Sampler: unreclaimed average and memory peak.
	sampWG.Add(1)
	go func() {
		defer sampWG.Done()
		tick := time.NewTicker(cfg.SampleEvery)
		defer tick.Stop()
		for !stop.Load() {
			<-tick.C
			u := target.Unreclaimed()
			sumUnr += u
			samples++
			if m := target.MemBytes(); m > peakMem {
				peakMem = m
			}
		}
	}()

	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(h Handle, seed uint64) {
			defer wg.Done()
			r := rng{s: seed}
			local := uint64(0)
			for !stop.Load() {
				for i := 0; i < 64; i++ {
					k := r.intn(cfg.KeyRange)
					c := r.next() % 100
					switch cfg.Workload {
					case WriteOnly:
						if c < 50 {
							h.Insert(k, k)
						} else {
							h.Delete(k)
						}
					case ReadWrite:
						if c < 50 {
							h.Get(k)
						} else if c < 75 {
							h.Insert(k, k)
						} else {
							h.Delete(k)
						}
					default: // ReadMost
						if c < 90 {
							h.Get(k)
						} else if c < 95 {
							h.Insert(k, k)
						} else {
							h.Delete(k)
						}
					}
					local++
				}
			}
			ops.Add(local)
		}(handles[w], cfg.Seed+uint64(w)*0x1234567)
	}

	start := time.Now()
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	sampWG.Wait()
	elapsed := time.Since(start)

	res := Result{
		Target:          target.DS + "/" + target.Scheme,
		Ops:             ops.Load(),
		Duration:        elapsed,
		MopsPerSec:      float64(ops.Load()) / elapsed.Seconds() / 1e6,
		PeakUnreclaimed: target.PeakUnreclaimed(),
		PeakMemBytes:    peakMem,
	}
	if samples > 0 {
		res.AvgUnreclaimed = float64(sumUnr) / float64(samples)
	}
	return res
}

// RunLongReads is the Figure 10 scenario: half the workers run get()
// over a large pre-filled key range (long traversals for list structures)
// while the other half continuously push and pop keys below the read
// range, generating reclamation pressure right at the entry of the
// structure. It reports reader-only throughput.
func RunLongReads(target Target, cfg Config) Result {
	cfg = cfg.withDefaults()
	if cfg.Threads < 2 {
		cfg.Threads = 2
	}
	const churnSpan = 1024
	readBase := uint64(4 * churnSpan)

	readers := cfg.Threads / 2
	writers := cfg.Threads - readers
	handles := make([]Handle, cfg.Threads)
	for i := range handles {
		handles[i] = target.NewHandle()
	}
	// Prefill the read range only.
	r := rng{s: cfg.Seed ^ 0xDEADBEEF}
	for k := uint64(0); k < cfg.KeyRange; k++ {
		if r.next()%2 == 0 {
			handles[0].Insert(readBase+k, k)
		}
	}

	var (
		stop    atomic.Bool
		reads   atomic.Uint64
		wg      sync.WaitGroup
		sampWG  sync.WaitGroup
		samples int64
		sumUnr  int64
		peakMem int64
	)
	sampWG.Add(1)
	go func() {
		defer sampWG.Done()
		tick := time.NewTicker(cfg.SampleEvery)
		defer tick.Stop()
		for !stop.Load() {
			<-tick.C
			sumUnr += target.Unreclaimed()
			samples++
			if m := target.MemBytes(); m > peakMem {
				peakMem = m
			}
		}
	}()

	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(h Handle, seed uint64) {
			defer wg.Done()
			r := rng{s: seed}
			local := uint64(0)
			for !stop.Load() {
				h.Get(readBase + r.intn(cfg.KeyRange))
				local++
			}
			reads.Add(local)
		}(handles[w], cfg.Seed+uint64(w)*7777)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(h Handle, seed uint64) {
			defer wg.Done()
			r := rng{s: seed}
			for !stop.Load() {
				k := r.intn(churnSpan)
				h.Insert(k, k)
				h.Delete(k)
			}
		}(handles[readers+w], cfg.Seed+uint64(w)*31337)
	}

	start := time.Now()
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	sampWG.Wait()
	elapsed := time.Since(start)

	res := Result{
		Target:          target.DS + "/" + target.Scheme,
		Ops:             reads.Load(),
		Duration:        elapsed,
		MopsPerSec:      float64(reads.Load()) / elapsed.Seconds() / 1e6,
		PeakUnreclaimed: target.PeakUnreclaimed(),
		PeakMemBytes:    peakMem,
	}
	if samples > 0 {
		res.AvgUnreclaimed = float64(sumUnr) / float64(samples)
	}
	finishResult(&res, target)
	return res
}

// RunWithStall is the §4.4 robustness scenario: before the normal run, a
// scheme-specific stalled participant is created via target.Stall — a
// guard that pins a critical section (EBR/PEBR/NBR) or a thread holding a
// protection (HP/HP++) and never progresses. The interesting outputs are
// PeakUnreclaimed and StalledUnreclaimed — bounded for HP/HP++/PEBR/NBR,
// unbounded for EBR — and FinalUnreclaimed, which must drain to zero for
// every reclaiming scheme once the stalled participant is released via
// target.StallRelease (recovery).
func RunWithStall(target Target, cfg Config) Result {
	if target.Stall != nil {
		target.Stall()
	}
	res := run(target, cfg)
	res.StalledUnreclaimed = target.Unreclaimed()
	if target.StallRelease != nil {
		target.StallRelease()
	}
	finishResult(&res, target)
	return res
}
