package bench

import (
	"fmt"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/ds/msqueue"
	"github.com/gosmr/gosmr/internal/ds/tstack"
	"github.com/gosmr/gosmr/internal/smr"
)

// The queue and stack are not part of the paper's Table 2 throughput
// matrix (they have no Get/Insert/Delete surface), but they ARE part of
// the safety matrix: this file registers them as first-class stress
// targets so the linearizability harness sweeps all nine structures.

// QueueHandle is the per-worker operation surface of queue targets.
type QueueHandle interface {
	Enqueue(val uint64)
	Dequeue() (uint64, bool)
}

// StackHandle is the per-worker operation surface of stack targets.
type StackHandle interface {
	Push(val uint64)
	Pop() (uint64, bool)
}

// QueueSchemes lists the schemes with an MS-queue variant. The queue
// predates HP++'s optimistic traversal problem — original HP already
// protects it — so only the HP family is implemented.
var QueueSchemes = []string{"hp", "hp++", "hp++ef"}

// StackSchemes lists the schemes with a Treiber-stack variant: the HP
// family plus every critical-section scheme (the CS stack works with any
// smr.GuardDomain, including the unsafefree control).
var StackSchemes = []string{"nr", "ebr", "pebr", "nbr", "hp", "hp++", "hp++ef"}

// QueueTarget is one (msqueue, scheme) instance under test.
type QueueTarget struct {
	Scheme      string
	NewHandle   func() QueueHandle
	Finish      func()
	Unreclaimed func() int64
	Stats       func() smr.Stats
	Pools       []PoolInfo
	Stall       func()
	// StallRelease finishes every participant Stall created.
	StallRelease func()
	Agitate      func()
}

// StackTarget is one (tstack, scheme) instance under test.
type StackTarget struct {
	Scheme      string
	NewHandle   func() StackHandle
	Finish      func()
	Unreclaimed func() int64
	Stats       func() smr.Stats
	Pools       []PoolInfo
	Stall       func()
	// StallRelease finishes every participant Stall created.
	StallRelease func()
	Agitate      func()
}

// NewQueueTarget builds a fresh MS-queue target for one scheme.
func NewQueueTarget(scheme string, mode arena.Mode) (QueueTarget, error) {
	t := QueueTarget{Scheme: scheme}
	pool := msqueue.NewPool(mode)
	t.Pools = []PoolInfo{pool}
	switch scheme {
	case "hp":
		dom := newHPDomain()
		q := msqueue.NewQueueHP(pool)
		var hs []*msqueue.HandleHP
		t.NewHandle = func() QueueHandle {
			h := q.NewHandleHP(dom)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			for _, h := range hs {
				h.Thread().Finish()
			}
			dom.NewThread(0).Reclaim()
		}
		t.Unreclaimed = dom.Unreclaimed
		t.Stats = dom.Stats
		t.Stall, t.StallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
	case "hp++", "hp++ef":
		dom := newHPPDomain(scheme == "hp++ef")
		q := msqueue.NewQueueHPP(pool)
		var hs []*msqueue.HandleHPP
		t.NewHandle = func() QueueHandle {
			h := q.NewHandleHPP(dom)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			for _, h := range hs {
				h.Thread().Finish()
			}
			dom.NewThread(0).Reclaim()
		}
		t.Unreclaimed = dom.Unreclaimed
		t.Stats = dom.Stats
		t.Stall, t.StallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
	default:
		return t, fmt.Errorf("bench: scheme %q not applicable to msqueue", scheme)
	}
	return t, nil
}

// NewStackTarget builds a fresh Treiber-stack target for one scheme.
func NewStackTarget(scheme string, mode arena.Mode) (StackTarget, error) {
	t := StackTarget{Scheme: scheme}
	pool := tstack.NewPool(mode)
	t.Pools = []PoolInfo{pool}
	switch scheme {
	case "nr", "ebr", "pebr", "nbr", UnsafeScheme:
		gd, d := guardDomain(scheme)
		s := tstack.NewStackCS(pool)
		var hs []*tstack.StackHandleCS
		t.NewHandle = func() StackHandle {
			h := s.NewHandleCS(gd)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			var gs []smr.Guard
			for _, h := range hs {
				gs = append(gs, h.Guard())
			}
			drainGuards(gs)
		}
		t.Unreclaimed = d.Unreclaimed
		t.Stats = d.Stats
		t.Stall, t.StallRelease = stallCS(gd)
		t.Agitate = agitatorFor(d)
	case "hp":
		dom := newHPDomain()
		s := tstack.NewStackHP(pool)
		var hs []*tstack.StackHandleHP
		t.NewHandle = func() StackHandle {
			h := s.NewHandleHP(dom)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			for _, h := range hs {
				h.Thread().Finish()
			}
			dom.NewThread(0).Reclaim()
		}
		t.Unreclaimed = dom.Unreclaimed
		t.Stats = dom.Stats
		t.Stall, t.StallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
	case "hp++", "hp++ef":
		dom := newHPPDomain(scheme == "hp++ef")
		s := tstack.NewStackHPP(pool)
		var hs []*tstack.StackHandleHPP
		t.NewHandle = func() StackHandle {
			h := s.NewHandleHPP(dom)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			for _, h := range hs {
				h.Thread().Finish()
			}
			dom.NewThread(0).Reclaim()
		}
		t.Unreclaimed = dom.Unreclaimed
		t.Stats = dom.Stats
		t.Stall, t.StallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
	default:
		return t, fmt.Errorf("bench: scheme %q not applicable to tstack", scheme)
	}
	return t, nil
}
