package bench

import "github.com/gosmr/gosmr/internal/linchk"

// History-recording adapters: wrap a target handle so every operation is
// timestamped against a shared linchk.Clock and appended to a per-worker
// log. The wrappers preserve the handle contract (single-goroutine use);
// only the clock is shared.

// Recorded wraps a map-style Handle with history recording.
type Recorded struct {
	h Handle
	r *linchk.Recorder
}

// NewRecorded wraps h so its operations are logged to r.
func NewRecorded(h Handle, r *linchk.Recorder) *Recorded {
	return &Recorded{h: h, r: r}
}

// Get implements Handle.
func (x *Recorded) Get(key uint64) (uint64, bool) {
	inv := x.r.Inv()
	v, ok := x.h.Get(key)
	x.r.Record(linchk.OpGet, key, v, ok, inv)
	return v, ok
}

// Insert implements Handle.
func (x *Recorded) Insert(key, val uint64) bool {
	inv := x.r.Inv()
	ok := x.h.Insert(key, val)
	x.r.Record(linchk.OpInsert, key, val, ok, inv)
	return ok
}

// Delete implements Handle.
func (x *Recorded) Delete(key uint64) bool {
	inv := x.r.Inv()
	ok := x.h.Delete(key)
	x.r.Record(linchk.OpDelete, key, 0, ok, inv)
	return ok
}

// RecordedQueue wraps a QueueHandle with history recording.
type RecordedQueue struct {
	h QueueHandle
	r *linchk.Recorder
}

// NewRecordedQueue wraps h so its operations are logged to r.
func NewRecordedQueue(h QueueHandle, r *linchk.Recorder) *RecordedQueue {
	return &RecordedQueue{h: h, r: r}
}

// Enqueue implements QueueHandle.
func (x *RecordedQueue) Enqueue(val uint64) {
	inv := x.r.Inv()
	x.h.Enqueue(val)
	x.r.Record(linchk.OpEnqueue, 0, val, true, inv)
}

// Dequeue implements QueueHandle.
func (x *RecordedQueue) Dequeue() (uint64, bool) {
	inv := x.r.Inv()
	v, ok := x.h.Dequeue()
	x.r.Record(linchk.OpDequeue, 0, v, ok, inv)
	return v, ok
}

// RecordedStack wraps a StackHandle with history recording.
type RecordedStack struct {
	h StackHandle
	r *linchk.Recorder
}

// NewRecordedStack wraps h so its operations are logged to r.
func NewRecordedStack(h StackHandle, r *linchk.Recorder) *RecordedStack {
	return &RecordedStack{h: h, r: r}
}

// Push implements StackHandle.
func (x *RecordedStack) Push(val uint64) {
	inv := x.r.Inv()
	x.h.Push(val)
	x.r.Record(linchk.OpPush, 0, val, true, inv)
}

// Pop implements StackHandle.
func (x *RecordedStack) Pop() (uint64, bool) {
	inv := x.r.Inv()
	v, ok := x.h.Pop()
	x.r.Record(linchk.OpPop, 0, v, ok, inv)
	return v, ok
}

var (
	_ Handle      = (*Recorded)(nil)
	_ QueueHandle = (*RecordedQueue)(nil)
	_ StackHandle = (*RecordedStack)(nil)
)
