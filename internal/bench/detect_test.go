package bench

import (
	"testing"
	"time"

	"github.com/gosmr/gosmr/internal/arena"
)

// TestDetectSweep runs every registered (data structure, scheme) pair
// concurrently for a short burst with the arena in detect mode: any
// use-after-free anywhere in the stack panics. This is the harness-level
// safety net over the per-package stress tests — it also exercises the
// exact wiring the benchmarks use.
func TestDetectSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, ds := range DataStructures() {
		for _, scheme := range Schemes {
			if !Applicable(ds, scheme) {
				continue
			}
			ds, scheme := ds, scheme
			t.Run(ds+"/"+scheme, func(t *testing.T) {
				target, err := NewTarget(ds, scheme, arena.ModeDetect)
				if err != nil {
					t.Fatal(err)
				}
				res := Run(target, Config{
					Threads:  4,
					Duration: 80 * time.Millisecond,
					Workload: WriteOnly,
					KeyRange: 128,
				})
				if res.Ops == 0 {
					t.Fatalf("%s/%s made no progress", ds, scheme)
				}
			})
		}
	}
}
