package bench

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gosmr/gosmr/internal/arena"
)

// TestDefaultSweepSchemesMatchRegistry pins the default-sweep scheme list
// to the registry. A hand-maintained literal in withDefaults once dropped
// hp++ef from every default figure sweep when the epoch-fence variant was
// added to Schemes; this test makes that divergence impossible to repeat.
func TestDefaultSweepSchemesMatchRegistry(t *testing.T) {
	got := SweepConfig{}.withDefaults().Schemes
	if !reflect.DeepEqual(got, Schemes) {
		t.Fatalf("default sweep schemes %v diverge from registry %v", got, Schemes)
	}
	// The default must be a copy: a caller appending to its sweep config
	// must not grow the global registry.
	got[0] = "mutated"
	if Schemes[0] == "mutated" {
		t.Fatal("withDefaults aliases the Schemes registry instead of copying it")
	}
}

// reclaimingSchemes are the hmlist-applicable schemes that actually free
// (nr is excluded: it never reclaims, so "drains to zero" is vacuous).
func reclaimingSchemes(t *testing.T) []string {
	t.Helper()
	var out []string
	for _, s := range Schemes {
		if s != "nr" && Applicable("hmlist", s) {
			out = append(out, s)
		}
	}
	return out
}

// TestRunWithStallDrainsAfterRelease asserts the recovery half of the
// §4.4 scenario: after RunWithStall releases the stalled participant and
// drains, every reclaiming scheme reaches zero unreclaimed. Before
// StallRelease existed the stalled guard outlived the run and EBR/PEBR/NBR
// could never pass this.
func TestRunWithStallDrainsAfterRelease(t *testing.T) {
	for _, scheme := range reclaimingSchemes(t) {
		t.Run(scheme, func(t *testing.T) {
			target, err := NewTarget("hmlist", scheme, arena.ModeReuse)
			if err != nil {
				t.Fatal(err)
			}
			res := RunWithStall(target, Config{
				Threads:  2,
				Duration: 150 * time.Millisecond,
				Workload: WriteOnly,
				KeyRange: 256,
			})
			if res.Ops == 0 {
				t.Fatal("no ops executed")
			}
			if res.FinalUnreclaimed != 0 {
				t.Fatalf("%d nodes unreclaimed after release+drain (stalled=%d)",
					res.FinalUnreclaimed, res.StalledUnreclaimed)
			}
		})
	}
}

// parkFirstDeref installs a counting trap on the target's pools: the nth
// deref (across all pools) blocks until release is called. Same idiom as
// somap's resize park tests, at the bench-target level.
func parkFirstDeref(pools []PoolInfo, n int64) (parked <-chan struct{}, release func()) {
	var count atomic.Int64
	ch := make(chan struct{})
	gate := make(chan struct{})
	var once, relOnce sync.Once
	hook := func(uint64) {
		if count.Add(1) == n {
			once.Do(func() { close(ch) })
			<-gate
		}
	}
	for _, p := range pools {
		p.SetDerefHook(hook)
	}
	return ch, func() { relOnce.Do(func() { close(gate) }) }
}

// runParkedWriter parks one writer mid-insert (caught on a deref inside
// its traversal, protection announced but the operation unfinished), runs
// a deterministic retire storm from a second handle, and returns the
// backlog while parked plus the frees that happened despite the park. The
// schedule is identical across schemes: same prefill, same park point,
// same mutation count.
func runParkedWriter(t *testing.T, scheme string) (frees, backlog int64) {
	t.Helper()
	// Pin the classic fixed cadence so "bounded" has a scheme-independent
	// scale: every domain scans/collects at the same retire count.
	prev := FixedReclaimEvery
	FixedReclaimEvery = 32
	t.Cleanup(func() { FixedReclaimEvery = prev })

	target, err := NewTarget("hmlist", scheme, arena.ModeDetect)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range target.Pools {
		p.SetCount()
	}
	mut := target.NewHandle()
	const keys = uint64(64)
	for k := uint64(0); k < keys; k++ {
		mut.Insert(k, k)
	}

	// Park a second writer on its second deref: inside the list, past the
	// head, mid-traversal toward a key beyond the worked range.
	parked, release := parkFirstDeref(target.Pools, 2)
	defer release()
	done := make(chan struct{})
	parkedH := target.NewHandle()
	go func() {
		defer close(done)
		parkedH.Insert(keys+1, 42)
	}()
	select {
	case <-parked:
	case <-time.After(2 * time.Second):
		t.Fatal("writer never parked on the deref hook")
	}
	for _, p := range target.Pools {
		p.SetDerefHook(nil)
	}

	// Retire storm around the parked writer: 2000 delete/insert pairs on
	// the worked range, each delete one retired node.
	for i := 0; i < 2000; i++ {
		k := uint64(i) % keys
		mut.Delete(k)
		mut.Insert(k, uint64(i))
	}
	if target.Agitate != nil {
		for i := 0; i < 16; i++ {
			target.Agitate()
		}
	}

	for _, p := range target.Pools {
		frees += p.Stats().Frees
	}
	backlog = target.Unreclaimed()

	release()
	<-done
	target.Finish()
	for _, p := range target.Pools {
		if st := p.Stats(); st.UAF != 0 || st.DoubleFree != 0 {
			t.Fatalf("memory-unsafe: uaf=%d doublefree=%d", st.UAF, st.DoubleFree)
		}
	}
	if unr := target.Unreclaimed(); unr != 0 {
		t.Fatalf("%d nodes unreclaimed after release+drain", unr)
	}
	return frees, backlog
}

// TestParkedWriterBoundsRobustSchemes: with a writer parked mid-insert,
// the robust schemes keep freeing and their backlog stays bounded near
// the scan cadence — the parked announcement protects a handful of nodes,
// not the epoch.
func TestParkedWriterBoundsRobustSchemes(t *testing.T) {
	for _, scheme := range []string{"hp", "hp++", "hp++ef", "hp-scot", "pebr", "nbr"} {
		t.Run(scheme, func(t *testing.T) {
			frees, backlog := runParkedWriter(t, scheme)
			if frees == 0 {
				t.Fatalf("%s freed nothing while the writer was parked; reclamation stalled", scheme)
			}
			// 2000 retires with cadence 32: a bounded scheme's backlog is
			// a small multiple of the cadence plus protected nodes. NBR's
			// bound is its neutralization pressure (4×128 by default, but
			// FixedReclaimEvery=32 pins guards' threshold to 32 → 4×32).
			if backlog > 512 {
				t.Fatalf("%s backlog %d while parked; expected a cadence-scale bound", scheme, backlog)
			}
		})
	}
}

// TestParkedWriterStallsEBR: the identical schedule under EBR freezes
// reclamation — the parked writer's pin holds the epoch, so the whole
// retire storm accumulates — and still drains to zero after release.
func TestParkedWriterStallsEBR(t *testing.T) {
	frees, backlog := runParkedWriter(t, "ebr")
	if frees != 0 {
		t.Fatalf("EBR freed %d nodes past a pinned writer", frees)
	}
	if backlog < 1500 {
		t.Fatalf("expected the retire storm (~2000 nodes) to accumulate behind the pin, got %d", backlog)
	}
}
