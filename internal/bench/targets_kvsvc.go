package bench

import (
	"fmt"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/kvsvc"
)

// kvmap bench/stress parameters: small shards and few buckets so the
// harness's key ranges produce real per-shard contention (4 shards ×
// 64 buckets ≈ the single hashmap target's density at 256 buckets).
const (
	kvmapShards  = 4
	kvmapBuckets = 1 << 6
)

// newKVMapTarget wraps the kvsvc sharded store — the gosmrd service
// layer minus the network — so the bench and stress harnesses cover the
// shard-per-domain composition: cross-shard routed handles, per-shard
// reclamation domains, and drain. kvsvc.Handle and kvsvc.ArenaPool are
// structural twins of Handle and PoolInfo, so the store plugs in
// directly; only the pool slice needs an element-wise retype.
func newKVMapTarget(scheme string, mode arena.Mode) (Target, error) {
	st, err := kvsvc.NewStore(kvsvc.Config{
		Shards:  kvmapShards,
		Scheme:  scheme,
		Mode:    mode,
		Buckets: kvmapBuckets,
	})
	if err != nil {
		return Target{}, fmt.Errorf("bench: kvmap: %w", err)
	}
	t := Target{DS: "kvmap", Scheme: scheme}
	t.NewHandle = func() Handle { return st.NewHandle() }
	t.Finish = st.Drain
	t.Unreclaimed = st.Unreclaimed
	t.PeakUnreclaimed = st.PeakUnreclaimed
	t.Stats = st.StatsTotal
	t.MemBytes = func() int64 { return st.ArenaTotals().Bytes }
	t.Stall = st.Stall
	t.StallRelease = st.StallRelease
	for _, p := range st.Pools() {
		t.Pools = append(t.Pools, p)
	}
	t.Agitate = st.Agitator()
	return t, nil
}
