package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"github.com/gosmr/gosmr/internal/arena"
)

// Matrix is one figure panel: rows are a swept parameter, columns are
// schemes, cells a metric.
type Matrix struct {
	Title    string
	RowLabel string
	Rows     []string
	Cols     []string
	Cells    [][]float64 // NaN = not applicable
}

// Write renders the matrix as an aligned text table.
func (m *Matrix) Write(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", m.Title)
	fmt.Fprintf(w, "%-10s", m.RowLabel)
	for _, c := range m.Cols {
		fmt.Fprintf(w, "%12s", c)
	}
	fmt.Fprintln(w)
	for i, r := range m.Rows {
		fmt.Fprintf(w, "%-10s", r)
		for j := range m.Cols {
			v := m.Cells[i][j]
			if math.IsNaN(v) {
				fmt.Fprintf(w, "%12s", "n/a")
			} else if v >= 1000 {
				fmt.Fprintf(w, "%12.0f", v)
			} else {
				fmt.Fprintf(w, "%12.3f", v)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// SweepConfig parameterizes the figure drivers.
type SweepConfig struct {
	Threads  []int
	Duration time.Duration
	Schemes  []string
	// DSes defaults to every registered data structure.
	DSes []string
}

func (s SweepConfig) withDefaults() SweepConfig {
	if len(s.Threads) == 0 {
		s.Threads = []int{1, 2, 4, 8}
	}
	if s.Duration <= 0 {
		s.Duration = time.Second
	}
	if len(s.Schemes) == 0 {
		// Default to every registered scheme. A hand-maintained literal
		// here once silently dropped hp++ef from all default sweeps when
		// the epoch-fence variant was added to Schemes; copy the registry
		// so the two can never diverge again.
		s.Schemes = append([]string(nil), Schemes...)
	}
	if len(s.DSes) == 0 {
		s.DSes = Registered()
	}
	return s
}

// Registered returns the data structures whose targets are available.
func Registered() []string {
	var out []string
	for _, ds := range DataStructures() {
		if _, err := NewTarget(ds, "ebr", arena.ModeReuse); err == nil {
			out = append(out, ds)
		}
	}
	return out
}

// rangeFor returns the paper's small/big key ranges per structure class.
func rangeFor(ds string, big bool) uint64 {
	list := ds == "hmlist" || ds == "hhslist"
	switch {
	case list && big:
		return 10000
	case list:
		return 16
	case big:
		return 100000
	default:
		return 128
	}
}

// metric selects which Result field a figure reports.
type metric struct {
	name string
	get  func(Result) float64
}

var (
	metricThroughput = metric{"throughput (Mops/s)", func(r Result) float64 { return r.MopsPerSec }}
	metricPeakUnrecl = metric{"peak unreclaimed blocks", func(r Result) float64 { return float64(r.PeakUnreclaimed) }}
	metricAvgUnrecl  = metric{"avg unreclaimed blocks", func(r Result) float64 { return r.AvgUnreclaimed }}
	metricPeakMem    = metric{"peak memory (KiB)", func(r Result) float64 { return float64(r.PeakMemBytes) / 1024 }}
)

// sweepThreads runs one DS across schemes and thread counts.
func sweepThreads(ds string, cfg SweepConfig, wl Workload, keyRange uint64, m metric) Matrix {
	out := Matrix{
		Title:    fmt.Sprintf("%s — %s, %s, range %d", ds, m.name, wl, keyRange),
		RowLabel: "threads",
		Cols:     cfg.Schemes,
	}
	for _, th := range cfg.Threads {
		row := make([]float64, len(cfg.Schemes))
		for j, sch := range cfg.Schemes {
			t, err := NewTarget(ds, sch, arena.ModeReuse)
			if err != nil {
				row[j] = math.NaN()
				continue
			}
			res := Run(t, Config{
				Threads:  th,
				Duration: cfg.Duration,
				Workload: wl,
				KeyRange: keyRange,
			})
			row[j] = m.get(res)
		}
		out.Rows = append(out.Rows, fmt.Sprint(th))
		out.Cells = append(out.Cells, row)
	}
	return out
}

// WorkloadFigure renders one appendix-style figure: the given metric for
// every registered data structure under one workload with big key ranges.
// It covers Figures 8 and 11-23 of the paper:
//
//	throughput: Fig 8/13 (read-write), 12 (write-only), 14 (read-most)
//	peak unreclaimed: Fig 11/16, 15, 17
//	peak memory: Fig 19, 18, 20
//	avg unreclaimed: Fig 22, 21, 23
func WorkloadFigure(w io.Writer, cfg SweepConfig, wl Workload, what string) error {
	cfg = cfg.withDefaults()
	var m metric
	switch what {
	case "throughput":
		m = metricThroughput
	case "peak":
		m = metricPeakUnrecl
	case "avg":
		m = metricAvgUnrecl
	case "mem":
		m = metricPeakMem
	default:
		return fmt.Errorf("bench: unknown metric %q", what)
	}
	for _, ds := range cfg.DSes {
		mx := sweepThreads(ds, cfg, wl, rangeFor(ds, true), m)
		mx.Write(w)
	}
	return nil
}

// Figure9 compares the best throughput achievable with original HP
// (HMList, EFRBTree) against HP++ (HHSList, NMTree) per structure
// category and key range — the "optimistic traversal pays" figure.
func Figure9(w io.Writer, cfg SweepConfig) error {
	cfg = cfg.withDefaults()
	type pair struct {
		category string
		hpDS     string
		hppDS    string
	}
	pairs := []pair{{"list", "hmlist", "hhslist"}}
	if contains(Registered(), "nmtree") && contains(Registered(), "efrbtree") {
		pairs = append(pairs, pair{"tree", "efrbtree", "nmtree"})
	}
	for _, p := range pairs {
		out := Matrix{
			Title:    fmt.Sprintf("Figure 9 (%s): max throughput (Mops/s) over threads %v, read-write", p.category, cfg.Threads),
			RowLabel: "range",
			Cols:     []string{"HP(" + p.hpDS + ")", "HP++(" + p.hppDS + ")"},
		}
		for _, big := range []bool{false, true} {
			row := make([]float64, 2)
			row[0] = maxThroughput(p.hpDS, "hp", cfg, rangeFor(p.hpDS, big))
			row[1] = maxThroughput(p.hppDS, "hp++", cfg, rangeFor(p.hppDS, big))
			label := "small"
			if big {
				label = "big"
			}
			out.Rows = append(out.Rows, label)
			out.Cells = append(out.Cells, row)
		}
		out.Write(w)
	}
	return nil
}

func maxThroughput(ds, scheme string, cfg SweepConfig, keyRange uint64) float64 {
	best := math.NaN()
	for _, th := range cfg.Threads {
		t, err := NewTarget(ds, scheme, arena.ModeReuse)
		if err != nil {
			return math.NaN()
		}
		res := Run(t, Config{Threads: th, Duration: cfg.Duration, Workload: ReadWrite, KeyRange: keyRange})
		if math.IsNaN(best) || res.MopsPerSec > best {
			best = res.MopsPerSec
		}
	}
	return best
}

// Figure10 measures long-running read throughput versus key-range size:
// readers issue get() over ranges 2^lo..2^hi while writers churn the head
// of the structure. HMList carries the HP series (HHS lists cannot use
// HP); HHSList carries every other scheme.
func Figure10(w io.Writer, cfg SweepConfig, lo, hi uint) error {
	cfg = cfg.withDefaults()
	schemes := cfg.Schemes
	out := Matrix{
		Title:    fmt.Sprintf("Figure 10: long-running reads (Mops/s), %d threads", maxInt(2, cfg.Threads[len(cfg.Threads)-1])),
		RowLabel: "log2range",
		Cols:     schemes,
	}
	threads := maxInt(2, cfg.Threads[len(cfg.Threads)-1])
	for e := lo; e <= hi; e++ {
		row := make([]float64, len(schemes))
		for j, sch := range schemes {
			ds := "hhslist"
			if sch == "hp" {
				ds = "hmlist"
			}
			t, err := NewTarget(ds, sch, arena.ModeReuse)
			if err != nil {
				row[j] = math.NaN()
				continue
			}
			res := RunLongReads(t, Config{
				Threads:  threads,
				Duration: cfg.Duration,
				KeyRange: 1 << e,
			})
			row[j] = res.MopsPerSec
		}
		out.Rows = append(out.Rows, fmt.Sprint(e))
		out.Cells = append(out.Cells, row)
	}
	out.Write(w)
	return nil
}

// RobustnessFigure runs the §4.4 stalled-thread scenario for one DS: the
// peak unreclaimed count per scheme with a stalled participant, showing
// EBR's unbounded growth against the bounded schemes.
func RobustnessFigure(w io.Writer, cfg SweepConfig, ds string) error {
	cfg = cfg.withDefaults()
	out := Matrix{
		Title:    fmt.Sprintf("Robustness (§4.4): peak unreclaimed with one stalled thread — %s, write-only", ds),
		RowLabel: "threads",
		Cols:     cfg.Schemes,
	}
	for _, th := range cfg.Threads {
		row := make([]float64, len(cfg.Schemes))
		for j, sch := range cfg.Schemes {
			t, err := NewTarget(ds, sch, arena.ModeReuse)
			if err != nil {
				row[j] = math.NaN()
				continue
			}
			res := RunWithStall(t, Config{
				Threads:  th,
				Duration: cfg.Duration,
				Workload: WriteOnly,
				KeyRange: rangeFor(ds, true),
			})
			row[j] = float64(res.PeakUnreclaimed)
		}
		out.Rows = append(out.Rows, fmt.Sprint(th))
		out.Cells = append(out.Cells, row)
	}
	out.Write(w)
	return nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
