package bench

import (
	"fmt"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/ds/bonsai"
	"github.com/gosmr/gosmr/internal/ds/efrbtree"
	"github.com/gosmr/gosmr/internal/ds/nmtree"
	"github.com/gosmr/gosmr/internal/ds/skiplist"
	"github.com/gosmr/gosmr/internal/rc"
	"github.com/gosmr/gosmr/internal/smr"
)

// The tree and skiplist targets are registered in this file as their
// packages land; see targets.go for the list/list-based registrations.

func newSkipListTarget(scheme string, mode arena.Mode) (Target, error) {
	t := Target{DS: "skiplist", Scheme: scheme}
	var seed uint64 = 0x51ED5EED
	nextSeed := func() uint64 { seed += 0x9E3779B97F4A7C15; return seed }
	switch scheme {
	case "nr", "ebr", "pebr", "nbr", UnsafeScheme:
		gd, d := guardDomain(scheme)
		pool := skiplist.NewPool(mode)
		l := skiplist.NewListCS(pool)
		var gs []smr.Guard
		t.NewHandle = func() Handle {
			h := l.NewHandleCS(gd)
			h.Seed(nextSeed())
			gs = append(gs, h.Guard())
			return h
		}
		t.Finish = func() { drainGuards(gs) }
		t.Unreclaimed = d.Unreclaimed
		t.PeakUnreclaimed = d.PeakUnreclaimed
		t.Stats = d.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallCS(gd)
		t.Pools = []PoolInfo{pool}
		t.Agitate = agitatorFor(d)
	case "hp":
		dom := newHPDomain()
		pool := skiplist.NewPool(mode)
		l := skiplist.NewListHP(pool)
		var hs []*skiplist.HandleHP
		t.NewHandle = func() Handle {
			h := l.NewHandleHP(dom)
			h.Seed(nextSeed())
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			for _, h := range hs {
				h.Thread().Finish()
			}
			dom.NewThread(0).Reclaim()
		}
		t.Unreclaimed = dom.Unreclaimed
		t.PeakUnreclaimed = dom.PeakUnreclaimed
		t.Stats = dom.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
		t.Pools = []PoolInfo{pool}
	case "hp++", "hp++ef":
		dom := newHPPDomain(scheme == "hp++ef")
		pool := skiplist.NewPool(mode)
		l := skiplist.NewListHPP(pool)
		var hs []*skiplist.HandleHPP
		t.NewHandle = func() Handle {
			h := l.NewHandleHPP(dom)
			h.Seed(nextSeed())
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			for _, h := range hs {
				h.Thread().Finish()
			}
			dom.NewThread(0).Reclaim()
		}
		t.Unreclaimed = dom.Unreclaimed
		t.PeakUnreclaimed = dom.PeakUnreclaimed
		t.Stats = dom.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
		t.Pools = []PoolInfo{pool}
	case "rc":
		dom := rc.NewDomain()
		pool := skiplist.NewPoolRC(mode)
		l := skiplist.NewListRC(pool)
		var hs []*skiplist.HandleRC
		t.NewHandle = func() Handle {
			h := l.NewHandleRC(dom)
			h.Seed(nextSeed())
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			// Bounded collection: Drain would spin forever when the
			// robustness scenario leaves a stalled pin behind.
			for i := 0; i < 8; i++ {
				for _, h := range hs {
					h.Guard().Collect()
				}
			}
		}
		t.Unreclaimed = dom.Unreclaimed
		t.PeakUnreclaimed = dom.PeakUnreclaimed
		t.Stats = dom.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallRC(dom)
		t.Pools = []PoolInfo{pool}
	default:
		return t, fmt.Errorf("bench: unknown scheme %q", scheme)
	}
	return t, nil
}

func newNMTreeTarget(scheme string, mode arena.Mode) (Target, error) {
	t := Target{DS: "nmtree", Scheme: scheme}
	switch scheme {
	case "nr", "ebr", "pebr", "nbr", UnsafeScheme:
		gd, d := guardDomain(scheme)
		pool := nmtree.NewPool(mode)
		tr := nmtree.NewTreeCS(pool)
		var gs []smr.Guard
		t.NewHandle = func() Handle {
			h := tr.NewHandleCS(gd)
			gs = append(gs, h.Guard())
			return h
		}
		t.Finish = func() { drainGuards(gs) }
		t.Unreclaimed = d.Unreclaimed
		t.PeakUnreclaimed = d.PeakUnreclaimed
		t.Stats = d.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallCS(gd)
		t.Pools = []PoolInfo{pool}
		t.Agitate = agitatorFor(d)
	case "hp++", "hp++ef":
		dom := newHPPDomain(scheme == "hp++ef")
		pool := nmtree.NewPool(mode)
		tr := nmtree.NewTreeHPP(pool)
		var hs []*nmtree.HandleHPP
		t.NewHandle = func() Handle {
			h := tr.NewHandleHPP(dom)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			for _, h := range hs {
				h.Thread().Finish()
			}
			dom.NewThread(0).Reclaim()
		}
		t.Unreclaimed = dom.Unreclaimed
		t.PeakUnreclaimed = dom.PeakUnreclaimed
		t.Stats = dom.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
		t.Pools = []PoolInfo{pool}
	default:
		return t, fmt.Errorf("bench: scheme %q not applicable to nmtree", scheme)
	}
	return t, nil
}

func newEFRBTarget(scheme string, mode arena.Mode) (Target, error) {
	t := Target{DS: "efrbtree", Scheme: scheme}
	switch scheme {
	case "nr", "ebr", "pebr", "nbr", UnsafeScheme:
		gd, d := guardDomain(scheme)
		nodes := efrbtree.NewNodePool(mode)
		infos := efrbtree.NewInfoPool(mode)
		tr := efrbtree.NewTreeCS(nodes, infos)
		var gs []smr.Guard
		t.NewHandle = func() Handle {
			h := tr.NewHandleCS(gd)
			gs = append(gs, h.Guard())
			return h
		}
		t.Finish = func() { drainGuards(gs) }
		t.Unreclaimed = d.Unreclaimed
		t.PeakUnreclaimed = d.PeakUnreclaimed
		t.Stats = d.Stats
		t.MemBytes = func() int64 { return nodes.Stats().Bytes + infos.Stats().Bytes }
		t.Stall, t.StallRelease = stallCS(gd)
		t.Pools = []PoolInfo{nodes, infos}
		t.Agitate = agitatorFor(d)
	case "hp":
		dom := newHPDomain()
		nodes := efrbtree.NewNodePool(mode)
		infos := efrbtree.NewInfoPool(mode)
		tr := efrbtree.NewTreeHP(nodes, infos)
		var hs []*efrbtree.HandleHP
		t.NewHandle = func() Handle {
			h := tr.NewHandleHP(dom)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			for _, h := range hs {
				h.Thread().Finish()
			}
			dom.NewThread(0).Reclaim()
		}
		t.Unreclaimed = dom.Unreclaimed
		t.PeakUnreclaimed = dom.PeakUnreclaimed
		t.Stats = dom.Stats
		t.MemBytes = func() int64 { return nodes.Stats().Bytes + infos.Stats().Bytes }
		t.Stall, t.StallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
		t.Pools = []PoolInfo{nodes, infos}
	case "hp++", "hp++ef":
		dom := newHPPDomain(scheme == "hp++ef")
		nodes := efrbtree.NewNodePool(mode)
		infos := efrbtree.NewInfoPool(mode)
		tr := efrbtree.NewTreeHPP(nodes, infos)
		var hs []*efrbtree.HandleHPP
		t.NewHandle = func() Handle {
			h := tr.NewHandleHPP(dom)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			for _, h := range hs {
				h.Thread().Finish()
			}
			dom.NewThread(0).Reclaim()
		}
		t.Unreclaimed = dom.Unreclaimed
		t.PeakUnreclaimed = dom.PeakUnreclaimed
		t.Stats = dom.Stats
		t.MemBytes = func() int64 { return nodes.Stats().Bytes + infos.Stats().Bytes }
		t.Stall, t.StallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
		t.Pools = []PoolInfo{nodes, infos}
	default:
		return t, fmt.Errorf("bench: scheme %q not applicable to efrbtree", scheme)
	}
	return t, nil
}

func newBonsaiTarget(scheme string, mode arena.Mode) (Target, error) {
	t := Target{DS: "bonsai", Scheme: scheme}
	switch scheme {
	case "nr", "ebr", "pebr", "nbr", UnsafeScheme:
		gd, d := guardDomain(scheme)
		pool := bonsai.NewPool(mode)
		tr := bonsai.NewTreeCS(pool)
		var gs []smr.Guard
		t.NewHandle = func() Handle {
			h := tr.NewHandleCS(gd)
			gs = append(gs, h.Guard())
			return h
		}
		t.Finish = func() { drainGuards(gs) }
		t.Unreclaimed = d.Unreclaimed
		t.PeakUnreclaimed = d.PeakUnreclaimed
		t.Stats = d.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallCS(gd)
		t.Pools = []PoolInfo{pool}
		t.Agitate = agitatorFor(d)
	case "hp":
		dom := newHPDomain()
		pool := bonsai.NewPool(mode)
		tr := bonsai.NewTreeHP(pool)
		var hs []*bonsai.HandleHP
		t.NewHandle = func() Handle {
			h := tr.NewHandleHP(dom)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			for _, h := range hs {
				h.Thread().Finish()
			}
			dom.NewThread(0).Reclaim()
		}
		t.Unreclaimed = dom.Unreclaimed
		t.PeakUnreclaimed = dom.PeakUnreclaimed
		t.Stats = dom.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
		t.Pools = []PoolInfo{pool}
	case "hp++", "hp++ef":
		dom := newHPPDomain(scheme == "hp++ef")
		pool := bonsai.NewPool(mode)
		tr := bonsai.NewTreeHPP(pool)
		var hs []*bonsai.HandleHPP
		t.NewHandle = func() Handle {
			h := tr.NewHandleHPP(dom)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			for _, h := range hs {
				h.Thread().Finish()
			}
			dom.NewThread(0).Reclaim()
		}
		t.Unreclaimed = dom.Unreclaimed
		t.PeakUnreclaimed = dom.PeakUnreclaimed
		t.Stats = dom.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
		t.Pools = []PoolInfo{pool}
	case "rc":
		dom := rc.NewDomain()
		pool := bonsai.NewPoolRC(mode)
		tr := bonsai.NewTreeRC(pool)
		var hs []*bonsai.HandleRC
		t.NewHandle = func() Handle {
			h := tr.NewHandleRC(dom)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			// Bounded collection: Drain would spin forever when the
			// robustness scenario leaves a stalled pin behind.
			for i := 0; i < 8; i++ {
				for _, h := range hs {
					h.Guard().Collect()
				}
			}
		}
		t.Unreclaimed = dom.Unreclaimed
		t.PeakUnreclaimed = dom.PeakUnreclaimed
		t.Stats = dom.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallRC(dom)
		t.Pools = []PoolInfo{pool}
	default:
		return t, fmt.Errorf("bench: unknown scheme %q", scheme)
	}
	return t, nil
}
