package bench

import (
	"encoding/json"
	"io"
	"time"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/hazards"
	"github.com/gosmr/gosmr/internal/smr"
)

// Pinned shape of the reclaim-scan microbench: the number of announced
// hazard slots and the retired-set size a single Reclaim pass scans. The
// retired set is scanned once per pass, so ns/op below is nanoseconds per
// full pass over Retired refs.
const (
	ScanHazards = 64
	ScanRetired = 4096
)

// ScanResult reports the pinned reclaim-scan microbench: the pre-overhaul
// map-based hazard snapshot versus the filtered sorted-snapshot scan the
// Reclaim hot path now uses.
type ScanResult struct {
	Hazards         int     `json:"hazards"`
	Retired         int     `json:"retired"`
	MapNsPerOp      float64 `json:"map_ns_per_op"`
	MapOpsPerSec    float64 `json:"map_ops_per_sec"`
	SortedNsPerOp   float64 `json:"sorted_ns_per_op"`
	SortedOpsPerSec float64 `json:"sorted_ops_per_sec"`
	// Speedup is MapNsPerOp / SortedNsPerOp.
	Speedup float64 `json:"speedup"`
}

// CellResult is one fig-8 throughput cell rerun for the reclaim report.
type CellResult struct {
	DS         string  `json:"ds"`
	Scheme     string  `json:"scheme"`
	Threads    int     `json:"threads"`
	KeyRange   uint64  `json:"key_range"`
	Workload   string  `json:"workload"`
	MopsPerSec float64 `json:"mops_per_sec"`
	NsPerOp    float64 `json:"ns_per_op"`
	// P50Us/P95Us/P99Us are request latency percentiles in microseconds.
	// Only service-layer cells (kvload against gosmrd) fill them; the
	// in-process microbench cells have no per-op latency distribution.
	P50Us float64 `json:"p50_us,omitempty"`
	P95Us float64 `json:"p95_us,omitempty"`
	P99Us float64 `json:"p99_us,omitempty"`
	// P50GetUs/P99GetUs are the GET-only latency percentiles in
	// microseconds: the numbers the read-fast-path gate compares with the
	// fast path on versus off, and the resizable-map scaling gate compares
	// across key-space sizes (GETs isolate read-path traversal length from
	// insert/delete retry cost).
	P50GetUs float64 `json:"p50_get_us,omitempty"`
	P99GetUs float64 `json:"p99_get_us,omitempty"`
	// Engine is the shard map engine behind a service-layer cell
	// (somap/hashmap); empty for in-process microbench cells.
	Engine string `json:"engine,omitempty"`
	// FastpathGets is how many GETs the server executed on the connection
	// goroutine instead of the worker pipeline during the run.
	FastpathGets int64 `json:"fastpath_gets,omitempty"`
	// PreloadedKeys is how many keys were bulk-loaded before the
	// measured phase (0 = none).
	PreloadedKeys uint64 `json:"preloaded_keys,omitempty"`
	// Idle-fleet cells (kvload -idle-conns against gosmrd): the parked
	// connection count, the post-GC server memory delta per parked conn,
	// the server goroutine count with the fleet live, the fast-path
	// handle census, and which connection layer served ("" = goroutine
	// mode, else the netpoll backend). cmd/benchcompare -conns gates on
	// these.
	IdleConns    int     `json:"idle_conns,omitempty"`
	BytesPerConn float64 `json:"bytes_per_conn,omitempty"`
	Goroutines   int     `json:"goroutines,omitempty"`
	LiveHandles  int     `json:"live_handles,omitempty"`
	NetpollKind  string  `json:"netpoll_kind,omitempty"`
	// Stats is the domain's post-run smr.Stats snapshot (scan counts,
	// freed-per-scan, occupancy) plus the arena live/quarantine totals.
	Stats smr.Stats `json:"smr_stats"`
}

// ReclaimReport is the schema of BENCH_reclaim.json.
type ReclaimReport struct {
	GeneratedBy string       `json:"generated_by"`
	Scan        ScanResult   `json:"scan_microbench"`
	Cells       []CellResult `json:"cells"`
}

// scanFixture builds a registry with h announced slots and n retired refs,
// a quarter of which are protected — the shape of one Reclaim pass.
func scanFixture(h, n int) (*hazards.Registry, []uint64) {
	reg := &hazards.Registry{}
	vals := make([]uint64, 0, h)
	r := rng{s: 0x5EED}
	for i := 0; i < h; i++ {
		v := r.next() | 1
		reg.Acquire().Set(v)
		vals = append(vals, v)
	}
	retired := make([]uint64, n)
	for i := range retired {
		if i%4 == 0 {
			retired[i] = vals[i%h]
		} else {
			retired[i] = r.next() | 1
		}
	}
	return reg, retired
}

// timeScan runs pass repeatedly until it has accumulated roughly minDur of
// wall time and returns the per-pass average in nanoseconds.
func timeScan(pass func(), minDur time.Duration) float64 {
	// Warm up and calibrate the batch size.
	pass()
	batch := 1
	for {
		start := time.Now()
		for i := 0; i < batch; i++ {
			pass()
		}
		if d := time.Since(start); d >= minDur {
			return float64(d.Nanoseconds()) / float64(batch)
		} else if d > 0 {
			next := int(float64(batch) * float64(minDur) / float64(d) * 1.2)
			if next <= batch {
				next = batch * 2
			}
			batch = next
		} else {
			batch *= 2
		}
	}
}

// RunScanMicrobench measures the pinned reclaim-scan microbench.
func RunScanMicrobench(minDur time.Duration) ScanResult {
	reg, retired := scanFixture(ScanHazards, ScanRetired)

	kept := 0
	scratch := make(map[uint64]struct{}, ScanHazards)
	mapNs := timeScan(func() {
		clear(scratch)
		reg.BenchSnapshot(scratch)
		for _, ref := range retired {
			if _, p := scratch[ref]; p {
				kept++
			}
		}
	}, minDur)

	var scan hazards.ScanSet
	sortedNs := timeScan(func() {
		scan.Load(reg)
		for _, ref := range retired {
			if scan.Contains(ref) {
				kept++
			}
		}
	}, minDur)
	scanSink = kept

	return ScanResult{
		Hazards:         ScanHazards,
		Retired:         ScanRetired,
		MapNsPerOp:      mapNs,
		MapOpsPerSec:    1e9 / mapNs,
		SortedNsPerOp:   sortedNs,
		SortedOpsPerSec: 1e9 / sortedNs,
		Speedup:         mapNs / sortedNs,
	}
}

var scanSink int

// ReclaimJSON writes BENCH_reclaim.json-shaped output to w: the pinned
// scan microbench plus one fig-8 read-write cell per scheme (the HP cell
// runs on hmlist since the optimistic structures reject plain HP).
func ReclaimJSON(w io.Writer, schemes []string, dur time.Duration) error {
	report := ReclaimReport{
		GeneratedBy: "smrbench -reclaimjson",
		Scan:        RunScanMicrobench(200 * time.Millisecond),
	}
	for _, scheme := range schemes {
		ds := "hhslist"
		if scheme == "hp" {
			ds = "hmlist"
		}
		t, err := NewTarget(ds, scheme, arena.ModeReuse)
		if err != nil {
			return err
		}
		res := Run(t, Config{
			Threads:  4,
			Duration: dur,
			Workload: ReadWrite,
			KeyRange: 10000,
		})
		report.Cells = append(report.Cells, CellResult{
			DS:         ds,
			Scheme:     scheme,
			Threads:    4,
			KeyRange:   10000,
			Workload:   ReadWrite.String(),
			MopsPerSec: res.MopsPerSec,
			NsPerOp:    1e3 / res.MopsPerSec,
			Stats:      res.Stats,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
