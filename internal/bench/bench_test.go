package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/gosmr/gosmr/internal/arena"
)

func TestParseWorkload(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Workload
	}{
		{"write-only", WriteOnly}, {"write", WriteOnly},
		{"read-write", ReadWrite}, {"rw", ReadWrite},
		{"read-most", ReadMost}, {"read", ReadMost},
	} {
		got, err := ParseWorkload(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseWorkload(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseWorkload("bogus"); err == nil {
		t.Error("expected error for bogus workload")
	}
}

func TestWorkloadString(t *testing.T) {
	if WriteOnly.String() != "write-only" || ReadWrite.String() != "read-write" || ReadMost.String() != "read-most" {
		t.Fatal("workload names changed")
	}
}

// TestApplicabilityMatrix pins the Table 2 facts the benchmark enforces.
func TestApplicabilityMatrix(t *testing.T) {
	if Applicable("hhslist", "hp") {
		t.Error("HP must not apply to Harris's list (§2.3)")
	}
	if Applicable("nmtree", "hp") {
		t.Error("HP must not apply to the NM tree (Table 2)")
	}
	if Applicable("efrbtree", "rc") {
		t.Error("RC must not apply to EFRB (footnote 12)")
	}
	if !Applicable("hmlist", "hp") || !Applicable("efrbtree", "hp") || !Applicable("skiplist", "hp") {
		t.Error("HP-compatible structures misclassified")
	}
	for _, ds := range DataStructures() {
		if !Applicable(ds, "ebr") || !Applicable(ds, "hp++") {
			t.Errorf("EBR/HP++ must apply everywhere; failed for %s", ds)
		}
	}
}

// TestEveryTargetConstructs builds every applicable (ds, scheme) pair.
func TestEveryTargetConstructs(t *testing.T) {
	built := 0
	for _, ds := range DataStructures() {
		for _, scheme := range Schemes {
			target, err := NewTarget(ds, scheme, arena.ModeReuse)
			if Applicable(ds, scheme) {
				if err != nil {
					t.Errorf("NewTarget(%s,%s): %v", ds, scheme, err)
					continue
				}
				h := target.NewHandle()
				h.Insert(1, 2)
				if v, ok := h.Get(1); !ok || v != 2 {
					t.Errorf("%s/%s: basic op failed", ds, scheme)
				}
				target.Finish()
				built++
			} else if err == nil {
				t.Errorf("NewTarget(%s,%s) should be rejected", ds, scheme)
			}
		}
	}
	if built < 35 {
		t.Fatalf("only %d targets built", built)
	}
}

func TestRegisteredListsEverything(t *testing.T) {
	reg := Registered()
	if len(reg) != len(DataStructures()) {
		t.Fatalf("registered %v, want all of %v", reg, DataStructures())
	}
}

// TestRunProducesSaneResult runs a tiny benchmark cell end to end.
func TestRunProducesSaneResult(t *testing.T) {
	target, err := NewTarget("hhslist", "ebr", arena.ModeReuse)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(target, Config{
		Threads:  2,
		Duration: 100 * time.Millisecond,
		Workload: ReadWrite,
		KeyRange: 256,
	})
	if res.Ops == 0 {
		t.Fatal("no operations executed")
	}
	if res.MopsPerSec <= 0 {
		t.Fatalf("throughput = %f", res.MopsPerSec)
	}
	if res.PeakUnreclaimed <= 0 {
		t.Fatal("no garbage observed in a write workload")
	}
	if res.Target != "hhslist/ebr" {
		t.Fatalf("target label %q", res.Target)
	}
}

// TestRunLongReadsCountsOnlyReads verifies the Figure 10 runner reports
// reader throughput.
func TestRunLongReadsCountsOnlyReads(t *testing.T) {
	target, err := NewTarget("hhslist", "hp++", arena.ModeReuse)
	if err != nil {
		t.Fatal(err)
	}
	res := RunLongReads(target, Config{
		Threads:  2,
		Duration: 100 * time.Millisecond,
		KeyRange: 512,
	})
	if res.Ops == 0 {
		t.Fatal("no reads executed")
	}
}

// TestRunWithStallShowsEBRGrowth is the §4.4 contrast at harness level.
func TestRunWithStallShowsEBRGrowth(t *testing.T) {
	stalled := func(scheme string) int64 {
		target, err := NewTarget("hhslist", scheme, arena.ModeReuse)
		if err != nil {
			t.Fatal(err)
		}
		res := RunWithStall(target, Config{
			Threads:  2,
			Duration: 600 * time.Millisecond,
			Workload: WriteOnly,
			KeyRange: 512,
		})
		return res.PeakUnreclaimed
	}
	// The margin is conservative (EBR grows linearly, HP++ is constant)
	// so the test stays stable under race-detector slowdown.
	ebrPeak := stalled("ebr")
	hppPeak := stalled("hp++")
	if ebrPeak < 2*hppPeak {
		t.Fatalf("expected EBR garbage to dwarf HP++'s under a stall: ebr=%d hp++=%d", ebrPeak, hppPeak)
	}
}

func TestMatrixWrite(t *testing.T) {
	m := Matrix{
		Title:    "test",
		RowLabel: "threads",
		Rows:     []string{"1", "2"},
		Cols:     []string{"a", "b"},
		Cells:    [][]float64{{1.5, math.NaN()}, {2000, 3}},
	}
	var buf bytes.Buffer
	m.Write(&buf)
	out := buf.String()
	if !strings.Contains(out, "n/a") {
		t.Error("NaN not rendered as n/a")
	}
	if !strings.Contains(out, "2000") || !strings.Contains(out, "1.500") {
		t.Errorf("formatting wrong:\n%s", out)
	}
}
