package bench

import (
	"fmt"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/ds/hashmap"
	"github.com/gosmr/gosmr/internal/ds/hhslist"
	"github.com/gosmr/gosmr/internal/ds/hmlist"
	"github.com/gosmr/gosmr/internal/ebr"
	"github.com/gosmr/gosmr/internal/hp"
	"github.com/gosmr/gosmr/internal/nbr"
	"github.com/gosmr/gosmr/internal/nr"
	"github.com/gosmr/gosmr/internal/pebr"
	"github.com/gosmr/gosmr/internal/rc"
	"github.com/gosmr/gosmr/internal/smr"
	"github.com/gosmr/gosmr/internal/unsafefree"
)

// Scheme names accepted by NewTarget.
var Schemes = []string{"nr", "ebr", "pebr", "nbr", "hp", "hp++", "hp++ef", "hp-scot", "rc"}

// UnsafeScheme is the deliberately broken immediate-free "scheme". It is
// accepted by NewTarget for every data structure with a critical-section
// variant, but intentionally kept out of Schemes: it exists as a
// must-fail control for detect-mode stress runs, never as a benchmark
// subject.
const UnsafeScheme = "unsafefree"

// ScotUnsafeScheme is hp-scot with the SCOT handshake elided
// (hhslist.ListSCOT.SkipValidation): hazards are announced but never
// validated, reproducing the unsound naive-HP optimistic walk the HP++
// paper rules out in §2.3. Like UnsafeScheme it is kept out of Schemes
// and exists only as a must-fail control for detect-mode stress runs.
const ScotUnsafeScheme = "hp-scot-novalidate"

// DataStructures lists the registered data structures.
func DataStructures() []string {
	return []string{"hmlist", "hhslist", "hashmap", "somap", "skiplist", "nmtree", "efrbtree", "bonsai", "kvmap"}
}

// Applicable reports whether scheme applies to ds — the Table 2 facts the
// benchmark enforces: original HP cannot protect optimistic traversal
// (hhslist, nmtree, skiplist's wait-free gets use a dedicated HP variant),
// and RC cannot break the EFRB tree's descriptor cycles.
func Applicable(ds, scheme string) bool {
	switch scheme {
	case "hp":
		return ds != "hhslist" && ds != "nmtree"
	case "hp-scot":
		// SCOT rewrites the optimistic traversal so plain HP suffices; it
		// is implemented for the two lists and the maps built from them.
		// The remaining optimistic structures (skiplist, nmtree, efrbtree,
		// bonsai) have no SCOT variant yet.
		return ds == "hmlist" || ds == "hhslist" || ds == "hashmap" ||
			ds == "somap" || ds == "kvmap"
	case "rc":
		// kvmap (the kvsvc service store) additionally excludes RC: its
		// long-lived worker handles would retain cross-bucket traces that
		// never drain promptly (see kvsvc.Schemes). somap inherits the
		// same exclusion — it is the kvsvc engine, and its permanent
		// dummy chain would keep every retired neighbour's trace alive.
		return ds != "efrbtree" && ds != "nmtree" && ds != "kvmap" && ds != "somap"
	}
	return true
}

// FixedReclaimEvery, when set > 0 before target construction, pins every
// scheme to the classic fixed per-thread cadence (ReclaimEvery /
// CollectEvery) instead of the shared-budget adaptive trigger. It is the
// ablation knob behind smrbench's -fixedcadence flag, used to compare
// per-thread against domain-wide accounting; leave it 0 for the default
// adaptive behaviour.
var FixedReclaimEvery int

func newHPDomain() *hp.Domain {
	d := hp.NewDomain()
	d.ReclaimEvery = FixedReclaimEvery
	return d
}

// newSCOTDomain is newHPDomain relabelled: SCOT runs on an unmodified
// plain-HP domain, distinguished only in stats output.
func newSCOTDomain() *hp.Domain {
	d := newHPDomain()
	d.Name = "hp-scot"
	return d
}

func newHPPDomain(epochFence bool) *core.Domain {
	return core.NewDomain(core.Options{EpochFence: epochFence, ReclaimEvery: FixedReclaimEvery})
}

// guardDomain builds the CS-style domain for a scheme name, or nil if the
// scheme is not CS-style.
func guardDomain(scheme string) (smr.GuardDomain, smr.Domain) {
	switch scheme {
	case "nr":
		d := nr.NewDomain()
		return d, d
	case "ebr":
		d := ebr.NewDomain()
		d.CollectEvery = FixedReclaimEvery
		return d, d
	case "pebr":
		d := pebr.NewDomain()
		d.CollectEvery = FixedReclaimEvery
		return d, d
	case "nbr":
		d := nbr.NewDomain()
		d.CollectEvery = FixedReclaimEvery
		return d, d
	case UnsafeScheme:
		d := unsafefree.NewDomain()
		return d, d
	}
	return nil, nil
}

// agitatorFor returns a reclamation-pressure pulse for CS-style domains:
// a Collect that tries to advance the epoch, ejecting (neutralizing)
// lagging PEBR participants — the "neutralization storm" fault injector.
// The returned closure owns its guard and must be called from a single
// goroutine.
func agitatorFor(d smr.Domain) func() {
	switch dom := d.(type) {
	case *ebr.Domain:
		g := dom.NewGuardEBR()
		return func() { g.Collect() }
	case *pebr.Domain:
		g := dom.NewGuardPEBR(1)
		return func() { g.Collect() }
	case *nbr.Domain:
		g := dom.NewGuardNBR(1)
		return func() { g.Collect() }
	}
	return nil
}

// stallCS returns the paired Stall/StallRelease closures for CS-style
// domains: Stall parks a fresh pinned guard (the §4.4 robustness
// adversary), StallRelease finishes every parked guard so a
// post-measurement drain can reach zero. Both closures must be called
// from a single goroutine.
func stallCS(gd smr.GuardDomain) (stall, release func()) {
	var parked []smr.Guard
	stall = func() {
		g := gd.NewGuard(1)
		g.Pin()
		parked = append(parked, g)
	}
	release = func() {
		for _, g := range parked {
			switch gg := g.(type) {
			case *ebr.Guard:
				gg.Finish()
			case *pebr.Guard:
				gg.Finish()
			case *nbr.Guard:
				gg.Finish()
			default: // nr, unsafefree: nothing held beyond the pin
				g.Unpin()
			}
		}
		parked = nil
	}
	return stall, release
}

// hazardThread is the slice of the hp.Thread / core.Thread surface the
// stall pair needs.
type hazardThread interface {
	Protect(i int, ref uint64)
	Clear(i int)
	Finish()
}

// stallHazard is stallCS for hazard-slot schemes (HP and HP++): Stall
// occupies a slot with a nonzero announcement, StallRelease clears it and
// returns the slot to the registry.
func stallHazard(newThread func() hazardThread) (stall, release func()) {
	var parked []hazardThread
	stall = func() {
		th := newThread()
		th.Protect(0, 1)
		parked = append(parked, th)
	}
	release = func() {
		for _, th := range parked {
			th.Clear(0)
			th.Finish()
		}
		parked = nil
	}
	return stall, release
}

// stallRC is stallCS for RC domains (the RC guard embeds an EBR guard,
// so Finish both unpins and drains the deferred-decrement bag).
func stallRC(dom *rc.Domain) (stall, release func()) {
	var parked []*rc.Guard
	stall = func() {
		g := dom.NewGuard()
		g.Pin()
		parked = append(parked, g)
	}
	release = func() {
		for _, g := range parked {
			g.Finish()
		}
		parked = nil
	}
	return stall, release
}

// NewTarget builds a fresh benchmark target for one (ds, scheme) pair.
func NewTarget(ds, scheme string, mode arena.Mode) (Target, error) {
	if !Applicable(ds, scheme) {
		return Target{}, fmt.Errorf("bench: %s is not applicable to %s (Table 2)", scheme, ds)
	}
	switch ds {
	case "hmlist":
		return newHMListTarget(scheme, mode)
	case "hhslist":
		return newHHSListTarget(scheme, mode)
	case "hashmap":
		return newHashMapTarget(scheme, mode)
	case "somap":
		return newSomapTarget(scheme, mode)
	case "skiplist":
		return newSkipListTarget(scheme, mode)
	case "nmtree":
		return newNMTreeTarget(scheme, mode)
	case "efrbtree":
		return newEFRBTarget(scheme, mode)
	case "bonsai":
		return newBonsaiTarget(scheme, mode)
	case "kvmap":
		return newKVMapTarget(scheme, mode)
	}
	return Target{}, fmt.Errorf("bench: unknown data structure %q", ds)
}

func newHMListTarget(scheme string, mode arena.Mode) (Target, error) {
	t := Target{DS: "hmlist", Scheme: scheme}
	switch scheme {
	case "nr", "ebr", "pebr", "nbr", UnsafeScheme:
		gd, d := guardDomain(scheme)
		pool := hmlist.NewPool(mode)
		l := hmlist.NewListCS(pool)
		var hs []*hmlist.HandleCS
		t.NewHandle = func() Handle {
			h := l.NewHandleCS(gd)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() { drainGuards(guardsOfHM(hs)) }
		t.Unreclaimed = d.Unreclaimed
		t.PeakUnreclaimed = d.PeakUnreclaimed
		t.Stats = d.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallCS(gd)
		t.Pools = []PoolInfo{pool}
		t.Agitate = agitatorFor(d)
	case "hp":
		dom := newHPDomain()
		pool := hmlist.NewPool(mode)
		l := hmlist.NewListHP(pool)
		var hs []*hmlist.HandleHP
		t.NewHandle = func() Handle {
			h := l.NewHandleHP(dom)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			for _, h := range hs {
				h.Thread().Finish()
			}
			dom.NewThread(0).Reclaim()
		}
		t.Unreclaimed = dom.Unreclaimed
		t.PeakUnreclaimed = dom.PeakUnreclaimed
		t.Stats = dom.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
		t.Pools = []PoolInfo{pool}
	case "hp-scot":
		dom := newSCOTDomain()
		pool := hmlist.NewPool(mode)
		l := hmlist.NewListSCOT(pool)
		var hs []*hmlist.HandleSCOT
		t.NewHandle = func() Handle {
			h := l.NewHandleSCOT(dom)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			for _, h := range hs {
				h.Thread().Finish()
			}
			dom.NewThread(0).Reclaim()
		}
		t.Unreclaimed = dom.Unreclaimed
		t.PeakUnreclaimed = dom.PeakUnreclaimed
		t.Stats = dom.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
		t.Pools = []PoolInfo{pool}
	case "hp++", "hp++ef":
		dom := newHPPDomain(scheme == "hp++ef")
		pool := hmlist.NewPool(mode)
		l := hmlist.NewListHPP(pool)
		var hs []*hmlist.HandleHPP
		t.NewHandle = func() Handle {
			h := l.NewHandleHPP(dom)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			for _, h := range hs {
				h.Thread().Finish()
			}
			dom.NewThread(0).Reclaim()
		}
		t.Unreclaimed = dom.Unreclaimed
		t.PeakUnreclaimed = dom.PeakUnreclaimed
		t.Stats = dom.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
		t.Pools = []PoolInfo{pool}
	case "rc":
		dom := rc.NewDomain()
		pool := hmlist.NewPoolRC(mode)
		l := hmlist.NewListRC(pool)
		var hs []*hmlist.HandleRC
		t.NewHandle = func() Handle {
			h := l.NewHandleRC(dom)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			// Bounded collection: Drain would spin forever when the
			// robustness scenario leaves a stalled pin behind.
			for i := 0; i < 8; i++ {
				for _, h := range hs {
					h.Guard().Collect()
				}
			}
		}
		t.Unreclaimed = dom.Unreclaimed
		t.PeakUnreclaimed = dom.PeakUnreclaimed
		t.Stats = dom.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallRC(dom)
		t.Pools = []PoolInfo{pool}
	default:
		return t, fmt.Errorf("bench: unknown scheme %q", scheme)
	}
	return t, nil
}

func newHHSListTarget(scheme string, mode arena.Mode) (Target, error) {
	t := Target{DS: "hhslist", Scheme: scheme}
	switch scheme {
	case "nr", "ebr", "pebr", "nbr", UnsafeScheme:
		gd, d := guardDomain(scheme)
		pool := hhslist.NewPool(mode)
		l := hhslist.NewListCS(pool)
		var hs []*hhslist.HandleCS
		t.NewHandle = func() Handle {
			h := l.NewHandleCS(gd)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() { drainGuards(guardsOfHHS(hs)) }
		t.Unreclaimed = d.Unreclaimed
		t.PeakUnreclaimed = d.PeakUnreclaimed
		t.Stats = d.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallCS(gd)
		t.Pools = []PoolInfo{pool}
		t.Agitate = agitatorFor(d)
	case "hp-scot", ScotUnsafeScheme:
		dom := newSCOTDomain()
		pool := hhslist.NewPool(mode)
		l := hhslist.NewListSCOT(pool)
		// The novalidate control announces hazards but skips the SCOT
		// handshake — detect-mode stress must flag it.
		l.SkipValidation = scheme == ScotUnsafeScheme
		var hs []*hhslist.HandleSCOT
		t.NewHandle = func() Handle {
			h := l.NewHandleSCOT(dom)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			for _, h := range hs {
				h.Thread().Finish()
			}
			dom.NewThread(0).Reclaim()
		}
		t.Unreclaimed = dom.Unreclaimed
		t.PeakUnreclaimed = dom.PeakUnreclaimed
		t.Stats = dom.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
		t.Pools = []PoolInfo{pool}
	case "hp++", "hp++ef":
		dom := newHPPDomain(scheme == "hp++ef")
		pool := hhslist.NewPool(mode)
		l := hhslist.NewListHPP(pool)
		var hs []*hhslist.HandleHPP
		t.NewHandle = func() Handle {
			h := l.NewHandleHPP(dom)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			for _, h := range hs {
				h.Thread().Finish()
			}
			dom.NewThread(0).Reclaim()
		}
		t.Unreclaimed = dom.Unreclaimed
		t.PeakUnreclaimed = dom.PeakUnreclaimed
		t.Stats = dom.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
		t.Pools = []PoolInfo{pool}
	case "rc":
		dom := rc.NewDomain()
		pool := hhslist.NewPoolRC(mode)
		l := hhslist.NewListRC(pool)
		var hs []*hhslist.HandleRC
		t.NewHandle = func() Handle {
			h := l.NewHandleRC(dom)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			// Bounded collection: Drain would spin forever when the
			// robustness scenario leaves a stalled pin behind.
			for i := 0; i < 8; i++ {
				for _, h := range hs {
					h.Guard().Collect()
				}
			}
		}
		t.Unreclaimed = dom.Unreclaimed
		t.PeakUnreclaimed = dom.PeakUnreclaimed
		t.Stats = dom.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallRC(dom)
		t.Pools = []PoolInfo{pool}
	default:
		return t, fmt.Errorf("bench: scheme %q not applicable to hhslist", scheme)
	}
	return t, nil
}

func newHashMapTarget(scheme string, mode arena.Mode) (Target, error) {
	t := Target{DS: "hashmap", Scheme: scheme}
	nb := hashmap.DefaultBuckets
	switch scheme {
	case "nr", "ebr", "pebr", "nbr", UnsafeScheme:
		gd, d := guardDomain(scheme)
		pool := hhslist.NewPool(mode)
		m := hashmap.NewMapCS(pool, nb)
		var hs []*hashmap.HandleCS
		t.NewHandle = func() Handle {
			h := m.NewHandleCS(gd)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			var gs []smr.Guard
			for _, h := range hs {
				gs = append(gs, h.Guard())
			}
			drainGuards(gs)
		}
		t.Unreclaimed = d.Unreclaimed
		t.PeakUnreclaimed = d.PeakUnreclaimed
		t.Stats = d.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallCS(gd)
		t.Pools = []PoolInfo{pool}
		t.Agitate = agitatorFor(d)
	case "hp":
		dom := newHPDomain()
		pool := hmlist.NewPool(mode)
		m := hashmap.NewMapHP(pool, nb)
		var hs []*hashmap.HandleHP
		t.NewHandle = func() Handle {
			h := m.NewHandleHP(dom)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			for _, h := range hs {
				h.Thread().Finish()
			}
			dom.NewThread(0).Reclaim()
		}
		t.Unreclaimed = dom.Unreclaimed
		t.PeakUnreclaimed = dom.PeakUnreclaimed
		t.Stats = dom.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
		t.Pools = []PoolInfo{pool}
	case "hp-scot":
		dom := newSCOTDomain()
		pool := hhslist.NewPool(mode)
		m := hashmap.NewMapSCOT(pool, nb)
		var hs []*hashmap.HandleSCOT
		t.NewHandle = func() Handle {
			h := m.NewHandleSCOT(dom)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			for _, h := range hs {
				h.Thread().Finish()
			}
			dom.NewThread(0).Reclaim()
		}
		t.Unreclaimed = dom.Unreclaimed
		t.PeakUnreclaimed = dom.PeakUnreclaimed
		t.Stats = dom.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
		t.Pools = []PoolInfo{pool}
	case "hp++", "hp++ef":
		dom := newHPPDomain(scheme == "hp++ef")
		pool := hhslist.NewPool(mode)
		m := hashmap.NewMapHPP(pool, nb)
		var hs []*hashmap.HandleHPP
		t.NewHandle = func() Handle {
			h := m.NewHandleHPP(dom)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			for _, h := range hs {
				h.Thread().Finish()
			}
			dom.NewThread(0).Reclaim()
		}
		t.Unreclaimed = dom.Unreclaimed
		t.PeakUnreclaimed = dom.PeakUnreclaimed
		t.Stats = dom.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
		t.Pools = []PoolInfo{pool}
	case "rc":
		dom := rc.NewDomain()
		pool := hhslist.NewPoolRC(mode)
		m := hashmap.NewMapRC(pool, nb)
		var hs []*hashmap.HandleRC
		t.NewHandle = func() Handle {
			h := m.NewHandleRC(dom)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			// Bounded collection: Drain would spin forever when the
			// robustness scenario leaves a stalled pin behind.
			for i := 0; i < 8; i++ {
				for _, h := range hs {
					h.Guard().Collect()
				}
			}
		}
		t.Unreclaimed = dom.Unreclaimed
		t.PeakUnreclaimed = dom.PeakUnreclaimed
		t.Stats = dom.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallRC(dom)
		t.Pools = []PoolInfo{pool}
	default:
		return t, fmt.Errorf("bench: unknown scheme %q", scheme)
	}
	return t, nil
}

func guardsOfHM(hs []*hmlist.HandleCS) []smr.Guard {
	var gs []smr.Guard
	for _, h := range hs {
		gs = append(gs, h.Guard())
	}
	return gs
}

func guardsOfHHS(hs []*hhslist.HandleCS) []smr.Guard {
	var gs []smr.Guard
	for _, h := range hs {
		gs = append(gs, h.Guard())
	}
	return gs
}

// drainGuards drains CS-style guards after a run.
func drainGuards(gs []smr.Guard) {
	for _, g := range gs {
		switch gg := g.(type) {
		case *pebr.Guard:
			gg.ClearShields()
		case *nbr.Guard:
			gg.ClearCheckpoints()
		}
	}
	for i := 0; i < 8; i++ {
		for _, g := range gs {
			switch gg := g.(type) {
			case *ebr.Guard:
				gg.Collect()
			case *pebr.Guard:
				gg.Collect()
			case *nbr.Guard:
				gg.Collect()
			}
		}
	}
}
