package bench

import (
	"fmt"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/ds/hhslist"
	"github.com/gosmr/gosmr/internal/ds/hmlist"
	"github.com/gosmr/gosmr/internal/ds/somap"
	"github.com/gosmr/gosmr/internal/smr"
)

// Somap target knobs, read at target construction like FixedReclaimEvery.
// The defaults give a small map that still grows under bench workloads;
// the stress harness's resize-storm fault sets them to (2, 1) so
// directory doublings and dummy splices happen constantly while faults
// are injected.
var (
	// SomapInitialBuckets is the initial directory size for new somap
	// targets (rounded up to a power of two).
	SomapInitialBuckets = 64
	// SomapMaxLoad is the items-per-bucket threshold that doubles the
	// directory.
	SomapMaxLoad = 4
)

func somapCfg() somap.Config {
	return somap.Config{InitialBuckets: SomapInitialBuckets, MaxLoad: SomapMaxLoad}
}

func newSomapTarget(scheme string, mode arena.Mode) (Target, error) {
	t := Target{DS: "somap", Scheme: scheme}
	switch scheme {
	case "nr", "ebr", "pebr", "nbr", UnsafeScheme:
		gd, d := guardDomain(scheme)
		pool := hhslist.NewPool(mode)
		m := somap.NewMapCS(pool, somapCfg())
		var hs []*somap.HandleCS
		t.NewHandle = func() Handle {
			h := m.NewHandleCS(gd)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			var gs []smr.Guard
			for _, h := range hs {
				gs = append(gs, h.Guard())
			}
			drainGuards(gs)
		}
		t.Unreclaimed = d.Unreclaimed
		t.PeakUnreclaimed = d.PeakUnreclaimed
		t.Stats = d.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallCS(gd)
		t.Pools = []PoolInfo{pool}
		t.Agitate = agitatorFor(d)
	case "hp":
		dom := newHPDomain()
		pool := hmlist.NewPool(mode)
		m := somap.NewMapHP(pool, somapCfg())
		var hs []*somap.HandleHP
		t.NewHandle = func() Handle {
			h := m.NewHandleHP(dom)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			for _, h := range hs {
				h.Thread().Finish()
			}
			dom.NewThread(0).Reclaim()
		}
		t.Unreclaimed = dom.Unreclaimed
		t.PeakUnreclaimed = dom.PeakUnreclaimed
		t.Stats = dom.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
		t.Pools = []PoolInfo{pool}
	case "hp-scot":
		dom := newSCOTDomain()
		pool := hhslist.NewPool(mode)
		m := somap.NewMapSCOT(pool, somapCfg())
		var hs []*somap.HandleSCOT
		t.NewHandle = func() Handle {
			h := m.NewHandleSCOT(dom)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			for _, h := range hs {
				h.Thread().Finish()
			}
			dom.NewThread(0).Reclaim()
		}
		t.Unreclaimed = dom.Unreclaimed
		t.PeakUnreclaimed = dom.PeakUnreclaimed
		t.Stats = dom.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
		t.Pools = []PoolInfo{pool}
	case "hp++", "hp++ef":
		dom := newHPPDomain(scheme == "hp++ef")
		pool := hhslist.NewPool(mode)
		m := somap.NewMapHPP(pool, somapCfg())
		var hs []*somap.HandleHPP
		t.NewHandle = func() Handle {
			h := m.NewHandleHPP(dom)
			hs = append(hs, h)
			return h
		}
		t.Finish = func() {
			for _, h := range hs {
				h.Thread().Finish()
			}
			dom.NewThread(0).Reclaim()
		}
		t.Unreclaimed = dom.Unreclaimed
		t.PeakUnreclaimed = dom.PeakUnreclaimed
		t.Stats = dom.Stats
		t.MemBytes = func() int64 { return pool.Stats().Bytes }
		t.Stall, t.StallRelease = stallHazard(func() hazardThread { return dom.NewThread(1) })
		t.Pools = []PoolInfo{pool}
	default:
		return t, fmt.Errorf("bench: scheme %q not applicable to somap", scheme)
	}
	return t, nil
}
