package bonsai

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/ebr"
	"github.com/gosmr/gosmr/internal/hp"
	"github.com/gosmr/gosmr/internal/nr"
	"github.com/gosmr/gosmr/internal/pebr"
	"github.com/gosmr/gosmr/internal/rc"
	"github.com/gosmr/gosmr/internal/tagptr"
)

type handle interface {
	Get(key uint64) (uint64, bool)
	Insert(key, val uint64) bool
	Delete(key uint64) bool
}

type variant struct {
	name string
	mk   func(mode arena.Mode) (mkHandle func() handle, finish func())
}

func variants() []variant {
	return []variant{
		{"CS/EBR", func(mode arena.Mode) (func() handle, func()) {
			dom := ebr.NewDomain()
			t := NewTreeCS(NewPool(mode))
			var hs []*HandleCS
			return func() handle {
					h := t.NewHandleCS(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Guard().(*ebr.Guard).Drain()
					}
				}
		}},
		{"CS/PEBR", func(mode arena.Mode) (func() handle, func()) {
			dom := pebr.NewDomain()
			t := NewTreeCS(NewPool(mode))
			var hs []*HandleCS
			return func() handle {
					h := t.NewHandleCS(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Guard().(*pebr.Guard).ClearShields()
					}
					for i := 0; i < 8; i++ {
						for _, h := range hs {
							h.Guard().(*pebr.Guard).Collect()
						}
					}
				}
		}},
		{"CS/NR", func(mode arena.Mode) (func() handle, func()) {
			dom := nr.NewDomain()
			t := NewTreeCS(NewPool(mode))
			return func() handle { return t.NewHandleCS(dom) }, func() {}
		}},
		{"HP", func(mode arena.Mode) (func() handle, func()) {
			dom := hp.NewDomain()
			t := NewTreeHP(NewPool(mode))
			var hs []*HandleHP
			return func() handle {
					h := t.NewHandleHP(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Thread().Finish()
					}
					dom.NewThread(0).Reclaim()
				}
		}},
		{"HPP", func(mode arena.Mode) (func() handle, func()) {
			dom := core.NewDomain(core.Options{})
			t := NewTreeHPP(NewPool(mode))
			var hs []*HandleHPP
			return func() handle {
					h := t.NewHandleHPP(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Thread().Finish()
					}
					dom.NewThread(0).Reclaim()
				}
		}},
		{"RC", func(mode arena.Mode) (func() handle, func()) {
			dom := rc.NewDomain()
			t := NewTreeRC(NewPoolRC(mode))
			var hs []*HandleRC
			return func() handle {
					h := t.NewHandleRC(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Guard().Drain()
					}
				}
		}},
	}
}

func TestSequentialModel(t *testing.T) {
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			mk, finish := v.mk(arena.ModeDetect)
			h := mk()
			defer finish()
			model := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(23))
			for i := 0; i < 6000; i++ {
				k := uint64(rng.Intn(128))
				switch rng.Intn(3) {
				case 0:
					_, in := model[k]
					if h.Insert(k, k+5000) == in {
						t.Fatalf("op %d: Insert(%d) disagreed with model", i, k)
					}
					model[k] = k + 5000
				case 1:
					_, in := model[k]
					if h.Delete(k) != in {
						t.Fatalf("op %d: Delete(%d) disagreed with model", i, k)
					}
					delete(model, k)
				default:
					val, ok := h.Get(k)
					mv, in := model[k]
					if ok != in || (ok && val != mv) {
						t.Fatalf("op %d: Get(%d) = (%d,%v) want (%d,%v)", i, k, val, ok, mv, in)
					}
				}
			}
		})
	}
}

func TestQuickModelEquivalence(t *testing.T) {
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			prop := func(ops []uint16) bool {
				mk, finish := v.mk(arena.ModeDetect)
				h := mk()
				defer finish()
				model := map[uint64]uint64{}
				for _, op := range ops {
					k := uint64(op % 64)
					switch (op / 64) % 3 {
					case 0:
						_, in := model[k]
						if h.Insert(k, k) == in {
							return false
						}
						model[k] = k
					case 1:
						_, in := model[k]
						if h.Delete(k) != in {
							return false
						}
						delete(model, k)
					default:
						_, ok := h.Get(k)
						if _, in := model[k]; ok != in {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConcurrentStress(t *testing.T) {
	const (
		workers = 4
		iters   = 4000
		keys    = 64
	)
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			mk, finish := v.mk(arena.ModeDetect)
			handles := make([]handle, workers)
			for i := range handles {
				handles[i] = mk()
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(h handle, seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < iters; i++ {
						k := uint64(rng.Intn(keys))
						switch rng.Intn(4) {
						case 0:
							h.Insert(k, k)
						case 1:
							h.Delete(k)
						default:
							h.Get(k)
						}
					}
				}(handles[w], int64(w+41))
			}
			wg.Wait()
			finish()
		})
	}
}

func TestDisjointKeysLinearizable(t *testing.T) {
	const workers = 4
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			mk, finish := v.mk(arena.ModeDetect)
			handles := make([]handle, workers)
			for i := range handles {
				handles[i] = mk()
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(h handle, base uint64) {
					defer wg.Done()
					model := map[uint64]uint64{}
					rng := rand.New(rand.NewSource(int64(base + 9)))
					for i := 0; i < 1500; i++ {
						k := base + uint64(rng.Intn(24))
						switch rng.Intn(3) {
						case 0:
							_, in := model[k]
							if h.Insert(k, k) == in {
								t.Errorf("insert(%d) disagreed with private model", k)
								return
							}
							model[k] = k
						case 1:
							_, in := model[k]
							if h.Delete(k) != in {
								t.Errorf("delete(%d) disagreed with private model", k)
								return
							}
							delete(model, k)
						default:
							_, ok := h.Get(k)
							if _, in := model[k]; ok != in {
								t.Errorf("get(%d) disagreed with private model", k)
								return
							}
						}
					}
				}(handles[w], uint64(w)*1000)
			}
			wg.Wait()
			finish()
		})
	}
}

// TestWeightBalanceInvariant checks the (3,2) weight-balance and BST
// ordering over the whole tree after a mixed workload.
func TestWeightBalanceInvariant(t *testing.T) {
	dom := ebr.NewDomain()
	p := NewPool(arena.ModeDetect)
	tr := NewTreeCS(p)
	h := tr.NewHandleCS(dom)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(4096))
		if rng.Intn(3) == 0 {
			h.Delete(k)
		} else {
			h.Insert(k, k)
		}
	}
	var walk func(ref uint64, lo, hi uint64) uint64
	walk = func(ref uint64, lo, hi uint64) uint64 {
		if ref == 0 {
			return 0
		}
		nd := p.Pool.Deref(ref)
		if nd.key < lo || nd.key > hi {
			t.Fatalf("BST violation: key %d outside [%d,%d]", nd.key, lo, hi)
		}
		sl := walk(tagptr.RefOf(nd.left.Load()), lo, nd.key-1)
		sr := walk(tagptr.RefOf(nd.right.Load()), nd.key+1, hi)
		if sl+sr+1 != nd.size {
			t.Fatalf("size field %d != computed %d", nd.size, sl+sr+1)
		}
		if tooHeavy(sl, sr) || tooHeavy(sr, sl) {
			t.Fatalf("weight balance violated at key %d: %d vs %d", nd.key, sl, sr)
		}
		return nd.size
	}
	walk(tagptr.RefOf(tr.root.Load()), 0, ^uint64(0))
}

// TestNoLeaksAfterDrain: delete everything, drain, expect zero live nodes.
func TestNoLeaksAfterDrain(t *testing.T) {
	t.Run("EBR", func(t *testing.T) {
		dom := ebr.NewDomain()
		p := NewPool(arena.ModeDetect)
		tr := NewTreeCS(p)
		h := tr.NewHandleCS(dom)
		const n = 800
		for k := uint64(0); k < n; k++ {
			h.Insert(k, k)
		}
		for k := uint64(0); k < n; k++ {
			if !h.Delete(k) {
				t.Fatalf("delete(%d) failed", k)
			}
		}
		h.Guard().(*ebr.Guard).Drain()
		if live := p.Stats().Live; live != 0 {
			t.Fatalf("leaked %d nodes", live)
		}
	})
	t.Run("RC", func(t *testing.T) {
		dom := rc.NewDomain()
		p := NewPoolRC(arena.ModeDetect)
		tr := NewTreeRC(p)
		h := tr.NewHandleRC(dom)
		const n = 800
		for k := uint64(0); k < n; k++ {
			h.Insert(k, k)
		}
		for k := uint64(0); k < n; k++ {
			if !h.Delete(k) {
				t.Fatalf("delete(%d) failed", k)
			}
		}
		h.Guard().Drain()
		if live := p.Stats().Live; live != 0 {
			t.Fatalf("leaked %d counted nodes", live)
		}
	})
	t.Run("HPP", func(t *testing.T) {
		dom := core.NewDomain(core.Options{})
		p := NewPool(arena.ModeDetect)
		tr := NewTreeHPP(p)
		h := tr.NewHandleHPP(dom)
		const n = 800
		for k := uint64(0); k < n; k++ {
			h.Insert(k, k)
		}
		for k := uint64(0); k < n; k++ {
			if !h.Delete(k) {
				t.Fatalf("delete(%d) failed", k)
			}
		}
		h.Thread().Finish()
		dom.NewThread(0).Reclaim()
		if live := p.Stats().Live; live != 0 {
			t.Fatalf("leaked %d nodes", live)
		}
	})
}
