package bonsai

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/rc"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// NodeRC is a counted immutable tree node.
type NodeRC struct {
	count atomic.Int64
	left  atomic.Uint64
	right atomic.Uint64
	size  uint64
	key   uint64
	val   uint64
}

// PoolRC allocates counted nodes and implements rc.Object.
type PoolRC struct {
	*arena.Pool[NodeRC]
}

// NewPoolRC creates a counted node pool.
func NewPoolRC(mode arena.Mode) PoolRC {
	return PoolRC{arena.NewPool[NodeRC]("bonsai-rc", mode)}
}

// IncCount adds a strong reference.
func (p PoolRC) IncCount(ref uint64) { p.Deref(ref).count.Add(1) }

// DecCount drops a strong reference and returns the new count.
func (p PoolRC) DecCount(ref uint64) int64 { return p.Deref(ref).count.Add(-1) }

// Trace reports the node's outgoing strong references.
func (p PoolRC) Trace(ref uint64, out []uint64) []uint64 {
	n := p.Deref(ref)
	if l := tagptr.RefOf(n.left.Load()); l != 0 {
		out = append(out, l)
	}
	if r := tagptr.RefOf(n.right.Load()); r != 0 {
		out = append(out, r)
	}
	return out
}

// TreeRC is the Bonsai tree under deferred reference counting. Every node
// built by the copy-on-write path increments its children's counts — the
// torrent of counter traffic that makes RC collapse on Bonsai in the
// paper's Figure 8. Reclamation is fully automatic: committing defers one
// decrement of the old root and the dead path cascades; aborting defers
// one decrement of the speculative root.
type TreeRC struct {
	pool PoolRC
	root atomic.Uint64
}

// NewTreeRC creates an empty tree over pool.
func NewTreeRC(pool PoolRC) *TreeRC { return &TreeRC{pool: pool} }

// NewHandleRC returns a per-worker handle.
func (t *TreeRC) NewHandleRC(dom *rc.Domain) *HandleRC {
	return &HandleRC{t: t, g: dom.NewGuard(), dt: rc.NewDecTask(dom, t.pool)}
}

// HandleRC is a per-worker handle; not safe for concurrent use.
type HandleRC struct {
	t        *TreeRC
	g        *rc.Guard
	dt       *rc.DecTask
	newNodes []uint64 // nodes created by the current attempt
}

func (h *HandleRC) isNew(ref uint64) bool {
	for _, n := range h.newNodes {
		if n == ref {
			return true
		}
	}
	return false
}

// Guard exposes the underlying guard.
func (h *HandleRC) Guard() *rc.Guard { return h.g }

// mk allocates a counted node: every heap link counts one reference, so
// both children are incremented; the node itself starts unowned (count 0)
// until a parent mk or the publish adopts it.
func (h *HandleRC) mk(key, val, l, r, sl, sr uint64) (uint64, uint64) {
	ref, nd := h.t.pool.Alloc()
	nd.key, nd.val = key, val
	nd.size = sl + sr + 1
	nd.count.Store(0)
	nd.left.Store(tagptr.Pack(l, 0))
	nd.right.Store(tagptr.Pack(r, 0))
	if l != 0 {
		h.t.pool.IncCount(l)
	}
	if r != 0 {
		h.t.pool.IncCount(r)
	}
	h.newNodes = append(h.newNodes, ref)
	return ref, nd.size
}

// freeNew releases an unowned (count-0) node this attempt created,
// dropping its links: private descendants cascade immediately, shared
// targets get a deferred decrement.
func (h *HandleRC) freeNew(ref uint64) {
	v := h.viewOf(ref)
	h.t.pool.Free(ref)
	h.releaseRef(v.left)
	h.releaseRef(v.right)
}

// releaseRef drops one counted link to ref.
func (h *HandleRC) releaseRef(ref uint64) {
	if ref == 0 {
		return
	}
	if !h.isNew(ref) {
		h.g.DeferDec(h.dt, ref)
		return
	}
	if h.t.pool.DecCount(ref) == 0 {
		h.freeNew(ref)
	}
}

func (h *HandleRC) viewOf(ref uint64) view {
	nd := h.t.pool.Deref(ref)
	return view{
		key: nd.key, val: nd.val,
		left:  tagptr.RefOf(nd.left.Load()),
		right: tagptr.RefOf(nd.right.Load()),
		size:  nd.size,
	}
}

func (h *HandleRC) sizeOf(ref uint64) uint64 {
	if ref == 0 {
		return 0
	}
	return h.t.pool.Deref(ref).size
}

// balance mirrors builder.balance with counted allocation. A rotation
// destructures the heavy child: if that child was built by this attempt
// it is now an unowned intermediate and is cascaded away after the
// replacements have taken their references; consumed *shared* nodes die
// with the old version through the committed root's cascade.
func (h *HandleRC) balance(k, val, l, sl, r, sr uint64) (uint64, uint64) {
	switch {
	case tooHeavy(sr, sl):
		rv := h.viewOf(r)
		srl, srr := h.sizeOf(rv.left), h.sizeOf(rv.right)
		var ref, size uint64
		if srl+1 < 2*(srr+1) {
			nl, nsl := h.mk(k, val, l, rv.left, sl, srl)
			ref, size = h.mk(rv.key, rv.val, nl, rv.right, nsl, srr)
		} else {
			rlv := h.viewOf(rv.left)
			srll, srlr := h.sizeOf(rlv.left), h.sizeOf(rlv.right)
			nl, nsl := h.mk(k, val, l, rlv.left, sl, srll)
			nr, nsr := h.mk(rv.key, rv.val, rlv.right, rv.right, srlr, srr)
			ref, size = h.mk(rlv.key, rlv.val, nl, nr, nsl, nsr)
		}
		if h.isNew(r) {
			h.freeNew(r)
		}
		return ref, size
	case tooHeavy(sl, sr):
		lv := h.viewOf(l)
		sll, slr := h.sizeOf(lv.left), h.sizeOf(lv.right)
		var ref, size uint64
		if slr+1 < 2*(sll+1) {
			nr, nsr := h.mk(k, val, lv.right, r, slr, sr)
			ref, size = h.mk(lv.key, lv.val, lv.left, nr, sll, nsr)
		} else {
			lrv := h.viewOf(lv.right)
			slrl, slrr := h.sizeOf(lrv.left), h.sizeOf(lrv.right)
			nl, nsl := h.mk(lv.key, lv.val, lv.left, lrv.left, sll, slrl)
			nr, nsr := h.mk(k, val, lrv.right, r, slrr, sr)
			ref, size = h.mk(lrv.key, lrv.val, nl, nr, nsl, nsr)
		}
		if h.isNew(l) {
			h.freeNew(l)
		}
		return ref, size
	}
	return h.mk(k, val, l, r, sl, sr)
}

// dropSpeculative releases a never-published attempt root: new roots are
// unowned intermediates and cascade away; a shared root (a one-child
// deletion promoting an old subtree) holds nothing of ours.
func (h *HandleRC) dropSpeculative(root uint64) {
	if root != 0 && h.isNew(root) {
		h.freeNew(root)
	}
}

func (h *HandleRC) insertRec(n uint64, key, val uint64) (ref, size uint64, existed bool) {
	if n == 0 {
		ref, size = h.mk(key, val, 0, 0, 0, 0)
		return ref, size, false
	}
	v := h.viewOf(n)
	if v.key == key {
		return n, v.size, true
	}
	if key < v.key {
		nl, sl, ex := h.insertRec(v.left, key, val)
		if ex {
			return n, v.size, true
		}
		ref, size = h.balance(v.key, v.val, nl, sl, v.right, h.sizeOf(v.right))
		return ref, size, false
	}
	nr, sr, ex := h.insertRec(v.right, key, val)
	if ex {
		return n, v.size, true
	}
	ref, size = h.balance(v.key, v.val, v.left, h.sizeOf(v.left), nr, sr)
	return ref, size, false
}

func (h *HandleRC) deleteRec(n uint64, key uint64) (ref, size uint64, found bool) {
	if n == 0 {
		return 0, 0, false
	}
	v := h.viewOf(n)
	switch {
	case key == v.key:
		switch {
		case v.left == 0 && v.right == 0:
			return 0, 0, true
		case v.left == 0:
			// The shared child is adopted where it is re-linked: by the
			// caller's mk, or by the commit if it becomes the root.
			return v.right, h.sizeOf(v.right), true
		case v.right == 0:
			return v.left, h.sizeOf(v.left), true
		default:
			mk, mv, nr, snr := h.popMin(v.right)
			ref, size = h.balance(mk, mv, v.left, h.sizeOf(v.left), nr, snr)
			return ref, size, true
		}
	case key < v.key:
		nl, sl, f := h.deleteRec(v.left, key)
		if !f {
			return n, v.size, false
		}
		ref, size = h.balance(v.key, v.val, nl, sl, v.right, h.sizeOf(v.right))
		return ref, size, true
	default:
		nr, sr, f := h.deleteRec(v.right, key)
		if !f {
			return n, v.size, false
		}
		ref, size = h.balance(v.key, v.val, v.left, h.sizeOf(v.left), nr, sr)
		return ref, size, true
	}
}

func (h *HandleRC) popMin(n uint64) (minKey, minVal, ref, size uint64) {
	v := h.viewOf(n)
	if v.left == 0 {
		return v.key, v.val, v.right, h.sizeOf(v.right)
	}
	mk, mv, nl, snl := h.popMin(v.left)
	ref, size = h.balance(v.key, v.val, nl, snl, v.right, h.sizeOf(v.right))
	return mk, mv, ref, size
}

// publish installs newRoot: the root pointer takes one reference, and on
// success the old version loses its root reference (deferred, cascading
// through the dead path). On failure the attempt's nodes are released by
// the caller via dropSpeculative.
func (h *HandleRC) publish(oldW tagptr.Word, oldRoot, newRoot uint64) bool {
	if newRoot != 0 {
		h.t.pool.IncCount(newRoot)
	}
	if !h.t.root.CompareAndSwap(oldW, tagptr.Pack(newRoot, 0)) {
		if newRoot != 0 {
			h.t.pool.DecCount(newRoot) // undo; dropSpeculative finishes up
		}
		return false
	}
	if oldRoot != 0 {
		h.g.DeferDec(h.dt, oldRoot)
	}
	return true
}

// Get returns the value stored under key.
func (h *HandleRC) Get(key uint64) (uint64, bool) {
	h.g.Pin()
	defer h.g.Unpin()
	cur := tagptr.RefOf(h.t.root.Load())
	for cur != 0 {
		nd := h.t.pool.Deref(cur)
		switch {
		case key == nd.key:
			return nd.val, true
		case key < nd.key:
			cur = tagptr.RefOf(nd.left.Load())
		default:
			cur = tagptr.RefOf(nd.right.Load())
		}
	}
	return 0, false
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleRC) Insert(key, val uint64) bool {
	h.g.Pin()
	defer h.g.Unpin()
	for {
		h.newNodes = h.newNodes[:0]
		oldW := h.t.root.Load()
		oldRoot := tagptr.RefOf(oldW)
		newRoot, _, existed := h.insertRec(oldRoot, key, val)
		if existed {
			return false
		}
		if h.publish(oldW, oldRoot, newRoot) {
			return true
		}
		h.dropSpeculative(newRoot)
	}
}

// Delete removes key, reporting whether it was present.
func (h *HandleRC) Delete(key uint64) bool {
	h.g.Pin()
	defer h.g.Unpin()
	for {
		h.newNodes = h.newNodes[:0]
		oldW := h.t.root.Load()
		oldRoot := tagptr.RefOf(oldW)
		newRoot, _, found := h.deleteRec(oldRoot, key)
		if !found {
			return false
		}
		if h.publish(oldW, oldRoot, newRoot) {
			return true
		}
		h.dropSpeculative(newRoot)
	}
}
