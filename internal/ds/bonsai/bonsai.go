// Package bonsai implements a non-blocking variant of the Bonsai tree
// (Clements, Kaashoek, Zeldovich — ASPLOS 2012), the copy-on-write
// weight-balanced search tree of the HP++ paper's evaluation.
//
// The tree is a persistent (immutable-node) weight-balanced BST behind a
// single atomic root. Writers rebuild the path from the root to the
// affected position — rebalancing with the Hirai-Yamamoto (3,2) rotation
// rules — and publish the new version with one CAS on the root; the
// replaced path nodes are then retired. Readers traverse an immutable
// snapshot.
//
// Reclamation characteristics reproduce §5's observations:
//
//   - EBR/PEBR/NR: snapshots are free under an epoch pin.
//   - HP: every protection must be validated against the root pointer and
//     fails whenever ANY write committed — the cause of Bonsai's poor HP
//     throughput in Figure 8.
//   - HP++: protections fail only when a source node was invalidated, and
//     the root CAS needs no frontier protection at all (the paper's
//     "Bonsai does not require frontier protection").
//   - RC: every copied path node touches its children's counters, which
//     is why RC collapses on Bonsai in the paper.
package bonsai

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// Node is an immutable tree node. left/right are written at construction
// and (for the Invalid bit on left) at invalidation only.
type Node struct {
	left  atomic.Uint64
	right atomic.Uint64
	size  uint64 // subtree size, for weight balancing
	key   uint64
	val   uint64
}

// Pool allocates tree nodes and implements core.Invalidator.
type Pool struct {
	*arena.Pool[Node]
}

// NewPool creates a node pool.
func NewPool(mode arena.Mode) Pool {
	return Pool{arena.NewPool[Node]("bonsai", mode)}
}

// Invalidate sets the Invalid bit on the node's left word.
func (p Pool) Invalidate(ref uint64) {
	n := p.Deref(ref)
	n.left.Store(n.left.Load() | tagptr.Invalid)
}

// view is a local copy of a node's fields taken under protection.
type view struct {
	key, val    uint64
	left, right uint64
	size        uint64
}

// protector is the per-scheme protection hook used by the shared builder.
// depth selects a slot (implementations may use a small ring: only the
// current node, its source, and two rotation scratch levels need to stay
// protected simultaneously).
type protector interface {
	// enter protects ref — loaded from parent's left (fromLeft) or right
	// field, or from the tree root if parent is zero — and returns a
	// snapshot of its fields. ok=false aborts the write attempt.
	enter(depth int, ref, parent uint64, fromLeft bool) (view, bool)
}

// builder constructs the new version of the tree for one write attempt.
type builder struct {
	pool     Pool
	prot     protector
	newNodes []uint64
	replaced []uint64
	ok       bool
}

func (b *builder) reset() {
	b.newNodes = b.newNodes[:0]
	b.replaced = b.replaced[:0]
	b.ok = true
}

func (b *builder) isNew(ref uint64) bool {
	for _, n := range b.newNodes {
		if n == ref {
			return true
		}
	}
	return false
}

// mk allocates a fresh node.
func (b *builder) mk(key, val, l, r, sl, sr uint64) (uint64, uint64) {
	ref, nd := b.pool.Alloc()
	nd.key, nd.val = key, val
	nd.size = sl + sr + 1
	nd.left.Store(tagptr.Pack(l, 0))
	nd.right.Store(tagptr.Pack(r, 0))
	b.newNodes = append(b.newNodes, ref)
	return ref, nd.size
}

// viewOf snapshots ref's fields: directly for nodes this attempt created,
// through the protector for shared (old) nodes.
func (b *builder) viewOf(depth int, ref, parent uint64, fromLeft bool) (view, bool) {
	if ref == 0 {
		return view{}, true
	}
	if b.isNew(ref) {
		nd := b.pool.Deref(ref)
		return view{
			key: nd.key, val: nd.val,
			left:  tagptr.RefOf(nd.left.Load()),
			right: tagptr.RefOf(nd.right.Load()),
			size:  nd.size,
		}, true
	}
	return b.prot.enter(depth, ref, parent, fromLeft)
}

// sizeOf returns ref's subtree size (0 for nil), protecting as needed.
func (b *builder) sizeOf(depth int, ref, parent uint64, fromLeft bool) uint64 {
	if ref == 0 {
		return 0
	}
	v, ok := b.viewOf(depth, ref, parent, fromLeft)
	if !ok {
		b.ok = false
		return 0
	}
	return v.size
}

// consume records that ref's contents were superseded by this attempt.
func (b *builder) consume(ref uint64) {
	b.replaced = append(b.replaced, ref)
}

// tooHeavy reports the (3,2) weight-balance violation: a subtree of
// weight a+1 may be at most 3x its sibling's weight b+1.
func tooHeavy(a, b uint64) bool { return a+1 > 3*(b+1) }

// balance builds a node (k,v) over subtrees l and r, rotating if one side
// is too heavy. parent is the old node being replaced (still protected at
// depth d by the caller), the protection source for old children.
func (b *builder) balance(d int, k, val, l, sl, r, sr, parent uint64) (uint64, uint64) {
	if !b.ok {
		return 0, 0
	}
	switch {
	case tooHeavy(sr, sl): // right heavy
		rv, ok := b.viewOf(d+1, r, parent, false)
		if !ok {
			b.ok = false
			return 0, 0
		}
		srl := b.sizeOf(d+2, rv.left, r, true)
		srr := b.sizeOf(d+2, rv.right, r, false)
		if !b.ok {
			return 0, 0
		}
		b.consume(r)
		if srl+1 < 2*(srr+1) { // single left rotation
			nl, nsl := b.mk(k, val, l, rv.left, sl, srl)
			return b.mk(rv.key, rv.val, nl, rv.right, nsl, srr)
		}
		// double rotation: lift r.left
		rlv, ok := b.viewOf(d+2, rv.left, r, true)
		if !ok {
			b.ok = false
			return 0, 0
		}
		srll := b.sizeOf(d+3, rlv.left, rv.left, true)
		srlr := b.sizeOf(d+3, rlv.right, rv.left, false)
		if !b.ok {
			return 0, 0
		}
		b.consume(rv.left)
		nl, nsl := b.mk(k, val, l, rlv.left, sl, srll)
		nr, nsr := b.mk(rv.key, rv.val, rlv.right, rv.right, srlr, srr)
		return b.mk(rlv.key, rlv.val, nl, nr, nsl, nsr)

	case tooHeavy(sl, sr): // left heavy (mirror)
		lv, ok := b.viewOf(d+1, l, parent, true)
		if !ok {
			b.ok = false
			return 0, 0
		}
		sll := b.sizeOf(d+2, lv.left, l, true)
		slr := b.sizeOf(d+2, lv.right, l, false)
		if !b.ok {
			return 0, 0
		}
		b.consume(l)
		if slr+1 < 2*(sll+1) { // single right rotation
			nr, nsr := b.mk(k, val, lv.right, r, slr, sr)
			return b.mk(lv.key, lv.val, lv.left, nr, sll, nsr)
		}
		lrv, ok := b.viewOf(d+2, lv.right, l, false)
		if !ok {
			b.ok = false
			return 0, 0
		}
		slrl := b.sizeOf(d+3, lrv.left, lv.right, true)
		slrr := b.sizeOf(d+3, lrv.right, lv.right, false)
		if !b.ok {
			return 0, 0
		}
		b.consume(lv.right)
		nl, nsl := b.mk(lv.key, lv.val, lv.left, lrv.left, sll, slrl)
		nr, nsr := b.mk(k, val, lrv.right, r, slrr, sr)
		return b.mk(lrv.key, lrv.val, nl, nr, nsl, nsr)
	}
	return b.mk(k, val, l, r, sl, sr)
}

// insertRec returns the rebuilt subtree. existed=true means key was
// already present and nothing was built.
func (b *builder) insertRec(d int, n, parent uint64, fromLeft bool, key, val uint64) (ref, size uint64, existed bool) {
	if !b.ok {
		return 0, 0, false
	}
	if n == 0 {
		ref, size = b.mk(key, val, 0, 0, 0, 0)
		return ref, size, false
	}
	v, ok := b.prot.enter(d, n, parent, fromLeft)
	if !ok {
		b.ok = false
		return 0, 0, false
	}
	if v.key == key {
		return n, v.size, true
	}
	if key < v.key {
		nl, sl, ex := b.insertRec(d+1, v.left, n, true, key, val)
		if !b.ok || ex {
			return n, v.size, ex
		}
		sr := b.sizeOf(d+1, v.right, n, false)
		if !b.ok {
			return 0, 0, false
		}
		b.consume(n)
		ref, size = b.balance(d, v.key, v.val, nl, sl, v.right, sr, n)
		return ref, size, false
	}
	nr, sr, ex := b.insertRec(d+1, v.right, n, false, key, val)
	if !b.ok || ex {
		return n, v.size, ex
	}
	sl := b.sizeOf(d+1, v.left, n, true)
	if !b.ok {
		return 0, 0, false
	}
	b.consume(n)
	ref, size = b.balance(d, v.key, v.val, v.left, sl, nr, sr, n)
	return ref, size, false
}

// deleteRec returns the rebuilt subtree with key removed; found=false
// means key was absent and nothing was built.
func (b *builder) deleteRec(d int, n, parent uint64, fromLeft bool, key uint64) (ref, size uint64, found bool) {
	if !b.ok || n == 0 {
		return 0, 0, false
	}
	v, ok := b.prot.enter(d, n, parent, fromLeft)
	if !ok {
		b.ok = false
		return 0, 0, false
	}
	switch {
	case key == v.key:
		b.consume(n)
		switch {
		case v.left == 0 && v.right == 0:
			return 0, 0, true
		case v.left == 0:
			return v.right, b.sizeOf(d+1, v.right, n, false), true
		case v.right == 0:
			return v.left, b.sizeOf(d+1, v.left, n, true), true
		default:
			mk, mv, nr, snr := b.popMin(d+1, v.right, n, false)
			if !b.ok {
				return 0, 0, false
			}
			sl := b.sizeOf(d+1, v.left, n, true)
			if !b.ok {
				return 0, 0, false
			}
			ref, size = b.balance(d, mk, mv, v.left, sl, nr, snr, n)
			return ref, size, true
		}
	case key < v.key:
		nl, sl, f := b.deleteRec(d+1, v.left, n, true, key)
		if !b.ok || !f {
			return n, v.size, f
		}
		sr := b.sizeOf(d+1, v.right, n, false)
		if !b.ok {
			return 0, 0, false
		}
		b.consume(n)
		ref, size = b.balance(d, v.key, v.val, nl, sl, v.right, sr, n)
		return ref, size, true
	default:
		nr, sr, f := b.deleteRec(d+1, v.right, n, false, key)
		if !b.ok || !f {
			return n, v.size, f
		}
		sl := b.sizeOf(d+1, v.left, n, true)
		if !b.ok {
			return 0, 0, false
		}
		b.consume(n)
		ref, size = b.balance(d, v.key, v.val, v.left, sl, nr, sr, n)
		return ref, size, true
	}
}

// popMin removes and returns the minimum of subtree n.
func (b *builder) popMin(d int, n, parent uint64, fromLeft bool) (minKey, minVal, ref, size uint64) {
	if !b.ok {
		return 0, 0, 0, 0
	}
	v, ok := b.prot.enter(d, n, parent, fromLeft)
	if !ok {
		b.ok = false
		return 0, 0, 0, 0
	}
	if v.left == 0 {
		b.consume(n)
		return v.key, v.val, v.right, b.sizeOf(d+1, v.right, n, false)
	}
	mk, mv, nl, snl := b.popMin(d+1, v.left, n, true)
	if !b.ok {
		return 0, 0, 0, 0
	}
	sr := b.sizeOf(d+1, v.right, n, false)
	if !b.ok {
		return 0, 0, 0, 0
	}
	b.consume(n)
	ref, size = b.balance(d, v.key, v.val, nl, snl, v.right, sr, n)
	return mk, mv, ref, size
}

// splitGarbage partitions the attempt's bookkeeping after a successful
// publish: nodes this attempt created and then superseded (rotation
// intermediates) can be freed immediately — they were never shared —
// while replaced old nodes must go through reclamation. It returns the
// list of old nodes to retire, freeing the private intermediates as a
// side effect.
func (b *builder) splitGarbage() []uint64 {
	old := b.replaced[:0]
	for _, r := range b.replaced {
		if b.isNew(r) {
			b.pool.Free(r)
		} else {
			old = append(old, r)
		}
	}
	return old
}

// abort frees every node the attempt created (none were published).
func (b *builder) abort() {
	// Rotation intermediates may appear in replaced too; every created
	// node is in newNodes exactly once, so freeing newNodes is complete.
	for _, n := range b.newNodes {
		b.pool.Free(n)
	}
	b.newNodes = b.newNodes[:0]
	b.replaced = b.replaced[:0]
}
