package bonsai

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/smr"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// TreeHPP is the Bonsai tree under HP++. Protections are validated by
// under-approximation — only an *invalidated* source node fails them — so
// unrelated committed writes never force a restart, and the root CAS
// needs no frontier protection at all (§5: "Bonsai does not require
// frontier protection"): the replaced path is simply handed to TryUnlink
// with an empty frontier.
type TreeHPP struct {
	pool Pool
	root atomic.Uint64
}

// NewTreeHPP creates an empty tree over pool.
func NewTreeHPP(pool Pool) *TreeHPP { return &TreeHPP{pool: pool} }

// NewHandleHPP returns a per-worker handle.
func (t *TreeHPP) NewHandleHPP(dom *core.Domain) *HandleHPP {
	h := &HandleHPP{t: t, h: dom.NewThread(maxDepth + 2)}
	h.b = builder{pool: t.pool, prot: h}
	return h
}

// HandleHPP is a per-worker handle; not safe for concurrent use.
type HandleHPP struct {
	t *TreeHPP
	h *core.Thread
	b builder
}

// Thread exposes the underlying HP++ thread.
func (h *HandleHPP) Thread() *core.Thread { return h.h }

// enter implements protector via TryProtect: the source is the parent
// node (whose links are immutable), so the protection loop never spins;
// it fails only if the parent was invalidated. parent==0 protects from
// the mutable root pointer; a concurrent root change there retries with
// the fresh root.
func (h *HandleHPP) enter(depth int, ref, parent uint64, fromLeft bool) (view, bool) {
	if depth >= maxDepth {
		return view{}, false // out of slots: abort the attempt
	}
	slot := depth
	if parent == 0 {
		r := ref
		if !h.h.TryProtect(slot, &r, nil, &h.t.root) || r != ref {
			return view{}, false // root moved: restart the attempt
		}
	} else {
		pn := h.t.pool.Deref(parent)
		link := &pn.right
		if fromLeft {
			link = &pn.left
		}
		r := ref
		if !h.h.TryProtect(slot, &r, &pn.left, link) || r != ref {
			return view{}, false // parent invalidated (or stale view)
		}
	}
	nd := h.t.pool.Deref(ref)
	return view{
		key: nd.key, val: nd.val,
		left:  tagptr.RefOf(nd.left.Load()),
		right: tagptr.RefOf(nd.right.Load()),
		size:  nd.size,
	}, true
}

// Get returns the value stored under key. Unlike HP, a committed write
// only disturbs this traversal if it invalidated a node on our path.
func (h *HandleHPP) Get(key uint64) (uint64, bool) {
	defer h.h.ClearAll()
	a, b := slotGet, slotGet2 // ping-pong slots
retry:
	cur := tagptr.RefOf(h.t.root.Load())
	if !h.h.TryProtect(a, &cur, nil, &h.t.root) {
		goto retry
	}
	for cur != 0 {
		nd := h.t.pool.Deref(cur)
		switch {
		case key == nd.key:
			return nd.val, true
		case key < nd.key:
			next := tagptr.RefOf(nd.left.Load())
			if next == 0 {
				return 0, false
			}
			if !h.h.TryProtect(b, &next, &nd.left, &nd.left) {
				goto retry
			}
			cur = next
		default:
			next := tagptr.RefOf(nd.right.Load())
			if next == 0 {
				return 0, false
			}
			if !h.h.TryProtect(b, &next, &nd.left, &nd.right) {
				goto retry
			}
			cur = next
		}
		a, b = b, a
	}
	return 0, false
}

func (h *HandleHPP) commit(oldW tagptr.Word, newRoot uint64) bool {
	root := &h.t.root
	pool := h.t.pool
	ok := h.h.TryUnlink(nil, func() ([]smr.Retired, bool) {
		if !root.CompareAndSwap(oldW, tagptr.Pack(newRoot, 0)) {
			return nil, false
		}
		var rs []smr.Retired
		for _, r := range h.b.splitGarbage() {
			rs = append(rs, smr.Retired{Ref: r, D: pool})
		}
		return rs, true
	}, pool)
	return ok
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleHPP) Insert(key, val uint64) bool {
	defer h.h.ClearAll()
	for {
		h.b.reset()
		oldW := h.t.root.Load()
		oldRoot := tagptr.RefOf(oldW)
		newRoot, _, existed := h.b.insertRec(0, oldRoot, 0, true, key, val)
		if !h.b.ok {
			h.b.abort()
			continue
		}
		if existed {
			h.b.abort()
			return false
		}
		if h.commit(oldW, newRoot) {
			return true
		}
		h.b.abort()
	}
}

// Delete removes key, reporting whether it was present.
func (h *HandleHPP) Delete(key uint64) bool {
	defer h.h.ClearAll()
	for {
		h.b.reset()
		oldW := h.t.root.Load()
		oldRoot := tagptr.RefOf(oldW)
		newRoot, _, found := h.b.deleteRec(0, oldRoot, 0, true, key)
		if !h.b.ok {
			h.b.abort()
			continue
		}
		if !found {
			h.b.abort()
			return false
		}
		if h.commit(oldW, newRoot) {
			return true
		}
		h.b.abort()
	}
}
