package bonsai

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/smr"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// maxDepth bounds the builder's per-depth protection slots. The (3,2)
// weight balance keeps the tree height under ~2.41·log2(n), so 72 levels
// cover ~2^29 keys; an attempt that somehow descends further aborts and
// retries.
const (
	maxDepth = 72
	slotGet  = maxDepth // traversal slot for Get
	slotGet2 = maxDepth + 1
)

// TreeCS is the Bonsai tree for critical-section schemes (EBR, PEBR, NR).
type TreeCS struct {
	pool Pool
	root atomic.Uint64
}

// NewTreeCS creates an empty tree over pool.
func NewTreeCS(pool Pool) *TreeCS { return &TreeCS{pool: pool} }

// NewHandleCS returns a per-worker handle.
func (t *TreeCS) NewHandleCS(dom smr.GuardDomain) *HandleCS {
	h := &HandleCS{t: t, g: dom.NewGuard(maxDepth + 2)}
	h.b = builder{pool: t.pool, prot: h}
	return h
}

// HandleCS is a per-worker handle; not safe for concurrent use.
type HandleCS struct {
	t *TreeCS
	g smr.Guard
	b builder
}

// Guard exposes the underlying guard.
func (h *HandleCS) Guard() smr.Guard { return h.g }

// enter implements protector: a shield ring Track plus neutralization
// check; ejection aborts the attempt.
func (h *HandleCS) enter(depth int, ref, parent uint64, fromLeft bool) (view, bool) {
	if depth >= maxDepth {
		return view{}, false // out of slots: abort the attempt
	}
	if !h.g.Track(depth, ref) {
		return view{}, false
	}
	nd := h.t.pool.Deref(ref)
	return view{
		key: nd.key, val: nd.val,
		left:  tagptr.RefOf(nd.left.Load()),
		right: tagptr.RefOf(nd.right.Load()),
		size:  nd.size,
	}, true
}

// Get returns the value stored under key by walking the current snapshot.
func (h *HandleCS) Get(key uint64) (uint64, bool) {
retry:
	h.g.Pin()
	cur := tagptr.RefOf(h.t.root.Load())
	for cur != 0 {
		if !h.g.Track(slotGet, cur) {
			h.g.Unpin()
			goto retry
		}
		nd := h.t.pool.Deref(cur)
		switch {
		case key == nd.key:
			v := nd.val
			h.g.Unpin()
			return v, true
		case key < nd.key:
			cur = tagptr.RefOf(nd.left.Load())
		default:
			cur = tagptr.RefOf(nd.right.Load())
		}
	}
	h.g.Unpin()
	return 0, false
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleCS) Insert(key, val uint64) bool {
	for {
		h.g.Pin()
		h.b.reset()
		oldRoot := tagptr.RefOf(h.t.root.Load())
		newRoot, _, existed := h.b.insertRec(0, oldRoot, 0, true, key, val)
		if !h.b.ok {
			h.b.abort()
			h.g.Unpin() // re-pinned at the top of the loop
			continue
		}
		if existed {
			h.b.abort()
			h.g.Unpin()
			return false
		}
		if h.t.root.CompareAndSwap(tagptr.Pack(oldRoot, 0), tagptr.Pack(newRoot, 0)) {
			for _, r := range h.b.splitGarbage() {
				h.g.Retire(r, h.t.pool)
			}
			h.g.Unpin()
			return true
		}
		h.b.abort()
		h.g.Unpin()
	}
}

// Delete removes key, reporting whether it was present.
func (h *HandleCS) Delete(key uint64) bool {
	for {
		h.g.Pin()
		h.b.reset()
		oldRoot := tagptr.RefOf(h.t.root.Load())
		newRoot, _, found := h.b.deleteRec(0, oldRoot, 0, true, key)
		if !h.b.ok {
			h.b.abort()
			h.g.Unpin() // re-pinned at the top of the loop
			continue
		}
		if !found {
			h.b.abort()
			h.g.Unpin()
			return false
		}
		if h.t.root.CompareAndSwap(tagptr.Pack(oldRoot, 0), tagptr.Pack(newRoot, 0)) {
			for _, r := range h.b.splitGarbage() {
				h.g.Retire(r, h.t.pool)
			}
			h.g.Unpin()
			return true
		}
		h.b.abort()
		h.g.Unpin()
	}
}
