package bonsai

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/hp"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// TreeHP is the Bonsai tree under original hazard pointers. Every
// protection — readers' and writers' alike — is validated by re-reading
// the root pointer: if ANY write committed since the operation began, the
// snapshot may have lost nodes and the operation restarts. This is the
// paper's explanation for Bonsai's poor throughput with HP (§5).
type TreeHP struct {
	pool Pool
	root atomic.Uint64
}

// NewTreeHP creates an empty tree over pool.
func NewTreeHP(pool Pool) *TreeHP { return &TreeHP{pool: pool} }

// NewHandleHP returns a per-worker handle.
func (t *TreeHP) NewHandleHP(dom *hp.Domain) *HandleHP {
	h := &HandleHP{t: t, h: dom.NewThread(maxDepth + 2)}
	h.b = builder{pool: t.pool, prot: h}
	return h
}

// HandleHP is a per-worker handle; not safe for concurrent use.
type HandleHP struct {
	t     *TreeHP
	h     *hp.Thread
	b     builder
	rootW tagptr.Word // the attempt's snapshot root word
}

// Thread exposes the underlying HP thread.
func (h *HandleHP) Thread() *hp.Thread { return h.h }

// enter implements protector: protect, then validate that the root has
// not moved — the over-approximation "root unchanged ⟹ every node of
// this snapshot is still unretired".
func (h *HandleHP) enter(depth int, ref, parent uint64, fromLeft bool) (view, bool) {
	if depth >= maxDepth {
		return view{}, false // out of slots: abort the attempt
	}
	h.h.Protect(depth, ref)
	// fence(SC) — implicit.
	if h.t.root.Load() != h.rootW {
		return view{}, false
	}
	nd := h.t.pool.Deref(ref)
	return view{
		key: nd.key, val: nd.val,
		left:  tagptr.RefOf(nd.left.Load()),
		right: tagptr.RefOf(nd.right.Load()),
		size:  nd.size,
	}, true
}

// Get returns the value stored under key; it restarts whenever a write
// commits mid-traversal.
func (h *HandleHP) Get(key uint64) (uint64, bool) {
	defer h.h.ClearAll()
retry:
	rootW := h.t.root.Load()
	cur := tagptr.RefOf(rootW)
	for cur != 0 {
		h.h.Protect(slotGet, cur)
		if h.t.root.Load() != rootW {
			goto retry
		}
		nd := h.t.pool.Deref(cur)
		switch {
		case key == nd.key:
			return nd.val, true
		case key < nd.key:
			cur = tagptr.RefOf(nd.left.Load())
		default:
			cur = tagptr.RefOf(nd.right.Load())
		}
	}
	return 0, false
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleHP) Insert(key, val uint64) bool {
	defer h.h.ClearAll()
	for {
		h.b.reset()
		h.rootW = h.t.root.Load()
		oldRoot := tagptr.RefOf(h.rootW)
		newRoot, _, existed := h.b.insertRec(0, oldRoot, 0, true, key, val)
		if !h.b.ok {
			h.b.abort()
			continue
		}
		if existed {
			h.b.abort()
			return false
		}
		if h.t.root.CompareAndSwap(h.rootW, tagptr.Pack(newRoot, 0)) {
			for _, r := range h.b.splitGarbage() {
				h.h.Retire(r, h.t.pool)
			}
			return true
		}
		h.b.abort()
	}
}

// Delete removes key, reporting whether it was present.
func (h *HandleHP) Delete(key uint64) bool {
	defer h.h.ClearAll()
	for {
		h.b.reset()
		h.rootW = h.t.root.Load()
		oldRoot := tagptr.RefOf(h.rootW)
		newRoot, _, found := h.b.deleteRec(0, oldRoot, 0, true, key)
		if !h.b.ok {
			h.b.abort()
			continue
		}
		if !found {
			h.b.abort()
			return false
		}
		if h.t.root.CompareAndSwap(h.rootW, tagptr.Pack(newRoot, 0)) {
			for _, r := range h.b.splitGarbage() {
				h.h.Retire(r, h.t.pool)
			}
			return true
		}
		h.b.abort()
	}
}
