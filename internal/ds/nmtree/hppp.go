package nmtree

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/smr"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// Hazard slot indices for the HP++ variant.
const (
	hppAncestor = iota
	hppSuccessor
	hppParent
	hppLeaf
	hppCur
	hppVictim
	hppSlots
)

// TreeHPP is the NM tree under HP++ (Table 2: the original HP cannot
// support this tree at all). The cleanup splice is a TryUnlink whose
// frontier is the promoted sibling subtree's root; every detached chain
// node is invalidated before any is freed.
type TreeHPP struct {
	pool Pool
	root uint64
}

// NewTreeHPP creates a tree (with sentinels) over pool.
func NewTreeHPP(pool Pool) *TreeHPP {
	return &TreeHPP{pool: pool, root: newTree(pool)}
}

// NewHandleHPP returns a per-worker handle.
func (t *TreeHPP) NewHandleHPP(dom *core.Domain) *HandleHPP {
	return &HandleHPP{t: t, h: dom.NewThread(hppSlots)}
}

// HandleHPP is a per-worker handle; not safe for concurrent use.
type HandleHPP struct {
	t *TreeHPP
	h *core.Thread
}

// Thread exposes the underlying HP++ thread.
func (h *HandleHPP) Thread() *core.Thread { return h.h }

// protectChild protects edge's current target in slot i (srcInv is the
// source node's invalid word, nil for the root) and returns a stable edge
// word whose reference is the protected one. ok=false → restart.
func (h *HandleHPP) protectChild(i int, srcInv, edge *atomic.Uint64) (tagptr.Word, bool) {
	for {
		w := edge.Load()
		ref := tagptr.RefOf(w)
		if !h.h.TryProtect(i, &ref, srcInv, edge) {
			return 0, false
		}
		w2 := edge.Load()
		if tagptr.RefOf(w2) == ref {
			return w2, true
		}
	}
}

// seek walks to the leaf for key with the four-slot protected window.
// ok=false means a protection failed (invalidated source): restart.
func (h *HandleHPP) seek(key uint64) (seekRecord, bool) {
	t := h.t
	rn := t.pool.Deref(t.root)
	h.h.Protect(hppAncestor, t.root)
	sW, ok := h.protectChild(hppSuccessor, nil, &rn.left)
	if !ok {
		return seekRecord{}, false
	}
	s := tagptr.RefOf(sW)
	h.h.Protect(hppParent, s)
	sn := t.pool.Deref(s)
	leafW, ok := h.protectChild(hppLeaf, &sn.left, &sn.left)
	if !ok {
		return seekRecord{}, false
	}
	rec := seekRecord{ancestor: t.root, successor: s, parent: s, leaf: tagptr.RefOf(leafW)}
	prevTagged := leafW&tagBit != 0
	for {
		cur := t.pool.Deref(rec.leaf)
		edge := childEdge(cur, key)
		curW, ok := h.protectChild(hppCur, &cur.left, edge)
		if !ok {
			return seekRecord{}, false
		}
		if tagptr.RefOf(curW) == 0 {
			return rec, true
		}
		if !prevTagged {
			h.h.Protect(hppAncestor, rec.parent) // covered by hppParent
			h.h.Protect(hppSuccessor, rec.leaf)  // covered by hppLeaf
			rec.ancestor, rec.successor = rec.parent, rec.leaf
		}
		rec.parent = rec.leaf
		h.h.Protect(hppParent, rec.parent) // covered by hppLeaf
		rec.leaf = tagptr.RefOf(curW)
		h.h.Swap(hppLeaf, hppCur)
		prevTagged = curW&tagBit != 0
	}
}

// Get returns the value stored under key. Traversal is optimistic: it
// walks through flagged and tagged edges and fails only on invalidation.
func (h *HandleHPP) Get(key uint64) (uint64, bool) {
	t := h.t
	defer h.h.ClearAll()
retry:
	cur := t.root
	nd := t.pool.Deref(cur)
	var srcInv *atomic.Uint64 // root is never invalidated
	a, b := hppCur, hppParent // ping-pong slots
	for {
		edge := childEdge(nd, key)
		w, ok := h.protectChild(a, srcInv, edge)
		if !ok {
			goto retry
		}
		nxt := tagptr.RefOf(w)
		if nxt == 0 {
			if nd.key == key {
				return nd.val, true
			}
			return 0, false
		}
		cur = nxt
		nd = t.pool.Deref(cur)
		srcInv = &nd.left
		a, b = b, a
	}
}

// cleanup performs the physical deletion as one TryUnlink: the frontier
// is the sibling subtree's root, and the detached chain (successor's
// subtree minus the sibling) is the unlinked batch.
func (h *HandleHPP) cleanup(key uint64, rec seekRecord) bool {
	t := h.t
	an := t.pool.Deref(rec.ancestor)
	successorAddr := childEdge(an, key)
	pn := t.pool.Deref(rec.parent)

	childAddr := childEdge(pn, key)
	var siblingAddr *atomic.Uint64
	if childAddr == &pn.left {
		siblingAddr = &pn.right
	} else {
		siblingAddr = &pn.left
	}
	if childAddr.Load()&flagBit == 0 {
		siblingAddr = childAddr
	}
	for {
		w := siblingAddr.Load()
		if w&tagBit != 0 {
			break
		}
		if siblingAddr.CompareAndSwap(w, w|tagBit) {
			break
		}
	}
	sw := siblingAddr.Load()
	sib := tagptr.RefOf(sw)
	flag := sw & flagBit
	successor := rec.successor
	pool := t.pool
	return h.h.TryUnlink([]uint64{sib}, func() ([]smr.Retired, bool) {
		if !successorAddr.CompareAndSwap(tagptr.Pack(successor, 0), tagptr.Pack(sib, flag)) {
			return nil, false
		}
		return retireExcept(pool, successor, sib, pool, nil), true
	}, pool)
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleHPP) Insert(key, val uint64) bool {
	defer h.h.ClearAll()
	t := h.t
	var newInternal, newLeaf uint64
	for {
		rec, ok := h.seek(key)
		if !ok {
			continue
		}
		leafNode := t.pool.Deref(rec.leaf)
		if leafNode.key == key {
			if newInternal != 0 {
				t.pool.Free(newInternal)
				t.pool.Free(newLeaf)
			}
			return false
		}
		if newInternal == 0 {
			newLeaf, _ = t.pool.Alloc()
			nl := t.pool.Deref(newLeaf)
			nl.key, nl.val = key, val
			nl.left.Store(0)
			nl.right.Store(0)
			newInternal, _ = t.pool.Alloc()
		}
		ni := t.pool.Deref(newInternal)
		if key < leafNode.key {
			ni.key = leafNode.key
			ni.left.Store(tagptr.Pack(newLeaf, 0))
			ni.right.Store(tagptr.Pack(rec.leaf, 0))
		} else {
			ni.key = key
			ni.left.Store(tagptr.Pack(rec.leaf, 0))
			ni.right.Store(tagptr.Pack(newLeaf, 0))
		}
		pn := t.pool.Deref(rec.parent)
		edge := childEdge(pn, key)
		if edge.CompareAndSwap(tagptr.Pack(rec.leaf, 0), tagptr.Pack(newInternal, 0)) {
			return true
		}
		w := edge.Load()
		if tagptr.RefOf(w) == rec.leaf && w&(flagBit|tagBit) != 0 {
			h.cleanup(key, rec)
		}
	}
}

// Delete removes key, reporting whether it was present.
func (h *HandleHPP) Delete(key uint64) bool {
	defer h.h.ClearAll()
	t := h.t
	injected := false
	var victim uint64
	for {
		rec, ok := h.seek(key)
		if !ok {
			continue
		}
		if !injected {
			leafNode := t.pool.Deref(rec.leaf)
			if leafNode.key != key {
				return false
			}
			pn := t.pool.Deref(rec.parent)
			edge := childEdge(pn, key)
			if edge.CompareAndSwap(tagptr.Pack(rec.leaf, 0), tagptr.Pack(rec.leaf, flagBit)) {
				injected = true
				victim = rec.leaf
				// Keep the victim protected until the operation returns:
				// the cleanup-mode identity test below relies on its slot
				// preventing reuse of the reference.
				h.h.Protect(hppVictim, victim)
				if h.cleanup(key, rec) {
					return true
				}
			} else {
				w := edge.Load()
				if tagptr.RefOf(w) == rec.leaf && w&(flagBit|tagBit) != 0 {
					h.cleanup(key, rec)
				}
			}
			continue
		}
		if rec.leaf != victim {
			return true
		}
		if h.cleanup(key, rec) {
			return true
		}
	}
}
