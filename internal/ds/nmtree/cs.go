package nmtree

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/smr"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// Shield slots for the smr.Guard protocol.
const (
	slotAncestor = iota
	slotSuccessor
	slotParent
	slotLeaf
	slotCur
	slotVictim // the injected leaf, held across the whole delete
	csSlots
)

// TreeCS is the NM tree for critical-section schemes (EBR, PEBR, NR).
type TreeCS struct {
	pool Pool
	root uint64
}

// NewTreeCS creates a tree (with sentinels) over pool.
func NewTreeCS(pool Pool) *TreeCS {
	return &TreeCS{pool: pool, root: newTree(pool)}
}

// NewHandleCS returns a per-worker handle.
func (t *TreeCS) NewHandleCS(dom smr.GuardDomain) *HandleCS {
	return &HandleCS{t: t, g: dom.NewGuard(csSlots)}
}

// HandleCS is a per-worker handle; not safe for concurrent use.
type HandleCS struct {
	t *TreeCS
	g smr.Guard
}

// Guard exposes the underlying guard.
func (h *HandleCS) Guard() smr.Guard { return h.g }

func (h *HandleCS) restart() {
	h.g.Unpin()
	h.g.Pin()
}

// seek walks to the leaf that a search for key ends at, maintaining the
// (ancestor, successor) window over the deepest untagged edge.
func (h *HandleCS) seek(key uint64) seekRecord {
	t := h.t
retry:
	rn := t.pool.Deref(t.root)
	sW := rn.left.Load()
	s := tagptr.RefOf(sW)
	if !h.g.Track(slotSuccessor, s) {
		h.restart()
		goto retry
	}
	sn := t.pool.Deref(s)
	leafW := sn.left.Load()
	rec := seekRecord{ancestor: t.root, successor: s, parent: s, leaf: tagptr.RefOf(leafW)}
	h.g.Track(slotAncestor, t.root)
	h.g.Track(slotParent, s)
	if !h.g.Track(slotLeaf, rec.leaf) {
		h.restart()
		goto retry
	}
	prevTagged := leafW&tagBit != 0
	cur := t.pool.Deref(rec.leaf)
	curW := childEdge(cur, key).Load()
	for tagptr.RefOf(curW) != 0 {
		if !prevTagged {
			rec.ancestor = rec.parent
			rec.successor = rec.leaf
			h.g.Track(slotAncestor, rec.ancestor)
			h.g.Track(slotSuccessor, rec.successor)
		}
		rec.parent = rec.leaf
		h.g.Track(slotParent, rec.parent)
		rec.leaf = tagptr.RefOf(curW)
		if !h.g.Track(slotLeaf, rec.leaf) {
			h.restart()
			goto retry
		}
		prevTagged = curW&tagBit != 0
		cur = t.pool.Deref(rec.leaf)
		curW = childEdge(cur, key).Load()
	}
	return rec
}

// Get returns the value stored under key (wait-free traversal).
func (h *HandleCS) Get(key uint64) (uint64, bool) {
	h.g.Pin()
	defer h.g.Unpin()
	t := h.t
retry:
	cur := t.root
	for {
		nd := t.pool.Deref(cur)
		w := childEdge(nd, key).Load()
		nxt := tagptr.RefOf(w)
		if nxt == 0 {
			if nd.key == key {
				return nd.val, true
			}
			return 0, false
		}
		if !h.g.Track(slotCur, nxt) {
			h.restart()
			goto retry
		}
		cur = nxt
	}
}

// cleanup performs the NM physical deletion for the flagged leaf in rec:
// tag the sibling edge, then splice the sibling subtree onto the deepest
// untagged ancestor edge. Reports whether this call's CAS did the splice.
func (h *HandleCS) cleanup(key uint64, rec seekRecord) bool {
	t := h.t
	an := t.pool.Deref(rec.ancestor)
	successorAddr := childEdge(an, key)
	pn := t.pool.Deref(rec.parent)

	childAddr := childEdge(pn, key)
	var siblingAddr *atomic.Uint64
	if childAddr == &pn.left {
		siblingAddr = &pn.right
	} else {
		siblingAddr = &pn.left
	}
	if childAddr.Load()&flagBit == 0 {
		// The in-progress deletion is on the other side: we are helping
		// remove the sibling, so the surviving subtree is the one a
		// search for key follows.
		siblingAddr = childAddr
	}
	// Freeze the surviving edge.
	for {
		w := siblingAddr.Load()
		if w&tagBit != 0 {
			break
		}
		if siblingAddr.CompareAndSwap(w, w|tagBit) {
			break
		}
	}
	sw := siblingAddr.Load()
	sib := tagptr.RefOf(sw)
	flag := sw & flagBit
	if !successorAddr.CompareAndSwap(tagptr.Pack(rec.successor, 0), tagptr.Pack(sib, flag)) {
		return false
	}
	// The successor subtree minus the promoted sibling is now detached
	// and frozen: retire all of it.
	for _, r := range retireExcept(t.pool, rec.successor, sib, t.pool, nil) {
		h.g.Retire(r.Ref, r.D)
	}
	return true
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleCS) Insert(key, val uint64) bool {
	h.g.Pin()
	defer h.g.Unpin()
	t := h.t
	var newInternal, newLeaf uint64
	for {
		rec := h.seek(key)
		leafNode := t.pool.Deref(rec.leaf)
		if leafNode.key == key {
			if newInternal != 0 {
				t.pool.Free(newInternal)
				t.pool.Free(newLeaf)
			}
			return false
		}
		if newInternal == 0 {
			newLeaf, _ = t.pool.Alloc()
			nl := t.pool.Deref(newLeaf)
			nl.key, nl.val = key, val
			nl.left.Store(0)
			nl.right.Store(0)
			newInternal, _ = t.pool.Alloc()
		}
		ni := t.pool.Deref(newInternal)
		// The internal routes between the new leaf and the existing one.
		if key < leafNode.key {
			ni.key = leafNode.key
			ni.left.Store(tagptr.Pack(newLeaf, 0))
			ni.right.Store(tagptr.Pack(rec.leaf, 0))
		} else {
			ni.key = key
			ni.left.Store(tagptr.Pack(rec.leaf, 0))
			ni.right.Store(tagptr.Pack(newLeaf, 0))
		}
		pn := t.pool.Deref(rec.parent)
		edge := childEdge(pn, key)
		if edge.CompareAndSwap(tagptr.Pack(rec.leaf, 0), tagptr.Pack(newInternal, 0)) {
			return true
		}
		// Help if the failure came from an in-progress deletion of leaf.
		w := edge.Load()
		if tagptr.RefOf(w) == rec.leaf && w&(flagBit|tagBit) != 0 {
			h.cleanup(key, rec)
		}
	}
}

// Delete removes key, reporting whether it was present.
func (h *HandleCS) Delete(key uint64) bool {
	h.g.Pin()
	defer h.g.Unpin()
	t := h.t
	injected := false
	var victim uint64
	for {
		rec := h.seek(key)
		if !injected {
			leafNode := t.pool.Deref(rec.leaf)
			if leafNode.key != key {
				return false
			}
			pn := t.pool.Deref(rec.parent)
			edge := childEdge(pn, key)
			if edge.CompareAndSwap(tagptr.Pack(rec.leaf, 0), tagptr.Pack(rec.leaf, flagBit)) {
				injected = true
				victim = rec.leaf
				// Shield the victim for the rest of the operation so the
				// cleanup-mode identity test cannot be fooled by reuse.
				h.g.Track(slotVictim, victim)
				if h.cleanup(key, rec) {
					return true
				}
			} else {
				w := edge.Load()
				if tagptr.RefOf(w) == rec.leaf && w&(flagBit|tagBit) != 0 {
					h.cleanup(key, rec)
				}
			}
			continue
		}
		// Cleanup mode: keep helping until our flagged leaf is gone.
		if rec.leaf != victim {
			return true
		}
		if h.cleanup(key, rec) {
			return true
		}
	}
}
