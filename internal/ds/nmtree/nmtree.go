// Package nmtree implements the Natarajan-Mittal lock-free external binary
// search tree (PPoPP 2014) — "NMTree" in the HP++ paper's evaluation.
//
// All keys live in leaves; internal nodes route. Deletion is edge-based:
// the deleter *flags* the edge to the victim leaf (injection), then a
// *cleanup* tags the sibling edge and splices the sibling subtree up to
// the deepest untagged ancestor edge with a single CAS — which may remove
// a whole chain of internal nodes whose removals were in progress. Seek
// traverses flagged and tagged edges optimistically, which makes the tree
// fundamentally incompatible with original hazard pointers (Table 2:
// HP ✗); HP++'s TryUnlink fits exactly: the frontier is the promoted
// sibling subtree's root.
//
// Variants:
//
//	TreeCS  — critical-section schemes (EBR, PEBR, NR)
//	TreeHPP — HP++
package nmtree

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/smr"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// Sentinel keys: every user key must be smaller than Inf0.
const (
	Inf0 = ^uint64(0) - 2
	Inf1 = ^uint64(0) - 1
	Inf2 = ^uint64(0)
)

// Edge tag bits (on child words): tagptr.Mark is the NM "flag" (edge to a
// leaf under deletion), tagptr.Flag is the NM "tag" (edge frozen for
// promotion). tagptr.Invalid is HP++ invalidation, carried on the left
// word of a node by convention.
const (
	flagBit = tagptr.Mark
	tagBit  = tagptr.Flag
)

// Node is a tree node; leaves have both children nil.
type Node struct {
	left  atomic.Uint64
	right atomic.Uint64
	key   uint64
	val   uint64
}

// Pool allocates tree nodes and implements core.Invalidator.
type Pool struct {
	*arena.Pool[Node]
}

// NewPool creates a node pool.
func NewPool(mode arena.Mode) Pool {
	return Pool{arena.NewPool[Node]("nmtree", mode)}
}

// Invalidate sets the Invalid bit on the node's left word (plain store;
// unlinked nodes' edges are frozen by flags/tags).
func (p Pool) Invalidate(ref uint64) {
	n := p.Deref(ref)
	n.left.Store(n.left.Load() | tagptr.Invalid)
}

// isLeaf reports whether nd is a leaf (no left child).
func isLeaf(nd *Node) bool { return tagptr.RefOf(nd.left.Load()) == 0 }

// childEdge returns the edge of nd that a search for key follows.
func childEdge(nd *Node, key uint64) *atomic.Uint64 {
	if key < nd.key {
		return &nd.left
	}
	return &nd.right
}

// seekRecord is the four-pointer window of the NM seek: the deepest
// untagged edge (ancestor→successor) plus the last two path nodes.
type seekRecord struct {
	ancestor  uint64
	successor uint64
	parent    uint64
	leaf      uint64
}

// newTree allocates the sentinel skeleton:
//
//	        R(Inf2)
//	       /       \
//	    S(Inf1)   leaf(Inf2)
//	   /       \
//	leaf(Inf0) leaf(Inf1)
//
// R and S can never be removed, which keeps seek's entry assumptions
// valid forever.
func newTree(pool Pool) (r uint64) {
	l0, _ := pool.Alloc()
	n0 := pool.Deref(l0)
	n0.key, n0.val = Inf0, 0
	n0.left.Store(0)
	n0.right.Store(0)

	l1, _ := pool.Alloc()
	n1 := pool.Deref(l1)
	n1.key, n1.val = Inf1, 0
	n1.left.Store(0)
	n1.right.Store(0)

	l2, _ := pool.Alloc()
	n2 := pool.Deref(l2)
	n2.key, n2.val = Inf2, 0
	n2.left.Store(0)
	n2.right.Store(0)

	s, _ := pool.Alloc()
	sn := pool.Deref(s)
	sn.key = Inf1
	sn.left.Store(tagptr.Pack(l0, 0))
	sn.right.Store(tagptr.Pack(l1, 0))

	r, _ = pool.Alloc()
	rn := pool.Deref(r)
	rn.key = Inf2
	rn.left.Store(tagptr.Pack(s, 0))
	rn.right.Store(tagptr.Pack(l2, 0))
	return r
}

// retireExcept appends every node reachable from ref — excluding the keep
// subtree — to out. Called only on chains frozen by a successful cleanup
// CAS, whose edges can no longer change.
func retireExcept(pool Pool, ref, keep uint64, d smr.Deallocator, out []smr.Retired) []smr.Retired {
	if ref == 0 || ref == keep {
		return out
	}
	nd := pool.Deref(ref)
	out = retireExcept(pool, tagptr.RefOf(nd.left.Load()), keep, d, out)
	out = retireExcept(pool, tagptr.RefOf(nd.right.Load()), keep, d, out)
	return append(out, smr.Retired{Ref: ref, D: d})
}
