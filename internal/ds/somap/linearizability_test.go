package somap_test

import (
	"sync"
	"testing"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/bench"
	"github.com/gosmr/gosmr/internal/linchk"
)

// setStorm shrinks the bench somap target to a 2-bucket directory with
// load factor 1 for the duration of one test, so every run's history
// spans dozens of directory doublings.
func setStorm(t *testing.T) {
	t.Helper()
	ib, ml := bench.SomapInitialBuckets, bench.SomapMaxLoad
	bench.SomapInitialBuckets, bench.SomapMaxLoad = 2, 1
	t.Cleanup(func() { bench.SomapInitialBuckets, bench.SomapMaxLoad = ib, ml })
}

// TestLinearizableDuringResize checks map-spec linearizability of
// histories that overlap directory growth: contended workers hammer a
// tiny shared key range while a filler worker inserts a stream of unique
// keys, forcing a doubling cascade (2 → 4 → 8 → …) concurrent with every
// contended window. All ops — including the filler's — are recorded;
// CheckKV partitions the history per key, so the filler keys are
// one-op partitions and the shared keys get the full search.
func TestLinearizableDuringResize(t *testing.T) {
	const workers = 3
	const sharedKeys = 5
	ops := 1200
	if testing.Short() {
		ops = 300
	}
	setStorm(t)
	for _, scheme := range bench.Schemes {
		scheme := scheme
		if !bench.Applicable("somap", scheme) {
			continue
		}
		t.Run(scheme, func(t *testing.T) {
			target, err := bench.NewTarget("somap", scheme, arena.ModeDetect)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range target.Pools {
				p.SetCount()
			}
			var clock linchk.Clock
			recs := make([]*linchk.Recorder, workers+1)
			handles := make([]*bench.Recorded, workers+1)
			for w := range handles {
				recs[w] = linchk.NewRecorder(&clock, w)
				handles[w] = bench.NewRecorded(target.NewHandle(), recs[w])
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := handles[w]
					r := rng{s: uint64(w)*0x9E3779B9 + 7}
					for i := 0; i < ops; i++ {
						k := r.next() % sharedKeys
						switch r.next() % 10 {
						case 0, 1, 2, 3:
							h.Get(k)
						case 4, 5, 6:
							h.Insert(k, r.next())
						default:
							h.Delete(k)
						}
					}
				}(w)
			}
			// Filler: unique keys well above the shared range, net
			// inserts only, so the directory doubles throughout the run.
			wg.Add(1)
			go func() {
				defer wg.Done()
				h := handles[workers]
				for i := 0; i < ops; i++ {
					h.Insert(uint64(1)<<32|uint64(i), uint64(i))
				}
			}()
			wg.Wait()
			target.Finish()
			for _, p := range target.Pools {
				if st := p.Stats(); st.UAF != 0 || st.DoubleFree != 0 {
					t.Fatalf("memory-unsafe: uaf=%d doublefree=%d", st.UAF, st.DoubleFree)
				}
			}
			h := linchk.Merge(recs...)
			v := linchk.CheckKV(linchk.MapSpec{}, h, linchk.Opts{})
			switch v.Outcome {
			case linchk.OutcomeNonLinearizable:
				t.Fatalf("history not linearizable:\n%s", v.Report())
			case linchk.OutcomeExhausted:
				t.Fatalf("checker budget exhausted (%d ops, %d states):\n%s", len(h.Ops), v.Explored, v.Report())
			}
		})
	}
}

// rng is a splitmix64 generator (test-local copy; the package one is not
// exported to the _test package).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
