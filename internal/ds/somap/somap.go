// Package somap implements the split-ordered-list resizable lock-free
// hash map of Shalev & Shamir ("Split-Ordered Lists: Lock-Free Extensible
// Hash Tables", JACM 2006), layered on the repository's Harris-list
// substrates: the HHS list (internal/ds/hhslist) for the CS schemes and
// HP++, and the Harris-Michael list (internal/ds/hmlist) for original HP.
//
// All items live in ONE sorted linked list; the hash table is just an
// array of shortcuts into it. Each bucket b owns a permanent sentinel
// ("dummy") node; resizing never moves an item — doubling the bucket
// count only means new dummies get lazily spliced between existing nodes.
// That works because nodes are sorted by *split-order* keys, the
// bit-reversal of their hash:
//
//   - a regular item with hash h sorts at reverse(h) | 1 (odd),
//   - bucket b's dummy sorts at reverse(b)          (even).
//
// With a power-of-two size s, bucket b = h & (s-1) is the low bits of h
// — the HIGH bits of reverse(h) — so every item of bucket b sits in one
// contiguous run beginning at b's dummy, and when s doubles, bucket
// b+s's new dummy splits that run exactly in half (the recursive split).
// The trailing 1-bit keeps every item strictly after the dummy of any
// bucket that can own it.
//
// Because reverse(mix(k))|1 collapses hashes differing only in their top
// bit, the underlying lists order nodes by the (key, aux) pair: somap
// stores the split-order key in key and the full user key in aux
// (dummies use aux 0, and can never collide with items — parities
// differ), so map semantics stay exact under any collision.
//
// The bucket directory is a fixed array of CAS-published segments of
// dummy refs, so growing never copies or reallocates the table: the
// size field doubles with one CAS when count/size exceeds the load
// factor, and buckets initialize lazily on first touch — walking parent
// buckets (recursively) until an initialized ancestor is found, then
// get-or-inserting the dummy through the list itself.
//
// Safety under reclamation is inherited from the lists plus one
// structural invariant: dummy nodes are never marked, unlinked,
// invalidated, or freed. Directory entries therefore never dangle, a
// dummy's next field is as stable a traversal entry as the list head
// (HP++'s first TryProtect keeps srcInvalid=nil; HP validates against
// the dummy's link; CS anchors may be dummies), and a reader parked
// across a directory doubling simply continues in the one list every
// bucket shortcut points into.
package somap

import "math/bits"

const (
	segBits = 9
	segSize = 1 << segBits

	maxSegs = 1 << 13

	// MaxBuckets caps directory growth (4M buckets).
	MaxBuckets = segSize * maxSegs
)

// Config parameterizes a map.
type Config struct {
	// InitialBuckets is the starting directory size, rounded up to a
	// power of two (default 8, max MaxBuckets). The stress harness's
	// resize-storm knob sets it tiny so doublings happen constantly.
	InitialBuckets int
	// MaxLoad is the average number of items per bucket that triggers a
	// doubling (default 4; 1 for resize storms).
	MaxLoad int
}

func (c Config) withDefaults() Config {
	if c.InitialBuckets <= 0 {
		c.InitialBuckets = 8
	}
	if c.InitialBuckets > MaxBuckets {
		c.InitialBuckets = MaxBuckets
	}
	// Round up to a power of two: bucketOf masks with size-1.
	c.InitialBuckets = 1 << uint(bits.Len(uint(c.InitialBuckets-1)))
	if c.MaxLoad <= 0 {
		c.MaxLoad = 4
	}
	return c
}

// mix is the splitmix64 finalizer — the same stream as the fixed-bucket
// hashmap (and deliberately distinct from kvsvc's shard router).
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// soRegular is the split-order key of an item with hash h: bit-reversed,
// with the tie-breaking 1 that sorts items strictly after every dummy
// that can own them.
func soRegular(h uint64) uint64 { return bits.Reverse64(h) | 1 }

// soDummy is the split-order key of bucket b's dummy: bit-reversed, even.
func soDummy(b uint64) uint64 { return bits.Reverse64(b) }

// parentBucket clears the highest set bit of b: the bucket whose run
// contained b's items before the doubling that created b. parent(b) < b,
// so recursive initialization terminates at bucket 0.
func parentBucket(b uint64) uint64 {
	return b &^ (1 << uint(bits.Len64(b)-1))
}
