package somap

import (
	"math/bits"
	"testing"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/ds/hhslist"
	"github.com/gosmr/gosmr/internal/ds/hmlist"
	"github.com/gosmr/gosmr/internal/ebr"
	"github.com/gosmr/gosmr/internal/hp"
	"github.com/gosmr/gosmr/internal/nr"
	"github.com/gosmr/gosmr/internal/pebr"
)

// rng is a splitmix64 generator for deterministic pseudo-random tests.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// TestSplitOrderKeys checks the reversed-bit key algebra that the whole
// structure rests on: parities, dummy-before-items, and the recursive
// split property (doubling the size splits each bucket's run exactly
// into bucket b and bucket b+s, with the new dummy between them).
func TestSplitOrderKeys(t *testing.T) {
	r := rng{s: 0xD0D0}
	for i := 0; i < 200000; i++ {
		h := r.next()
		if soRegular(h)&1 != 1 {
			t.Fatalf("soRegular(%#x) is even", h)
		}
		for _, s := range []uint64{1, 2, 8, 1 << 10, 1 << 20} {
			b := h & (s - 1)
			if soDummy(b)&1 != 0 {
				t.Fatalf("soDummy(%d) is odd", b)
			}
			// The owning bucket's dummy precedes the item...
			if !(soDummy(b) < soRegular(h)) {
				t.Fatalf("soDummy(%d)=%#x !< soRegular(%#x)=%#x (size %d)",
					b, soDummy(b), h, soRegular(h), s)
			}
			// ...and after a doubling the item lands in b or b+s: its
			// new bucket's dummy still precedes it, and if it stays in b,
			// it sorts BEFORE the sibling dummy soDummy(b+s) (the new
			// dummy splits the old run in two).
			nb := h & (2*s - 1)
			if nb != b && nb != b+s {
				t.Fatalf("doubling moved bucket %d to %d (size %d)", b, nb, s)
			}
			if !(soDummy(nb) < soRegular(h)) {
				t.Fatalf("post-split dummy %d does not precede item", nb)
			}
			if nb == b && s < 1<<63 && !(soRegular(h) < soDummy(b+s)) {
				t.Fatalf("item stayed in %d but sorts after sibling dummy %d", b, b+s)
			}
		}
	}
}

func TestParentBucket(t *testing.T) {
	cases := map[uint64]uint64{1: 0, 2: 0, 3: 1, 4: 0, 5: 1, 6: 2, 7: 3, 12: 4, 1 << 20: 0, 1<<20 | 5: 5}
	for b, want := range cases {
		if got := parentBucket(b); got != want {
			t.Fatalf("parentBucket(%d) = %d, want %d", b, got, want)
		}
	}
	r := rng{s: 0xBEEF}
	for i := 0; i < 100000; i++ {
		b := r.next()%uint64(MaxBuckets-1) + 1
		p := parentBucket(b)
		if p >= b {
			t.Fatalf("parentBucket(%d) = %d not smaller", b, p)
		}
		// The parent's dummy key precedes the child's: the child splices
		// strictly inside (or at the end of) the parent's run.
		if !(soDummy(p) < soDummy(b)) {
			t.Fatalf("soDummy(parent %d) !< soDummy(%d)", p, b)
		}
	}
}

// mapHandle is the common op surface of the three variants.
type mapHandle interface {
	Get(key uint64) (uint64, bool)
	Insert(key, val uint64) bool
	Delete(key uint64) bool
}

// runBasic drives one handle through a grow-heavy deterministic workload
// against a reference map.
func runBasic(t *testing.T, h mapHandle, buckets func() uint64) {
	t.Helper()
	const n = 4000
	ref := map[uint64]uint64{}
	r := rng{s: 42}
	for i := 0; i < n; i++ {
		k := r.next() % (n / 2)
		switch r.next() % 10 {
		case 0, 1, 2, 3, 4, 5:
			v := r.next()
			if got := h.Insert(k, v); got != (!keyIn(ref, k)) {
				t.Fatalf("op %d: Insert(%d) = %v, ref disagrees", i, k, got)
			}
			if !keyIn(ref, k) {
				ref[k] = v
			}
		case 6, 7:
			gotV, gotOK := h.Get(k)
			wantV, wantOK := ref[k], keyIn(ref, k)
			if gotOK != wantOK || (gotOK && gotV != wantV) {
				t.Fatalf("op %d: Get(%d) = (%d,%v), want (%d,%v)", i, k, gotV, gotOK, wantV, wantOK)
			}
		default:
			if got := h.Delete(k); got != keyIn(ref, k) {
				t.Fatalf("op %d: Delete(%d) = %v, ref disagrees", i, k, got)
			}
			delete(ref, k)
		}
	}
	for k, v := range ref {
		if gotV, ok := h.Get(k); !ok || gotV != v {
			t.Fatalf("final Get(%d) = (%d,%v), want (%d,true)", k, gotV, ok, v)
		}
	}
	if buckets() <= 2 {
		t.Fatalf("directory never grew: %d buckets", buckets())
	}
}

func keyIn(m map[uint64]uint64, k uint64) bool { _, ok := m[k]; return ok }

// stormCfg forces constant doublings: 2 initial buckets, load factor 1.
var stormCfg = Config{InitialBuckets: 2, MaxLoad: 1}

func TestBasicCS(t *testing.T) {
	t.Run("ebr", func(t *testing.T) {
		m := NewMapCS(hhslist.NewPool(arena.ModeDetect), stormCfg)
		runBasic(t, m.NewHandleCS(ebr.NewDomain()), m.Buckets)
	})
	t.Run("pebr", func(t *testing.T) {
		m := NewMapCS(hhslist.NewPool(arena.ModeDetect), stormCfg)
		runBasic(t, m.NewHandleCS(pebr.NewDomain()), m.Buckets)
	})
	t.Run("nr", func(t *testing.T) {
		m := NewMapCS(hhslist.NewPool(arena.ModeDetect), stormCfg)
		runBasic(t, m.NewHandleCS(nr.NewDomain()), m.Buckets)
	})
}

func TestBasicHPP(t *testing.T) {
	for _, fence := range []bool{false, true} {
		name := "hp++"
		if fence {
			name = "hp++ef"
		}
		t.Run(name, func(t *testing.T) {
			m := NewMapHPP(hhslist.NewPool(arena.ModeDetect), stormCfg)
			dom := core.NewDomain(core.Options{EpochFence: fence})
			h := m.NewHandleHPP(dom)
			runBasic(t, h, m.Buckets)
			h.Thread().Finish()
			dom.NewThread(0).Reclaim()
		})
	}
}

func TestBasicHP(t *testing.T) {
	m := NewMapHP(hmlist.NewPool(arena.ModeDetect), stormCfg)
	dom := hp.NewDomain()
	h := m.NewHandleHP(dom)
	runBasic(t, h, m.Buckets)
	h.Thread().Finish()
	dom.NewThread(0).Reclaim()
}

// TestLenTracksCount checks the count driving the load factor.
func TestLenTracksCount(t *testing.T) {
	m := NewMapHPP(hhslist.NewPool(arena.ModeReuse), Config{})
	h := m.NewHandleHPP(core.NewDomain(core.Options{}))
	for k := uint64(0); k < 100; k++ {
		h.Insert(k, k)
	}
	if m.Len() != 100 {
		t.Fatalf("Len = %d, want 100", m.Len())
	}
	for k := uint64(0); k < 50; k++ {
		h.Delete(k)
	}
	if m.Len() != 50 {
		t.Fatalf("Len = %d, want 50", m.Len())
	}
	if m.Buckets() != 1<<uint(bits.Len(uint(100/4))) && m.Buckets() < 16 {
		t.Fatalf("unexpected bucket count %d", m.Buckets())
	}
}
