package somap

import (
	"github.com/gosmr/gosmr/internal/ds/hhslist"
	"github.com/gosmr/gosmr/internal/hp"
)

// MapSCOT is the split-ordered map on plain hazard pointers with the
// SCOT traversal discipline (internal/hp/scot.go), over one optimistic
// HHS list — the combination classic HP validation cannot support.
// Dummies are never marked, unlinked, or freed, so a bucket's dummy is a
// sound initial SCOT anchor at every entry point, exactly as the head
// sentinel is.
type MapSCOT struct {
	dir  directory
	list *hhslist.ListSCOT
}

// NewMapSCOT creates a map over pool.
func NewMapSCOT(pool hhslist.Pool, cfg Config) *MapSCOT {
	m := &MapSCOT{list: hhslist.NewListSCOT(pool)}
	m.dir.init(cfg.withDefaults())
	return m
}

// List exposes the underlying list (for the stress harness's
// skip-validation control knob).
func (m *MapSCOT) List() *hhslist.ListSCOT { return m.list }

// Buckets returns the current directory size.
func (m *MapSCOT) Buckets() uint64 { return m.dir.Buckets() }

// Len returns the current item count.
func (m *MapSCOT) Len() int64 { return m.dir.Len() }

// NewHandleSCOT returns a per-worker handle.
func (m *MapSCOT) NewHandleSCOT(dom *hp.Domain) *HandleSCOT {
	return &HandleSCOT{m: m, h: m.list.NewHandleSCOT(dom)}
}

// HandleSCOT is a per-worker handle; not safe for concurrent use.
type HandleSCOT struct {
	m *MapSCOT
	h *hhslist.HandleSCOT
}

// Thread exposes the underlying HP thread.
func (h *HandleSCOT) Thread() *hp.Thread { return h.h.Thread() }

// bucket returns the dummy ref of the bucket owning hash, initializing
// the bucket (and, recursively, its ancestors) on first touch.
func (h *HandleSCOT) bucket(hash uint64) uint64 {
	b := h.m.dir.bucketOf(hash)
	if r := h.m.dir.load(b); r != 0 {
		return r
	}
	return h.initBucket(b)
}

func (h *HandleSCOT) initBucket(b uint64) uint64 {
	if r := h.m.dir.load(b); r != 0 {
		return r
	}
	start := uint64(0)
	if b != 0 {
		start = h.initBucket(parentBucket(b))
	}
	ref := h.h.EnsureFrom(start, soDummy(b))
	h.m.dir.publish(b, ref)
	return ref
}

// Get returns the value stored under key.
func (h *HandleSCOT) Get(key uint64) (uint64, bool) {
	hv := mix(key)
	return h.h.GetFrom(h.bucket(hv), soRegular(hv), key)
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleSCOT) Insert(key, val uint64) bool {
	hv := mix(key)
	if !h.h.InsertFrom(h.bucket(hv), soRegular(hv), key, val) {
		return false
	}
	h.m.dir.added()
	return true
}

// Delete removes key, reporting whether it was present.
func (h *HandleSCOT) Delete(key uint64) bool {
	hv := mix(key)
	if !h.h.DeleteFrom(h.bucket(hv), soRegular(hv), key) {
		return false
	}
	h.m.dir.removed()
	return true
}
