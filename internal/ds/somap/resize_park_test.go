package somap_test

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/bench"
)

// These are the deterministic resize regressions: a reader is parked
// *mid-traversal* (inside a deref, protection held) with the arena's
// deref hook — the same one-shot trap the kvsvc overload tests use —
// and, while it sleeps, the map is driven through a directory-doubling
// cascade (size CAS + sibling-dummy splices into the reader's run) and a
// mass delete that retires nodes around the parked position.
//
// The contrast under an identical schedule:
//
//   - HP++ keeps reclaiming while the reader is parked (bounded
//     garbage): the parked reader pins at most its protected frontier,
//     and everything else retires and frees on cadence;
//   - EBR freezes: the parked reader pins the epoch, so *nothing*
//     retired after it pinned can be freed until it resumes.
//
// Both must be memory-safe and drain to zero after release.

// parkNthDeref arms a counting trap on every pool: the goroutine that
// performs the nth deref parks until release is called. The caller must
// guarantee the target goroutine is the only one deref-ing between arm
// and park (clear the hooks after the park before resuming mutators).
func parkNthDeref(pools []bench.PoolInfo, n int64) (parked <-chan struct{}, release func()) {
	p := make(chan struct{})
	r := make(chan struct{})
	var cnt atomic.Int64
	for _, pool := range pools {
		pool.SetDerefHook(func(uint64) {
			if cnt.Add(1) == n {
				close(p)
				<-r
			}
		})
	}
	var released atomic.Bool
	return p, func() {
		if released.CompareAndSwap(false, true) {
			close(r)
		}
	}
}

func clearDerefHooks(pools []bench.PoolInfo) {
	for _, pool := range pools {
		pool.SetDerefHook(nil)
	}
}

// runParkedResize executes the shared schedule for one scheme and
// returns (freesWhileParked, unreclaimedWhileParked). It fails the test
// on any memory-safety violation, wrong read result, or nonzero
// unreclaimed after the final drain.
func runParkedResize(t *testing.T, scheme string) (int64, int64) {
	t.Helper()
	setStorm(t)
	fre := bench.FixedReclaimEvery
	bench.FixedReclaimEvery = 32 // deterministic reclaim/collect cadence
	t.Cleanup(func() { bench.FixedReclaimEvery = fre })

	target, err := bench.NewTarget("somap", scheme, arena.ModeDetect)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range target.Pools {
		p.SetCount()
	}
	mut := target.NewHandle()
	reader := target.NewHandle()

	// Prefill: the reader's key plus enough neighbours that its bucket
	// run is several nodes long when it parks.
	const hot = uint64(42)
	for k := uint64(0); k < 64; k++ {
		mut.Insert(k, k+1000)
	}

	// Park the reader on its second deref: past the entry dummy, on a
	// node inside the bucket run, protection published but liveness not
	// yet validated — the exact window a bad scheme frees into.
	parked, release := parkNthDeref(target.Pools, 2)
	defer release()
	type got struct {
		val uint64
		ok  bool
	}
	done := make(chan got)
	go func() {
		v, ok := reader.Get(hot)
		done <- got{v, ok}
	}()
	select {
	case <-parked:
	case <-time.After(2 * time.Second):
		t.Fatal("reader never parked on the deref hook")
	}
	clearDerefHooks(target.Pools)

	// Directory swap window: 3000 unique inserts double the 2-bucket
	// storm directory ~10 times and splice sibling dummies into every
	// run, including the one the reader is parked inside.
	for i := uint64(0); i < 3000; i++ {
		mut.Insert(1<<40|i, i)
	}
	// Dummy-splice + retire window: delete the reader's neighbours and
	// most of the filler, retiring thousands of nodes around the parked
	// position.
	for k := uint64(0); k < 64; k++ {
		if k != hot {
			mut.Delete(k)
		}
	}
	for i := uint64(0); i < 2500; i++ {
		mut.Delete(1<<40 | i)
	}
	if target.Agitate != nil {
		for i := 0; i < 16; i++ {
			target.Agitate()
		}
	}

	var frees int64
	for _, p := range target.Pools {
		frees += p.Stats().Frees
	}
	unreclaimed := target.Unreclaimed()

	release()
	r := <-done
	if !r.ok || r.val != hot+1000 {
		t.Fatalf("parked reader Get(%d) = (%d,%v), want (%d,true)", hot, r.val, r.ok, hot+1000)
	}
	target.Finish()
	for _, p := range target.Pools {
		if st := p.Stats(); st.UAF != 0 || st.DoubleFree != 0 {
			t.Fatalf("memory-unsafe: uaf=%d doublefree=%d", st.UAF, st.DoubleFree)
		}
	}
	if unr := target.Unreclaimed(); unr != 0 {
		t.Fatalf("%d nodes unreclaimed after drain", unr)
	}
	return frees, unreclaimed
}

// TestParkedReaderResizeHPP: HP++ must keep freeing while the reader is
// parked across the directory swap — the parked protection bounds the
// garbage, it does not stall the domain.
func TestParkedReaderResizeHPP(t *testing.T) {
	for _, scheme := range []string{"hp++", "hp++ef"} {
		t.Run(scheme, func(t *testing.T) {
			frees, _ := runParkedResize(t, scheme)
			if frees == 0 {
				t.Fatal("HP++ freed nothing while the reader was parked; reclamation stalled")
			}
		})
	}
}

// TestParkedReaderResizeSCOT: plain HP with the SCOT traversal must match
// HP++'s robustness here — the parked reader pins only its announced
// hazards (anchor, chain entry, cur), so reclamation keeps freeing across
// the directory swap, and the resumed read revalidates through the
// handshake to the correct result.
func TestParkedReaderResizeSCOT(t *testing.T) {
	frees, _ := runParkedResize(t, "hp-scot")
	if frees == 0 {
		t.Fatal("hp-scot freed nothing while the reader was parked; reclamation stalled")
	}
}

// TestParkedReaderResizeEBRStalls: the identical schedule under EBR
// frees nothing while the reader is parked (the pinned guard holds the
// epoch), and the retired backlog is visible in Unreclaimed. It still
// drains to zero once the reader resumes.
func TestParkedReaderResizeEBRStalls(t *testing.T) {
	frees, unreclaimed := runParkedResize(t, "ebr")
	if frees != 0 {
		t.Fatalf("EBR freed %d nodes past a pinned reader", frees)
	}
	if unreclaimed < 2000 {
		t.Fatalf("expected a large retired backlog while parked, got %d", unreclaimed)
	}
}
