package somap

import (
	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/ds/hhslist"
)

// MapHPP is the split-ordered map under HP++, over one HHS list. The
// traversal entering at a bucket's dummy is the paper's Algorithm 4
// unchanged: the dummy is never invalidated, so the first TryProtect
// treats it exactly like the list head, and chain unlinks racing a
// parked reader are covered by the frontier protection + deferred
// invalidation machinery regardless of which shortcut the reader came
// through.
type MapHPP struct {
	dir  directory
	list *hhslist.ListHPP
}

// NewMapHPP creates a map over pool.
func NewMapHPP(pool hhslist.Pool, cfg Config) *MapHPP {
	m := &MapHPP{list: hhslist.NewListHPP(pool)}
	m.dir.init(cfg.withDefaults())
	return m
}

// Buckets returns the current directory size.
func (m *MapHPP) Buckets() uint64 { return m.dir.Buckets() }

// Len returns the current item count.
func (m *MapHPP) Len() int64 { return m.dir.Len() }

// NewHandleHPP returns a per-worker handle.
func (m *MapHPP) NewHandleHPP(dom *core.Domain) *HandleHPP {
	return &HandleHPP{m: m, h: m.list.NewHandleHPP(dom)}
}

// HandleHPP is a per-worker handle; not safe for concurrent use.
type HandleHPP struct {
	m *MapHPP
	h *hhslist.HandleHPP
}

// Thread exposes the underlying HP++ thread.
func (h *HandleHPP) Thread() *core.Thread { return h.h.Thread() }

// bucket returns the dummy ref of the bucket owning hash, initializing
// the bucket (and, recursively, its ancestors) on first touch.
func (h *HandleHPP) bucket(hash uint64) uint64 {
	b := h.m.dir.bucketOf(hash)
	if r := h.m.dir.load(b); r != 0 {
		return r
	}
	return h.initBucket(b)
}

func (h *HandleHPP) initBucket(b uint64) uint64 {
	if r := h.m.dir.load(b); r != 0 {
		return r
	}
	start := uint64(0)
	if b != 0 {
		start = h.initBucket(parentBucket(b))
	}
	ref := h.h.EnsureFrom(start, soDummy(b))
	h.m.dir.publish(b, ref)
	return ref
}

// Get returns the value stored under key.
func (h *HandleHPP) Get(key uint64) (uint64, bool) {
	hv := mix(key)
	return h.h.GetFrom(h.bucket(hv), soRegular(hv), key)
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleHPP) Insert(key, val uint64) bool {
	hv := mix(key)
	if !h.h.InsertFrom(h.bucket(hv), soRegular(hv), key, val) {
		return false
	}
	h.m.dir.added()
	return true
}

// Delete removes key, reporting whether it was present.
func (h *HandleHPP) Delete(key uint64) bool {
	hv := mix(key)
	if !h.h.DeleteFrom(h.bucket(hv), soRegular(hv), key) {
		return false
	}
	h.m.dir.removed()
	return true
}
