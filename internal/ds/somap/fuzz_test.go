package somap

import (
	"testing"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/ds/hhslist"
	"github.com/gosmr/gosmr/internal/ds/hmlist"
	"github.com/gosmr/gosmr/internal/ebr"
	"github.com/gosmr/gosmr/internal/hp"
	"github.com/gosmr/gosmr/internal/nbr"
	"github.com/gosmr/gosmr/internal/nr"
	"github.com/gosmr/gosmr/internal/pebr"
)

// applyOps decodes ops (3 bytes each: selector, key, value) against both
// h and a reference map[uint64]uint64, failing on the first divergence.
// Selector 0xF* inserts a fresh never-before-seen key instead of a
// small-space key, so fuzz inputs can force directory growth at will;
// the small key space (64) keeps the rest of the ops colliding hard.
func applyOps(t *testing.T, h mapHandle, ops []byte) {
	t.Helper()
	ref := map[uint64]uint64{}
	fresh := uint64(0)
	for i := 0; i+2 < len(ops); i += 3 {
		sel, kb, vb := ops[i], ops[i+1], ops[i+2]
		k := uint64(kb % 64)
		if sel >= 0xF0 {
			// Forced grow: a unique key far above the shared space.
			k = 1<<32 | fresh
			fresh++
		}
		switch sel % 3 {
		case 0:
			v := uint64(vb) + 1
			if got := h.Insert(k, v); got != !keyIn(ref, k) {
				t.Fatalf("op %d: Insert(%d) = %v, ref has key: %v", i/3, k, got, keyIn(ref, k))
			}
			if !keyIn(ref, k) {
				ref[k] = v
			}
		case 1:
			gotV, gotOK := h.Get(k)
			wantV, wantOK := ref[k], keyIn(ref, k)
			if gotOK != wantOK || (gotOK && gotV != wantV) {
				t.Fatalf("op %d: Get(%d) = (%d,%v), want (%d,%v)", i/3, k, gotV, gotOK, wantV, wantOK)
			}
		default:
			if got := h.Delete(k); got != keyIn(ref, k) {
				t.Fatalf("op %d: Delete(%d) = %v, ref has key: %v", i/3, k, got, keyIn(ref, k))
			}
			delete(ref, k)
		}
	}
	for k, v := range ref {
		if gotV, ok := h.Get(k); !ok || gotV != v {
			t.Fatalf("final Get(%d) = (%d,%v), want (%d,true)", k, gotV, ok, v)
		}
	}
}

// FuzzOpsVsReference feeds arbitrary op tapes through a storm-configured
// HP++ map (2 buckets, load factor 1 — every fuzz input that nets
// inserts crosses doublings) and cross-checks every result against a
// Go map.
func FuzzOpsVsReference(f *testing.F) {
	f.Add([]byte{0x00, 1, 1, 0x01, 1, 0, 0x02, 1, 0})
	f.Add([]byte{0xF0, 0, 1, 0xF0, 0, 2, 0xF0, 0, 3, 0x01, 0, 0})
	// A grow-then-churn tape: fresh inserts interleaved with small-space
	// inserts, gets and deletes.
	var tape []byte
	for i := byte(0); i < 60; i++ {
		tape = append(tape, 0xF0, 0, i, i, i, i, i+1, i, i)
	}
	f.Add(tape)
	f.Fuzz(func(t *testing.T, ops []byte) {
		m := NewMapHPP(hhslist.NewPool(arena.ModeDetect), stormCfg)
		dom := core.NewDomain(core.Options{})
		h := m.NewHandleHPP(dom)
		applyOps(t, h, ops)
		h.Thread().Finish()
		dom.NewThread(0).Reclaim()
		if unr := dom.Unreclaimed(); unr != 0 {
			t.Fatalf("%d nodes unreclaimed after drain", unr)
		}
	})
}

// TestQuickCheckAllVariants is the seeded quick-check table: randomized
// op tapes (several seeds, storm config) against every scheme variant,
// cross-checked op-for-op against a Go map.
func TestQuickCheckAllVariants(t *testing.T) {
	tapes := make([][]byte, 0, 4)
	for seed := uint64(1); seed <= 4; seed++ {
		r := rng{s: seed * 0xC0FFEE}
		tape := make([]byte, 3*1500)
		for i := range tape {
			tape[i] = byte(r.next())
		}
		tapes = append(tapes, tape)
	}
	newHandles := map[string]func() mapHandle{
		"ebr": func() mapHandle {
			return NewMapCS(hhslist.NewPool(arena.ModeDetect), stormCfg).NewHandleCS(ebr.NewDomain())
		},
		"pebr": func() mapHandle {
			return NewMapCS(hhslist.NewPool(arena.ModeDetect), stormCfg).NewHandleCS(pebr.NewDomain())
		},
		"nr": func() mapHandle {
			return NewMapCS(hhslist.NewPool(arena.ModeDetect), stormCfg).NewHandleCS(nr.NewDomain())
		},
		"nbr": func() mapHandle {
			return NewMapCS(hhslist.NewPool(arena.ModeDetect), stormCfg).NewHandleCS(nbr.NewDomain())
		},
		"hp": func() mapHandle {
			return NewMapHP(hmlist.NewPool(arena.ModeDetect), stormCfg).NewHandleHP(hp.NewDomain())
		},
		"hp++": func() mapHandle {
			return NewMapHPP(hhslist.NewPool(arena.ModeDetect), stormCfg).NewHandleHPP(core.NewDomain(core.Options{}))
		},
		"hp++ef": func() mapHandle {
			return NewMapHPP(hhslist.NewPool(arena.ModeDetect), stormCfg).NewHandleHPP(core.NewDomain(core.Options{EpochFence: true}))
		},
		"hp-scot": func() mapHandle {
			return NewMapSCOT(hhslist.NewPool(arena.ModeDetect), stormCfg).NewHandleSCOT(hp.NewDomain())
		},
	}
	for name, mk := range newHandles {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			for _, tape := range tapes {
				h := mk()
				applyOps(t, h, tape)
			}
		})
	}
}
