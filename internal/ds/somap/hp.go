package somap

import (
	"github.com/gosmr/gosmr/internal/ds/hmlist"
	"github.com/gosmr/gosmr/internal/hp"
)

// MapHP is the split-ordered map under original hazard pointers, over
// one Harris-Michael list (HHS lists are not HP-compatible). Validation
// against a dummy's next field is as sound as against the head: dummies
// are never marked or unlinked, so "the previous link still holds cur,
// untagged" retains its meaning at every entry point.
type MapHP struct {
	dir  directory
	list *hmlist.ListHP
}

// NewMapHP creates a map over pool.
func NewMapHP(pool hmlist.Pool, cfg Config) *MapHP {
	m := &MapHP{list: hmlist.NewListHP(pool)}
	m.dir.init(cfg.withDefaults())
	return m
}

// Buckets returns the current directory size.
func (m *MapHP) Buckets() uint64 { return m.dir.Buckets() }

// Len returns the current item count.
func (m *MapHP) Len() int64 { return m.dir.Len() }

// NewHandleHP returns a per-worker handle.
func (m *MapHP) NewHandleHP(dom *hp.Domain) *HandleHP {
	return &HandleHP{m: m, h: m.list.NewHandleHP(dom)}
}

// HandleHP is a per-worker handle; not safe for concurrent use.
type HandleHP struct {
	m *MapHP
	h *hmlist.HandleHP
}

// Thread exposes the underlying HP thread.
func (h *HandleHP) Thread() *hp.Thread { return h.h.Thread() }

// bucket returns the dummy ref of the bucket owning hash, initializing
// the bucket (and, recursively, its ancestors) on first touch.
func (h *HandleHP) bucket(hash uint64) uint64 {
	b := h.m.dir.bucketOf(hash)
	if r := h.m.dir.load(b); r != 0 {
		return r
	}
	return h.initBucket(b)
}

func (h *HandleHP) initBucket(b uint64) uint64 {
	if r := h.m.dir.load(b); r != 0 {
		return r
	}
	start := uint64(0)
	if b != 0 {
		start = h.initBucket(parentBucket(b))
	}
	ref := h.h.EnsureFrom(start, soDummy(b))
	h.m.dir.publish(b, ref)
	return ref
}

// Get returns the value stored under key.
func (h *HandleHP) Get(key uint64) (uint64, bool) {
	hv := mix(key)
	return h.h.GetFrom(h.bucket(hv), soRegular(hv), key)
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleHP) Insert(key, val uint64) bool {
	hv := mix(key)
	if !h.h.InsertFrom(h.bucket(hv), soRegular(hv), key, val) {
		return false
	}
	h.m.dir.added()
	return true
}

// Delete removes key, reporting whether it was present.
func (h *HandleHP) Delete(key uint64) bool {
	hv := mix(key)
	if !h.h.DeleteFrom(h.bucket(hv), soRegular(hv), key) {
		return false
	}
	h.m.dir.removed()
	return true
}
