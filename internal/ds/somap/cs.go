package somap

import (
	"github.com/gosmr/gosmr/internal/ds/hhslist"
	"github.com/gosmr/gosmr/internal/smr"
)

// MapCS is the split-ordered map for critical-section schemes (EBR,
// PEBR, NR — and the unsafefree control), over one HHS list.
type MapCS struct {
	dir  directory
	list *hhslist.ListCS
}

// NewMapCS creates a map over pool.
func NewMapCS(pool hhslist.Pool, cfg Config) *MapCS {
	m := &MapCS{list: hhslist.NewListCS(pool)}
	m.dir.init(cfg.withDefaults())
	return m
}

// Buckets returns the current directory size.
func (m *MapCS) Buckets() uint64 { return m.dir.Buckets() }

// Len returns the current item count.
func (m *MapCS) Len() int64 { return m.dir.Len() }

// NewHandleCS returns a per-worker handle.
func (m *MapCS) NewHandleCS(dom smr.GuardDomain) *HandleCS {
	return &HandleCS{m: m, h: m.list.NewHandleCS(dom)}
}

// HandleCS is a per-worker handle; not safe for concurrent use.
type HandleCS struct {
	m *MapCS
	h *hhslist.HandleCS
}

// Guard exposes the underlying guard.
func (h *HandleCS) Guard() smr.Guard { return h.h.Guard() }

// bucket returns the dummy ref of the bucket owning hash, initializing
// the bucket (and, recursively, its ancestors) on first touch.
func (h *HandleCS) bucket(hash uint64) uint64 {
	b := h.m.dir.bucketOf(hash)
	if r := h.m.dir.load(b); r != 0 {
		return r
	}
	return h.initBucket(b)
}

func (h *HandleCS) initBucket(b uint64) uint64 {
	if r := h.m.dir.load(b); r != 0 {
		return r
	}
	start := uint64(0)
	if b != 0 {
		start = h.initBucket(parentBucket(b))
	}
	ref := h.h.EnsureFrom(start, soDummy(b))
	h.m.dir.publish(b, ref)
	return ref
}

// Get returns the value stored under key.
func (h *HandleCS) Get(key uint64) (uint64, bool) {
	hv := mix(key)
	return h.h.GetFrom(h.bucket(hv), soRegular(hv), key)
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleCS) Insert(key, val uint64) bool {
	hv := mix(key)
	if !h.h.InsertFrom(h.bucket(hv), soRegular(hv), key, val) {
		return false
	}
	h.m.dir.added()
	return true
}

// Delete removes key, reporting whether it was present.
func (h *HandleCS) Delete(key uint64) bool {
	hv := mix(key)
	if !h.h.DeleteFrom(h.bucket(hv), soRegular(hv), key) {
		return false
	}
	h.m.dir.removed()
	return true
}
