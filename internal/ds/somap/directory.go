package somap

import "sync/atomic"

// segment is one CAS-published block of the bucket directory. Entries
// are dummy-node refs; 0 means the bucket is not initialized yet.
type segment [segSize]atomic.Uint64

// directory is the resizable part of the map: a fixed array of segment
// pointers (so growth never copies anything), the current power-of-two
// bucket count, and the item count that drives doubling. It is shared
// verbatim by every scheme variant.
type directory struct {
	size    atomic.Uint64
	count   atomic.Int64
	maxLoad uint64
	segs    [maxSegs]atomic.Pointer[segment]
}

func (d *directory) init(cfg Config) {
	d.size.Store(uint64(cfg.InitialBuckets))
	d.maxLoad = uint64(cfg.MaxLoad)
}

// bucketOf maps a hash to its bucket under the current size. The size
// may double concurrently; using a stale (smaller) size is always safe —
// the stale bucket's run is a superset of the current one and its dummy
// still precedes every key it routed.
func (d *directory) bucketOf(h uint64) uint64 { return h & (d.size.Load() - 1) }

// load returns bucket b's dummy ref, or 0 if not yet initialized.
func (d *directory) load(b uint64) uint64 {
	seg := d.segs[b>>segBits].Load()
	if seg == nil {
		return 0
	}
	return seg[b&(segSize-1)].Load()
}

// publish records bucket b's dummy ref. All initializers of b converge
// on the same ref (the list's get-or-insert has a single winner), so the
// entry CAS races are benign: first writer wins, the rest agree.
func (d *directory) publish(b, ref uint64) {
	si := b >> segBits
	seg := d.segs[si].Load()
	if seg == nil {
		d.segs[si].CompareAndSwap(nil, new(segment))
		seg = d.segs[si].Load()
	}
	seg[b&(segSize-1)].CompareAndSwap(0, ref)
}

// added bumps the item count after a successful insert and publishes a
// doubled size when the load factor is crossed. One CAS suffices: a lost
// race means some other inserter already doubled to the same value.
func (d *directory) added() {
	n := d.count.Add(1)
	sz := d.size.Load()
	if uint64(n) > sz*d.maxLoad && sz < MaxBuckets {
		d.size.CompareAndSwap(sz, sz<<1)
	}
}

// removed drops the item count after a successful delete. The directory
// never shrinks (standard for split-ordered lists: dummies are
// permanent), so there is no downsizing counterpart.
func (d *directory) removed() { d.count.Add(-1) }

// Buckets returns the current directory size (for tests and stats).
func (d *directory) Buckets() uint64 { return d.size.Load() }

// Len returns the current item count (for tests and stats).
func (d *directory) Len() int64 { return d.count.Load() }
