package efrbtree

import (
	"github.com/gosmr/gosmr/internal/hp"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// Extra slot for the HP variant: the descriptor found on p by a delete.
const (
	slotPOp = csSlots
	hpSlots = csSlots + 1
)

// TreeHP is the EFRB tree under original hazard pointers. The search
// validates each protection by re-reading the parent's child edge; the
// helping paths validate theirs with over-approximations derived from the
// update-word protocol — the properties the HP++ paper credits for
// EFRB's (rare) HP compatibility:
//
//   - retiring a node requires a MARK that sticks forever, so a node
//     whose update word is anything but a foreign MARK is not retired;
//   - while gp carries (DFLAG, op), only op's own splice can remove p, so
//     "p still reachable from gp" validates p's protection;
//   - descriptors are retired only after their owner's update word moves
//     on, and update words cannot recur while the descriptor is protected,
//     so protect-then-revalidate covers every helper dereference.
type TreeHP struct {
	nodes NodePool
	infos InfoPool
	root  uint64
}

// NewTreeHP creates a tree (with sentinels) over the two pools.
func NewTreeHP(nodes NodePool, infos InfoPool) *TreeHP {
	return &TreeHP{nodes: nodes, infos: infos, root: newTree(nodes)}
}

// NewHandleHP returns a per-worker handle.
func (t *TreeHP) NewHandleHP(dom *hp.Domain) *HandleHP {
	return &HandleHP{t: t, h: dom.NewThread(hpSlots)}
}

// HandleHP is a per-worker handle; not safe for concurrent use.
type HandleHP struct {
	t *TreeHP
	h *hp.Thread
}

// Thread exposes the underlying HP thread.
func (h *HandleHP) Thread() *hp.Thread { return h.h }

// search descends with validated hand-over-hand protection. On return
// l (slotL), p (slotP) and gp (slotGP) are protected.
func (h *HandleHP) search(key uint64) searchResult {
	t := h.t
retry:
	var res searchResult
	res.l = t.root // the root is permanent
	h.h.Protect(slotL, res.l)
	for {
		nd := t.nodes.Deref(res.l)
		// Update word first: "unchanged update ⟹ unchanged children"
		// only holds for this read order.
		upd := nd.update.Load()
		edge := childEdge(nd, key)
		w := edge.Load()
		child := tagptr.RefOf(w)
		if child == 0 {
			return res
		}
		res.gp, res.gpupdate = res.p, res.pupdate
		res.p = res.l
		res.pupdate = upd
		h.h.Swap(slotGP, slotP)
		h.h.Swap(slotP, slotL)
		res.l = child
		if !h.h.ProtectWord(slotL, edge, w) {
			goto retry
		}
		// The edge check alone cannot cover the victim leaf: a delete
		// splices p and l together without ever touching the p→l edge.
		// p's MARK plays the role of the HM-list deletion tag — an
		// unmarked p with an unchanged edge cannot have had this child
		// retired.
		if stateOf(nd.update.Load()) == stateMark {
			goto retry
		}
	}
}

// protectInfo protects the descriptor currently installed on node in the
// given slot and returns the stable update word. node must be protected.
func (h *HandleHP) protectInfo(slot int, node uint64) tagptr.Word {
	u := &h.t.nodes.Deref(node).update
	for {
		w := u.Load()
		info := infoOf(w)
		if info == 0 {
			return w
		}
		h.h.Protect(slot, info)
		if u.Load() == w {
			return w
		}
	}
}

// protectWordInfo protects the descriptor referenced by the previously
// read update word w of node and reports whether node still carries w.
// Using the search-time word (not a fresh read) preserves the protocol's
// "word unchanged since the child was read" invariant.
func (h *HandleHP) protectWordInfo(slot int, node uint64, w tagptr.Word) bool {
	if info := infoOf(w); info != 0 {
		h.h.Protect(slot, info)
	}
	return h.t.nodes.Deref(node).update.Load() == w
}

// Get returns the value stored under key.
func (h *HandleHP) Get(key uint64) (uint64, bool) {
	defer h.h.ClearAll()
	res := h.search(key)
	nd := h.t.nodes.Deref(res.l)
	if nd.key == key {
		return nd.val, true
	}
	return 0, false
}

// help advances the operation in update word w; the descriptor must be
// protected in slotOp by the caller.
func (h *HandleHP) help(w tagptr.Word) {
	info := infoOf(w)
	if info == 0 {
		return
	}
	switch stateOf(w) {
	case stateIFlag:
		h.helpInsert(info)
	case stateDFlag:
		h.helpDelete(info, false)
	}
	// MARK words are permanent, so they cannot validate that their
	// descriptor is still unreclaimed; helping a marked parent happens
	// through its grandparent's (transient) DFLAG word instead.
}

// protectNodeWhileFlagged protects ref in slot and validates that owner's
// update word still equals w — which precludes ref's retirement for the
// word kinds we use it with. The descriptor protection in the caller
// prevents w from recurring, so the validation is an over-approximation.
func (h *HandleHP) protectNodeWhileFlagged(slot int, ref, owner uint64, w tagptr.Word) bool {
	h.h.Protect(slot, ref)
	return h.t.nodes.Deref(owner).update.Load() == w
}

// helpInsert completes an insert (descriptor protected in slotOp).
func (h *HandleHP) helpInsert(info uint64) {
	t := h.t
	op := t.infos.Deref(info)
	p, l, newInternal := op.p, op.l, op.newInternal
	flagged := packUpdate(info, stateIFlag)
	// While p.update == (IFLAG, info), neither p nor newInternal can be
	// retired: p is not marked, and newInternal is being inserted.
	if !h.protectNodeWhileFlagged(slotP, p, p, flagged) {
		return
	}
	if !h.protectNodeWhileFlagged(slotSib, newInternal, p, flagged) {
		return
	}
	pn := t.nodes.Deref(p)
	key := t.nodes.Deref(newInternal).key
	childEdge(pn, key).CompareAndSwap(tagptr.Pack(l, 0), tagptr.Pack(newInternal, 0))
	pn.update.CompareAndSwap(flagged, packUpdate(info, stateClean))
}

// pReachable reports whether gp still points at p, validated by
// re-checking that gp still carries word w afterwards (no recurrence
// while the descriptor is protected).
func (h *HandleHP) pReachable(gpn *Node, p uint64, w tagptr.Word) (reachable, valid bool) {
	r := gpn.left.Load() == tagptr.Pack(p, 0) || gpn.right.Load() == tagptr.Pack(p, 0)
	if gpn.update.Load() != w {
		return false, false
	}
	return r, true
}

// helpDelete drives a delete whose descriptor (protected in slotOp) has
// been installed on gp. owner marks the deleting thread itself, whose
// search protection of p licenses one extra dereference when the
// operation has already finished. Reports whether the delete completed
// (as opposed to backtracked).
func (h *HandleHP) helpDelete(info uint64, owner bool) bool {
	t := h.t
	op := t.infos.Deref(info)
	gp, p, pupdate := op.gp, op.p, op.pupdate
	dflagged := packUpdate(info, stateDFlag)
	marked := packUpdate(info, stateMark)

	if !h.protectNodeWhileFlagged(slotGP, gp, gp, dflagged) {
		// The operation already finished. Only the owner (whose p is
		// still protected from its own search) needs to know how.
		if owner {
			return t.nodes.Deref(p).update.Load() == marked
		}
		return false
	}
	gpn := t.nodes.Deref(gp)
	h.h.Protect(slotP, p)
	reachable, valid := h.pReachable(gpn, p, dflagged)
	if !valid {
		if owner {
			return t.nodes.Deref(p).update.Load() == marked
		}
		return false
	}
	if !reachable {
		// While gp is DFLAGged only our own splice can remove p, so the
		// splice already happened; finish the unflag.
		gpn.update.CompareAndSwap(dflagged, packUpdate(info, stateClean))
		return true
	}
	// p is reachable from the DFLAGged gp, hence not retired: safe.
	pn := t.nodes.Deref(p)
	w := pn.update.Load()
	for {
		if w == marked {
			h.helpMarked(info)
			return true
		}
		if w != pupdate {
			break
		}
		if pn.update.CompareAndSwap(pupdate, marked) {
			// The mark displaced p's previous descriptor: retire it.
			if prev := infoOf(pupdate); prev != 0 {
				h.h.Retire(prev, t.infos)
			}
			h.helpMarked(info)
			return true
		}
		w = pn.update.Load()
	}
	// p is owned by a foreign operation: help it along (best effort),
	// then back our delete out.
	if stateOf(w) != stateMark {
		fw := h.protectInfo(slotPOp, p)
		if stateOf(fw) != stateClean && stateOf(fw) != stateMark {
			h.h.Protect(slotOp, infoOf(fw))
			h.help(fw)
		}
	}
	gpn.update.CompareAndSwap(dflagged, packUpdate(info, stateClean))
	return false
}

// helpMarked splices p (and the victim leaf) out of gp; descriptor
// protected in slotOp.
func (h *HandleHP) helpMarked(info uint64) {
	t := h.t
	op := t.infos.Deref(info)
	gp, p, l := op.gp, op.p, op.l
	dflagged := packUpdate(info, stateDFlag)
	if !h.protectNodeWhileFlagged(slotGP, gp, gp, dflagged) {
		return // already finished
	}
	gpn := t.nodes.Deref(gp)
	h.h.Protect(slotP, p)
	var edge *edgeField
	switch {
	case gpn.left.Load() == tagptr.Pack(p, 0):
		edge = &gpn.left
	case gpn.right.Load() == tagptr.Pack(p, 0):
		edge = &gpn.right
	}
	if gpn.update.Load() != dflagged {
		return
	}
	if edge == nil {
		// Splice already done by another helper; finish the unflag.
		gpn.update.CompareAndSwap(dflagged, packUpdate(info, stateClean))
		return
	}
	pn := t.nodes.Deref(p) // reachable under our DFLAG: not retired
	lc := tagptr.RefOf(pn.left.Load())
	rc := tagptr.RefOf(pn.right.Load())
	var other uint64
	switch l {
	case rc:
		other = lc
	case lc:
		other = rc
	default:
		DbgMismatch.Add(1)
		return // descriptor/children mismatch: never splice blindly
	}
	// Promote a fresh copy when the survivor is a leaf (see the CS
	// variant: child-edge words must never repeat). other cannot be
	// retired while our MARK owns p — a delete of other would need to
	// DFLAG p first — so it is safe to dereference under slotSib.
	h.h.Protect(slotSib, other)
	if gpn.update.Load() != dflagged {
		return
	}
	on := t.nodes.Deref(other)
	if tagptr.RefOf(on.left.Load()) == 0 {
		cp, cn := t.nodes.Alloc()
		cn.key, cn.val = on.key, on.val
		cn.update.Store(0)
		cn.left.Store(0)
		cn.right.Store(0)
		if edge.CompareAndSwap(tagptr.Pack(p, 0), tagptr.Pack(cp, 0)) {
			h.h.Retire(p, t.nodes)
			h.h.Retire(l, t.nodes)
			h.h.Retire(other, t.nodes)
		} else {
			t.nodes.Free(cp)
		}
	} else if edge.CompareAndSwap(tagptr.Pack(p, 0), tagptr.Pack(other, 0)) {
		h.h.Retire(p, t.nodes)
		h.h.Retire(l, t.nodes)
	}
	gpn.update.CompareAndSwap(dflagged, packUpdate(info, stateClean))
}

// flagCAS installs a new descriptor, retiring the one it replaces.
func (h *HandleHP) flagCAS(node uint64, old tagptr.Word, info uint64, state uint64) bool {
	if !h.t.nodes.Deref(node).update.CompareAndSwap(old, packUpdate(info, state)) {
		return false
	}
	if prev := infoOf(old); prev != 0 {
		h.h.Retire(prev, h.t.infos)
	}
	return true
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleHP) Insert(key, val uint64) bool {
	defer h.h.ClearAll()
	t := h.t
	var newLeaf, newInternal, info uint64
	for {
		res := h.search(key)
		leaf := t.nodes.Deref(res.l)
		if leaf.key == key {
			if newLeaf != 0 {
				t.nodes.Free(newLeaf)
				t.nodes.Free(newInternal)
				t.infos.Free(info)
			}
			return false
		}
		pupdate := res.pupdate
		if !h.protectWordInfo(slotOp, res.p, pupdate) {
			continue // p changed since the search: retry
		}
		if stateOf(pupdate) == stateMark {
			// p is being deleted: help through its parent's DFLAG.
			if res.gp != 0 && h.protectWordInfo(slotOp, res.gp, res.gpupdate) &&
				stateOf(res.gpupdate) == stateDFlag {
				h.help(res.gpupdate)
			}
			continue
		}
		if stateOf(pupdate) != stateClean {
			h.help(pupdate)
			continue
		}
		if newLeaf == 0 {
			newLeaf, _ = t.nodes.Alloc()
			newInternal, _ = t.nodes.Alloc()
			info, _ = t.infos.Alloc()
		}
		nl := t.nodes.Deref(newLeaf)
		nl.key, nl.val = key, val
		nl.update.Store(0)
		nl.left.Store(0)
		nl.right.Store(0)
		ni := t.nodes.Deref(newInternal)
		ni.update.Store(0)
		if key < leaf.key {
			ni.key = leaf.key
			ni.left.Store(tagptr.Pack(newLeaf, 0))
			ni.right.Store(tagptr.Pack(res.l, 0))
		} else {
			ni.key = key
			ni.left.Store(tagptr.Pack(res.l, 0))
			ni.right.Store(tagptr.Pack(newLeaf, 0))
		}
		op := t.infos.Deref(info)
		op.kind = kindInsert
		op.p, op.l, op.newInternal = res.p, res.l, newInternal
		op.gp, op.pupdate = 0, 0

		h.h.Protect(slotOp, info) // guard our descriptor before publishing
		if h.flagCAS(res.p, pupdate, info, stateIFlag) {
			h.helpInsert(info)
			return true
		}
		uw := h.protectInfo(slotOp, res.p)
		if stateOf(uw) != stateClean {
			h.help(uw)
		}
	}
}

// Delete removes key, reporting whether it was present.
func (h *HandleHP) Delete(key uint64) bool {
	defer h.h.ClearAll()
	t := h.t
	var info uint64
	for {
		res := h.search(key)
		if t.nodes.Deref(res.l).key != key {
			if info != 0 {
				t.infos.Free(info)
			}
			return false
		}
		if res.gp == 0 {
			return false // unreachable with sentinels
		}
		gpupdate := res.gpupdate
		if !h.protectWordInfo(slotOp, res.gp, gpupdate) {
			continue // gp changed since the search: retry
		}
		if stateOf(gpupdate) != stateClean {
			h.help(gpupdate)
			continue
		}
		pupdate := res.pupdate
		if !h.protectWordInfo(slotPOp, res.p, pupdate) {
			continue // p changed since the search: retry
		}
		if stateOf(pupdate) == stateMark {
			continue // p is mid-deletion; its gp was observed clean: retry
		}
		if stateOf(pupdate) != stateClean {
			h.h.Protect(slotOp, infoOf(pupdate))
			h.help(pupdate)
			continue
		}
		if info == 0 {
			info, _ = t.infos.Alloc()
		}
		op := t.infos.Deref(info)
		op.kind = kindDelete
		op.gp, op.p, op.l = res.gp, res.p, res.l
		op.pupdate = pupdate
		op.newInternal = 0

		h.h.Protect(slotOp, info) // guard our descriptor before publishing
		if h.flagCAS(res.gp, gpupdate, info, stateDFlag) {
			if h.helpDelete(info, true) {
				return true
			}
			info = 0 // published on gp; retired by the next flag there
		} else {
			uw := h.protectInfo(slotOp, res.gp)
			if stateOf(uw) != stateClean {
				h.help(uw)
			}
		}
	}
}
