package efrbtree

import (
	"github.com/gosmr/gosmr/internal/smr"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// Shield slots for the smr.Guard protocol.
const (
	slotGP = iota
	slotP
	slotL
	slotOp  // descriptor being helped
	slotSib // the new internal / survivor subtree during helping
	csSlots
)

// TreeCS is the EFRB tree for critical-section schemes (EBR, PEBR, NR).
type TreeCS struct {
	nodes NodePool
	infos InfoPool
	root  uint64
}

// NewTreeCS creates a tree (with sentinels) over the two pools.
func NewTreeCS(nodes NodePool, infos InfoPool) *TreeCS {
	return &TreeCS{nodes: nodes, infos: infos, root: newTree(nodes)}
}

// NewHandleCS returns a per-worker handle.
func (t *TreeCS) NewHandleCS(dom smr.GuardDomain) *HandleCS {
	return &HandleCS{t: t, g: dom.NewGuard(csSlots)}
}

// HandleCS is a per-worker handle; not safe for concurrent use.
type HandleCS struct {
	t *TreeCS
	g smr.Guard
}

// Guard exposes the underlying guard.
func (h *HandleCS) Guard() smr.Guard { return h.g }

func (h *HandleCS) restart() {
	h.g.Unpin()
	h.g.Pin()
}

// search descends to the leaf for key, recording gp, p and the update
// words seen.
func (h *HandleCS) search(key uint64) searchResult {
	t := h.t
retry:
	var res searchResult
	res.l = t.root
	if !h.g.Track(slotL, res.l) {
		h.restart()
		goto retry
	}
	for {
		nd := t.nodes.Deref(res.l)
		// Read the update word BEFORE the child edge: the descriptor
		// protocol relies on "update word unchanged ⟹ children
		// unchanged", which only holds for reads in this order.
		upd := nd.update.Load()
		w := childEdge(nd, key).Load()
		child := tagptr.RefOf(w)
		if child == 0 {
			return res
		}
		res.gp, res.gpupdate = res.p, res.pupdate
		res.p = res.l
		res.pupdate = upd
		h.g.Track(slotGP, res.gp)
		h.g.Track(slotP, res.p)
		res.l = child
		if !h.g.Track(slotL, res.l) {
			h.restart()
			goto retry
		}
	}
}

// Get returns the value stored under key.
func (h *HandleCS) Get(key uint64) (uint64, bool) {
	h.g.Pin()
	defer h.g.Unpin()
	res := h.search(key)
	nd := h.t.nodes.Deref(res.l)
	if nd.key == key {
		return nd.val, true
	}
	return 0, false
}

// help advances the operation published in update word w. Helping is
// best-effort: if the guard was neutralized the help is skipped and the
// caller's retry loop re-validates.
func (h *HandleCS) help(w tagptr.Word) {
	info := infoOf(w)
	if info == 0 || !h.g.Track(slotOp, info) {
		return
	}
	switch stateOf(w) {
	case stateIFlag:
		h.helpInsert(info)
	case stateDFlag:
		h.helpDelete(info) //nolint — best-effort helper path
	}
	// MARK words are permanent, so they cannot validate that their
	// descriptor is still unreclaimed; helping a marked parent happens
	// through its grandparent's (transient) DFLAG word instead.
}

// casChild swaps parent's child edge from old to new, keyed by new's key.
func (t *TreeCS) casChild(parent, old, new uint64) bool {
	pn := t.nodes.Deref(parent)
	key := t.nodes.Deref(new).key
	edge := childEdge(pn, key)
	return edge.CompareAndSwap(tagptr.Pack(old, 0), tagptr.Pack(new, 0))
}

// helpInsert completes an insert: splice in the new internal node, then
// unflag p. aborted=true means the guard was neutralized before the help
// could run; the owner must re-pin and retry, helpers may just drop it.
func (h *HandleCS) helpInsert(info uint64) (aborted bool) {
	t := h.t
	op := t.infos.Deref(info)
	if !h.g.Track(slotP, op.p) || !h.g.Track(slotSib, op.newInternal) {
		return true
	}
	t.casChild(op.p, op.l, op.newInternal)
	t.nodes.Deref(op.p).update.CompareAndSwap(
		packUpdate(info, stateIFlag), packUpdate(info, stateClean))
	return false
}

// helpDelete tries to mark the parent; on success the splice proceeds,
// otherwise the grandparent is unflagged (backtrack). done reports
// completion (as opposed to backtrack); aborted reports neutralization —
// the owner must re-pin and retry, helpers may drop it.
func (h *HandleCS) helpDelete(info uint64) (done, aborted bool) {
	t := h.t
	op := t.infos.Deref(info)
	// Copy the fields before any nested helping: helpUpdateOf re-targets
	// slotOp at a foreign descriptor, after which op must not be touched.
	gp, p, pupdate := op.gp, op.p, op.pupdate
	if !h.g.Track(slotP, p) || !h.g.Track(slotGP, gp) {
		return false, true
	}
	pn := t.nodes.Deref(p)
	marked := packUpdate(info, stateMark)
	if pn.update.CompareAndSwap(pupdate, marked) {
		// The mark displaced p's previous descriptor: retire it.
		if prev := infoOf(pupdate); prev != 0 {
			h.g.Retire(prev, t.infos)
		}
		return true, h.helpMarked(info)
	}
	if pn.update.Load() == marked {
		return true, h.helpMarked(info)
	}
	// Someone else owns p: help them, then back the delete out.
	h.helpUpdateOf(p)
	t.nodes.Deref(gp).update.CompareAndSwap(
		packUpdate(info, stateDFlag), packUpdate(info, stateClean))
	return false, false
}

// helpUpdateOf helps whatever operation currently owns node's update word.
// node must be tracked by the caller.
func (h *HandleCS) helpUpdateOf(node uint64) {
	w := h.t.nodes.Deref(node).update.Load()
	if stateOf(w) != stateClean {
		h.help(w)
	}
}

// helpMarked performs the physical deletion: splice p (and the victim
// leaf l) out of gp, retire both, and unflag gp. aborted reports
// neutralization before completion.
func (h *HandleCS) helpMarked(info uint64) (aborted bool) {
	t := h.t
	op := t.infos.Deref(info)
	if !h.g.Track(slotP, op.p) || !h.g.Track(slotGP, op.gp) || !h.g.Track(slotL, op.l) {
		return true
	}
	pn := t.nodes.Deref(op.p)
	// p is marked, so its children are frozen: pick the survivor.
	l := tagptr.RefOf(pn.left.Load())
	r := tagptr.RefOf(pn.right.Load())
	var other uint64
	switch op.l {
	case r:
		other = l
	case l:
		other = r
	default:
		// Defensive: the descriptor does not match p's children (only
		// possible through descriptor ABA); do not splice blindly.
		DbgMismatch.Add(1)
		return false
	}
	gpn := t.nodes.Deref(op.gp)
	edge := childEdge(gpn, t.nodes.Deref(op.l).key)
	// If the survivor is a leaf, promote a fresh copy: child-edge words
	// must never repeat, or a stale helper's child CAS could re-link a
	// detached subtree (leaf refs are the only values that can recur —
	// a deleted insert re-promotes the original leaf to the same edge).
	if !h.g.Track(slotSib, other) {
		return true
	}
	on := t.nodes.Deref(other)
	if tagptr.RefOf(on.left.Load()) == 0 {
		cp, cn := t.nodes.Alloc()
		cn.key, cn.val = on.key, on.val
		cn.update.Store(0)
		cn.left.Store(0)
		cn.right.Store(0)
		if edge.CompareAndSwap(tagptr.Pack(op.p, 0), tagptr.Pack(cp, 0)) {
			h.g.Retire(op.p, t.nodes)
			h.g.Retire(op.l, t.nodes)
			h.g.Retire(other, t.nodes)
		} else {
			t.nodes.Free(cp)
		}
	} else if edge.CompareAndSwap(tagptr.Pack(op.p, 0), tagptr.Pack(other, 0)) {
		h.g.Retire(op.p, t.nodes)
		h.g.Retire(op.l, t.nodes)
	}
	gpn.update.CompareAndSwap(packUpdate(info, stateDFlag), packUpdate(info, stateClean))
	return false
}

// flagCAS installs a new descriptor on node, retiring the one it
// replaces.
func (h *HandleCS) flagCAS(node uint64, old tagptr.Word, info uint64, state uint64) bool {
	if !h.t.nodes.Deref(node).update.CompareAndSwap(old, packUpdate(info, state)) {
		return false
	}
	if prev := infoOf(old); prev != 0 {
		h.g.Retire(prev, h.t.infos)
	}
	return true
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleCS) Insert(key, val uint64) bool {
	h.g.Pin()
	defer h.g.Unpin()
	t := h.t
	var newLeaf, newInternal, info uint64
	for {
		res := h.search(key)
		leaf := t.nodes.Deref(res.l)
		if leaf.key == key {
			if newLeaf != 0 {
				t.nodes.Free(newLeaf)
				t.nodes.Free(newInternal)
				t.infos.Free(info)
			}
			return false
		}
		if stateOf(res.pupdate) == stateMark {
			// p is being deleted: help through its parent's DFLAG, whose
			// word-validated descriptor is safe to follow.
			if res.gp != 0 && stateOf(res.gpupdate) == stateDFlag {
				h.help(res.gpupdate)
			}
			continue
		}
		if stateOf(res.pupdate) != stateClean {
			h.help(res.pupdate)
			continue
		}
		if newLeaf == 0 {
			newLeaf, _ = t.nodes.Alloc()
			newInternal, _ = t.nodes.Alloc()
			info, _ = t.infos.Alloc()
		}
		nl := t.nodes.Deref(newLeaf)
		nl.key, nl.val = key, val
		nl.update.Store(0)
		nl.left.Store(0)
		nl.right.Store(0)
		ni := t.nodes.Deref(newInternal)
		ni.update.Store(0)
		if key < leaf.key {
			ni.key = leaf.key
			ni.left.Store(tagptr.Pack(newLeaf, 0))
			ni.right.Store(tagptr.Pack(res.l, 0))
		} else {
			ni.key = key
			ni.left.Store(tagptr.Pack(res.l, 0))
			ni.right.Store(tagptr.Pack(newLeaf, 0))
		}
		op := t.infos.Deref(info)
		op.kind = kindInsert
		op.p, op.l, op.newInternal = res.p, res.l, newInternal
		op.gp, op.pupdate = 0, 0

		// Shield our descriptor before publishing it: once helpers can
		// complete the operation, a successor flag may retire it, and an
		// ejected owner is not covered by its epoch.
		h.g.Track(slotOp, info)
		if h.flagCAS(res.p, res.pupdate, info, stateIFlag) {
			iflagged := packUpdate(info, stateIFlag)
			for h.helpInsert(info) {
				// Neutralized mid-help: recover, then re-validate that our
				// descriptor is still installed before dereferencing it
				// again — helpers may have completed the op and a later
				// flag may have retired (and freed) the descriptor. res.p
				// has been shielded continuously since the search, so its
				// update word is always safe to read.
				h.restart()
				if !h.g.Track(slotOp, info) {
					continue // ejected again before the shield settled
				}
				if t.nodes.Deref(res.p).update.Load() != iflagged {
					return true // completed by helpers
				}
			}
			return true
		}
		h.helpUpdateOf(res.p)
	}
}

// Delete removes key, reporting whether it was present.
func (h *HandleCS) Delete(key uint64) bool {
	h.g.Pin()
	defer h.g.Unpin()
	t := h.t
	var info uint64
	for {
		res := h.search(key)
		if t.nodes.Deref(res.l).key != key {
			if info != 0 {
				t.infos.Free(info)
			}
			return false
		}
		if res.gp == 0 {
			// l's parent is the root's child structure; with sentinels a
			// real key always has a grandparent, so this cannot happen.
			return false
		}
		if stateOf(res.gpupdate) != stateClean {
			h.help(res.gpupdate)
			continue
		}
		if stateOf(res.pupdate) == stateMark {
			continue // p's deletion finished between the two reads
		}
		if stateOf(res.pupdate) != stateClean {
			h.help(res.pupdate)
			continue
		}
		if info == 0 {
			info, _ = t.infos.Alloc()
		}
		op := t.infos.Deref(info)
		op.kind = kindDelete
		op.gp, op.p, op.l = res.gp, res.p, res.l
		op.pupdate = res.pupdate
		op.newInternal = 0

		// Shield our descriptor before publishing it (see Insert).
		h.g.Track(slotOp, info)
		if h.flagCAS(res.gp, res.gpupdate, info, stateDFlag) {
			marked := packUpdate(info, stateMark)
			for {
				done, aborted := h.helpDelete(info)
				if aborted {
					// Neutralized mid-help: recover, then re-validate that
					// our descriptor is still installed on gp before
					// dereferencing it again. gp and p have been shielded
					// continuously since the search, so their update words
					// are safe to read; p's permanent MARK decides the
					// outcome if the operation already finished.
					h.restart()
					if !h.g.Track(slotOp, info) {
						continue
					}
					gpw := t.nodes.Deref(res.gp).update.Load()
					if infoOf(gpw) == info && stateOf(gpw) == stateDFlag {
						continue // still ours: keep helping
					}
					return t.nodes.Deref(res.p).update.Load() == marked
				}
				if done {
					return true
				}
				break // backtracked: retry from a fresh search
			}
			info = 0 // descriptor is published on gp; it is not ours to free
		} else {
			h.helpUpdateOf(res.gp)
		}
	}
}
