// Package efrbtree implements the non-blocking external binary search
// tree of Ellen, Fatourou, Ruppert and van Breugel (PODC 2010) —
// "EFRBTree" in the HP++ paper's evaluation.
//
// Every internal node carries an *update* word packing an operation state
// (CLEAN / IFLAG / DFLAG / MARK) with a reference to an operation
// descriptor (Info record). Updates flag the relevant nodes with their
// descriptor before mutating children, and any thread that encounters a
// flagged node *helps* the pending operation to completion by reading the
// descriptor — which is why the tree is compatible with original HP
// (Table 2): helpers validate their protections against the very same
// update words.
//
// Reclamation handles two object kinds: tree nodes (a delete's splice
// removes the victim leaf and its parent) and descriptors (retired when a
// node's update word moves on to a newer descriptor).
//
// Variants:
//
//	TreeCS  — critical-section schemes (EBR, PEBR, NR)
//	TreeHP  — original hazard pointers
//	TreeHPP — HP++ (TryUnlink at the splice; descriptors via the
//	          backward-compatible Retire path, the hybrid mode of §4.2)
//
// RC is omitted exactly as in the paper: descriptors form reference
// cycles that counting cannot collect without weak references.
package efrbtree

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// Sentinel keys; user keys must be smaller than Inf1.
const (
	Inf1 = ^uint64(0) - 1
	Inf2 = ^uint64(0)
)

// Update-word states, stored in the low tag bits of the word.
const (
	stateClean = 0
	stateIFlag = 1
	stateDFlag = 2
	stateMark  = 3
	stateMask  = 3
)

// Node is a tree node; leaves have both children nil and a clean update
// word forever.
type Node struct {
	update atomic.Uint64 // Info ref<<3 | state
	left   atomic.Uint64
	right  atomic.Uint64
	key    uint64
	val    uint64
}

// Info is an operation descriptor: an IInfo for inserts (p, l,
// newInternal) or a DInfo for deletes (gp, p, l, pupdate).
type Info struct {
	kind        uint32 // 1 = insert, 2 = delete
	gp          uint64
	p           uint64
	l           uint64
	newInternal uint64
	pupdate     uint64 // update word of p at the delete's search
}

const (
	kindInsert = 1
	kindDelete = 2
)

// NodePool allocates tree nodes and implements core.Invalidator.
type NodePool struct {
	*arena.Pool[Node]
}

// NewNodePool creates a node pool.
func NewNodePool(mode arena.Mode) NodePool {
	return NodePool{arena.NewPool[Node]("efrb-node", mode)}
}

// Invalidate sets the Invalid bit on the node's left word (plain store;
// spliced-out nodes are frozen by their MARK/flag states).
func (p NodePool) Invalidate(ref uint64) {
	n := p.Deref(ref)
	n.left.Store(n.left.Load() | tagptr.Invalid)
}

// InfoPool allocates descriptors.
type InfoPool struct {
	*arena.Pool[Info]
}

// NewInfoPool creates a descriptor pool.
func NewInfoPool(mode arena.Mode) InfoPool {
	return InfoPool{arena.NewPool[Info]("efrb-info", mode)}
}

// stateOf extracts the operation state from an update word.
func stateOf(w tagptr.Word) uint64 { return w & stateMask }

// infoOf extracts the descriptor reference from an update word.
func infoOf(w tagptr.Word) uint64 { return w >> 3 }

// packUpdate builds an update word.
func packUpdate(info uint64, state uint64) tagptr.Word { return info<<3 | state }

// childEdge returns the edge of nd a search for key follows.
func childEdge(nd *Node, key uint64) *atomic.Uint64 {
	if key < nd.key {
		return &nd.left
	}
	return &nd.right
}

// newTree allocates the sentinel skeleton: root(Inf2) with leaves Inf1
// and Inf2. The root can never be flagged for deletion (no grandparent),
// so it is permanent.
func newTree(pool NodePool) uint64 {
	l1, _ := pool.Alloc()
	n1 := pool.Deref(l1)
	n1.key, n1.val = Inf1, 0
	n1.update.Store(0)
	n1.left.Store(0)
	n1.right.Store(0)

	l2, _ := pool.Alloc()
	n2 := pool.Deref(l2)
	n2.key, n2.val = Inf2, 0
	n2.update.Store(0)
	n2.left.Store(0)
	n2.right.Store(0)

	r, _ := pool.Alloc()
	rn := pool.Deref(r)
	rn.key = Inf2
	rn.update.Store(0)
	rn.left.Store(tagptr.Pack(l1, 0))
	rn.right.Store(tagptr.Pack(l2, 0))
	return r
}

// DbgMismatch counts hits of helpMarked's defensive descriptor/children
// mismatch branch. It must stay zero in every legitimate execution (see
// TestNoDescriptorMismatch); a nonzero value indicates descriptor ABA.
var DbgMismatch atomic.Int64

// edgeField is the atomic child-edge word type.
type edgeField = atomic.Uint64

// searchResult is the (gp, p, l) triple of the EFRB search with the
// update words observed on the way down.
type searchResult struct {
	gp       uint64
	p        uint64
	l        uint64
	pupdate  uint64
	gpupdate uint64
}
