package efrbtree

import (
	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/smr"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// TreeHPP is the EFRB tree under HP++, demonstrating the hybrid mode of
// §4.2: tree nodes removed by the delete splice go through TryUnlink
// (frontier = the surviving sibling subtree; invalidation on the left
// word), while descriptors — whose unreachability is already validated by
// the update-word protocol — use the backward-compatible Retire path.
// Search protections use TryProtect, which fails only when the source
// node has been invalidated, never merely because an edge moved.
type TreeHPP struct {
	nodes NodePool
	infos InfoPool
	root  uint64
}

// NewTreeHPP creates a tree (with sentinels) over the two pools.
func NewTreeHPP(nodes NodePool, infos InfoPool) *TreeHPP {
	return &TreeHPP{nodes: nodes, infos: infos, root: newTree(nodes)}
}

// NewHandleHPP returns a per-worker handle.
func (t *TreeHPP) NewHandleHPP(dom *core.Domain) *HandleHPP {
	return &HandleHPP{t: t, h: dom.NewThread(hpSlots)}
}

// HandleHPP is a per-worker handle; not safe for concurrent use.
type HandleHPP struct {
	t *TreeHPP
	h *core.Thread
}

// Thread exposes the underlying HP++ thread.
func (h *HandleHPP) Thread() *core.Thread { return h.h }

// search descends with TryProtect: a moved edge just re-routes, and only
// an invalidated source forces a restart.
func (h *HandleHPP) search(key uint64) searchResult {
	t := h.t
retry:
	var res searchResult
	res.l = t.root
	h.h.Protect(slotL, res.l)
	var nd *Node
	for {
		nd = t.nodes.Deref(res.l)
		// Update word first: "unchanged update ⟹ unchanged children"
		// only holds for this read order.
		upd := nd.update.Load()
		edge := childEdge(nd, key)
		child := tagptr.RefOf(edge.Load())
		if !h.h.TryProtect(slotSib, &child, &nd.left, edge) {
			goto retry
		}
		if child == 0 {
			return res
		}
		res.gp, res.gpupdate = res.p, res.pupdate
		res.p = res.l
		res.pupdate = upd
		h.h.Swap(slotGP, slotP)
		h.h.Swap(slotP, slotL)
		res.l = child
		h.h.Swap(slotL, slotSib)
	}
}

// protectInfo protects the descriptor currently installed on node and
// returns the stable update word (node must be protected by the caller).
// Descriptor validation is the same over-approximation as under HP.
func (h *HandleHPP) protectInfo(slot int, node uint64) tagptr.Word {
	u := &h.t.nodes.Deref(node).update
	for {
		w := u.Load()
		info := infoOf(w)
		if info == 0 {
			return w
		}
		h.h.Protect(slot, info)
		if u.Load() == w {
			return w
		}
	}
}

// protectWordInfo protects the descriptor referenced by the previously
// read update word w of node and reports whether node still carries w.
// Using the search-time word (not a fresh read) preserves the protocol's
// "word unchanged since the child was read" invariant.
func (h *HandleHPP) protectWordInfo(slot int, node uint64, w tagptr.Word) bool {
	if info := infoOf(w); info != 0 {
		h.h.Protect(slot, info)
	}
	return h.t.nodes.Deref(node).update.Load() == w
}

// Get returns the value stored under key.
func (h *HandleHPP) Get(key uint64) (uint64, bool) {
	defer h.h.ClearAll()
	res := h.search(key)
	nd := h.t.nodes.Deref(res.l)
	if nd.key == key {
		return nd.val, true
	}
	return 0, false
}

// help advances the operation in update word w (descriptor protected in
// slotOp by the caller).
func (h *HandleHPP) help(w tagptr.Word) {
	info := infoOf(w)
	if info == 0 {
		return
	}
	switch stateOf(w) {
	case stateIFlag:
		h.helpInsert(info)
	case stateDFlag:
		h.helpDelete(info, false)
	}
	// MARK words are permanent, so they cannot validate that their
	// descriptor is still unreclaimed; helping a marked parent happens
	// through its grandparent's (transient) DFLAG word instead.
}

func (h *HandleHPP) protectNodeWhileFlagged(slot int, ref, owner uint64, w tagptr.Word) bool {
	h.h.Protect(slot, ref)
	return h.t.nodes.Deref(owner).update.Load() == w
}

// helpInsert completes an insert (descriptor protected in slotOp).
func (h *HandleHPP) helpInsert(info uint64) {
	t := h.t
	op := t.infos.Deref(info)
	p, l, newInternal := op.p, op.l, op.newInternal
	flagged := packUpdate(info, stateIFlag)
	if !h.protectNodeWhileFlagged(slotP, p, p, flagged) {
		return
	}
	if !h.protectNodeWhileFlagged(slotSib, newInternal, p, flagged) {
		return
	}
	pn := t.nodes.Deref(p)
	key := t.nodes.Deref(newInternal).key
	childEdge(pn, key).CompareAndSwap(tagptr.Pack(l, 0), tagptr.Pack(newInternal, 0))
	pn.update.CompareAndSwap(flagged, packUpdate(info, stateClean))
}

func (h *HandleHPP) pReachable(gpn *Node, p uint64, w tagptr.Word) (reachable, valid bool) {
	r := gpn.left.Load() == tagptr.Pack(p, 0) || gpn.right.Load() == tagptr.Pack(p, 0)
	if gpn.update.Load() != w {
		return false, false
	}
	return r, true
}

// helpDelete drives a delete (descriptor protected in slotOp); see the
// HP variant for the validation discipline — identical here, since these
// over-approximations imply HP++'s validation (§4.2).
func (h *HandleHPP) helpDelete(info uint64, owner bool) bool {
	t := h.t
	op := t.infos.Deref(info)
	gp, p, pupdate := op.gp, op.p, op.pupdate
	dflagged := packUpdate(info, stateDFlag)
	marked := packUpdate(info, stateMark)

	if !h.protectNodeWhileFlagged(slotGP, gp, gp, dflagged) {
		if owner {
			return t.nodes.Deref(p).update.Load() == marked
		}
		return false
	}
	gpn := t.nodes.Deref(gp)
	h.h.Protect(slotP, p)
	reachable, valid := h.pReachable(gpn, p, dflagged)
	if !valid {
		if owner {
			return t.nodes.Deref(p).update.Load() == marked
		}
		return false
	}
	if !reachable {
		gpn.update.CompareAndSwap(dflagged, packUpdate(info, stateClean))
		return true
	}
	pn := t.nodes.Deref(p)
	w := pn.update.Load()
	for {
		if w == marked {
			h.helpMarked(info)
			return true
		}
		if w != pupdate {
			break
		}
		if pn.update.CompareAndSwap(pupdate, marked) {
			// The mark displaced p's previous descriptor: retire it.
			if prev := infoOf(pupdate); prev != 0 {
				h.h.Retire(prev, t.infos)
			}
			h.helpMarked(info)
			return true
		}
		w = pn.update.Load()
	}
	if stateOf(w) != stateMark {
		fw := h.protectInfo(slotPOp, p)
		if stateOf(fw) != stateClean && stateOf(fw) != stateMark {
			h.h.Protect(slotOp, infoOf(fw))
			h.help(fw)
		}
	}
	gpn.update.CompareAndSwap(dflagged, packUpdate(info, stateClean))
	return false
}

// helpMarked splices p and the victim leaf out of gp with a TryUnlink:
// the frontier is the surviving subtree's root, and both removed nodes
// are invalidated before reclamation.
func (h *HandleHPP) helpMarked(info uint64) {
	t := h.t
	op := t.infos.Deref(info)
	gp, p, l := op.gp, op.p, op.l
	dflagged := packUpdate(info, stateDFlag)
	if !h.protectNodeWhileFlagged(slotGP, gp, gp, dflagged) {
		return
	}
	gpn := t.nodes.Deref(gp)
	h.h.Protect(slotP, p)
	var edge *edgeField
	switch {
	case gpn.left.Load() == tagptr.Pack(p, 0):
		edge = &gpn.left
	case gpn.right.Load() == tagptr.Pack(p, 0):
		edge = &gpn.right
	}
	if gpn.update.Load() != dflagged {
		return
	}
	if edge == nil {
		gpn.update.CompareAndSwap(dflagged, packUpdate(info, stateClean))
		return
	}
	pn := t.nodes.Deref(p)
	lc := tagptr.RefOf(pn.left.Load())
	rc := tagptr.RefOf(pn.right.Load())
	var other uint64
	switch l {
	case rc:
		other = lc
	case lc:
		other = rc
	default:
		return
	}
	pool := t.nodes
	// Promote a fresh copy when the survivor is a leaf (see the CS
	// variant: child-edge words must never repeat). The original leaf
	// joins the unlinked batch; the frontier still protects it for
	// traversers stepping off the detached p.
	h.h.Protect(slotSib, other)
	if gpn.update.Load() != dflagged {
		return
	}
	on := t.nodes.Deref(other)
	if tagptr.RefOf(on.left.Load()) == 0 {
		cp, cn := t.nodes.Alloc()
		cn.key, cn.val = on.key, on.val
		cn.update.Store(0)
		cn.left.Store(0)
		cn.right.Store(0)
		ok := h.h.TryUnlink([]uint64{other}, func() ([]smr.Retired, bool) {
			if !edge.CompareAndSwap(tagptr.Pack(p, 0), tagptr.Pack(cp, 0)) {
				return nil, false
			}
			return []smr.Retired{{Ref: p, D: pool}, {Ref: l, D: pool}, {Ref: other, D: pool}}, true
		}, pool)
		if !ok {
			t.nodes.Free(cp)
		}
	} else {
		h.h.TryUnlink([]uint64{other}, func() ([]smr.Retired, bool) {
			if !edge.CompareAndSwap(tagptr.Pack(p, 0), tagptr.Pack(other, 0)) {
				return nil, false
			}
			return []smr.Retired{{Ref: p, D: pool}, {Ref: l, D: pool}}, true
		}, pool)
	}
	gpn.update.CompareAndSwap(dflagged, packUpdate(info, stateClean))
}

// flagCAS installs a new descriptor, retiring the one it replaces via the
// hybrid (original-HP) path.
func (h *HandleHPP) flagCAS(node uint64, old tagptr.Word, info uint64, state uint64) bool {
	if !h.t.nodes.Deref(node).update.CompareAndSwap(old, packUpdate(info, state)) {
		return false
	}
	if prev := infoOf(old); prev != 0 {
		h.h.Retire(prev, h.t.infos)
	}
	return true
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleHPP) Insert(key, val uint64) bool {
	defer h.h.ClearAll()
	t := h.t
	var newLeaf, newInternal, info uint64
	for {
		res := h.search(key)
		leaf := t.nodes.Deref(res.l)
		if leaf.key == key {
			if newLeaf != 0 {
				t.nodes.Free(newLeaf)
				t.nodes.Free(newInternal)
				t.infos.Free(info)
			}
			return false
		}
		pupdate := res.pupdate
		if !h.protectWordInfo(slotOp, res.p, pupdate) {
			continue // p changed since the search: retry
		}
		if stateOf(pupdate) == stateMark {
			// p is being deleted: help through its parent's DFLAG.
			if res.gp != 0 && h.protectWordInfo(slotOp, res.gp, res.gpupdate) &&
				stateOf(res.gpupdate) == stateDFlag {
				h.help(res.gpupdate)
			}
			continue
		}
		if stateOf(pupdate) != stateClean {
			h.help(pupdate)
			continue
		}
		if newLeaf == 0 {
			newLeaf, _ = t.nodes.Alloc()
			newInternal, _ = t.nodes.Alloc()
			info, _ = t.infos.Alloc()
		}
		nl := t.nodes.Deref(newLeaf)
		nl.key, nl.val = key, val
		nl.update.Store(0)
		nl.left.Store(0)
		nl.right.Store(0)
		ni := t.nodes.Deref(newInternal)
		ni.update.Store(0)
		if key < leaf.key {
			ni.key = leaf.key
			ni.left.Store(tagptr.Pack(newLeaf, 0))
			ni.right.Store(tagptr.Pack(res.l, 0))
		} else {
			ni.key = key
			ni.left.Store(tagptr.Pack(res.l, 0))
			ni.right.Store(tagptr.Pack(newLeaf, 0))
		}
		op := t.infos.Deref(info)
		op.kind = kindInsert
		op.p, op.l, op.newInternal = res.p, res.l, newInternal
		op.gp, op.pupdate = 0, 0

		h.h.Protect(slotOp, info)
		if h.flagCAS(res.p, pupdate, info, stateIFlag) {
			h.helpInsert(info)
			return true
		}
		uw := h.protectInfo(slotOp, res.p)
		if stateOf(uw) != stateClean {
			h.help(uw)
		}
	}
}

// Delete removes key, reporting whether it was present.
func (h *HandleHPP) Delete(key uint64) bool {
	defer h.h.ClearAll()
	t := h.t
	var info uint64
	for {
		res := h.search(key)
		if t.nodes.Deref(res.l).key != key {
			if info != 0 {
				t.infos.Free(info)
			}
			return false
		}
		if res.gp == 0 {
			return false
		}
		gpupdate := res.gpupdate
		if !h.protectWordInfo(slotOp, res.gp, gpupdate) {
			continue // gp changed since the search: retry
		}
		if stateOf(gpupdate) != stateClean {
			h.help(gpupdate)
			continue
		}
		pupdate := res.pupdate
		if !h.protectWordInfo(slotPOp, res.p, pupdate) {
			continue // p changed since the search: retry
		}
		if stateOf(pupdate) == stateMark {
			continue // p is mid-deletion; its gp was observed clean: retry
		}
		if stateOf(pupdate) != stateClean {
			h.h.Protect(slotOp, infoOf(pupdate))
			h.help(pupdate)
			continue
		}
		if info == 0 {
			info, _ = t.infos.Alloc()
		}
		op := t.infos.Deref(info)
		op.kind = kindDelete
		op.gp, op.p, op.l = res.gp, res.p, res.l
		op.pupdate = pupdate
		op.newInternal = 0

		h.h.Protect(slotOp, info)
		if h.flagCAS(res.gp, gpupdate, info, stateDFlag) {
			if h.helpDelete(info, true) {
				return true
			}
			info = 0
		} else {
			uw := h.protectInfo(slotOp, res.gp)
			if stateOf(uw) != stateClean {
				h.help(uw)
			}
		}
	}
}
