package efrbtree

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/ebr"
	"github.com/gosmr/gosmr/internal/hp"
	"github.com/gosmr/gosmr/internal/nr"
	"github.com/gosmr/gosmr/internal/pebr"
	"github.com/gosmr/gosmr/internal/tagptr"
)

type handle interface {
	Get(key uint64) (uint64, bool)
	Insert(key, val uint64) bool
	Delete(key uint64) bool
}

type variant struct {
	name string
	mk   func(mode arena.Mode) (mkHandle func() handle, finish func())
}

func variants() []variant {
	return []variant{
		{"CS/EBR", func(mode arena.Mode) (func() handle, func()) {
			dom := ebr.NewDomain()
			t := NewTreeCS(NewNodePool(mode), NewInfoPool(mode))
			var hs []*HandleCS
			return func() handle {
					h := t.NewHandleCS(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Guard().(*ebr.Guard).Drain()
					}
				}
		}},
		{"CS/PEBR", func(mode arena.Mode) (func() handle, func()) {
			dom := pebr.NewDomain()
			t := NewTreeCS(NewNodePool(mode), NewInfoPool(mode))
			var hs []*HandleCS
			return func() handle {
					h := t.NewHandleCS(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Guard().(*pebr.Guard).ClearShields()
					}
					for i := 0; i < 8; i++ {
						for _, h := range hs {
							h.Guard().(*pebr.Guard).Collect()
						}
					}
				}
		}},
		{"CS/NR", func(mode arena.Mode) (func() handle, func()) {
			dom := nr.NewDomain()
			t := NewTreeCS(NewNodePool(mode), NewInfoPool(mode))
			return func() handle { return t.NewHandleCS(dom) }, func() {}
		}},
		{"HP", func(mode arena.Mode) (func() handle, func()) {
			dom := hp.NewDomain()
			t := NewTreeHP(NewNodePool(mode), NewInfoPool(mode))
			var hs []*HandleHP
			return func() handle {
					h := t.NewHandleHP(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Thread().Finish()
					}
					dom.NewThread(0).Reclaim()
				}
		}},
		{"HPP", func(mode arena.Mode) (func() handle, func()) {
			dom := core.NewDomain(core.Options{})
			t := NewTreeHPP(NewNodePool(mode), NewInfoPool(mode))
			var hs []*HandleHPP
			return func() handle {
					h := t.NewHandleHPP(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Thread().Finish()
					}
					dom.NewThread(0).Reclaim()
				}
		}},
	}
}

func TestSequentialModel(t *testing.T) {
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			mk, finish := v.mk(arena.ModeDetect)
			h := mk()
			defer finish()
			model := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(19))
			for i := 0; i < 6000; i++ {
				k := uint64(rng.Intn(128))
				switch rng.Intn(3) {
				case 0:
					_, in := model[k]
					if h.Insert(k, k+7000) == in {
						t.Fatalf("op %d: Insert(%d) disagreed with model", i, k)
					}
					model[k] = k + 7000
				case 1:
					_, in := model[k]
					if h.Delete(k) != in {
						t.Fatalf("op %d: Delete(%d) disagreed with model", i, k)
					}
					delete(model, k)
				default:
					val, ok := h.Get(k)
					mv, in := model[k]
					if ok != in || (ok && val != mv) {
						t.Fatalf("op %d: Get(%d) = (%d,%v) want (%d,%v)", i, k, val, ok, mv, in)
					}
				}
			}
		})
	}
}

func TestQuickModelEquivalence(t *testing.T) {
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			prop := func(ops []uint16) bool {
				mk, finish := v.mk(arena.ModeDetect)
				h := mk()
				defer finish()
				model := map[uint64]uint64{}
				for _, op := range ops {
					k := uint64(op % 64)
					switch (op / 64) % 3 {
					case 0:
						_, in := model[k]
						if h.Insert(k, k) == in {
							return false
						}
						model[k] = k
					case 1:
						_, in := model[k]
						if h.Delete(k) != in {
							return false
						}
						delete(model, k)
					default:
						_, ok := h.Get(k)
						if _, in := model[k]; ok != in {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConcurrentStress(t *testing.T) {
	const (
		workers = 4
		iters   = 6000
		keys    = 64
	)
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			mk, finish := v.mk(arena.ModeDetect)
			handles := make([]handle, workers)
			for i := range handles {
				handles[i] = mk()
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(h handle, seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < iters; i++ {
						k := uint64(rng.Intn(keys))
						switch rng.Intn(4) {
						case 0:
							h.Insert(k, k)
						case 1:
							h.Delete(k)
						default:
							h.Get(k)
						}
					}
				}(handles[w], int64(w+31))
			}
			wg.Wait()
			finish()
		})
	}
}

func TestDisjointKeysLinearizable(t *testing.T) {
	const workers = 4
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			mk, finish := v.mk(arena.ModeDetect)
			handles := make([]handle, workers)
			for i := range handles {
				handles[i] = mk()
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(h handle, base uint64) {
					defer wg.Done()
					model := map[uint64]uint64{}
					rng := rand.New(rand.NewSource(int64(base + 7)))
					for i := 0; i < 2500; i++ {
						k := base + uint64(rng.Intn(24))
						switch rng.Intn(3) {
						case 0:
							_, in := model[k]
							if h.Insert(k, k) == in {
								t.Errorf("insert(%d) disagreed with private model", k)
								return
							}
							model[k] = k
						case 1:
							_, in := model[k]
							if h.Delete(k) != in {
								t.Errorf("delete(%d) disagreed with private model", k)
								return
							}
							delete(model, k)
						default:
							_, ok := h.Get(k)
							if _, in := model[k]; ok != in {
								t.Errorf("get(%d) disagreed with private model", k)
								return
							}
						}
					}
				}(handles[w], uint64(w)*1000)
			}
			wg.Wait()
			finish()
		})
	}
}

// TestNoNodeLeaksAfterDrain: after deleting every key, only the three
// sentinel nodes remain live in the node pool.
func TestNoNodeLeaksAfterDrain(t *testing.T) {
	dom := ebr.NewDomain()
	np := NewNodePool(arena.ModeDetect)
	ip := NewInfoPool(arena.ModeDetect)
	tr := NewTreeCS(np, ip)
	h := tr.NewHandleCS(dom)
	const n = 1000
	for k := uint64(0); k < n; k++ {
		if !h.Insert(k, k) {
			t.Fatalf("insert(%d) failed", k)
		}
	}
	for k := uint64(0); k < n; k++ {
		if !h.Delete(k) {
			t.Fatalf("delete(%d) failed", k)
		}
	}
	h.Guard().(*ebr.Guard).Drain()
	if live := np.Stats().Live; live != 3 {
		t.Fatalf("node pool live = %d, want 3 sentinels", live)
	}
	// Descriptors: each node carries at most one live descriptor in its
	// update word; after the drain only the root's last descriptor (if
	// any) plus descriptors still referenced by live update words remain.
	if live := ip.Stats().Live; live > 2 {
		t.Fatalf("info pool live = %d, want <= 2", live)
	}
}

// TestExternalShape checks the external-BST invariants after a workload.
func TestExternalShape(t *testing.T) {
	dom := ebr.NewDomain()
	np := NewNodePool(arena.ModeDetect)
	tr := NewTreeCS(np, NewInfoPool(arena.ModeDetect))
	h := tr.NewHandleCS(dom)
	keys := []uint64{10, 4, 16, 2, 8, 12, 20, 6}
	for _, k := range keys {
		h.Insert(k, k)
	}
	h.Delete(4)
	h.Delete(20)
	var walk func(ref uint64) []uint64
	walk = func(ref uint64) []uint64 {
		nd := np.Pool.Deref(ref)
		l := tagptr.RefOf(nd.left.Load())
		r := tagptr.RefOf(nd.right.Load())
		if (l == 0) != (r == 0) {
			t.Fatalf("node %d has exactly one child", ref)
		}
		if l == 0 {
			return []uint64{nd.key}
		}
		return append(walk(l), walk(r)...)
	}
	leaves := walk(tr.root)
	for i := 1; i < len(leaves); i++ {
		if leaves[i-1] >= leaves[i] {
			t.Fatalf("leaves not strictly sorted: %v", leaves)
		}
	}
	want := map[uint64]bool{10: true, 16: true, 2: true, 8: true, 12: true, 6: true}
	for k := range want {
		if _, ok := h.Get(k); !ok {
			t.Fatalf("key %d lost", k)
		}
	}
	for _, k := range []uint64{4, 20} {
		if _, ok := h.Get(k); ok {
			t.Fatalf("deleted key %d still present", k)
		}
	}
}

// TestNoDescriptorMismatch stresses the HP variant and asserts that the
// defensive descriptor/children mismatch branch in helpMarked never fires:
// with the update-word read ordering of search, a successful mark implies
// the descriptor's leaf is still one of p's children.
func TestNoDescriptorMismatch(t *testing.T) {
	DbgMismatch.Store(0)
	dom := hp.NewDomain()
	tr := NewTreeHP(NewNodePool(arena.ModeDetect), NewInfoPool(arena.ModeDetect))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := tr.NewHandleHP(dom)
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				k := uint64(rng.Intn(32))
				switch rng.Intn(3) {
				case 0:
					h.Insert(k, k)
				case 1:
					h.Delete(k)
				default:
					h.Get(k)
				}
			}
		}(int64(w + 3))
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("stress hung; mismatches=%d", DbgMismatch.Load())
	}
	if n := DbgMismatch.Load(); n != 0 {
		t.Fatalf("descriptor/children mismatches observed: %d", n)
	}
}
