package hhslist

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/smr"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// Hazard slot indices (Algorithm 4: hp_prev, hp_cur, hp_anchor,
// hp_anchor_next).
const (
	hpPrev = iota
	hpCur
	hpAnchor
	hpAnchorNext
	hppSlots
)

// ListHPP is Harris's list under HP++ — a direct transcription of the
// paper's Algorithm 4.
type ListHPP struct {
	pool Pool
	head atomic.Uint64
}

// NewListHPP creates an empty list over pool.
func NewListHPP(pool Pool) *ListHPP { return &ListHPP{pool: pool} }

// linkOf returns the link to traverse from: the list head for start 0,
// otherwise the next field of the start node. A non-zero start must be a
// sentinel — never marked, unlinked, invalidated, or freed — which is why
// the first TryProtect below may pass a nil srcInvalid for it exactly as
// it does for the head.
func (l *ListHPP) linkOf(start uint64) *atomic.Uint64 {
	if start == 0 {
		return &l.head
	}
	return &l.pool.Deref(start).next
}

// NewHandleHPP returns a per-worker handle.
func (l *ListHPP) NewHandleHPP(dom *core.Domain) *HandleHPP {
	return &HandleHPP{l: l, t: dom.NewThread(hppSlots)}
}

// HandleHPP is a per-worker handle; not safe for concurrent use.
type HandleHPP struct {
	l *ListHPP
	t *core.Thread
}

// Thread exposes the underlying HP++ thread.
func (h *HandleHPP) Thread() *core.Thread { return h.t }

// Rebind points the handle at another list sharing the same pool and
// domain; used by bucket containers (internal/ds/hashmap).
func (h *HandleHPP) Rebind(l *ListHPP) *HandleHPP { h.l = l; return h }

type posHPP struct {
	prevLink *atomic.Uint64
	cur      uint64
	found    bool
}

// trySearch is TRYSEARCH of Algorithm 4: traverse optimistically through
// marked chains, keeping anchor / anchor_next protected hand-over-hand,
// and unlink the chain immediately preceding the destination with one
// TryUnlink. ok=false means a protection failed or an unlink raced; the
// caller must restart.
func (h *HandleHPP) trySearch(key, aux, start uint64) (posHPP, bool) {
	l, t := h.l, h.t
	prevLink := l.linkOf(start)
	var prevInv *atomic.Uint64 // head and sentinels are never invalidated
	prevRef := start
	cur := tagptr.RefOf(prevLink.Load())

	anchorRef := uint64(0)
	var anchorLink *atomic.Uint64
	anchorNext := uint64(0)
	found := false

	for {
		if cur == 0 {
			break
		}
		if !t.TryProtect(hpCur, &cur, prevInv, prevLink) {
			return posHPP{}, false
		}
		if cur == 0 {
			break
		}
		node := l.pool.Deref(cur)
		nextW := node.next.Load()
		next := tagptr.RefOf(nextW)
		if !tagptr.IsMarked(nextW) {
			if pairBefore(node.key, node.aux, key, aux) {
				prevRef, prevLink, prevInv = cur, &node.next, &node.next
				t.Swap(hpCur, hpPrev)
				anchorRef, anchorLink, anchorNext = 0, nil, 0
				cur = next
				continue
			}
			found = node.key == key && node.aux == aux
			break
		}
		// cur is logically deleted: step through it optimistically.
		if anchorLink == nil {
			// prev is the last unmarked node: it becomes the anchor and
			// inherits hp_prev's protection.
			anchorRef, anchorLink, anchorNext = prevRef, prevLink, cur
			t.Swap(hpAnchor, hpPrev)
		} else if anchorNext == prevRef {
			// prev is anchor's successor: preserve its protection so the
			// unlink CAS below cannot suffer ABA through slot reuse.
			t.Swap(hpAnchorNext, hpPrev)
		}
		prevRef, prevLink, prevInv = cur, &node.next, &node.next
		t.Swap(hpPrev, hpCur)
		cur = next
	}

	if anchorLink != nil {
		// Unlink the whole marked chain anchor_next .. cur with one CAS.
		// The frontier is cur: the unlinker protects it on behalf of
		// threads still traversing the chain.
		var frontier []uint64
		if cur != 0 {
			frontier = []uint64{cur}
		}
		aLink, aNext, target := anchorLink, anchorNext, cur
		pool := l.pool
		ok := t.TryUnlink(frontier, func() ([]smr.Retired, bool) {
			if !aLink.CompareAndSwap(tagptr.Pack(aNext, 0), tagptr.Pack(target, 0)) {
				return nil, false
			}
			var rs []smr.Retired
			for r := aNext; r != target; {
				rs = append(rs, smr.Retired{Ref: r, D: pool})
				r = tagptr.RefOf(pool.Deref(r).next.Load())
			}
			return rs, true
		}, pool)
		if !ok {
			return posHPP{}, false
		}
		prevLink = aLink // prev ← anchor (Algorithm 4 line 28)
		_ = anchorRef
	}
	if cur != 0 && tagptr.IsMarked(l.pool.Deref(cur).next.Load()) {
		return posHPP{}, false // line 30: destination got deleted; retry
	}
	return posHPP{prevLink: prevLink, cur: cur, found: found}, true
}

// Get is the Herlihy-Shavit read: it walks straight through marked nodes
// without helping. Under HP++ each hop needs a TryProtect, so it is
// lock-free rather than wait-free (§4.3 of the paper).
func (h *HandleHPP) Get(key uint64) (uint64, bool) { return h.GetFrom(0, key, 0) }

// GetFrom is Get entering the list at the sentinel start (0 = head) and
// matching the (key, aux) pair.
func (h *HandleHPP) GetFrom(start, key, aux uint64) (uint64, bool) {
	l, t := h.l, h.t
	defer t.ClearAll()
retry:
	prevLink := l.linkOf(start)
	var prevInv *atomic.Uint64
	cur := tagptr.RefOf(prevLink.Load())
	for {
		if cur == 0 {
			return 0, false
		}
		if !t.TryProtect(hpCur, &cur, prevInv, prevLink) {
			goto retry
		}
		if cur == 0 {
			return 0, false
		}
		node := l.pool.Deref(cur)
		nextW := node.next.Load()
		if !pairBefore(node.key, node.aux, key, aux) {
			if node.key == key && node.aux == aux && !tagptr.IsMarked(nextW) {
				return node.val, true
			}
			return 0, false
		}
		prevLink, prevInv = &node.next, &node.next
		t.Swap(hpCur, hpPrev)
		cur = tagptr.RefOf(nextW)
	}
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleHPP) Insert(key, val uint64) bool { return h.InsertFrom(0, key, 0, val) }

// InsertFrom is Insert entering the list at the sentinel start (0 = head)
// with the full (key, aux) ordering pair.
func (h *HandleHPP) InsertFrom(start, key, aux, val uint64) bool {
	defer h.t.ClearAll()
	for {
		pos, ok := h.trySearch(key, aux, start)
		if !ok {
			continue
		}
		if pos.found {
			return false
		}
		ref, n := h.l.pool.Alloc()
		n.key, n.aux, n.val = key, aux, val
		n.next.Store(tagptr.Pack(pos.cur, 0))
		if pos.prevLink.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(ref, 0)) {
			return true
		}
		h.l.pool.Free(ref)
	}
}

// EnsureFrom returns the node holding (key, aux=0), inserting it with a
// zero value if absent — the get-or-insert hook behind somap's dummy
// nodes. Insertion races converge on a single winner, so every caller
// sees the same ref. The returned node must be treated as a sentinel:
// callers must never Delete it, so the ref outlives the protections
// dropped by ClearAll on return.
func (h *HandleHPP) EnsureFrom(start, key uint64) uint64 {
	defer h.t.ClearAll()
	for {
		pos, ok := h.trySearch(key, 0, start)
		if !ok {
			continue
		}
		if pos.found {
			return pos.cur
		}
		ref, n := h.l.pool.Alloc()
		n.key, n.aux, n.val = key, 0, 0
		n.next.Store(tagptr.Pack(pos.cur, 0))
		if pos.prevLink.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(ref, 0)) {
			return ref
		}
		h.l.pool.Free(ref)
	}
}

// Delete removes key, reporting whether it was present.
func (h *HandleHPP) Delete(key uint64) bool { return h.DeleteFrom(0, key, 0) }

// DeleteFrom is Delete entering the list at the sentinel start (0 = head)
// and matching the (key, aux) pair.
func (h *HandleHPP) DeleteFrom(start, key, aux uint64) bool {
	defer h.t.ClearAll()
	for {
		pos, ok := h.trySearch(key, aux, start)
		if !ok {
			continue
		}
		if !pos.found {
			return false
		}
		node := h.l.pool.Deref(pos.cur)
		nextW := node.next.Load()
		if tagptr.IsMarked(nextW) {
			continue // someone else is deleting it; re-search decides
		}
		if !node.next.CompareAndSwap(nextW, tagptr.WithTag(nextW, tagptr.Mark)) {
			continue
		}
		// Logically deleted: attempt our own physical unlink; a failed
		// attempt is fine — some traversal's chain unlink will cover it.
		next := tagptr.RefOf(nextW)
		var frontier []uint64
		if next != 0 {
			frontier = []uint64{next}
		}
		prevLink, cur := pos.prevLink, pos.cur
		pool := h.l.pool
		h.t.TryUnlink(frontier, func() ([]smr.Retired, bool) {
			if prevLink.CompareAndSwap(tagptr.Pack(cur, 0), tagptr.Pack(next, 0)) {
				return []smr.Retired{{Ref: cur, D: pool}}, true
			}
			return nil, false
		}, pool)
		return true
	}
}
