package hhslist

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/rc"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// NodeRC is a counted list node.
type NodeRC struct {
	count atomic.Int64
	next  atomic.Uint64
	key   uint64
	val   uint64
}

// PoolRC allocates counted nodes and implements rc.Object.
type PoolRC struct {
	*arena.Pool[NodeRC]
}

// NewPoolRC creates a counted node pool.
func NewPoolRC(mode arena.Mode) PoolRC {
	return PoolRC{arena.NewPool[NodeRC]("hhslist-rc", mode)}
}

// IncCount adds a strong reference.
func (p PoolRC) IncCount(ref uint64) { p.Deref(ref).count.Add(1) }

// DecCount drops a strong reference and returns the new count.
func (p PoolRC) DecCount(ref uint64) int64 { return p.Deref(ref).count.Add(-1) }

// Trace reports the node's outgoing strong references.
func (p PoolRC) Trace(ref uint64, out []uint64) []uint64 {
	if nxt := tagptr.RefOf(p.Deref(ref).next.Load()); nxt != 0 {
		out = append(out, nxt)
	}
	return out
}

// ListRC is Harris's list under deferred reference counting. A chain
// unlink transfers one strong count to the frontier node and defers the
// decrement of the chain head; interior chain nodes are released
// transitively when the head's count reaches zero.
type ListRC struct {
	pool PoolRC
	head atomic.Uint64
}

// NewListRC creates an empty list over pool.
func NewListRC(pool PoolRC) *ListRC { return &ListRC{pool: pool} }

// NewHandleRC returns a per-worker handle.
func (l *ListRC) NewHandleRC(dom *rc.Domain) *HandleRC {
	return &HandleRC{l: l, g: dom.NewGuard(), dt: rc.NewDecTask(dom, l.pool)}
}

// HandleRC is a per-worker handle; not safe for concurrent use.
type HandleRC struct {
	l  *ListRC
	g  *rc.Guard
	dt *rc.DecTask
}

// Guard exposes the underlying guard.
func (h *HandleRC) Guard() *rc.Guard { return h.g }

// Rebind points the handle at another list sharing the same pool and
// domain; used by bucket containers (internal/ds/hashmap).
func (h *HandleRC) Rebind(l *ListRC) *HandleRC { h.l = l; return h }

func (h *HandleRC) incIfNonNil(ref uint64) {
	if ref != 0 {
		h.l.pool.IncCount(ref)
	}
}

func (h *HandleRC) decIfNonNil(ref uint64) {
	if ref != 0 {
		h.g.DeferDec(h.dt, ref)
	}
}

// search is the Harris traversal with anchor-based chain unlinking.
func (h *HandleRC) search(key uint64) posCS {
	l := h.l
retry:
	prevLink := &l.head
	cur := tagptr.RefOf(prevLink.Load())

	var anchorLink *atomic.Uint64
	anchorNext := uint64(0)
	found := false

	for {
		if cur == 0 {
			break
		}
		node := l.pool.Deref(cur)
		nextW := node.next.Load()
		next := tagptr.RefOf(nextW)
		if !tagptr.IsMarked(nextW) {
			if node.key < key {
				prevLink = &node.next
				anchorLink, anchorNext = nil, 0
				cur = next
				continue
			}
			found = node.key == key
			break
		}
		if anchorLink == nil {
			anchorLink, anchorNext = prevLink, cur
		}
		prevLink = &node.next
		cur = next
	}

	if anchorLink != nil {
		h.incIfNonNil(cur) // the anchor's new link to cur
		if !anchorLink.CompareAndSwap(tagptr.Pack(anchorNext, 0), tagptr.Pack(cur, 0)) {
			h.decIfNonNil(cur)
			goto retry
		}
		h.decIfNonNil(anchorNext) // anchor no longer points at the chain
		prevLink = anchorLink
	}
	if cur != 0 && tagptr.IsMarked(l.pool.Deref(cur).next.Load()) {
		goto retry
	}
	return posCS{prevLink: prevLink, cur: cur, found: found}
}

// Get is the wait-free read: marks ignored, no count traffic.
func (h *HandleRC) Get(key uint64) (uint64, bool) {
	h.g.Pin()
	defer h.g.Unpin()
	cur := tagptr.RefOf(h.l.head.Load())
	for cur != 0 {
		node := h.l.pool.Deref(cur)
		nextW := node.next.Load()
		if node.key >= key {
			if node.key == key && !tagptr.IsMarked(nextW) {
				return node.val, true
			}
			return 0, false
		}
		cur = tagptr.RefOf(nextW)
	}
	return 0, false
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleRC) Insert(key, val uint64) bool {
	h.g.Pin()
	defer h.g.Unpin()
	for {
		pos := h.search(key)
		if pos.found {
			return false
		}
		ref, n := h.l.pool.Alloc()
		n.key, n.val = key, val
		n.count.Store(1)
		n.next.Store(tagptr.Pack(pos.cur, 0))
		h.incIfNonNil(pos.cur)
		if pos.prevLink.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(ref, 0)) {
			h.decIfNonNil(pos.cur) // prev's old link to cur is gone
			return true
		}
		h.decIfNonNil(pos.cur)
		h.l.pool.Free(ref)
	}
}

// Delete removes key, reporting whether it was present.
func (h *HandleRC) Delete(key uint64) bool {
	h.g.Pin()
	defer h.g.Unpin()
	for {
		pos := h.search(key)
		if !pos.found {
			return false
		}
		node := h.l.pool.Deref(pos.cur)
		nextW := node.next.Load()
		if tagptr.IsMarked(nextW) {
			continue
		}
		if !node.next.CompareAndSwap(nextW, tagptr.WithTag(nextW, tagptr.Mark)) {
			continue
		}
		next := tagptr.RefOf(nextW)
		h.incIfNonNil(next)
		if pos.prevLink.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(next, 0)) {
			h.g.DeferDec(h.dt, pos.cur)
		} else {
			h.decIfNonNil(next)
		}
		return true
	}
}
