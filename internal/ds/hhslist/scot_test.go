package hhslist

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/hp"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// parkNthDeref arms a counting trap on the pool: the goroutine performing
// the nth deref parks until release is called. The caller must guarantee
// the target goroutine is the only one deref-ing between arm and park,
// and clear the hook after the park before resuming mutators.
func parkNthDeref(p Pool, n int64) (parked <-chan struct{}, release func()) {
	pk := make(chan struct{})
	rl := make(chan struct{})
	var cnt atomic.Int64
	p.SetDerefHook(func(arena.Ref) {
		if cnt.Add(1) == n {
			close(pk)
			<-rl
		}
	})
	var released atomic.Bool
	return pk, func() {
		if released.CompareAndSwap(false, true) {
			close(rl)
		}
	}
}

// TestScotChainUnlinkSingleCAS is the ListCS test of the same shape run
// against the SCOT list: a hand-marked chain of five nodes must be
// detached by ONE anchor CAS during the next search, and the retire-walk
// must retire exactly the chain.
func TestScotChainUnlinkSingleCAS(t *testing.T) {
	dom := hp.NewDomain()
	p := NewPool(arena.ModeDetect)
	l := NewListSCOT(p)
	h := l.NewHandleSCOT(dom)

	for k := uint64(0); k < 10; k++ {
		h.Insert(k, k)
	}
	refs := map[uint64]uint64{} // key -> ref
	cur := tagptr.RefOf(l.head.Load())
	for cur != 0 {
		refs[p.Key(cur)] = cur
		cur = tagptr.RefOf(p.NextWord(cur))
	}
	// Logically delete 3..7 by hand: five stalled deleters that marked but
	// never unlinked.
	for k := uint64(3); k <= 7; k++ {
		n := p.Pool.Deref(refs[k])
		w := n.next.Load()
		if !n.next.CompareAndSwap(w, tagptr.WithTag(w, tagptr.Mark)) {
			t.Fatalf("marking %d failed", k)
		}
	}

	// One search to 8 (Insert finds it present) must unlink all five at
	// once: node 2's next jumps straight to node 8.
	if h.Insert(8, 0) {
		t.Fatal("insert(8) succeeded over an existing key")
	}
	if got := tagptr.RefOf(p.NextWord(refs[2])); got != refs[8] {
		t.Fatalf("node 2 points at ref %d, want node 8 (ref %d) — chain not unlinked at once", got, refs[8])
	}
	for k := uint64(3); k <= 7; k++ {
		if _, ok := h.Get(k); ok {
			t.Fatalf("get(%d) found a logically deleted key", k)
		}
	}
	// The unique detacher retired exactly the chain: after a drain the
	// five chain nodes are freed and the five survivors live.
	h.Thread().Finish()
	dom.NewThread(0).Reclaim()
	if live := p.Stats().Live; live != 5 {
		t.Fatalf("live nodes = %d after drain, want 5", live)
	}
	if st := p.Stats(); st.UAF != 0 || st.DoubleFree != 0 {
		t.Fatalf("memory violations: uaf=%d doublefree=%d", st.UAF, st.DoubleFree)
	}
}

// TestScotGetTraversesMarkedChain: the read must walk straight through a
// fully marked prefix — anchored at the list head — without restarting
// or unlinking anything.
func TestScotGetTraversesMarkedChain(t *testing.T) {
	dom := hp.NewDomain()
	p := NewPool(arena.ModeDetect)
	l := NewListSCOT(p)
	h := l.NewHandleSCOT(dom)
	for k := uint64(0); k < 6; k++ {
		h.Insert(k, k+100)
	}
	cur := tagptr.RefOf(l.head.Load())
	for cur != 0 {
		n := p.Pool.Deref(cur)
		if n.key < 5 {
			w := n.next.Load()
			n.next.CompareAndSwap(w, tagptr.WithTag(w, tagptr.Mark))
		}
		cur = tagptr.RefOf(n.next.Load())
	}
	if v, ok := h.Get(5); !ok || v != 105 {
		t.Fatalf("Get(5) = (%d,%v) through marked chain", v, ok)
	}
	h.Thread().Finish()
}

// scotParkedSchedule is the shared deterministic schedule of the two
// parked-reader tests: park a reader mid-traversal (inside a deref, two
// hazards published), churn thousands of retires around the parked
// position at a fixed reclaim cadence, then release and drain. It
// returns the frees and retired backlog observed while the reader was
// still parked, plus the reader's result.
func scotParkedSchedule(t *testing.T, skipValidation bool) (freesParked, backlogParked int64, val uint64, ok bool, p Pool) {
	t.Helper()
	dom := hp.NewDomain()
	dom.Name = "hp-scot"
	dom.ReclaimEvery = 32 // deterministic cadence
	p = NewPool(arena.ModeDetect)
	p.SetCount() // count violations instead of panicking
	l := NewListSCOT(p)
	l.SkipValidation = skipValidation
	writer := l.NewHandleSCOT(dom)
	reader := l.NewHandleSCOT(dom)

	const hot = uint64(42)
	for k := uint64(0); k < 64; k++ {
		writer.Insert(k, k+1000)
	}

	// Park the reader on its second deref: one node past the head, anchor
	// and cur hazards published, liveness not yet validated.
	parked, release := parkNthDeref(p, 2)
	defer release()
	type got struct {
		val uint64
		ok  bool
	}
	done := make(chan got)
	go func() {
		v, k := reader.Get(hot)
		done <- got{v, k}
	}()
	select {
	case <-parked:
	case <-time.After(2 * time.Second):
		t.Fatal("reader never parked on the deref hook")
	}
	p.SetDerefHook(nil)

	// Retire the reader's whole neighbourhood (every prefill key except
	// the target) and then churn ~2000 more retires through the fixed
	// cadence, so everything the parked hazards do not pin is freed.
	for k := uint64(0); k < 64; k++ {
		if k != hot {
			writer.Delete(k)
		}
	}
	for i := uint64(0); i < 2000; i++ {
		writer.Insert(100+i, i)
	}
	for i := uint64(0); i < 2000; i++ {
		writer.Delete(100 + i)
	}

	freesParked = p.Stats().Frees
	backlogParked = dom.Unreclaimed()

	release()
	r := <-done
	writer.Thread().Finish()
	reader.Thread().Finish()
	dom.NewThread(0).Reclaim()
	if unr := dom.Unreclaimed(); unr != 0 {
		t.Fatalf("%d nodes unreclaimed after drain", unr)
	}
	return freesParked, backlogParked, r.val, r.ok, p
}

// TestScotParkedReaderBoundedAndSafe is the stalled-reader regression for
// hp-scot: a reader parked mid-traversal pins at most its announced
// hazards, so reclamation keeps running (frees > 0), the retired backlog
// stays bounded near the reclaim cadence, the resumed read restarts
// through the handshake to a correct result, and nothing is ever
// dereferenced after free.
func TestScotParkedReaderBoundedAndSafe(t *testing.T) {
	frees, backlog, val, ok, p := scotParkedSchedule(t, false)
	if frees == 0 {
		t.Fatal("nothing freed while the reader was parked; reclamation stalled on two hazards")
	}
	if backlog > 512 {
		t.Fatalf("retired backlog %d while parked; want bounded near the cadence (32) plus pinned hazards", backlog)
	}
	if !ok || val != 42+1000 {
		t.Fatalf("resumed reader Get = (%d,%v), want (1042,true)", val, ok)
	}
	if st := p.Stats(); st.UAF != 0 || st.DoubleFree != 0 {
		t.Fatalf("memory violations: uaf=%d doublefree=%d", st.UAF, st.DoubleFree)
	}
}

// TestScotNoValidateParkedReaderUAF is the unit-level must-fail control:
// the identical schedule with the handshake elided resumes the parked
// reader straight through links frozen while its chain was unlinked,
// retired and freed around it — the walk dereferences freed slots and the
// detect-mode arena must count it. This is the test that proves the
// validation in TestScotParkedReaderBoundedAndSafe is doing the work.
func TestScotNoValidateParkedReaderUAF(t *testing.T) {
	_, _, _, _, p := scotParkedSchedule(t, true)
	if p.Stats().UAF == 0 {
		t.Fatal("no use-after-free detected with the SCOT handshake skipped; the control lost its teeth")
	}
}
