package hhslist

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/smr"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// Track slot indices for the smr.Guard protocol.
const (
	csPrev = iota
	csCur
	csAnchor
	csAnchorNext
	csSlots
)

// ListCS is Harris's list for critical-section reclamation schemes (EBR,
// PEBR, NR). PEBR's shields additionally protect anchor and anchor_next
// so the chain-unlink CAS cannot suffer ABA even if the guard is ejected
// mid-operation.
type ListCS struct {
	pool Pool
	head atomic.Uint64
}

// NewListCS creates an empty list over pool.
func NewListCS(pool Pool) *ListCS { return &ListCS{pool: pool} }

// NewHandleCS returns a per-worker handle using guards from dom.
func (l *ListCS) NewHandleCS(dom smr.GuardDomain) *HandleCS {
	return &HandleCS{l: l, g: dom.NewGuard(csSlots)}
}

// HandleCS is a per-worker handle; not safe for concurrent use.
type HandleCS struct {
	l *ListCS
	g smr.Guard
}

// Guard exposes the underlying guard.
func (h *HandleCS) Guard() smr.Guard { return h.g }

// Rebind points the handle at another list sharing the same pool and
// domain; used by bucket containers (internal/ds/hashmap).
func (h *HandleCS) Rebind(l *ListCS) *HandleCS { h.l = l; return h }

type posCS struct {
	prevLink *atomic.Uint64
	cur      uint64
	found    bool
}

func (h *HandleCS) restart() {
	h.g.Unpin()
	h.g.Pin()
}

// search is the Harris traversal with anchor-based chain unlinking.
// Restarts internally on interference or guard neutralization.
func (h *HandleCS) search(key uint64) posCS {
	l, g := h.l, h.g
retry:
	prevLink := &l.head
	prevRef := uint64(0)
	cur := tagptr.RefOf(prevLink.Load())

	anchorRef := uint64(0)
	var anchorLink *atomic.Uint64
	anchorNext := uint64(0)
	found := false

	for {
		if cur == 0 {
			break
		}
		if !g.Track(csCur, cur) {
			h.restart()
			goto retry
		}
		node := l.pool.Deref(cur)
		nextW := node.next.Load()
		next := tagptr.RefOf(nextW)
		if !tagptr.IsMarked(nextW) {
			if node.key < key {
				if !g.Track(csPrev, cur) {
					h.restart()
					goto retry
				}
				prevRef, prevLink = cur, &node.next
				anchorRef, anchorLink, anchorNext = 0, nil, 0
				cur = next
				continue
			}
			found = node.key == key
			break
		}
		if anchorLink == nil {
			anchorRef, anchorLink, anchorNext = prevRef, prevLink, cur
			// Shield the anchor pair against ejection-time reuse.
			if !g.Track(csAnchor, anchorRef) || !g.Track(csAnchorNext, anchorNext) {
				h.restart()
				goto retry
			}
		}
		if !g.Track(csPrev, cur) {
			h.restart()
			goto retry
		}
		prevRef, prevLink = cur, &node.next
		cur = next
	}

	if anchorLink != nil {
		if !anchorLink.CompareAndSwap(tagptr.Pack(anchorNext, 0), tagptr.Pack(cur, 0)) {
			goto retry
		}
		for r := anchorNext; r != cur; {
			nxt := tagptr.RefOf(l.pool.Deref(r).next.Load())
			g.Retire(r, l.pool)
			r = nxt
		}
		prevLink = anchorLink
	}
	if cur != 0 && tagptr.IsMarked(l.pool.Deref(cur).next.Load()) {
		goto retry
	}
	return posCS{prevLink: prevLink, cur: cur, found: found}
}

// Get is the wait-free Herlihy-Shavit read: no helping, marks ignored
// while traversing. (Wait-free for EBR/NR; PEBR's ejection can force a
// restart, making it lock-free, per §4.3.)
func (h *HandleCS) Get(key uint64) (uint64, bool) {
	h.g.Pin()
	defer h.g.Unpin()
retry:
	cur := tagptr.RefOf(h.l.head.Load())
	for cur != 0 {
		if !h.g.Track(csCur, cur) {
			h.restart()
			goto retry
		}
		node := h.l.pool.Deref(cur)
		nextW := node.next.Load()
		if node.key >= key {
			if node.key == key && !tagptr.IsMarked(nextW) {
				return node.val, true
			}
			return 0, false
		}
		cur = tagptr.RefOf(nextW)
	}
	return 0, false
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleCS) Insert(key, val uint64) bool {
	h.g.Pin()
	defer h.g.Unpin()
	for {
		pos := h.search(key)
		if pos.found {
			return false
		}
		ref, n := h.l.pool.Alloc()
		n.key, n.val = key, val
		n.next.Store(tagptr.Pack(pos.cur, 0))
		if pos.prevLink.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(ref, 0)) {
			return true
		}
		h.l.pool.Free(ref)
	}
}

// Delete removes key, reporting whether it was present.
func (h *HandleCS) Delete(key uint64) bool {
	h.g.Pin()
	defer h.g.Unpin()
	for {
		pos := h.search(key)
		if !pos.found {
			return false
		}
		node := h.l.pool.Deref(pos.cur)
		nextW := node.next.Load()
		if tagptr.IsMarked(nextW) {
			continue
		}
		if !node.next.CompareAndSwap(nextW, tagptr.WithTag(nextW, tagptr.Mark)) {
			continue
		}
		next := tagptr.RefOf(nextW)
		if pos.prevLink.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(next, 0)) {
			h.g.Retire(pos.cur, h.l.pool)
		}
		return true
	}
}
