package hhslist

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/smr"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// Track slot indices for the smr.Guard protocol.
const (
	csPrev = iota
	csCur
	csAnchor
	csAnchorNext
	csSlots
)

// ListCS is Harris's list for critical-section reclamation schemes (EBR,
// PEBR, NR). PEBR's shields additionally protect anchor and anchor_next
// so the chain-unlink CAS cannot suffer ABA even if the guard is ejected
// mid-operation.
type ListCS struct {
	pool Pool
	head atomic.Uint64
}

// NewListCS creates an empty list over pool.
func NewListCS(pool Pool) *ListCS { return &ListCS{pool: pool} }

// linkOf returns the link to traverse from: the list head for start 0,
// otherwise the next field of the start node. The *From operations
// require that a non-zero start refers to a sentinel — a node the caller
// guarantees is never marked, unlinked, or freed — so the link is as
// stable an entry point as the head itself.
func (l *ListCS) linkOf(start uint64) *atomic.Uint64 {
	if start == 0 {
		return &l.head
	}
	return &l.pool.Deref(start).next
}

// NewHandleCS returns a per-worker handle using guards from dom.
func (l *ListCS) NewHandleCS(dom smr.GuardDomain) *HandleCS {
	return &HandleCS{l: l, g: dom.NewGuard(csSlots)}
}

// HandleCS is a per-worker handle; not safe for concurrent use.
type HandleCS struct {
	l *ListCS
	g smr.Guard
}

// Guard exposes the underlying guard.
func (h *HandleCS) Guard() smr.Guard { return h.g }

// Rebind points the handle at another list sharing the same pool and
// domain; used by bucket containers (internal/ds/hashmap).
func (h *HandleCS) Rebind(l *ListCS) *HandleCS { h.l = l; return h }

type posCS struct {
	prevLink *atomic.Uint64
	cur      uint64
	found    bool
}

func (h *HandleCS) restart() {
	h.g.Unpin()
	h.g.Pin()
}

// search is the Harris traversal with anchor-based chain unlinking,
// entering the list at start (0 = head) and locating the (key, aux) pair.
// Restarts internally on interference or guard neutralization.
func (h *HandleCS) search(key, aux, start uint64) posCS {
	l, g := h.l, h.g
retry:
	prevLink := l.linkOf(start)
	prevRef := start
	cur := tagptr.RefOf(prevLink.Load())

	anchorRef := uint64(0)
	var anchorLink *atomic.Uint64
	anchorNext := uint64(0)
	found := false

	for {
		if cur == 0 {
			break
		}
		if !g.Track(csCur, cur) {
			h.restart()
			goto retry
		}
		node := l.pool.Deref(cur)
		nextW := node.next.Load()
		next := tagptr.RefOf(nextW)
		if !tagptr.IsMarked(nextW) {
			if pairBefore(node.key, node.aux, key, aux) {
				if !g.Track(csPrev, cur) {
					h.restart()
					goto retry
				}
				prevRef, prevLink = cur, &node.next
				anchorRef, anchorLink, anchorNext = 0, nil, 0
				cur = next
				continue
			}
			found = node.key == key && node.aux == aux
			break
		}
		if anchorLink == nil {
			anchorRef, anchorLink, anchorNext = prevRef, prevLink, cur
			// Shield the anchor pair against ejection-time reuse.
			if !g.Track(csAnchor, anchorRef) || !g.Track(csAnchorNext, anchorNext) {
				h.restart()
				goto retry
			}
		}
		if !g.Track(csPrev, cur) {
			h.restart()
			goto retry
		}
		prevRef, prevLink = cur, &node.next
		cur = next
	}

	if anchorLink != nil {
		if !anchorLink.CompareAndSwap(tagptr.Pack(anchorNext, 0), tagptr.Pack(cur, 0)) {
			goto retry
		}
		for r := anchorNext; r != cur; {
			nxt := tagptr.RefOf(l.pool.Deref(r).next.Load())
			g.Retire(r, l.pool)
			r = nxt
		}
		prevLink = anchorLink
	}
	if cur != 0 && tagptr.IsMarked(l.pool.Deref(cur).next.Load()) {
		goto retry
	}
	return posCS{prevLink: prevLink, cur: cur, found: found}
}

// Get is the wait-free Herlihy-Shavit read: no helping, marks ignored
// while traversing. (Wait-free for EBR/NR; PEBR's ejection can force a
// restart, making it lock-free, per §4.3.)
func (h *HandleCS) Get(key uint64) (uint64, bool) { return h.GetFrom(0, key, 0) }

// GetFrom is Get entering the list at the sentinel start (0 = head) and
// matching the (key, aux) pair.
func (h *HandleCS) GetFrom(start, key, aux uint64) (uint64, bool) {
	h.g.Pin()
	defer h.g.Unpin()
retry:
	cur := tagptr.RefOf(h.l.linkOf(start).Load())
	for cur != 0 {
		if !h.g.Track(csCur, cur) {
			h.restart()
			goto retry
		}
		node := h.l.pool.Deref(cur)
		nextW := node.next.Load()
		if !pairBefore(node.key, node.aux, key, aux) {
			if node.key == key && node.aux == aux && !tagptr.IsMarked(nextW) {
				return node.val, true
			}
			return 0, false
		}
		cur = tagptr.RefOf(nextW)
	}
	return 0, false
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleCS) Insert(key, val uint64) bool { return h.InsertFrom(0, key, 0, val) }

// InsertFrom is Insert entering the list at the sentinel start (0 = head)
// with the full (key, aux) ordering pair.
func (h *HandleCS) InsertFrom(start, key, aux, val uint64) bool {
	h.g.Pin()
	defer h.g.Unpin()
	for {
		pos := h.search(key, aux, start)
		if pos.found {
			return false
		}
		ref, n := h.l.pool.Alloc()
		n.key, n.aux, n.val = key, aux, val
		n.next.Store(tagptr.Pack(pos.cur, 0))
		if pos.prevLink.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(ref, 0)) {
			return true
		}
		h.l.pool.Free(ref)
	}
}

// EnsureFrom returns the node holding (key, aux=0), inserting it with a
// zero value if absent — the get-or-insert hook behind somap's dummy
// nodes. Insertion races converge on a single winner, so every caller
// sees the same ref. The returned node must be treated as a sentinel:
// callers must never Delete it, which is what keeps the ref (and *From
// traversals through it) stable forever.
func (h *HandleCS) EnsureFrom(start, key uint64) uint64 {
	h.g.Pin()
	defer h.g.Unpin()
	for {
		pos := h.search(key, 0, start)
		if pos.found {
			return pos.cur
		}
		ref, n := h.l.pool.Alloc()
		n.key, n.aux, n.val = key, 0, 0
		n.next.Store(tagptr.Pack(pos.cur, 0))
		if pos.prevLink.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(ref, 0)) {
			return ref
		}
		h.l.pool.Free(ref)
	}
}

// Delete removes key, reporting whether it was present.
func (h *HandleCS) Delete(key uint64) bool { return h.DeleteFrom(0, key, 0) }

// DeleteFrom is Delete entering the list at the sentinel start (0 = head)
// and matching the (key, aux) pair.
func (h *HandleCS) DeleteFrom(start, key, aux uint64) bool {
	h.g.Pin()
	defer h.g.Unpin()
	for {
		pos := h.search(key, aux, start)
		if !pos.found {
			return false
		}
		node := h.l.pool.Deref(pos.cur)
		nextW := node.next.Load()
		if tagptr.IsMarked(nextW) {
			continue
		}
		if !node.next.CompareAndSwap(nextW, tagptr.WithTag(nextW, tagptr.Mark)) {
			continue
		}
		next := tagptr.RefOf(nextW)
		if pos.prevLink.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(next, 0)) {
			h.g.Retire(pos.cur, h.l.pool)
		}
		return true
	}
}
