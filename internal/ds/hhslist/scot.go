package hhslist

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/hp"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// Hazard slot indices for the SCOT traversal: the anchor (last unmarked
// node), the marked-chain entry, and the current candidate. Readers use
// only (anchor, cur) — the chain entry stays protected only inside
// trySearch, where its slot also guards the unlink CAS against ABA.
const (
	scotAnchor = iota
	scotEntry
	scotCur
	scotSlots
)

// ListSCOT is Harris's list with the SCOT traversal discipline
// (hp.ScotChain) on plain hazard pointers: optimistic walks through
// marked chains validate against the *anchor's* link and the chain
// entry's arena birth tag instead of the immediate predecessor, so no
// TryProtect/invalidate machinery is needed. See internal/hp/scot.go
// for the full safety argument.
type ListSCOT struct {
	pool Pool
	head atomic.Uint64

	// SkipValidation elides the post-announcement handshake, turning the
	// traversal into the unsound naive-HP walk the HP++ paper's §2.3
	// argument is about: hazards are announced but dereferences proceed
	// without any reachability proof, so a node retired between the link
	// read and the hazard store is freed underneath the reader. It exists
	// only as the stress harness's must-fail control.
	SkipValidation bool
}

// NewListSCOT creates an empty list over pool.
func NewListSCOT(pool Pool) *ListSCOT { return &ListSCOT{pool: pool} }

// linkOf returns the link to traverse from: the list head for start 0,
// otherwise the next field of the start node. A non-zero start must be a
// sentinel — never marked, unlinked, or freed — which is why it needs no
// hazard before serving as the initial anchor.
func (l *ListSCOT) linkOf(start uint64) *atomic.Uint64 {
	if start == 0 {
		return &l.head
	}
	return &l.pool.Deref(start).next
}

// NewHandleSCOT returns a per-worker handle over a plain HP domain.
func (l *ListSCOT) NewHandleSCOT(dom *hp.Domain) *HandleSCOT {
	return &HandleSCOT{l: l, t: dom.NewThread(scotSlots)}
}

// HandleSCOT is a per-worker handle; not safe for concurrent use.
type HandleSCOT struct {
	l *ListSCOT
	t *hp.Thread
}

// Thread exposes the underlying HP thread.
func (h *HandleSCOT) Thread() *hp.Thread { return h.t }

// Rebind points the handle at another list sharing the same pool and
// domain; used by bucket containers (internal/ds/hashmap).
func (h *HandleSCOT) Rebind(l *ListSCOT) *HandleSCOT { h.l = l; return h }

type posSCOT struct {
	prevLink *atomic.Uint64
	cur      uint64
	found    bool
}

// trySearch is the SCOT counterpart of Algorithm 4's TRYSEARCH: traverse
// optimistically through marked chains keeping only the anchor and the
// chain entry protected, validate every hop with the ScotChain handshake,
// and unlink the chain immediately preceding the destination with one CAS
// on the anchor. ok=false means a validation or an unlink CAS failed; the
// caller must restart.
func (h *HandleSCOT) trySearch(key, aux, start uint64) (posSCOT, bool) {
	l, t := h.l, h.t
	var chain hp.ScotChain
	chain.Reset(l.linkOf(start))
	cur := tagptr.RefOf(chain.AnchorLink().Load())
	found := false

	for cur != 0 {
		t.Protect(scotCur, cur)
		// fence(SC) — implicit; validation below is the SCOT handshake.
		if !l.SkipValidation && !chain.Validate(l.pool, cur) {
			return posSCOT{}, false
		}
		node := l.pool.Deref(cur)
		nextW := node.next.Load()
		next := tagptr.RefOf(nextW)
		if tagptr.IsMarked(nextW) {
			// cur is logically deleted: step through it optimistically.
			// The first marked node after the anchor becomes the chain
			// entry; it keeps its hazard (slot scotEntry) so the unlink
			// CAS below cannot suffer ABA through slot reuse. Interior
			// chain nodes drop protection — the handshake's chain-intact
			// proof covers them.
			if !chain.On() {
				chain.Enter(l.pool, cur)
				t.Swap(scotEntry, scotCur)
			}
			cur = next
			continue
		}
		if pairBefore(node.key, node.aux, key, aux) {
			// Unmarked and before the destination: new anchor. A marked
			// chain strictly before the destination is skipped without
			// unlinking, exactly as in Algorithm 4.
			t.Swap(scotAnchor, scotCur)
			chain.Reset(&node.next)
			cur = next
			continue
		}
		found = node.key == key && node.aux == aux
		break
	}

	anchorLink := chain.AnchorLink()
	if chain.On() {
		// Unlink the whole marked chain entry .. cur with one CAS on the
		// anchor. Success proves the anchor was attached and unmarked and
		// the frozen chain intact, so the detached nodes are exactly
		// entry .. pred(cur); we are their unique detacher, hence the
		// only retirer, and they stay un-freed (nobody else may retire
		// them) for the duration of the collection walk.
		entry, target := chain.Entry(), cur
		if !anchorLink.CompareAndSwap(tagptr.Pack(entry, 0), tagptr.Pack(target, 0)) {
			return posSCOT{}, false
		}
		for r := entry; r != target; {
			nextR := tagptr.RefOf(l.pool.Deref(r).next.Load())
			t.Retire(r, l.pool)
			r = nextR
		}
	}
	if cur != 0 && tagptr.IsMarked(l.pool.Deref(cur).next.Load()) {
		return posSCOT{}, false // destination got deleted; retry
	}
	return posSCOT{prevLink: anchorLink, cur: cur, found: found}, true
}

// Get is the Herlihy-Shavit read walking straight through marked nodes.
// Under SCOT it needs only two live hazards (anchor, cur): chain hops
// validate against the anchor word plus the chain entry's birth tag, and
// a failed validation resumes from the still-attached anchor instead of
// the head whenever possible.
func (h *HandleSCOT) Get(key uint64) (uint64, bool) { return h.GetFrom(0, key, 0) }

// GetFrom is Get entering the list at the sentinel start (0 = head) and
// matching the (key, aux) pair.
func (h *HandleSCOT) GetFrom(start, key, aux uint64) (uint64, bool) {
	l, t := h.l, h.t
	defer t.ClearAll()
	var chain hp.ScotChain
restart:
	chain.Reset(l.linkOf(start))
	cur := tagptr.RefOf(chain.AnchorLink().Load())
	for {
		if cur == 0 {
			return 0, false
		}
		t.Protect(scotCur, cur)
		// fence(SC) — implicit.
		if !l.SkipValidation && !chain.Validate(l.pool, cur) {
			resumed, ok := chain.Resume()
			if !ok {
				goto restart
			}
			cur = resumed
			continue
		}
		node := l.pool.Deref(cur)
		nextW := node.next.Load()
		next := tagptr.RefOf(nextW)
		if tagptr.IsMarked(nextW) {
			// Capture the chain certificate while cur is still protected
			// and validated; after this hop the reader's hazard moves on
			// and only the birth tag keeps the entry's identity honest.
			if !chain.On() {
				chain.Enter(l.pool, cur)
			}
			cur = next
			continue
		}
		if !pairBefore(node.key, node.aux, key, aux) {
			if node.key == key && node.aux == aux {
				return node.val, true
			}
			return 0, false
		}
		t.Swap(scotAnchor, scotCur)
		chain.Reset(&node.next)
		cur = next
	}
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleSCOT) Insert(key, val uint64) bool { return h.InsertFrom(0, key, 0, val) }

// InsertFrom is Insert entering the list at the sentinel start (0 = head)
// with the full (key, aux) ordering pair.
func (h *HandleSCOT) InsertFrom(start, key, aux, val uint64) bool {
	defer h.t.ClearAll()
	for {
		pos, ok := h.trySearch(key, aux, start)
		if !ok {
			continue
		}
		if pos.found {
			return false
		}
		ref, n := h.l.pool.Alloc()
		n.key, n.aux, n.val = key, aux, val
		n.next.Store(tagptr.Pack(pos.cur, 0))
		if pos.prevLink.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(ref, 0)) {
			return true
		}
		h.l.pool.Free(ref)
	}
}

// EnsureFrom returns the node holding (key, aux=0), inserting it with a
// zero value if absent — the get-or-insert hook behind somap's dummy
// nodes. Insertion races converge on a single winner, so every caller
// sees the same ref. The returned node must be treated as a sentinel:
// callers must never Delete it, so the ref outlives the protections
// dropped by ClearAll on return.
func (h *HandleSCOT) EnsureFrom(start, key uint64) uint64 {
	defer h.t.ClearAll()
	for {
		pos, ok := h.trySearch(key, 0, start)
		if !ok {
			continue
		}
		if pos.found {
			return pos.cur
		}
		ref, n := h.l.pool.Alloc()
		n.key, n.aux, n.val = key, 0, 0
		n.next.Store(tagptr.Pack(pos.cur, 0))
		if pos.prevLink.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(ref, 0)) {
			return ref
		}
		h.l.pool.Free(ref)
	}
}

// Delete removes key, reporting whether it was present.
func (h *HandleSCOT) Delete(key uint64) bool { return h.DeleteFrom(0, key, 0) }

// DeleteFrom is Delete entering the list at the sentinel start (0 = head)
// and matching the (key, aux) pair.
func (h *HandleSCOT) DeleteFrom(start, key, aux uint64) bool {
	defer h.t.ClearAll()
	for {
		pos, ok := h.trySearch(key, aux, start)
		if !ok {
			continue
		}
		if !pos.found {
			return false
		}
		node := h.l.pool.Deref(pos.cur)
		nextW := node.next.Load()
		if tagptr.IsMarked(nextW) {
			continue // someone else is deleting it; re-search decides
		}
		if !node.next.CompareAndSwap(nextW, tagptr.WithTag(nextW, tagptr.Mark)) {
			continue
		}
		// Logically deleted: attempt our own physical unlink. Unlike
		// HP++'s Algorithm 4 no frontier protection is needed — the
		// successor is never dereferenced here, and traversals passing
		// through it re-validate with the handshake. A failed attempt is
		// fine: some traversal's chain unlink will cover it. Success
		// makes us the unique detacher (the expected word is exact and
		// unmarked), so we retire exactly once.
		next := tagptr.RefOf(nextW)
		if pos.prevLink.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(next, 0)) {
			h.t.Retire(pos.cur, h.l.pool)
		}
		return true
	}
}
