// Package hhslist implements Harris's lock-free linked list (Harris, DISC
// 2001) with the wait-free get() of Herlihy & Shavit — "HHSList" in the
// HP++ paper's evaluation.
//
// Unlike the Harris-Michael list, traversal here is *optimistic*: it walks
// straight through chains of logically deleted (marked) nodes, remembering
// the last unmarked node as an *anchor*, and unlinks the whole marked
// chain with a single CAS on the anchor's next field once it reaches an
// unmarked node. get() ignores marks entirely.
//
// This traversal is incompatible with the *classic* hazard-pointer
// validation (§2.3 of the paper): re-checking "prev still points at cur,
// untagged" fails on every marked hop, and restarting instead would break
// lock-freedom — the applicability gap HP++ closes. SCOT (see
// internal/hp/scot.go) closes it differently, by rewriting the validation
// to target the anchor instead of the immediate predecessor, so plain HP
// suffices after all:
//
//	ListCS   — critical-section schemes (EBR, PEBR, NR)
//	ListHPP  — HP++ (Algorithm 4 of the paper)
//	ListSCOT — plain HP with the SCOT traversal discipline (scot.go)
//	ListRC   — deferred reference counting
package hhslist

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// Node is a list node. The next word packs the successor with Mark
// (logical deletion) and Invalid (HP++) bits. Nodes are ordered by the
// (key, aux) pair: plain list usage leaves aux zero, while the
// split-ordered map (internal/ds/somap) stores the bit-reversed hash in
// key and the full user key in aux, restoring injectivity when two hashes
// collapse onto the same split-order key.
type Node struct {
	next atomic.Uint64
	key  uint64
	aux  uint64
	val  uint64
}

// pairBefore reports whether (k1, a1) orders strictly before (k2, a2) in
// the list's lexicographic (key, aux) order.
func pairBefore(k1, a1, k2, a2 uint64) bool {
	return k1 < k2 || (k1 == k2 && a1 < a2)
}

// Pool allocates list nodes and implements core.Invalidator.
type Pool struct {
	*arena.Pool[Node]
}

// NewPool creates a node pool.
func NewPool(mode arena.Mode) Pool {
	return Pool{arena.NewPool[Node]("hhslist", mode)}
}

// Invalidate sets the Invalid bit on the node's next word (plain store;
// unlinked nodes' links are immutable).
func (p Pool) Invalidate(ref uint64) {
	n := p.Deref(ref)
	n.next.Store(n.next.Load() | tagptr.Invalid)
}

// Key returns ref's key (for tests).
func (p Pool) Key(ref uint64) uint64 { return p.Deref(ref).key }

// Aux returns ref's aux word (for tests).
func (p Pool) Aux(ref uint64) uint64 { return p.Deref(ref).aux }

// NextWord returns ref's raw next word (for tests).
func (p Pool) NextWord(ref uint64) tagptr.Word { return p.Deref(ref).next.Load() }
