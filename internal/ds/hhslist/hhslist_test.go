package hhslist

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/ebr"
	"github.com/gosmr/gosmr/internal/hp"
	"github.com/gosmr/gosmr/internal/nr"
	"github.com/gosmr/gosmr/internal/pebr"
	"github.com/gosmr/gosmr/internal/rc"
	"github.com/gosmr/gosmr/internal/tagptr"
)

type handle interface {
	Get(key uint64) (uint64, bool)
	Insert(key, val uint64) bool
	Delete(key uint64) bool
}

type variant struct {
	name string
	mk   func(mode arena.Mode) (mkHandle func() handle, finish func())
}

func variants() []variant {
	return []variant{
		{"CS/EBR", func(mode arena.Mode) (func() handle, func()) {
			dom := ebr.NewDomain()
			l := NewListCS(NewPool(mode))
			var hs []*HandleCS
			return func() handle {
					h := l.NewHandleCS(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Guard().(*ebr.Guard).Drain()
					}
				}
		}},
		{"CS/PEBR", func(mode arena.Mode) (func() handle, func()) {
			dom := pebr.NewDomain()
			l := NewListCS(NewPool(mode))
			var hs []*HandleCS
			return func() handle {
					h := l.NewHandleCS(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Guard().(*pebr.Guard).ClearShields()
					}
					for i := 0; i < 8; i++ {
						for _, h := range hs {
							h.Guard().(*pebr.Guard).Collect()
						}
					}
				}
		}},
		{"CS/NR", func(mode arena.Mode) (func() handle, func()) {
			dom := nr.NewDomain()
			l := NewListCS(NewPool(mode))
			return func() handle { return l.NewHandleCS(dom) }, func() {}
		}},
		{"HPP", func(mode arena.Mode) (func() handle, func()) {
			dom := core.NewDomain(core.Options{})
			l := NewListHPP(NewPool(mode))
			var hs []*HandleHPP
			return func() handle {
					h := l.NewHandleHPP(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Thread().Finish()
					}
					dom.NewThread(0).Reclaim()
				}
		}},
		{"HPP/EpochFence", func(mode arena.Mode) (func() handle, func()) {
			dom := core.NewDomain(core.Options{EpochFence: true})
			l := NewListHPP(NewPool(mode))
			var hs []*HandleHPP
			return func() handle {
					h := l.NewHandleHPP(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Thread().Finish()
					}
					dom.NewThread(0).Reclaim()
				}
		}},
		{"SCOT", func(mode arena.Mode) (func() handle, func()) {
			dom := hp.NewDomain()
			dom.Name = "hp-scot"
			l := NewListSCOT(NewPool(mode))
			var hs []*HandleSCOT
			return func() handle {
					h := l.NewHandleSCOT(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Thread().Finish()
					}
					dom.NewThread(0).Reclaim()
				}
		}},
		{"RC", func(mode arena.Mode) (func() handle, func()) {
			dom := rc.NewDomain()
			l := NewListRC(NewPoolRC(mode))
			var hs []*HandleRC
			return func() handle {
					h := l.NewHandleRC(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Guard().Drain()
					}
				}
		}},
	}
}

func TestSequentialModel(t *testing.T) {
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			mk, finish := v.mk(arena.ModeDetect)
			h := mk()
			defer finish()
			model := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 4000; i++ {
				k := uint64(rng.Intn(64))
				switch rng.Intn(3) {
				case 0:
					_, in := model[k]
					if h.Insert(k, k*3) == in {
						t.Fatalf("op %d: Insert(%d) disagreed with model", i, k)
					}
					model[k] = k * 3
				case 1:
					_, in := model[k]
					if h.Delete(k) != in {
						t.Fatalf("op %d: Delete(%d) disagreed with model", i, k)
					}
					delete(model, k)
				default:
					val, ok := h.Get(k)
					mv, in := model[k]
					if ok != in || (ok && val != mv) {
						t.Fatalf("op %d: Get(%d) = (%d,%v) want (%d,%v)", i, k, val, ok, mv, in)
					}
				}
			}
		})
	}
}

func TestQuickModelEquivalence(t *testing.T) {
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			prop := func(ops []uint16) bool {
				mk, finish := v.mk(arena.ModeDetect)
				h := mk()
				defer finish()
				model := map[uint64]uint64{}
				for _, op := range ops {
					k := uint64(op % 32)
					switch (op / 32) % 3 {
					case 0:
						_, in := model[k]
						if h.Insert(k, k) == in {
							return false
						}
						model[k] = k
					case 1:
						_, in := model[k]
						if h.Delete(k) != in {
							return false
						}
						delete(model, k)
					default:
						_, ok := h.Get(k)
						if _, in := model[k]; ok != in {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConcurrentStress(t *testing.T) {
	const (
		workers = 4
		iters   = 8000
		keys    = 32
	)
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			mk, finish := v.mk(arena.ModeDetect)
			handles := make([]handle, workers)
			for i := range handles {
				handles[i] = mk()
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(h handle, seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < iters; i++ {
						k := uint64(rng.Intn(keys))
						switch rng.Intn(4) {
						case 0:
							h.Insert(k, k)
						case 1:
							h.Delete(k)
						default:
							h.Get(k)
						}
					}
				}(handles[w], int64(w+1))
			}
			wg.Wait()
			finish()
		})
	}
}

func TestDisjointKeysLinearizable(t *testing.T) {
	const workers = 4
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			mk, finish := v.mk(arena.ModeDetect)
			handles := make([]handle, workers)
			for i := range handles {
				handles[i] = mk()
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(h handle, base uint64) {
					defer wg.Done()
					model := map[uint64]uint64{}
					rng := rand.New(rand.NewSource(int64(base + 1)))
					for i := 0; i < 3000; i++ {
						k := base + uint64(rng.Intn(16))
						switch rng.Intn(3) {
						case 0:
							_, in := model[k]
							if h.Insert(k, k) == in {
								t.Errorf("insert(%d) disagreed with private model", k)
								return
							}
							model[k] = k
						case 1:
							_, in := model[k]
							if h.Delete(k) != in {
								t.Errorf("delete(%d) disagreed with private model", k)
								return
							}
							delete(model, k)
						default:
							_, ok := h.Get(k)
							if _, in := model[k]; ok != in {
								t.Errorf("get(%d) disagreed with private model", k)
								return
							}
						}
					}
				}(handles[w], uint64(w)*1000)
			}
			wg.Wait()
			finish()
		})
	}
}

// TestChainUnlinkIsSingleCAS verifies the optimistic-traversal payoff: a
// chain of logically deleted nodes is removed by ONE anchor CAS during the
// next search, not node-by-node.
func TestChainUnlinkIsSingleCAS(t *testing.T) {
	dom := ebr.NewDomain()
	p := NewPool(arena.ModeDetect)
	l := NewListCS(p)
	h := l.NewHandleCS(dom)

	// Build 0..9, then logically delete 3..7 by hand (mark only).
	for k := uint64(0); k < 10; k++ {
		h.Insert(k, k)
	}
	refs := map[uint64]uint64{} // key -> ref
	cur := tagptr.RefOf(l.head.Load())
	for cur != 0 {
		refs[p.Key(cur)] = cur
		cur = tagptr.RefOf(p.NextWord(cur))
	}
	for k := uint64(3); k <= 7; k++ {
		n := p.Pool.Deref(refs[k])
		w := n.next.Load()
		if !n.next.CompareAndSwap(w, tagptr.WithTag(w, tagptr.Mark)) {
			t.Fatalf("marking %d failed", k)
		}
	}

	// One search past the chain must unlink all five at once: node 2's
	// next should jump straight to node 8 afterwards.
	if _, ok := h.Get(8); !ok {
		t.Fatal("get(8) failed")
	}
	h.g.Pin()
	pos := h.search(8, 0, 0)
	h.g.Unpin()
	if !pos.found {
		t.Fatal("search(8) did not find 8")
	}
	if got := tagptr.RefOf(p.NextWord(refs[2])); got != refs[8] {
		t.Fatalf("node 2 points at ref %d, want node 8 (ref %d) — chain not unlinked at once", got, refs[8])
	}
	// Marked keys must read as absent.
	for k := uint64(3); k <= 7; k++ {
		if _, ok := h.Get(k); ok {
			t.Fatalf("get(%d) found a logically deleted key", k)
		}
	}
}

// TestGetTraversesMarkedChain verifies the wait-free read walks through
// marked nodes instead of restarting: the target beyond a fully marked
// prefix is still found.
func TestGetTraversesMarkedChain(t *testing.T) {
	dom := ebr.NewDomain()
	p := NewPool(arena.ModeDetect)
	l := NewListCS(p)
	h := l.NewHandleCS(dom)
	for k := uint64(0); k < 6; k++ {
		h.Insert(k, k+100)
	}
	// Mark 0..4; do not unlink.
	cur := tagptr.RefOf(l.head.Load())
	for cur != 0 {
		n := p.Pool.Deref(cur)
		if n.key < 5 {
			w := n.next.Load()
			n.next.CompareAndSwap(w, tagptr.WithTag(w, tagptr.Mark))
		}
		cur = tagptr.RefOf(n.next.Load())
	}
	if v, ok := h.Get(5); !ok || v != 105 {
		t.Fatalf("Get(5) = (%d,%v) through marked chain", v, ok)
	}
}

// TestHPPPNoExtraRestarts exercises the §4.2 claim on a live HPP list:
// traversal over a marked-but-not-invalidated chain succeeds without
// restarting (no protection failure), unlike HP which must restart.
func TestHPPPTraversalOverMarkedChain(t *testing.T) {
	dom := core.NewDomain(core.Options{})
	p := NewPool(arena.ModeDetect)
	l := NewListHPP(p)
	h := l.NewHandleHPP(dom)
	defer h.Thread().Finish()

	for k := uint64(0); k < 6; k++ {
		h.Insert(k, k+100)
	}
	cur := tagptr.RefOf(l.head.Load())
	for cur != 0 {
		n := p.Pool.Deref(cur)
		if n.key < 5 {
			w := n.next.Load()
			n.next.CompareAndSwap(w, tagptr.WithTag(w, tagptr.Mark))
		}
		cur = tagptr.RefOf(n.next.Load())
	}
	if v, ok := h.Get(5); !ok || v != 105 {
		t.Fatalf("Get(5) = (%d,%v): HP++ failed to traverse a marked chain", v, ok)
	}
	// And the next write unlinks the whole chain via one TryUnlink.
	if !h.Insert(42, 42) {
		t.Fatal("insert failed")
	}
	if _, ok := h.Get(0); ok {
		t.Fatal("marked node still visible after chain unlink")
	}
}
