package hmlist

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/smr"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// ListCS is the Harris-Michael list for critical-section reclamation
// schemes (EBR, PEBR, NR). Every node dereference is preceded by a
// Track announcement so that PEBR's shields cover it; for EBR and NR the
// announcement is free.
type ListCS struct {
	pool Pool
	head atomic.Uint64
}

// NewListCS creates an empty list over pool.
func NewListCS(pool Pool) *ListCS { return &ListCS{pool: pool} }

// Slots is the number of protection slots a guard needs (prev, cur).
const slotsCS = 2

// NewHandleCS returns a per-worker handle using guards from dom.
func (l *ListCS) NewHandleCS(dom smr.GuardDomain) *HandleCS {
	return &HandleCS{l: l, g: dom.NewGuard(slotsCS)}
}

// HandleCS is a per-worker handle; not safe for concurrent use.
type HandleCS struct {
	l *ListCS
	g smr.Guard
}

// Guard exposes the underlying guard (for draining in benchmarks).
func (h *HandleCS) Guard() smr.Guard { return h.g }

// Rebind points the handle at another list sharing the same pool and
// domain; used by bucket containers (internal/ds/hashmap).
func (h *HandleCS) Rebind(l *ListCS) *HandleCS { h.l = l; return h }

type posCS struct {
	prev  *atomic.Uint64 // link that points at cur
	cur   uint64         // first node with key >= search key, or 0
	next  uint64         // cur's successor at observation time
	found bool
}

// find locates the position for key, unlinking marked nodes on the way
// (the Harris-Michael cleanup obligation). Restarts internally on
// interference or guard neutralization.
func (h *HandleCS) find(key uint64) posCS {
	l, g := h.l, h.g
retry:
	prev := &l.head
	cur := tagptr.RefOf(prev.Load())
	for cur != 0 {
		if !g.Track(1, cur) {
			g.Unpin()
			g.Pin()
			goto retry
		}
		curNode := l.pool.Deref(cur)
		nextW := curNode.next.Load()
		next, tag := tagptr.Split(nextW)
		// Re-validate that prev still points at cur with a clean tag;
		// otherwise cur may already be unlinked or prev marked.
		if prev.Load() != tagptr.Pack(cur, 0) {
			goto retry
		}
		if tag&tagptr.Mark != 0 {
			// cur is logically deleted: unlink it before moving on.
			if !prev.CompareAndSwap(tagptr.Pack(cur, 0), tagptr.Pack(next, 0)) {
				goto retry
			}
			g.Retire(cur, l.pool)
			cur = next
			continue
		}
		if curNode.key >= key {
			return posCS{prev: prev, cur: cur, next: next, found: curNode.key == key}
		}
		g.Track(0, cur)
		prev = &curNode.next
		cur = next
	}
	return posCS{prev: prev, cur: 0}
}

// Get returns the value stored under key.
func (h *HandleCS) Get(key uint64) (uint64, bool) {
	h.g.Pin()
	defer h.g.Unpin()
	pos := h.find(key)
	if !pos.found {
		return 0, false
	}
	return h.l.pool.Deref(pos.cur).val, true
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleCS) Insert(key, val uint64) bool {
	h.g.Pin()
	defer h.g.Unpin()
	for {
		pos := h.find(key)
		if pos.found {
			return false
		}
		ref, n := h.l.pool.Alloc()
		n.key, n.aux, n.val = key, 0, val
		n.next.Store(tagptr.Pack(pos.cur, 0))
		if pos.prev.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(ref, 0)) {
			return true
		}
		h.l.pool.Free(ref) // never published
	}
}

// Delete removes key, reporting whether it was present.
func (h *HandleCS) Delete(key uint64) bool {
	h.g.Pin()
	defer h.g.Unpin()
	for {
		pos := h.find(key)
		if !pos.found {
			return false
		}
		curNode := h.l.pool.Deref(pos.cur)
		nextW := curNode.next.Load()
		if tagptr.TagOf(nextW)&tagptr.Mark != 0 {
			continue // another deleter got here first; help via find
		}
		if !curNode.next.CompareAndSwap(nextW, tagptr.WithTag(nextW, tagptr.Mark)) {
			continue
		}
		// Logical deletion succeeded; try the physical unlink ourselves,
		// otherwise some traversal will do it.
		if pos.prev.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(tagptr.RefOf(nextW), 0)) {
			h.g.Retire(pos.cur, h.l.pool)
		}
		return true
	}
}
