package hmlist

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/hp"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// ListHP is the Harris-Michael list under original hazard pointers,
// following the hand-over-hand protection of Figure 3 in the HP++ paper:
// two hazard pointers (prev, cur) advance together, and each protection is
// validated by re-reading the previous link — the over-approximation of
// unreachability that forces a restart whenever the previous node is
// logically deleted or no longer points at cur.
type ListHP struct {
	pool Pool
	head atomic.Uint64
}

// NewListHP creates an empty list over pool.
func NewListHP(pool Pool) *ListHP { return &ListHP{pool: pool} }

// Hazard slot indices.
const (
	hpPrev  = 0
	hpCur   = 1
	hpSlots = 2
)

// NewHandleHP returns a per-worker handle.
func (l *ListHP) NewHandleHP(dom *hp.Domain) *HandleHP {
	return &HandleHP{l: l, t: dom.NewThread(hpSlots)}
}

// HandleHP is a per-worker handle; not safe for concurrent use.
type HandleHP struct {
	l *ListHP
	t *hp.Thread
}

// Thread exposes the underlying HP thread (for Finish in benchmarks).
func (h *HandleHP) Thread() *hp.Thread { return h.t }

// Rebind points the handle at another list sharing the same pool and
// domain; used by bucket containers (internal/ds/hashmap).
func (h *HandleHP) Rebind(l *ListHP) *HandleHP { h.l = l; return h }

type posHP struct {
	prev  *atomic.Uint64
	cur   uint64
	next  uint64
	found bool
}

// find locates key with validated hand-over-hand protection. On return,
// cur (if non-zero) is protected by slot hpCur and the node containing
// prev by slot hpPrev.
func (h *HandleHP) find(key uint64) posHP {
	l, t := h.l, h.t
retry:
	prev := &l.head
	cur := tagptr.RefOf(prev.Load())
	for cur != 0 {
		// Protect cur and validate: prev must still hold cur untagged.
		// A changed reference means cur was unlinked from prev; a set
		// Mark bit means prev itself is logically deleted — either way
		// cur might already be retired, so restart (Figure 3).
		if !t.ProtectWord(hpCur, prev, tagptr.Pack(cur, 0)) {
			goto retry
		}
		curNode := l.pool.Deref(cur)
		nextW := curNode.next.Load()
		next, tag := tagptr.Split(nextW)
		if tag&tagptr.Mark != 0 {
			// cur is logically deleted: unlink it. prev's node is
			// protected (hpPrev or the list head), cur by hpCur.
			if !prev.CompareAndSwap(tagptr.Pack(cur, 0), tagptr.Pack(next, 0)) {
				goto retry
			}
			t.Retire(cur, l.pool)
			cur = next
			continue
		}
		if curNode.key >= key {
			return posHP{prev: prev, cur: cur, next: next, found: curNode.key == key}
		}
		prev = &curNode.next
		t.Swap(hpPrev, hpCur)
		cur = next
	}
	return posHP{prev: prev, cur: 0}
}

// Get returns the value stored under key.
func (h *HandleHP) Get(key uint64) (uint64, bool) {
	pos := h.find(key)
	defer h.t.ClearAll()
	if !pos.found {
		return 0, false
	}
	return h.l.pool.Deref(pos.cur).val, true
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleHP) Insert(key, val uint64) bool {
	defer h.t.ClearAll()
	for {
		pos := h.find(key)
		if pos.found {
			return false
		}
		ref, n := h.l.pool.Alloc()
		n.key, n.val = key, val
		n.next.Store(tagptr.Pack(pos.cur, 0))
		if pos.prev.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(ref, 0)) {
			return true
		}
		h.l.pool.Free(ref)
	}
}

// Delete removes key, reporting whether it was present.
func (h *HandleHP) Delete(key uint64) bool {
	defer h.t.ClearAll()
	for {
		pos := h.find(key)
		if !pos.found {
			return false
		}
		curNode := h.l.pool.Deref(pos.cur)
		nextW := curNode.next.Load()
		if tagptr.TagOf(nextW)&tagptr.Mark != 0 {
			continue
		}
		if !curNode.next.CompareAndSwap(nextW, tagptr.WithTag(nextW, tagptr.Mark)) {
			continue
		}
		if pos.prev.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(tagptr.RefOf(nextW), 0)) {
			h.t.Retire(pos.cur, h.l.pool)
		}
		return true
	}
}
