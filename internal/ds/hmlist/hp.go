package hmlist

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/hp"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// ListHP is the Harris-Michael list under original hazard pointers,
// following the hand-over-hand protection of Figure 3 in the HP++ paper:
// two hazard pointers (prev, cur) advance together, and each protection is
// validated by re-reading the previous link — the over-approximation of
// unreachability that forces a restart whenever the previous node is
// logically deleted or no longer points at cur.
type ListHP struct {
	pool Pool
	head atomic.Uint64
}

// NewListHP creates an empty list over pool.
func NewListHP(pool Pool) *ListHP { return &ListHP{pool: pool} }

// linkOf returns the link to traverse from: the list head for start 0,
// otherwise the next field of the start node. A non-zero start must be a
// sentinel — never marked, unlinked, or freed — so validating against its
// link is as sound as validating against the head.
func (l *ListHP) linkOf(start uint64) *atomic.Uint64 {
	if start == 0 {
		return &l.head
	}
	return &l.pool.Deref(start).next
}

// Hazard slot indices.
const (
	hpPrev  = 0
	hpCur   = 1
	hpSlots = 2
)

// NewHandleHP returns a per-worker handle.
func (l *ListHP) NewHandleHP(dom *hp.Domain) *HandleHP {
	return &HandleHP{l: l, t: dom.NewThread(hpSlots)}
}

// HandleHP is a per-worker handle; not safe for concurrent use.
type HandleHP struct {
	l *ListHP
	t *hp.Thread
}

// Thread exposes the underlying HP thread (for Finish in benchmarks).
func (h *HandleHP) Thread() *hp.Thread { return h.t }

// Rebind points the handle at another list sharing the same pool and
// domain; used by bucket containers (internal/ds/hashmap).
func (h *HandleHP) Rebind(l *ListHP) *HandleHP { h.l = l; return h }

type posHP struct {
	prev  *atomic.Uint64
	cur   uint64
	next  uint64
	found bool
}

// find locates key with validated hand-over-hand protection. On return,
// cur (if non-zero) is protected by slot hpCur and the node containing
// prev by slot hpPrev.
func (h *HandleHP) find(key, aux, start uint64) posHP {
	l, t := h.l, h.t
retry:
	prev := l.linkOf(start)
	cur := tagptr.RefOf(prev.Load())
	for cur != 0 {
		// Protect cur and validate: prev must still hold cur untagged.
		// A changed reference means cur was unlinked from prev; a set
		// Mark bit means prev itself is logically deleted — either way
		// cur might already be retired, so restart (Figure 3).
		if !t.ProtectWord(hpCur, prev, tagptr.Pack(cur, 0)) {
			goto retry
		}
		curNode := l.pool.Deref(cur)
		nextW := curNode.next.Load()
		next, tag := tagptr.Split(nextW)
		if tag&tagptr.Mark != 0 {
			// cur is logically deleted: unlink it. prev's node is
			// protected (hpPrev or the list head), cur by hpCur.
			if !prev.CompareAndSwap(tagptr.Pack(cur, 0), tagptr.Pack(next, 0)) {
				goto retry
			}
			t.Retire(cur, l.pool)
			cur = next
			continue
		}
		if !pairBefore(curNode.key, curNode.aux, key, aux) {
			return posHP{prev: prev, cur: cur, next: next,
				found: curNode.key == key && curNode.aux == aux}
		}
		prev = &curNode.next
		t.Swap(hpPrev, hpCur)
		cur = next
	}
	return posHP{prev: prev, cur: 0}
}

// Get returns the value stored under key.
func (h *HandleHP) Get(key uint64) (uint64, bool) { return h.GetFrom(0, key, 0) }

// GetFrom is Get entering the list at the sentinel start (0 = head) and
// matching the (key, aux) pair.
func (h *HandleHP) GetFrom(start, key, aux uint64) (uint64, bool) {
	pos := h.find(key, aux, start)
	defer h.t.ClearAll()
	if !pos.found {
		return 0, false
	}
	return h.l.pool.Deref(pos.cur).val, true
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleHP) Insert(key, val uint64) bool { return h.InsertFrom(0, key, 0, val) }

// InsertFrom is Insert entering the list at the sentinel start (0 = head)
// with the full (key, aux) ordering pair.
func (h *HandleHP) InsertFrom(start, key, aux, val uint64) bool {
	defer h.t.ClearAll()
	for {
		pos := h.find(key, aux, start)
		if pos.found {
			return false
		}
		ref, n := h.l.pool.Alloc()
		n.key, n.aux, n.val = key, aux, val
		n.next.Store(tagptr.Pack(pos.cur, 0))
		if pos.prev.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(ref, 0)) {
			return true
		}
		h.l.pool.Free(ref)
	}
}

// EnsureFrom returns the node holding (key, aux=0), inserting it with a
// zero value if absent — the get-or-insert hook behind somap's dummy
// nodes. Insertion races converge on a single winner, so every caller
// sees the same ref. The returned node must be treated as a sentinel:
// callers must never Delete it, which keeps the ref stable forever.
func (h *HandleHP) EnsureFrom(start, key uint64) uint64 {
	defer h.t.ClearAll()
	for {
		pos := h.find(key, 0, start)
		if pos.found {
			return pos.cur
		}
		ref, n := h.l.pool.Alloc()
		n.key, n.aux, n.val = key, 0, 0
		n.next.Store(tagptr.Pack(pos.cur, 0))
		if pos.prev.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(ref, 0)) {
			return ref
		}
		h.l.pool.Free(ref)
	}
}

// Delete removes key, reporting whether it was present.
func (h *HandleHP) Delete(key uint64) bool { return h.DeleteFrom(0, key, 0) }

// DeleteFrom is Delete entering the list at the sentinel start (0 = head)
// and matching the (key, aux) pair.
func (h *HandleHP) DeleteFrom(start, key, aux uint64) bool {
	defer h.t.ClearAll()
	for {
		pos := h.find(key, aux, start)
		if !pos.found {
			return false
		}
		curNode := h.l.pool.Deref(pos.cur)
		nextW := curNode.next.Load()
		if tagptr.TagOf(nextW)&tagptr.Mark != 0 {
			continue
		}
		if !curNode.next.CompareAndSwap(nextW, tagptr.WithTag(nextW, tagptr.Mark)) {
			continue
		}
		if pos.prev.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(tagptr.RefOf(nextW), 0)) {
			h.t.Retire(pos.cur, h.l.pool)
		}
		return true
	}
}
