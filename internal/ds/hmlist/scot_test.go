package hmlist

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/hp"
)

// TestScotConcurrentStress hammers the hmlist SCOT variant from several
// goroutines over a small key range with a detect-mode arena: any
// use-after-free panics. The variants() table covers SCOT in the model
// tests; this top-level name also puts the hmlist twin in the race
// subset (`make check` runs -race -run 'Scot|SCOT').
func TestScotConcurrentStress(t *testing.T) {
	const (
		workers = 4
		iters   = 6000
		keys    = 32
	)
	dom := hp.NewDomain()
	dom.Name = "hp-scot"
	p := NewPool(arena.ModeDetect)
	l := NewListSCOT(p)
	handles := make([]*HandleSCOT, workers)
	for i := range handles {
		handles[i] = l.NewHandleSCOT(dom)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(h *HandleSCOT, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				k := uint64(rng.Intn(keys))
				switch rng.Intn(4) {
				case 0:
					h.Insert(k, k)
				case 1:
					h.Delete(k)
				default:
					h.Get(k)
				}
			}
		}(handles[w], int64(w+1))
	}
	wg.Wait()
	for _, h := range handles {
		h.Thread().Finish()
	}
	dom.NewThread(0).Reclaim()
	if st := p.Stats(); st.UAF != 0 || st.DoubleFree != 0 {
		t.Fatalf("memory violations: uaf=%d doublefree=%d", st.UAF, st.DoubleFree)
	}
}
