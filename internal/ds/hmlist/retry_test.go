package hmlist

import (
	"testing"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/hp"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// TestFindHelpsStalledDelete is the regression test for the PR-1 livelock
// pattern: a find() that restarts on every marked node *without helping to
// unlink it* spins forever once a deleter stalls between its mark CAS and
// its unlink CAS — the marked node stays reachable and every retry
// re-encounters it. ListHP.find must instead unlink the node itself
// (Figure 3's helping step) and keep going.
//
// The test is deterministic: everything runs on one goroutine, and the
// stalled deleter is simulated from the arena deref hook — when the
// traversal first dereferences the trigger node, the hook marks the
// victim node's next word and "stalls" (never unlinks). The hook also
// trips a panic on a generous deref budget so the buggy pattern fails
// fast instead of hanging the test.
func TestFindHelpsStalledDelete(t *testing.T) {
	dom := hp.NewDomain()
	p := NewPool(arena.ModeDetect)
	l := NewListHP(p)
	h := l.NewHandleHP(dom)

	const n = 10
	const trigKey, victimKey = 2, 5
	for k := uint64(0); k < n; k++ {
		if !h.Insert(k, k*10) {
			t.Fatalf("prefill Insert(%d) failed", k)
		}
	}
	refOf := func(key uint64) uint64 {
		for cur := tagptr.RefOf(l.head.Load()); cur != 0; {
			node := p.Deref(cur)
			if node.key == key {
				return cur
			}
			cur = tagptr.RefOf(node.next.Load())
		}
		t.Fatalf("key %d not in list", key)
		return 0
	}
	trigRef := refOf(trigKey)
	victim := p.Deref(refOf(victimKey))

	const maxDerefs = 64 * n
	derefs, armed := 0, true
	p.SetDerefHook(func(r arena.Ref) {
		derefs++
		if derefs > maxDerefs {
			panic("find() retries past a stalled delete without helping (PR-1 livelock pattern)")
		}
		if armed && r == trigRef {
			armed = false
			// The stalled deleter: mark the victim, never unlink it.
			victim.next.Store(tagptr.WithTag(victim.next.Load(), tagptr.Mark))
		}
	})
	defer p.SetDerefHook(nil)

	// Traverse past the victim. find() must meet the marked node, unlink
	// and retire it itself, and still reach the target.
	if v, ok := h.Get(n - 1); !ok || v != (n-1)*10 {
		t.Fatalf("Get(%d) = (%d, %v) past a marked node, want (%d, true)", n-1, v, ok, (n-1)*10)
	}
	if derefs > 8*n {
		t.Fatalf("one Get over %d nodes took %d derefs — retrying instead of helping", n, derefs)
	}
	if armed {
		t.Fatal("trap never fired: trigger node not dereferenced")
	}

	// The victim must now be fully unlinked: gone from the list, every
	// remaining key intact, and its node retired (freed after a drain).
	if _, ok := h.Get(victimKey); ok {
		t.Fatalf("Get(%d) found the helped-unlinked victim", victimKey)
	}
	for k := uint64(0); k < n; k++ {
		if k == victimKey {
			continue
		}
		if v, ok := h.Get(k); !ok || v != k*10 {
			t.Fatalf("Get(%d) = (%d, %v) after helping, want (%d, true)", k, v, ok, k*10)
		}
	}
	p.SetDerefHook(nil)
	h.Thread().Finish()
	dom.NewThread(0).Reclaim()
	if live := p.Stats().Live; live != n-1 {
		t.Fatalf("live nodes = %d after drain, want %d (victim retired+freed)", live, n-1)
	}
	if st := p.Stats(); st.UAF != 0 || st.DoubleFree != 0 {
		t.Fatalf("memory violations: uaf=%d doublefree=%d", st.UAF, st.DoubleFree)
	}
}
