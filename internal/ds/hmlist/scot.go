package hmlist

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/hp"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// Hazard slot indices for the SCOT traversal: the anchor (last unmarked
// node), the marked-chain entry, and the current candidate.
const (
	scotAnchor = iota
	scotEntry
	scotCur
	scotSlots
)

// ListSCOT runs the *optimistic* SCOT traversal discipline
// (internal/hp/scot.go) over Harris-Michael nodes on plain hazard
// pointers: marked chains are walked through and unlinked wholesale at
// the anchor, with the handshake (anchor word + chain-entry birth tag)
// substituting for ListHP's per-hop predecessor validation. It exists as
// the apples-to-apples hmlist row next to ListHP and ListHPP.
type ListSCOT struct {
	pool Pool
	head atomic.Uint64

	// SkipValidation elides the handshake — the stress harness's
	// must-fail control (see hhslist.ListSCOT).
	SkipValidation bool
}

// NewListSCOT creates an empty list over pool.
func NewListSCOT(pool Pool) *ListSCOT { return &ListSCOT{pool: pool} }

// linkOf returns the link to traverse from: the list head for start 0,
// otherwise the next field of the start node. A non-zero start must be a
// sentinel — never marked, unlinked, or freed — so it needs no hazard
// before serving as the initial anchor.
func (l *ListSCOT) linkOf(start uint64) *atomic.Uint64 {
	if start == 0 {
		return &l.head
	}
	return &l.pool.Deref(start).next
}

// NewHandleSCOT returns a per-worker handle over a plain HP domain.
func (l *ListSCOT) NewHandleSCOT(dom *hp.Domain) *HandleSCOT {
	return &HandleSCOT{l: l, t: dom.NewThread(scotSlots)}
}

// HandleSCOT is a per-worker handle; not safe for concurrent use.
type HandleSCOT struct {
	l *ListSCOT
	t *hp.Thread
}

// Thread exposes the underlying HP thread.
func (h *HandleSCOT) Thread() *hp.Thread { return h.t }

// Rebind points the handle at another list sharing the same pool and
// domain; used by bucket containers (internal/ds/hashmap).
func (h *HandleSCOT) Rebind(l *ListSCOT) *HandleSCOT { h.l = l; return h }

type posSCOT struct {
	prevLink *atomic.Uint64
	cur      uint64
	found    bool
}

// trySearch traverses optimistically through marked chains keeping only
// the anchor and the chain entry protected, validates every hop with the
// ScotChain handshake, and unlinks the chain immediately preceding the
// destination with one CAS on the anchor. ok=false means a validation or
// an unlink CAS failed; the caller must restart. See
// hhslist.HandleSCOT.trySearch for the commented original.
func (h *HandleSCOT) trySearch(key, aux, start uint64) (posSCOT, bool) {
	l, t := h.l, h.t
	var chain hp.ScotChain
	chain.Reset(l.linkOf(start))
	cur := tagptr.RefOf(chain.AnchorLink().Load())
	found := false

	for cur != 0 {
		t.Protect(scotCur, cur)
		// fence(SC) — implicit.
		if !l.SkipValidation && !chain.Validate(l.pool, cur) {
			return posSCOT{}, false
		}
		node := l.pool.Deref(cur)
		nextW := node.next.Load()
		next := tagptr.RefOf(nextW)
		if tagptr.IsMarked(nextW) {
			if !chain.On() {
				chain.Enter(l.pool, cur)
				t.Swap(scotEntry, scotCur)
			}
			cur = next
			continue
		}
		if pairBefore(node.key, node.aux, key, aux) {
			t.Swap(scotAnchor, scotCur)
			chain.Reset(&node.next)
			cur = next
			continue
		}
		found = node.key == key && node.aux == aux
		break
	}

	anchorLink := chain.AnchorLink()
	if chain.On() {
		entry, target := chain.Entry(), cur
		if !anchorLink.CompareAndSwap(tagptr.Pack(entry, 0), tagptr.Pack(target, 0)) {
			return posSCOT{}, false
		}
		for r := entry; r != target; {
			nextR := tagptr.RefOf(l.pool.Deref(r).next.Load())
			t.Retire(r, l.pool)
			r = nextR
		}
	}
	if cur != 0 && tagptr.IsMarked(l.pool.Deref(cur).next.Load()) {
		return posSCOT{}, false // destination got deleted; retry
	}
	return posSCOT{prevLink: anchorLink, cur: cur, found: found}, true
}

// Get walks straight through marked nodes with two live hazards
// (anchor, cur), resuming from the still-attached anchor on a failed
// validation whenever possible.
func (h *HandleSCOT) Get(key uint64) (uint64, bool) { return h.GetFrom(0, key, 0) }

// GetFrom is Get entering the list at the sentinel start (0 = head) and
// matching the (key, aux) pair.
func (h *HandleSCOT) GetFrom(start, key, aux uint64) (uint64, bool) {
	l, t := h.l, h.t
	defer t.ClearAll()
	var chain hp.ScotChain
restart:
	chain.Reset(l.linkOf(start))
	cur := tagptr.RefOf(chain.AnchorLink().Load())
	for {
		if cur == 0 {
			return 0, false
		}
		t.Protect(scotCur, cur)
		// fence(SC) — implicit.
		if !l.SkipValidation && !chain.Validate(l.pool, cur) {
			resumed, ok := chain.Resume()
			if !ok {
				goto restart
			}
			cur = resumed
			continue
		}
		node := l.pool.Deref(cur)
		nextW := node.next.Load()
		next := tagptr.RefOf(nextW)
		if tagptr.IsMarked(nextW) {
			if !chain.On() {
				chain.Enter(l.pool, cur)
			}
			cur = next
			continue
		}
		if !pairBefore(node.key, node.aux, key, aux) {
			if node.key == key && node.aux == aux {
				return node.val, true
			}
			return 0, false
		}
		t.Swap(scotAnchor, scotCur)
		chain.Reset(&node.next)
		cur = next
	}
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleSCOT) Insert(key, val uint64) bool { return h.InsertFrom(0, key, 0, val) }

// InsertFrom is Insert entering the list at the sentinel start (0 = head)
// with the full (key, aux) ordering pair.
func (h *HandleSCOT) InsertFrom(start, key, aux, val uint64) bool {
	defer h.t.ClearAll()
	for {
		pos, ok := h.trySearch(key, aux, start)
		if !ok {
			continue
		}
		if pos.found {
			return false
		}
		ref, n := h.l.pool.Alloc()
		n.key, n.aux, n.val = key, aux, val
		n.next.Store(tagptr.Pack(pos.cur, 0))
		if pos.prevLink.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(ref, 0)) {
			return true
		}
		h.l.pool.Free(ref)
	}
}

// EnsureFrom returns the node holding (key, aux=0), inserting it with a
// zero value if absent. The returned node must be treated as a sentinel:
// callers must never Delete it, which keeps the ref stable forever.
func (h *HandleSCOT) EnsureFrom(start, key uint64) uint64 {
	defer h.t.ClearAll()
	for {
		pos, ok := h.trySearch(key, 0, start)
		if !ok {
			continue
		}
		if pos.found {
			return pos.cur
		}
		ref, n := h.l.pool.Alloc()
		n.key, n.aux, n.val = key, 0, 0
		n.next.Store(tagptr.Pack(pos.cur, 0))
		if pos.prevLink.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(ref, 0)) {
			return ref
		}
		h.l.pool.Free(ref)
	}
}

// Delete removes key, reporting whether it was present.
func (h *HandleSCOT) Delete(key uint64) bool { return h.DeleteFrom(0, key, 0) }

// DeleteFrom is Delete entering the list at the sentinel start (0 = head)
// and matching the (key, aux) pair.
func (h *HandleSCOT) DeleteFrom(start, key, aux uint64) bool {
	defer h.t.ClearAll()
	for {
		pos, ok := h.trySearch(key, aux, start)
		if !ok {
			continue
		}
		if !pos.found {
			return false
		}
		node := h.l.pool.Deref(pos.cur)
		nextW := node.next.Load()
		if tagptr.IsMarked(nextW) {
			continue // someone else is deleting it; re-search decides
		}
		if !node.next.CompareAndSwap(nextW, tagptr.WithTag(nextW, tagptr.Mark)) {
			continue
		}
		next := tagptr.RefOf(nextW)
		if pos.prevLink.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(next, 0)) {
			h.t.Retire(pos.cur, h.l.pool)
		}
		return true
	}
}
