// Package hmlist implements the Harris-Michael lock-free linked list
// (Michael, SPAA 2002) — the sorted key-value list designed to be
// compatible with hazard pointers: deletion first *marks* a node's next
// pointer (logical deletion) and traversals eagerly unlink marked nodes
// one at a time, so validation can over-approximate unreachability by
// checking "the previous link still equals cur, untagged".
//
// The package provides one implementation per protection style evaluated
// in the HP++ paper:
//
//	ListCS  — critical-section schemes (EBR, PEBR, NR) via smr.Guard
//	ListHP  — original hazard pointers, hand-over-hand validation (Fig. 3)
//	ListHPP — HP++ in backward-compatible mode (§4.2)
//	ListRC  — deferred reference counting
package hmlist

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// Node is a list node. The next word packs the successor reference with
// the Mark (logical deletion) and, for HP++, Invalid bits. Nodes are
// ordered by the (key, aux) pair: plain list usage leaves aux zero, while
// the split-ordered map (internal/ds/somap) stores the bit-reversed hash
// in key and the full user key in aux, restoring injectivity when two
// hashes collapse onto the same split-order key.
type Node struct {
	next atomic.Uint64
	key  uint64
	aux  uint64
	val  uint64
}

// pairBefore reports whether (k1, a1) orders strictly before (k2, a2) in
// the list's lexicographic (key, aux) order.
func pairBefore(k1, a1, k2, a2 uint64) bool {
	return k1 < k2 || (k1 == k2 && a1 < a2)
}

// Pool allocates list nodes and implements core.Invalidator.
type Pool struct {
	*arena.Pool[Node]
}

// NewPool creates a node pool.
func NewPool(mode arena.Mode) Pool {
	return Pool{arena.NewPool[Node]("hmlist", mode)}
}

// Invalidate sets the Invalid bit on the node's next word with a plain
// store; legal because unlinked nodes' links never change (Assumption 1).
func (p Pool) Invalidate(ref uint64) {
	n := p.Deref(ref)
	n.next.Store(n.next.Load() | tagptr.Invalid)
}

// Key returns ref's key (for tests and invariant checks).
func (p Pool) Key(ref uint64) uint64 { return p.Deref(ref).key }

// NextWord returns ref's raw next word (for tests and invariant checks).
func (p Pool) NextWord(ref uint64) tagptr.Word { return p.Deref(ref).next.Load() }
