package hmlist

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/ebr"
	"github.com/gosmr/gosmr/internal/hp"
	"github.com/gosmr/gosmr/internal/nr"
	"github.com/gosmr/gosmr/internal/pebr"
	"github.com/gosmr/gosmr/internal/rc"
	"github.com/gosmr/gosmr/internal/unsafefree"
)

// handle is the common op surface of all four list variants.
type handle interface {
	Get(key uint64) (uint64, bool)
	Insert(key, val uint64) bool
	Delete(key uint64) bool
}

// variant describes one (list, scheme) construction for table-driven tests.
type variant struct {
	name string
	mk   func(mode arena.Mode) (mkHandle func() handle, finish func(), stats func() int64)
}

func variants() []variant {
	return []variant{
		{"CS/EBR", func(mode arena.Mode) (func() handle, func(), func() int64) {
			dom := ebr.NewDomain()
			l := NewListCS(NewPool(mode))
			var hs []*HandleCS
			return func() handle {
					h := l.NewHandleCS(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Guard().(*ebr.Guard).Drain()
					}
				}, dom.Unreclaimed
		}},
		{"CS/PEBR", func(mode arena.Mode) (func() handle, func(), func() int64) {
			dom := pebr.NewDomain()
			l := NewListCS(NewPool(mode))
			var hs []*HandleCS
			return func() handle {
					h := l.NewHandleCS(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Guard().(*pebr.Guard).ClearShields()
					}
					for i := 0; i < 8; i++ {
						for _, h := range hs {
							h.Guard().(*pebr.Guard).Collect()
						}
					}
				}, dom.Unreclaimed
		}},
		{"CS/NR", func(mode arena.Mode) (func() handle, func(), func() int64) {
			dom := nr.NewDomain()
			l := NewListCS(NewPool(mode))
			return func() handle { return l.NewHandleCS(dom) }, func() {}, dom.Unreclaimed
		}},
		{"HP", func(mode arena.Mode) (func() handle, func(), func() int64) {
			dom := hp.NewDomain()
			l := NewListHP(NewPool(mode))
			var hs []*HandleHP
			return func() handle {
					h := l.NewHandleHP(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Thread().Finish()
					}
					fin := dom.NewThread(0)
					fin.Reclaim()
				}, dom.Unreclaimed
		}},
		{"HPP", func(mode arena.Mode) (func() handle, func(), func() int64) {
			dom := core.NewDomain(core.Options{})
			l := NewListHPP(NewPool(mode))
			var hs []*HandleHPP
			return func() handle {
					h := l.NewHandleHPP(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Thread().Finish()
					}
					fin := dom.NewThread(0)
					fin.Reclaim()
				}, dom.Unreclaimed
		}},
		{"HPP/EpochFence", func(mode arena.Mode) (func() handle, func(), func() int64) {
			dom := core.NewDomain(core.Options{EpochFence: true})
			l := NewListHPP(NewPool(mode))
			var hs []*HandleHPP
			return func() handle {
					h := l.NewHandleHPP(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Thread().Finish()
					}
					fin := dom.NewThread(0)
					fin.Reclaim()
					fin.Finish()
				}, dom.Unreclaimed
		}},
		{"SCOT", func(mode arena.Mode) (func() handle, func(), func() int64) {
			dom := hp.NewDomain()
			dom.Name = "hp-scot"
			l := NewListSCOT(NewPool(mode))
			var hs []*HandleSCOT
			return func() handle {
					h := l.NewHandleSCOT(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Thread().Finish()
					}
					fin := dom.NewThread(0)
					fin.Reclaim()
				}, dom.Unreclaimed
		}},
		{"RC", func(mode arena.Mode) (func() handle, func(), func() int64) {
			dom := rc.NewDomain()
			l := NewListRC(NewPoolRC(mode))
			var hs []*HandleRC
			return func() handle {
					h := l.NewHandleRC(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Guard().Drain()
					}
				}, dom.Unreclaimed
		}},
	}
}

// TestSequentialModel drives each variant against a map model.
func TestSequentialModel(t *testing.T) {
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			mk, finish, _ := v.mk(arena.ModeDetect)
			h := mk()
			defer finish()
			model := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < 4000; i++ {
				k := uint64(rng.Intn(64))
				switch rng.Intn(3) {
				case 0:
					_, inModel := model[k]
					if got := h.Insert(k, k*10); got == inModel {
						t.Fatalf("op %d: Insert(%d) = %v, model has=%v", i, k, got, inModel)
					}
					if !inModel {
						model[k] = k * 10
					}
				case 1:
					_, inModel := model[k]
					if got := h.Delete(k); got != inModel {
						t.Fatalf("op %d: Delete(%d) = %v, model has=%v", i, k, got, inModel)
					}
					delete(model, k)
				default:
					val, ok := h.Get(k)
					mval, inModel := model[k]
					if ok != inModel || (ok && val != mval) {
						t.Fatalf("op %d: Get(%d) = (%d,%v), model (%d,%v)", i, k, val, ok, mval, inModel)
					}
				}
			}
		})
	}
}

// TestQuickModelEquivalence is a property-based variant of the model test.
func TestQuickModelEquivalence(t *testing.T) {
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			prop := func(ops []uint16) bool {
				mk, finish, _ := v.mk(arena.ModeDetect)
				h := mk()
				defer finish()
				model := map[uint64]uint64{}
				for _, op := range ops {
					k := uint64(op % 32)
					switch (op / 32) % 3 {
					case 0:
						_, in := model[k]
						if h.Insert(k, k) == in {
							return false
						}
						model[k] = k
					case 1:
						_, in := model[k]
						if h.Delete(k) != in {
							return false
						}
						delete(model, k)
					default:
						_, ok := h.Get(k)
						_, in := model[k]
						if ok != in {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentStress hammers each variant from several goroutines over a
// small key range with a detect-mode arena: any use-after-free panics.
func TestConcurrentStress(t *testing.T) {
	const (
		workers = 4
		iters   = 8000
		keys    = 32
	)
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			mk, finish, _ := v.mk(arena.ModeDetect)
			handles := make([]handle, workers)
			for i := range handles {
				handles[i] = mk()
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(h handle, seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < iters; i++ {
						k := uint64(rng.Intn(keys))
						switch rng.Intn(4) {
						case 0:
							h.Insert(k, k)
						case 1:
							h.Delete(k)
						default:
							h.Get(k)
						}
					}
				}(handles[w], int64(w+1))
			}
			wg.Wait()
			finish()
		})
	}
}

// TestDisjointKeysLinearizable: with per-worker disjoint key ranges, each
// worker must observe its own keys with sequential semantics even under
// full concurrency.
func TestDisjointKeysLinearizable(t *testing.T) {
	const workers = 4
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			mk, finish, _ := v.mk(arena.ModeDetect)
			handles := make([]handle, workers)
			for i := range handles {
				handles[i] = mk()
			}
			var wg sync.WaitGroup
			errc := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(h handle, base uint64) {
					defer wg.Done()
					model := map[uint64]uint64{}
					rng := rand.New(rand.NewSource(int64(base)))
					for i := 0; i < 3000; i++ {
						k := base + uint64(rng.Intn(16))
						switch rng.Intn(3) {
						case 0:
							_, in := model[k]
							if h.Insert(k, k) == in {
								t.Errorf("insert(%d) disagreed with private model", k)
								return
							}
							model[k] = k
						case 1:
							_, in := model[k]
							if h.Delete(k) != in {
								t.Errorf("delete(%d) disagreed with private model", k)
								return
							}
							delete(model, k)
						default:
							_, ok := h.Get(k)
							_, in := model[k]
							if ok != in {
								t.Errorf("get(%d) disagreed with private model", k)
								return
							}
						}
					}
				}(handles[w], uint64(w)*1000)
			}
			wg.Wait()
			close(errc)
			finish()
		})
	}
}

// TestNoLeaksAfterDrain checks that after deleting every key and draining
// reclamation, the arena has no live nodes (NR excluded: it leaks by
// design).
func TestNoLeaksAfterDrain(t *testing.T) {
	for _, v := range variants() {
		if v.name == "CS/NR" {
			continue
		}
		v := v
		t.Run(v.name, func(t *testing.T) {
			// Reach inside via a fresh pool per variant for stats.
			mkWithPool := func() (handle, func(), func() arena.Stats) {
				switch v.name {
				case "CS/EBR":
					dom := ebr.NewDomain()
					p := NewPool(arena.ModeDetect)
					l := NewListCS(p)
					h := l.NewHandleCS(dom)
					return h, func() { h.Guard().(*ebr.Guard).Drain() }, p.Stats
				case "CS/PEBR":
					dom := pebr.NewDomain()
					p := NewPool(arena.ModeDetect)
					l := NewListCS(p)
					h := l.NewHandleCS(dom)
					return h, func() {
						g := h.Guard().(*pebr.Guard)
						g.ClearShields()
						for i := 0; i < 8; i++ {
							g.Collect()
						}
					}, p.Stats
				case "HP":
					dom := hp.NewDomain()
					p := NewPool(arena.ModeDetect)
					l := NewListHP(p)
					h := l.NewHandleHP(dom)
					return h, func() { h.Thread().Finish(); dom.NewThread(0).Reclaim() }, p.Stats
				case "HPP", "HPP/EpochFence":
					dom := core.NewDomain(core.Options{EpochFence: v.name == "HPP/EpochFence"})
					p := NewPool(arena.ModeDetect)
					l := NewListHPP(p)
					h := l.NewHandleHPP(dom)
					return h, func() { h.Thread().Finish(); dom.NewThread(0).Reclaim() }, p.Stats
				case "SCOT":
					dom := hp.NewDomain()
					dom.Name = "hp-scot"
					p := NewPool(arena.ModeDetect)
					l := NewListSCOT(p)
					h := l.NewHandleSCOT(dom)
					return h, func() { h.Thread().Finish(); dom.NewThread(0).Reclaim() }, p.Stats
				case "RC":
					dom := rc.NewDomain()
					p := NewPoolRC(arena.ModeDetect)
					l := NewListRC(p)
					h := l.NewHandleRC(dom)
					return h, func() { h.Guard().Drain() }, p.Stats
				}
				t.Fatalf("unknown variant %s", v.name)
				return nil, nil, nil
			}
			h, drain, stats := mkWithPool()
			const n = 500
			for k := uint64(0); k < n; k++ {
				h.Insert(k, k)
			}
			for k := uint64(0); k < n; k++ {
				if !h.Delete(k) {
					t.Fatalf("delete(%d) failed", k)
				}
			}
			drain()
			if live := stats().Live; live != 0 {
				t.Fatalf("leaked %d nodes after drain", live)
			}
		})
	}
}

// TestUnsafeSchemeIsCaught demonstrates that the detect-mode arena catches
// a scheme that frees immediately — validating that the stress tests above
// are actually capable of failing. The arena's deref hook yields the
// scheduler between slot resolution and liveness validation, handing the
// unlink→free race window to the other workers; this makes the
// use-after-free reproducible with fixed seeds on any core count, so the
// test asserts a positive detection instead of skipping.
func TestUnsafeSchemeIsCaught(t *testing.T) {
	dom := unsafefree.NewDomain()
	p := NewPool(arena.ModeDetect)
	p.SetCount() // count UAF instead of panicking
	var derefs atomic.Uint64
	p.SetDerefHook(func(arena.Ref) {
		if derefs.Add(1)%16 == 0 {
			runtime.Gosched()
		}
	})
	defer p.SetDerefHook(nil)
	l := NewListCS(p)

	const rounds = 8
	for round := 0; round < rounds && p.Stats().UAF == 0; round++ {
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				h := l.NewHandleCS(dom)
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 4000; i++ {
					k := uint64(rng.Intn(8))
					switch rng.Intn(3) {
					case 0:
						h.Insert(k, k)
					case 1:
						h.Delete(k)
					default:
						h.Get(k)
					}
				}
			}(int64(round*31 + w + 1))
		}
		wg.Wait()
	}
	if p.Stats().UAF == 0 {
		t.Fatalf("no use-after-free detected in %d rounds under immediate free", rounds)
	}
}
