package hmlist

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/rc"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// NodeRC is a list node carrying a strong reference count of incoming
// heap links.
type NodeRC struct {
	count atomic.Int64
	next  atomic.Uint64
	key   uint64
	val   uint64
}

// PoolRC allocates counted nodes and implements rc.Object.
type PoolRC struct {
	*arena.Pool[NodeRC]
}

// NewPoolRC creates a counted node pool.
func NewPoolRC(mode arena.Mode) PoolRC {
	return PoolRC{arena.NewPool[NodeRC]("hmlist-rc", mode)}
}

// IncCount adds a strong reference.
func (p PoolRC) IncCount(ref uint64) { p.Deref(ref).count.Add(1) }

// DecCount drops a strong reference and returns the new count.
func (p PoolRC) DecCount(ref uint64) int64 { return p.Deref(ref).count.Add(-1) }

// Trace reports the node's outgoing strong references.
func (p PoolRC) Trace(ref uint64, out []uint64) []uint64 {
	if nxt := tagptr.RefOf(p.Deref(ref).next.Load()); nxt != 0 {
		out = append(out, nxt)
	}
	return out
}

// ListRC is the Harris-Michael list under deferred reference counting:
// readers traverse count-free inside an epoch pin; writers adjust counts
// eagerly when creating links and defer decrements through the grace
// period.
type ListRC struct {
	pool PoolRC
	head atomic.Uint64
}

// NewListRC creates an empty list over pool.
func NewListRC(pool PoolRC) *ListRC { return &ListRC{pool: pool} }

// NewHandleRC returns a per-worker handle.
func (l *ListRC) NewHandleRC(dom *rc.Domain) *HandleRC {
	return &HandleRC{l: l, g: dom.NewGuard(), dt: rc.NewDecTask(dom, l.pool)}
}

// HandleRC is a per-worker handle; not safe for concurrent use.
type HandleRC struct {
	l  *ListRC
	g  *rc.Guard
	dt *rc.DecTask
}

// Guard exposes the underlying guard (for draining in benchmarks).
func (h *HandleRC) Guard() *rc.Guard { return h.g }

// Rebind points the handle at another list sharing the same pool and
// domain; used by bucket containers (internal/ds/hashmap).
func (h *HandleRC) Rebind(l *ListRC) *HandleRC { h.l = l; return h }

// find locates the position for key, unlinking marked nodes on the way
// and transferring their reference counts.
func (h *HandleRC) find(key uint64) posCS {
	l := h.l
retry:
	prev := &l.head
	cur := tagptr.RefOf(prev.Load())
	for cur != 0 {
		curNode := l.pool.Deref(cur)
		nextW := curNode.next.Load()
		next, tag := tagptr.Split(nextW)
		if prev.Load() != tagptr.Pack(cur, 0) {
			goto retry
		}
		if tag&tagptr.Mark != 0 {
			// Unlink cur: prev→next replaces prev→cur. next gains a
			// link, cur loses one; cur's own link to next is released
			// transitively when cur's count reaches zero.
			h.incIfNonNil(next)
			if !prev.CompareAndSwap(tagptr.Pack(cur, 0), tagptr.Pack(next, 0)) {
				h.undoInc(next)
				goto retry
			}
			h.g.DeferDec(h.dt, cur)
			cur = next
			continue
		}
		if curNode.key >= key {
			return posCS{prev: prev, cur: cur, next: next, found: curNode.key == key}
		}
		prev = &curNode.next
		cur = next
	}
	return posCS{prev: prev, cur: 0}
}

func (h *HandleRC) incIfNonNil(ref uint64) {
	if ref != 0 {
		h.l.pool.IncCount(ref)
	}
}

func (h *HandleRC) undoInc(ref uint64) {
	if ref != 0 {
		h.g.DeferDec(h.dt, ref)
	}
}

// Get returns the value stored under key.
func (h *HandleRC) Get(key uint64) (uint64, bool) {
	h.g.Pin()
	defer h.g.Unpin()
	pos := h.find(key)
	if !pos.found {
		return 0, false
	}
	return h.l.pool.Deref(pos.cur).val, true
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleRC) Insert(key, val uint64) bool {
	h.g.Pin()
	defer h.g.Unpin()
	for {
		pos := h.find(key)
		if pos.found {
			return false
		}
		ref, n := h.l.pool.Alloc()
		n.key, n.val = key, val
		n.count.Store(1) // prev's incoming link once published
		n.next.Store(tagptr.Pack(pos.cur, 0))
		h.incIfNonNil(pos.cur) // the new node's link to cur
		if pos.prev.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(ref, 0)) {
			// prev→cur was replaced by prev→new: cur loses one link.
			h.undoInc(pos.cur)
			return true
		}
		h.undoInc(pos.cur) // speculative link never published
		h.l.pool.Free(ref)
	}
}

// Delete removes key, reporting whether it was present.
func (h *HandleRC) Delete(key uint64) bool {
	h.g.Pin()
	defer h.g.Unpin()
	for {
		pos := h.find(key)
		if !pos.found {
			return false
		}
		curNode := h.l.pool.Deref(pos.cur)
		nextW := curNode.next.Load()
		if tagptr.TagOf(nextW)&tagptr.Mark != 0 {
			continue
		}
		if !curNode.next.CompareAndSwap(nextW, tagptr.WithTag(nextW, tagptr.Mark)) {
			continue
		}
		next := tagptr.RefOf(nextW)
		h.incIfNonNil(next)
		if pos.prev.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(next, 0)) {
			h.g.DeferDec(h.dt, pos.cur)
		} else {
			h.undoInc(next)
		}
		return true
	}
}
