package hmlist

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/smr"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// ListHPP is the Harris-Michael list under HP++ in backward-compatible
// mode (§4.2 of the paper): traversal protects with TryProtect — which
// ignores logical-deletion tags and fails only on invalidated sources, so
// it never restarts more than original HP — and marked nodes are unlinked
// with TryUnlink, whose frontier is the single successor of the unlinked
// node.
type ListHPP struct {
	pool Pool
	head atomic.Uint64
}

// NewListHPP creates an empty list over pool.
func NewListHPP(pool Pool) *ListHPP { return &ListHPP{pool: pool} }

// NewHandleHPP returns a per-worker handle.
func (l *ListHPP) NewHandleHPP(dom *core.Domain) *HandleHPP {
	return &HandleHPP{l: l, t: dom.NewThread(hpSlots)}
}

// HandleHPP is a per-worker handle; not safe for concurrent use.
type HandleHPP struct {
	l *ListHPP
	t *core.Thread
}

// Thread exposes the underlying HP++ thread (for Finish in benchmarks).
func (h *HandleHPP) Thread() *core.Thread { return h.t }

// Rebind points the handle at another list sharing the same pool and
// domain; used by bucket containers (internal/ds/hashmap).
func (h *HandleHPP) Rebind(l *ListHPP) *HandleHPP { h.l = l; return h }

type posHPP struct {
	prev  *atomic.Uint64
	cur   uint64
	next  uint64
	found bool
}

// find locates key. Protection is validated by under-approximation: it
// fails only when the source node has been invalidated, in which case the
// traversal restarts from the head.
func (h *HandleHPP) find(key uint64) posHPP {
	l, t := h.l, h.t
retry:
	prev := &l.head
	var prevInvalid *atomic.Uint64 // nil: the head is never invalidated
	cur := tagptr.RefOf(prev.Load())
	for cur != 0 {
		if !t.TryProtect(hpCur, &cur, prevInvalid, prev) {
			goto retry
		}
		if cur == 0 {
			break
		}
		curNode := l.pool.Deref(cur)
		nextW := curNode.next.Load()
		next := tagptr.RefOf(nextW)
		if tagptr.IsMarked(nextW) {
			// cur is logically deleted: physically delete it with an
			// HP++ unlink. The frontier is cur's successor.
			ok := t.TryUnlink([]uint64{next}, func() ([]smr.Retired, bool) {
				if prev.CompareAndSwap(tagptr.Pack(cur, 0), tagptr.Pack(next, 0)) {
					return []smr.Retired{{Ref: cur, D: l.pool}}, true
				}
				return nil, false
			}, l.pool)
			if !ok {
				goto retry
			}
			cur = next
			continue
		}
		if curNode.key >= key {
			return posHPP{prev: prev, cur: cur, next: next, found: curNode.key == key}
		}
		prev = &curNode.next
		prevInvalid = &curNode.next
		t.Swap(hpPrev, hpCur)
		cur = next
	}
	return posHPP{prev: prev, cur: 0}
}

// Get returns the value stored under key.
func (h *HandleHPP) Get(key uint64) (uint64, bool) {
	pos := h.find(key)
	defer h.t.ClearAll()
	if !pos.found {
		return 0, false
	}
	return h.l.pool.Deref(pos.cur).val, true
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleHPP) Insert(key, val uint64) bool {
	defer h.t.ClearAll()
	for {
		pos := h.find(key)
		if pos.found {
			return false
		}
		ref, n := h.l.pool.Alloc()
		n.key, n.aux, n.val = key, 0, val
		n.next.Store(tagptr.Pack(pos.cur, 0))
		if pos.prev.CompareAndSwap(tagptr.Pack(pos.cur, 0), tagptr.Pack(ref, 0)) {
			return true
		}
		h.l.pool.Free(ref)
	}
}

// Delete removes key, reporting whether it was present.
func (h *HandleHPP) Delete(key uint64) bool {
	defer h.t.ClearAll()
	for {
		pos := h.find(key)
		if !pos.found {
			return false
		}
		curNode := h.l.pool.Deref(pos.cur)
		nextW := curNode.next.Load()
		if tagptr.IsMarked(nextW) {
			continue
		}
		if !curNode.next.CompareAndSwap(nextW, tagptr.WithTag(nextW, tagptr.Mark)) {
			continue
		}
		next := tagptr.RefOf(nextW)
		prev, cur := pos.prev, pos.cur
		h.t.TryUnlink([]uint64{next}, func() ([]smr.Retired, bool) {
			if prev.CompareAndSwap(tagptr.Pack(cur, 0), tagptr.Pack(next, 0)) {
				return []smr.Retired{{Ref: cur, D: h.l.pool}}, true
			}
			return nil, false
		}, h.l.pool)
		// If the unlink lost a race, a traversal will finish the job.
		return true
	}
}
