// Package tstack implements Treiber's lock-free stack — the paper's
// running example for the original HP protection pattern (Figure 2: Pop
// protects the head node and validates it by re-reading head).
//
// The stack satisfies Assumption 1 trivially: a node's next pointer never
// changes after it is pushed, so HP++ applies in backward-compatible mode
// with the head as the (never-invalidated) source of every protection.
package tstack

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/hp"
	"github.com/gosmr/gosmr/internal/smr"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// Node is a stack node; next is immutable after push.
type Node struct {
	next atomic.Uint64
	val  uint64
}

// Pool allocates stack nodes and implements core.Invalidator.
type Pool struct {
	*arena.Pool[Node]
}

// NewPool creates a node pool.
func NewPool(mode arena.Mode) Pool {
	return Pool{arena.NewPool[Node]("tstack", mode)}
}

// Invalidate sets the Invalid bit on the node's next word.
func (p Pool) Invalidate(ref uint64) {
	n := p.Deref(ref)
	n.next.Store(n.next.Load() | tagptr.Invalid)
}

// StackHP is Treiber's stack under original hazard pointers, exactly as
// in the paper's Figure 2.
type StackHP struct {
	pool Pool
	head atomic.Uint64
}

// NewStackHP creates an empty stack over pool.
func NewStackHP(pool Pool) *StackHP { return &StackHP{pool: pool} }

// NewHandleHP returns a per-worker handle.
func (s *StackHP) NewHandleHP(dom *hp.Domain) *StackHandleHP {
	return &StackHandleHP{s: s, t: dom.NewThread(1)}
}

// StackHandleHP is a per-worker handle; not safe for concurrent use.
type StackHandleHP struct {
	s *StackHP
	t *hp.Thread
}

// Thread exposes the underlying HP thread.
func (h *StackHandleHP) Thread() *hp.Thread { return h.t }

// Push adds val on top of the stack.
func (h *StackHandleHP) Push(val uint64) {
	ref, nd := h.s.pool.Alloc()
	nd.val = val
	for {
		top := h.s.head.Load()
		nd.next.Store(top)
		if h.s.head.CompareAndSwap(top, tagptr.Pack(ref, 0)) {
			return
		}
	}
}

// Pop removes and returns the top value (Figure 2 of the paper: protect
// the head node, validate head unchanged, then dereference).
func (h *StackHandleHP) Pop() (uint64, bool) {
	defer h.t.Clear(0)
	for {
		top := h.s.head.Load()
		if tagptr.IsNil(top) {
			return 0, false
		}
		if !h.t.ProtectWord(0, &h.s.head, top) {
			continue // head moved between the load and the protection
		}
		nd := h.s.pool.Deref(tagptr.RefOf(top))
		next := nd.next.Load()
		if h.s.head.CompareAndSwap(top, next) {
			v := nd.val
			h.t.Retire(tagptr.RefOf(top), h.s.pool)
			return v, true
		}
	}
}

// StackHPP is Treiber's stack under HP++ in backward-compatible mode: the
// head pointer is the protection source (never invalidated), and popped
// nodes go through TryUnlink so their next pointers are invalidated
// before reclamation.
type StackHPP struct {
	pool Pool
	head atomic.Uint64
}

// NewStackHPP creates an empty stack over pool.
func NewStackHPP(pool Pool) *StackHPP { return &StackHPP{pool: pool} }

// NewHandleHPP returns a per-worker handle.
func (s *StackHPP) NewHandleHPP(dom *core.Domain) *StackHandleHPP {
	return &StackHandleHPP{s: s, t: dom.NewThread(1)}
}

// StackHandleHPP is a per-worker handle; not safe for concurrent use.
type StackHandleHPP struct {
	s *StackHPP
	t *core.Thread
}

// Thread exposes the underlying HP++ thread.
func (h *StackHandleHPP) Thread() *core.Thread { return h.t }

// Push adds val on top of the stack.
func (h *StackHandleHPP) Push(val uint64) {
	ref, nd := h.s.pool.Alloc()
	nd.val = val
	for {
		top := h.s.head.Load()
		nd.next.Store(tagptr.WithoutTag(top))
		if h.s.head.CompareAndSwap(top, tagptr.Pack(ref, 0)) {
			return
		}
	}
}

// Pop removes and returns the top value.
func (h *StackHandleHPP) Pop() (uint64, bool) {
	defer h.t.Clear(0)
	for {
		cur := tagptr.RefOf(h.s.head.Load())
		if cur == 0 {
			return 0, false
		}
		if !h.t.TryProtect(0, &cur, nil, &h.s.head) {
			continue
		}
		if cur == 0 {
			return 0, false
		}
		nd := h.s.pool.Deref(cur)
		next := tagptr.RefOf(nd.next.Load())
		var val uint64
		pool := h.s.pool
		head := &h.s.head
		target := cur
		ok := h.t.TryUnlink(nil, func() ([]smr.Retired, bool) {
			if !head.CompareAndSwap(tagptr.Pack(target, 0), tagptr.Pack(next, 0)) {
				return nil, false
			}
			val = pool.Deref(target).val
			return []smr.Retired{{Ref: target, D: pool}}, true
		}, pool)
		if ok {
			return val, true
		}
	}
}

// StackCS is Treiber's stack for critical-section schemes.
type StackCS struct {
	pool Pool
	head atomic.Uint64
}

// NewStackCS creates an empty stack over pool.
func NewStackCS(pool Pool) *StackCS { return &StackCS{pool: pool} }

// NewHandleCS returns a per-worker handle.
func (s *StackCS) NewHandleCS(dom smr.GuardDomain) *StackHandleCS {
	return &StackHandleCS{s: s, g: dom.NewGuard(1)}
}

// StackHandleCS is a per-worker handle; not safe for concurrent use.
type StackHandleCS struct {
	s *StackCS
	g smr.Guard
}

// Guard exposes the underlying guard.
func (h *StackHandleCS) Guard() smr.Guard { return h.g }

// Push adds val on top of the stack.
func (h *StackHandleCS) Push(val uint64) {
	ref, nd := h.s.pool.Alloc()
	nd.val = val
	for {
		top := h.s.head.Load()
		nd.next.Store(top)
		if h.s.head.CompareAndSwap(top, tagptr.Pack(ref, 0)) {
			return
		}
	}
}

// Pop removes and returns the top value.
func (h *StackHandleCS) Pop() (uint64, bool) {
	h.g.Pin()
	defer h.g.Unpin()
	for {
		top := h.s.head.Load()
		cur := tagptr.RefOf(top)
		if cur == 0 {
			return 0, false
		}
		if !h.g.Track(0, cur) {
			h.g.Unpin()
			h.g.Pin()
			continue
		}
		nd := h.s.pool.Deref(cur)
		next := nd.next.Load()
		if h.s.head.CompareAndSwap(top, next) {
			v := nd.val
			h.g.Retire(cur, h.s.pool)
			return v, true
		}
	}
}
