package tstack

import (
	"sync"
	"testing"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/ebr"
	"github.com/gosmr/gosmr/internal/hp"
)

type stack interface {
	Push(uint64)
	Pop() (uint64, bool)
}

func variants(mode arena.Mode) map[string]struct {
	mk     func() stack
	finish func()
} {
	out := map[string]struct {
		mk     func() stack
		finish func()
	}{}

	{
		dom := hp.NewDomain()
		s := NewStackHP(NewPool(mode))
		var hs []*StackHandleHP
		out["HP"] = struct {
			mk     func() stack
			finish func()
		}{
			mk: func() stack {
				h := s.NewHandleHP(dom)
				hs = append(hs, h)
				return h
			},
			finish: func() {
				for _, h := range hs {
					h.Thread().Finish()
				}
				dom.NewThread(0).Reclaim()
			},
		}
	}
	{
		dom := core.NewDomain(core.Options{})
		s := NewStackHPP(NewPool(mode))
		var hs []*StackHandleHPP
		out["HPP"] = struct {
			mk     func() stack
			finish func()
		}{
			mk: func() stack {
				h := s.NewHandleHPP(dom)
				hs = append(hs, h)
				return h
			},
			finish: func() {
				for _, h := range hs {
					h.Thread().Finish()
				}
				dom.NewThread(0).Reclaim()
			},
		}
	}
	{
		dom := ebr.NewDomain()
		s := NewStackCS(NewPool(mode))
		var hs []*StackHandleCS
		out["EBR"] = struct {
			mk     func() stack
			finish func()
		}{
			mk: func() stack {
				h := s.NewHandleCS(dom)
				hs = append(hs, h)
				return h
			},
			finish: func() {
				for _, h := range hs {
					h.Guard().(*ebr.Guard).Drain()
				}
			},
		}
	}
	return out
}

func TestLIFOOrder(t *testing.T) {
	for name, v := range variants(arena.ModeDetect) {
		t.Run(name, func(t *testing.T) {
			h := v.mk()
			defer v.finish()
			for i := uint64(1); i <= 100; i++ {
				h.Push(i)
			}
			for i := uint64(100); i >= 1; i-- {
				got, ok := h.Pop()
				if !ok || got != i {
					t.Fatalf("Pop = (%d,%v), want %d", got, ok, i)
				}
			}
			if _, ok := h.Pop(); ok {
				t.Fatal("pop from empty stack succeeded")
			}
		})
	}
}

// TestConcurrentConservation: every pushed value is popped exactly once.
func TestConcurrentConservation(t *testing.T) {
	for name, v := range variants(arena.ModeDetect) {
		t.Run(name, func(t *testing.T) {
			const workers = 4
			const each = 5000
			popped := make([]map[uint64]bool, workers)
			var wg sync.WaitGroup
			handles := make([]stack, workers)
			for i := range handles {
				handles[i] = v.mk()
			}
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int, h stack) {
					defer wg.Done()
					popped[w] = map[uint64]bool{}
					base := uint64(w) * each
					for i := uint64(0); i < each; i++ {
						h.Push(base + i + 1)
						if i%2 == 0 {
							if val, ok := h.Pop(); ok {
								if popped[w][val] {
									t.Errorf("value %d popped twice by one worker", val)
									return
								}
								popped[w][val] = true
							}
						}
					}
				}(w, handles[w])
			}
			wg.Wait()
			// Drain the rest and merge.
			all := map[uint64]bool{}
			for w := range popped {
				for v := range popped[w] {
					if all[v] {
						t.Fatalf("value %d popped twice", v)
					}
					all[v] = true
				}
			}
			h := handles[0]
			for {
				val, ok := h.Pop()
				if !ok {
					break
				}
				if all[val] {
					t.Fatalf("value %d popped twice", val)
				}
				all[val] = true
			}
			if len(all) != workers*each {
				t.Fatalf("popped %d values, want %d", len(all), workers*each)
			}
			v.finish()
		})
	}
}

// TestNoLeaks: push/pop everything, drain, expect no live nodes.
func TestNoLeaks(t *testing.T) {
	dom := core.NewDomain(core.Options{})
	p := NewPool(arena.ModeDetect)
	s := NewStackHPP(p)
	h := s.NewHandleHPP(dom)
	for i := uint64(0); i < 1000; i++ {
		h.Push(i)
	}
	for {
		if _, ok := h.Pop(); !ok {
			break
		}
	}
	h.Thread().Finish()
	dom.NewThread(0).Reclaim()
	if live := p.Stats().Live; live != 0 {
		t.Fatalf("leaked %d nodes", live)
	}
}
