package tstack_test

import (
	"sync"
	"testing"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/bench"
	"github.com/gosmr/gosmr/internal/linchk"
)

// TestLinearizableShared drives the Treiber stack from several pushers
// and poppers on one shared stack, records the complete history, and
// checks it against the sequential LIFO spec with the linchk checker.
func TestLinearizableShared(t *testing.T) {
	const workers = 4
	ops := 1500
	if testing.Short() {
		ops = 400
	}
	for _, scheme := range bench.StackSchemes {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			target, err := bench.NewStackTarget(scheme, arena.ModeDetect)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range target.Pools {
				p.SetCount()
			}
			var clock linchk.Clock
			recs := make([]*linchk.Recorder, workers)
			handles := make([]*bench.RecordedStack, workers)
			for w := range handles {
				recs[w] = linchk.NewRecorder(&clock, w)
				handles[w] = bench.NewRecordedStack(target.NewHandle(), recs[w])
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := handles[w]
					for i := 0; i < ops; i++ {
						if (i+w)%2 == 0 {
							h.Push(uint64(w+1)<<32 | uint64(i))
						} else {
							h.Pop()
						}
					}
				}(w)
			}
			wg.Wait()
			target.Finish()
			for _, p := range target.Pools {
				if st := p.Stats(); st.UAF != 0 || st.DoubleFree != 0 {
					t.Fatalf("memory-unsafe: uaf=%d doublefree=%d", st.UAF, st.DoubleFree)
				}
			}
			h := linchk.Merge(recs...)
			v := linchk.Check(linchk.StackSpec{}, h, linchk.Opts{})
			switch v.Outcome {
			case linchk.OutcomeNonLinearizable:
				t.Fatalf("history not linearizable:\n%s", v.Report())
			case linchk.OutcomeExhausted:
				t.Fatalf("checker budget exhausted (%d ops, %d states):\n%s", len(h.Ops), v.Explored, v.Report())
			}
		})
	}
}
