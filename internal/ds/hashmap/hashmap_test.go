package hashmap

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/ds/hhslist"
	"github.com/gosmr/gosmr/internal/ds/hmlist"
	"github.com/gosmr/gosmr/internal/ebr"
	"github.com/gosmr/gosmr/internal/hp"
	"github.com/gosmr/gosmr/internal/pebr"
	"github.com/gosmr/gosmr/internal/rc"
)

type handle interface {
	Get(key uint64) (uint64, bool)
	Insert(key, val uint64) bool
	Delete(key uint64) bool
}

type variant struct {
	name string
	mk   func() (mkHandle func() handle, finish func())
}

func variants() []variant {
	const nb = 16 // few buckets → long chains → real list traffic
	return []variant{
		{"EBR", func() (func() handle, func()) {
			dom := ebr.NewDomain()
			m := NewMapCS(hhslist.NewPool(arena.ModeDetect), nb)
			var hs []*HandleCS
			return func() handle {
					h := m.NewHandleCS(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Guard().(*ebr.Guard).Drain()
					}
				}
		}},
		{"PEBR", func() (func() handle, func()) {
			dom := pebr.NewDomain()
			m := NewMapCS(hhslist.NewPool(arena.ModeDetect), nb)
			var hs []*HandleCS
			return func() handle {
					h := m.NewHandleCS(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Guard().(*pebr.Guard).ClearShields()
					}
					for i := 0; i < 8; i++ {
						for _, h := range hs {
							h.Guard().(*pebr.Guard).Collect()
						}
					}
				}
		}},
		{"HP", func() (func() handle, func()) {
			dom := hp.NewDomain()
			m := NewMapHP(hmlist.NewPool(arena.ModeDetect), nb)
			var hs []*HandleHP
			return func() handle {
					h := m.NewHandleHP(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Thread().Finish()
					}
					dom.NewThread(0).Reclaim()
				}
		}},
		{"HPP", func() (func() handle, func()) {
			dom := core.NewDomain(core.Options{})
			m := NewMapHPP(hhslist.NewPool(arena.ModeDetect), nb)
			var hs []*HandleHPP
			return func() handle {
					h := m.NewHandleHPP(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Thread().Finish()
					}
					dom.NewThread(0).Reclaim()
				}
		}},
		{"RC", func() (func() handle, func()) {
			dom := rc.NewDomain()
			m := NewMapRC(hhslist.NewPoolRC(arena.ModeDetect), nb)
			var hs []*HandleRC
			return func() handle {
					h := m.NewHandleRC(dom)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Guard().Drain()
					}
				}
		}},
	}
}

func TestSequentialModel(t *testing.T) {
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			mk, finish := v.mk()
			h := mk()
			defer finish()
			model := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 6000; i++ {
				k := uint64(rng.Intn(512))
				switch rng.Intn(3) {
				case 0:
					_, in := model[k]
					if h.Insert(k, k^0xABCD) == in {
						t.Fatalf("op %d: Insert(%d) disagreed with model", i, k)
					}
					model[k] = k ^ 0xABCD
				case 1:
					_, in := model[k]
					if h.Delete(k) != in {
						t.Fatalf("op %d: Delete(%d) disagreed with model", i, k)
					}
					delete(model, k)
				default:
					val, ok := h.Get(k)
					mv, in := model[k]
					if ok != in || (ok && val != mv) {
						t.Fatalf("op %d: Get(%d) = (%d,%v) want (%d,%v)", i, k, val, ok, mv, in)
					}
				}
			}
		})
	}
}

func TestBucketSpread(t *testing.T) {
	counts := make([]int, 64)
	for k := uint64(0); k < 64*64; k++ {
		counts[bucket(k, 64)]++
	}
	for b, c := range counts {
		if c == 0 {
			t.Fatalf("bucket %d empty over a dense key range — bad mixing", b)
		}
	}
}

func TestConcurrentStress(t *testing.T) {
	const (
		workers = 4
		iters   = 6000
		keys    = 256
	)
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			mk, finish := v.mk()
			handles := make([]handle, workers)
			for i := range handles {
				handles[i] = mk()
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(h handle, seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < iters; i++ {
						k := uint64(rng.Intn(keys))
						switch rng.Intn(4) {
						case 0:
							h.Insert(k, k)
						case 1:
							h.Delete(k)
						default:
							h.Get(k)
						}
					}
				}(handles[w], int64(w+99))
			}
			wg.Wait()
			finish()
		})
	}
}
