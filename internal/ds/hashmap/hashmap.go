// Package hashmap implements the chaining hash table of the HP++ paper's
// evaluation (§5): a fixed array of buckets, each an independent sorted
// linked list — Harris-Michael lists for the HP variant (the only list HP
// supports), Harris/HHS lists for every other scheme.
//
// Keys are mixed with a 64-bit finalizer before bucket selection so that
// dense benchmark key ranges spread evenly.
package hashmap

// DefaultBuckets matches a typical load factor for the paper's 100K key
// range workloads.
const DefaultBuckets = 1 << 10

// mix is the splitmix64 finalizer.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func bucket(key uint64, n int) int { return int(mix(key) % uint64(n)) }
