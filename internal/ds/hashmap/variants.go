package hashmap

import (
	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/ds/hhslist"
	"github.com/gosmr/gosmr/internal/ds/hmlist"
	"github.com/gosmr/gosmr/internal/hp"
	"github.com/gosmr/gosmr/internal/rc"
	"github.com/gosmr/gosmr/internal/smr"
)

// MapCS is the chaining hash map for critical-section schemes (EBR, PEBR,
// NR), with HHS-list buckets.
type MapCS struct {
	buckets []*hhslist.ListCS
}

// NewMapCS creates a map with n buckets sharing pool.
func NewMapCS(pool hhslist.Pool, n int) *MapCS {
	m := &MapCS{buckets: make([]*hhslist.ListCS, n)}
	for i := range m.buckets {
		m.buckets[i] = hhslist.NewListCS(pool)
	}
	return m
}

// NewHandleCS returns a per-worker handle.
func (m *MapCS) NewHandleCS(dom smr.GuardDomain) *HandleCS {
	return &HandleCS{m: m, h: m.buckets[0].NewHandleCS(dom)}
}

// HandleCS is a per-worker handle; not safe for concurrent use.
type HandleCS struct {
	m *MapCS
	h *hhslist.HandleCS
}

// Guard exposes the underlying guard.
func (h *HandleCS) Guard() smr.Guard { return h.h.Guard() }

func (h *HandleCS) at(key uint64) *hhslist.HandleCS {
	return h.h.Rebind(h.m.buckets[bucket(key, len(h.m.buckets))])
}

// Get returns the value stored under key.
func (h *HandleCS) Get(key uint64) (uint64, bool) { return h.at(key).Get(key) }

// Insert adds key→val; it fails if key is already present.
func (h *HandleCS) Insert(key, val uint64) bool { return h.at(key).Insert(key, val) }

// Delete removes key, reporting whether it was present.
func (h *HandleCS) Delete(key uint64) bool { return h.at(key).Delete(key) }

// MapHP is the chaining hash map under original hazard pointers, with
// Harris-Michael buckets (HHS lists are not HP-compatible).
type MapHP struct {
	buckets []*hmlist.ListHP
}

// NewMapHP creates a map with n buckets sharing pool.
func NewMapHP(pool hmlist.Pool, n int) *MapHP {
	m := &MapHP{buckets: make([]*hmlist.ListHP, n)}
	for i := range m.buckets {
		m.buckets[i] = hmlist.NewListHP(pool)
	}
	return m
}

// NewHandleHP returns a per-worker handle.
func (m *MapHP) NewHandleHP(dom *hp.Domain) *HandleHP {
	return &HandleHP{m: m, h: m.buckets[0].NewHandleHP(dom)}
}

// HandleHP is a per-worker handle; not safe for concurrent use.
type HandleHP struct {
	m *MapHP
	h *hmlist.HandleHP
}

// Thread exposes the underlying HP thread.
func (h *HandleHP) Thread() *hp.Thread { return h.h.Thread() }

func (h *HandleHP) at(key uint64) *hmlist.HandleHP {
	return h.h.Rebind(h.m.buckets[bucket(key, len(h.m.buckets))])
}

// Get returns the value stored under key.
func (h *HandleHP) Get(key uint64) (uint64, bool) { return h.at(key).Get(key) }

// Insert adds key→val; it fails if key is already present.
func (h *HandleHP) Insert(key, val uint64) bool { return h.at(key).Insert(key, val) }

// Delete removes key, reporting whether it was present.
func (h *HandleHP) Delete(key uint64) bool { return h.at(key).Delete(key) }

// MapHPP is the chaining hash map under HP++, with HHS-list buckets.
type MapHPP struct {
	buckets []*hhslist.ListHPP
}

// NewMapHPP creates a map with n buckets sharing pool.
func NewMapHPP(pool hhslist.Pool, n int) *MapHPP {
	m := &MapHPP{buckets: make([]*hhslist.ListHPP, n)}
	for i := range m.buckets {
		m.buckets[i] = hhslist.NewListHPP(pool)
	}
	return m
}

// NewHandleHPP returns a per-worker handle.
func (m *MapHPP) NewHandleHPP(dom *core.Domain) *HandleHPP {
	return &HandleHPP{m: m, h: m.buckets[0].NewHandleHPP(dom)}
}

// HandleHPP is a per-worker handle; not safe for concurrent use.
type HandleHPP struct {
	m *MapHPP
	h *hhslist.HandleHPP
}

// Thread exposes the underlying HP++ thread.
func (h *HandleHPP) Thread() *core.Thread { return h.h.Thread() }

func (h *HandleHPP) at(key uint64) *hhslist.HandleHPP {
	return h.h.Rebind(h.m.buckets[bucket(key, len(h.m.buckets))])
}

// Get returns the value stored under key.
func (h *HandleHPP) Get(key uint64) (uint64, bool) { return h.at(key).Get(key) }

// Insert adds key→val; it fails if key is already present.
func (h *HandleHPP) Insert(key, val uint64) bool { return h.at(key).Insert(key, val) }

// Delete removes key, reporting whether it was present.
func (h *HandleHPP) Delete(key uint64) bool { return h.at(key).Delete(key) }

// MapSCOT is the chaining hash map on plain hazard pointers with the
// SCOT traversal discipline, with optimistic HHS-list buckets — the
// combination classic HP validation cannot support.
type MapSCOT struct {
	buckets []*hhslist.ListSCOT
}

// NewMapSCOT creates a map with n buckets sharing pool.
func NewMapSCOT(pool hhslist.Pool, n int) *MapSCOT {
	m := &MapSCOT{buckets: make([]*hhslist.ListSCOT, n)}
	for i := range m.buckets {
		m.buckets[i] = hhslist.NewListSCOT(pool)
	}
	return m
}

// SetSkipValidation toggles the must-fail control knob on every bucket
// list (see hhslist.ListSCOT.SkipValidation).
func (m *MapSCOT) SetSkipValidation(v bool) {
	for _, b := range m.buckets {
		b.SkipValidation = v
	}
}

// NewHandleSCOT returns a per-worker handle.
func (m *MapSCOT) NewHandleSCOT(dom *hp.Domain) *HandleSCOT {
	return &HandleSCOT{m: m, h: m.buckets[0].NewHandleSCOT(dom)}
}

// HandleSCOT is a per-worker handle; not safe for concurrent use.
type HandleSCOT struct {
	m *MapSCOT
	h *hhslist.HandleSCOT
}

// Thread exposes the underlying HP thread.
func (h *HandleSCOT) Thread() *hp.Thread { return h.h.Thread() }

func (h *HandleSCOT) at(key uint64) *hhslist.HandleSCOT {
	return h.h.Rebind(h.m.buckets[bucket(key, len(h.m.buckets))])
}

// Get returns the value stored under key.
func (h *HandleSCOT) Get(key uint64) (uint64, bool) { return h.at(key).Get(key) }

// Insert adds key→val; it fails if key is already present.
func (h *HandleSCOT) Insert(key, val uint64) bool { return h.at(key).Insert(key, val) }

// Delete removes key, reporting whether it was present.
func (h *HandleSCOT) Delete(key uint64) bool { return h.at(key).Delete(key) }

// MapRC is the chaining hash map under deferred reference counting, with
// HHS-list buckets.
type MapRC struct {
	buckets []*hhslist.ListRC
}

// NewMapRC creates a map with n buckets sharing pool.
func NewMapRC(pool hhslist.PoolRC, n int) *MapRC {
	m := &MapRC{buckets: make([]*hhslist.ListRC, n)}
	for i := range m.buckets {
		m.buckets[i] = hhslist.NewListRC(pool)
	}
	return m
}

// NewHandleRC returns a per-worker handle.
func (m *MapRC) NewHandleRC(dom *rc.Domain) *HandleRC {
	return &HandleRC{m: m, h: m.buckets[0].NewHandleRC(dom)}
}

// HandleRC is a per-worker handle; not safe for concurrent use.
type HandleRC struct {
	m *MapRC
	h *hhslist.HandleRC
}

// Guard exposes the underlying guard.
func (h *HandleRC) Guard() *rc.Guard { return h.h.Guard() }

func (h *HandleRC) at(key uint64) *hhslist.HandleRC {
	return h.h.Rebind(h.m.buckets[bucket(key, len(h.m.buckets))])
}

// Get returns the value stored under key.
func (h *HandleRC) Get(key uint64) (uint64, bool) { return h.at(key).Get(key) }

// Insert adds key→val; it fails if key is already present.
func (h *HandleRC) Insert(key, val uint64) bool { return h.at(key).Insert(key, val) }

// Delete removes key, reporting whether it was present.
func (h *HandleRC) Delete(key uint64) bool { return h.at(key).Delete(key) }
