package skiplist

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/rc"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// NodeRC is a counted skiplist tower: count tracks incoming links across
// all levels, and every outgoing level link holds one strong reference to
// its target.
type NodeRC struct {
	count  atomic.Int64
	next   [MaxHeight]atomic.Uint64
	height int32
	key    uint64
	val    uint64
}

// PoolRC allocates counted towers and implements rc.Object.
type PoolRC struct {
	*arena.Pool[NodeRC]
}

// NewPoolRC creates a counted tower pool.
func NewPoolRC(mode arena.Mode) PoolRC {
	return PoolRC{arena.NewPool[NodeRC]("skiplist-rc", mode)}
}

// IncCount adds a strong reference.
func (p PoolRC) IncCount(ref uint64) { p.Deref(ref).count.Add(1) }

// DecCount drops a strong reference and returns the new count.
func (p PoolRC) DecCount(ref uint64) int64 { return p.Deref(ref).count.Add(-1) }

// Trace reports every outgoing level link (one entry per level).
func (p PoolRC) Trace(ref uint64, out []uint64) []uint64 {
	n := p.Deref(ref)
	for lvl := int32(0); lvl < n.height; lvl++ {
		if nxt := tagptr.RefOf(n.next[lvl].Load()); nxt != 0 {
			out = append(out, nxt)
		}
	}
	return out
}

// ListRC is the skiplist under deferred reference counting. Snips and
// link updates transfer strong counts; a tower is released when its last
// incoming link (at any level) disappears, cascading through Trace.
type ListRC struct {
	pool PoolRC
	head [MaxHeight]atomic.Uint64
}

// NewListRC creates an empty skiplist over pool.
func NewListRC(pool PoolRC) *ListRC { return &ListRC{pool: pool} }

// NewHandleRC returns a per-worker handle.
func (l *ListRC) NewHandleRC(dom *rc.Domain) *HandleRC {
	return &HandleRC{
		l: l, g: dom.NewGuard(), dt: rc.NewDecTask(dom, l.pool),
		rnd: randState{s: 0x5bd1e9955bd1e995},
	}
}

// HandleRC is a per-worker handle; not safe for concurrent use.
type HandleRC struct {
	l     *ListRC
	g     *rc.Guard
	dt    *rc.DecTask
	rnd   randState
	preds [MaxHeight]uint64
	succs [MaxHeight]uint64
}

// Guard exposes the underlying guard.
func (h *HandleRC) Guard() *rc.Guard { return h.g }

// Seed reseeds the height generator.
func (h *HandleRC) Seed(s uint64) { h.rnd.s = s | 1 }

func (l *ListRC) linkOf(ref uint64, lvl int) *atomic.Uint64 {
	if ref == 0 {
		return &l.head[lvl]
	}
	return &l.pool.Deref(ref).next[lvl]
}

func (h *HandleRC) incIfNonNil(ref uint64) {
	if ref != 0 {
		h.l.pool.IncCount(ref)
	}
}

func (h *HandleRC) decIfNonNil(ref uint64) {
	if ref != 0 {
		h.g.DeferDec(h.dt, ref)
	}
}

// find positions preds/succs around key, snipping marked nodes and
// transferring their counts.
func (h *HandleRC) find(key uint64) bool {
	l := h.l
retry:
	pred := uint64(0)
	for lvl := MaxHeight - 1; lvl >= 0; lvl-- {
		cur := tagptr.RefOf(l.linkOf(pred, lvl).Load())
		for {
			if cur == 0 {
				break
			}
			node := l.pool.Deref(cur)
			w := node.next[lvl].Load()
			if tagptr.IsMarked(w) {
				succ := tagptr.RefOf(w)
				h.incIfNonNil(succ) // pred's prospective link to succ
				if !l.linkOf(pred, lvl).CompareAndSwap(tagptr.Pack(cur, 0), tagptr.Pack(succ, 0)) {
					h.decIfNonNil(succ)
					goto retry
				}
				h.decIfNonNil(cur) // pred no longer points at cur
				cur = succ
				continue
			}
			if node.key < key {
				pred = cur
				cur = tagptr.RefOf(w)
				continue
			}
			break
		}
		h.preds[lvl] = pred
		h.succs[lvl] = cur
	}
	s0 := h.succs[0]
	return s0 != 0 && l.pool.Deref(s0).key == key
}

// Get is the wait-free read: marked nodes stepped through, no counts.
func (h *HandleRC) Get(key uint64) (uint64, bool) {
	h.g.Pin()
	defer h.g.Unpin()
	l := h.l
	pred := uint64(0)
	var cur uint64
	for lvl := MaxHeight - 1; lvl >= 0; lvl-- {
		cur = tagptr.RefOf(l.linkOf(pred, lvl).Load())
		for {
			if cur == 0 {
				break
			}
			node := l.pool.Deref(cur)
			w := node.next[lvl].Load()
			if tagptr.IsMarked(w) {
				cur = tagptr.RefOf(w)
				continue
			}
			if node.key < key {
				pred = cur
				cur = tagptr.RefOf(w)
				continue
			}
			break
		}
	}
	if cur == 0 {
		return 0, false
	}
	node := l.pool.Deref(cur)
	if node.key != key || tagptr.IsMarked(node.next[0].Load()) {
		return 0, false
	}
	return node.val, true
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleRC) Insert(key, val uint64) bool {
	h.g.Pin()
	defer h.g.Unpin()
	l := h.l
	var node uint64
	var nd *NodeRC
	for {
		if h.find(key) {
			if node != 0 {
				// Never published: release the speculative bottom link
				// and the node itself.
				h.decIfNonNil(tagptr.RefOf(nd.next[0].Load()))
				l.pool.Free(node)
			}
			return false
		}
		if node == 0 {
			node, nd = l.pool.Alloc()
			nd.key, nd.val = key, val
			nd.height = h.rnd.height()
			for i := int32(0); i < nd.height; i++ {
				nd.next[i].Store(0)
			}
			nd.count.Store(1) // pred's bottom link, once published
		}
		// Point the bottom link at the current successor (counted).
		old := tagptr.RefOf(nd.next[0].Load())
		if old != h.succs[0] {
			h.incIfNonNil(h.succs[0])
			nd.next[0].Store(tagptr.Pack(h.succs[0], 0))
			h.decIfNonNil(old)
		}
		if !l.linkOf(h.preds[0], 0).CompareAndSwap(tagptr.Pack(h.succs[0], 0), tagptr.Pack(node, 0)) {
			continue
		}
		h.decIfNonNil(h.succs[0]) // pred's old link to succ replaced
		break
	}
	for lvl := 1; lvl < int(nd.height); lvl++ {
		for {
			w := nd.next[lvl].Load()
			if tagptr.IsMarked(w) {
				return true
			}
			succ := h.succs[lvl]
			if tagptr.RefOf(w) != succ {
				h.incIfNonNil(succ)
				if !nd.next[lvl].CompareAndSwap(w, tagptr.Pack(succ, 0)) {
					h.decIfNonNil(succ)
					continue
				}
				h.decIfNonNil(tagptr.RefOf(w))
			}
			h.incIfNonNil(node) // pred's prospective link to node
			if l.linkOf(h.preds[lvl], lvl).CompareAndSwap(tagptr.Pack(succ, 0), tagptr.Pack(node, 0)) {
				h.decIfNonNil(succ) // pred's old link to succ replaced
				break
			}
			h.decIfNonNil(node)
			if !h.find(key) || h.succs[0] != node {
				return true
			}
		}
	}
	return true
}

// Delete removes key, reporting whether it was present.
func (h *HandleRC) Delete(key uint64) bool {
	h.g.Pin()
	defer h.g.Unpin()
	l := h.l
	if !h.find(key) {
		return false
	}
	victim := h.succs[0]
	nd := l.pool.Deref(victim)
	if nd.key != key {
		return false
	}
	for lvl := int(nd.height) - 1; lvl >= 1; lvl-- {
		for {
			w := nd.next[lvl].Load()
			if tagptr.IsMarked(w) {
				break
			}
			nd.next[lvl].CompareAndSwap(w, tagptr.WithTag(w, tagptr.Mark))
		}
	}
	for {
		w := nd.next[0].Load()
		if tagptr.IsMarked(w) {
			return false
		}
		if nd.next[0].CompareAndSwap(w, tagptr.WithTag(w, tagptr.Mark)) {
			h.find(key) // snip every linked level, transferring counts
			return true
		}
	}
}
