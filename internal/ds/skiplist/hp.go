package skiplist

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/hp"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// ListHP is the skiplist under original hazard pointers: every traversal —
// including get() — is the validated hand-over-hand search that restarts
// whenever a link changes or a logically deleted node is encountered.
// This is the price HP pays (§2.3): there is no wait-free read.
type ListHP struct {
	pool Pool
	head [MaxHeight]atomic.Uint64
	rel  LevelRelease
}

// NewListHP creates an empty skiplist over pool.
func NewListHP(pool Pool) *ListHP {
	return &ListHP{pool: pool, rel: LevelRelease{P: pool}}
}

// NewHandleHP returns a per-worker handle.
func (l *ListHP) NewHandleHP(dom *hp.Domain) *HandleHP {
	return &HandleHP{l: l, t: dom.NewThread(csSlots), rnd: randState{s: 0xA5A5A5A5A5A5A5A5}}
}

// HandleHP is a per-worker handle; not safe for concurrent use.
type HandleHP struct {
	l     *ListHP
	t     *hp.Thread
	rnd   randState
	preds [MaxHeight]uint64
	succs [MaxHeight]uint64
}

// Thread exposes the underlying HP thread.
func (h *HandleHP) Thread() *hp.Thread { return h.t }

// Seed reseeds the height generator.
func (h *HandleHP) Seed(s uint64) { h.rnd.s = s | 1 }

func (l *ListHP) linkOf(ref uint64, lvl int) *atomic.Uint64 {
	if ref == 0 {
		return &l.head[lvl]
	}
	return &l.pool.Deref(ref).next[lvl]
}

// find positions preds/succs with validated protection, snipping marked
// nodes (with validation) as it goes. Restarts internally.
func (h *HandleHP) find(key uint64) bool {
	l, t := h.l, h.t
retry:
	pred := uint64(0)
	t.Protect(slotPred+MaxHeight-1, 0)
	for lvl := MaxHeight - 1; lvl >= 0; lvl-- {
		// pred is protected: either the head (nothing to protect) or
		// carried over from the level above / the rightward walk.
		t.Protect(slotPred+lvl, pred)
		cur := tagptr.RefOf(l.linkOf(pred, lvl).Load())
		for {
			if cur == 0 {
				break
			}
			// Protect cur and validate the over-approximation: pred's
			// level link must still be exactly cur, untagged.
			if !t.ProtectWord(slotCur, l.linkOf(pred, lvl), tagptr.Pack(cur, 0)) {
				goto retry
			}
			node := l.pool.Deref(cur)
			w := node.next[lvl].Load()
			if tagptr.IsMarked(w) {
				if !l.linkOf(pred, lvl).CompareAndSwap(tagptr.Pack(cur, 0), tagptr.Pack(tagptr.RefOf(w), 0)) {
					goto retry
				}
				t.Retire(cur, &l.rel)
				cur = tagptr.RefOf(w)
				continue
			}
			if node.key < key {
				pred = cur
				t.Protect(slotPred+lvl, pred) // covered by slotCur until here
				cur = tagptr.RefOf(w)
				continue
			}
			break
		}
		h.preds[lvl] = pred
		h.succs[lvl] = cur
		t.Protect(slotSucc+lvl, cur) // covered by slotCur until here
	}
	s0 := h.succs[0]
	return s0 != 0 && l.pool.Deref(s0).key == key
}

// Get locates key with the validated search (no wait-free read under HP).
func (h *HandleHP) Get(key uint64) (uint64, bool) {
	defer h.t.ClearAll()
	if !h.find(key) {
		return 0, false
	}
	return h.l.pool.Deref(h.succs[0]).val, true
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleHP) Insert(key, val uint64) bool {
	defer h.t.ClearAll()
	l := h.l
	var node uint64
	var nd *Node
	for {
		if h.find(key) {
			if node != 0 {
				l.pool.Free(node)
			}
			return false
		}
		if node == 0 {
			node, nd = l.pool.Alloc()
			nd.key, nd.val = key, val
			nd.height = h.rnd.height()
			for i := int32(0); i < nd.height; i++ {
				nd.next[i].Store(0)
			}
			nd.linked.Store(1)
		}
		nd.next[0].Store(tagptr.Pack(h.succs[0], 0))
		if !l.linkOf(h.preds[0], 0).CompareAndSwap(tagptr.Pack(h.succs[0], 0), tagptr.Pack(node, 0)) {
			continue
		}
		break
	}
	for lvl := 1; lvl < int(nd.height); lvl++ {
		for {
			w := nd.next[lvl].Load()
			if tagptr.IsMarked(w) {
				return true
			}
			succ := h.succs[lvl]
			if tagptr.RefOf(w) != succ {
				if !nd.next[lvl].CompareAndSwap(w, tagptr.Pack(succ, 0)) {
					continue
				}
			}
			nd.linked.Add(1)
			if l.linkOf(h.preds[lvl], lvl).CompareAndSwap(tagptr.Pack(succ, 0), tagptr.Pack(node, 0)) {
				break
			}
			nd.linked.Add(-1)
			if !h.find(key) || h.succs[0] != node {
				return true
			}
		}
	}
	return true
}

// Delete removes key, reporting whether it was present.
func (h *HandleHP) Delete(key uint64) bool {
	defer h.t.ClearAll()
	l := h.l
	if !h.find(key) {
		return false
	}
	victim := h.succs[0]
	nd := l.pool.Deref(victim)
	if nd.key != key {
		return false
	}
	for lvl := int(nd.height) - 1; lvl >= 1; lvl-- {
		for {
			w := nd.next[lvl].Load()
			if tagptr.IsMarked(w) {
				break
			}
			nd.next[lvl].CompareAndSwap(w, tagptr.WithTag(w, tagptr.Mark))
		}
	}
	for {
		w := nd.next[0].Load()
		if tagptr.IsMarked(w) {
			return false
		}
		if nd.next[0].CompareAndSwap(w, tagptr.WithTag(w, tagptr.Mark)) {
			h.find(key)
			return true
		}
	}
}
