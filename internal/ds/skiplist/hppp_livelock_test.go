package skiplist

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// Regression test for a liveness bug in the HP++ Get: the optimistic
// traversal used to re-validate cur against pred's link after stepping
// through a marked node, which reset cur to pred's still-linked marked
// successor — an infinite ping-pong once no updater was left to snip the
// marked node. Churning a tiny key range with scheduler yields at every
// few derefs reproduced the hang reliably within a handful of seeds.
func TestHPPGetLivelockRegression(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 12
	}
	for iter := 0; iter < iters; iter++ {
		pool := NewPool(arena.ModeDetect)
		pool.SetCount()
		var ctr atomic.Uint64
		pool.SetDerefHook(func(arena.Ref) {
			if ctr.Add(1)%64 == 0 {
				runtime.Gosched()
			}
		})
		dom := core.NewDomain(core.Options{})
		l := NewListHPP(pool)

		const workers = 4
		const ops = 600
		const keys = 6
		hs := make([]*HandleHPP, workers)
		for w := range hs {
			hs[w] = l.NewHandleHPP(dom)
			hs[w].Seed(uint64(iter*97 + w*13 + 1))
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				s := uint64(iter)*0x9E3779B97F4A7C15 + uint64(w)*0x1234567
				next := func() uint64 {
					s += 0x9E3779B97F4A7C15
					z := s
					z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
					z = (z ^ (z >> 27)) * 0x94D049BB133111EB
					return z ^ (z >> 31)
				}
				h := hs[w]
				for i := 0; i < ops; i++ {
					k := next() % keys
					switch c := next() % 100; {
					case c < 40:
						h.Get(k)
					case c < 70:
						h.Insert(k, next())
					default:
						h.Delete(k)
					}
				}
			}(w)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("iter %d: workers livelocked\n%s", iter, buf[:n])
		}
		pool.SetDerefHook(nil)
		for _, h := range hs {
			h.Thread().Finish()
		}
		dom.NewThread(0).Reclaim()

		// Quiescent sanity: every level terminates and never exposes an
		// invalidated link to traversals.
		for lvl := 0; lvl < MaxHeight; lvl++ {
			steps := 0
			w := l.head[lvl].Load()
			for tagptr.RefOf(w) != 0 {
				n := pool.Deref(tagptr.RefOf(w))
				if tagptr.IsInvalid(n.next[lvl].Load()) {
					t.Fatalf("iter %d: lvl %d reachable invalidated node key=%d", iter, lvl, n.key)
				}
				w = n.next[lvl].Load()
				if steps++; steps > 1<<20 {
					t.Fatalf("iter %d: lvl %d cycle", iter, lvl)
				}
			}
		}
		if st := pool.Stats(); st.UAF != 0 || st.DoubleFree != 0 {
			t.Fatalf("iter %d: uaf=%d doublefree=%d", iter, st.UAF, st.DoubleFree)
		}
	}
}
