package skiplist

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/smr"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// Extra slots for the HP++ get()'s three-way hand-over-hand juggle.
const (
	slotTmp  = csSlots
	hppSlots = csSlots + 1
)

// ListHPP is the skiplist under HP++. Each per-level snip is a TryUnlink:
// its frontier is the successor at that level, its invalidation sets the
// Invalid bit of that level's link, and the tower is freed once every
// linked level has been reclaimed. get() traverses marked nodes
// optimistically, failing only on invalidated links (§4.3: lock-free).
type ListHPP struct {
	pool Pool
	head [MaxHeight]atomic.Uint64
	rel  LevelRelease
	inv  [MaxHeight]LevelInvalidator
}

// NewListHPP creates an empty skiplist over pool.
func NewListHPP(pool Pool) *ListHPP {
	l := &ListHPP{pool: pool, rel: LevelRelease{P: pool}}
	for i := range l.inv {
		l.inv[i] = LevelInvalidator{P: pool, Lvl: i}
	}
	return l
}

// NewHandleHPP returns a per-worker handle.
func (l *ListHPP) NewHandleHPP(dom *core.Domain) *HandleHPP {
	return &HandleHPP{l: l, t: dom.NewThread(hppSlots), rnd: randState{s: 0xC3C3C3C3C3C3C3C3}}
}

// HandleHPP is a per-worker handle; not safe for concurrent use.
type HandleHPP struct {
	l     *ListHPP
	t     *core.Thread
	rnd   randState
	preds [MaxHeight]uint64
	succs [MaxHeight]uint64
}

// Thread exposes the underlying HP++ thread.
func (h *HandleHPP) Thread() *core.Thread { return h.t }

// Seed reseeds the height generator.
func (h *HandleHPP) Seed(s uint64) { h.rnd.s = s | 1 }

func (l *ListHPP) linkOf(ref uint64, lvl int) *atomic.Uint64 {
	if ref == 0 {
		return &l.head[lvl]
	}
	return &l.pool.Deref(ref).next[lvl]
}

// srcInv returns the invalid-bit word for protections from ref at lvl
// (nil for the head, which is never invalidated).
func (l *ListHPP) srcInv(ref uint64, lvl int) *atomic.Uint64 {
	if ref == 0 {
		return nil
	}
	return &l.pool.Deref(ref).next[lvl]
}

// find positions preds/succs around key, snipping marked nodes from each
// level with per-level TryUnlinks. ok=false means a protection failed and
// the caller must restart.
func (h *HandleHPP) find(key uint64) (found, ok bool) {
	l, t := h.l, h.t
	pred := uint64(0)
	for lvl := MaxHeight - 1; lvl >= 0; lvl-- {
		t.Protect(slotPred+lvl, pred) // covered by the level above / walk
		cur := tagptr.RefOf(l.linkOf(pred, lvl).Load())
		for {
			if !t.TryProtect(slotCur, &cur, l.srcInv(pred, lvl), l.linkOf(pred, lvl)) {
				return false, false
			}
			if cur == 0 {
				break
			}
			node := l.pool.Deref(cur)
			w := node.next[lvl].Load()
			if tagptr.IsMarked(w) {
				succ := tagptr.RefOf(w)
				var frontier []uint64
				if succ != 0 {
					frontier = []uint64{succ}
				}
				link := l.linkOf(pred, lvl)
				target := cur
				unlinked := t.TryUnlink(frontier, func() ([]smr.Retired, bool) {
					if link.CompareAndSwap(tagptr.Pack(target, 0), tagptr.Pack(succ, 0)) {
						return []smr.Retired{{Ref: target, D: &l.rel}}, true
					}
					return nil, false
				}, &l.inv[lvl])
				if !unlinked {
					return false, false
				}
				cur = succ
				continue
			}
			if node.key < key {
				pred = cur
				t.Protect(slotPred+lvl, pred) // covered by slotCur
				cur = tagptr.RefOf(w)
				continue
			}
			break
		}
		h.preds[lvl] = pred
		h.succs[lvl] = cur
		t.Protect(slotSucc+lvl, cur) // covered by slotCur
	}
	s0 := h.succs[0]
	return s0 != 0 && l.pool.Deref(s0).key == key, true
}

func (h *HandleHPP) findRetry(key uint64) bool {
	for {
		found, ok := h.find(key)
		if ok {
			return found
		}
	}
}

// maxOptimisticRetries bounds the restart loop of the optimistic Get.
// The optimistic pass steps through marked nodes without repairing them,
// so a traversal that keeps running into an invalidated link makes no
// physical progress; after this many restarts Get falls back to the
// find-based traversal, which snips the blocking marked nodes and is
// therefore guaranteed to advance.
const maxOptimisticRetries = 8

// Get traverses optimistically: marked nodes are stepped through; only an
// invalidated link forces a restart. Restarts are bounded (see
// maxOptimisticRetries) to keep Get lock-free even when the region it
// keeps re-entering stays invalidated.
func (h *HandleHPP) Get(key uint64) (uint64, bool) {
	l, t := h.l, h.t
	defer t.ClearAll()
	restarts := 0
retry:
	if restarts++; restarts > maxOptimisticRetries {
		if !h.findRetry(key) {
			return 0, false
		}
		return l.pool.Deref(h.succs[0]).val, true
	}
	pred := uint64(0)
	var cur uint64
	for lvl := MaxHeight - 1; lvl >= 0; lvl-- {
		t.Protect(slotPred, pred)
		cur = tagptr.RefOf(l.linkOf(pred, lvl).Load())
		if !t.TryProtect(slotCur, &cur, l.srcInv(pred, lvl), l.linkOf(pred, lvl)) {
			goto retry
		}
		for cur != 0 {
			node := l.pool.Deref(cur)
			w := node.next[lvl].Load()
			if tagptr.IsMarked(w) {
				// Step through the deleted node: protect its successor
				// from it, then adopt the successor as cur. The
				// protection stays anchored at the marked node's own
				// (frozen) link — re-validating against pred's link
				// here would reset cur to pred's still-linked marked
				// successor and ping-pong forever once no helping
				// traversal is left to snip it.
				next := tagptr.RefOf(w)
				if !t.TryProtect(slotTmp, &next, &node.next[lvl], &node.next[lvl]) {
					goto retry
				}
				t.Swap(slotCur, slotTmp)
				cur = next
				continue
			}
			if node.key < key {
				pred = cur
				t.Protect(slotPred, pred)
				cur = tagptr.RefOf(w)
				if !t.TryProtect(slotCur, &cur, l.srcInv(pred, lvl), l.linkOf(pred, lvl)) {
					goto retry
				}
				continue
			}
			break
		}
		// Descend from pred; its protection persists in slotPred.
	}
	if cur == 0 {
		return 0, false
	}
	node := l.pool.Deref(cur)
	if node.key != key || tagptr.IsMarked(node.next[0].Load()) {
		return 0, false
	}
	return node.val, true
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleHPP) Insert(key, val uint64) bool {
	defer h.t.ClearAll()
	l := h.l
	var node uint64
	var nd *Node
	for {
		if h.findRetry(key) {
			if node != 0 {
				l.pool.Free(node)
			}
			return false
		}
		if node == 0 {
			node, nd = l.pool.Alloc()
			nd.key, nd.val = key, val
			nd.height = h.rnd.height()
			for i := int32(0); i < nd.height; i++ {
				nd.next[i].Store(0)
			}
			nd.linked.Store(1)
		}
		nd.next[0].Store(tagptr.Pack(h.succs[0], 0))
		if !l.linkOf(h.preds[0], 0).CompareAndSwap(tagptr.Pack(h.succs[0], 0), tagptr.Pack(node, 0)) {
			continue
		}
		break
	}
	for lvl := 1; lvl < int(nd.height); lvl++ {
		for {
			w := nd.next[lvl].Load()
			if tagptr.IsMarked(w) {
				return true
			}
			succ := h.succs[lvl]
			if tagptr.RefOf(w) != succ {
				if !nd.next[lvl].CompareAndSwap(w, tagptr.Pack(succ, 0)) {
					continue
				}
			}
			nd.linked.Add(1)
			if l.linkOf(h.preds[lvl], lvl).CompareAndSwap(tagptr.Pack(succ, 0), tagptr.Pack(node, 0)) {
				break
			}
			nd.linked.Add(-1)
			if !h.findRetry(key) || h.succs[0] != node {
				return true
			}
		}
	}
	return true
}

// Delete removes key, reporting whether it was present.
func (h *HandleHPP) Delete(key uint64) bool {
	defer h.t.ClearAll()
	l := h.l
	if !h.findRetry(key) {
		return false
	}
	victim := h.succs[0]
	nd := l.pool.Deref(victim)
	if nd.key != key {
		return false
	}
	for lvl := int(nd.height) - 1; lvl >= 1; lvl-- {
		for {
			w := nd.next[lvl].Load()
			if tagptr.IsMarked(w) {
				break
			}
			nd.next[lvl].CompareAndSwap(w, tagptr.WithTag(w, tagptr.Mark))
		}
	}
	for {
		w := nd.next[0].Load()
		if tagptr.IsMarked(w) {
			return false
		}
		if nd.next[0].CompareAndSwap(w, tagptr.WithTag(w, tagptr.Mark)) {
			h.findRetry(key)
			return true
		}
	}
}
