// Package skiplist implements the Herlihy-Shavit lock-free skiplist
// ("SkipList" in the HP++ paper's evaluation): towers of forward links
// with a logical-deletion mark per level, eager per-level snipping during
// update searches, and — for every scheme except original HP — a
// traversal-only get() that never helps (wait-free under EBR/NR, §4.3).
//
// Reclamation is level-aware: a node is handed back to the allocator only
// after it has been unlinked from every level it was ever linked at,
// tracked with a per-node linked-level counter. Under HP++ each per-level
// snip is a TryUnlink whose frontier is the successor at that level, and
// invalidation is per level (the Invalid bit of next[lvl]), so the safety
// argument of the list case applies level by level.
//
// Variants:
//
//	ListCS  — critical-section schemes (EBR, PEBR, NR)
//	ListHP  — original hazard pointers (validated hand-over-hand get)
//	ListHPP — HP++
//	ListRC  — deferred reference counting
package skiplist

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// MaxHeight is the tallest tower. 2^20 keys keep the expected search cost
// logarithmic for every benchmark range in the paper.
const MaxHeight = 20

// Node is a skiplist tower.
type Node struct {
	next   [MaxHeight]atomic.Uint64
	linked atomic.Int32 // levels currently linked; frees at 0
	height int32
	key    uint64
	val    uint64
}

// Pool allocates towers.
type Pool struct {
	*arena.Pool[Node]
}

// NewPool creates a tower pool.
func NewPool(mode arena.Mode) Pool {
	return Pool{arena.NewPool[Node]("skiplist", mode)}
}

// Key returns ref's key (for tests).
func (p Pool) Key(ref uint64) uint64 { return p.Deref(ref).key }

// LevelInvalidator invalidates the given level's link of a node; one per
// level, implementing core.Invalidator for HP++ snips.
type LevelInvalidator struct {
	P   Pool
	Lvl int
}

// Invalidate sets the Invalid bit on next[Lvl] (plain store: the link is
// frozen by the logical-deletion mark).
func (li *LevelInvalidator) Invalidate(ref uint64) {
	n := li.P.Deref(ref)
	n.next[li.Lvl].Store(n.next[li.Lvl].Load() | tagptr.Invalid)
}

// LevelRelease is the per-level deallocator: freeing a "retired level"
// decrements the node's linked-level counter and returns the tower to the
// pool when it reaches zero.
type LevelRelease struct {
	P Pool
}

// FreeRef releases one linked level of ref.
func (lr *LevelRelease) FreeRef(ref uint64) {
	n := lr.P.Deref(ref)
	if n.linked.Add(-1) == 0 {
		lr.P.Free(ref)
	}
}

// randState is a xorshift64 generator for tower heights.
type randState struct{ s uint64 }

func (r *randState) height() int32 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	h := int32(1)
	for v := r.s; v&1 == 1 && h < MaxHeight; v >>= 1 {
		h++
	}
	return h
}
