package skiplist

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/smr"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// Shield slot layout for the smr.Guard protocol: one pred and one succ
// per level, plus a scratch slot for the node under inspection.
const (
	slotPred = 0         // slotPred+lvl
	slotSucc = MaxHeight // slotSucc+lvl
	slotCur  = 2 * MaxHeight
	csSlots  = 2*MaxHeight + 1
)

// ListCS is the skiplist for critical-section schemes (EBR, PEBR, NR).
type ListCS struct {
	pool Pool
	head [MaxHeight]atomic.Uint64
	rel  LevelRelease
}

// NewListCS creates an empty skiplist over pool.
func NewListCS(pool Pool) *ListCS {
	return &ListCS{pool: pool, rel: LevelRelease{P: pool}}
}

// NewHandleCS returns a per-worker handle.
func (l *ListCS) NewHandleCS(dom smr.GuardDomain) *HandleCS {
	return &HandleCS{l: l, g: dom.NewGuard(csSlots), rnd: randState{s: 0x9E3779B97F4A7C15}}
}

// HandleCS is a per-worker handle; not safe for concurrent use.
type HandleCS struct {
	l     *ListCS
	g     smr.Guard
	rnd   randState
	preds [MaxHeight]uint64
	succs [MaxHeight]uint64
}

// Guard exposes the underlying guard.
func (h *HandleCS) Guard() smr.Guard { return h.g }

// Seed reseeds the height generator (handles created by one goroutine
// for many workers should not share height sequences).
func (h *HandleCS) Seed(s uint64) { h.rnd.s = s | 1 }

func (l *ListCS) linkOf(ref uint64, lvl int) *atomic.Uint64 {
	if ref == 0 {
		return &l.head[lvl]
	}
	return &l.pool.Deref(ref).next[lvl]
}

// find positions preds/succs around key at every level, snipping marked
// nodes from each level it passes. A snip that removes the node's last
// linked level retires the tower.
func (h *HandleCS) find(key uint64) bool {
	l, g := h.l, h.g
retry:
	pred := uint64(0)
	for lvl := MaxHeight - 1; lvl >= 0; lvl-- {
		if !g.Track(slotPred+lvl, pred) {
			h.restart()
			goto retry
		}
		cur := tagptr.RefOf(l.linkOf(pred, lvl).Load())
		for {
			if cur == 0 {
				break
			}
			if !g.Track(slotCur, cur) {
				h.restart()
				goto retry
			}
			node := l.pool.Deref(cur)
			w := node.next[lvl].Load()
			if tagptr.IsMarked(w) {
				// Snip cur out of this level.
				if !l.linkOf(pred, lvl).CompareAndSwap(tagptr.Pack(cur, 0), tagptr.Pack(tagptr.RefOf(w), 0)) {
					goto retry
				}
				g.Retire(cur, &l.rel) // releases one linked level
				cur = tagptr.RefOf(w)
				continue
			}
			if node.key < key {
				pred = cur
				if !g.Track(slotPred+lvl, pred) {
					h.restart()
					goto retry
				}
				cur = tagptr.RefOf(w)
				continue
			}
			break
		}
		h.preds[lvl] = pred
		h.succs[lvl] = cur
		if !g.Track(slotSucc+lvl, cur) {
			h.restart()
			goto retry
		}
	}
	s0 := h.succs[0]
	return s0 != 0 && l.pool.Deref(s0).key == key
}

func (h *HandleCS) restart() {
	h.g.Unpin()
	h.g.Pin()
}

// Get is the wait-free Herlihy-Shavit read: no snipping, marked nodes are
// stepped through.
func (h *HandleCS) Get(key uint64) (uint64, bool) {
	h.g.Pin()
	defer h.g.Unpin()
	l := h.l
retry:
	pred := uint64(0)
	var cur uint64
	for lvl := MaxHeight - 1; lvl >= 0; lvl-- {
		cur = tagptr.RefOf(l.linkOf(pred, lvl).Load())
		for {
			if cur == 0 {
				break
			}
			if !h.g.Track(slotCur, cur) {
				h.restart()
				goto retry
			}
			node := l.pool.Deref(cur)
			w := node.next[lvl].Load()
			if tagptr.IsMarked(w) {
				// Step through the logically deleted node.
				cur = tagptr.RefOf(w)
				continue
			}
			if node.key < key {
				pred = cur
				if !h.g.Track(slotPred, pred) {
					h.restart()
					goto retry
				}
				cur = tagptr.RefOf(w)
				continue
			}
			break
		}
	}
	if cur == 0 {
		return 0, false
	}
	node := l.pool.Deref(cur)
	if node.key != key || tagptr.IsMarked(node.next[0].Load()) {
		return 0, false
	}
	return node.val, true
}

// Insert adds key→val; it fails if key is already present.
func (h *HandleCS) Insert(key, val uint64) bool {
	h.g.Pin()
	defer h.g.Unpin()
	l := h.l
	var node uint64
	var nd *Node
	for {
		if h.find(key) {
			if node != 0 {
				l.pool.Free(node) // speculation never published
			}
			return false
		}
		if node == 0 {
			node, nd = l.pool.Alloc()
			nd.key, nd.val = key, val
			nd.height = h.rnd.height()
			for i := int32(0); i < nd.height; i++ {
				nd.next[i].Store(0)
			}
			nd.linked.Store(1) // the bottom link, once published
		}
		nd.next[0].Store(tagptr.Pack(h.succs[0], 0))
		if !l.linkOf(h.preds[0], 0).CompareAndSwap(tagptr.Pack(h.succs[0], 0), tagptr.Pack(node, 0)) {
			continue
		}
		break
	}
	// Link the upper levels.
	for lvl := 1; lvl < int(nd.height); lvl++ {
		for {
			w := nd.next[lvl].Load()
			if tagptr.IsMarked(w) {
				return true // being deleted; deleter unlinks linked levels
			}
			succ := h.succs[lvl]
			if tagptr.RefOf(w) != succ {
				if !nd.next[lvl].CompareAndSwap(w, tagptr.Pack(succ, 0)) {
					continue
				}
			}
			nd.linked.Add(1) // account the level before it becomes visible
			if l.linkOf(h.preds[lvl], lvl).CompareAndSwap(tagptr.Pack(succ, 0), tagptr.Pack(node, 0)) {
				break
			}
			nd.linked.Add(-1)
			if !h.find(key) || h.succs[0] != node {
				return true // deleted (and possibly removed) meanwhile
			}
		}
	}
	return true
}

// Delete removes key, reporting whether it was present.
func (h *HandleCS) Delete(key uint64) bool {
	h.g.Pin()
	defer h.g.Unpin()
	l := h.l
	if !h.find(key) {
		return false
	}
	victim := h.succs[0]
	nd := l.pool.Deref(victim)
	if nd.key != key {
		return false
	}
	// Mark the upper levels top-down.
	for lvl := int(nd.height) - 1; lvl >= 1; lvl-- {
		for {
			w := nd.next[lvl].Load()
			if tagptr.IsMarked(w) {
				break
			}
			nd.next[lvl].CompareAndSwap(w, tagptr.WithTag(w, tagptr.Mark))
		}
	}
	// Mark the bottom level: the linearization point.
	for {
		w := nd.next[0].Load()
		if tagptr.IsMarked(w) {
			return false // another deleter won
		}
		if nd.next[0].CompareAndSwap(w, tagptr.WithTag(w, tagptr.Mark)) {
			h.find(key) // snip every linked level (and retire via counter)
			return true
		}
	}
}
