package skiplist

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/ebr"
	"github.com/gosmr/gosmr/internal/hp"
	"github.com/gosmr/gosmr/internal/nr"
	"github.com/gosmr/gosmr/internal/pebr"
	"github.com/gosmr/gosmr/internal/rc"
)

type handle interface {
	Get(key uint64) (uint64, bool)
	Insert(key, val uint64) bool
	Delete(key uint64) bool
}

type variant struct {
	name string
	mk   func(mode arena.Mode) (mkHandle func(seed uint64) handle, finish func())
}

func variants() []variant {
	return []variant{
		{"CS/EBR", func(mode arena.Mode) (func(uint64) handle, func()) {
			dom := ebr.NewDomain()
			l := NewListCS(NewPool(mode))
			var hs []*HandleCS
			return func(seed uint64) handle {
					h := l.NewHandleCS(dom)
					h.Seed(seed)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Guard().(*ebr.Guard).Drain()
					}
				}
		}},
		{"CS/PEBR", func(mode arena.Mode) (func(uint64) handle, func()) {
			dom := pebr.NewDomain()
			l := NewListCS(NewPool(mode))
			var hs []*HandleCS
			return func(seed uint64) handle {
					h := l.NewHandleCS(dom)
					h.Seed(seed)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Guard().(*pebr.Guard).ClearShields()
					}
					for i := 0; i < 8; i++ {
						for _, h := range hs {
							h.Guard().(*pebr.Guard).Collect()
						}
					}
				}
		}},
		{"CS/NR", func(mode arena.Mode) (func(uint64) handle, func()) {
			dom := nr.NewDomain()
			l := NewListCS(NewPool(mode))
			return func(seed uint64) handle {
				h := l.NewHandleCS(dom)
				h.Seed(seed)
				return h
			}, func() {}
		}},
		{"HP", func(mode arena.Mode) (func(uint64) handle, func()) {
			dom := hp.NewDomain()
			l := NewListHP(NewPool(mode))
			var hs []*HandleHP
			return func(seed uint64) handle {
					h := l.NewHandleHP(dom)
					h.Seed(seed)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Thread().Finish()
					}
					dom.NewThread(0).Reclaim()
				}
		}},
		{"HPP", func(mode arena.Mode) (func(uint64) handle, func()) {
			dom := core.NewDomain(core.Options{})
			l := NewListHPP(NewPool(mode))
			var hs []*HandleHPP
			return func(seed uint64) handle {
					h := l.NewHandleHPP(dom)
					h.Seed(seed)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Thread().Finish()
					}
					dom.NewThread(0).Reclaim()
				}
		}},
		{"RC", func(mode arena.Mode) (func(uint64) handle, func()) {
			dom := rc.NewDomain()
			l := NewListRC(NewPoolRC(mode))
			var hs []*HandleRC
			return func(seed uint64) handle {
					h := l.NewHandleRC(dom)
					h.Seed(seed)
					hs = append(hs, h)
					return h
				}, func() {
					for _, h := range hs {
						h.Guard().Drain()
					}
				}
		}},
	}
}

func TestSequentialModel(t *testing.T) {
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			mk, finish := v.mk(arena.ModeDetect)
			h := mk(1)
			defer finish()
			model := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(13))
			for i := 0; i < 6000; i++ {
				k := uint64(rng.Intn(128))
				switch rng.Intn(3) {
				case 0:
					_, in := model[k]
					if h.Insert(k, k*7) == in {
						t.Fatalf("op %d: Insert(%d) disagreed with model", i, k)
					}
					model[k] = k * 7
				case 1:
					_, in := model[k]
					if h.Delete(k) != in {
						t.Fatalf("op %d: Delete(%d) disagreed with model", i, k)
					}
					delete(model, k)
				default:
					val, ok := h.Get(k)
					mv, in := model[k]
					if ok != in || (ok && val != mv) {
						t.Fatalf("op %d: Get(%d) = (%d,%v) want (%d,%v)", i, k, val, ok, mv, in)
					}
				}
			}
		})
	}
}

func TestQuickModelEquivalence(t *testing.T) {
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			prop := func(ops []uint16) bool {
				mk, finish := v.mk(arena.ModeDetect)
				h := mk(3)
				defer finish()
				model := map[uint64]uint64{}
				for _, op := range ops {
					k := uint64(op % 64)
					switch (op / 64) % 3 {
					case 0:
						_, in := model[k]
						if h.Insert(k, k) == in {
							return false
						}
						model[k] = k
					case 1:
						_, in := model[k]
						if h.Delete(k) != in {
							return false
						}
						delete(model, k)
					default:
						_, ok := h.Get(k)
						if _, in := model[k]; ok != in {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConcurrentStress(t *testing.T) {
	const (
		workers = 4
		iters   = 6000
		keys    = 64
	)
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			mk, finish := v.mk(arena.ModeDetect)
			handles := make([]handle, workers)
			for i := range handles {
				handles[i] = mk(uint64(i + 1))
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(h handle, seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < iters; i++ {
						k := uint64(rng.Intn(keys))
						switch rng.Intn(4) {
						case 0:
							h.Insert(k, k)
						case 1:
							h.Delete(k)
						default:
							h.Get(k)
						}
					}
				}(handles[w], int64(w+7))
			}
			wg.Wait()
			finish()
		})
	}
}

func TestDisjointKeysLinearizable(t *testing.T) {
	const workers = 4
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			mk, finish := v.mk(arena.ModeDetect)
			handles := make([]handle, workers)
			for i := range handles {
				handles[i] = mk(uint64(i + 11))
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(h handle, base uint64) {
					defer wg.Done()
					model := map[uint64]uint64{}
					rng := rand.New(rand.NewSource(int64(base + 3)))
					for i := 0; i < 2500; i++ {
						k := base + uint64(rng.Intn(24))
						switch rng.Intn(3) {
						case 0:
							_, in := model[k]
							if h.Insert(k, k) == in {
								t.Errorf("insert(%d) disagreed with private model", k)
								return
							}
							model[k] = k
						case 1:
							_, in := model[k]
							if h.Delete(k) != in {
								t.Errorf("delete(%d) disagreed with private model", k)
								return
							}
							delete(model, k)
						default:
							_, ok := h.Get(k)
							if _, in := model[k]; ok != in {
								t.Errorf("get(%d) disagreed with private model", k)
								return
							}
						}
					}
				}(handles[w], uint64(w)*1000)
			}
			wg.Wait()
			finish()
		})
	}
}

// TestTowersFullyReclaimed: single-threaded insert+delete of many keys
// must return every tower to the pool once reclamation drains — the
// linked-level counter must reach zero at every height.
func TestTowersFullyReclaimed(t *testing.T) {
	dom := ebr.NewDomain()
	p := NewPool(arena.ModeDetect)
	l := NewListCS(p)
	h := l.NewHandleCS(dom)
	h.Seed(42)
	const n = 2000
	for k := uint64(0); k < n; k++ {
		if !h.Insert(k, k) {
			t.Fatalf("insert(%d) failed", k)
		}
	}
	for k := uint64(0); k < n; k++ {
		if !h.Delete(k) {
			t.Fatalf("delete(%d) failed", k)
		}
	}
	h.Guard().(*ebr.Guard).Drain()
	if live := p.Stats().Live; live != 0 {
		t.Fatalf("leaked %d towers after drain", live)
	}
}

// TestGetSkipsMarkedTower: the wait-free read must find keys beyond a
// logically deleted tower without helping.
func TestGetSkipsMarkedTower(t *testing.T) {
	dom := ebr.NewDomain()
	p := NewPool(arena.ModeDetect)
	l := NewListCS(p)
	h := l.NewHandleCS(dom)
	h.Seed(9)
	for k := uint64(0); k < 10; k++ {
		h.Insert(k, k+500)
	}
	// Mark key 5's tower by hand at every level (logical deletion only).
	h.g.Pin()
	if !h.find(5) {
		t.Fatal("find(5) failed")
	}
	victim := h.succs[0]
	h.g.Unpin()
	nd := p.Pool.Deref(victim)
	for lvl := nd.height - 1; lvl >= 0; lvl-- {
		w := nd.next[lvl].Load()
		nd.next[lvl].Store(w | 1)
	}
	if _, ok := h.Get(5); ok {
		t.Fatal("marked key still visible")
	}
	if v, ok := h.Get(7); !ok || v != 507 {
		t.Fatalf("Get(7) = (%d,%v) past a marked tower", v, ok)
	}
}

// TestHeightDistribution sanity-checks the geometric tower heights.
func TestHeightDistribution(t *testing.T) {
	r := randState{s: 12345}
	counts := make([]int, MaxHeight+1)
	const n = 100000
	for i := 0; i < n; i++ {
		h := r.height()
		if h < 1 || h > MaxHeight {
			t.Fatalf("height %d out of range", h)
		}
		counts[h]++
	}
	if counts[1] < n/3 || counts[1] > 2*n/3 {
		t.Fatalf("height-1 frequency %d/%d far from 1/2", counts[1], n)
	}
	if counts[2] < n/8 || counts[2] > n/2 {
		t.Fatalf("height-2 frequency %d/%d far from 1/4", counts[2], n)
	}
}
