// Package msqueue implements the Michael-Scott lock-free FIFO queue —
// the paper's §4.2 example of Assumption 1 for queues: only the tail
// node's next pointer mutates (exactly once), and the tail node is never
// unlinked, so every dequeued node's links are immutable.
//
// The queue uses a dummy head node: Dequeue retires the old dummy and the
// dequeued node's cell becomes the new dummy.
package msqueue

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/hp"
	"github.com/gosmr/gosmr/internal/smr"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// Node is a queue cell.
type Node struct {
	next atomic.Uint64
	val  uint64
}

// Pool allocates queue cells and implements core.Invalidator.
type Pool struct {
	*arena.Pool[Node]
}

// NewPool creates a cell pool.
func NewPool(mode arena.Mode) Pool {
	return Pool{arena.NewPool[Node]("msqueue", mode)}
}

// Invalidate sets the Invalid bit on the cell's next word.
func (p Pool) Invalidate(ref uint64) {
	n := p.Deref(ref)
	n.next.Store(n.next.Load() | tagptr.Invalid)
}

func newDummy(pool Pool) uint64 {
	ref, nd := pool.Alloc()
	nd.val = 0
	nd.next.Store(0)
	return ref
}

// QueueHP is the MS queue under original hazard pointers.
type QueueHP struct {
	pool Pool
	head atomic.Uint64
	tail atomic.Uint64
}

// NewQueueHP creates an empty queue over pool.
func NewQueueHP(pool Pool) *QueueHP {
	q := &QueueHP{pool: pool}
	d := newDummy(pool)
	q.head.Store(tagptr.Pack(d, 0))
	q.tail.Store(tagptr.Pack(d, 0))
	return q
}

// NewHandleHP returns a per-worker handle.
func (q *QueueHP) NewHandleHP(dom *hp.Domain) *HandleHP {
	return &HandleHP{q: q, t: dom.NewThread(2)}
}

// HandleHP is a per-worker handle; not safe for concurrent use.
type HandleHP struct {
	q *QueueHP
	t *hp.Thread
}

// Thread exposes the underlying HP thread.
func (h *HandleHP) Thread() *hp.Thread { return h.t }

// Enqueue appends val at the tail.
func (h *HandleHP) Enqueue(val uint64) {
	ref, nd := h.q.pool.Alloc()
	nd.val = val
	nd.next.Store(0)
	defer h.t.Clear(0)
	for {
		tailW := h.q.tail.Load()
		if !h.t.ProtectWord(0, &h.q.tail, tailW) {
			continue
		}
		tn := h.q.pool.Deref(tagptr.RefOf(tailW))
		nextW := tn.next.Load()
		if tagptr.RefOf(nextW) != 0 {
			// Help swing the lagging tail.
			h.q.tail.CompareAndSwap(tailW, tagptr.Pack(tagptr.RefOf(nextW), 0))
			continue
		}
		if tn.next.CompareAndSwap(0, tagptr.Pack(ref, 0)) {
			h.q.tail.CompareAndSwap(tailW, tagptr.Pack(ref, 0))
			return
		}
	}
}

// Dequeue removes and returns the oldest value.
func (h *HandleHP) Dequeue() (uint64, bool) {
	defer h.t.ClearAll()
	for {
		headW := h.q.head.Load()
		if !h.t.ProtectWord(0, &h.q.head, headW) {
			continue
		}
		hn := h.q.pool.Deref(tagptr.RefOf(headW))
		nextW := hn.next.Load()
		next := tagptr.RefOf(nextW)
		if next == 0 {
			return 0, false
		}
		// Protect the first real cell; head unchanged validates it.
		h.t.Protect(1, next)
		if h.q.head.Load() != headW {
			continue
		}
		nn := h.q.pool.Deref(next)
		val := nn.val
		if h.q.head.CompareAndSwap(headW, tagptr.Pack(next, 0)) {
			h.t.Retire(tagptr.RefOf(headW), h.q.pool)
			return val, true
		}
	}
}

// QueueHPP is the MS queue under HP++ (backward-compatible mode; the head
// and tail pointers are never-invalidated protection sources).
type QueueHPP struct {
	pool Pool
	head atomic.Uint64
	tail atomic.Uint64
}

// NewQueueHPP creates an empty queue over pool.
func NewQueueHPP(pool Pool) *QueueHPP {
	q := &QueueHPP{pool: pool}
	d := newDummy(pool)
	q.head.Store(tagptr.Pack(d, 0))
	q.tail.Store(tagptr.Pack(d, 0))
	return q
}

// NewHandleHPP returns a per-worker handle.
func (q *QueueHPP) NewHandleHPP(dom *core.Domain) *HandleHPP {
	return &HandleHPP{q: q, t: dom.NewThread(2)}
}

// HandleHPP is a per-worker handle; not safe for concurrent use.
type HandleHPP struct {
	q *QueueHPP
	t *core.Thread
}

// Thread exposes the underlying HP++ thread.
func (h *HandleHPP) Thread() *core.Thread { return h.t }

// Enqueue appends val at the tail.
func (h *HandleHPP) Enqueue(val uint64) {
	ref, nd := h.q.pool.Alloc()
	nd.val = val
	nd.next.Store(0)
	defer h.t.Clear(0)
	for {
		tail := tagptr.RefOf(h.q.tail.Load())
		if !h.t.TryProtect(0, &tail, nil, &h.q.tail) || tail == 0 {
			continue
		}
		tn := h.q.pool.Deref(tail)
		nextW := tn.next.Load()
		if next := tagptr.RefOf(nextW); next != 0 {
			h.q.tail.CompareAndSwap(tagptr.Pack(tail, 0), tagptr.Pack(next, 0))
			continue
		}
		if tn.next.CompareAndSwap(0, tagptr.Pack(ref, 0)) {
			h.q.tail.CompareAndSwap(tagptr.Pack(tail, 0), tagptr.Pack(ref, 0))
			return
		}
	}
}

// Dequeue removes and returns the oldest value. The dummy unlink goes
// through TryUnlink with the surviving first cell as frontier.
func (h *HandleHPP) Dequeue() (uint64, bool) {
	defer h.t.ClearAll()
	for {
		head := tagptr.RefOf(h.q.head.Load())
		if !h.t.TryProtect(0, &head, nil, &h.q.head) || head == 0 {
			continue
		}
		hn := h.q.pool.Deref(head)
		next := tagptr.RefOf(hn.next.Load())
		if next == 0 {
			return 0, false
		}
		if !h.t.TryProtect(1, &next, &hn.next, &hn.next) {
			continue // head cell already invalidated: re-read the head
		}
		nn := h.q.pool.Deref(next)
		val := nn.val
		pool := h.q.pool
		headPtr := &h.q.head
		old := head
		ok := h.t.TryUnlink([]uint64{next}, func() ([]smr.Retired, bool) {
			if !headPtr.CompareAndSwap(tagptr.Pack(old, 0), tagptr.Pack(next, 0)) {
				return nil, false
			}
			return []smr.Retired{{Ref: old, D: pool}}, true
		}, pool)
		if ok {
			return val, true
		}
	}
}
