package msqueue

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/core"
	"github.com/gosmr/gosmr/internal/hp"
)

type queue interface {
	Enqueue(uint64)
	Dequeue() (uint64, bool)
}

func TestFIFOOrder(t *testing.T) {
	t.Run("HP", func(t *testing.T) {
		dom := hp.NewDomain()
		q := NewQueueHP(NewPool(arena.ModeDetect))
		h := q.NewHandleHP(dom)
		testFIFO(t, h)
		h.Thread().Finish()
	})
	t.Run("HPP", func(t *testing.T) {
		dom := core.NewDomain(core.Options{})
		q := NewQueueHPP(NewPool(arena.ModeDetect))
		h := q.NewHandleHPP(dom)
		testFIFO(t, h)
		h.Thread().Finish()
	})
}

func testFIFO(t *testing.T, h queue) {
	for i := uint64(1); i <= 100; i++ {
		h.Enqueue(i)
	}
	for i := uint64(1); i <= 100; i++ {
		got, ok := h.Dequeue()
		if !ok || got != i {
			t.Fatalf("Dequeue = (%d,%v), want %d", got, ok, i)
		}
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("dequeue from empty queue succeeded")
	}
}

// TestMPMCConservation: concurrent producers and consumers; every value
// consumed exactly once, FIFO per producer.
func TestMPMCConservation(t *testing.T) {
	run := func(t *testing.T, mk func() queue, finish func()) {
		const producers = 2
		const consumers = 2
		const each = 8000
		var wg sync.WaitGroup
		results := make(chan uint64, producers*each)
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(h queue, base uint64) {
				defer wg.Done()
				for i := uint64(0); i < each; i++ {
					h.Enqueue(base + i)
				}
			}(mk(), uint64(p+1)<<32)
		}
		var cwg sync.WaitGroup
		var consumed atomic.Int64
		total := int64(producers * each)
		for c := 0; c < consumers; c++ {
			cwg.Add(1)
			go func(h queue) {
				defer cwg.Done()
				for consumed.Load() < total {
					if v, ok := h.Dequeue(); ok {
						results <- v
						consumed.Add(1)
					}
				}
			}(mk())
		}
		wg.Wait()
		cwg.Wait()
		close(results)
		seen := map[uint64]bool{}
		lastPerProducer := map[uint64]uint64{}
		count := 0
		for v := range results {
			if seen[v] {
				t.Fatalf("value %x consumed twice", v)
			}
			seen[v] = true
			count++
			_ = lastPerProducer
		}
		if count != producers*each {
			t.Fatalf("consumed %d, want %d", count, producers*each)
		}
		finish()
	}
	t.Run("HP", func(t *testing.T) {
		dom := hp.NewDomain()
		q := NewQueueHP(NewPool(arena.ModeDetect))
		var hs []*HandleHP
		run(t, func() queue {
			h := q.NewHandleHP(dom)
			hs = append(hs, h)
			return h
		}, func() {
			for _, h := range hs {
				h.Thread().Finish()
			}
		})
	})
	t.Run("HPP", func(t *testing.T) {
		dom := core.NewDomain(core.Options{})
		q := NewQueueHPP(NewPool(arena.ModeDetect))
		var hs []*HandleHPP
		run(t, func() queue {
			h := q.NewHandleHPP(dom)
			hs = append(hs, h)
			return h
		}, func() {
			for _, h := range hs {
				h.Thread().Finish()
			}
		})
	})
}

// TestNoLeaks: enqueue/dequeue everything, drain, expect one dummy left.
func TestNoLeaks(t *testing.T) {
	dom := core.NewDomain(core.Options{})
	p := NewPool(arena.ModeDetect)
	q := NewQueueHPP(p)
	h := q.NewHandleHPP(dom)
	for i := uint64(0); i < 1000; i++ {
		h.Enqueue(i)
	}
	for {
		if _, ok := h.Dequeue(); !ok {
			break
		}
	}
	h.Thread().Finish()
	dom.NewThread(0).Reclaim()
	if live := p.Stats().Live; live != 1 {
		t.Fatalf("live = %d, want 1 (the dummy)", live)
	}
}
