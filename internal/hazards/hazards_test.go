package hazards

import (
	"sync"
	"testing"
)

func TestAcquireReleaseReuse(t *testing.T) {
	var r Registry
	s1 := r.Acquire()
	s1.Set(42)
	r.Release(s1)
	if s1.Get() != 0 {
		t.Fatal("release must clear the slot value")
	}
	s2 := r.Acquire()
	if s2 != s1 {
		t.Fatal("released slot should be reused")
	}
	if r.Len() != 1 {
		t.Fatalf("len = %d, want 1", r.Len())
	}
}

func TestSnapshotCollectsAnnouncedRefs(t *testing.T) {
	var r Registry
	a, b, c := r.Acquire(), r.Acquire(), r.Acquire()
	a.Set(1)
	b.Set(2)
	c.Clear()
	set := map[uint64]struct{}{}
	r.Snapshot(set)
	if len(set) != 2 {
		t.Fatalf("snapshot = %v", set)
	}
	if _, ok := set[1]; !ok {
		t.Error("missing ref 1")
	}
	if _, ok := set[2]; !ok {
		t.Error("missing ref 2")
	}
}

func TestProtects(t *testing.T) {
	var r Registry
	s := r.Acquire()
	s.Set(99)
	if !r.Protects(99) {
		t.Error("Protects(99) = false")
	}
	if r.Protects(100) {
		t.Error("Protects(100) = true")
	}
}

func TestConcurrentAcquire(t *testing.T) {
	var r Registry
	const workers = 16
	var wg sync.WaitGroup
	slots := make([]*Slot, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			slots[i] = r.Acquire()
			slots[i].Set(uint64(i + 1))
		}(i)
	}
	wg.Wait()
	seen := map[*Slot]bool{}
	for _, s := range slots {
		if seen[s] {
			t.Fatal("slot handed to two goroutines")
		}
		seen[s] = true
	}
	set := map[uint64]struct{}{}
	r.Snapshot(set)
	if len(set) != workers {
		t.Fatalf("snapshot has %d refs, want %d", len(set), workers)
	}
}
