package hazards

import (
	"runtime"
	"sort"
	"sync"
	"testing"
)

func TestAcquireReleaseReuse(t *testing.T) {
	var r Registry
	s1 := r.Acquire()
	s1.Set(42)
	r.Release(s1)
	if s1.Get() != 0 {
		t.Fatal("release must clear the slot value")
	}
	s2 := r.Acquire()
	if s2 != s1 {
		t.Fatal("released slot should be reused")
	}
	if r.Len() != 1 {
		t.Fatalf("len = %d, want 1", r.Len())
	}
}

func TestSnapshotCollectsAnnouncedRefs(t *testing.T) {
	var r Registry
	a, b, c := r.Acquire(), r.Acquire(), r.Acquire()
	a.Set(1)
	b.Set(2)
	c.Clear()
	set := map[uint64]struct{}{}
	r.BenchSnapshot(set)
	if len(set) != 2 {
		t.Fatalf("snapshot = %v", set)
	}
	if _, ok := set[1]; !ok {
		t.Error("missing ref 1")
	}
	if _, ok := set[2]; !ok {
		t.Error("missing ref 2")
	}
}

func TestProtects(t *testing.T) {
	var r Registry
	s := r.Acquire()
	s.Set(99)
	if !r.Protects(99) {
		t.Error("Protects(99) = false")
	}
	if r.Protects(100) {
		t.Error("Protects(100) = true")
	}
}

func TestConcurrentAcquire(t *testing.T) {
	var r Registry
	const workers = 16
	var wg sync.WaitGroup
	slots := make([]*Slot, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			slots[i] = r.Acquire()
			slots[i].Set(uint64(i + 1))
		}(i)
	}
	wg.Wait()
	seen := map[*Slot]bool{}
	for _, s := range slots {
		if seen[s] {
			t.Fatal("slot handed to two goroutines")
		}
		seen[s] = true
	}
	set := map[uint64]struct{}{}
	r.BenchSnapshot(set)
	if len(set) != workers {
		t.Fatalf("snapshot has %d refs, want %d", len(set), workers)
	}
}

func TestSnapshotSortedMatchesMapSnapshot(t *testing.T) {
	var r Registry
	refs := []uint64{900, 3, 77, 12, 500}
	for _, v := range refs {
		r.Acquire().Set(v)
	}
	r.Acquire() // empty slot must not contribute
	var buf []uint64
	buf = r.SnapshotSorted(buf)
	if !sort.SliceIsSorted(buf, func(i, j int) bool { return buf[i] < buf[j] }) {
		t.Fatalf("snapshot not sorted: %v", buf)
	}
	want := map[uint64]struct{}{}
	r.BenchSnapshot(want)
	if len(buf) != len(want) {
		t.Fatalf("sorted snapshot %v vs map %v", buf, want)
	}
	for _, v := range refs {
		if !Contains(buf, v) {
			t.Errorf("Contains(%d) = false", v)
		}
	}
	if Contains(buf, 4) || Contains(buf, 0) {
		t.Error("Contains reports absent refs")
	}
	// Buffer reuse: a second snapshot after changes reuses the backing array.
	prev := &buf[0]
	buf = r.SnapshotSorted(buf)
	if &buf[0] != prev {
		t.Error("SnapshotSorted reallocated a sufficient buffer")
	}
}

func TestReleaseHintSkipsInUseRun(t *testing.T) {
	var r Registry
	// Build a long run of in-use slots, then release one in the middle:
	// the next Acquire must come straight from the hint, not a fresh slot.
	slots := make([]*Slot, 64)
	for i := range slots {
		slots[i] = r.Acquire()
	}
	victim := slots[32]
	r.Release(victim)
	if got := r.Acquire(); got != victim {
		t.Fatalf("Acquire did not reuse the hinted slot")
	}
	if r.Len() != 64 {
		t.Fatalf("len = %d, want 64", r.Len())
	}
}

func TestInUseCountsAcquiredSlots(t *testing.T) {
	var r Registry
	if r.InUse() != 0 {
		t.Fatalf("fresh registry InUse = %d", r.InUse())
	}
	a, b := r.Acquire(), r.Acquire()
	if r.InUse() != 2 {
		t.Fatalf("InUse = %d, want 2", r.InUse())
	}
	r.Release(a)
	if r.InUse() != 1 {
		t.Fatalf("InUse = %d, want 1", r.InUse())
	}
	r.Release(b)
	if r.InUse() != 0 || r.Len() != 2 {
		t.Fatalf("InUse = %d Len = %d, want 0/2", r.InUse(), r.Len())
	}
}

func TestReclaimThreshold(t *testing.T) {
	if got := ReclaimThreshold(0, 128); got != 128 {
		t.Fatalf("floor not applied: %d", got)
	}
	if got := ReclaimThreshold(100, 128); got != 200 {
		t.Fatalf("k·H not applied: %d", got)
	}
}

func TestConcurrentAcquireReleaseKeepsCounts(t *testing.T) {
	var r Registry
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				s := r.Acquire()
				s.Set(uint64(i + 1))
				r.Release(s)
			}
		}()
	}
	wg.Wait()
	if got := r.InUse(); got != 0 {
		t.Fatalf("InUse = %d after all released", got)
	}
	if r.Len() > workers {
		t.Fatalf("registry grew to %d slots for %d workers", r.Len(), workers)
	}
}

func TestScanSetAgreesWithMapSnapshot(t *testing.T) {
	r := &Registry{}
	want := map[uint64]struct{}{}
	for i := 0; i < 200; i++ {
		v := uint64(i*i*7 + 13)
		r.Acquire().Set(v)
		want[v] = struct{}{}
	}
	var ss ScanSet
	for round := 0; round < 2; round++ { // second round exercises reuse
		ss.Load(r)
		if ss.Len() != len(want) {
			t.Fatalf("round %d: Len = %d, want %d", round, ss.Len(), len(want))
		}
		for v := range want {
			if !ss.Contains(v) {
				t.Errorf("round %d: false negative for %d", round, v)
			}
		}
		for i := 0; i < 10000; i++ {
			v := splitmix(uint64(i) + 5000)
			if _, p := want[v]; !p && Contains(ss.Sorted(), v) {
				t.Errorf("round %d: binary search false positive for %d", round, v)
			}
			if got := ss.Contains(v); got != func() bool { _, p := want[v]; return p }() {
				t.Errorf("round %d: Contains(%d) = %v disagrees with map", round, v, got)
			}
		}
	}
}

func TestReleaseHintNeverServesInUseSlot(t *testing.T) {
	// Regression test for the hint-staleness race: Release used to publish
	// its slot as the hint unconditionally, so a second Release could
	// overwrite a still-valid hint, and Acquire could observe a hint whose
	// slot had already been re-acquired. Under -race this also checks the
	// hint handoff itself for data races. Each worker must receive a slot
	// that is exclusively its own: the token it writes must survive a
	// scheduling point.
	var r Registry
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tok uint64) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				s := r.Acquire()
				if got := s.Get(); got != 0 {
					t.Errorf("acquired dirty slot holding %d", got)
				}
				s.Set(tok)
				runtime.Gosched()
				if got := s.Get(); got != tok {
					t.Errorf("slot stolen: wrote %d, read %d", tok, got)
				}
				r.Release(s)
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	if got := r.InUse(); got != 0 {
		t.Fatalf("InUse = %d after all released", got)
	}
	if r.Len() > workers {
		t.Fatalf("registry grew to %d slots for %d workers", r.Len(), workers)
	}
}

func TestScanSetFilterScalesPastLegacyCapacity(t *testing.T) {
	// The filter used to be fixed at 1024 bits, saturating for registries
	// beyond a few hundred hazard slots and degrading Contains to a binary
	// search per probe. Verify that with >256 occupied slots the filter
	// (a) grows beyond the legacy size and (b) keeps the false-positive
	// rate - measured as binary-search fallthroughs on absent refs - at a
	// few percent.
	r := &Registry{}
	const occupied = 400
	present := map[uint64]struct{}{}
	for i := 0; i < occupied; i++ {
		v := splitmix(uint64(i) + 1)
		r.Acquire().Set(v)
		present[v] = struct{}{}
	}
	var ss ScanSet
	ss.Load(r)
	if ss.Len() != len(present) {
		t.Fatalf("Len = %d, want %d", ss.Len(), len(present))
	}
	if bits := ss.FilterBits(); bits <= 1024 {
		t.Fatalf("filter stuck at legacy capacity: %d bits for %d slots", bits, occupied)
	}
	for v := range present {
		if !ss.Contains(v) {
			t.Fatalf("false negative for %d", v)
		}
	}
	before := ss.Fallthroughs()
	const probes = 200000
	negatives := 0
	for i := 0; i < probes; i++ {
		v := splitmix(uint64(i) + 1<<40)
		if _, p := present[v]; p {
			continue
		}
		negatives++
		if ss.Contains(v) {
			t.Fatalf("Contains(%d) = true for absent ref", v)
		}
	}
	falsePositives := ss.Fallthroughs() - before
	rate := float64(falsePositives) / float64(negatives)
	t.Logf("filter: %d bits, %d occupied, %d/%d fallthroughs (%.3f%%)",
		ss.FilterBits(), occupied, falsePositives, negatives, 100*rate)
	// 400 entries in a >=16384-bit filter is ~2.4% fill; allow headroom.
	if rate > 0.05 {
		t.Fatalf("false-positive rate %.3f exceeds 5%%", rate)
	}
}
