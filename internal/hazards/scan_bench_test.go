package hazards

import "testing"

// scanFixture builds a registry with h announced slots and a retired set of
// n refs, a quarter of which are protected — the shape of one Reclaim pass.
func scanFixture(h, n int) (*Registry, []uint64) {
	r := &Registry{}
	hazards := make([]uint64, 0, h)
	for i := 0; i < h; i++ {
		v := splitmix(uint64(i)*2 + 1)
		r.Acquire().Set(v)
		hazards = append(hazards, v)
	}
	retired := make([]uint64, n)
	for i := range retired {
		if i%4 == 0 {
			retired[i] = hazards[i%h]
		} else {
			retired[i] = splitmix(uint64(i)*2 + 2)
		}
	}
	return r, retired
}

func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	v := x ^ (x >> 31)
	if v == 0 {
		return 1
	}
	return v
}

// BenchmarkReclaimScan compares the pre-overhaul map-based hazard snapshot
// against the sorted-slice + binary-search path that Reclaim now uses, at
// the pinned shape H=64 announced slots, 4096 retired refs.
func BenchmarkReclaimScan(b *testing.B) {
	const h, n = 64, 4096
	reg, retired := scanFixture(h, n)

	b.Run("map", func(b *testing.B) {
		scratch := make(map[uint64]struct{}, h)
		kept := 0
		for i := 0; i < b.N; i++ {
			clear(scratch)
			reg.BenchSnapshot(scratch)
			for _, ref := range retired {
				if _, p := scratch[ref]; p {
					kept++
				}
			}
		}
		sinkInt = kept
	})
	b.Run("sorted", func(b *testing.B) {
		var scan ScanSet
		kept := 0
		for i := 0; i < b.N; i++ {
			scan.Load(reg)
			for _, ref := range retired {
				if scan.Contains(ref) {
					kept++
				}
			}
		}
		sinkInt = kept
	})
}

var sinkInt int
