// Package hazards provides the global hazard-slot registry shared by the
// HP (internal/hp) and HP++ (internal/core) reclamation schemes: a grow-only
// lock-free list of single-writer multi-reader slots that protecting threads
// write node references into and reclaiming threads scan.
package hazards

import "sync/atomic"

// Slot is a single hazard-pointer cell. Exactly one owning thread writes
// Value at a time; any thread may read it during a reclamation scan.
type Slot struct {
	value atomic.Uint64
	inUse atomic.Uint32
	next  *Slot
}

// Set announces protection of ref.
func (s *Slot) Set(ref uint64) { s.value.Store(ref) }

// Get returns the currently announced reference (0 if none).
func (s *Slot) Get() uint64 { return s.value.Load() }

// Clear revokes the announcement without releasing the slot.
func (s *Slot) Clear() { s.value.Store(0) }

// Registry is the global list of hazard slots for one reclamation domain.
// The zero value is ready to use.
type Registry struct {
	head atomic.Pointer[Slot]
	n    atomic.Int64
}

// Acquire returns an exclusive slot, reusing a released one if available.
func (r *Registry) Acquire() *Slot {
	for s := r.head.Load(); s != nil; s = s.next {
		if s.inUse.Load() == 0 && s.inUse.CompareAndSwap(0, 1) {
			return s
		}
	}
	s := &Slot{}
	s.inUse.Store(1)
	for {
		h := r.head.Load()
		s.next = h
		if r.head.CompareAndSwap(h, s) {
			r.n.Add(1)
			return s
		}
	}
}

// Release clears the slot and returns it to the registry for reuse.
func (r *Registry) Release(s *Slot) {
	s.value.Store(0)
	s.inUse.Store(0)
}

// Snapshot adds every currently announced reference to set.
func (r *Registry) Snapshot(set map[uint64]struct{}) {
	for s := r.head.Load(); s != nil; s = s.next {
		if v := s.value.Load(); v != 0 {
			set[v] = struct{}{}
		}
	}
}

// Protects reports whether any slot currently announces ref. It is slower
// than Snapshot for bulk queries and intended for tests.
func (r *Registry) Protects(ref uint64) bool {
	for s := r.head.Load(); s != nil; s = s.next {
		if s.value.Load() == ref {
			return true
		}
	}
	return false
}

// Len returns the total number of slots ever created (in use or free).
func (r *Registry) Len() int { return int(r.n.Load()) }
