// Package hazards provides the global hazard-slot registry shared by the
// HP (internal/hp) and HP++ (internal/core) reclamation schemes: a grow-only
// lock-free list of single-writer multi-reader slots that protecting threads
// write node references into and reclaiming threads scan.
package hazards

import (
	"slices"
	"sync/atomic"
)

// slotPad pads each Slot to 128 bytes — two 64-byte cache lines, matching
// the spatial-prefetcher granularity — so adjacent slots (which are written
// by different threads on every protection change) never share a line.
// The unpadded fields occupy 24 bytes.
const slotPad = 128 - 24

// Slot is a single hazard-pointer cell. Exactly one owning thread writes
// Value at a time; any thread may read it during a reclamation scan.
type Slot struct {
	value atomic.Uint64
	inUse atomic.Uint32
	next  *Slot
	_     [slotPad]byte
}

// Set announces protection of ref.
func (s *Slot) Set(ref uint64) { s.value.Store(ref) }

// Get returns the currently announced reference (0 if none).
func (s *Slot) Get() uint64 { return s.value.Load() }

// Clear revokes the announcement without releasing the slot.
func (s *Slot) Clear() { s.value.Store(0) }

// Registry is the global list of hazard slots for one reclamation domain.
// The zero value is ready to use.
type Registry struct {
	head atomic.Pointer[Slot]
	n    atomic.Int64
	live atomic.Int64
	// hint points at the most recently released slot so Acquire can skip
	// the linear scan over long runs of in-use slots in the common
	// release-then-reacquire churn (HP++ frontier slots).
	hint atomic.Pointer[Slot]
}

// Acquire returns an exclusive slot, reusing a released one if available.
func (r *Registry) Acquire() *Slot {
	if h := r.hint.Load(); h != nil && h.inUse.CompareAndSwap(0, 1) {
		r.hint.CompareAndSwap(h, nil)
		r.live.Add(1)
		return h
	}
	for s := r.head.Load(); s != nil; s = s.next {
		if s.inUse.Load() == 0 && s.inUse.CompareAndSwap(0, 1) {
			r.live.Add(1)
			return s
		}
	}
	s := &Slot{}
	s.inUse.Store(1)
	for {
		h := r.head.Load()
		s.next = h
		if r.head.CompareAndSwap(h, s) {
			r.n.Add(1)
			r.live.Add(1)
			return s
		}
	}
}

// Release clears the slot and returns it to the registry for reuse.
func (r *Registry) Release(s *Slot) {
	s.value.Store(0)
	s.inUse.Store(0)
	r.live.Add(-1)
	r.hint.Store(s)
}

// Snapshot adds every currently announced reference to set.
func (r *Registry) Snapshot(set map[uint64]struct{}) {
	for s := r.head.Load(); s != nil; s = s.next {
		if v := s.value.Load(); v != 0 {
			set[v] = struct{}{}
		}
	}
}

// SnapshotSorted appends every currently announced reference to buf[:0],
// sorts it, and returns the slice. Reusing the returned buffer across
// reclamation scans makes the scan allocation-free; membership is then a
// binary search (Contains) instead of a map lookup — Michael's original
// formulation of the reclamation scan.
func (r *Registry) SnapshotSorted(buf []uint64) []uint64 {
	buf = buf[:0]
	for s := r.head.Load(); s != nil; s = s.next {
		if v := s.value.Load(); v != 0 {
			buf = append(buf, v)
		}
	}
	slices.Sort(buf)
	return buf
}

// Contains reports whether the sorted snapshot contains ref. It is a
// hand-rolled binary search over a shrinking subslice: mid is always
// len(s)>>1, which the compiler can prove in-bounds, so the probe loop
// carries no bounds checks. The generic slices.BinarySearch costs a
// non-inlinable call plus a comparator indirection per probe, which at
// reclamation-scan volume (one probe chain per retired node) measurably
// dominates the scan.
func Contains(sorted []uint64, ref uint64) bool {
	s := sorted
	for len(s) > 0 {
		mid := len(s) >> 1
		v := s[mid]
		if v == ref {
			return true
		}
		if v < ref {
			s = s[mid+1:]
		} else {
			s = s[:mid]
		}
	}
	return false
}

// filterWords sizes the ScanSet membership filter: 16 words = 1024 bits,
// two cache lines. With the ~dozens of announced hazards a scan sees, the
// false-positive rate stays in the low percent, so nearly every
// not-protected probe is rejected by a single load.
const filterWords = 16

func filterBit(ref uint64) (word, mask uint64) {
	h := (ref * 0x9E3779B97F4A7C15) >> 54 // Fibonacci hash, top 10 bits
	return h >> 6, 1 << (h & 63)
}

// ScanSet is the reusable per-thread scan state for a reclamation pass: a
// sorted array of the announced references plus a 1024-bit hash summary of
// them. Membership probes test the summary first — one load and a mask —
// and fall through to the binary search only on probable hits. Since the
// amortized guarantee behind the reclaim cadence is that most retired
// nodes are NOT protected at scan time, the filter short-circuits almost
// every probe. A false positive merely sends a probe to the binary search,
// which gives the exact answer; the filter never changes the result.
//
// The zero value is ready to use; reusing one across scans makes the scan
// allocation-free once the sorted buffer has grown to the registry size.
type ScanSet struct {
	sorted []uint64
	filter [filterWords]uint64
}

// Load replaces the set's contents with a snapshot of every reference
// currently announced in r.
func (ss *ScanSet) Load(r *Registry) {
	ss.sorted = ss.sorted[:0]
	ss.filter = [filterWords]uint64{}
	for s := r.head.Load(); s != nil; s = s.next {
		if v := s.value.Load(); v != 0 {
			ss.sorted = append(ss.sorted, v)
			w, m := filterBit(v)
			ss.filter[w] |= m
		}
	}
	slices.Sort(ss.sorted)
}

// Contains reports whether ref was announced when the set was loaded.
func (ss *ScanSet) Contains(ref uint64) bool {
	w, m := filterBit(ref)
	if ss.filter[w]&m == 0 {
		return false
	}
	return Contains(ss.sorted, ref)
}

// Len returns the number of references in the set.
func (ss *ScanSet) Len() int { return len(ss.sorted) }

// Sorted exposes the sorted snapshot for tests.
func (ss *ScanSet) Sorted() []uint64 { return ss.sorted }

// Protects reports whether any slot currently announces ref. It is slower
// than Snapshot for bulk queries and intended for tests.
func (r *Registry) Protects(ref uint64) bool {
	for s := r.head.Load(); s != nil; s = s.next {
		if s.value.Load() == ref {
			return true
		}
	}
	return false
}

// Len returns the total number of slots ever created (in use or free).
func (r *Registry) Len() int { return int(r.n.Load()) }

// InUse returns the number of currently acquired slots — the H in the
// adaptive reclamation threshold R = max(floor, k·H). It can be read
// concurrently with Acquire/Release and is monotone-consistent (never
// negative, never above Len).
func (r *Registry) InUse() int { return int(r.live.Load()) }

// AdaptiveFactor is the k in the adaptive reclamation threshold
// R = max(floor, k·H). Scanning only once a thread's retired set reaches
// k·H guarantees each scan frees at least a (k-1)/k fraction of it — at
// most H refs can be protected by H slots — so the amortized per-retire
// scan cost stays constant no matter how many threads join (Michael 2004).
const AdaptiveFactor = 2

// ReclaimThreshold returns the adaptive scan threshold for h acquired
// slots: max(floor, AdaptiveFactor·h). The floor keeps tiny registries
// from scanning on every retire.
func ReclaimThreshold(h, floor int) int {
	if r := AdaptiveFactor * h; r > floor {
		return r
	}
	return floor
}
