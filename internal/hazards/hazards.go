// Package hazards provides the global hazard-slot registry shared by the
// HP (internal/hp) and HP++ (internal/core) reclamation schemes: a grow-only
// lock-free list of single-writer multi-reader slots that protecting threads
// write node references into and reclaiming threads scan.
package hazards

import (
	"math/bits"
	"slices"
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/smr"
)

// slotPad pads each Slot to 128 bytes — two 64-byte cache lines, matching
// the spatial-prefetcher granularity — so adjacent slots (which are written
// by different threads on every protection change) never share a line.
// The unpadded fields occupy 24 bytes.
const slotPad = 128 - 24

// Slot is a single hazard-pointer cell. Exactly one owning thread writes
// Value at a time; any thread may read it during a reclamation scan.
type Slot struct {
	value atomic.Uint64
	inUse atomic.Uint32
	next  *Slot
	_     [slotPad]byte
}

// Set announces protection of ref.
func (s *Slot) Set(ref uint64) { s.value.Store(ref) }

// Get returns the currently announced reference (0 if none).
func (s *Slot) Get() uint64 { return s.value.Load() }

// Clear revokes the announcement without releasing the slot.
func (s *Slot) Clear() { s.value.Store(0) }

// Registry is the global list of hazard slots for one reclamation domain.
// The zero value is ready to use.
type Registry struct {
	head atomic.Pointer[Slot]
	n    atomic.Int64
	live atomic.Int64
	// hint points at a recently released slot so Acquire can skip the
	// linear scan over long runs of in-use slots in the common
	// release-then-reacquire churn (HP++ frontier slots). Invariant: the
	// hint is published only when empty (Release CAS nil→slot) and taken
	// down only by CAS, so a racing Release can never overwrite a hint
	// that still points at a free slot, and Acquire self-heals a hint
	// left pointing at a slot some other thread already re-acquired.
	hint atomic.Pointer[Slot]
}

// Acquire returns an exclusive slot, reusing a released one if available.
func (r *Registry) Acquire() *Slot {
	if h := r.hint.Load(); h != nil {
		if h.inUse.CompareAndSwap(0, 1) {
			r.hint.CompareAndSwap(h, nil)
			r.live.Add(1)
			return h
		}
		// Stale hint: the slot was re-acquired through the list scan by
		// another thread. Clear it (CAS — a concurrent Release may have
		// already replaced it with a genuinely free slot).
		r.hint.CompareAndSwap(h, nil)
	}
	for s := r.head.Load(); s != nil; s = s.next {
		if s.inUse.Load() == 0 && s.inUse.CompareAndSwap(0, 1) {
			r.live.Add(1)
			return s
		}
	}
	s := &Slot{}
	s.inUse.Store(1)
	for {
		h := r.head.Load()
		s.next = h
		if r.head.CompareAndSwap(h, s) {
			r.n.Add(1)
			r.live.Add(1)
			return s
		}
	}
}

// Release clears the slot and returns it to the registry for reuse. The
// hint is only published into an empty cell: unconditionally overwriting
// it could discard a hint to a still-free slot and leave this one's hint
// to be invalidated by a later Acquire through the list scan, costing two
// fast paths instead of one. The list scan remains the backstop, so a
// skipped hint publish never loses a slot.
func (r *Registry) Release(s *Slot) {
	s.value.Store(0)
	s.inUse.Store(0)
	r.live.Add(-1)
	r.hint.CompareAndSwap(nil, s)
}

// BenchSnapshot adds every currently announced reference to set.
//
// Baseline for benchmarks only (BenchmarkReclaimScan and the pinned
// microbench behind make bench-json measure the map-based scan against
// ScanSet): schemes must use ScanSet / SnapshotSorted, which are
// allocation-free and probe by filtered binary search instead of map
// lookup.
func (r *Registry) BenchSnapshot(set map[uint64]struct{}) {
	for s := r.head.Load(); s != nil; s = s.next {
		if v := s.value.Load(); v != 0 {
			set[v] = struct{}{}
		}
	}
}

// SnapshotSorted appends every currently announced reference to buf[:0],
// sorts it, and returns the slice. Reusing the returned buffer across
// reclamation scans makes the scan allocation-free; membership is then a
// binary search (Contains) instead of a map lookup — Michael's original
// formulation of the reclamation scan.
func (r *Registry) SnapshotSorted(buf []uint64) []uint64 {
	buf = buf[:0]
	for s := r.head.Load(); s != nil; s = s.next {
		if v := s.value.Load(); v != 0 {
			buf = append(buf, v)
		}
	}
	slices.Sort(buf)
	return buf
}

// Contains reports whether the sorted snapshot contains ref. It is a
// hand-rolled binary search over a shrinking subslice: mid is always
// len(s)>>1, which the compiler can prove in-bounds, so the probe loop
// carries no bounds checks. The generic slices.BinarySearch costs a
// non-inlinable call plus a comparator indirection per probe, which at
// reclamation-scan volume (one probe chain per retired node) measurably
// dominates the scan.
func Contains(sorted []uint64, ref uint64) bool {
	s := sorted
	for len(s) > 0 {
		mid := len(s) >> 1
		v := s[mid]
		if v == ref {
			return true
		}
		if v < ref {
			s = s[mid+1:]
		} else {
			s = s[:mid]
		}
	}
	return false
}

// minFilterWords is the smallest ScanSet filter: 16 words = 1024 bits, two
// cache lines. It covers up to 256 entries at <=25% fill; beyond that the
// filter doubles (see filterWordsFor), keeping the false-positive rate in
// the low percent at any slot count instead of saturating the way the old
// fixed 1024-bit summary did past ~256 announced slots.
const minFilterWords = 16

// filterWordsFor returns the power-of-two word count whose bit capacity is
// at least filterBitsPerEntry per expected entry, never below
// minFilterWords. With 32 bits per entry a full filter is at most ~3.1%
// set, which bounds the false-positive rate of a 1-bit-per-key summary at
// about the same figure.
const filterBitsPerEntry = 32

func filterWordsFor(n int) int {
	w := minFilterWords
	for w*64 < n*filterBitsPerEntry {
		w <<= 1
	}
	return w
}

// filterBit maps ref to its summary bit for a filter of 1<<shiftBits
// words: a Fibonacci-hash multiply whose top (6 + log2(words)) bits select
// word and bit. The multiplier spreads the low entropy of arena refs
// (small pool indices in the low bits) across the top bits.
func filterBit(ref uint64, shift uint) (word, mask uint64) {
	h := (ref * 0x9E3779B97F4A7C15) >> shift
	return h >> 6, 1 << (h & 63)
}

// ScanSet is the reusable per-thread scan state for a reclamation pass: a
// sorted array of the announced references plus a 1-bit-per-key hash
// summary of them, sized from the registry's slot count (power-of-two
// growth, ~3% maximum fill). Membership probes test the summary first —
// one load and a mask — and fall through to the binary search only on
// probable hits. Since the amortized guarantee behind the reclaim cadence
// is that most retired nodes are NOT protected at scan time, the filter
// short-circuits almost every probe. A false positive merely sends a probe
// to the binary search, which gives the exact answer; the filter never
// changes the result.
//
// The zero value is ready to use; reusing one across scans makes the scan
// allocation-free once the buffers have grown to the registry size.
type ScanSet struct {
	sorted []uint64
	filter []uint64
	shift  uint // 64 - 6 - log2(len(filter)): selects filterBit's top bits
	// fallthroughs counts probes the filter passed but the binary search
	// rejected — the filter's observed false positives. Monotone across
	// Loads; used by the false-positive-rate regression test.
	fallthroughs int64
}

// Load replaces the set's contents with a snapshot of every reference
// currently announced in r, resizing the filter to the registry's current
// slot count.
func (ss *ScanSet) Load(r *Registry) {
	words := filterWordsFor(r.Len())
	if len(ss.filter) != words {
		ss.filter = make([]uint64, words)
		ss.shift = uint(64 - 6 - bits.TrailingZeros(uint(words)))
	} else {
		clear(ss.filter)
	}
	ss.sorted = r.SnapshotSorted(ss.sorted)
	for _, v := range ss.sorted {
		w, m := filterBit(v, ss.shift)
		ss.filter[w] |= m
	}
}

// Contains reports whether ref was announced when the set was loaded.
func (ss *ScanSet) Contains(ref uint64) bool {
	w, m := filterBit(ref, ss.shift)
	// The bounds check doubles as zero-value support: an unloaded set has
	// an empty filter (and empty sorted snapshot), so every probe misses.
	if w >= uint64(len(ss.filter)) || ss.filter[w]&m == 0 {
		return false
	}
	if Contains(ss.sorted, ref) {
		return true
	}
	ss.fallthroughs++
	return false
}

// Len returns the number of references in the set.
func (ss *ScanSet) Len() int { return len(ss.sorted) }

// Sorted exposes the sorted snapshot for tests.
func (ss *ScanSet) Sorted() []uint64 { return ss.sorted }

// FilterBits returns the current summary size in bits (0 before first Load).
func (ss *ScanSet) FilterBits() int { return len(ss.filter) * 64 }

// Fallthroughs returns the cumulative count of filter false positives:
// probes that passed the summary but missed the binary search. The
// false-positive regression test divides this by total negative probes.
func (ss *ScanSet) Fallthroughs() int64 { return ss.fallthroughs }

// Protects reports whether any slot currently announces ref. It is slower
// than a ScanSet for bulk queries and intended for tests.
func (r *Registry) Protects(ref uint64) bool {
	for s := r.head.Load(); s != nil; s = s.next {
		if s.value.Load() == ref {
			return true
		}
	}
	return false
}

// Len returns the total number of slots ever created (in use or free).
func (r *Registry) Len() int { return int(r.n.Load()) }

// InUse returns the number of currently acquired slots — the H in the
// adaptive reclamation threshold R = max(floor, k·H). It can be read
// concurrently with Acquire/Release and is monotone-consistent (never
// negative, never above Len).
func (r *Registry) InUse() int { return int(r.live.Load()) }

// AdaptiveFactor aliases the k of the adaptive reclamation threshold
// R = max(floor, k·H); the canonical definition (shared with the epoch
// schemes, whose H is the guard-record count) lives in package smr.
const AdaptiveFactor = smr.AdaptiveFactor

// ReclaimThreshold returns the adaptive scan threshold for h acquired
// slots: max(floor, AdaptiveFactor·h). See smr.ReclaimThreshold.
func ReclaimThreshold(h, floor int) int { return smr.ReclaimThreshold(h, floor) }
