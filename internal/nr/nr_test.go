package nr

import (
	"testing"

	"github.com/gosmr/gosmr/internal/arena"
)

func TestRetireLeaks(t *testing.T) {
	d := NewDomain()
	p := arena.NewPool[uint64]("t", arena.ModeDetect)
	g := d.NewGuard(0)
	g.Pin()
	refs := make([]uint64, 100)
	for i := range refs {
		refs[i], _ = p.Alloc()
		g.Retire(refs[i], p)
	}
	g.Unpin()
	for _, r := range refs {
		if !p.Live(r) {
			t.Fatal("NR must never free")
		}
	}
	if d.Unreclaimed() != 100 || d.PeakUnreclaimed() != 100 {
		t.Fatalf("unreclaimed=%d peak=%d", d.Unreclaimed(), d.PeakUnreclaimed())
	}
}

func TestTrackAlwaysSucceeds(t *testing.T) {
	g := NewDomain().NewGuard(4)
	for i := 0; i < 4; i++ {
		if !g.Track(i, uint64(i+1)) {
			t.Fatal("NR Track must never fail")
		}
	}
}
