// Package nr is the no-reclamation baseline (NR in the paper's evaluation):
// retired nodes are counted but never freed. It sets the throughput ceiling
// that real reclamation schemes are compared against, and its unbounded
// garbage growth is the contrast case for robustness experiments.
package nr

import "github.com/gosmr/gosmr/internal/smr"

// Domain is a no-op reclamation domain.
type Domain struct {
	g smr.Garbage
}

// NewDomain returns a new no-reclamation domain.
func NewDomain() *Domain { return &Domain{} }

// NewGuard returns a guard whose Pin/Unpin/Track are no-ops and whose
// Retire leaks (counts but never frees).
func (d *Domain) NewGuard(slots int) smr.Guard { return &guard{d: d} }

// Unreclaimed returns the number of retired (and leaked) nodes.
func (d *Domain) Unreclaimed() int64 { return d.g.Unreclaimed() }

// PeakUnreclaimed returns the peak retired count (== Unreclaimed; NR never
// frees).
func (d *Domain) PeakUnreclaimed() int64 { return d.g.PeakUnreclaimed() }

// Stats returns an observability snapshot: pure garbage flow, no scans.
func (d *Domain) Stats() smr.Stats {
	st := smr.Stats{Scheme: "nr"}
	smr.FillStats(&st, &d.g, nil)
	return st
}

type guard struct {
	d *Domain
}

func (g *guard) Pin()   {}
func (g *guard) Unpin() {}

func (g *guard) Track(i int, ref uint64) bool { return true }

func (g *guard) Retire(ref uint64, d smr.Deallocator) { g.d.g.AddRetired(1) }

var _ smr.GuardDomain = (*Domain)(nil)
