package hp

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/tagptr"
)

func TestProtectedNodeSurvivesReclaim(t *testing.T) {
	d := NewDomain()
	p := arena.NewPool[uint64]("t", arena.ModeDetect)
	accessor := d.NewThread(1)
	reclaimer := d.NewThread(0)

	ref, _ := p.Alloc()
	accessor.Protect(0, ref)
	reclaimer.Retire(ref, p)
	reclaimer.Reclaim()
	if !p.Live(ref) {
		t.Fatal("protected node was freed")
	}
	if d.Unreclaimed() != 1 {
		t.Fatalf("unreclaimed = %d, want 1", d.Unreclaimed())
	}

	accessor.Clear(0)
	reclaimer.Reclaim()
	if p.Live(ref) {
		t.Fatal("unprotected retired node not freed")
	}
	if d.Unreclaimed() != 0 {
		t.Fatalf("unreclaimed = %d, want 0", d.Unreclaimed())
	}
}

func TestProtectWordValidatesLink(t *testing.T) {
	d := NewDomain()
	th := d.NewThread(1)
	var link atomic.Uint64

	w := tagptr.Pack(7, 0)
	link.Store(w)
	if !th.ProtectWord(0, &link, w) {
		t.Fatal("validation should succeed when the link is unchanged")
	}

	// The link moved on: validation must fail.
	link.Store(tagptr.Pack(8, 0))
	if th.ProtectWord(0, &link, w) {
		t.Fatal("validation should fail when the link changed")
	}

	// Same ref but newly tagged (logically deleted source): the
	// over-approximation must also reject it.
	link.Store(tagptr.Pack(7, tagptr.Mark))
	if th.ProtectWord(0, &link, w) {
		t.Fatal("validation should fail when the source got marked")
	}
}

func TestSwapKeepsProtection(t *testing.T) {
	d := NewDomain()
	th := d.NewThread(2)
	th.Protect(0, 11)
	th.Protect(1, 22)
	th.Swap(0, 1)
	if !d.Registry().Protects(11) || !d.Registry().Protects(22) {
		t.Fatal("swap must not drop announcements")
	}
	th.Protect(0, 33) // overwrites what used to be slot 1
	if d.Registry().Protects(22) {
		t.Fatal("slot reuse after swap is wrong")
	}
	if !d.Registry().Protects(11) {
		t.Fatal("swap lost slot 0's original announcement")
	}
}

func TestOrphanAdoption(t *testing.T) {
	d := NewDomain()
	p := arena.NewPool[uint64]("t", arena.ModeDetect)
	blocker := d.NewThread(1)

	dying := d.NewThread(0)
	ref, _ := p.Alloc()
	blocker.Protect(0, ref) // keeps the node from being freed at Finish
	dying.Retire(ref, p)
	dying.Finish()
	if !p.Live(ref) {
		t.Fatal("protected node freed during Finish")
	}

	blocker.Clear(0)
	survivor := d.NewThread(0)
	survivor.Reclaim()
	if p.Live(ref) {
		t.Fatal("orphaned node not adopted and freed")
	}
}

func TestThresholdTriggersReclaim(t *testing.T) {
	d := NewDomain()
	d.ReclaimEvery = 8
	p := arena.NewPool[uint64]("t", arena.ModeReuse)
	th := d.NewThread(0)
	for i := 0; i < 64; i++ {
		ref, _ := p.Alloc()
		th.Retire(ref, p)
	}
	if got := p.Stats().Frees; got < 56 {
		t.Fatalf("frees = %d, want >= 56 (threshold reclaim not firing)", got)
	}
}

// TestConcurrentProtectRetire is the classic HP safety drill: one thread
// repeatedly protects-and-validates a shared cell's target while others
// swap out and retire the old target. Detect-mode arena catches any UAF.
func TestConcurrentProtectRetire(t *testing.T) {
	d := NewDomain()
	p := arena.NewPool[uint64]("t", arena.ModeDetect)
	var cell atomic.Uint64
	r0, _ := p.Alloc()
	cell.Store(tagptr.Pack(r0, 0))

	var stop atomic.Bool
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // writer: replace and retire
		defer wg.Done()
		th := d.NewThread(0)
		for i := 0; i < 30000; i++ {
			newRef, _ := p.Alloc()
			old := cell.Swap(tagptr.Pack(newRef, 0))
			th.Retire(tagptr.RefOf(old), p)
		}
		stop.Store(true)
		th.Finish()
	}()

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := d.NewThread(1)
			for !stop.Load() {
				w := cell.Load()
				if !th.ProtectWord(0, &cell, w) {
					continue
				}
				v := p.Deref(tagptr.RefOf(w)) // would panic on UAF
				_ = *v
				th.Clear(0)
			}
			th.Finish()
		}()
	}
	wg.Wait()

	fin := d.NewThread(0)
	fin.Reclaim()
	if got := p.Stats().UAF; got != 0 {
		t.Fatalf("detected %d use-after-free derefs", got)
	}
}

// TestZeroValueDomainReclaims is the regression test for the divide-by-zero
// panic a zero-value &Domain{} used to hit on its first Retire: with
// ReclaimEvery left at 0 the old fixed-cadence modulus panicked. The zero
// value now selects the adaptive cadence.
func TestZeroValueDomainReclaims(t *testing.T) {
	d := &Domain{}
	p := arena.NewPool[uint64]("zv", arena.ModeReuse)
	th := d.NewThread(1)
	for i := 0; i < 4*DefaultReclaimEvery; i++ {
		ref, _ := p.Alloc()
		th.Retire(ref, p)
	}
	if d.g.TotalFreed() == 0 {
		t.Fatal("adaptive cadence never triggered a reclamation pass")
	}
	th.Finish()
	if got := d.Unreclaimed(); got != 0 {
		t.Fatalf("unreclaimed after Finish = %d, want 0", got)
	}
}

// TestAdaptiveThresholdScalesWithSlots checks the cadence side of the
// adaptive scan: with H acquired slots a thread defers its scan until its
// retired set reaches AdaptiveFactor*H (above the floor), so per-retire
// scan cost stays amortized-constant as threads join.
func TestAdaptiveThresholdScalesWithSlots(t *testing.T) {
	d := &Domain{}
	p := arena.NewPool[uint64]("adapt", arena.ModeReuse)
	// Inflate H well past the floor.
	const slots = 3 * DefaultReclaimEvery
	idle := d.NewThread(slots)
	defer idle.Finish()

	th := d.NewThread(0)
	defer th.Finish()
	threshold := AdaptiveFactor * d.Registry().InUse()
	if threshold <= DefaultReclaimEvery {
		t.Fatalf("fixture broken: threshold %d not above floor", threshold)
	}
	for i := 0; i < threshold-1; i++ {
		ref, _ := p.Alloc()
		th.Retire(ref, p)
	}
	if got := d.g.TotalFreed(); got != 0 {
		t.Fatalf("scan ran below the adaptive threshold (freed %d)", got)
	}
	ref, _ := p.Alloc()
	th.Retire(ref, p)
	if d.g.TotalFreed() == 0 {
		t.Fatal("scan did not run once the adaptive threshold was reached")
	}
}

// TestFixedCadenceOverride pins the backward-compatible path: a positive
// ReclaimEvery keeps the old fixed modulus exactly.
func TestFixedCadenceOverride(t *testing.T) {
	d := &Domain{ReclaimEvery: 4}
	p := arena.NewPool[uint64]("fixed", arena.ModeReuse)
	th := d.NewThread(0)
	defer th.Finish()
	for i := 1; i <= 12; i++ {
		ref, _ := p.Alloc()
		th.Retire(ref, p)
		if want := i%4 != 0; (th.RetiredLocal() == 0) == want {
			t.Fatalf("after retire %d: retiredLocal = %d", i, th.RetiredLocal())
		}
	}
}
