// SCOT — safe optimistic traversal on plain hazard pointers.
//
// The HP++ paper argues (§2.3) that original HP cannot protect
// optimistic traversals: the usual validation "pred still points at cur"
// fails on every marked hop, and restarting there forfeits lock-freedom.
// SCOT (Arovi; see PAPERS.md) counters that a *rewritten* validation
// makes plain HP suffice — no TryProtect, no invalidation bit, no
// frontier protection.
//
// The discipline tracked by ScotChain:
//
//   - The traversal remembers its anchor A — the last unmarked node seen
//     (or the start sentinel), kept continuously hazard-protected by the
//     caller — and A's next link.
//
//   - While walking a chain of marked nodes hanging off A, it remembers
//     the chain entry E (the first marked node after A), the exact link
//     word Pack(E, 0) it observed in A, and E's arena birth tag
//     (arena.Pool.State) captured while E was still protected+validated.
//
//   - After announcing a hazard on the next candidate cur, instead of
//     re-checking the immediate predecessor's link (which is marked and
//     may already be unlinked), it validates:
//
//     off chain:  A.next == Pack(cur, 0)            (exact, unmarked)
//     on  chain:  A.next == Pack(E, 0)  &&  State(E) == birth(E)
//
// Why this is sound: unmarked nodes are never detached (unlinking
// requires marking first), so an exact unmarked word in A proves A is
// still attached. Retired refs are never re-linked, so with E proven
// un-freed (birth tag unchanged) the word Pack(E, 0) in A can only mean
// the same E is still A's successor. A chain of marked nodes can only be
// cut *at its anchor* — every unlink CAS in this package's list variants
// requires an exact unmarked expected word, and all interior chain nodes
// are marked — so an intact A→E edge means the frozen chain E..cur is
// intact and cur was still reachable (hence un-retired) at the moment of
// validation, which is after the hazard store. From there the standard
// HP scan argument keeps cur un-freed for as long as the hazard is held.
//
// The birth tag is what closes the 2-slot reader's ABA hole: a reader
// that protects only (anchor, cur) drops its hazard on E after passing
// it, so E could be unlinked, retired, freed, recycled, and re-inserted
// right after A — restoring the word Pack(E, 0) while the old chain
// behind it is gone. Any free bumps the slot's state word, so
// State(E) == birth(E) refutes exactly that interleaving. (A recycled
// *cur* re-inserted after A is benign: validation then passes only when
// cur is the genuine live successor, which is a correct observation of
// the current list state.)
package hp

import (
	"sync/atomic"

	"github.com/gosmr/gosmr/internal/tagptr"
)

// ScotPool is the arena surface SCOT validation needs: the raw slot
// state word used as a birth/identity tag. Reading it is never a deref
// (safe on freed slots, no use-after-free accounting).
type ScotPool interface {
	State(ref uint64) uint64
}

// ScotChain is one optimistic traversal's reachability certificate: the
// anchor's link plus, while on a marked chain, the chain-entry identity.
// The zero value is not ready for use; call Reset first.
type ScotChain struct {
	anchorLink *atomic.Uint64
	anchorWord tagptr.Word
	entry      uint64
	birth      uint64
	on         bool
}

// Reset re-bases the certificate on a new unmarked anchor (identified by
// its next link; for the start sentinel, the list head). The anchor must
// be hazard-protected by the caller, or be a sentinel that is never
// retired.
func (c *ScotChain) Reset(anchorLink *atomic.Uint64) {
	c.anchorLink = anchorLink
	c.on = false
	c.entry = 0
}

// Enter records entry as the first marked node after the anchor. It must
// be called while entry is hazard-protected and validated (so the word
// and birth tag captured here are those of the attached node).
func (c *ScotChain) Enter(p ScotPool, entry uint64) {
	c.anchorWord = tagptr.Pack(entry, 0)
	c.entry = entry
	c.birth = p.State(entry)
	c.on = true
}

// On reports whether the traversal is currently on a marked chain.
func (c *ScotChain) On() bool { return c.on }

// Entry returns the chain entry ref (zero when off chain).
func (c *ScotChain) Entry() uint64 { return c.entry }

// AnchorLink returns the current anchor's next link.
func (c *ScotChain) AnchorLink() *atomic.Uint64 { return c.anchorLink }

// Validate is the SCOT handshake: called after announcing a hazard on
// cur, it reports whether cur was still reachable from the anchor at
// some instant after the announcement. On true, dereferencing cur is
// safe while the hazard is held. On false the caller must not deref cur;
// it may Resume from the anchor or restart the traversal.
func (c *ScotChain) Validate(p ScotPool, cur uint64) bool {
	if !c.on {
		// A marked anchor word carries the Mark tag and fails the exact
		// comparison, so this also detects the anchor's own deletion.
		return c.anchorLink.Load() == tagptr.Pack(cur, 0)
	}
	return c.anchorLink.Load() == c.anchorWord && p.State(c.entry) == c.birth
}

// Resume is the recovery step after a failed Validate: re-read the
// anchor's link and, if the anchor itself is still unmarked (hence still
// attached), resume the traversal from its current successor instead of
// restarting from the list head. It returns that successor and true, or
// zero and false when the anchor was deleted and a full restart is the
// only safe continuation.
func (c *ScotChain) Resume() (uint64, bool) {
	w := c.anchorLink.Load()
	if tagptr.TagOf(w) != 0 {
		return 0, false
	}
	c.on = false
	c.entry = 0
	return tagptr.RefOf(w), true
}
