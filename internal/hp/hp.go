// Package hp implements the original hazard pointers scheme (Michael 2002,
// 2004; Algorithm 2 of the HP++ paper), including the asymmetric-fence
// formulation: announce protection of each node before accessing it, then
// validate that the node is still reachable by an over-approximation (for
// example, "the source link still holds this exact word, including its
// logical-deletion tag").
//
// Validation by over-approximating unreachability is exactly what makes HP
// inapplicable to optimistically traversing data structures — the
// limitation HP++ (internal/core) lifts. That inapplicability is about
// the *validation*, not the hazards themselves: scot.go in this package
// rewrites the traversal-side validation (SCOT) so optimistic walks run
// on this domain unmodified, as scheme "hp-scot".
//
// Note on fences: the paper places an SC fence between hazard announcement
// and validation, and between retired-set retrieval and the hazard scan.
// Go's sync/atomic operations are sequentially consistent, so those fences
// are implicit here; the comments mark where they sit in the original.
package hp

import (
	"sync/atomic"
	"time"

	"github.com/gosmr/gosmr/internal/hazards"
	"github.com/gosmr/gosmr/internal/smr"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// DefaultReclaimEvery is the fixed-cadence default: the number of retires
// between reclamation passes when adaptive scanning is disabled. It doubles
// as the floor of the adaptive threshold.
const DefaultReclaimEvery = 128

// AdaptiveFactor aliases the k of the adaptive reclamation threshold
// R = max(DefaultReclaimEvery, k·H); see smr.ReclaimThreshold.
const AdaptiveFactor = hazards.AdaptiveFactor

// Domain is a hazard-pointer reclamation domain.
type Domain struct {
	reg     hazards.Registry
	g       smr.Garbage
	sm      smr.ScanMeter
	budget  smr.Budget
	orphans smr.OrphanList

	// Name, if non-empty, overrides the scheme label in Stats snapshots.
	// The SCOT traversal discipline (scot.go) runs on an unmodified HP
	// domain; labelling its domains "hp-scot" keeps the two usages
	// distinguishable in aggregated reports.
	Name string

	// ReclaimEvery, if set > 0 before use, pins the old fixed cadence:
	// one reclamation pass every ReclaimEvery retires per thread. When
	// <= 0 (the zero value and the NewDomain default) the cadence is
	// adaptive: a thread scans when the domain-wide retired total (the
	// shared budget, not its local retired-set size) reaches
	// max(DefaultReclaimEvery, AdaptiveFactor·H).
	ReclaimEvery int
}

// NewDomain creates an HP domain with the adaptive reclaim cadence.
func NewDomain() *Domain { return &Domain{} }

// Unreclaimed returns the number of retired-but-unfreed nodes.
func (d *Domain) Unreclaimed() int64 { return d.g.Unreclaimed() }

// PeakUnreclaimed returns the peak retired-but-unfreed count.
func (d *Domain) PeakUnreclaimed() int64 { return d.g.PeakUnreclaimed() }

// Stats returns an observability snapshot of the domain.
func (d *Domain) Stats() smr.Stats {
	name := d.Name
	if name == "" {
		name = "hp"
	}
	st := smr.Stats{
		Scheme:           name,
		RetiredBudget:    d.budget.Load(),
		HazardSlots:      d.reg.Len(),
		HazardSlotsInUse: d.reg.InUse(),
	}
	smr.FillStats(&st, &d.g, &d.sm)
	return st
}

// Registry exposes the hazard-slot registry (for tests).
func (d *Domain) Registry() *hazards.Registry { return &d.reg }

// Thread is a per-worker HP handle with a fixed array of named protection
// slots, acquired hand-over-hand by data-structure code. Not safe for
// concurrent use.
type Thread struct {
	d       *Domain
	slots   []*hazards.Slot
	retired []smr.Retired
	retires int
	budget  smr.BudgetCache
	scan    hazards.ScanSet // reusable filtered+sorted hazard snapshot
}

// NewThread returns a handle with nslots protection slots.
func (d *Domain) NewThread(nslots int) *Thread {
	t := &Thread{d: d, budget: smr.NewBudgetCache(&d.budget)}
	for i := 0; i < nslots; i++ {
		t.slots = append(t.slots, d.reg.Acquire())
	}
	return t
}

// Protect announces protection of ref in slot i without validation.
// Callers must validate reachability themselves before dereferencing.
func (t *Thread) Protect(i int, ref uint64) { t.slots[i].Set(ref) }

// Clear revokes slot i's announcement.
func (t *Thread) Clear(i int) { t.slots[i].Clear() }

// ClearAll revokes every slot's announcement.
func (t *Thread) ClearAll() {
	for _, s := range t.slots {
		s.Clear()
	}
}

// Swap exchanges slots i and j; used for hand-over-hand traversal where
// the "current" protection becomes the "previous" one.
func (t *Thread) Swap(i, j int) { t.slots[i], t.slots[j] = t.slots[j], t.slots[i] }

// ProtectWord announces protection of the node referenced by the link word
// expected and validates it by re-reading link: if link still holds
// exactly expected (reference and tags), the node cannot have been retired
// — the over-approximating validation of Treiber's stack and the
// Harris-Michael list (Figures 2 and 3 of the paper). Reports whether
// protection was validated.
func (t *Thread) ProtectWord(i int, link *atomic.Uint64, expected tagptr.Word) bool {
	t.slots[i].Set(tagptr.RefOf(expected))
	// fence(SC) — implicit: both atomics above/below are SC in Go.
	return link.Load() == expected
}

// Validate re-checks an over-approximating reachability condition after an
// earlier Protect: it reports whether link still holds expected.
func (t *Thread) Validate(link *atomic.Uint64, expected tagptr.Word) bool {
	return link.Load() == expected
}

// Retire announces retirement of a detached node and occasionally runs a
// reclamation pass.
func (t *Thread) Retire(ref uint64, dealloc smr.Deallocator) {
	t.retired = append(t.retired, smr.Retired{Ref: ref, D: dealloc})
	t.d.g.AddRetired(1)
	t.retires++
	if t.shouldReclaim() {
		t.Reclaim()
	}
}

// shouldReclaim decides the reclamation cadence. A positive ReclaimEvery
// selects the fixed per-thread modulus; otherwise (including the
// zero-value Domain) the adaptive threshold
// R = max(DefaultReclaimEvery, AdaptiveFactor·H) applies to the domain's
// shared retired total. The budget cache publishes (and the threshold is
// consulted) only once per smr.BudgetBatch local retires, so a thread
// whose neighbours hold garbage above threshold still amortizes its scan
// cost over a full batch instead of scanning on every retire.
func (t *Thread) shouldReclaim() bool {
	if every := t.d.ReclaimEvery; every > 0 {
		t.budget.Retire() // keep the domain total accurate for Stats
		return t.retires%every == 0
	}
	return t.budget.Retire() &&
		t.budget.Total() >= int64(hazards.ReclaimThreshold(t.d.reg.InUse(), DefaultReclaimEvery))
}

// Reclaim scans the hazard slots and frees every retired node that no slot
// protects.
func (t *Thread) Reclaim() {
	d := t.d
	t.retired = d.orphans.Adopt(t.retired)
	if len(t.retired) == 0 {
		return
	}
	start := time.Now()
	// fence(SC) between retired-set retrieval and hazard scan — implicit.
	t.scan.Load(&d.reg)
	kept := t.retired[:0]
	freed := int64(0)
	for _, r := range t.retired {
		if t.scan.Contains(r.Ref) {
			kept = append(kept, r)
		} else {
			r.Free()
			freed++
		}
	}
	t.retired = kept
	if freed > 0 {
		d.g.AddFreed(freed)
	}
	t.budget.Freed(freed)
	d.sm.AddScan(time.Since(start).Nanoseconds())
}

// Finish releases the thread's slots and hands any locally retired nodes
// to the domain's orphan list so other threads (or a final Reclaim) can
// free them.
func (t *Thread) Finish() {
	t.Reclaim()
	for _, s := range t.slots {
		t.d.reg.Release(s)
	}
	t.slots = nil
	t.budget.Flush()
	if len(t.retired) > 0 {
		t.d.orphans.Push(t.retired)
		t.retired = nil
	}
}

// RetiredLocal returns the number of locally retired, unfreed nodes.
func (t *Thread) RetiredLocal() int { return len(t.retired) }
