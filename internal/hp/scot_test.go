package hp

import (
	"sync/atomic"
	"testing"

	"github.com/gosmr/gosmr/internal/tagptr"
)

// fakeScotPool is a ScotPool whose state words the test mutates directly:
// bumping a ref's word simulates the arena's free/recycle sequence bump.
type fakeScotPool map[uint64]uint64

func (p fakeScotPool) State(ref uint64) uint64 { return p[ref] }

// TestScotChainHandshake drives the certificate through the full
// off-chain / on-chain / recovery state machine against a fake pool.
func TestScotChainHandshake(t *testing.T) {
	const (
		entry = uint64(7)
		cur   = uint64(9)
		other = uint64(11)
	)
	pool := fakeScotPool{entry: 100}
	var link atomic.Uint64
	var c ScotChain

	// Off chain: only the exact unmarked word for cur validates.
	c.Reset(&link)
	link.Store(tagptr.Pack(cur, 0))
	if !c.Validate(pool, cur) {
		t.Fatal("off-chain validate rejected the attached successor")
	}
	if c.Validate(pool, other) {
		t.Fatal("off-chain validate accepted a node the anchor does not point at")
	}
	link.Store(tagptr.WithTag(tagptr.Pack(cur, 0), tagptr.Mark))
	if c.Validate(pool, cur) {
		t.Fatal("off-chain validate accepted a marked (deleted) anchor")
	}

	// On chain: the anchor word must still name the entry AND the entry's
	// birth tag must be unchanged.
	link.Store(tagptr.Pack(entry, 0))
	c.Reset(&link)
	c.Enter(pool, entry)
	if !c.On() || c.Entry() != entry {
		t.Fatalf("chain state after Enter: on=%v entry=%d", c.On(), c.Entry())
	}
	if !c.Validate(pool, cur) {
		t.Fatal("on-chain validate rejected an intact chain")
	}
	link.Store(tagptr.Pack(other, 0))
	if c.Validate(pool, cur) {
		t.Fatal("on-chain validate accepted a cut chain (anchor word changed)")
	}

	// The recycle ABA: the anchor word is restored but the entry slot was
	// freed in between (state bump). The birth tag must refute it.
	link.Store(tagptr.Pack(entry, 0))
	pool[entry] = 102
	if c.Validate(pool, cur) {
		t.Fatal("on-chain validate accepted a freed+recycled chain entry (ABA)")
	}

	// Resume from an unmarked anchor continues at its live successor and
	// leaves the chain; from a marked anchor it demands a full restart.
	link.Store(tagptr.Pack(other, 0))
	if got, ok := c.Resume(); !ok || got != other {
		t.Fatalf("Resume = (%d,%v), want (%d,true)", got, ok, other)
	}
	if c.On() {
		t.Fatal("still on chain after Resume")
	}
	link.Store(tagptr.WithTag(tagptr.Pack(other, 0), tagptr.Mark))
	if _, ok := c.Resume(); ok {
		t.Fatal("Resume succeeded from a deleted anchor")
	}
}

// TestScotDomainName pins the Stats label override: SCOT runs on an
// unmodified HP domain, and the only per-domain distinction is the name
// used in aggregated reports.
func TestScotDomainName(t *testing.T) {
	d := NewDomain()
	if got := d.Stats().Scheme; got != "hp" {
		t.Fatalf("default domain stats scheme = %q, want hp", got)
	}
	d2 := NewDomain()
	d2.Name = "hp-scot"
	if got := d2.Stats().Scheme; got != "hp-scot" {
		t.Fatalf("named domain stats scheme = %q, want hp-scot", got)
	}
}
