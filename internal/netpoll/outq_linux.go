//go:build linux

package netpoll

import (
	"net"
	"syscall"
	"unsafe"
)

// outqFD reads the kernel's unsent send-queue depth for a socket fd via
// the SIOCOUTQ ioctl (numerically TIOCOUTQ, 0x5411). This is the
// explicit unread-backlog signal for slow-reader eviction: unlike
// SO_SNDBUF fill it keeps working when responses outgrow tiny frames.
func outqFD(fd int) (int, bool) {
	var n int32
	_, _, errno := syscall.Syscall(syscall.SYS_IOCTL, uintptr(fd),
		uintptr(syscall.TIOCOUTQ), uintptr(unsafe.Pointer(&n)))
	if errno != 0 {
		return 0, false
	}
	return int(n), true
}

// sockOutq is outqFD for a live net.Conn (used by the portable backend
// and by goroutine-mode callers that never extracted a raw fd).
func sockOutq(nc net.Conn) (int, bool) {
	sc, ok := nc.(syscall.Conn)
	if !ok {
		return 0, false
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return 0, false
	}
	var q int
	var qok bool
	if rc.Control(func(fd uintptr) { q, qok = outqFD(int(fd)) }) != nil {
		return 0, false
	}
	return q, qok
}
