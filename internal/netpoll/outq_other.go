//go:build !linux

package netpoll

import "net"

// No portable unread-backlog probe exists off Linux; callers degrade to
// "unknown" and skip the gauge.
func sockOutq(net.Conn) (int, bool) { return 0, false }
