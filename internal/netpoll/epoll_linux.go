//go:build linux

// The epoll backend: the real event-driven layer. Each poller goroutine
// owns an epoll instance, a wake pipe, a timing wheel, and a shared
// scratch read buffer; connections are assigned round-robin at Register
// and never migrate. Level-triggered mode throughout: EPOLLIN stays
// asserted while unread bytes remain (so capping read rounds per wake
// cannot lose data), and EPOLLOUT is armed only while the outbound
// buffer is nonempty (otherwise a writable idle socket would spin the
// loop).
//
// Locking: a conn's mutex (epollConn.mu) may be held while taking the
// poller mutex (epoller.mu), never the reverse. The poller loop
// therefore snapshots conn pointers under its own mutex and releases it
// before touching any conn.
//
// Teardown is poller-serialized: Close (any goroutine) marks the conn
// closed, enqueues it on the poller's close queue and wakes the pipe;
// the poller performs EPOLL_CTL_DEL → OnClose → fd close. The fd is
// thus guaranteed live for the whole OnClose callback (Outq works) and
// can never be recycled into a new Register while stale epoll events
// for it are still in flight.
package netpoll

import (
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

func newPlatform(cfg Config) (Poll, error) { return newEpoll(cfg) }

type epollPoll struct {
	cfg     Config
	pollers []*epoller
	next    atomic.Uint64
	closed  atomic.Bool
	wg      sync.WaitGroup
}

func newEpoll(cfg Config) (*epollPoll, error) {
	p := &epollPoll{cfg: cfg}
	for i := 0; i < cfg.Pollers; i++ {
		ep, err := newEpoller(i, cfg)
		if err != nil {
			for _, prev := range p.pollers {
				prev.closeFDs()
			}
			return nil, err
		}
		p.pollers = append(p.pollers, ep)
	}
	for _, ep := range p.pollers {
		ep := ep
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			ep.loop(p)
		}()
	}
	return p, nil
}

func (p *epollPoll) Kind() string { return "epoll" }

func (p *epollPoll) ConnCounts() []int {
	out := make([]int, len(p.pollers))
	for i, ep := range p.pollers {
		out[i] = int(ep.nconns.Load())
	}
	return out
}

func (p *epollPoll) Register(nc net.Conn, h Handler) (Conn, error) {
	if p.closed.Load() {
		nc.Close()
		return nil, ErrPollClosed
	}
	filer, ok := nc.(interface{ File() (*os.File, error) })
	if !ok {
		nc.Close()
		return nil, fmt.Errorf("netpoll: %T does not expose a file descriptor", nc)
	}
	f, err := filer.File()
	nc.Close() // the dup owns the socket from here on
	if err != nil {
		return nil, err
	}
	fd := int(f.Fd())
	if err := syscall.SetNonblock(fd, true); err != nil {
		f.Close()
		return nil, err
	}
	ep := p.pollers[p.next.Add(1)%uint64(len(p.pollers))]
	c := &epollConn{ep: ep, f: f, fd: fd, h: h}
	c.lastRead.Store(mono())
	h.OnRegister(c)
	ep.mu.Lock()
	ep.conns[int32(fd)] = c
	if ep.cfg.IdleTimeout > 0 {
		c.idleQueued = true
		ep.wheel.push(wheelEntry{c, wheelIdle}, c.lastRead.Load()+int64(ep.cfg.IdleTimeout))
	}
	ep.mu.Unlock()
	ep.nconns.Add(1)
	ev := syscall.EpollEvent{Events: epollInFlags, Fd: int32(fd)}
	if err := syscall.EpollCtl(ep.epfd, syscall.EPOLL_CTL_ADD, fd, &ev); err != nil {
		ep.mu.Lock()
		delete(ep.conns, int32(fd))
		ep.mu.Unlock()
		ep.nconns.Add(-1)
		f.Close()
		return nil, err
	}
	return c, nil
}

func (p *epollPoll) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	for _, ep := range p.pollers {
		ep.wake()
	}
	p.wg.Wait()
	return nil
}

const (
	epollInFlags  = uint32(syscall.EPOLLIN | syscall.EPOLLRDHUP)
	epollOutFlags = epollInFlags | uint32(syscall.EPOLLOUT)
	epollErrMask  = uint32(syscall.EPOLLHUP | syscall.EPOLLERR)
)

type epoller struct {
	id     int
	cfg    Config
	epfd   int
	wakeR  int
	wakeW  int
	woken  atomic.Bool // coalesces wake-pipe writes between loop passes
	nconns atomic.Int64

	mu     sync.Mutex // guards conns, wheel, closeq, and conn timer flags
	conns  map[int32]*epollConn
	wheel  *wheel
	closeq []*epollConn

	scratch []byte // read buffer shared by every conn on this poller
}

func newEpoller(id int, cfg Config) (*epoller, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, fmt.Errorf("netpoll: epoll_create1: %w", err)
	}
	var pfd [2]int
	if err := syscall.Pipe2(pfd[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return nil, fmt.Errorf("netpoll: pipe2: %w", err)
	}
	ep := &epoller{
		id:      id,
		cfg:     cfg,
		epfd:    epfd,
		wakeR:   pfd[0],
		wakeW:   pfd[1],
		conns:   make(map[int32]*epollConn),
		scratch: make([]byte, cfg.ReadChunk),
	}
	// 256 slots x the tick: deadlines beyond ~25s (at the default
	// 100ms tick) just re-push lazily from the last slot.
	ep.wheel = newWheel(int64(cfg.Tick), 256, mono())
	ev := syscall.EpollEvent{Events: uint32(syscall.EPOLLIN), Fd: int32(ep.wakeR)}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, ep.wakeR, &ev); err != nil {
		ep.closeFDs()
		return nil, fmt.Errorf("netpoll: epoll_ctl wake: %w", err)
	}
	return ep, nil
}

func (ep *epoller) closeFDs() {
	syscall.Close(ep.epfd)
	syscall.Close(ep.wakeR)
	syscall.Close(ep.wakeW)
}

// wake nudges the poller out of epoll_wait. Coalesced: one pipe byte
// per loop pass no matter how many wakers.
func (ep *epoller) wake() {
	if ep.woken.CompareAndSwap(false, true) {
		var b [1]byte
		syscall.Write(ep.wakeW, b[:]) //nolint:errcheck // pipe full means a wake is already pending
	}
}

func (ep *epoller) drainWake() {
	ep.woken.Store(false)
	var b [64]byte
	for {
		n, err := syscall.Read(ep.wakeR, b[:])
		if n < len(b) || err != nil {
			return
		}
	}
}

func (ep *epoller) loop(p *epollPoll) {
	events := make([]syscall.EpollEvent, 128)
	due := make([]wheelEntry, 0, 64)
	tickMS := int(ep.cfg.Tick / time.Millisecond)
	if tickMS <= 0 {
		tickMS = 1
	}
	for {
		n, err := syscall.EpollWait(ep.epfd, events, tickMS)
		if err != nil && err != syscall.EINTR {
			// epfd gone: nothing left to poll.
			ep.shutdown()
			return
		}
		if p.closed.Load() {
			ep.shutdown()
			return
		}
		now := mono()
		for i := 0; i < n; i++ {
			fd := events[i].Fd
			if int(fd) == ep.wakeR {
				ep.drainWake()
				continue
			}
			ep.mu.Lock()
			c := ep.conns[fd]
			ep.mu.Unlock()
			if c == nil {
				continue // torn down earlier this pass; stale event
			}
			ev := events[i].Events
			if ev&uint32(syscall.EPOLLOUT) != 0 {
				ep.flushConn(c)
			}
			if ev&(epollInFlags|epollErrMask) != 0 {
				ep.readConn(c, now)
			}
		}
		ep.processCloseq()
		ep.mu.Lock()
		due = ep.wheel.advance(now, due[:0])
		ep.mu.Unlock()
		for _, e := range due {
			ep.fireTimer(e, now)
		}
		ep.processCloseq()
	}
}

// readConn drains the socket into the shared scratch buffer, feeding
// the handler. Rounds are capped so one firehose conn cannot starve its
// poller siblings; level-triggered EPOLLIN re-fires for the remainder.
func (ep *epoller) readConn(c *epollConn, now int64) {
	for rounds := 0; rounds < 8; rounds++ {
		if c.isClosed() {
			return
		}
		n, err := syscall.Read(c.fd, ep.scratch)
		if n > 0 {
			c.lastRead.Store(now)
			ep.armIdle(c)
			if herr := c.h.OnData(c, ep.scratch[:n]); herr != nil {
				c.Close(herr)
				return
			}
			if n < len(ep.scratch) {
				return // socket drained
			}
			continue
		}
		switch {
		case n == 0 && err == nil:
			c.Close(io.EOF)
			return
		case err == syscall.EINTR:
			continue
		case err == syscall.EAGAIN:
			return
		default:
			c.Close(err)
			return
		}
	}
}

// flushConn handles EPOLLOUT: push buffered bytes into the kernel.
func (ep *epoller) flushConn(c *epollConn) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	tags, err := c.flushLocked()
	c.mu.Unlock()
	if len(tags) > 0 {
		c.h.OnFlushed(c, tags)
	}
	if err != nil {
		c.Close(err)
	}
}

// armIdle files (or lazily keeps) the conn's idle-deadline wheel entry.
// At most one live entry per conn per kind, deduped by the flag.
func (ep *epoller) armIdle(c *epollConn) {
	if ep.cfg.IdleTimeout <= 0 {
		return
	}
	ep.mu.Lock()
	if !c.idleQueued && !c.tornDown {
		c.idleQueued = true
		ep.wheel.push(wheelEntry{c, wheelIdle}, c.lastRead.Load()+int64(ep.cfg.IdleTimeout))
	}
	ep.mu.Unlock()
}

// armWrite files the conn's write-stall wheel entry. Called from
// WriteMsg (any goroutine) after buffering bytes the kernel refused.
func (c *epollConn) armWrite() {
	ep := c.ep
	if ep.cfg.WriteStallTimeout <= 0 {
		return
	}
	ep.mu.Lock()
	if !c.writeQueued && !c.tornDown {
		c.writeQueued = true
		ep.wheel.push(wheelEntry{c, wheelWrite}, mono()+int64(ep.cfg.WriteStallTimeout))
	}
	ep.mu.Unlock()
	ep.wake() // ensure a parked poller advances its wheel
}

// fireTimer re-checks a due wheel entry against the live deadline:
// activity since filing re-pushes instead of evicting.
func (ep *epoller) fireTimer(e wheelEntry, now int64) {
	c := e.c
	switch e.kind {
	case wheelIdle:
		if c.isClosed() {
			ep.mu.Lock()
			c.idleQueued = false
			ep.mu.Unlock()
			return
		}
		due := c.lastRead.Load() + int64(ep.cfg.IdleTimeout)
		if now >= due {
			ep.mu.Lock()
			c.idleQueued = false
			ep.mu.Unlock()
			c.Close(ErrIdleTimeout)
			return
		}
		ep.mu.Lock()
		if !c.tornDown {
			ep.wheel.push(e, due) // idleQueued stays true
		} else {
			c.idleQueued = false
		}
		ep.mu.Unlock()
	case wheelWrite:
		c.mu.Lock()
		if c.closed || c.out.buffered() == 0 {
			c.mu.Unlock()
			ep.mu.Lock()
			c.writeQueued = false
			ep.mu.Unlock()
			return
		}
		due := c.progress + int64(ep.cfg.WriteStallTimeout)
		c.mu.Unlock()
		if now >= due {
			ep.mu.Lock()
			c.writeQueued = false
			ep.mu.Unlock()
			c.Close(ErrWriteStall)
			return
		}
		ep.mu.Lock()
		if !c.tornDown {
			ep.wheel.push(e, due)
		} else {
			c.writeQueued = false
		}
		ep.mu.Unlock()
	}
}

func (ep *epoller) processCloseq() {
	for {
		ep.mu.Lock()
		if len(ep.closeq) == 0 {
			ep.mu.Unlock()
			return
		}
		q := ep.closeq
		ep.closeq = nil
		ep.mu.Unlock()
		for _, c := range q {
			ep.teardown(c)
		}
	}
}

// teardown finishes a close on the poller goroutine. Exactly once per
// conn: the tornDown flag under ep.mu is the gate.
func (ep *epoller) teardown(c *epollConn) {
	ep.mu.Lock()
	if c.tornDown {
		ep.mu.Unlock()
		return
	}
	c.tornDown = true
	delete(ep.conns, int32(c.fd))
	ep.mu.Unlock()
	ep.nconns.Add(-1)
	syscall.EpollCtl(ep.epfd, syscall.EPOLL_CTL_DEL, c.fd, nil) //nolint:errcheck
	c.mu.Lock()
	reason := c.closeErr
	c.mu.Unlock()
	c.h.OnClose(c, reason) // fd still open: Outq() works here
	c.f.Close()
}

// shutdown tears down every remaining conn and releases the poller's
// fds. Runs on the poller goroutine, once, as the loop exits.
func (ep *epoller) shutdown() {
	ep.processCloseq()
	ep.mu.Lock()
	all := make([]*epollConn, 0, len(ep.conns))
	for _, c := range ep.conns {
		all = append(all, c)
	}
	ep.mu.Unlock()
	for _, c := range all {
		c.mu.Lock()
		if !c.closed {
			c.closed = true
			c.closeErr = ErrPollClosed
		}
		c.mu.Unlock()
		ep.teardown(c)
	}
	ep.processCloseq()
	ep.closeFDs()
}

type epollConn struct {
	ep *epoller
	f  *os.File // owns the dup'd fd; closed only in teardown
	fd int
	h  Handler

	lastRead atomic.Int64 // mono ns of the most recent inbound bytes

	mu        sync.Mutex // ordered BEFORE ep.mu
	out       outbuf
	progress  int64 // mono ns of last outbound progress while nonempty
	wantWrite bool  // EPOLLOUT currently armed
	closed    bool
	closeErr  error

	// Wheel bookkeeping, guarded by ep.mu (not c.mu):
	idleQueued  bool
	writeQueued bool
	tornDown    bool
}

func (c *epollConn) Poller() int { return c.ep.id }

func (c *epollConn) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

func (c *epollConn) Buffered() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.out.buffered()
}

func (c *epollConn) Outq() (int, bool) { return outqFD(c.fd) }

func (c *epollConn) WriteMsg(p []byte, tag uint8) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if c.out.buffered() == 0 {
		c.progress = mono()
	}
	c.out.push(p, tag)
	tags, err := c.flushLocked()
	pending := c.out.buffered() > 0
	c.mu.Unlock()
	if len(tags) > 0 {
		c.h.OnFlushed(c, tags)
	}
	if err != nil {
		c.Close(err)
		return err
	}
	if pending {
		c.armWrite()
	}
	return nil
}

// flushLocked writes as much as the kernel accepts without blocking,
// arming or disarming EPOLLOUT to match the buffer state. Returns the
// tags of fully flushed messages and a non-nil error if the socket is
// broken. Caller holds c.mu.
func (c *epollConn) flushLocked() (tags []uint8, err error) {
	for c.out.buffered() > 0 {
		n, werr := syscall.Write(c.fd, c.out.pending())
		if n > 0 {
			c.progress = mono()
			tags = c.out.advance(n, tags)
			if werr == nil {
				continue
			}
		}
		switch werr {
		case syscall.EINTR:
			continue
		case syscall.EAGAIN:
			c.armEpollOutLocked(true)
			return tags, nil
		case nil:
			return tags, io.ErrUnexpectedEOF // n <= 0 with no error: treat as torn
		default:
			return tags, werr
		}
	}
	c.armEpollOutLocked(false)
	return tags, nil
}

func (c *epollConn) armEpollOutLocked(want bool) {
	if c.wantWrite == want {
		return
	}
	flags := epollInFlags
	if want {
		flags = epollOutFlags
	}
	ev := syscall.EpollEvent{Events: flags, Fd: int32(c.fd)}
	if syscall.EpollCtl(c.ep.epfd, syscall.EPOLL_CTL_MOD, c.fd, &ev) == nil {
		c.wantWrite = want
	}
}

func (c *epollConn) Close(reason error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	if reason == nil {
		reason = ErrClosed
	}
	c.closeErr = reason
	c.mu.Unlock()
	ep := c.ep
	ep.mu.Lock()
	ep.closeq = append(ep.closeq, c)
	ep.mu.Unlock()
	ep.wake()
}
