package netpoll

import "net"

// SockOutq reports the kernel's unsent send-queue depth (SIOCOUTQ) for
// a live net.Conn; ok is false where the platform or conn type can't
// answer. Exported for goroutine-mode kvsvc, which samples the backlog
// at slow-reader eviction without going through a netpoll Conn.
func SockOutq(nc net.Conn) (int, bool) { return sockOutq(nc) }
