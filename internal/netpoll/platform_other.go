//go:build !linux

package netpoll

// Non-Linux platforms always get the portable goroutine backend.
func newPlatform(cfg Config) (Poll, error) { return newPortable(cfg) }
