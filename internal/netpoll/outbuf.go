package netpoll

// outbuf is the per-conn outbound byte buffer with message-boundary
// marks. Messages are appended contiguously; each push records the
// logical end offset of the message plus its caller tag, and advance
// pops every mark the written byte count crosses so the conn can report
// fully flushed messages (the credit-release signal upstairs).
//
// Offsets are int64 logical stream positions (monotone over the conn's
// lifetime), so compaction of the physical buffer never disturbs marks.
// Not goroutine-safe; callers hold the conn mutex.
type outbuf struct {
	store []byte // physical buffer; pending bytes are store[off:]
	off   int    // consumed prefix of store
	base  int64  // logical stream position of store[0]
	marks []mark // message ends not yet fully written, in order
	mhead int    // consumed prefix of marks
}

type mark struct {
	end int64 // logical stream position one past the message's last byte
	tag uint8
}

// push appends one message.
func (b *outbuf) push(p []byte, tag uint8) {
	// Compact before growing: reclaim the consumed prefix when it
	// dominates the buffer, instead of letting append copy it along.
	if b.off > 0 && (len(b.store)+len(p) > cap(b.store) || b.off == len(b.store)) {
		n := copy(b.store, b.store[b.off:])
		b.store = b.store[:n]
		b.base += int64(b.off)
		b.off = 0
	}
	b.store = append(b.store, p...)
	b.marks = append(b.marks, mark{end: b.base + int64(len(b.store)), tag: tag})
}

// pending returns the unwritten bytes. Valid until the next push.
func (b *outbuf) pending() []byte { return b.store[b.off:] }

// buffered reports unwritten byte count.
func (b *outbuf) buffered() int { return len(b.store) - b.off }

// advance consumes n written bytes and appends the tags of every
// message that is now fully flushed to tags, returning it.
func (b *outbuf) advance(n int, tags []uint8) []uint8 {
	b.off += n
	pos := b.base + int64(b.off)
	for b.mhead < len(b.marks) && b.marks[b.mhead].end <= pos {
		tags = append(tags, b.marks[b.mhead].tag)
		b.mhead++
	}
	if b.mhead == len(b.marks) {
		b.marks = b.marks[:0]
		b.mhead = 0
	}
	if b.off == len(b.store) {
		// Empty: reset, and drop an outsized buffer so a one-off burst
		// doesn't pin memory on an otherwise idle conn.
		b.base += int64(b.off)
		b.off = 0
		b.store = b.store[:0]
		if cap(b.store) > 16<<10 {
			b.store = nil
		}
		if cap(b.marks) > 256 {
			b.marks = nil
		}
	}
	return tags
}
