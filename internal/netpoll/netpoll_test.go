package netpoll

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// backendConfigs returns one config per backend available on this
// platform; the epoll/portable matrix on Linux, portable-only elsewhere.
func backendConfigs(base Config) []Config {
	portable := base
	portable.ForcePortable = true
	if runtime.GOOS != "linux" {
		return []Config{portable}
	}
	return []Config{base, portable}
}

// recHandler records events for assertions.
type recHandler struct {
	mu      sync.Mutex
	conn    Conn
	got     bytes.Buffer
	flushed []uint8
	echo    bool // write received bytes back, one message per OnData

	closed   chan error
	dataSeen chan struct{} // closed once on first OnData
	dataOnce sync.Once
}

func newRecHandler(echo bool) *recHandler {
	return &recHandler{echo: echo, closed: make(chan error, 1), dataSeen: make(chan struct{})}
}

func (h *recHandler) OnRegister(c Conn) { h.conn = c }

func (h *recHandler) OnData(c Conn, p []byte) error {
	h.mu.Lock()
	h.got.Write(p)
	h.mu.Unlock()
	h.dataOnce.Do(func() { close(h.dataSeen) })
	if h.echo {
		return c.WriteMsg(p, uint8(len(p)%251))
	}
	return nil
}

func (h *recHandler) OnFlushed(_ Conn, tags []uint8) {
	h.mu.Lock()
	h.flushed = append(h.flushed, tags...)
	h.mu.Unlock()
}

func (h *recHandler) OnClose(_ Conn, err error) { h.closed <- err }

// serve starts a listener whose accepted conns are registered on p with
// handlers from mk. Returns the dial address.
func serve(t *testing.T, p Poll, mk func() Handler) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			if _, err := p.Register(c, mk()); err != nil {
				return
			}
		}
	}()
	return ln.Addr().String()
}

func TestEchoRoundTrip(t *testing.T) {
	for _, cfg := range backendConfigs(Config{Pollers: 2, Tick: 10 * time.Millisecond}) {
		cfg := cfg
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(p.Kind(), func(t *testing.T) {
			defer p.Close()
			var hmu sync.Mutex
			var handlers []*recHandler
			addr := serve(t, p, func() Handler {
				h := newRecHandler(true)
				hmu.Lock()
				handlers = append(handlers, h)
				hmu.Unlock()
				return h
			})
			const conns = 4
			var cmu sync.Mutex
			var clients []net.Conn
			defer func() {
				cmu.Lock()
				defer cmu.Unlock()
				for _, c := range clients {
					c.Close()
				}
			}()
			var wg sync.WaitGroup
			for i := 0; i < conns; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					c, err := net.Dial("tcp", addr)
					if err != nil {
						t.Error(err)
						return
					}
					cmu.Lock()
					clients = append(clients, c)
					cmu.Unlock()
					msg := []byte(fmt.Sprintf("hello-%d-%s", i, string(make([]byte, 100+i))))
					if _, err := c.Write(msg); err != nil {
						t.Error(err)
						return
					}
					back := make([]byte, len(msg))
					c.SetReadDeadline(time.Now().Add(5 * time.Second))
					if _, err := io.ReadFull(c, back); err != nil {
						t.Errorf("conn %d: echo read: %v", i, err)
						return
					}
					if !bytes.Equal(back, msg) {
						t.Errorf("conn %d: echo mismatch", i)
					}
				}(i)
			}
			wg.Wait()
			total := 0
			for _, n := range p.ConnCounts() {
				total += n
			}
			if total != conns {
				t.Errorf("ConnCounts sum = %d, want %d", total, conns)
			}
			// Every handler must have seen at least one flush tag.
			hmu.Lock()
			defer hmu.Unlock()
			for i, h := range handlers {
				h.mu.Lock()
				nf := len(h.flushed)
				h.mu.Unlock()
				if nf == 0 {
					t.Errorf("handler %d: no flush tags", i)
				}
			}
		})
	}
}

func TestIdleEviction(t *testing.T) {
	for _, cfg := range backendConfigs(Config{
		Pollers: 1, Tick: 10 * time.Millisecond, IdleTimeout: 80 * time.Millisecond,
	}) {
		cfg := cfg
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(p.Kind(), func(t *testing.T) {
			defer p.Close()
			h := newRecHandler(false)
			addr := serve(t, p, func() Handler { return h })
			c, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			// A touch of traffic first: eviction must measure from the
			// LAST read, not registration.
			if _, err := c.Write([]byte("x")); err != nil {
				t.Fatal(err)
			}
			select {
			case err := <-h.closed:
				if !errors.Is(err, ErrIdleTimeout) {
					t.Fatalf("close reason = %v, want ErrIdleTimeout", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("idle conn never evicted")
			}
			total := 0
			for _, n := range p.ConnCounts() {
				total += n
			}
			if total != 0 {
				t.Errorf("ConnCounts sum = %d after eviction, want 0", total)
			}
		})
	}
}

func TestWriteStallEviction(t *testing.T) {
	for _, cfg := range backendConfigs(Config{
		Pollers: 1, Tick: 10 * time.Millisecond, WriteStallTimeout: 150 * time.Millisecond,
	}) {
		cfg := cfg
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(p.Kind(), func(t *testing.T) {
			defer p.Close()
			h := newRecHandler(false)
			addr := serve(t, p, func() Handler { return h })
			c, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if _, err := c.Write([]byte("x")); err != nil {
				t.Fatal(err)
			}
			<-h.dataSeen
			// Flood a reader that never reads until well past any
			// plausible kernel buffering (loopback autotune tops out
			// around 10MB send+recv), so the writer must stall.
			payload := make([]byte, 64<<10)
			deadline := time.Now().Add(10 * time.Second)
			for h.conn.Buffered() < 16<<20 && time.Now().Before(deadline) {
				if err := h.conn.WriteMsg(payload, 7); err != nil {
					break
				}
			}
			if h.conn.Buffered() == 0 {
				t.Skip("kernel swallowed every write; cannot provoke a stall here")
			}
			select {
			case err := <-h.closed:
				if !errors.Is(err, ErrWriteStall) {
					t.Fatalf("close reason = %v, want ErrWriteStall", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("stalled writer never evicted")
			}
		})
	}
}

func TestCloseReasonAndWriteAfterClose(t *testing.T) {
	reason := errors.New("custom reason")
	for _, cfg := range backendConfigs(Config{Pollers: 1, Tick: 10 * time.Millisecond}) {
		cfg := cfg
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(p.Kind(), func(t *testing.T) {
			defer p.Close()
			h := newRecHandler(false)
			addr := serve(t, p, func() Handler { return h })
			c, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if _, err := c.Write([]byte("x")); err != nil {
				t.Fatal(err)
			}
			<-h.dataSeen
			h.conn.Close(reason)
			select {
			case err := <-h.closed:
				if !errors.Is(err, reason) {
					t.Fatalf("close reason = %v, want custom reason", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("OnClose never fired")
			}
			if err := h.conn.WriteMsg([]byte("y"), 0); !errors.Is(err, ErrClosed) {
				t.Fatalf("WriteMsg after close = %v, want ErrClosed", err)
			}
		})
	}
}

func TestPeerHangupCloses(t *testing.T) {
	for _, cfg := range backendConfigs(Config{Pollers: 1, Tick: 10 * time.Millisecond}) {
		cfg := cfg
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(p.Kind(), func(t *testing.T) {
			defer p.Close()
			h := newRecHandler(false)
			addr := serve(t, p, func() Handler { return h })
			c, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Write([]byte("x")); err != nil {
				t.Fatal(err)
			}
			<-h.dataSeen
			c.Close()
			select {
			case <-h.closed:
			case <-time.After(5 * time.Second):
				t.Fatal("hangup never noticed")
			}
		})
	}
}

func TestPollCloseFiresOnClose(t *testing.T) {
	for _, cfg := range backendConfigs(Config{Pollers: 2, Tick: 10 * time.Millisecond}) {
		cfg := cfg
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		kind := p.Kind()
		t.Run(kind, func(t *testing.T) {
			var hmu sync.Mutex
			var handlers []*recHandler
			addr := serve(t, p, func() Handler {
				h := newRecHandler(false)
				hmu.Lock()
				handlers = append(handlers, h)
				hmu.Unlock()
				return h
			})
			var clients []net.Conn
			for i := 0; i < 3; i++ {
				c, err := net.Dial("tcp", addr)
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				if _, err := c.Write([]byte("x")); err != nil {
					t.Fatal(err)
				}
				clients = append(clients, c)
			}
			_ = clients
			// Wait for all three registrations to land.
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				hmu.Lock()
				n := len(handlers)
				hmu.Unlock()
				if n == 3 {
					break
				}
				time.Sleep(time.Millisecond)
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
			hmu.Lock()
			defer hmu.Unlock()
			if len(handlers) != 3 {
				t.Fatalf("registered %d handlers, want 3", len(handlers))
			}
			for i, h := range handlers {
				select {
				case err := <-h.closed:
					if !errors.Is(err, ErrPollClosed) {
						t.Errorf("handler %d: close reason = %v, want ErrPollClosed", i, err)
					}
				default:
					t.Errorf("handler %d: OnClose never fired by Poll.Close return", i)
				}
			}
		})
	}
}

func TestOutbufMarks(t *testing.T) {
	var b outbuf
	b.push([]byte("abcd"), 1)
	b.push([]byte("efg"), 2)
	if b.buffered() != 7 {
		t.Fatalf("buffered = %d, want 7", b.buffered())
	}
	tags := b.advance(3, nil) // mid-message: nothing complete
	if len(tags) != 0 {
		t.Fatalf("tags after 3 bytes = %v, want none", tags)
	}
	tags = b.advance(1, tags) // completes msg 1
	if len(tags) != 1 || tags[0] != 1 {
		t.Fatalf("tags after 4 bytes = %v, want [1]", tags)
	}
	b.push([]byte("hi"), 3)
	tags = b.advance(b.buffered(), nil) // rest: msgs 2 and 3 in order
	if len(tags) != 2 || tags[0] != 2 || tags[1] != 3 {
		t.Fatalf("tags = %v, want [2 3]", tags)
	}
	if b.buffered() != 0 {
		t.Fatalf("buffered = %d after full drain", b.buffered())
	}
	// Interleave partial writes with pushes; byte accounting must hold.
	total := 0
	var flushed []uint8
	for i := 0; i < 100; i++ {
		b.push(make([]byte, i%13+1), uint8(i))
		total += i%13 + 1
		step := i % 7
		if step > b.buffered() {
			step = b.buffered()
		}
		flushed = b.advance(step, flushed)
		total -= step
	}
	flushed = b.advance(b.buffered(), flushed)
	if len(flushed) != 100 {
		t.Fatalf("flushed %d tags, want 100", len(flushed))
	}
	for i, tag := range flushed {
		if tag != uint8(i) {
			t.Fatalf("flush order broken at %d: tag %d", i, tag)
		}
	}
}
