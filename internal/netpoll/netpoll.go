// Package netpoll is the event-driven connection layer: a small fixed
// set of poller goroutines multiplexing many mostly-idle connections,
// instead of a reader+writer goroutine pair per connection.
//
// On Linux the backend is epoll (level-triggered, via raw syscalls — no
// external deps), with a wake pipe per poller and a hashed timing wheel
// replacing per-conn SetDeadline timers. Everywhere else (and under
// Config.ForcePortable) a portable backend keeps the same API on plain
// net.Conn goroutines so the package — and everything built on it —
// tests identically on any platform.
//
// Ownership model: each connection belongs to exactly one poller.
// OnData always runs on (or serialized as if on) that poller, so a
// handler needs no locking for per-connection decode state and may use
// per-poller resources (e.g. cached shard read handles) without
// synchronization. OnFlushed and OnClose can run on other goroutines;
// their contracts are documented on Handler.
package netpoll

import (
	"errors"
	"net"
	"runtime"
	"time"
)

// Sentinel close reasons. Handlers see these (possibly wrapped) as the
// err argument of OnClose and classify evictions from them.
var (
	// ErrClosed: the connection was closed locally via Conn.Close or
	// written after close.
	ErrClosed = errors.New("netpoll: connection closed")
	// ErrPollClosed: the poll instance shut down underneath the conn.
	ErrPollClosed = errors.New("netpoll: poll closed")
	// ErrIdleTimeout: no inbound bytes for Config.IdleTimeout.
	ErrIdleTimeout = errors.New("netpoll: idle timeout")
	// ErrWriteStall: buffered outbound bytes made no progress into the
	// kernel for Config.WriteStallTimeout (a slow or stuck reader).
	ErrWriteStall = errors.New("netpoll: write stalled")
)

// Config sizes a Poll. The zero value is usable: NewConfig-style
// normalization happens inside New.
type Config struct {
	// Pollers is the number of poller goroutines (and event loops).
	// Default min(8, GOMAXPROCS).
	Pollers int
	// Tick is the timer-wheel granularity; idle/write deadlines fire
	// within one tick of their due time. Default 100ms.
	Tick time.Duration
	// IdleTimeout evicts conns with no inbound bytes for this long.
	// <= 0 disables idle eviction.
	IdleTimeout time.Duration
	// WriteStallTimeout evicts conns whose outbound buffer made no
	// progress for this long. <= 0 disables write-stall eviction.
	WriteStallTimeout time.Duration
	// ReadChunk is the per-poller scratch read buffer size (shared by
	// all conns on that poller, not per-conn). Default 64KiB.
	ReadChunk int
	// ForcePortable selects the portable goroutine backend even on
	// Linux. Used by tests to run both backends on one platform.
	ForcePortable bool
}

func (c Config) withDefaults() Config {
	if c.Pollers <= 0 {
		c.Pollers = runtime.GOMAXPROCS(0)
		if c.Pollers > 8 {
			c.Pollers = 8
		}
	}
	if c.Tick <= 0 {
		c.Tick = 100 * time.Millisecond
	}
	if c.ReadChunk <= 0 {
		c.ReadChunk = 64 << 10
	}
	return c
}

// Handler receives a connection's events. One handler instance per
// connection.
type Handler interface {
	// OnRegister runs synchronously inside Poll.Register, before any
	// other callback can fire, handing the handler its Conn. Anything
	// the other callbacks need (maps, waitgroups) must be set up before
	// OnRegister returns.
	OnRegister(c Conn)
	// OnData delivers freshly read bytes. It runs on the conn's poller
	// (or serialized equivalently on the portable backend), so decode
	// state needs no locking and per-poller resources are safe to use.
	// The slice is only valid during the call. A non-nil error closes
	// the connection with that error as the OnClose reason.
	OnData(c Conn, p []byte) error
	// OnFlushed reports messages whose bytes have fully reached the
	// kernel, identified by the tags passed to WriteMsg, in write
	// order. It may run on any goroutine (including inside WriteMsg)
	// and must not call Conn methods or block.
	OnFlushed(c Conn, tags []uint8)
	// OnClose fires exactly once per registered conn. The socket is
	// still open when it runs, so Conn.Outq is meaningful. On the epoll
	// backend it runs on the poller after all OnData calls; on the
	// portable backend it may overlap an in-flight OnData for the same
	// conn, so handlers must only touch state that tolerates that
	// (atomics, locked maps).
	OnClose(c Conn, err error)
}

// Conn is one registered connection. All methods are safe for
// concurrent use.
type Conn interface {
	// WriteMsg queues one message for writing and flushes as much as
	// the kernel will take without blocking. The tag comes back via
	// OnFlushed when the message's bytes have fully left the buffer.
	// The payload is copied; p is free for reuse on return. Returns
	// ErrClosed after close.
	WriteMsg(p []byte, tag uint8) error
	// Buffered reports outbound bytes accepted by WriteMsg but not yet
	// written to the kernel.
	Buffered() int
	// Poller reports the index of the poller that owns this conn, in
	// [0, Config.Pollers).
	Poller() int
	// Outq reports the kernel's unsent send-queue depth in bytes
	// (SIOCOUTQ). ok is false where unsupported.
	Outq() (n int, ok bool)
	// Close asynchronously tears the connection down; OnClose receives
	// reason (nil becomes ErrClosed). Idempotent — the first reason
	// wins.
	Close(reason error)
}

// Poll multiplexes connections onto poller goroutines.
type Poll interface {
	// Register hands nc to a poller. On success netpoll owns the
	// socket; on failure nc is closed. Register must not be called
	// concurrently with or after Close.
	Register(nc net.Conn, h Handler) (Conn, error)
	// ConnCounts reports live conns per poller.
	ConnCounts() []int
	// Kind names the backend: "epoll" or "portable".
	Kind() string
	// Close tears down every conn (OnClose reason ErrPollClosed,
	// unless already closing with its own reason) and joins the poller
	// goroutines.
	Close() error
}

// New builds the platform backend (epoll on Linux), or the portable
// fallback if forced.
func New(cfg Config) (Poll, error) {
	cfg = cfg.withDefaults()
	if cfg.ForcePortable {
		return newPortable(cfg)
	}
	return newPlatform(cfg)
}

// start anchors the package's monotonic clock; mono() durations are
// nanoseconds since it.
var start = time.Now()

func mono() int64 { return int64(time.Since(start)) }
