package netpoll

import (
	"errors"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// The portable backend keeps the netpoll API on plain net.Conn
// goroutines: one reader + one writer per conn, with idle and
// write-stall deadlines expressed through SetReadDeadline /
// SetWriteDeadline. It exists so non-Linux builds (and the test matrix
// on any platform) exercise the exact same handler contract the epoll
// backend provides. "Poller" identity is virtual: conns are assigned
// round-robin to Config.Pollers execution lanes, and OnData holds that
// lane's mutex — the same serialization (and the same happens-before
// for per-poller resources) a real poller goroutine would give.
type portPoll struct {
	cfg    Config
	execMu []sync.Mutex
	counts []atomic.Int64
	next   atomic.Uint64
	closed atomic.Bool

	mu    sync.Mutex
	conns map[*portConn]struct{}
	wg    sync.WaitGroup
}

func newPortable(cfg Config) (Poll, error) {
	return &portPoll{
		cfg:    cfg,
		execMu: make([]sync.Mutex, cfg.Pollers),
		counts: make([]atomic.Int64, cfg.Pollers),
		conns:  make(map[*portConn]struct{}),
	}, nil
}

func (p *portPoll) Kind() string { return "portable" }

func (p *portPoll) ConnCounts() []int {
	out := make([]int, len(p.counts))
	for i := range p.counts {
		out[i] = int(p.counts[i].Load())
	}
	return out
}

func (p *portPoll) Register(nc net.Conn, h Handler) (Conn, error) {
	if p.closed.Load() {
		nc.Close()
		return nil, ErrPollClosed
	}
	lane := int(p.next.Add(1) % uint64(len(p.execMu)))
	c := &portConn{p: p, nc: nc, lane: lane, h: h, wake: make(chan struct{}, 1)}
	h.OnRegister(c)
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
	p.counts[lane].Add(1)
	p.wg.Add(2)
	go c.readLoop()
	go c.writeLoop()
	return c, nil
}

func (p *portPoll) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	p.mu.Lock()
	all := make([]*portConn, 0, len(p.conns))
	for c := range p.conns {
		all = append(all, c)
	}
	p.mu.Unlock()
	for _, c := range all {
		c.Close(ErrPollClosed)
	}
	p.wg.Wait()
	return nil
}

type portConn struct {
	p    *portPoll
	nc   net.Conn
	lane int
	h    Handler
	wake chan struct{} // capacity 1: write-pending / close poke

	mu     sync.Mutex
	out    outbuf
	closed bool

	closeOnce sync.Once
}

func (c *portConn) Poller() int { return c.lane }

func (c *portConn) Buffered() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.out.buffered()
}

func (c *portConn) Outq() (int, bool) { return sockOutq(c.nc) }

func (c *portConn) WriteMsg(p []byte, tag uint8) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.out.push(p, tag)
	c.mu.Unlock()
	c.poke()
	return nil
}

func (c *portConn) poke() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

func (c *portConn) Close(reason error) {
	c.closeOnce.Do(func() {
		if reason == nil {
			reason = ErrClosed
		}
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		c.p.mu.Lock()
		delete(c.p.conns, c)
		c.p.mu.Unlock()
		c.p.counts[c.lane].Add(-1)
		// OnClose before nc.Close so Outq still reads the socket.
		c.h.OnClose(c, reason)
		c.nc.Close()
		c.poke() // release the writer if it is parked on wake
	})
}

func (c *portConn) readLoop() {
	defer c.p.wg.Done()
	chunk := c.p.cfg.ReadChunk
	if chunk > 16<<10 {
		chunk = 16 << 10 // per-conn here, not per-poller: keep it modest
	}
	buf := make([]byte, chunk)
	for {
		if it := c.p.cfg.IdleTimeout; it > 0 {
			c.nc.SetReadDeadline(time.Now().Add(it))
		}
		n, err := c.nc.Read(buf)
		if n > 0 {
			mu := &c.p.execMu[c.lane]
			mu.Lock()
			herr := c.h.OnData(c, buf[:n])
			mu.Unlock()
			if herr != nil {
				c.Close(herr)
				return
			}
		}
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				err = ErrIdleTimeout
			}
			c.Close(err)
			return
		}
	}
}

func (c *portConn) writeLoop() {
	defer c.p.wg.Done()
	for {
		<-c.wake
		if c.drain() {
			return
		}
	}
}

// drain writes buffered bytes until empty, reporting true when the conn
// is done for good (closed or broken). Only the writer goroutine calls
// net.Conn.Write, so message bytes stay contiguous on the wire.
func (c *portConn) drain() (done bool) {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return true
		}
		pend := c.out.pending()
		if len(pend) == 0 {
			c.mu.Unlock()
			return false
		}
		c.mu.Unlock()
		// pend snapshots the pending bytes; a concurrent push may
		// reallocate the store but never mutates the snapshot, and
		// advance below accounts by byte count, not slice identity.
		if wt := c.p.cfg.WriteStallTimeout; wt > 0 {
			c.nc.SetWriteDeadline(time.Now().Add(wt))
		}
		n, err := c.nc.Write(pend)
		if n > 0 {
			c.mu.Lock()
			tags := c.out.advance(n, nil)
			c.mu.Unlock()
			if len(tags) > 0 {
				c.h.OnFlushed(c, tags)
			}
		}
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				err = ErrWriteStall
			}
			c.Close(err)
			return true
		}
	}
}
