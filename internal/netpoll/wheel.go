//go:build linux

package netpoll

// wheel is the hashed timing wheel the epoll backend uses for idle and
// write-stall deadlines: one wheel per poller, advanced from the poller
// loop, replacing O(conns) runtime timers with O(1) slot appends.
//
// Entries are lazy: a slot firing only means "this conn's deadline MAY
// be due" — the poller re-checks the live deadline (last-read time,
// write-progress time) and re-pushes if activity moved it. That way a
// busy conn never touches the wheel on the hot path; it re-arms at most
// once per wheel rotation. Deadlines farther out than the wheel's span
// park in the last slot and re-push on fire (same lazy check).
//
// Not goroutine-safe; the owning poller guards it with its mutex.
type wheel struct {
	tick  int64 // ns per slot
	slots [][]wheelEntry
	cur   int   // slot whose time has most recently arrived
	base  int64 // mono ns corresponding to slot cur
}

type wheelKind uint8

const (
	wheelIdle wheelKind = iota
	wheelWrite
)

type wheelEntry struct {
	c    *epollConn
	kind wheelKind
}

func newWheel(tick int64, slots int, now int64) *wheel {
	return &wheel{tick: tick, slots: make([][]wheelEntry, slots), base: now}
}

// push files e to fire at (or one slot after) mono time due.
func (w *wheel) push(e wheelEntry, due int64) {
	off := (due-w.base)/w.tick + 1
	if off < 1 {
		off = 1
	}
	if max := int64(len(w.slots) - 1); off > max {
		off = max
	}
	i := (w.cur + int(off)) % len(w.slots)
	w.slots[i] = append(w.slots[i], e)
}

// advance rotates the wheel up to mono time now, appending every
// entry whose slot has arrived to out.
func (w *wheel) advance(now int64, out []wheelEntry) []wheelEntry {
	for w.base+w.tick <= now {
		w.cur = (w.cur + 1) % len(w.slots)
		w.base += w.tick
		out = append(out, w.slots[w.cur]...)
		w.slots[w.cur] = w.slots[w.cur][:0]
	}
	return out
}
