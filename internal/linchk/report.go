package linchk

import (
	"fmt"
	"strings"
)

// Outcome classifies a checker verdict, ordered by severity.
type Outcome int

const (
	// OutcomeLinearizable: a legal sequential witness order was found.
	OutcomeLinearizable Outcome = iota
	// OutcomeExhausted: the search budget ran out before a witness or a
	// refutation was found. Treat as inconclusive, not as a failure.
	OutcomeExhausted
	// OutcomeNonLinearizable: the search space was covered and no legal
	// sequential order exists — a genuine consistency violation.
	OutcomeNonLinearizable
)

// String returns the outcome's name.
func (o Outcome) String() string {
	switch o {
	case OutcomeLinearizable:
		return "linearizable"
	case OutcomeExhausted:
		return "exhausted"
	case OutcomeNonLinearizable:
		return "non-linearizable"
	}
	return "?"
}

// Verdict is the result of checking one history.
type Verdict struct {
	Spec    string
	Outcome Outcome
	// Total is the number of operations checked; Depth is the length of
	// the longest legal linearization prefix found (== Total on success).
	Total, Depth int
	// Explored counts search states visited.
	Explored int64
	// Stuck, on failure, lists the candidate operations at the deepest
	// search point: each was pending there, and none has a result
	// consistent with StuckState. One of them is the violation.
	Stuck      []Op
	StuckState string
	// Key/KeyScoped identify the offending key when the verdict comes
	// from a per-key decomposition (CheckKV).
	Key       uint64
	KeyScoped bool
}

// Linearizable reports whether the history was proven linearizable.
func (v Verdict) Linearizable() bool { return v.Outcome == OutcomeLinearizable }

// Report renders a human-readable account of the verdict. For failures it
// shows where the search got stuck: the abstract state reached and the
// pending operations whose recorded results are all impossible in it.
func (v Verdict) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s history, %d ops, %d states explored",
		v.Outcome, v.Spec, v.Total, v.Explored)
	if v.Outcome == OutcomeLinearizable {
		return b.String()
	}
	if v.KeyScoped {
		fmt.Fprintf(&b, "\n  key %d", v.Key)
	}
	fmt.Fprintf(&b, "\n  longest legal prefix: %d/%d ops", v.Depth, v.Total)
	if v.Outcome == OutcomeNonLinearizable {
		fmt.Fprintf(&b, "\n  abstract state there: %s", decodeState(v.Spec, v.StuckState))
		fmt.Fprintf(&b, "\n  no pending op can linearize next:")
		for _, op := range v.Stuck {
			fmt.Fprintf(&b, "\n    %s", op)
		}
	}
	return b.String()
}

// decodeState makes the memoization encoding readable in reports.
func decodeState(spec, enc string) string {
	switch spec {
	case "set", "map":
		if enc == "-" {
			return "key absent"
		}
		return "key present, value " + strings.TrimPrefix(enc, "+")
	case "queue", "stack":
		if enc == "" {
			return "empty"
		}
		return "contents [" + strings.TrimSuffix(enc, ",") + "]"
	}
	return enc
}
