// Package linchk records concurrent operation histories and checks them
// for linearizability against sequential specifications.
//
// The recording side is deliberately cheap: a single global atomic clock
// hands out unique, totally ordered timestamps; each worker appends
// completed operations to a private log (no locks, no allocation beyond
// slice growth), and the logs are merged after the run. The checking side
// is a Wing–Gong linearizability checker with Lowe's improvements:
// depth-first search over linearization orders, pruned by a memoization
// cache keyed on (set of linearized ops, abstract state).
//
// Four sequential specifications are provided — set, map, queue, stack —
// covering every data structure in this repository. Map- and set-like
// histories are additionally decomposed per key before checking
// (operations on distinct keys commute, so the composition of per-key
// verdicts is sound), which keeps the search tractable for long runs.
package linchk

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Kind identifies an operation in a history.
type Kind uint8

// Operation kinds for the four specs. Get/Insert/Delete belong to the
// set/map specs; Enqueue/Dequeue to the queue spec; Push/Pop to the stack
// spec.
const (
	OpGet Kind = iota
	OpInsert
	OpDelete
	OpEnqueue
	OpDequeue
	OpPush
	OpPop
)

// String returns the conventional name of the kind.
func (k Kind) String() string {
	switch k {
	case OpGet:
		return "get"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpEnqueue:
		return "enqueue"
	case OpDequeue:
		return "dequeue"
	case OpPush:
		return "push"
	case OpPop:
		return "pop"
	}
	return "?"
}

// Op is one completed operation: what was invoked, what it returned, and
// the interval [Inv, Ret] during which it was pending. Timestamps come
// from a shared Clock and are unique across the whole history.
type Op struct {
	Worker int
	Kind   Kind
	// Key is the map/set key; unused by queue and stack ops.
	Key uint64
	// Val is the input value for Insert/Enqueue/Push and the output value
	// for Get/Dequeue/Pop (meaningful only when Ok is true).
	Val uint64
	// Ok is the operation's boolean result: presence for Get, success for
	// Insert/Delete, non-emptiness for Dequeue/Pop. Enqueue/Push always
	// succeed and record true.
	Ok       bool
	Inv, Ret uint64
}

func (o Op) String() string {
	switch o.Kind {
	case OpGet:
		return fmt.Sprintf("w%d get(%d) = (%d,%v) [%d,%d]", o.Worker, o.Key, o.Val, o.Ok, o.Inv, o.Ret)
	case OpInsert:
		return fmt.Sprintf("w%d insert(%d,%d) = %v [%d,%d]", o.Worker, o.Key, o.Val, o.Ok, o.Inv, o.Ret)
	case OpDelete:
		return fmt.Sprintf("w%d delete(%d) = %v [%d,%d]", o.Worker, o.Key, o.Ok, o.Inv, o.Ret)
	case OpEnqueue:
		return fmt.Sprintf("w%d enqueue(%d) [%d,%d]", o.Worker, o.Val, o.Inv, o.Ret)
	case OpDequeue:
		return fmt.Sprintf("w%d dequeue() = (%d,%v) [%d,%d]", o.Worker, o.Val, o.Ok, o.Inv, o.Ret)
	case OpPush:
		return fmt.Sprintf("w%d push(%d) [%d,%d]", o.Worker, o.Val, o.Inv, o.Ret)
	case OpPop:
		return fmt.Sprintf("w%d pop() = (%d,%v) [%d,%d]", o.Worker, o.Val, o.Ok, o.Inv, o.Ret)
	}
	return "?"
}

// Clock is the global logical clock shared by all recorders of a run.
// Every Tick returns a fresh, strictly increasing timestamp.
type Clock struct {
	t atomic.Uint64
}

// Tick returns the next timestamp.
func (c *Clock) Tick() uint64 { return c.t.Add(1) }

// Recorder is a per-worker operation log. A Recorder belongs to a single
// goroutine; only the shared Clock is touched with atomics.
type Recorder struct {
	clock  *Clock
	worker int
	ops    []Op
}

// NewRecorder returns a recorder for one worker.
func NewRecorder(c *Clock, worker int) *Recorder {
	return &Recorder{clock: c, worker: worker, ops: make([]Op, 0, 1024)}
}

// Inv timestamps an invocation. Call immediately before the operation.
func (r *Recorder) Inv() uint64 { return r.clock.Tick() }

// Record appends a completed operation, timestamping its response now.
func (r *Recorder) Record(k Kind, key, val uint64, ok bool, inv uint64) {
	r.ops = append(r.ops, Op{
		Worker: r.worker, Kind: k, Key: key, Val: val, Ok: ok,
		Inv: inv, Ret: r.clock.Tick(),
	})
}

// Ops returns the recorded log.
func (r *Recorder) Ops() []Op { return r.ops }

// Len returns the number of recorded operations.
func (r *Recorder) Len() int { return len(r.ops) }

// History is a merged multi-worker operation log.
type History struct {
	Ops []Op
}

// Merge combines per-worker logs into one history sorted by invocation
// time.
func Merge(rs ...*Recorder) History {
	var h History
	for _, r := range rs {
		h.Ops = append(h.Ops, r.ops...)
	}
	sort.Slice(h.Ops, func(i, j int) bool { return h.Ops[i].Inv < h.Ops[j].Inv })
	return h
}

// PartitionByKey splits a map/set history into per-key sub-histories.
// Operations on distinct keys commute under the set and map specs, so
// linearizability can be checked key by key (Herlihy & Wing's locality,
// applied to the per-key sub-objects).
func (h History) PartitionByKey() map[uint64]History {
	out := map[uint64]History{}
	for _, op := range h.Ops {
		sub := out[op.Key]
		sub.Ops = append(sub.Ops, op)
		out[op.Key] = sub
	}
	return out
}
