package linchk

import (
	"sort"
)

// Opts tunes a Check call.
type Opts struct {
	// MaxNodes bounds the number of search states explored before the
	// checker gives up with OutcomeExhausted. 0 means DefaultMaxNodes.
	MaxNodes int64
}

// DefaultMaxNodes is the default search budget. Well-formed histories
// from correct implementations linearize in roughly O(n) node visits;
// the budget only bites on pathological or buggy histories.
const DefaultMaxNodes = 4 << 20

// Check decides whether history h is linearizable with respect to spec
// using Wing–Gong search with Lowe-style memoization.
func Check(spec Spec, h History, opts Opts) Verdict {
	budget := opts.MaxNodes
	if budget <= 0 {
		budget = DefaultMaxNodes
	}
	ops := make([]Op, len(h.Ops))
	copy(ops, h.Ops)
	sort.Slice(ops, func(i, j int) bool { return ops[i].Inv < ops[j].Inv })

	c := &checker{
		ops:    ops,
		done:   make([]uint64, (len(ops)+63)/64),
		memo:   make(map[string]struct{}),
		budget: budget,
	}
	ok := c.dfs(spec.Init(), len(ops))
	v := Verdict{
		Spec:     spec.Name(),
		Total:    len(ops),
		Explored: c.explored,
		Depth:    len(ops) - c.bestRemaining,
	}
	switch {
	case ok:
		v.Outcome = OutcomeLinearizable
	case c.exhausted:
		v.Outcome = OutcomeExhausted
	default:
		v.Outcome = OutcomeNonLinearizable
		v.Stuck = c.bestStuck
		v.StuckState = c.bestState
	}
	return v
}

type checker struct {
	ops      []Op
	done     []uint64
	memo     map[string]struct{}
	budget   int64
	explored int64

	exhausted bool
	// bestRemaining tracks the deepest point reached (fewest unlinearized
	// ops); bestStuck holds the candidate ops that all failed there.
	bestSet       bool
	bestRemaining int
	bestStuck     []Op
	bestState     string
}

func (c *checker) isDone(i int) bool { return c.done[i/64]&(1<<uint(i%64)) != 0 }
func (c *checker) setDone(i int)     { c.done[i/64] |= 1 << uint(i%64) }
func (c *checker) clearDone(i int)   { c.done[i/64] &^= 1 << uint(i%64) }

// key builds the memoization key for the current linearized set and
// abstract state.
func (c *checker) key(state State) string {
	enc := state.Encode()
	b := make([]byte, 0, len(c.done)*8+1+len(enc))
	for _, w := range c.done {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(w>>uint(s)))
		}
	}
	b = append(b, '|')
	b = append(b, enc...)
	return string(b)
}

func (c *checker) dfs(state State, remaining int) bool {
	if remaining == 0 {
		return true
	}
	c.explored++
	if c.explored > c.budget {
		c.exhausted = true
		return false
	}
	// An op can be linearized first among the remaining ones only if it
	// was invoked before the earliest remaining response: anything later
	// is strictly after that whole operation.
	minRet := ^uint64(0)
	for i, op := range c.ops {
		if !c.isDone(i) && op.Ret < minRet {
			minRet = op.Ret
		}
	}
	var stuck []Op
	for i, op := range c.ops {
		if c.isDone(i) || op.Inv > minRet {
			continue
		}
		next, ok := state.Step(op)
		if !ok {
			stuck = append(stuck, op)
			continue
		}
		c.setDone(i)
		k := c.key(next)
		if _, seen := c.memo[k]; !seen {
			if c.dfs(next, remaining-1) {
				return true
			}
			if c.exhausted {
				c.clearDone(i)
				return false
			}
			c.memo[k] = struct{}{}
		}
		c.clearDone(i)
	}
	if !c.bestSet || remaining < c.bestRemaining {
		c.bestSet = true
		c.bestRemaining = remaining
		c.bestStuck = append([]Op(nil), stuck...)
		c.bestState = state.Encode()
	}
	return false
}

// CheckKV checks a map/set history by decomposing it per key and checking
// each sub-history against spec (SetSpec or MapSpec). The combined
// verdict is linearizable iff every per-key verdict is.
func CheckKV(spec Spec, h History, opts Opts) Verdict {
	keys := make([]uint64, 0, 16)
	parts := h.PartitionByKey()
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	out := Verdict{Spec: spec.Name(), Outcome: OutcomeLinearizable}
	for _, k := range keys {
		v := Check(spec, parts[k], opts)
		out.Total += v.Total
		out.Explored += v.Explored
		out.Depth += v.Depth
		if v.Outcome > out.Outcome {
			out.Outcome = v.Outcome
			out.Stuck = v.Stuck
			out.StuckState = v.StuckState
			out.Key = k
			out.KeyScoped = true
		}
	}
	return out
}
