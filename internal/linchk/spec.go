package linchk

import (
	"fmt"
	"strings"
)

// Spec is a sequential specification: an initial abstract state plus a
// transition function (on State) that accepts or rejects each recorded
// operation's result.
type Spec interface {
	Name() string
	Init() State
}

// State is an immutable abstract state. Step must not mutate the
// receiver: it returns the successor state, or ok=false if the
// operation's recorded result is impossible in this state.
type State interface {
	Step(op Op) (next State, ok bool)
	// Encode returns a canonical encoding of the state for memoization.
	Encode() string
}

// ---------------------------------------------------------------- set/map

// SetSpec is the sequential specification of a set of keys restricted to
// a single key: present or absent. Insert succeeds iff absent, Delete
// succeeds iff present, Get reports presence. Use it on a per-key
// sub-history (see History.PartitionByKey); CheckKV does this for you.
type SetSpec struct{}

// Name implements Spec.
func (SetSpec) Name() string { return "set" }

// Init implements Spec.
func (SetSpec) Init() State { return regState{} }

// MapSpec is SetSpec plus value checking: Get must return the value
// stored by the inserting operation. Like SetSpec it specifies a single
// key's sub-history.
type MapSpec struct{}

// Name implements Spec.
func (MapSpec) Name() string { return "map" }

// Init implements Spec.
func (MapSpec) Init() State { return regState{checkVal: true} }

// regState is the one-key abstract state shared by SetSpec and MapSpec.
type regState struct {
	present  bool
	val      uint64
	checkVal bool
}

func (s regState) Step(op Op) (State, bool) {
	switch op.Kind {
	case OpInsert:
		if op.Ok != !s.present {
			return nil, false
		}
		if op.Ok {
			return regState{present: true, val: op.Val, checkVal: s.checkVal}, true
		}
		return s, true
	case OpDelete:
		if op.Ok != s.present {
			return nil, false
		}
		if op.Ok {
			return regState{checkVal: s.checkVal}, true
		}
		return s, true
	case OpGet:
		if op.Ok != s.present {
			return nil, false
		}
		if op.Ok && s.checkVal && op.Val != s.val {
			return nil, false
		}
		return s, true
	}
	return nil, false
}

func (s regState) Encode() string {
	if !s.present {
		return "-"
	}
	if s.checkVal {
		return fmt.Sprintf("+%d", s.val)
	}
	return "+"
}

// ----------------------------------------------------------------- queue

// QueueSpec is the sequential FIFO queue specification: Dequeue returns
// the oldest enqueued value, or ok=false iff the queue is empty.
type QueueSpec struct{}

// Name implements Spec.
func (QueueSpec) Name() string { return "queue" }

// Init implements Spec.
func (QueueSpec) Init() State { return seqState{fifo: true} }

// ----------------------------------------------------------------- stack

// StackSpec is the sequential LIFO stack specification: Pop returns the
// newest pushed value, or ok=false iff the stack is empty.
type StackSpec struct{}

// Name implements Spec.
func (StackSpec) Name() string { return "stack" }

// Init implements Spec.
func (StackSpec) Init() State { return seqState{} }

// seqState holds queue/stack contents. items is treated as immutable;
// every Step that changes the contents copies.
type seqState struct {
	items []uint64
	fifo  bool
}

func (s seqState) Step(op Op) (State, bool) {
	switch op.Kind {
	case OpEnqueue, OpPush:
		items := make([]uint64, len(s.items)+1)
		copy(items, s.items)
		items[len(s.items)] = op.Val
		return seqState{items: items, fifo: s.fifo}, true
	case OpDequeue, OpPop:
		if !op.Ok {
			return s, len(s.items) == 0
		}
		if len(s.items) == 0 {
			return nil, false
		}
		take := len(s.items) - 1 // LIFO: newest
		if s.fifo {
			take = 0 // FIFO: oldest
		}
		if s.items[take] != op.Val {
			return nil, false
		}
		items := make([]uint64, 0, len(s.items)-1)
		items = append(items, s.items[:take]...)
		items = append(items, s.items[take+1:]...)
		return seqState{items: items, fifo: s.fifo}, true
	}
	return nil, false
}

func (s seqState) Encode() string {
	var b strings.Builder
	for _, v := range s.items {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

// SpecFor returns the spec appropriate for a history's operation kinds,
// or nil if the history mixes incompatible kinds.
func SpecFor(h History) Spec {
	var kv, q, st bool
	for _, op := range h.Ops {
		switch op.Kind {
		case OpGet, OpInsert, OpDelete:
			kv = true
		case OpEnqueue, OpDequeue:
			q = true
		case OpPush, OpPop:
			st = true
		}
	}
	switch {
	case kv && !q && !st:
		return MapSpec{}
	case q && !kv && !st:
		return QueueSpec{}
	case st && !kv && !q:
		return StackSpec{}
	}
	return nil
}
