package linchk

import (
	"math/rand"
	"sync"
	"testing"
)

// mk builds an op with explicit timestamps.
func mk(w int, k Kind, key, val uint64, ok bool, inv, ret uint64) Op {
	return Op{Worker: w, Kind: k, Key: key, Val: val, Ok: ok, Inv: inv, Ret: ret}
}

func hist(ops ...Op) History { return History{Ops: ops} }

func requireOutcome(t *testing.T, v Verdict, want Outcome) {
	t.Helper()
	if v.Outcome != want {
		t.Fatalf("outcome = %v, want %v\n%s", v.Outcome, want, v.Report())
	}
}

// --- map/set fixtures -----------------------------------------------------

func TestMapSequentialGood(t *testing.T) {
	h := hist(
		mk(0, OpInsert, 7, 70, true, 1, 2),
		mk(0, OpGet, 7, 70, true, 3, 4),
		mk(0, OpDelete, 7, 0, true, 5, 6),
		mk(0, OpGet, 7, 0, false, 7, 8),
		mk(0, OpDelete, 7, 0, false, 9, 10),
		mk(0, OpInsert, 7, 71, true, 11, 12),
		mk(0, OpInsert, 7, 72, false, 13, 14),
		mk(0, OpGet, 7, 71, true, 15, 16),
	)
	requireOutcome(t, Check(MapSpec{}, h, Opts{}), OutcomeLinearizable)
	requireOutcome(t, Check(SetSpec{}, h, Opts{}), OutcomeLinearizable)
}

func TestMapSequentialStaleReadRejected(t *testing.T) {
	// insert completes strictly before the get, yet the get misses it.
	h := hist(
		mk(0, OpInsert, 7, 70, true, 1, 2),
		mk(1, OpGet, 7, 0, false, 3, 4),
	)
	v := Check(MapSpec{}, h, Opts{})
	requireOutcome(t, v, OutcomeNonLinearizable)
	if v.Depth != 1 {
		t.Fatalf("depth = %d, want 1", v.Depth)
	}
}

func TestMapConcurrentMissAccepted(t *testing.T) {
	// The get overlaps the insert, so it may linearize first and miss.
	h := hist(
		mk(0, OpInsert, 7, 70, true, 1, 4),
		mk(1, OpGet, 7, 0, false, 2, 3),
	)
	requireOutcome(t, Check(MapSpec{}, h, Opts{}), OutcomeLinearizable)
}

func TestMapLostUpdateRejected(t *testing.T) {
	// Two inserts of the same key both claim success with no delete
	// between them — the classic lost-update / ABA-resurrection shape.
	h := hist(
		mk(0, OpInsert, 3, 30, true, 1, 4),
		mk(1, OpInsert, 3, 31, true, 2, 3),
	)
	requireOutcome(t, Check(MapSpec{}, h, Opts{}), OutcomeNonLinearizable)
	requireOutcome(t, Check(SetSpec{}, h, Opts{}), OutcomeNonLinearizable)
}

func TestMapValueCheckDistinguishesSpecs(t *testing.T) {
	// Presence-wise legal, but the read returns the loser's value: the
	// map spec rejects what the set spec accepts.
	h := hist(
		mk(0, OpInsert, 3, 30, true, 1, 2),
		mk(1, OpInsert, 3, 31, false, 3, 4),
		mk(1, OpGet, 3, 31, true, 5, 6),
	)
	requireOutcome(t, Check(SetSpec{}, h, Opts{}), OutcomeLinearizable)
	requireOutcome(t, Check(MapSpec{}, h, Opts{}), OutcomeNonLinearizable)
}

func TestCheckKVReportsOffendingKey(t *testing.T) {
	h := hist(
		mk(0, OpInsert, 1, 10, true, 1, 2),
		mk(0, OpGet, 1, 10, true, 3, 4),
		mk(0, OpInsert, 2, 20, true, 5, 6),
		mk(1, OpGet, 2, 0, false, 7, 8), // stale read on key 2 only
	)
	v := CheckKV(MapSpec{}, h, Opts{})
	requireOutcome(t, v, OutcomeNonLinearizable)
	if !v.KeyScoped || v.Key != 2 {
		t.Fatalf("offending key = (%d, scoped=%v), want key 2", v.Key, v.KeyScoped)
	}
	if v.Total != 4 {
		t.Fatalf("total = %d, want 4", v.Total)
	}
}

// --- queue fixtures -------------------------------------------------------

func TestQueueSequentialGood(t *testing.T) {
	h := hist(
		mk(0, OpEnqueue, 0, 1, true, 1, 2),
		mk(0, OpEnqueue, 0, 2, true, 3, 4),
		mk(1, OpDequeue, 0, 1, true, 5, 6),
		mk(1, OpDequeue, 0, 2, true, 7, 8),
		mk(1, OpDequeue, 0, 0, false, 9, 10),
	)
	requireOutcome(t, Check(QueueSpec{}, h, Opts{}), OutcomeLinearizable)
}

func TestQueueFIFOViolationRejected(t *testing.T) {
	// Both enqueues complete before either dequeue; dequeue order is
	// reversed — a lost FIFO ordering.
	h := hist(
		mk(0, OpEnqueue, 0, 1, true, 1, 2),
		mk(0, OpEnqueue, 0, 2, true, 3, 4),
		mk(1, OpDequeue, 0, 2, true, 5, 6),
		mk(1, OpDequeue, 0, 1, true, 7, 8),
	)
	requireOutcome(t, Check(QueueSpec{}, h, Opts{}), OutcomeNonLinearizable)
}

func TestQueueConcurrentEnqueuesEitherOrder(t *testing.T) {
	h := hist(
		mk(0, OpEnqueue, 0, 1, true, 1, 4),
		mk(1, OpEnqueue, 0, 2, true, 2, 3),
		mk(2, OpDequeue, 0, 2, true, 5, 6),
		mk(2, OpDequeue, 0, 1, true, 7, 8),
	)
	requireOutcome(t, Check(QueueSpec{}, h, Opts{}), OutcomeLinearizable)
}

func TestQueueFalseEmptyRejected(t *testing.T) {
	// An enqueue completed, nothing was dequeued, yet a later dequeue
	// reports empty — a lost element.
	h := hist(
		mk(0, OpEnqueue, 0, 1, true, 1, 2),
		mk(1, OpDequeue, 0, 0, false, 3, 4),
	)
	requireOutcome(t, Check(QueueSpec{}, h, Opts{}), OutcomeNonLinearizable)
}

func TestQueueDuplicateDeliveryRejected(t *testing.T) {
	h := hist(
		mk(0, OpEnqueue, 0, 1, true, 1, 2),
		mk(1, OpDequeue, 0, 1, true, 3, 4),
		mk(2, OpDequeue, 0, 1, true, 5, 6),
	)
	requireOutcome(t, Check(QueueSpec{}, h, Opts{}), OutcomeNonLinearizable)
}

// --- stack fixtures -------------------------------------------------------

func TestStackSequentialGood(t *testing.T) {
	h := hist(
		mk(0, OpPush, 0, 1, true, 1, 2),
		mk(0, OpPush, 0, 2, true, 3, 4),
		mk(1, OpPop, 0, 2, true, 5, 6),
		mk(1, OpPop, 0, 1, true, 7, 8),
		mk(1, OpPop, 0, 0, false, 9, 10),
	)
	requireOutcome(t, Check(StackSpec{}, h, Opts{}), OutcomeLinearizable)
}

func TestStackLIFOViolationRejected(t *testing.T) {
	h := hist(
		mk(0, OpPush, 0, 1, true, 1, 2),
		mk(0, OpPush, 0, 2, true, 3, 4),
		mk(1, OpPop, 0, 1, true, 5, 6), // must have been 2
	)
	requireOutcome(t, Check(StackSpec{}, h, Opts{}), OutcomeNonLinearizable)
}

func TestStackConcurrentPushesEitherOrder(t *testing.T) {
	h := hist(
		mk(0, OpPush, 0, 1, true, 1, 4),
		mk(1, OpPush, 0, 2, true, 2, 3),
		mk(2, OpPop, 0, 1, true, 5, 6),
		mk(2, OpPop, 0, 2, true, 7, 8),
	)
	requireOutcome(t, Check(StackSpec{}, h, Opts{}), OutcomeLinearizable)
}

// --- checker mechanics ----------------------------------------------------

func TestBudgetExhaustion(t *testing.T) {
	h := hist(
		mk(0, OpInsert, 1, 1, true, 1, 8),
		mk(1, OpInsert, 1, 2, false, 2, 7),
		mk(2, OpGet, 1, 1, true, 3, 6),
		mk(3, OpDelete, 1, 0, true, 4, 9),
	)
	v := Check(MapSpec{}, h, Opts{MaxNodes: 1})
	requireOutcome(t, v, OutcomeExhausted)
	if v.Linearizable() {
		t.Fatal("exhausted verdict must not claim linearizability")
	}
}

func TestEmptyHistoryLinearizable(t *testing.T) {
	for _, s := range []Spec{SetSpec{}, MapSpec{}, QueueSpec{}, StackSpec{}} {
		requireOutcome(t, Check(s, History{}, Opts{}), OutcomeLinearizable)
	}
}

func TestSpecFor(t *testing.T) {
	if s := SpecFor(hist(mk(0, OpGet, 1, 0, false, 1, 2))); s == nil || s.Name() != "map" {
		t.Fatalf("SpecFor kv = %v", s)
	}
	if s := SpecFor(hist(mk(0, OpEnqueue, 0, 1, true, 1, 2))); s == nil || s.Name() != "queue" {
		t.Fatalf("SpecFor queue = %v", s)
	}
	if s := SpecFor(hist(mk(0, OpPush, 0, 1, true, 1, 2))); s == nil || s.Name() != "stack" {
		t.Fatalf("SpecFor stack = %v", s)
	}
	mixed := hist(mk(0, OpPush, 0, 1, true, 1, 2), mk(0, OpEnqueue, 0, 1, true, 3, 4))
	if s := SpecFor(mixed); s != nil {
		t.Fatalf("SpecFor mixed = %v, want nil", s)
	}
}

// TestLongSequentialHistoryFast: a model-generated single-threaded
// history of a few thousand ops must check near-linearly.
func TestLongSequentialHistoryFast(t *testing.T) {
	c := &Clock{}
	r := NewRecorder(c, 0)
	rng := rand.New(rand.NewSource(1))
	model := map[uint64]uint64{}
	for i := 0; i < 4000; i++ {
		k := uint64(rng.Intn(16))
		inv := r.Inv()
		switch rng.Intn(3) {
		case 0:
			_, in := model[k]
			if !in {
				model[k] = k * 2
			}
			r.Record(OpInsert, k, k*2, !in, inv)
		case 1:
			_, in := model[k]
			delete(model, k)
			r.Record(OpDelete, k, 0, in, inv)
		default:
			v, in := model[k]
			r.Record(OpGet, k, v, in, inv)
		}
	}
	v := CheckKV(MapSpec{}, Merge(r), Opts{})
	requireOutcome(t, v, OutcomeLinearizable)
	if v.Total != 4000 {
		t.Fatalf("total = %d", v.Total)
	}
}

// TestRecorderConcurrent drives the recorder from many goroutines against
// a mutex-guarded map (trivially linearizable) and checks the merged
// history: this validates the clock/recorder pipeline end to end.
func TestRecorderConcurrent(t *testing.T) {
	const workers = 4
	const each = 500
	var (
		mu    sync.Mutex
		truth = map[uint64]uint64{}
		clock Clock
		wg    sync.WaitGroup
	)
	recs := make([]*Recorder, workers)
	for w := 0; w < workers; w++ {
		recs[w] = NewRecorder(&clock, w)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := recs[w]
			rng := rand.New(rand.NewSource(int64(w + 1)))
			for i := 0; i < each; i++ {
				k := uint64(rng.Intn(8))
				inv := r.Inv()
				mu.Lock()
				switch rng.Intn(3) {
				case 0:
					_, in := truth[k]
					if !in {
						truth[k] = k + 100
					}
					mu.Unlock()
					r.Record(OpInsert, k, k+100, !in, inv)
				case 1:
					_, in := truth[k]
					delete(truth, k)
					mu.Unlock()
					r.Record(OpDelete, k, 0, in, inv)
				default:
					v, in := truth[k]
					mu.Unlock()
					r.Record(OpGet, k, v, in, inv)
				}
			}
		}(w)
	}
	wg.Wait()
	h := Merge(recs...)
	if len(h.Ops) != workers*each {
		t.Fatalf("merged %d ops, want %d", len(h.Ops), workers*each)
	}
	requireOutcome(t, CheckKV(MapSpec{}, h, Opts{}), OutcomeLinearizable)
}

// TestVerdictReportShape: failure reports name the stuck ops and state.
func TestVerdictReportShape(t *testing.T) {
	h := hist(
		mk(0, OpInsert, 7, 70, true, 1, 2),
		mk(1, OpGet, 7, 0, false, 3, 4),
	)
	v := Check(MapSpec{}, h, Opts{})
	rep := v.Report()
	for _, want := range []string{"non-linearizable", "longest legal prefix", "get(7)"} {
		if !contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
