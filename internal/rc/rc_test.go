package rc

import (
	"sync/atomic"
	"testing"

	"github.com/gosmr/gosmr/internal/arena"
	"github.com/gosmr/gosmr/internal/tagptr"
)

// cnode is a counted list node.
type cnode struct {
	count atomic.Int64
	next  atomic.Uint64
}

type cpool struct{ *arena.Pool[cnode] }

func (p cpool) IncCount(ref uint64) { p.Deref(ref).count.Add(1) }
func (p cpool) DecCount(ref uint64) int64 {
	return p.Deref(ref).count.Add(-1)
}
func (p cpool) Trace(ref uint64, out []uint64) []uint64 {
	if nxt := tagptr.RefOf(p.Deref(ref).next.Load()); nxt != 0 {
		out = append(out, nxt)
	}
	return out
}

func newChain(p cpool, n int) []uint64 {
	refs := make([]uint64, n)
	var prev uint64
	for i := n - 1; i >= 0; i-- {
		ref, nd := p.Alloc()
		nd.count.Store(1) // one incoming link each
		nd.next.Store(tagptr.Pack(prev, 0))
		refs[i] = ref
		prev = ref
	}
	return refs
}

func TestDeferredDecrementFreesAfterGracePeriod(t *testing.T) {
	d := NewDomain()
	p := cpool{arena.NewPool[cnode]("c", arena.ModeDetect)}
	dt := NewDecTask(d, p)
	g := d.NewGuard()

	ref, nd := p.Alloc()
	nd.count.Store(1)

	g.Pin()
	g.DeferDec(dt, ref)
	g.Unpin()
	if !p.Live(ref) && false {
		t.Fatal("unreachable")
	}
	g.Drain()
	if p.Live(ref) {
		t.Fatal("node not freed after deferred decrement ran")
	}
}

func TestTransitiveRelease(t *testing.T) {
	d := NewDomain()
	p := cpool{arena.NewPool[cnode]("c", arena.ModeDetect)}
	dt := NewDecTask(d, p)
	g := d.NewGuard()

	refs := newChain(p, 10)

	g.Pin()
	g.DeferDec(dt, refs[0]) // drop the head: whole chain must cascade
	g.Unpin()
	g.Drain()
	for i, r := range refs {
		if p.Live(r) {
			t.Fatalf("chain node %d not released transitively", i)
		}
	}
	if p.Stats().Live != 0 {
		t.Fatalf("leaked %d nodes", p.Stats().Live)
	}
}

func TestSharedTailSurvives(t *testing.T) {
	d := NewDomain()
	p := cpool{arena.NewPool[cnode]("c", arena.ModeDetect)}
	dt := NewDecTask(d, p)
	g := d.NewGuard()

	refs := newChain(p, 3) // a -> b -> c
	// Second link into c.
	p.IncCount(refs[2])

	g.Pin()
	g.DeferDec(dt, refs[0])
	g.Unpin()
	g.Drain()
	if p.Live(refs[0]) || p.Live(refs[1]) {
		t.Fatal("prefix not released")
	}
	if !p.Live(refs[2]) {
		t.Fatal("shared tail released despite an extra reference")
	}
	g.Pin()
	g.DeferDec(dt, refs[2])
	g.Unpin()
	g.Drain()
	if p.Live(refs[2]) {
		t.Fatal("tail not released after last reference dropped")
	}
}

func TestPinnedReaderDefersDecrement(t *testing.T) {
	d := NewDomain()
	p := cpool{arena.NewPool[cnode]("c", arena.ModeDetect)}
	dt := NewDecTask(d, p)
	reader := d.NewGuard()
	writer := d.NewGuard()

	ref, nd := p.Alloc()
	nd.count.Store(1)

	reader.Pin() // a reader that could still hold ref

	writer.Pin()
	writer.DeferDec(dt, ref)
	writer.Unpin()
	for i := 0; i < 10; i++ {
		writer.Collect()
	}
	if !p.Live(ref) {
		t.Fatal("decrement ran while a reader was pinned")
	}

	reader.Unpin()
	writer.Drain()
	if p.Live(ref) {
		t.Fatal("decrement never ran")
	}
}

func TestEagerIncPreventsRelease(t *testing.T) {
	d := NewDomain()
	p := cpool{arena.NewPool[cnode]("c", arena.ModeDetect)}
	dt := NewDecTask(d, p)
	g := d.NewGuard()

	ref, nd := p.Alloc()
	nd.count.Store(1)
	p.IncCount(ref) // a writer published a second link

	g.Pin()
	g.DeferDec(dt, ref)
	g.Unpin()
	g.Drain()
	if !p.Live(ref) {
		t.Fatal("node freed despite outstanding reference")
	}
	if got := p.Deref(ref).count.Load(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
}
